package holistic

import (
	"math"
	"testing"

	"holistic/internal/tpch"
)

// TestMonthlyActiveUsers is the paper's §1 motivating query:
//
//	select o_orderdate, count(distinct o_custkey) over w
//	from orders
//	window w as (order by o_orderdate
//	             range between '1 month' preceding and current row)
func TestMonthlyActiveUsers(t *testing.T) {
	dates := []int64{0, 5, 10, 35, 36, 40, 70}
	cust := []int64{1, 2, 1, 2, 3, 2, 1}
	table := MustNewTable(
		NewInt64Column("o_orderdate", dates, nil),
		NewInt64Column("o_custkey", cust, nil),
	)
	res, err := Run(table,
		Over().OrderBy(Asc("o_orderdate")).
			Frame(Range(Preceding(30), CurrentRow())),
		CountDistinct("o_custkey").As("mau"),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Manually: frames are value ranges [d-30, d].
	want := []int64{1, 2, 2, 2, 3, 3, 2}
	for i, w := range want {
		if got := res.Column("mau").Int64(i); got != w {
			t.Fatalf("row %d (date %d): mau = %d, want %d", i, dates[i], got, w)
		}
	}
}

// TestTPCCLeaderboard is the paper's §2.4 composite query: for every TPC-C
// submission, statistics against all PREVIOUS submissions only.
func TestTPCCLeaderboard(t *testing.T) {
	r := tpch.GenerateTPCCResults(300, 1)
	table := r.Table()
	w := Over().OrderBy(Asc("submission_date")).
		Frame(Range(UnboundedPreceding(), CurrentRow()))
	res, err := Run(table, w,
		CountDistinct("dbsystem").As("competitors"),
		Rank(Desc("tps")).As("rank"),
		FirstValue("tps", Desc("tps")).As("best_tps"),
		FirstValue("dbsystem", Desc("tps")).As("best_system"),
		Lead("tps", 1, Desc("tps")).As("next_best_tps"),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force verification directly against the SQL semantics.
	n := table.Rows()
	for i := 0; i < n; i++ {
		var frameRows []int
		for j := 0; j < n; j++ {
			if r.SubmissionDate[j] <= r.SubmissionDate[i] {
				frameRows = append(frameRows, j)
			}
		}
		distinct := map[string]bool{}
		rank := 1
		bestTPS := math.Inf(-1)
		bestSys := ""
		bestIdx := -1
		for _, j := range frameRows {
			distinct[r.System[j]] = true
			if r.TPS[j] > r.TPS[i] {
				rank++
			}
			if r.TPS[j] > bestTPS {
				bestTPS = r.TPS[j]
				bestSys = r.System[j]
				bestIdx = j
			}
		}
		if got := res.Column("competitors").Int64(i); got != int64(len(distinct)) {
			t.Fatalf("row %d: competitors %d, want %d", i, got, len(distinct))
		}
		if got := res.Column("rank").Int64(i); got != int64(rank) {
			t.Fatalf("row %d: rank %d, want %d", i, got, rank)
		}
		if got := res.Column("best_tps").Float64(i); got != bestTPS {
			t.Fatalf("row %d: best tps %v, want %v", i, got, bestTPS)
		}
		if got := res.Column("best_system").StringAt(i); got != bestSys {
			t.Fatalf("row %d: best system %q, want %q (tps %v)", i, got, bestSys, bestTPS)
		}
		// Lead(tps, 1 ORDER BY tps DESC) of the best row would be the
		// second best; for row i it is the next-best after row i itself.
		var below []float64
		for _, j := range frameRows {
			if r.TPS[j] < r.TPS[i] || (r.TPS[j] == r.TPS[i] && j > i) {
				below = append(below, r.TPS[j])
			}
		}
		next := res.Column("next_best_tps")
		if len(below) == 0 {
			if !next.IsNull(i) {
				t.Fatalf("row %d: next best should be NULL", i)
			}
		} else {
			wantNext := math.Inf(-1)
			for _, v := range below {
				if v > wantNext {
					wantNext = v
				}
			}
			if next.IsNull(i) || next.Float64(i) != wantNext {
				t.Fatalf("row %d: next best %v, want %v", i, next.Float64(i), wantNext)
			}
		}
		_ = bestIdx
	}
}

// TestMovingP99 is the paper's §1 delivery-time percentile query shape:
// percentile over a sliding one-week window of ship dates.
func TestMovingP99(t *testing.T) {
	l := tpch.GenerateLineitem(2000, 2)
	delay := make([]int64, l.Len())
	for i := range delay {
		delay[i] = l.ReceiptDate[i] - l.ShipDate[i]
	}
	table := MustNewTable(
		NewInt64Column("l_shipdate", l.ShipDate, nil),
		NewInt64Column("delay", delay, nil),
	)
	res, err := Run(table,
		Over().OrderBy(Asc("l_shipdate")).
			Frame(Range(Preceding(7), CurrentRow())),
		PercentileDisc(0.99, Asc("delay")).As("p99"),
	)
	if err != nil {
		t.Fatal(err)
	}
	p99 := res.Column("p99")
	for i := 0; i < table.Rows(); i++ {
		// The p99 delay is itself a delay from the window.
		if p99.IsNull(i) {
			t.Fatalf("row %d: NULL p99 over non-empty frame", i)
		}
		v := p99.Int64(i)
		if v < 1 || v > 30 {
			t.Fatalf("row %d: p99 %d outside the 1..30 day domain", i, v)
		}
	}
	// Spot-check a few rows against brute force.
	for _, i := range []int{0, 100, 999, 1999} {
		var window []int64
		for j := 0; j < table.Rows(); j++ {
			if l.ShipDate[j] >= l.ShipDate[i]-7 && l.ShipDate[j] <= l.ShipDate[i] {
				window = append(window, delay[j])
			}
		}
		want := bruteDisc(window, 0.99)
		if got := p99.Int64(i); got != want {
			t.Fatalf("row %d: p99 %d, want %d", i, got, want)
		}
	}
}

func bruteDisc(vals []int64, p float64) int64 {
	sorted := append([]int64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	k := int(math.Ceil(p*float64(len(sorted)))) - 1
	if k < 0 {
		k = 0
	}
	return sorted[k]
}

// TestStockOrdersNonMonotonic is §2.2's non-constant frame bound example:
// compare each order against the median of all orders within its own
// good_for validity interval.
func TestStockOrdersNonMonotonic(t *testing.T) {
	s := tpch.GenerateStockOrders(1500, 3)
	table := s.Table()
	goodFor := s.GoodFor
	res, err := Run(table,
		Over().OrderBy(Asc("placement_time")).
			Frame(Range(CurrentRow(), FollowingBy(func(row int) int64 {
				return goodFor[row]
			}))),
		MedianDisc(Asc("price")).As("median_price"),
	)
	if err != nil {
		t.Fatal(err)
	}
	med := res.Column("median_price")
	for _, i := range []int{0, 250, 700, 1499} {
		var window []float64
		for j := range s.Price {
			if s.PlacementTime[j] >= s.PlacementTime[i] &&
				s.PlacementTime[j] <= s.PlacementTime[i]+goodFor[i] {
				window = append(window, s.Price[j])
			}
		}
		// PERCENTILE_DISC(0.5): k = ceil(0.5·n)-1 smallest.
		sorted := append([]float64(nil), window...)
		for a := 1; a < len(sorted); a++ {
			for b := a; b > 0 && sorted[b] < sorted[b-1]; b-- {
				sorted[b], sorted[b-1] = sorted[b-1], sorted[b]
			}
		}
		k := int(math.Ceil(0.5*float64(len(sorted)))) - 1
		if k < 0 {
			k = 0
		}
		if got := med.Float64(i); got != sorted[k] {
			t.Fatalf("row %d: median %v, want %v (window %d rows)", i, got, sorted[k], len(window))
		}
	}

	// RANGE frames with per-row bounds: the paper's key claim is that the
	// MST result is identical to a competitor evaluation but does not
	// degrade. Cross-check against the naive engine.
	naive, err := Run(table,
		Over().OrderBy(Asc("placement_time")).
			Frame(Range(CurrentRow(), FollowingBy(func(row int) int64 {
				return goodFor[row]
			}))),
		MedianDisc(Asc("price")).WithEngine(EngineNaive).As("median_price"),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < table.Rows(); i++ {
		if med.Float64(i) != naive.Column("median_price").Float64(i) {
			t.Fatalf("row %d: MST %v != naive %v", i, med.Float64(i), naive.Column("median_price").Float64(i))
		}
	}
}

// TestFrameExclusionComposition checks the §4.7 composition: a framed
// distinct count with EXCLUDE GROUP, against the naive semantics.
func TestFrameExclusionComposition(t *testing.T) {
	vals := []int64{1, 2, 1, 3, 2, 2, 4, 1, 3, 4, 4, 1}
	order := make([]int64, len(vals))
	for i := range order {
		order[i] = int64(i / 2) // peer pairs
	}
	table := MustNewTable(
		NewInt64Column("o", order, nil),
		NewInt64Column("v", vals, nil),
	)
	res, err := Run(table,
		Over().OrderBy(Asc("o")).
			Frame(Rows(Preceding(5), Following(2)).ExcludeGroup()),
		CountDistinct("v").As("cd"),
		SumDistinct("v").As("sd"),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		seen := map[int64]bool{}
		sum := int64(0)
		lo := max(0, i-5)
		hi := min(len(vals), i+3)
		for j := lo; j < hi; j++ {
			if order[j] == order[i] { // peer => excluded
				continue
			}
			if !seen[vals[j]] {
				seen[vals[j]] = true
				sum += vals[j]
			}
		}
		if got := res.Column("cd").Int64(i); got != int64(len(seen)) {
			t.Fatalf("row %d: count distinct %d, want %d", i, got, len(seen))
		}
		sd := res.Column("sd")
		if len(seen) == 0 {
			if !sd.IsNull(i) {
				t.Fatalf("row %d: sum distinct should be NULL", i)
			}
		} else if sd.Int64(i) != sum {
			t.Fatalf("row %d: sum distinct %d, want %d", i, sd.Int64(i), sum)
		}
	}
}

// TestEnginesAgreeOnLineitem runs the Figure 10 function set on a lineitem
// sample with every supporting engine and demands identical results.
func TestEnginesAgreeOnLineitem(t *testing.T) {
	l := tpch.GenerateLineitem(3000, 5)
	table := l.Table()
	w := func() *Window {
		return Over().OrderBy(Asc("l_shipdate")).
			Frame(Rows(Preceding(149), CurrentRow()))
	}
	build := func(e Engine) []*Func {
		return []*Func{
			MedianDisc(Asc("l_extendedprice")).WithEngine(e).As("median"),
			Rank(Asc("l_extendedprice")).WithEngine(pickSupported(e, EngineIncremental)).As("rank"),
			CountDistinct("l_partkey").WithEngine(pickSupported(e, EngineOSTree, EngineSegmentTree)).As("cd"),
		}
	}
	base, err := Run(table, w(), build(EngineMergeSortTree)...)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{EngineIncremental, EngineNaive, EngineOSTree, EngineSegmentTree} {
		res, err := Run(table, w(), build(e)...)
		if err != nil {
			t.Fatalf("engine %v: %v", e, err)
		}
		for _, col := range []string{"median", "rank", "cd"} {
			b, r := base.Column(col), res.Column(col)
			for i := 0; i < table.Rows(); i++ {
				if b.IsNull(i) != r.IsNull(i) {
					t.Fatalf("engine %v col %s row %d: null mismatch", e, col, i)
				}
				if b.IsNull(i) {
					continue
				}
				switch b.Kind() {
				case Int64:
					if b.Int64(i) != r.Int64(i) {
						t.Fatalf("engine %v col %s row %d: %d != %d", e, col, i, r.Int64(i), b.Int64(i))
					}
				case Float64:
					if b.Float64(i) != r.Float64(i) {
						t.Fatalf("engine %v col %s row %d: %v != %v", e, col, i, r.Float64(i), b.Float64(i))
					}
				}
			}
		}
	}
}

// pickSupported substitutes fallback engines where a competitor does not
// cover a function (Table 1's coverage is deliberately partial).
func pickSupported(want Engine, unsupported ...Engine) Engine {
	for _, u := range unsupported {
		if want == u {
			return EngineMergeSortTree
		}
	}
	return want
}

func TestProfileCollection(t *testing.T) {
	l := tpch.GenerateLineitem(5000, 6)
	prof := &Profile{}
	_, err := RunOptions(l.Table(),
		Over().OrderBy(Asc("l_shipdate")).Frame(Rows(UnboundedPreceding(), CurrentRow())),
		Options{Profile: prof},
		CountDistinct("l_partkey").As("cd"),
	)
	if err != nil {
		t.Fatal(err)
	}
	phases := prof.Phases()
	if len(phases) < 4 {
		t.Fatalf("expected >= 4 phases, got %v", phases)
	}
	names := map[string]bool{}
	for _, ph := range phases {
		names[ph.Name] = true
		if ph.Duration < 0 {
			t.Fatalf("negative duration in %v", ph)
		}
	}
	for _, want := range []string{"partition+order sort", "preprocess: prevIdcs", "build merge sort tree", "probe"} {
		if !names[want] {
			t.Fatalf("missing phase %q in %v", want, phases)
		}
	}
	if prof.Total() <= 0 {
		t.Fatal("zero total")
	}
	if prof.String() == "" {
		t.Fatal("empty profile string")
	}
}
