package holistic

import (
	"strings"
	"testing"
)

func TestRunSQLMatchesBuilderAPI(t *testing.T) {
	table := MustNewTable(
		NewInt64Column("d", []int64{3, 1, 4, 1, 5, 9, 2, 6}, nil),
		NewInt64Column("v", []int64{2, 7, 1, 8, 2, 8, 1, 8}, nil),
	)
	sqlRes, err := RunSQL(`
		select count(distinct v) over w as cd,
		       median(order by v) over w as med,
		       rank(order by v desc) over w as r
		from t
		window w as (order by d rows between 3 preceding and current row)`,
		map[string]*Table{"t": table})
	if err != nil {
		t.Fatal(err)
	}
	w := Over().OrderBy(Asc("d")).Frame(Rows(Preceding(3), CurrentRow()))
	apiRes, err := Run(table, w,
		CountDistinct("v").As("cd"),
		Median(Asc("v")).As("med"),
		Rank(Desc("v")).As("r"),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"cd", "r"} {
		for i := 0; i < table.Rows(); i++ {
			if sqlRes.Column(col).Int64(i) != apiRes.Column(col).Int64(i) {
				t.Fatalf("%s[%d]: sql %d != api %d", col, i,
					sqlRes.Column(col).Int64(i), apiRes.Column(col).Int64(i))
			}
		}
	}
	for i := 0; i < table.Rows(); i++ {
		if sqlRes.Column("med").Float64(i) != apiRes.Column("med").Float64(i) {
			t.Fatalf("med[%d]: sql %v != api %v", i,
				sqlRes.Column("med").Float64(i), apiRes.Column("med").Float64(i))
		}
	}
}

func TestRunSQLErrors(t *testing.T) {
	table := MustNewTable(NewInt64Column("v", []int64{1}, nil))
	tables := map[string]*Table{"t": table}
	cases := []string{
		"not sql at all",
		"select rank(order by v) over (order by v) from missing",
		"select rank(order by nope) over (order by v) from t",
		"select bogus_func(v) over (order by v) from t",
		"select percentile_disc(order by v) over (order by v) from t", // missing fraction
	}
	for _, q := range cases {
		if _, err := RunSQL(q, tables); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestRunSQLFrameDefault(t *testing.T) {
	// No frame clause with ORDER BY => SQL default frame (RANGE UNBOUNDED
	// PRECEDING .. CURRENT ROW), peers included.
	table := MustNewTable(
		NewInt64Column("d", []int64{1, 2, 2, 3}, nil),
		NewInt64Column("v", []int64{1, 1, 2, 3}, nil),
	)
	res, err := RunSQL(`select count(distinct v) over (order by d) as cd from t`,
		map[string]*Table{"t": table})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 2, 3}
	for i, wv := range want {
		if got := res.Column("cd").Int64(i); got != wv {
			t.Fatalf("cd[%d] = %d, want %d", i, got, wv)
		}
	}
}

func TestRunSQLOffsetFunctionsSeeOriginalRows(t *testing.T) {
	// Builder-API per-row offsets must receive ORIGINAL row indices even
	// when the window order permutes rows.
	n := 50
	d := make([]int64, n)
	off := make([]int64, n)
	v := make([]int64, n)
	for i := range d {
		d[i] = int64(n - i) // reverse order: window order != input order
		off[i] = int64(i % 7)
		v[i] = int64(i)
	}
	table := MustNewTable(
		NewInt64Column("d", d, nil),
		NewInt64Column("v", v, nil),
	)
	res, err := Run(table,
		Over().OrderBy(Asc("d")).
			Frame(Rows(PrecedingBy(func(row int) int64 { return off[row] }), CurrentRow())),
		CountStar().As("c"),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// Row i sits at window position n-1-i; its frame covers off[i]+1
		// rows (clamped at the partition start).
		pos := n - 1 - i
		want := int64(pos + 1)
		if o := off[i] + 1; o < want {
			want = o
		}
		if got := res.Column("c").Int64(i); got != want {
			t.Fatalf("row %d: count %d, want %d", i, got, want)
		}
	}
}

func TestRunSQLPassThroughPreservesNulls(t *testing.T) {
	table := MustNewTable(
		NewInt64Column("d", []int64{1, 2, 3}, nil),
		NewFloat64Column("v", []float64{1, 0, 3}, []bool{false, true, false}),
	)
	res, err := RunSQL(`select v, count(v) over (order by d) as c from t`,
		map[string]*Table{"t": table})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Column("v").IsNull(1) || res.Column("v").Float64(2) != 3 {
		t.Fatal("pass-through column lost NULLs or values")
	}
	want := []int64{1, 1, 2}
	for i, wv := range want {
		if got := res.Column("c").Int64(i); got != wv {
			t.Fatalf("count[%d] = %d, want %d", i, got, wv)
		}
	}
}

func TestRunSQLLongQueryRoundTrip(t *testing.T) {
	// A many-function statement across two windows must produce all columns
	// in select order.
	table := MustNewTable(
		NewInt64Column("g", []int64{0, 0, 1, 1, 0, 1}, nil),
		NewInt64Column("d", []int64{1, 2, 1, 2, 3, 3}, nil),
		NewFloat64Column("x", []float64{5, 1, 4, 2, 3, 6}, nil),
	)
	res, err := RunSQL(strings.TrimSpace(`
		select g, d,
		  row_number(order by x) over w1 as rn,
		  cume_dist(order by x) over w1 as cdist,
		  ntile(2 order by x) over w1 as bucket,
		  last_value(x order by x) over w1 as biggest,
		  sum(distinct x) over (partition by g order by d rows between unbounded preceding and current row) as sd
		from t
		window w1 as (partition by g order by d rows between 1 preceding and 1 following)`),
		map[string]*Table{"t": table})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"g", "d", "rn", "cdist", "bucket", "biggest", "sd"} {
		if res.Column(name) == nil {
			t.Fatalf("missing column %q", name)
		}
	}
	cols := res.Columns()
	if cols[0].Name() != "g" || cols[6].Name() != "sd" {
		t.Fatal("columns out of select order")
	}
}
