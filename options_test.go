package holistic_test

import (
	"context"
	"strings"
	"testing"

	"holistic"
)

func optionsTable(t *testing.T) *holistic.Table {
	t.Helper()
	return holistic.MustNewTable(
		holistic.NewInt64Column("d", []int64{1, 2, 3, 4, 5, 6}, nil),
		holistic.NewInt64Column("v", []int64{4, 1, 4, 2, 1, 3}, nil),
	)
}

// TestNewOptionsFoldsFields checks each functional option lands on the
// matching Options field, so mixed-style callers see one configuration.
func TestNewOptionsFoldsFields(t *testing.T) {
	ctx := context.Background()
	var prof holistic.Profile
	root := holistic.NewTrace("q")
	opt := holistic.NewOptions(
		holistic.WithContext(ctx),
		holistic.WithProfile(&prof),
		holistic.WithTrace(root),
		holistic.WithTaskSize(123),
		holistic.WithoutPooling(),
		holistic.WithoutBatching(),
		holistic.WithEngine(holistic.EngineNaive),
		holistic.WithParallelism(2),
	)
	if opt.Context != ctx || opt.Profile != &prof || opt.Trace != root {
		t.Fatal("context/profile/trace options not applied")
	}
	if opt.TaskSize != 123 || !opt.NoPool || !opt.NoBatch || opt.DefaultEngine != holistic.EngineNaive || opt.Workers != 2 {
		t.Fatalf("options not applied: %+v", opt)
	}
}

// TestRunWithTrace runs via the functional-options entry point and checks
// the span tree carries the operator's phases, and that results agree with
// the zero-option path.
func TestRunWithTrace(t *testing.T) {
	tab := optionsTable(t)
	w := holistic.Over().OrderBy(holistic.Asc("d")).
		Frame(holistic.Rows(holistic.Preceding(2), holistic.CurrentRow()))
	fn := func() *holistic.Func { return holistic.CountDistinct("v").As("cd") }

	plain, err := holistic.Run(tab, w, fn())
	if err != nil {
		t.Fatal(err)
	}

	root := holistic.NewTrace("query")
	traced, err := holistic.RunWith(tab, w, []*holistic.Func{fn()},
		holistic.WithTrace(root), holistic.WithParallelism(1))
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tab.Rows(); i++ {
		if plain.Column("cd").Int64(i) != traced.Column("cd").Int64(i) {
			t.Fatalf("row %d: traced run diverges from plain run", i)
		}
	}

	rendered := root.Render()
	for _, phase := range []string{"partition+order sort", "partition boundaries", "probe"} {
		if !strings.Contains(rendered, phase) {
			t.Fatalf("trace missing %q:\n%s", phase, rendered)
		}
	}
	if strings.Contains(rendered, "(unfinished)") {
		t.Fatalf("unfinished spans after Run:\n%s", rendered)
	}
}

// TestWithEngineDefault checks the run-level engine default: it applies to
// functions left on the zero-value engine, loses to per-function choices,
// and WithEngine(EngineMergeSortTree) is a no-op — all three paths agree on
// results.
func TestWithEngineDefault(t *testing.T) {
	tab := optionsTable(t)
	w := holistic.Over().OrderBy(holistic.Asc("d")).
		Frame(holistic.Rows(holistic.Preceding(2), holistic.CurrentRow()))

	run := func(opts []holistic.Option, fn *holistic.Func) []int64 {
		t.Helper()
		res, err := holistic.RunWith(tab, w, []*holistic.Func{fn.As("x")}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, tab.Rows())
		for i := range out {
			out[i] = res.Column("x").Int64(i)
		}
		return out
	}

	mst := run(nil, holistic.CountDistinct("v"))
	naiveDefault := run([]holistic.Option{holistic.WithEngine(holistic.EngineNaive)}, holistic.CountDistinct("v"))
	perFuncWins := run([]holistic.Option{holistic.WithEngine(holistic.EngineNaive)},
		holistic.CountDistinct("v").WithEngine(holistic.EngineMergeSortTree))
	noop := run([]holistic.Option{holistic.WithEngine(holistic.EngineMergeSortTree)}, holistic.CountDistinct("v"))

	for i := range mst {
		if naiveDefault[i] != mst[i] || perFuncWins[i] != mst[i] || noop[i] != mst[i] {
			t.Fatalf("row %d: engines disagree: mst=%d naive-default=%d per-func=%d noop=%d",
				i, mst[i], naiveDefault[i], perFuncWins[i], noop[i])
		}
	}
}

// TestRunSQLWithTrace covers the SQL entry point of the options API.
func TestRunSQLWithTrace(t *testing.T) {
	tab := optionsTable(t)
	root := holistic.NewTrace("sql")
	res, err := holistic.RunSQLWith(
		`select rank(order by v) over (order by d) as r from t`,
		map[string]*holistic.Table{"t": tab},
		holistic.WithTrace(root))
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.Column("r") == nil {
		t.Fatal("missing result column")
	}
	if !strings.Contains(root.Render(), "partition+order sort") {
		t.Fatalf("SQL trace missing sort phase:\n%s", root.Render())
	}
}
