package holistic

import "holistic/internal/frame"

// Frame is a window frame specification: mode, bounds, exclusion.
type Frame frame.Spec

// Bound is one frame boundary.
type Bound = frame.Bound

// Preceding bounds the frame n units before the current row (rows, key
// delta, or peer groups, depending on the frame mode).
func Preceding(n int64) Bound { return Bound{Type: frame.Preceding, Offset: n} }

// Following bounds the frame n units after the current row.
func Following(n int64) Bound { return Bound{Type: frame.Following, Offset: n} }

// PrecedingBy bounds the frame by a per-row offset expression — SQL allows
// arbitrary expressions as frame offsets (§2.2), which makes frames
// non-monotonic; the merge sort tree does not care (§4.1), the incremental
// competitors degrade (§6.5). The callback receives the ORIGINAL row index
// of the input table, so it can read per-row columns.
func PrecedingBy(offset func(row int) int64) Bound {
	return Bound{Type: frame.Preceding, OffsetFn: offset}
}

// FollowingBy bounds the frame by a per-row offset expression.
func FollowingBy(offset func(row int) int64) Bound {
	return Bound{Type: frame.Following, OffsetFn: offset}
}

// CurrentRow bounds the frame at the current row (including its ORDER BY
// peers in RANGE and GROUPS mode, per the SQL standard).
func CurrentRow() Bound { return Bound{Type: frame.CurrentRow} }

// UnboundedPreceding starts the frame at the partition start.
func UnboundedPreceding() Bound { return Bound{Type: frame.UnboundedPreceding} }

// UnboundedFollowing ends the frame at the partition end.
func UnboundedFollowing() Bound { return Bound{Type: frame.UnboundedFollowing} }

// Rows builds a ROWS frame: offsets count physical rows.
func Rows(start, end Bound) Frame {
	return Frame{Mode: frame.Rows, Start: start, End: end}
}

// Range builds a RANGE frame: offsets are order-key value deltas. Requires
// a single INT64 window ORDER BY key.
func Range(start, end Bound) Frame {
	return Frame{Mode: frame.Range, Start: start, End: end}
}

// Groups builds a GROUPS frame: offsets count ORDER BY peer groups.
func Groups(start, end Bound) Frame {
	return Frame{Mode: frame.Groups, Start: start, End: end}
}

// WholePartition is ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED
// FOLLOWING.
func WholePartition() Frame { return Frame(frame.WholePartition()) }

// ExcludeCurrentRow removes the current row from the frame.
func (f Frame) ExcludeCurrentRow() Frame {
	f.Exclude = frame.ExcludeCurrentRow
	return f
}

// ExcludeGroup removes the current row and all its ORDER BY peers.
func (f Frame) ExcludeGroup() Frame {
	f.Exclude = frame.ExcludeGroup
	return f
}

// ExcludeTies removes the current row's peers but keeps the row itself.
func (f Frame) ExcludeTies() Frame {
	f.Exclude = frame.ExcludeTies
	return f
}
