// Quickstart: framed holistic aggregates in a dozen lines.
//
// SQL:2011 forbids COUNT(DISTINCT ...) OVER (...) and RANK with a frame;
// this library implements them with the merge sort tree algorithms of the
// SIGMOD 2022 paper. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"holistic"
)

func main() {
	// Daily sales: day, product sold, revenue.
	day := []int64{1, 1, 2, 2, 3, 4, 4, 5, 6, 7, 7, 8}
	product := []string{"ale", "bok", "ale", "cup", "bok", "ale", "dye", "cup", "ale", "bok", "dye", "ale"}
	revenue := []float64{10, 25, 12, 8, 30, 11, 40, 9, 13, 27, 42, 12}

	table := holistic.MustNewTable(
		holistic.NewInt64Column("day", day, nil),
		holistic.NewStringColumn("product", product, nil),
		holistic.NewFloat64Column("revenue", revenue, nil),
	)

	// A 3-day sliding window ordered by day:
	//   window w as (order by day range between 2 preceding and current row)
	window := holistic.Over().
		OrderBy(holistic.Asc("day")).
		Frame(holistic.Range(holistic.Preceding(2), holistic.CurrentRow()))

	res, err := holistic.Run(table, window,
		// select count(distinct product) over w       -- illegal in SQL:2011!
		holistic.CountDistinct("product").As("assortment"),
		// select percentile_disc(0.5 order by revenue) over w
		holistic.MedianDisc(holistic.Asc("revenue")).As("median_rev"),
		// select rank(order by revenue desc) over w
		holistic.Rank(holistic.Desc("revenue")).As("rev_rank"),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("day product revenue | 3-day assortment  3-day median  rank-in-window")
	for i := 0; i < table.Rows(); i++ {
		fmt.Printf("%3d %-7s %7.0f | %17d %13.0f %15d\n",
			day[i], product[i], revenue[i],
			res.Column("assortment").Int64(i),
			res.Column("median_rev").Float64(i),
			res.Column("rev_rank").Int64(i),
		)
	}
}
