// The paper's proposed SQL, executed verbatim: §2.4 argues that framed
// holistic aggregates need no new grammar — PostgreSQL's parser already
// accepts DISTINCT and ORDER BY inside every function call and only rejects
// them during semantic analysis. This example runs the paper's flagship
// query through the library's SQL front end. Run with:
//
//	go run ./examples/sql
package main

import (
	"fmt"
	"log"

	"holistic"
	"holistic/internal/tpch"
)

const leaderboardSQL = `
select dbsystem, tps,
  count(distinct dbsystem) over w as competitors,
  rank(order by tps desc) over w as rank,
  first_value(tps order by tps desc) over w as best_tps,
  first_value(dbsystem order by tps desc) over w as best_system,
  lead(tps order by tps desc) over w as next_best_tps
from tpcc_results
window w as (order by submission_date
  range between unbounded preceding and current row)`

func main() {
	results := tpch.GenerateTPCCResults(60, 99)
	table := results.Table()

	fmt.Println("executing the paper's §2.4 query:")
	fmt.Println(leaderboardSQL)
	fmt.Println()

	res, err := holistic.RunSQL(leaderboardSQL, map[string]*holistic.Table{
		"tpcc_results": table,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("system      tps     competitors  rank  best system (tps)   next best")
	fmt.Println("----------  ------  -----------  ----  ------------------  ---------")
	for i := 0; i < res.Rows(); i += 4 {
		next := "–"
		if c := res.Column("next_best_tps"); !c.IsNull(i) {
			next = fmt.Sprintf("%.0f", c.Float64(i))
		}
		fmt.Printf("%-10s  %6.0f  %11d  %4d  %-10s (%6.0f)  %s\n",
			res.Column("dbsystem").StringAt(i),
			res.Column("tps").Float64(i),
			res.Column("competitors").Int64(i),
			res.Column("rank").Int64(i),
			res.Column("best_system").StringAt(i),
			res.Column("best_tps").Float64(i),
			next,
		)
	}

	// A second statement: the §1 moving percentile, with an interval
	// literal frame bound.
	l := tpch.GenerateLineitem(50_000, 1)
	delay := make([]int64, l.Len())
	for i := range delay {
		delay[i] = l.ReceiptDate[i] - l.ShipDate[i]
	}
	li := holistic.MustNewTable(
		holistic.NewInt64Column("l_shipdate", l.ShipDate, nil),
		holistic.NewInt64Column("delay", delay, nil),
	)
	p99, err := holistic.RunSQL(`
		select percentile_disc(0.99 order by delay) over (
		    order by l_shipdate
		    range between '1 week' preceding and current row) as p99
		from lineitem`,
		map[string]*holistic.Table{"lineitem": li})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmoving one-week p99 delivery delay over %d rows: first %d days, last %d days\n",
		li.Rows(), p99.Column("p99").Int64(0), p99.Column("p99").Int64(li.Rows()-1))
}
