// Streaming extension (the paper's §7 future-work direction): holistic
// aggregates over a sliding time window of a stream with out-of-order
// arrivals, maintained by amortized merge-sort-tree rebuilds.
//
// The scenario: a service emits per-request latencies, slightly out of
// order; we track the one-minute p50/p99 and the count of distinct latency
// values observed. Run with:
//
//	go run ./examples/streaming
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"holistic/internal/stream"
)

func main() {
	const windowMillis = 60_000
	agg, err := stream.NewAggregator(windowMillis, stream.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Endpoint latencies: a slow endpoint degrades mid-run and recovers.
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	late := 0
	fmt.Println("minute  requests(60s)  distinct   p50      p99")
	fmt.Println("------  -------------  ---------  -------  -------")
	for minute := 1; minute <= 10; minute++ {
		for i := 0; i < 50_000; i++ {
			now += rng.Int63n(3)
			// Out-of-order delivery: up to 200ms late.
			arrival := now - rng.Int63n(200)
			endpoint := rng.Int63n(25)
			latency := 20 + rng.Int63n(30) + endpoint // per-endpoint base
			if minute >= 4 && minute <= 6 && endpoint == 7 {
				latency += 400 // the degradation
			}
			// Value encodes latency; the distinct count tracks endpoints
			// through a second aggregator in a real system — here we fold
			// endpoint ids into a parallel aggregator.
			if err := agg.Observe(arrival, latency); err != nil {
				var lateErr *stream.ErrLate
				if errors.As(err, &lateErr) {
					late++
					continue
				}
				log.Fatal(err)
			}
		}
		p50, _ := agg.Percentile(0.50)
		p99, _ := agg.Percentile(0.99)
		fmt.Printf("%6d  %13d  %9d  %5dms  %5dms\n",
			minute, agg.Len(), agg.DistinctCount(), p50, p99)
	}
	fmt.Printf("\n%d arrivals dropped as too late (below the watermark)\n", late)
	fmt.Println("watch p99 spike during minutes 4-6 while p50 stays flat —")
	fmt.Println("exactly the signal framed percentiles exist to expose.")
}
