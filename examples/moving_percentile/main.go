// The paper's §1 delivery-time question: "What is the 99th percentile
// worst-case delivery time of a product — and how did it change over time?"
//
//	select l_shipdate,
//	  percentile_disc(0.99 order by l_receiptdate - l_shipdate) over w
//	from lineitem
//	window w as (order by l_shipdate
//	             range between '1 week' preceding and current row)
//
// SQL:2011 does not allow framing percentile_disc; the merge sort tree
// evaluates it in O(n log n). Run with:
//
//	go run ./examples/moving_percentile
package main

import (
	"fmt"
	"log"
	"time"

	"holistic"
	"holistic/internal/tpch"
)

func main() {
	const rows = 200_000
	l := tpch.GenerateLineitem(rows, 7)

	// delay = l_receiptdate - l_shipdate (days).
	delay := make([]int64, l.Len())
	for i := range delay {
		delay[i] = l.ReceiptDate[i] - l.ShipDate[i]
	}
	table := holistic.MustNewTable(
		holistic.NewInt64Column("l_shipdate", l.ShipDate, nil),
		holistic.NewInt64Column("delay_days", delay, nil),
	)

	window := holistic.Over().
		OrderBy(holistic.Asc("l_shipdate")).
		Frame(holistic.Range(holistic.Preceding(7), holistic.CurrentRow()))

	start := time.Now()
	res, err := holistic.Run(table, window,
		holistic.PercentileDisc(0.99, holistic.Asc("delay_days")).As("p99"),
		holistic.PercentileDisc(0.50, holistic.Asc("delay_days")).As("p50"),
		holistic.CountStar().As("shipments"),
	)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Print one sample per ~quarter.
	epoch := time.Unix(0, 0).UTC()
	fmt.Println("ship week ending  shipments(7d)  median delay  p99 delay")
	fmt.Println("----------------  -------------  ------------  ---------")
	lastPrinted := int64(-90)
	for i := 0; i < table.Rows(); i++ {
		if l.ShipDate[i]-lastPrinted < 90 {
			continue
		}
		lastPrinted = l.ShipDate[i]
		date := epoch.AddDate(0, 0, int(l.ShipDate[i])).Format("2006-01-02")
		fmt.Printf("%s        %13d  %9d days  %6d days\n",
			date,
			res.Column("shipments").Int64(i),
			res.Column("p50").Int64(i),
			res.Column("p99").Int64(i),
		)
	}
	fmt.Printf("\n%d rows, two framed percentiles and a count: %v\n", rows, elapsed.Round(time.Millisecond))
}
