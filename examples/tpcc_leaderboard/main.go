// The paper's §2.4 showcase: fair historical rankings of TPC-C benchmark
// submissions. For every submission, all statistics are computed against
// PREVIOUS submissions only — a frame on rank, first_value, lead and a
// distinct count, none of which SQL:2011 allows. The SQL this reproduces:
//
//	select dbsystem, tps,
//	  count(distinct dbsystem) over w,
//	  rank(order by tps desc) over w,
//	  first_value(tps order by tps desc) over w,
//	  first_value(dbsystem order by tps desc) over w,
//	  lead(tps order by tps desc) over w
//	from tpcc_results
//	window w as (order by submission_date
//	             range between unbounded preceding and current row)
//
// Run with:
//
//	go run ./examples/tpcc_leaderboard
package main

import (
	"fmt"
	"log"
	"time"

	"holistic"
	"holistic/internal/tpch"
)

func main() {
	results := tpch.GenerateTPCCResults(120, 2024)
	table := results.Table()

	window := holistic.Over().
		OrderBy(holistic.Asc("submission_date")).
		Frame(holistic.Range(holistic.UnboundedPreceding(), holistic.CurrentRow()))

	res, err := holistic.Run(table, window,
		holistic.CountDistinct("dbsystem").As("systems_so_far"),
		holistic.Rank(holistic.Desc("tps")).As("rank_at_submission"),
		holistic.FirstValue("tps", holistic.Desc("tps")).As("best_tps"),
		holistic.FirstValue("dbsystem", holistic.Desc("tps")).As("best_system"),
		holistic.Lead("tps", 1, holistic.Desc("tps")).As("runner_up_tps"),
	)
	if err != nil {
		log.Fatal(err)
	}

	epoch := time.Unix(0, 0).UTC()
	fmt.Println("date        system        tps  | rank  #competitors  leader (tps)        margin-to-next")
	fmt.Println("----------  ----------  ------ | ----  ------------  ------------------  --------------")
	for i := 0; i < table.Rows(); i += 7 { // print a sample
		date := epoch.AddDate(0, 0, int(results.SubmissionDate[i])).Format("2006-01-02")
		margin := "none below"
		if c := res.Column("runner_up_tps"); !c.IsNull(i) {
			margin = fmt.Sprintf("%+.0f tps", results.TPS[i]-c.Float64(i))
		}
		fmt.Printf("%s  %-10s  %6.0f | %4d  %12d  %-10s (%6.0f)  %s\n",
			date, results.System[i], results.TPS[i],
			res.Column("rank_at_submission").Int64(i),
			res.Column("systems_so_far").Int64(i),
			res.Column("best_system").StringAt(i),
			res.Column("best_tps").Float64(i),
			margin,
		)
	}
	fmt.Println("\nEach row judges a submission against the state of the art AT ITS TIME —")
	fmt.Println("early low numbers still rank #1 because later submissions are outside the frame.")
}
