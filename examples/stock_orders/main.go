// The paper's §2.2 non-constant frame bound example: stock market limit
// orders that are valid for a per-order time interval. Was an order placed
// at a favourable moment? Compare its price against the median of all
// orders during its own good_for window:
//
//	select price > median(price) over (
//	    order by placement_time
//	    range between current row and good_for following)
//	from stock_orders
//
// The per-row good_for bound makes the frames NON-MONOTONIC: a tuple can
// enter and leave the frame many times, which degrades incremental
// algorithms to O(n²) while the merge sort tree stays O(n log n) (§6.5).
// Run with:
//
//	go run ./examples/stock_orders
package main

import (
	"fmt"
	"log"
	"time"

	"holistic"
	"holistic/internal/tpch"
)

func main() {
	const rows = 100_000
	s := tpch.GenerateStockOrders(rows, 11)
	table := s.Table()
	goodFor := s.GoodFor

	frame := holistic.Range(
		holistic.CurrentRow(),
		// The frame end is an expression over the current row (§2.2).
		holistic.FollowingBy(func(row int) int64 { return goodFor[row] }),
	)
	window := holistic.Over().OrderBy(holistic.Asc("placement_time")).Frame(frame)

	start := time.Now()
	res, err := holistic.Run(table, window,
		holistic.MedianDisc(holistic.Asc("price")).As("median_while_valid"),
		holistic.CountStar().As("contemporaries"),
	)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	favourable := 0
	for i := 0; i < rows; i++ {
		if s.Price[i] > res.Column("median_while_valid").Float64(i) {
			favourable++
		}
	}
	fmt.Printf("%d limit orders; %d (%.1f%%) priced above the median of their validity window\n",
		rows, favourable, 100*float64(favourable)/rows)
	fmt.Println("\nsample orders:")
	fmt.Println("placed(s)  valid(s)  price    median-in-window  orders-in-window  above?")
	for i := 0; i < rows; i += rows / 12 {
		fmt.Printf("%8d  %8d  %7.2f  %16.2f  %16d  %v\n",
			s.PlacementTime[i], goodFor[i], s.Price[i],
			res.Column("median_while_valid").Float64(i),
			res.Column("contemporaries").Int64(i),
			s.Price[i] > res.Column("median_while_valid").Float64(i),
		)
	}
	fmt.Printf("\nnon-monotonic framed median over %d rows: %v (merge sort tree)\n", rows, elapsed.Round(time.Millisecond))
}
