package holistic

import (
	"math"
	"testing"
)

// TestEveryBuilderRuns drives each public function constructor through a
// real evaluation, checking SQL-level invariants of the results.
func TestEveryBuilderRuns(t *testing.T) {
	n := 40
	d := make([]int64, n)
	v := make([]int64, n)
	fv := make([]float64, n)
	s := make([]string, n)
	flt := make([]bool, n)
	vNulls := make([]bool, n)
	for i := 0; i < n; i++ {
		d[i] = int64(i / 2)
		v[i] = int64((i * 13) % 7)
		fv[i] = float64(i%5) + 0.5
		s[i] = string(rune('a' + i%4))
		flt[i] = i%3 != 0
		vNulls[i] = i%9 == 0
	}
	table := MustNewTable(
		NewInt64Column("d", d, nil),
		NewInt64Column("v", v, vNulls),
		NewFloat64Column("fv", fv, nil),
		NewStringColumn("s", s, nil),
		NewBoolColumn("flt", flt, nil),
	)
	w := Over().OrderBy(Asc("d")).Frame(Rows(Preceding(7), Following(2)))
	funcs := []*Func{
		CountStar().As("f1"),
		Count("v").As("f2"),
		Sum("v").As("f3"),
		Sum("fv").As("f4"),
		Avg("fv").As("f5"),
		Min("s").As("f6"),
		Max("fv").As("f7"),
		CountDistinct("s").Filter("flt").As("f8"),
		SumDistinct("v").As("f9"),
		AvgDistinct("fv").As("f10"),
		Rank(Asc("v")).As("f11"),
		DenseRank(Desc("v")).As("f12"),
		PercentRank(Asc("fv")).As("f13"),
		RowNumber(Asc("v")).As("f14"),
		CumeDist(Asc("v")).As("f15"),
		Ntile(4, Asc("v")).As("f16"),
		PercentileDisc(0.25, Asc("fv")).As("f17"),
		PercentileCont(0.75, Asc("fv")).As("f18"),
		Median(Asc("fv")).As("f19"),
		MedianDisc(Asc("v")).As("f20"),
		NthValue("s", 2, Asc("v")).As("f21"),
		FirstValue("v", Asc("v")).IgnoreNulls().As("f22"),
		LastValue("fv", Asc("fv")).As("f23"),
		Lead("s", 1, Asc("v")).As("f24"),
		Lag("s", 2, Asc("v")).As("f25"),
		Sum("v").WithFrame(WholePartition()).As("f26"),
		Max("v").WithEngine(EngineSegmentTree).As("f27"),
		AscNullsFirstProbe(table),
	}
	res, err := Run(table, w, funcs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// Rank-family invariants.
		rank := res.Column("f11").Int64(i)
		dense := res.Column("f12").Int64(i)
		rowno := res.Column("f14").Int64(i)
		size := res.Column("f1").Int64(i)
		if rank < 1 || rowno < 1 || dense < 1 {
			t.Fatalf("row %d: rank-family below 1", i)
		}
		if rank > rowno {
			t.Fatalf("row %d: rank %d > row_number %d", i, rank, rowno)
		}
		if pr := res.Column("f13").Float64(i); pr < 0 || pr > 1 {
			t.Fatalf("row %d: percent_rank %v", i, pr)
		}
		if cd := res.Column("f15").Float64(i); cd <= 0 || cd > 1 {
			t.Fatalf("row %d: cume_dist %v", i, cd)
		}
		if nt := res.Column("f16"); !nt.IsNull(i) && (nt.Int64(i) < 1 || nt.Int64(i) > 4) {
			t.Fatalf("row %d: ntile %d", i, nt.Int64(i))
		}
		// Percentile ordering: p25 <= median <= p75.
		p25 := res.Column("f17").Float64(i)
		med := res.Column("f19").Float64(i)
		p75 := res.Column("f18").Float64(i)
		if p25 > med+1e-9 || med > p75+1e-9 {
			t.Fatalf("row %d: percentiles out of order %v %v %v", i, p25, med, p75)
		}
		// COUNT(*) bounds everything.
		if cnt := res.Column("f2").Int64(i); cnt > size {
			t.Fatalf("row %d: count(v) %d > count(*) %d", i, cnt, size)
		}
		// Whole-partition sum is constant.
		if i > 0 && res.Column("f26").Int64(i) != res.Column("f26").Int64(0) {
			t.Fatal("whole-partition frame must give a constant")
		}
		// min(s) is a valid value.
		if ms := res.Column("f6").StringAt(i); ms < "a" || ms > "d" {
			t.Fatalf("row %d: min(s) = %q", i, ms)
		}
		if mx := res.Column("f7").Float64(i); math.IsNaN(mx) {
			t.Fatalf("row %d: max is NaN", i)
		}
	}
}

// AscNullsFirstProbe exercises the NULLS FIRST/LAST sort-key helpers in a
// real function.
func AscNullsFirstProbe(_ *Table) *Func {
	return FirstValue("v", AscNullsFirst("v"), DescNullsLast("d")).As("f28")
}

func TestDefaultOutputNames(t *testing.T) {
	table := MustNewTable(
		NewInt64Column("d", []int64{1, 2}, nil),
		NewInt64Column("v", []int64{1, 2}, nil),
	)
	res, err := Run(table, Over().OrderBy(Asc("d")),
		CountDistinct("v"),
		Rank(Asc("v")),
		Ntile(3, Asc("v")),
		NthValue("v", 2, Asc("v")),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"count_distinct_v", "rank", "ntile_3", "nth_value_v_2"} {
		if res.Column(name) == nil {
			t.Fatalf("missing default output %q", name)
		}
	}
}
