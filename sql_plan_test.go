package holistic

import (
	"strings"
	"testing"
)

func planTestTable() *Table {
	return MustNewTable(
		NewInt64Column("g", []int64{1, 2, 1, 2, 1, 2, 1, 2}, nil),
		NewInt64Column("d", []int64{3, 1, 4, 1, 5, 9, 2, 6}, nil),
		NewInt64Column("v", []int64{2, 7, 1, 8, 2, 8, 1, 8}, nil),
	)
}

const planTestSQL = `
	select count(distinct v) over w as cd,
	       count(distinct v) over (partition by g order by d groups 2 preceding) as cd2,
	       rank(order by v) over w as r,
	       sum(v) over (partition by g) as s
	from t
	window w as (partition by g order by d)`

func TestPlanSQLStructured(t *testing.T) {
	tables := map[string]*Table{"t": planTestTable()}
	sp, err := PlanSQL(planTestSQL, tables)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Stats.Operators != len(sp.Nodes) || len(sp.Nodes) == 0 {
		t.Fatalf("operators = %d, nodes = %d", sp.Stats.Operators, len(sp.Nodes))
	}
	// One sort serves all four functions: w and its frame variant merge into
	// one window (dedup, not counted as sharing), the unordered SUM window
	// (INT64 argument) joins the shared sort, and the two distinct counts
	// share one tree.
	if sp.Stats.SortsShared != 1 || sp.Stats.TreesShared != 1 {
		t.Fatalf("stats = %+v, want 1 sort and 1 tree shared", sp.Stats)
	}
	text := RenderPlan(sp.Nodes)
	if !strings.Contains(text, "[shared by cd, cd2") {
		t.Fatalf("rendering lacks shared-by annotation:\n%s", text)
	}

	// Without the FROM table the planner cannot see that v is INT64, so the
	// float-sensitive SUM must stay on its own sort.
	conservative, err := PlanSQL(planTestSQL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if conservative.Stats.SortsShared != 0 {
		t.Fatalf("kind-blind stats = %+v, want 0 sorts shared", conservative.Stats)
	}
}

func TestWithoutSharedPlanEquivalence(t *testing.T) {
	tables := map[string]*Table{"t": planTestTable()}
	shared, err := RunSQL(planTestSQL, tables)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := RunSQLWith(planTestSQL, tables, WithoutSharedPlan())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range shared.Columns() {
		other := legacy.Column(col.Name())
		if other == nil {
			t.Fatalf("column %s missing from NoSharedPlan run", col.Name())
		}
		for i := 0; i < col.Len(); i++ {
			if col.IsNull(i) != other.IsNull(i) || (!col.IsNull(i) && col.Int64(i) != other.Int64(i)) {
				t.Fatalf("%s row %d: shared/unshared divergence", col.Name(), i)
			}
		}
	}
}
