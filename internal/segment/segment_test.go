package segment

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"holistic/internal/core"
	"holistic/internal/csvio"
)

// testFile builds a deterministic random table exercising every encoding:
// int64, date, float64 and strings, each with NULLs, plus a never-null
// column to pin the mask-free path.
func testFile(seed int64, n int) *csvio.File {
	rng := rand.New(rand.NewSource(seed))
	g := make([]int64, n)
	d := make([]int64, n)
	v := make([]int64, n)
	f := make([]float64, n)
	s := make([]string, n)
	vNull := make([]bool, n)
	sNull := make([]bool, n)
	words := []string{"ash", "beech", "cedar", "fir", "oak"}
	for i := range g {
		g[i] = int64(rng.Intn(4))
		d[i] = int64(rng.Intn(60)) // days since epoch; duplicates on purpose
		v[i] = int64(rng.Intn(1000) - 500)
		f[i] = float64(rng.Intn(100)) / 4
		s[i] = words[rng.Intn(len(words))]
		vNull[i] = rng.Intn(10) == 0
		sNull[i] = rng.Intn(12) == 0
	}
	table := core.MustNewTable(
		core.NewInt64Column("g", g, nil),
		core.NewInt64Column("d", d, nil),
		core.NewInt64Column("v", v, vNull),
		core.NewFloat64Column("f", f, nil),
		core.NewStringColumn("s", s, sNull),
	)
	return &csvio.File{Table: table, DateColumns: map[string]bool{"d": true}}
}

// sliceFile extracts rows [lo, hi) into a fresh file.
func sliceFile(f *csvio.File, lo, hi int) *csvio.File {
	cols := make([]*core.Column, 0, len(f.Table.Columns()))
	for _, c := range f.Table.Columns() {
		n := hi - lo
		var nulls []bool
		if c.HasNulls() {
			nulls = make([]bool, n)
			for i := range nulls {
				nulls[i] = c.IsNull(lo + i)
			}
		}
		switch c.Kind() {
		case core.Int64:
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = c.Int64(lo + i)
			}
			cols = append(cols, core.NewInt64Column(c.Name(), vals, nulls))
		case core.Float64:
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = c.Float64(lo + i)
			}
			cols = append(cols, core.NewFloat64Column(c.Name(), vals, nulls))
		default:
			vals := make([]string, n)
			for i := range vals {
				vals[i] = c.StringAt(lo + i)
			}
			cols = append(cols, core.NewStringColumn(c.Name(), vals, nulls))
		}
	}
	return &csvio.File{Table: core.MustNewTable(cols...), DateColumns: f.DateColumns}
}

// writeSegments splits f into parts at the given row boundaries and writes
// one segment per part into dir, returning the segment IDs.
func writeSegments(t testing.TB, dir string, f *csvio.File, bounds []int, blockRows int) []string {
	t.Helper()
	var ids []string
	lo := 0
	for i, hi := range append(bounds, f.Table.Rows()) {
		if hi == lo {
			continue
		}
		w, err := NewWriter(filepath.Join(dir, fmt.Sprintf("part-%03d%s", i, FileSuffix)), blockRows)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteTable(sliceFile(f, lo, hi), int64(lo)); err != nil {
			t.Fatal(err)
		}
		id, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		lo = hi
	}
	return ids
}

// renderCSV renders a file for byte-identity comparison.
func renderCSV(t testing.TB, f *csvio.File) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := csvio.Write(&buf, f.Table, f.DateColumns); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := testFile(1, 100)
	dir := t.TempDir()
	path := filepath.Join(dir, "one"+FileSuffix)
	w, err := NewWriter(path, 7) // deliberately tiny blocks: 15 per column
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTable(f, 0); err != nil {
		t.Fatal(err)
	}
	id, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.ID() != id {
		t.Fatalf("reader ID %s != writer ID %s", r.ID(), id)
	}
	if r.Rows() != 100 || r.StartRow() != 0 {
		t.Fatalf("rows=%d start=%d", r.Rows(), r.StartRow())
	}
	if got := len(r.Manifest().Columns[0].Blocks); got != 15 {
		t.Fatalf("block count %d, want 15", got)
	}
	cols := make([]*core.Column, 0)
	for _, meta := range r.Manifest().Columns {
		c, err := r.Column(meta.Name)
		if err != nil {
			t.Fatal(err)
		}
		cols = append(cols, c)
	}
	back := &csvio.File{Table: core.MustNewTable(cols...), DateColumns: f.DateColumns}
	if !bytes.Equal(renderCSV(t, back), renderCSV(t, f)) {
		t.Fatal("segment round trip is not byte-identical")
	}
}

// TestCorruptAnyByteFails flips every single byte of a segment file in
// turn; each flip must be caught by Open or by a column load — the format
// leaves no unchecked byte.
func TestCorruptAnyByteFails(t *testing.T) {
	f := testFile(2, 30)
	dir := t.TempDir()
	path := filepath.Join(dir, "c"+FileSuffix)
	w, err := NewWriter(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTable(f, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := range orig {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0xff
		bad := filepath.Join(dir, "bad"+FileSuffix)
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(bad)
		if err != nil {
			continue // framing check caught it
		}
		caught := false
		for _, meta := range r.Manifest().Columns {
			if _, err := r.Column(meta.Name); err != nil {
				caught = true
				break
			}
		}
		r.Close()
		if !caught {
			t.Fatalf("flipping byte %d of %d went undetected", pos, len(orig))
		}
	}
}

func TestTruncationFailsCleanly(t *testing.T) {
	f := testFile(3, 40)
	dir := t.TempDir()
	path := filepath.Join(dir, "t"+FileSuffix)
	w, err := NewWriter(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTable(f, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(headerMagic), len(orig) / 2, len(orig) - footerLen, len(orig) - 1} {
		bad := filepath.Join(dir, "short"+FileSuffix)
		if err := os.WriteFile(bad, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(bad); err == nil {
			r.Close()
			t.Fatalf("truncation to %d of %d bytes went undetected", cut, len(orig))
		}
	}
}

func TestOpenDir(t *testing.T) {
	f := testFile(4, 120)
	dir := t.TempDir()
	ids := writeSegments(t, dir, f, []int{31, 64, 97}, 16)
	if len(ids) != 4 {
		t.Fatalf("wrote %d segments, want 4", len(ids))
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Rows() != 120 || len(d.Segments()) != 4 {
		t.Fatalf("rows=%d segments=%d", d.Rows(), len(d.Segments()))
	}
	got, err := d.File(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderCSV(t, got), renderCSV(t, f)) {
		t.Fatal("multi-segment materialization differs from the source table")
	}
	if v := d.Version(); len(v) != 8 {
		t.Fatalf("version %q", v)
	}
}

func TestOpenDirRejectsGapsAndSchemaDrift(t *testing.T) {
	f := testFile(5, 60)
	// A missing middle segment leaves a row gap.
	gapDir := t.TempDir()
	writeSegments(t, gapDir, f, []int{20, 40}, 16)
	if err := os.Remove(filepath.Join(gapDir, "part-001"+FileSuffix)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(gapDir); err == nil {
		t.Fatal("row gap went undetected")
	}
	// A segment with different columns is schema drift.
	driftDir := t.TempDir()
	writeSegments(t, driftDir, f, nil, 16)
	other := &csvio.File{Table: core.MustNewTable(core.NewInt64Column("x", []int64{1}, nil))}
	w, err := NewWriter(filepath.Join(driftDir, "zz"+FileSuffix), 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTable(other, 60); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(driftDir); err == nil {
		t.Fatal("schema drift went undetected")
	}
	// An empty directory is not a dataset.
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Fatal("empty directory accepted")
	}
}

// countingCache wraps GetOrBuild with a build counter to observe reuse.
type countingCache struct {
	vals   map[string]any
	builds int
}

func (c *countingCache) GetOrBuild(key string, build func() (any, int64, error)) (any, error) {
	if v, ok := c.vals[key]; ok {
		return v, nil
	}
	v, _, err := build()
	if err != nil {
		return nil, err
	}
	c.builds++
	if c.vals == nil {
		c.vals = map[string]any{}
	}
	c.vals[key] = v
	return v, nil
}

func TestDirFileCachesPerSegmentColumns(t *testing.T) {
	f := testFile(6, 80)
	dir := t.TempDir()
	writeSegments(t, dir, f, []int{40}, 16)
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cache := &countingCache{}
	if _, err := d.File(cache); err != nil {
		t.Fatal(err)
	}
	want := 2 * len(f.Table.Columns()) // 2 segments x 5 columns
	if cache.builds != want {
		t.Fatalf("first materialization built %d entries, want %d", cache.builds, want)
	}
	if _, err := d.File(cache); err != nil {
		t.Fatal(err)
	}
	if cache.builds != want {
		t.Fatalf("second materialization rebuilt columns (%d builds, want %d)", cache.builds, want)
	}
	// Keys are content-addressed per segment: re-opening the same files
	// yields the same IDs, so a fresh Dir hits the warm cache.
	d2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := d2.File(cache); err != nil {
		t.Fatal(err)
	}
	if cache.builds != want {
		t.Fatalf("re-opened dir missed the content-addressed cache (%d builds)", cache.builds)
	}
}
