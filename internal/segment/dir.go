package segment

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"holistic/internal/core"
	"holistic/internal/csvio"
)

// Cache is the structure-cache hook consumed by Dir materialization: the
// same single-flight, byte-budgeted GetOrBuild shape as core.TreeCache, so
// *treecache.Cache satisfies it directly. Per-segment column loads are
// cached under content-addressed keys ("seg:<id>|col:<name>") — no dataset
// or version prefix — so when a dataset is partially re-ingested, entries
// for untouched segments remain valid and only the replaced segments'
// columns are re-read from disk.
type Cache interface {
	GetOrBuild(key string, build func() (value any, bytes int64, err error)) (any, error)
}

// Dir is an opened multi-segment dataset directory: every *.seg file,
// schema-checked and ordered by start row into one logical table.
type Dir struct {
	path string
	segs []*Reader
	rows int
}

// OpenDir opens every segment in dir and validates that they form one
// dataset: identical schemas and a gap-free tiling of rows starting at 0.
func OpenDir(dir string) (*Dir, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	d := &Dir{path: dir}
	ok := false
	defer func() {
		if !ok {
			d.Close()
		}
	}()
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != FileSuffix {
			continue
		}
		r, err := Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		d.segs = append(d.segs, r)
	}
	if len(d.segs) == 0 {
		return nil, fmt.Errorf("segment: %s holds no %s files", dir, FileSuffix)
	}
	sort.Slice(d.segs, func(i, j int) bool { return d.segs[i].StartRow() < d.segs[j].StartRow() })
	sig := d.segs[0].man.schemaSig()
	var next int64
	for _, s := range d.segs {
		if got := s.man.schemaSig(); got != sig {
			return nil, fmt.Errorf("segment: %s: schema %s differs from %s's %s", s.path, got, d.segs[0].path, sig)
		}
		if s.StartRow() != next {
			return nil, fmt.Errorf("segment: %s starts at row %d, expected %d (missing or overlapping segment)", s.path, s.StartRow(), next)
		}
		next += int64(s.Rows())
	}
	d.rows = int(next)
	ok = true
	return d, nil
}

// Rows returns the dataset's total row count.
func (d *Dir) Rows() int { return d.rows }

// Segments returns the ordered segment readers (shared, not a copy).
func (d *Dir) Segments() []*Reader { return d.segs }

// Path returns the dataset directory.
func (d *Dir) Path() string { return d.path }

// Version derives a content version for the whole dataset from its
// segments' IDs and row placement — suitable as a cache scope: any change
// to any segment changes the version.
func (d *Dir) Version() string {
	h := crc32.New(castagnoli)
	for _, s := range d.segs {
		fmt.Fprintf(h, "%s@%d;", s.ID(), s.StartRow())
	}
	return fmt.Sprintf("%08x", h.Sum32())
}

// Close closes every segment.
func (d *Dir) Close() error {
	var first error
	for _, s := range d.segs {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// loadCached loads one segment's column through the cache (or directly
// when cache is nil).
func loadCached(cache Cache, s *Reader, name string) (*colData, error) {
	if cache == nil {
		return s.load(name)
	}
	got, err := cache.GetOrBuild("seg:"+s.ID()+"|col:"+name, func() (any, int64, error) {
		d, err := s.load(name)
		if err != nil {
			return nil, 0, err
		}
		return d, d.bytes(), nil
	})
	if err != nil {
		return nil, err
	}
	if d, okType := got.(*colData); okType {
		return d, nil
	}
	return s.load(name)
}

// File materializes the dataset into an in-memory table by concatenating
// the per-segment columns, loading each through the cache. The result is
// exactly what csvio.Read of the original source would have produced, so
// the query path above (operator, tree cache, server) is oblivious to
// whether a dataset arrived in one piece or as segments.
func (d *Dir) File(cache Cache) (*csvio.File, error) {
	first := d.segs[0].man
	cols := make([]*core.Column, len(first.Columns))
	dateCols := map[string]bool{}
	for ci, meta := range first.Columns {
		parts := make([]*colData, len(d.segs))
		anyNull := false
		for si, s := range d.segs {
			p, err := loadCached(cache, s, meta.Name)
			if err != nil {
				return nil, err
			}
			parts[si] = p
			anyNull = anyNull || p.nulls != nil
		}
		whole := &colData{encoding: meta.Encoding, date: meta.Date}
		if anyNull {
			whole.nulls = make([]bool, 0, d.rows)
		}
		for si, p := range parts {
			switch meta.Encoding {
			case EncInt64:
				whole.ints = append(whole.ints, p.ints...)
			case EncFloat64:
				whole.floats = append(whole.floats, p.floats...)
			case EncStrDict:
				whole.strs = append(whole.strs, p.strs...)
			}
			if anyNull {
				if p.nulls != nil {
					whole.nulls = append(whole.nulls, p.nulls...)
				} else {
					whole.nulls = append(whole.nulls, make([]bool, d.segs[si].Rows())...)
				}
			}
		}
		cols[ci] = whole.column(meta.Name)
		if meta.Date {
			dateCols[meta.Name] = true
		}
	}
	table, err := core.NewTable(cols...)
	if err != nil {
		return nil, err
	}
	return &csvio.File{Table: table, DateColumns: dateCols}, nil
}
