package segment

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"unicode/utf8"

	"holistic/internal/core"
	"holistic/internal/csvio"
)

// Writer streams one table into a segment file. Data is written to a
// temporary file in the target directory and atomically renamed into place
// by Finish, so a crashed or aborted write never leaves a partial segment
// behind — a property the resumable ingester leans on: any *.seg file that
// exists is complete and verified.
type Writer struct {
	path      string
	tmp       *os.File
	bw        *bufio.Writer
	off       int64
	blockRows int
	man       Manifest
	wrote     bool
	scratch   bytes.Buffer
}

// NewWriter opens a segment writer targeting path. blockRows <= 0 selects
// DefaultBlockRows.
func NewWriter(path string, blockRows int) (*Writer, error) {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".seg-tmp-*")
	if err != nil {
		return nil, fmt.Errorf("segment: creating temp file: %w", err)
	}
	w := &Writer{path: path, tmp: tmp, bw: bufio.NewWriter(tmp), blockRows: blockRows}
	if _, err := w.bw.WriteString(headerMagic); err != nil {
		w.Abort()
		return nil, err
	}
	w.off = int64(len(headerMagic))
	w.man = Manifest{FormatVersion: FormatVersion, BlockRows: blockRows}
	return w, nil
}

// WriteTable writes the file's table as this segment's contents. startRow
// is the global position of the table's first row within the dataset.
// WriteTable must be called exactly once before Finish.
func (w *Writer) WriteTable(f *csvio.File, startRow int64) error {
	if w.wrote {
		return fmt.Errorf("segment: WriteTable called twice")
	}
	w.wrote = true
	t := f.Table
	if t.Rows() == 0 {
		return fmt.Errorf("segment: refusing to write an empty segment")
	}
	w.man.Rows = t.Rows()
	w.man.StartRow = startRow
	for _, col := range t.Columns() {
		// Column names travel through the JSON manifest, and Go's JSON
		// encoder silently rewrites invalid UTF-8 to U+FFFD — which would
		// break read-back identity. Reject instead of corrupting.
		if !utf8.ValidString(col.Name()) {
			return fmt.Errorf("segment: column name %q is not valid UTF-8", col.Name())
		}
		meta := ColumnMeta{Name: col.Name()}
		switch col.Kind() {
		case core.Int64:
			meta.Encoding = EncInt64
			meta.Date = f.DateColumns[col.Name()]
		case core.Float64:
			meta.Encoding = EncFloat64
		case core.String:
			meta.Encoding = EncStrDict
		default:
			return fmt.Errorf("segment: column %q has unsupported kind %v", col.Name(), col.Kind())
		}
		for lo := 0; lo < t.Rows(); lo += w.blockRows {
			hi := min(lo+w.blockRows, t.Rows())
			if err := w.writeBlock(&meta, col, lo, hi); err != nil {
				return err
			}
		}
		w.man.Columns = append(w.man.Columns, meta)
	}
	return nil
}

// writeBlock encodes rows [lo, hi) of col as one block and appends its
// index entry to meta.
func (w *Writer) writeBlock(meta *ColumnMeta, col *core.Column, lo, hi int) error {
	rows := hi - lo
	buf := &w.scratch
	buf.Reset()
	// Null bitmap: one bit per row, set = NULL.
	bm := make([]byte, (rows+7)/8)
	for i := lo; i < hi; i++ {
		if col.IsNull(i) {
			bm[(i-lo)/8] |= 1 << ((i - lo) % 8)
		}
	}
	buf.Write(bm)
	var u64 [8]byte
	switch meta.Encoding {
	case EncInt64:
		for i := lo; i < hi; i++ {
			binary.LittleEndian.PutUint64(u64[:], uint64(col.Int64(i)))
			buf.Write(u64[:])
		}
	case EncFloat64:
		for i := lo; i < hi; i++ {
			binary.LittleEndian.PutUint64(u64[:], math.Float64bits(col.Float64(i)))
			buf.Write(u64[:])
		}
	case EncStrDict:
		// Per-block dictionary in first-occurrence order; NULL rows take
		// code 0 (decoders consult the bitmap before the code).
		dict := map[string]uint32{}
		var order []string
		codes := make([]uint32, rows)
		for i := lo; i < hi; i++ {
			if col.IsNull(i) {
				continue
			}
			s := col.StringAt(i)
			code, ok := dict[s]
			if !ok {
				code = u32(len(order))
				dict[s] = code
				order = append(order, s)
			}
			codes[i-lo] = code
		}
		var u4 [4]byte
		binary.LittleEndian.PutUint32(u4[:], u32(len(order)))
		buf.Write(u4[:])
		for _, s := range order {
			binary.LittleEndian.PutUint32(u4[:], u32(len(s)))
			buf.Write(u4[:])
			buf.WriteString(s)
		}
		for _, c := range codes {
			binary.LittleEndian.PutUint32(u4[:], c)
			buf.Write(u4[:])
		}
	}
	b := buf.Bytes()
	if _, err := w.bw.Write(b); err != nil {
		return err
	}
	meta.Blocks = append(meta.Blocks, BlockMeta{
		Offset: w.off,
		Length: int64(len(b)),
		Rows:   rows,
		CRC:    crc32.Checksum(b, castagnoli),
	})
	w.off += int64(len(b))
	return nil
}

// Finish writes the manifest and footer, syncs, and atomically renames the
// temporary file into place. It returns the segment's content-derived ID.
func (w *Writer) Finish() (string, error) {
	if !w.wrote {
		w.Abort()
		return "", fmt.Errorf("segment: Finish before WriteTable")
	}
	mb, err := json.Marshal(&w.man)
	if err != nil {
		w.Abort()
		return "", err
	}
	manifestOff := w.off
	manifestCRC := crc32.Checksum(mb, castagnoli)
	var footer [footerLen]byte
	binary.LittleEndian.PutUint64(footer[0:], uint64(manifestOff))
	binary.LittleEndian.PutUint64(footer[8:], uint64(len(mb)))
	binary.LittleEndian.PutUint32(footer[16:], manifestCRC)
	binary.LittleEndian.PutUint32(footer[20:], footerMagic)
	if _, err := w.bw.Write(mb); err != nil {
		w.Abort()
		return "", err
	}
	if _, err := w.bw.Write(footer[:]); err != nil {
		w.Abort()
		return "", err
	}
	if err := w.bw.Flush(); err != nil {
		w.Abort()
		return "", err
	}
	if err := w.tmp.Sync(); err != nil {
		w.Abort()
		return "", err
	}
	tmpName := w.tmp.Name()
	if err := w.tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", err
	}
	w.tmp = nil
	if err := os.Rename(tmpName, w.path); err != nil {
		os.Remove(tmpName)
		return "", err
	}
	return segmentID(manifestCRC), nil
}

// Abort discards the temporary file. Safe to call after a failed Finish.
func (w *Writer) Abort() {
	if w.tmp != nil {
		name := w.tmp.Name()
		w.tmp.Close()
		os.Remove(name)
		w.tmp = nil
	}
}

// segmentID renders the content-derived segment identity.
func segmentID(manifestCRC uint32) string {
	return fmt.Sprintf("%08x", manifestCRC)
}
