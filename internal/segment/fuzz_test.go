package segment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"holistic/internal/core"
	"holistic/internal/csvio"
)

// FuzzSegmentRoundTrip drives the full segment lifecycle from arbitrary
// CSV input: whatever csvio accepts must survive a write→read round trip
// byte-identically, any single corrupted byte of the file must be caught
// by Open or a column load, and any truncation must fail Open cleanly.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte("a,b\n1,x\n2,y\n3,\n"), uint8(2), uint16(7))
	f.Add([]byte("d,v\n2024-01-01,1.5\n2024-02-02,\n"), uint8(1), uint16(40))
	f.Add([]byte("i\n1\n2\n3\n4\n5\n6\n7\n8\n9\n"), uint8(3), uint16(0))
	f.Add([]byte("s\n\"q,u\"\n\n"), uint8(9), uint16(999))
	f.Fuzz(func(t *testing.T, csvData []byte, blockRows uint8, pos uint16) {
		file, err := csvio.Read(bytes.NewReader(csvData))
		if err != nil || file.Table.Rows() == 0 {
			return
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "f"+FileSuffix)
		w, err := NewWriter(path, int(blockRows%32)+1)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteTable(file, 0); err != nil {
			// Tables the format rejects by contract (e.g. non-UTF-8 column
			// names) are uninteresting inputs, not failures.
			w.Abort()
			return
		}
		if _, err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatalf("reopening just-written segment: %v", err)
		}
		cols := make([]*core.Column, 0, len(r.Manifest().Columns))
		for _, meta := range r.Manifest().Columns {
			c, err := r.Column(meta.Name)
			if err != nil {
				t.Fatalf("loading column %q: %v", meta.Name, err)
			}
			cols = append(cols, c)
		}
		r.Close()
		back := &csvio.File{Table: core.MustNewTable(cols...), DateColumns: file.DateColumns}
		var orig, got bytes.Buffer
		if err := csvio.Write(&orig, file.Table, file.DateColumns); err != nil {
			t.Fatal(err)
		}
		if err := csvio.Write(&got, back.Table, back.DateColumns); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(orig.Bytes(), got.Bytes()) {
			t.Fatalf("round trip not byte-identical:\n%q\nvs\n%q", orig.Bytes(), got.Bytes())
		}

		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt one byte: every byte of the file is covered by a check.
		p := int(pos) % len(raw)
		mut := append([]byte(nil), raw...)
		mut[p] ^= 1 << (blockRows % 8)
		bad := filepath.Join(dir, "bad"+FileSuffix)
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if br, err := Open(bad); err == nil {
			caught := false
			for _, meta := range br.Manifest().Columns {
				if _, err := br.Column(meta.Name); err != nil {
					caught = true
					break
				}
			}
			br.Close()
			if !caught {
				t.Fatalf("flipped bit at byte %d went undetected", p)
			}
		}
		// Truncate: a prefix is never a valid segment.
		if err := os.WriteFile(bad, raw[:p], 0o644); err != nil {
			t.Fatal(err)
		}
		if br, err := Open(bad); err == nil {
			br.Close()
			t.Fatalf("truncation to %d of %d bytes went undetected", p, len(raw))
		}
	})
}
