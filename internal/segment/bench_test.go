package segment

import (
	"testing"

	"holistic"
	"holistic/internal/mst"
	"holistic/internal/treecache"
)

// BenchmarkEvalSegmented measures the out-of-core query path end to end:
// materialize a four-segment dataset through the column cache and evaluate
// a framed window query with spill-chunked trees. The cache is warmed
// outside the loop, so the steady state — what a windowd request sees — is
// measured.
func BenchmarkEvalSegmented(b *testing.B) {
	const n = 20000
	ram := testFile(99, n)
	dir := b.TempDir()
	writeSegments(b, dir, ram, []int{n / 4, n / 2, 3 * n / 4}, 0)
	d, err := OpenDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	cache := treecache.New(256 << 20)
	segFile, err := d.File(cache)
	if err != nil {
		b.Fatal(err)
	}
	q := `select sum(v) over w as s, rank(order by v) over w as r
	      from t window w as (partition by g order by d, v
	                          rows between 100 preceding and 100 following)`
	opt := holistic.Options{
		Tree:       mst.Options{SpillRows: n / 8},
		Cache:      cache,
		CacheScope: "t@" + d.Version(),
	}
	tables := map[string]*holistic.Table{"t": segFile.Table}
	if _, err := holistic.RunSQLOptions(q, tables, opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := holistic.RunSQLOptions(q, tables, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(n * 8))
}

// BenchmarkSegmentMaterialize measures the cold materialization path: per
// iteration the column cache starts empty, so every block is read from
// disk, CRC-checked and decoded.
func BenchmarkSegmentMaterialize(b *testing.B) {
	const n = 20000
	ram := testFile(98, n)
	dir := b.TempDir()
	writeSegments(b, dir, ram, []int{n / 4, n / 2, 3 * n / 4}, 0)
	d, err := OpenDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.File(nil); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(n * 8 * len(ram.Table.Columns())))
}
