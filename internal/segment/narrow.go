package segment

// Audited narrowing funnels (see internal/analysis/narrowconv): block
// encoding stores row counts and dictionary codes as u32, and those
// quantities are structurally bounded far below 2³² — a block holds at
// most BlockRows rows (the writer splits columns), and a block dictionary
// holds at most one entry per row. Routing every narrowing through these
// funnels keeps the conversions findable and the bound arguments in one
// place.

//lint:narrowconv-entry block row counts and dictionary sizes are bounded by the per-block row cap, far below 2³²
func u32(v int) uint32 {
	return uint32(v)
}
