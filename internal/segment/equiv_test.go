package segment

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"holistic"
	"holistic/internal/csvio"
	"holistic/internal/mst"
	"holistic/internal/treecache"
)

// equivalenceQueries covers all 22 window functions of the engine (plus
// the count(*) / count(distinct) / sum(distinct) / avg(distinct) variants)
// across framed, running and unbounded windows.
var equivalenceQueries = []string{
	`select count(*) over w as c1, count(v) over w as c2,
	        count(distinct s) over w as c3,
	        sum(v) over w as s1, sum(distinct v) over w as s2,
	        avg(v) over w as a1, avg(distinct v) over w as a2,
	        min(v) over w as mn, max(v) over w as mx
	 from t window w as (partition by g order by d, v
	                     rows between 3 preceding and 2 following)`,
	`select rank(order by v) over w as r1,
	        dense_rank(order by v) over w as r2,
	        percent_rank(order by v) over w as r3,
	        row_number(order by v) over w as r4,
	        cume_dist(order by v) over w as r5,
	        ntile(3 order by v) over w as r6
	 from t window w as (partition by g order by d, v
	                     rows between 7 preceding and current row)`,
	`select percentile_disc(0.25 order by v) over w as p1,
	        percentile_cont(0.75 order by v) over w as p2,
	        median(order by v) over w as p3,
	        nth_value(s, 2 order by v) over w as n1,
	        first_value(s order by v) over w as n2,
	        last_value(s order by v) over w as n3
	 from t window w as (partition by g order by d, v
	                     rows between unbounded preceding and current row)`,
	`select lead(v, 2 order by v) over w as l1,
	        lag(s order by v) over w as l2,
	        sum(f) over w as sf, count(f) over w as cf
	 from t window w as (partition by g order by d
	                     range between 5 preceding and 5 following)`,
}

// TestSegmentedEquivalence is the acceptance harness: a randomized dataset
// written as >= 4 on-disk segments and evaluated with spill-chunked trees
// must return byte-identical results to the all-in-RAM path for every
// window function.
func TestSegmentedEquivalence(t *testing.T) {
	ram := testFile(22, 403)
	dir := t.TempDir()
	ids := writeSegments(t, dir, ram, []int{80, 160, 275}, 64)
	if len(ids) < 4 {
		t.Fatalf("only %d segments", len(ids))
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cache := treecache.New(32 << 20)
	segFile, err := d.File(cache)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderCSV(t, segFile), renderCSV(t, ram)) {
		t.Fatal("materialized dataset differs from source")
	}
	for qi, q := range equivalenceQueries {
		ramOut, err := holistic.RunSQL(q, map[string]*holistic.Table{"t": ram.Table})
		if err != nil {
			t.Fatalf("query %d in-RAM: %v", qi, err)
		}
		segOut, err := holistic.RunSQLOptions(q, map[string]*holistic.Table{"t": segFile.Table}, holistic.Options{
			Tree:       mst.Options{SpillRows: 37},
			Cache:      cache,
			CacheScope: "t@" + d.Version(),
		})
		if err != nil {
			t.Fatalf("query %d segmented: %v", qi, err)
		}
		var ramCSV, segCSV bytes.Buffer
		if err := csvio.Write(&ramCSV, ramOut, nil); err != nil {
			t.Fatal(err)
		}
		if err := csvio.Write(&segCSV, segOut, nil); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ramCSV.Bytes(), segCSV.Bytes()) {
			t.Errorf("query %d: segmented result differs from in-RAM result: %s", qi, firstDiff(ramCSV.String(), segCSV.String()))
		}
	}
}

// firstDiff locates the first differing line of two renderings.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d: %q != %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("row count %d != %d", len(la), len(lb))
}
