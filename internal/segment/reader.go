package segment

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"holistic/internal/arena"
	"holistic/internal/core"
)

// Reader opens one segment file for lazy column access. Open verifies the
// framing (magics, footer structural equation, manifest CRC) eagerly, and
// each column load verifies its blocks' CRCs — so the cost of integrity
// checking is proportional to the bytes a query actually touches.
//
// A Reader is safe for concurrent column loads: all file access goes
// through ReadAt and the Reader itself is immutable after Open.
type Reader struct {
	f    *os.File
	path string
	size int64
	man  Manifest
	id   string
}

// Open opens and structurally verifies a segment file.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := verify(f, path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	return r, nil
}

// verify runs Open's structural checks; split out so errors can be wrapped
// uniformly with the path.
func verify(f *os.File, path string) (*Reader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(headerMagic))+footerLen {
		return nil, fmt.Errorf("file of %d bytes is too small to be a segment", size)
	}
	var head [4]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	if string(head[:]) != headerMagic {
		return nil, fmt.Errorf("bad header magic %q", head[:])
	}
	var footer [footerLen]byte
	if _, err := f.ReadAt(footer[:], size-footerLen); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(footer[20:]); got != footerMagic {
		return nil, fmt.Errorf("bad footer magic %#x", got)
	}
	manifestOff := binary.LittleEndian.Uint64(footer[0:])
	manifestLen := binary.LittleEndian.Uint64(footer[8:])
	manifestCRC := binary.LittleEndian.Uint32(footer[16:])
	// The structural equation pins the footer fields to the file size: a
	// flipped byte in either field breaks it, so the (un-CRC'd) footer is
	// still fully checked.
	if manifestOff < uint64(len(headerMagic)) || manifestLen == 0 ||
		manifestOff+manifestLen != uint64(size)-footerLen {
		return nil, fmt.Errorf("footer framing inconsistent with file size %d", size)
	}
	mb := make([]byte, manifestLen)
	if _, err := f.ReadAt(mb, int64(manifestOff)); err != nil {
		return nil, err
	}
	if got := crc32.Checksum(mb, castagnoli); got != manifestCRC {
		return nil, fmt.Errorf("manifest checksum mismatch (got %#x, want %#x)", got, manifestCRC)
	}
	var man Manifest
	if err := json.Unmarshal(mb, &man); err != nil {
		return nil, fmt.Errorf("decoding manifest: %w", err)
	}
	if man.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("unsupported format version %d", man.FormatVersion)
	}
	if man.Rows <= 0 || man.BlockRows <= 0 || man.StartRow < 0 {
		return nil, fmt.Errorf("implausible manifest (rows=%d block_rows=%d start_row=%d)", man.Rows, man.BlockRows, man.StartRow)
	}
	// Block index validation: blocks tile [4, manifestOff) contiguously in
	// manifest order, and each column's blocks tile its rows in
	// BlockRows-sized pieces. With this, every byte of the file is covered
	// by exactly one check.
	off := int64(len(headerMagic))
	for _, c := range man.Columns {
		switch c.Encoding {
		case EncInt64, EncFloat64, EncStrDict:
		default:
			return nil, fmt.Errorf("column %q: unknown encoding %q", c.Name, c.Encoding)
		}
		rows := 0
		for bi, b := range c.Blocks {
			if b.Offset != off || b.Length <= 0 {
				return nil, fmt.Errorf("column %q block %d: offset %d, expected %d", c.Name, bi, b.Offset, off)
			}
			want := min(man.BlockRows, man.Rows-rows)
			if b.Rows != want {
				return nil, fmt.Errorf("column %q block %d: %d rows, expected %d", c.Name, bi, b.Rows, want)
			}
			rows += b.Rows
			off += b.Length
		}
		if rows != man.Rows {
			return nil, fmt.Errorf("column %q blocks cover %d rows, manifest says %d", c.Name, rows, man.Rows)
		}
	}
	if off != int64(manifestOff) {
		return nil, fmt.Errorf("blocks end at %d but manifest starts at %d", off, manifestOff)
	}
	return &Reader{f: f, path: path, size: size, man: man, id: segmentID(manifestCRC)}, nil
}

// ID returns the content-derived segment identity.
func (r *Reader) ID() string { return r.id }

// Path returns the file the reader was opened from.
func (r *Reader) Path() string { return r.path }

// Rows returns the segment's row count.
func (r *Reader) Rows() int { return r.man.Rows }

// StartRow returns the global position of the segment's first row.
func (r *Reader) StartRow() int64 { return r.man.StartRow }

// Manifest returns the segment's manifest (shared, not a copy; callers
// must not mutate it).
func (r *Reader) Manifest() *Manifest { return &r.man }

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// colData is a decoded column: exactly one of ints/floats/strs is set,
// plus an optional null mask. It is the unit cached per (segment, column).
type colData struct {
	encoding string
	date     bool
	ints     []int64
	floats   []float64
	strs     []string
	nulls    []bool // nil when the column has no NULLs in this segment
}

// bytes estimates the decoded column's resident size for cache accounting.
func (d *colData) bytes() int64 {
	total := int64(8*len(d.ints) + 8*len(d.floats) + len(d.nulls))
	for _, s := range d.strs {
		total += int64(16 + len(s))
	}
	return total
}

// column wraps decoded data into a core column.
func (d *colData) column(name string) *core.Column {
	switch d.encoding {
	case EncInt64:
		return core.NewInt64Column(name, d.ints, d.nulls)
	case EncFloat64:
		return core.NewFloat64Column(name, d.floats, d.nulls)
	default:
		return core.NewStringColumn(name, d.strs, d.nulls)
	}
}

// meta returns the manifest entry for name, or nil.
func (r *Reader) meta(name string) *ColumnMeta {
	for i := range r.man.Columns {
		if r.man.Columns[i].Name == name {
			return &r.man.Columns[i]
		}
	}
	return nil
}

// Column lazily loads one column into an arena-backed core column,
// verifying each block's CRC as it is read.
func (r *Reader) Column(name string) (*core.Column, error) {
	d, err := r.load(name)
	if err != nil {
		return nil, err
	}
	return d.column(name), nil
}

// load reads and decodes one column.
func (r *Reader) load(name string) (*colData, error) {
	meta := r.meta(name)
	if meta == nil {
		return nil, fmt.Errorf("segment: %s: no column %q", r.path, name)
	}
	rows := r.man.Rows
	d := &colData{encoding: meta.Encoding, date: meta.Date}
	// Decoded values live in arena slabs: one allocation per column load
	// regardless of block count, matching the build-phase allocation
	// discipline of the tree layer.
	switch meta.Encoding {
	case EncInt64:
		d.ints = arena.New[int64](rows).Alloc(rows)
	case EncFloat64:
		d.floats = arena.New[float64](rows).Alloc(rows)
	case EncStrDict:
		d.strs = arena.New[string](rows).Alloc(rows)
	}
	var maxLen int64
	for _, b := range meta.Blocks {
		maxLen = max(maxLen, b.Length)
	}
	raw := make([]byte, maxLen)
	base := 0
	for bi, b := range meta.Blocks {
		buf := raw[:b.Length]
		if _, err := r.f.ReadAt(buf, b.Offset); err != nil {
			return nil, fmt.Errorf("segment: %s: column %q block %d: %w", r.path, name, bi, err)
		}
		if got := crc32.Checksum(buf, castagnoli); got != b.CRC {
			return nil, fmt.Errorf("segment: %s: column %q block %d: checksum mismatch (got %#x, want %#x)", r.path, name, bi, got, b.CRC)
		}
		hadNull, err := r.decodeBlock(d, buf, base, b.Rows)
		if err != nil {
			return nil, fmt.Errorf("segment: %s: column %q block %d: %w", r.path, name, bi, err)
		}
		if hadNull {
			if d.nulls == nil {
				// First NULL: materialize the mask lazily so fully
				// populated columns stay mask-free (the core fast path).
				d.nulls = arena.New[bool](rows).Alloc(rows)
			}
			bm := buf[:(b.Rows+7)/8]
			for i := 0; i < b.Rows; i++ {
				if bm[i/8]&(1<<(i%8)) != 0 {
					d.nulls[base+i] = true
				}
			}
		}
		base += b.Rows
	}
	return d, nil
}

// decodeBlock decodes one verified block's payload into d at row offset
// base, reporting whether the block contains any NULL. All offsets are
// bounds-checked: a structurally valid but content-corrupt block yields an
// error, never a panic.
func (r *Reader) decodeBlock(d *colData, buf []byte, base, rows int) (bool, error) {
	bmLen := (rows + 7) / 8
	if len(buf) < bmLen {
		return false, fmt.Errorf("block of %d bytes cannot hold a %d-row null bitmap", len(buf), bmLen)
	}
	bm, payload := buf[:bmLen], buf[bmLen:]
	hadNull := false
	for i := 0; i < rows; i++ {
		if bm[i/8]&(1<<(i%8)) != 0 {
			hadNull = true
			break
		}
	}
	switch d.encoding {
	case EncInt64, EncFloat64:
		if len(payload) != 8*rows {
			return false, fmt.Errorf("payload of %d bytes for %d fixed-width rows", len(payload), rows)
		}
		if d.encoding == EncInt64 {
			for i := 0; i < rows; i++ {
				d.ints[base+i] = int64(binary.LittleEndian.Uint64(payload[8*i:]))
			}
		} else {
			for i := 0; i < rows; i++ {
				d.floats[base+i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
			}
		}
	case EncStrDict:
		if len(payload) < 4 {
			return false, fmt.Errorf("string block too short for dictionary count")
		}
		dictCount := int(binary.LittleEndian.Uint32(payload))
		if dictCount > rows {
			return false, fmt.Errorf("dictionary of %d entries for %d rows", dictCount, rows)
		}
		p := 4
		dict := make([]string, dictCount)
		for j := 0; j < dictCount; j++ {
			if p+4 > len(payload) {
				return false, fmt.Errorf("string block truncated in dictionary entry %d", j)
			}
			sl := int(binary.LittleEndian.Uint32(payload[p:]))
			p += 4
			if sl < 0 || p+sl > len(payload) {
				return false, fmt.Errorf("dictionary entry %d of %d bytes overruns block", j, sl)
			}
			dict[j] = string(payload[p : p+sl])
			p += sl
		}
		if len(payload)-p != 4*rows {
			return false, fmt.Errorf("code array of %d bytes for %d rows", len(payload)-p, rows)
		}
		for i := 0; i < rows; i++ {
			code := int(binary.LittleEndian.Uint32(payload[p+4*i:]))
			if bm[i/8]&(1<<(i%8)) != 0 {
				continue // NULL rows carry code 0 by convention
			}
			if code >= dictCount {
				return false, fmt.Errorf("row %d references dictionary code %d of %d", i, code, dictCount)
			}
			d.strs[base+i] = dict[code]
		}
	}
	return hadNull, nil
}
