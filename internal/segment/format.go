// Package segment implements the on-disk columnar segment format behind
// out-of-core datasets: a dataset directory holds one immutable segment
// file per ingested row range, and queries open segments lazily, loading
// only the columns they touch.
//
// §5.1 of the paper observes that a built merge sort tree "could also be
// spooled to disk" because it is nothing but flat integer arrays; segments
// extend the same philosophy to the base columns. A segment file is
//
//	magic "SEG1" (4 bytes)
//	column blocks, contiguous, in manifest order
//	manifest (JSON, schema + per-column block index)
//	footer (24 bytes): manifestOff u64 | manifestLen u64 |
//	                   manifestCRC u32 | footer magic u32
//
// Each block covers a fixed number of rows of one column (the last block
// of a column may be short) and carries its own CRC-32C in the manifest,
// so a lazy reader verifies exactly the bytes it loads. Every byte of the
// file is covered by a check: the two magics and the footer's structural
// equation manifestOff+manifestLen == fileSize-24 pin the framing, the
// manifest CRC covers the block index, and the block CRCs cover the data —
// any single corrupted byte is detected by Open or by the first load that
// touches it.
//
// Segment identity is content-derived: the ID is the manifest CRC rendered
// in hex. Since the manifest embeds every block's offset, length and CRC
// plus the row range, two segments share an ID exactly when their bytes
// are interchangeable — which is what lets per-segment cache entries
// (keyed "seg:<id>|col:<name>") survive partial dataset reloads.
package segment

import (
	"fmt"
	"hash/crc32"
)

// FormatVersion is the manifest format written by this package. Readers
// reject other versions.
const FormatVersion = 1

const (
	headerMagic = "SEG1"
	footerMagic = uint32(0x31474553) // "SEG1" little-endian
	footerLen   = 24
)

// FileSuffix is the file-name suffix of segment files in a dataset
// directory.
const FileSuffix = ".seg"

// DefaultBlockRows is the block granularity used when a Writer is not
// given an explicit one.
const DefaultBlockRows = 4096

// Column encodings. The encoding decides both the block payload layout and
// the core column kind a read produces.
const (
	// EncInt64 stores 8-byte little-endian integers (also used for date
	// columns, which store days since the Unix epoch; Date marks them).
	EncInt64 = "int64"
	// EncFloat64 stores IEEE-754 bits, 8-byte little-endian.
	EncFloat64 = "float64"
	// EncStrDict stores a per-block dictionary of distinct strings plus a
	// u32 code per row.
	EncStrDict = "strdict"
)

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Manifest describes one segment file: its schema and the block index.
// It is stored as JSON between the data blocks and the footer.
type Manifest struct {
	FormatVersion int `json:"format_version"`
	// Rows is the segment's row count.
	Rows int `json:"rows"`
	// StartRow is the global position of the segment's first row within
	// its dataset; OpenDir validates that segments tile [0, totalRows).
	StartRow int64 `json:"start_row"`
	// BlockRows is the fixed per-block row count (last block short).
	BlockRows int `json:"block_rows"`
	// Columns is the schema plus block index, in file order.
	Columns []ColumnMeta `json:"columns"`
}

// ColumnMeta is the manifest entry for one column.
type ColumnMeta struct {
	Name     string `json:"name"`
	Encoding string `json:"encoding"`
	// Date marks an EncInt64 column that renders as an ISO date.
	Date bool `json:"date,omitempty"`
	// Blocks index the column's data, in row order.
	Blocks []BlockMeta `json:"blocks"`
}

// BlockMeta locates and checks one block.
type BlockMeta struct {
	// Offset is the block's byte offset within the file.
	Offset int64 `json:"offset"`
	// Length is the block's byte length.
	Length int64 `json:"length"`
	// Rows is the number of rows the block covers.
	Rows int `json:"rows"`
	// CRC is the CRC-32C of the block's bytes.
	CRC uint32 `json:"crc"`
}

// schemaSig renders the schema identity of a manifest — column names,
// encodings and date flags in order — used by OpenDir to insist that every
// segment of a dataset agrees.
func (m *Manifest) schemaSig() string {
	sig := ""
	for _, c := range m.Columns {
		d := ""
		if c.Date {
			d = "@date"
		}
		sig += fmt.Sprintf("%q:%s%s;", c.Name, c.Encoding, d)
	}
	return sig
}
