// Package ingest turns a CSV source into a multi-segment dataset
// directory with a parallel, resumable, two-phase pipeline:
//
//  1. Plan (sequential): one streaming pass over the source splits it into
//     half-open row intervals of RowsPerSegment rows, recording each
//     interval's byte offset and source line, and folds every cell into
//     whole-file type-inference flags (csvio.ColFlags). Planning from the
//     whole file guarantees every worker agrees on the schema — a worker
//     that only saw integers must still build a float column if a later
//     interval holds one.
//  2. Ingest (parallel): a worker pool parses the intervals independently
//     — each seeks straight to its byte offset — and writes one segment
//     file per interval. Parse errors surface csvio's
//     `line N, column "x"` context verbatim, with line numbers global to
//     the source file.
//
// The plan and per-interval completions persist to a JSON state file in
// the destination directory after every step, so a killed ingest resumes
// where it stopped: planning is not repeated, completed intervals are
// skipped (their segments are already durable — segment.Writer renames
// atomically), and only unfinished intervals run. A source fingerprint
// guards resumption against the file changing underneath the state.
package ingest

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"holistic/internal/csvio"
)

// stateVersion is the state file format; mismatches discard the state and
// restart the ingest from planning.
const stateVersion = 1

// StateFile is the name of the progress state inside the destination
// directory.
const StateFile = "ingest.state.json"

// Fingerprint identifies a source file's content cheaply: size, mtime and
// a checksum of the leading bytes. A resumed ingest refuses to continue
// over a source whose fingerprint changed.
type Fingerprint struct {
	Size    int64  `json:"size"`
	ModTime int64  `json:"mod_time_ns"`
	HeadCRC uint32 `json:"head_crc"`
}

// fingerprint computes the source fingerprint.
func fingerprint(path string) (Fingerprint, error) {
	f, err := os.Open(path)
	if err != nil {
		return Fingerprint{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Fingerprint{}, err
	}
	h := crc32.New(castagnoli())
	if _, err := io.Copy(h, io.LimitReader(f, 1<<16)); err != nil {
		return Fingerprint{}, err
	}
	return Fingerprint{Size: st.Size(), ModTime: st.ModTime().UnixNano(), HeadCRC: h.Sum32()}, nil
}

// castagnoli returns the CRC table (kept behind a function to avoid an
// init-order dependency; crc32.MakeTable memoizes internally).
func castagnoli() *crc32.Table {
	return crc32.MakeTable(crc32.Castagnoli)
}

// Interval is one planned half-open row range [StartRow, StartRow+Rows) of
// the source, locatable without re-scanning what precedes it.
type Interval struct {
	Index int `json:"index"`
	// StartRow is the global 0-based data-row position (header excluded).
	StartRow int64 `json:"start_row"`
	// Rows is the interval's row count.
	Rows int `json:"rows"`
	// ByteOff and ByteLen delimit the interval's raw bytes in the source.
	ByteOff int64 `json:"byte_off"`
	ByteLen int64 `json:"byte_len"`
	// StartLine is the 1-based source line of the interval's first record,
	// for error messages with file-global line numbers.
	StartLine int `json:"start_line"`
}

// Completed records one finished interval.
type Completed struct {
	SegmentID string `json:"segment_id"`
	Rows      int    `json:"rows"`
}

// State is the resumable progress of one ingest, persisted as JSON after
// planning and after every interval completion.
type State struct {
	Version        int                `json:"version"`
	Source         string             `json:"source"`
	Fingerprint    Fingerprint        `json:"fingerprint"`
	RowsPerSegment int                `json:"rows_per_segment"`
	Header         []string           `json:"header"`
	Flags          []csvio.ColFlags   `json:"flags"`
	Intervals      []Interval         `json:"intervals"`
	Completed      map[int]*Completed `json:"completed"`
}

// statePath returns the state file location for a destination directory.
func statePath(dest string) string { return filepath.Join(dest, StateFile) }

// loadState reads a state file; a missing file returns (nil, nil).
func loadState(dest string) (*State, error) {
	b, err := os.ReadFile(statePath(dest))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var s State
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("ingest: corrupt state file %s: %w", statePath(dest), err)
	}
	return &s, nil
}

// save atomically persists the state (write temp, fsync, rename) so a
// crash never leaves a torn state file behind.
func (s *State) save(dest string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dest, ".state-tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, statePath(dest))
}

// segmentName is the file name of interval i's segment.
func segmentName(i int) string { return fmt.Sprintf("part-%06d.seg", i) }

// usable reports whether a loaded state can resume an ingest of src with
// the given fingerprint and segment size.
func (s *State) usable(src string, fp Fingerprint, rowsPerSegment int) bool {
	return s != nil &&
		s.Version == stateVersion &&
		s.Source == src &&
		s.Fingerprint == fp &&
		s.RowsPerSegment == rowsPerSegment
}
