package ingest

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"holistic/internal/csvio"
)

// plan runs the sequential planning pass: one streaming scan of the source
// that splits it into row intervals and infers the whole-file schema
// flags. The scan uses the csv reader's byte-offset tracking so every
// interval records exactly where its first record starts — workers seek
// there directly, never re-reading earlier intervals.
func plan(src string, rowsPerSegment int) (*State, error) {
	fp, err := fingerprint(src)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(src)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("ingest: %s: empty input (missing header row)", src)
	}
	if err != nil {
		return nil, err
	}
	s := &State{
		Version:        stateVersion,
		Source:         src,
		Fingerprint:    fp,
		RowsPerSegment: rowsPerSegment,
		Header:         append([]string(nil), header...),
		Flags:          make([]csvio.ColFlags, len(header)),
		Completed:      map[int]*Completed{},
	}
	for c := range s.Flags {
		s.Flags[c] = csvio.NewColFlags()
	}
	var cur *Interval
	var rowIdx int64
	for {
		off := cr.InputOffset()
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if cur == nil || cur.Rows == rowsPerSegment {
			if cur != nil {
				cur.ByteLen = off - cur.ByteOff
			}
			line, _ := cr.FieldPos(0)
			s.Intervals = append(s.Intervals, Interval{
				Index:     len(s.Intervals),
				StartRow:  rowIdx,
				ByteOff:   off,
				StartLine: line,
			})
			cur = &s.Intervals[len(s.Intervals)-1]
		}
		for c, v := range row {
			s.Flags[c].Observe(v)
		}
		cur.Rows++
		rowIdx++
	}
	if cur != nil {
		cur.ByteLen = cr.InputOffset() - cur.ByteOff
	}
	return s, nil
}

// parseInterval parses one interval's bytes into typed columns under the
// plan's global flags. Errors carry csvio's `line N, column "x"` context
// with line numbers global to the source file.
func parseInterval(src string, s *State, iv Interval) (*csvio.File, error) {
	f, err := os.Open(src)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(io.NewSectionReader(f, iv.ByteOff, iv.ByteLen))
	rows := make([][]string, 0, iv.Rows)
	lines := make([]int, 0, iv.Rows)
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ingest: %s interval %d: %w", src, iv.Index, err)
		}
		if len(row) != len(s.Header) {
			return nil, fmt.Errorf("ingest: %s interval %d: record has %d fields, header has %d", src, iv.Index, len(row), len(s.Header))
		}
		// The section reader starts line numbering at 1; rebase onto the
		// interval's global start line.
		line, _ := cr.FieldPos(0)
		lines = append(lines, iv.StartLine+line-1)
		rows = append(rows, row)
	}
	if len(rows) != iv.Rows {
		return nil, fmt.Errorf("ingest: %s interval %d: parsed %d rows, plan says %d (source changed?)", src, iv.Index, len(rows), iv.Rows)
	}
	cols, dateCols, err := csvio.BuildColumns(s.Header, rows, s.Flags, lines)
	if err != nil {
		return nil, err
	}
	table, err := newTable(cols)
	if err != nil {
		return nil, err
	}
	return &csvio.File{Table: table, DateColumns: dateCols}, nil
}
