package ingest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"holistic/internal/core"
	"holistic/internal/parallel"
	"holistic/internal/segment"
)

// DefaultRowsPerSegment is the interval size when Options leaves it unset.
const DefaultRowsPerSegment = 100_000

// Options configures an ingest run.
type Options struct {
	// RowsPerSegment is the interval size: each interval becomes one
	// segment file. <= 0 selects DefaultRowsPerSegment.
	RowsPerSegment int
	// BlockRows is the segment block granularity (<= 0: segment default).
	BlockRows int
}

// Result summarizes a completed ingest.
type Result struct {
	// Rows is the dataset's total row count.
	Rows int64
	// Segments is the number of segment files in the dataset.
	Segments int
	// Resumed counts intervals skipped because a previous run already
	// completed them.
	Resumed int
}

// Progress is a point-in-time snapshot of a running ingest, served by
// windowd's ingest-status endpoint and windowcli's live progress display.
type Progress struct {
	// Planned reports whether the planning pass has finished; interval
	// and row totals are zero until it has.
	Planned bool `json:"planned"`
	// TotalIntervals and DoneIntervals count planned and finished
	// intervals (including resumed ones).
	TotalIntervals int `json:"total_intervals"`
	DoneIntervals  int `json:"done_intervals"`
	// TotalRows and DoneRows count data rows.
	TotalRows int64 `json:"total_rows"`
	DoneRows  int64 `json:"done_rows"`
	// Resumed counts intervals inherited from a previous run's state.
	Resumed int `json:"resumed"`
}

// Ingester runs one source-to-dataset ingest and exposes live progress.
// Create with New, run with Run (once), poll with Progress from any
// goroutine.
type Ingester struct {
	src, dest string
	opt       Options

	planned        atomic.Bool
	totalIntervals atomic.Int64
	doneIntervals  atomic.Int64
	totalRows      atomic.Int64
	doneRows       atomic.Int64
	resumed        atomic.Int64

	mu    sync.Mutex // guards state persistence
	state *State
}

// New prepares an ingest of the CSV file src into the dataset directory
// dest (created if missing).
func New(src, dest string, opt Options) *Ingester {
	if opt.RowsPerSegment <= 0 {
		opt.RowsPerSegment = DefaultRowsPerSegment
	}
	return &Ingester{src: src, dest: dest, opt: opt}
}

// Progress returns a consistent-enough snapshot for display: counters are
// individually atomic.
func (ing *Ingester) Progress() Progress {
	return Progress{
		Planned:        ing.planned.Load(),
		TotalIntervals: int(ing.totalIntervals.Load()),
		DoneIntervals:  int(ing.doneIntervals.Load()),
		TotalRows:      ing.totalRows.Load(),
		DoneRows:       ing.doneRows.Load(),
		Resumed:        int(ing.resumed.Load()),
	}
}

// Run executes the ingest: plan (or resume from persisted state), then
// fan the pending intervals out to a worker pool, persisting progress
// after every interval. Cancelling ctx stops cleanly; a later Run with
// the same destination resumes from the last persisted interval.
func (ing *Ingester) Run(ctx context.Context) (*Result, error) {
	counters.started.Add(1)
	res, err := ing.run(ctx)
	if err != nil {
		counters.failed.Add(1)
		return nil, err
	}
	counters.completed.Add(1)
	return res, nil
}

func (ing *Ingester) run(ctx context.Context) (*Result, error) {
	if err := os.MkdirAll(ing.dest, 0o755); err != nil {
		return nil, err
	}
	fp, err := fingerprint(ing.src)
	if err != nil {
		return nil, err
	}
	st, err := loadState(ing.dest)
	if err != nil {
		return nil, err
	}
	if !st.usable(ing.src, fp, ing.opt.RowsPerSegment) {
		if st != nil {
			// Stale state: different source, changed file or different
			// segmentation. Start over rather than mixing runs.
			if err := ing.clearDataset(); err != nil {
				return nil, err
			}
		}
		st, err = plan(ing.src, ing.opt.RowsPerSegment)
		if err != nil {
			return nil, err
		}
		if err := st.save(ing.dest); err != nil {
			return nil, err
		}
	}
	if len(st.Intervals) == 0 {
		return nil, fmt.Errorf("ingest: %s has no data rows", ing.src)
	}
	ing.state = st
	ing.totalIntervals.Store(int64(len(st.Intervals)))
	var total int64
	for _, iv := range st.Intervals {
		total += int64(iv.Rows)
	}
	ing.totalRows.Store(total)
	ing.planned.Store(true)

	// Partition intervals into already-done (previous run) and pending.
	var pending []Interval
	for _, iv := range st.Intervals {
		done := st.Completed[iv.Index]
		if done != nil && done.Rows == iv.Rows && segmentExists(ing.dest, iv.Index) {
			ing.resumed.Add(1)
			ing.doneIntervals.Add(1)
			ing.doneRows.Add(int64(iv.Rows))
			counters.intervalsResumed.Add(1)
			continue
		}
		pending = append(pending, iv)
	}

	var firstErr atomic.Pointer[error]
	perr := parallel.ForEachContext(ctx, len(pending), func(task int) {
		if firstErr.Load() != nil {
			return
		}
		if err := ing.ingestInterval(pending[task]); err != nil {
			firstErr.CompareAndSwap(nil, &err)
		}
	})
	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}
	if perr != nil {
		return nil, perr
	}
	return &Result{
		Rows:     total,
		Segments: len(st.Intervals),
		Resumed:  int(ing.resumed.Load()),
	}, nil
}

// ingestInterval parses one interval and writes its segment, then persists
// the completion.
func (ing *Ingester) ingestInterval(iv Interval) error {
	file, err := parseInterval(ing.src, ing.state, iv)
	if err != nil {
		return err
	}
	w, err := segment.NewWriter(filepath.Join(ing.dest, segmentName(iv.Index)), ing.opt.BlockRows)
	if err != nil {
		return err
	}
	if err := w.WriteTable(file, iv.StartRow); err != nil {
		w.Abort()
		return err
	}
	id, err := w.Finish()
	if err != nil {
		return err
	}
	ing.mu.Lock()
	ing.state.Completed[iv.Index] = &Completed{SegmentID: id, Rows: iv.Rows}
	err = ing.state.save(ing.dest)
	ing.mu.Unlock()
	if err != nil {
		return err
	}
	ing.doneIntervals.Add(1)
	ing.doneRows.Add(int64(iv.Rows))
	counters.rowsIngested.Add(int64(iv.Rows))
	counters.segmentsWritten.Add(1)
	return nil
}

// clearDataset removes segments and state from the destination, keeping
// unrelated files.
func (ing *Ingester) clearDataset() error {
	entries, err := os.ReadDir(ing.dest)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == segment.FileSuffix || e.Name() == StateFile {
			if err := os.Remove(filepath.Join(ing.dest, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// segmentExists reports whether interval i's segment file is present.
func segmentExists(dest string, i int) bool {
	_, err := os.Stat(filepath.Join(dest, segmentName(i)))
	return err == nil
}

// newTable builds a core table (indirection so plan.go needs no core
// import beyond this).
func newTable(cols []*core.Column) (*core.Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("ingest: source has no columns")
	}
	return core.NewTable(cols...)
}

// counters aggregates ingest activity process-wide for windowd's
// windowd_ingest_* metric families.
var counters struct {
	started          atomic.Int64
	completed        atomic.Int64
	failed           atomic.Int64
	rowsIngested     atomic.Int64
	segmentsWritten  atomic.Int64
	intervalsResumed atomic.Int64
}

// Stats is a snapshot of the package-wide ingest counters.
type Stats struct {
	Started          int64
	Completed        int64
	Failed           int64
	RowsIngested     int64
	SegmentsWritten  int64
	IntervalsResumed int64
}

// Snapshot returns the current counter values.
func Snapshot() Stats {
	return Stats{
		Started:          counters.started.Load(),
		Completed:        counters.completed.Load(),
		Failed:           counters.failed.Load(),
		RowsIngested:     counters.rowsIngested.Load(),
		SegmentsWritten:  counters.segmentsWritten.Load(),
		IntervalsResumed: counters.intervalsResumed.Load(),
	}
}
