package ingest

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"holistic/internal/csvio"
	"holistic/internal/segment"
)

// writeSourceCSV generates a CSV exercising every inferred type, NULLs,
// and quoting hazards (embedded commas, quotes and newlines) so interval
// byte offsets are tested against multi-line records.
func writeSourceCSV(t testing.TB, path string, rows int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(rows)))
	var b strings.Builder
	b.WriteString("g,d,v,f,s\n")
	words := []string{"plain", "com,ma", "qu\"ote", "new\nline", ""}
	for i := 0; i < rows; i++ {
		day := fmt.Sprintf("2024-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))
		v := ""
		if rng.Intn(8) != 0 {
			v = fmt.Sprintf("%d", rng.Intn(2000)-1000)
		}
		f := fmt.Sprintf("%g", float64(rng.Intn(1000))/8)
		w := words[rng.Intn(len(words))]
		rec := []string{fmt.Sprintf("%d", rng.Intn(5)), day, v, f, w}
		for j, cell := range rec {
			if j > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// renderDataset materializes a dataset directory and renders it as CSV.
func renderDataset(t testing.TB, dest string) []byte {
	t.Helper()
	d, err := segment.OpenDir(dest)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	f, err := d.File(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := csvio.Write(&buf, f.Table, f.DateColumns); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// renderSource reads the source with csvio (the in-RAM path) and renders
// it back, the reference for byte identity.
func renderSource(t testing.TB, src string) []byte {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	f, err := csvio.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := csvio.Write(&buf, f.Table, f.DateColumns); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIngestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.csv")
	writeSourceCSV(t, src, 1000)
	dest := filepath.Join(dir, "data")
	ing := New(src, dest, Options{RowsPerSegment: 150, BlockRows: 64})
	res, err := ing.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1000 || res.Segments != 7 || res.Resumed != 0 {
		t.Fatalf("result %+v", res)
	}
	p := ing.Progress()
	if !p.Planned || p.DoneIntervals != 7 || p.DoneRows != 1000 || p.TotalRows != 1000 {
		t.Fatalf("final progress %+v", p)
	}
	if !bytes.Equal(renderDataset(t, dest), renderSource(t, src)) {
		t.Fatal("ingested dataset differs from in-RAM read of the source")
	}
	// Re-running over a complete dataset is a no-op resume.
	res2, err := New(src, dest, Options{RowsPerSegment: 150}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != 7 {
		t.Fatalf("full re-run resumed %d of 7 intervals", res2.Resumed)
	}
}

// TestIngestKillAndResume cancels an ingest mid-run and verifies the
// second run picks up from the persisted state without re-processing the
// intervals the first run completed.
func TestIngestKillAndResume(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.csv")
	writeSourceCSV(t, src, 1200)
	dest := filepath.Join(dir, "data")

	ctx, cancel := context.WithCancel(context.Background())
	ing := New(src, dest, Options{RowsPerSegment: 100})
	// Kill the run as soon as some but not all intervals have completed.
	go func() {
		for {
			p := ing.Progress()
			if p.DoneIntervals >= 2 {
				cancel()
				return
			}
		}
	}()
	if _, err := ing.Run(ctx); err == nil {
		// The race can finish everything before cancel lands; that is
		// still a valid (if less interesting) outcome.
		t.Log("run finished before cancellation landed")
	}
	cancel()

	st, err := loadState(dest)
	if err != nil || st == nil {
		t.Fatalf("no persisted state after kill: %v", err)
	}
	durable := len(st.Completed)
	if durable == 0 {
		t.Fatal("kill landed before any interval persisted; cancel watcher is broken")
	}

	res, err := New(src, dest, Options{RowsPerSegment: 100}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != durable {
		t.Fatalf("resumed %d intervals, %d were durable", res.Resumed, durable)
	}
	if res.Rows != 1200 || res.Segments != 12 {
		t.Fatalf("result %+v", res)
	}
	if !bytes.Equal(renderDataset(t, dest), renderSource(t, src)) {
		t.Fatal("resumed dataset differs from in-RAM read of the source")
	}
}

// TestIngestRestartsWhenSourceChanges pins the fingerprint guard: stale
// state over a modified source is discarded, not resumed.
func TestIngestRestartsWhenSourceChanges(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.csv")
	writeSourceCSV(t, src, 300)
	dest := filepath.Join(dir, "data")
	if _, err := New(src, dest, Options{RowsPerSegment: 100}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	writeSourceCSV(t, src, 450) // different content and size
	res, err := New(src, dest, Options{RowsPerSegment: 100}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 0 {
		t.Fatalf("resumed %d intervals across a source change", res.Resumed)
	}
	if res.Rows != 450 || res.Segments != 5 {
		t.Fatalf("result %+v", res)
	}
	if !bytes.Equal(renderDataset(t, dest), renderSource(t, src)) {
		t.Fatal("re-ingested dataset differs from the new source")
	}
}

// TestParseIntervalErrorContext pins the satellite contract: a worker
// parse failure surfaces csvio's line/column context verbatim, with line
// numbers global to the source file.
func TestParseIntervalErrorContext(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.csv")
	if err := os.WriteFile(src, []byte("a,v\n1,x\n2,y\n3,z\n4,w\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := plan(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Force a type the data contradicts, as if the file changed between
	// planning and the worker pass: column v is strings, claim int.
	st.Flags[1] = csvio.ColFlags{IsInt: true, SawValue: true}
	_, err = parseInterval(src, st, st.Intervals[1])
	if err == nil {
		t.Fatal("contradicting cell parsed")
	}
	// Interval 1 starts at data row 2 (source line 4), so the first bad
	// cell is line 4, column v.
	if !strings.Contains(err.Error(), `line 4, column "v"`) {
		t.Fatalf("error %q lacks global line/column context", err)
	}
}

func TestIngestEmptySource(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.csv")
	if err := os.WriteFile(src, []byte("a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(src, filepath.Join(dir, "data"), Options{}).Run(context.Background()); err == nil {
		t.Fatal("header-only source ingested")
	}
}

// BenchmarkIngest measures a full cold ingest: plan pass, parallel parse,
// segment writes and state persistence.
func BenchmarkIngest(b *testing.B) {
	dir := b.TempDir()
	src := filepath.Join(dir, "src.csv")
	writeSourceCSV(b, src, 50_000)
	st, err := os.Stat(src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dest := filepath.Join(dir, fmt.Sprintf("data-%d", i))
		if _, err := New(src, dest, Options{RowsPerSegment: 8192}).Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		os.RemoveAll(dest)
		b.StartTimer()
	}
}
