// Package ostree implements a counted B-tree — an order statistic tree
// (CLRS [17]) with B-tree nodes, following Tatham's "Counted B-Trees", the
// implementation the paper benchmarks as the order-statistic-tree competitor
// (§5.5, Table 1).
//
// The tree is a multiset of int64 keys supporting Insert, Delete, Kth
// (select the i-th smallest) and CountLess (rank) in O(log n). Used as the
// state of the sliding-window percentile/rank competitor: tuples entering
// the frame are inserted, tuples leaving it are deleted, and the percentile
// is a Kth query. Because that state must be rebuilt from the frame start by
// every parallel task, the competitor degrades under task-based parallelism
// — the effect §3.2 describes and Figure 11 shows.
package ostree

// minDegree is the B-tree minimum degree t: every node except the root holds
// between t-1 and 2t-1 keys. 16 gives 31-key nodes, cache-line friendly.
const minDegree = 16

const maxKeys = 2*minDegree - 1

type node struct {
	keys  []int64 // sorted; duplicates allowed
	kids  []*node // nil for leaves; otherwise len(keys)+1
	total int     // keys in this subtree
}

func (nd *node) leaf() bool { return nd.kids == nil }

// Tree is a counted B-tree multiset of int64 keys. The zero value is an
// empty tree ready for use.
type Tree struct {
	root *node
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.total
}

func newLeaf() *node {
	return &node{keys: make([]int64, 0, maxKeys)}
}

// Insert adds key to the multiset.
func (t *Tree) Insert(key int64) {
	if t.root == nil {
		t.root = newLeaf()
	}
	if len(t.root.keys) == maxKeys {
		old := t.root
		t.root = &node{
			keys:  make([]int64, 0, maxKeys),
			kids:  append(make([]*node, 0, maxKeys+1), old),
			total: old.total,
		}
		t.root.splitChild(0)
	}
	t.root.insertNonFull(key)
}

// splitChild splits the full child at index i, moving its median key up.
func (nd *node) splitChild(i int) {
	child := nd.kids[i]
	mid := minDegree - 1
	median := child.keys[mid]
	right := &node{keys: make([]int64, 0, maxKeys)}
	right.keys = append(right.keys, child.keys[mid+1:]...)
	if !child.leaf() {
		right.kids = append(make([]*node, 0, maxKeys+1), child.kids[mid+1:]...)
		child.kids = child.kids[:mid+1]
	}
	child.keys = child.keys[:mid]
	child.total = child.subtotal()
	right.total = right.subtotal()

	nd.keys = append(nd.keys, 0)
	copy(nd.keys[i+1:], nd.keys[i:])
	nd.keys[i] = median
	nd.kids = append(nd.kids, nil)
	copy(nd.kids[i+2:], nd.kids[i+1:])
	nd.kids[i+1] = right
}

func (nd *node) subtotal() int {
	total := len(nd.keys)
	for _, k := range nd.kids {
		total += k.total
	}
	return total
}

func (nd *node) insertNonFull(key int64) {
	nd.total++
	if nd.leaf() {
		i := upperBound(nd.keys, key)
		nd.keys = append(nd.keys, 0)
		copy(nd.keys[i+1:], nd.keys[i:])
		nd.keys[i] = key
		return
	}
	i := upperBound(nd.keys, key)
	if len(nd.kids[i].keys) == maxKeys {
		nd.splitChild(i)
		if key > nd.keys[i] {
			i++
		}
	}
	nd.kids[i].insertNonFull(key)
}

// Delete removes one occurrence of key. It reports whether the key was
// present.
func (t *Tree) Delete(key int64) bool {
	if t.root == nil || !t.root.contains(key) {
		return false
	}
	t.root.delete(key)
	if len(t.root.keys) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.kids[0]
		}
	}
	return true
}

func (nd *node) contains(key int64) bool {
	for cur := nd; ; {
		i := lowerBound(cur.keys, key)
		if i < len(cur.keys) && cur.keys[i] == key {
			return true
		}
		if cur.leaf() {
			return false
		}
		cur = cur.kids[i]
	}
}

// delete removes one occurrence of key from the subtree rooted at nd. The
// caller guarantees the key is present. The walk is iterative: after every
// borrow or merge the current node is re-searched from scratch, since
// separator keys move during rebalancing.
func (nd *node) delete(key int64) {
	nd.total--
	for {
		i := lowerBound(nd.keys, key)
		if i < len(nd.keys) && nd.keys[i] == key {
			if nd.leaf() {
				nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
				return
			}
			// Internal hit: replace with the predecessor or successor from
			// a child that can spare a key, or merge the neighbours and
			// push the key down.
			if len(nd.kids[i].keys) >= minDegree {
				nd.keys[i] = nd.kids[i].deleteMax()
				return
			}
			if len(nd.kids[i+1].keys) >= minDegree {
				nd.keys[i] = nd.kids[i+1].deleteMin()
				return
			}
			nd.mergeChildren(i)
			nd = nd.kids[i]
			nd.total--
			continue
		}
		if nd.leaf() {
			//lint:invariant Delete's caller contract guarantees the key is present (checked via Count by the window operator); deleting a phantom would corrupt subtree totals
			panic("ostree: delete of absent key")
		}
		if len(nd.kids[i].keys) < minDegree {
			// Rebalance before descending, then re-search this node.
			switch {
			case i > 0 && len(nd.kids[i-1].keys) >= minDegree:
				nd.rotateRight(i)
			case i < len(nd.kids)-1 && len(nd.kids[i+1].keys) >= minDegree:
				nd.rotateLeft(i)
			case i == len(nd.kids)-1:
				nd.mergeChildren(i - 1)
			default:
				nd.mergeChildren(i)
			}
			continue
		}
		nd = nd.kids[i]
		nd.total--
	}
}

// rotateRight moves the largest key of child i-1 through the separator into
// child i.
func (nd *node) rotateRight(i int) {
	left, right := nd.kids[i-1], nd.kids[i]
	right.keys = append(right.keys, 0)
	copy(right.keys[1:], right.keys)
	right.keys[0] = nd.keys[i-1]
	nd.keys[i-1] = left.keys[len(left.keys)-1]
	left.keys = left.keys[:len(left.keys)-1]
	moved := 1
	if !left.leaf() {
		kid := left.kids[len(left.kids)-1]
		left.kids = left.kids[:len(left.kids)-1]
		right.kids = append(right.kids, nil)
		copy(right.kids[1:], right.kids)
		right.kids[0] = kid
		moved += kid.total
	}
	left.total -= moved
	right.total += moved
}

// rotateLeft moves the smallest key of child i+1 through the separator into
// child i.
func (nd *node) rotateLeft(i int) {
	left, right := nd.kids[i], nd.kids[i+1]
	left.keys = append(left.keys, nd.keys[i])
	nd.keys[i] = right.keys[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	moved := 1
	if !right.leaf() {
		kid := right.kids[0]
		right.kids = append(right.kids[:0], right.kids[1:]...)
		left.kids = append(left.kids, kid)
		moved += kid.total
	}
	left.total += moved
	right.total -= moved
}

// mergeChildren merges child i, the separator key i, and child i+1 into a
// single node at child position i.
func (nd *node) mergeChildren(i int) {
	left, right := nd.kids[i], nd.kids[i+1]
	left.keys = append(left.keys, nd.keys[i])
	left.keys = append(left.keys, right.keys...)
	if !left.leaf() {
		left.kids = append(left.kids, right.kids...)
	}
	left.total += right.total + 1
	nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
	nd.kids = append(nd.kids[:i+1], nd.kids[i+2:]...)
}

// deleteMax removes and returns the largest key of the subtree. The caller
// guarantees the subtree root can spare a key.
func (nd *node) deleteMax() int64 {
	nd.total--
	if nd.leaf() {
		k := nd.keys[len(nd.keys)-1]
		nd.keys = nd.keys[:len(nd.keys)-1]
		return k
	}
	i := len(nd.kids) - 1
	if len(nd.kids[i].keys) < minDegree {
		if len(nd.kids[i-1].keys) >= minDegree {
			nd.rotateRight(i)
		} else {
			i--
			nd.mergeChildren(i)
		}
	}
	return nd.kids[i].deleteMax()
}

// deleteMin removes and returns the smallest key of the subtree.
func (nd *node) deleteMin() int64 {
	nd.total--
	if nd.leaf() {
		k := nd.keys[0]
		nd.keys = append(nd.keys[:0], nd.keys[1:]...)
		return k
	}
	if len(nd.kids[0].keys) < minDegree {
		if len(nd.kids[1].keys) >= minDegree {
			nd.rotateLeft(0)
		} else {
			nd.mergeChildren(0)
		}
	}
	return nd.kids[0].deleteMin()
}

// Kth returns the i-th smallest key (0-based). ok is false when i is out of
// range. This is the counted-B-tree "lookup by index" that makes windowed
// percentiles a single descent.
func (t *Tree) Kth(i int) (key int64, ok bool) {
	if t.root == nil || i < 0 || i >= t.root.total {
		return 0, false
	}
	nd := t.root
	for {
		if nd.leaf() {
			return nd.keys[i], true
		}
		for c := 0; c < len(nd.kids); c++ {
			if i < nd.kids[c].total {
				nd = nd.kids[c]
				break
			}
			i -= nd.kids[c].total
			if i == 0 && c < len(nd.keys) {
				return nd.keys[c], true
			}
			i--
		}
	}
}

// CountLess returns the number of keys strictly smaller than key.
func (t *Tree) CountLess(key int64) int {
	cnt := 0
	for nd := t.root; nd != nil; {
		i := lowerBound(nd.keys, key)
		cnt += i
		if nd.leaf() {
			break
		}
		for c := 0; c < i; c++ {
			cnt += nd.kids[c].total
		}
		nd = nd.kids[i]
	}
	return cnt
}

// CountLessOrEqual returns the number of keys smaller than or equal to key.
func (t *Tree) CountLessOrEqual(key int64) int {
	cnt := 0
	for nd := t.root; nd != nil; {
		i := upperBound(nd.keys, key)
		cnt += i
		if nd.leaf() {
			break
		}
		for c := 0; c < i; c++ {
			cnt += nd.kids[c].total
		}
		nd = nd.kids[i]
	}
	return cnt
}

func lowerBound(a []int64, x int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func upperBound(a []int64, x int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
