package ostree

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"
)

// reference is a sorted-slice multiset used as the model for property tests.
type reference struct{ keys []int64 }

func (r *reference) insert(k int64) {
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] > k })
	r.keys = append(r.keys, 0)
	copy(r.keys[i+1:], r.keys[i:])
	r.keys[i] = k
}

func (r *reference) delete(k int64) bool {
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= k })
	if i == len(r.keys) || r.keys[i] != k {
		return false
	}
	r.keys = append(r.keys[:i], r.keys[i+1:]...)
	return true
}

func (r *reference) countLess(k int64) int {
	return sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= k })
}

func checkAgainstReference(t *testing.T, tr *Tree, ref *reference) {
	t.Helper()
	if tr.Len() != len(ref.keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref.keys))
	}
	for i, want := range ref.keys {
		got, ok := tr.Kth(i)
		if !ok || got != want {
			t.Fatalf("Kth(%d) = (%d,%v), want %d (ref=%v)", i, got, ok, want, ref.keys)
		}
	}
	if _, ok := tr.Kth(len(ref.keys)); ok {
		t.Fatal("Kth past the end must return !ok")
	}
	if _, ok := tr.Kth(-1); ok {
		t.Fatal("Kth(-1) must return !ok")
	}
}

func TestInsertKthSmall(t *testing.T) {
	tr := &Tree{}
	ref := &reference{}
	for _, k := range []int64{5, 1, 9, 1, 7, 5, 5, 0, 3, 8, 2, 2} {
		tr.Insert(k)
		ref.insert(k)
	}
	checkAgainstReference(t, tr, ref)
	if got := tr.CountLess(5); got != ref.countLess(5) {
		t.Fatalf("CountLess(5) = %d, want %d", got, ref.countLess(5))
	}
	if got := tr.CountLessOrEqual(5); got != 9 {
		t.Fatalf("CountLessOrEqual(5) = %d, want 9", got)
	}
}

func TestRandomOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := &Tree{}
	ref := &reference{}
	for op := 0; op < 30000; op++ {
		switch {
		case len(ref.keys) == 0 || rng.Intn(3) != 0:
			k := rng.Int63n(200)
			tr.Insert(k)
			ref.insert(k)
		default:
			k := rng.Int63n(220) // sometimes absent
			gotOK := tr.Delete(k)
			wantOK := ref.delete(k)
			if gotOK != wantOK {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, gotOK, wantOK)
			}
		}
		if op%500 == 0 {
			checkAgainstReference(t, tr, ref)
		}
		if op%100 == 0 {
			k := rng.Int63n(220)
			if got, want := tr.CountLess(k), ref.countLess(k); got != want {
				t.Fatalf("op %d: CountLess(%d) = %d, want %d", op, k, got, want)
			}
		}
	}
	checkAgainstReference(t, tr, ref)
}

func TestManyNodesDeepTree(t *testing.T) {
	// Force several B-tree levels and then drain the tree completely,
	// exercising all the borrow/merge paths.
	rng := rand.New(rand.NewSource(2))
	tr := &Tree{}
	keys := make([]int64, 50000)
	for i := range keys {
		keys[i] = rng.Int63n(5000)
		tr.Insert(keys[i])
	}
	sorted := slices.Clone(keys)
	slices.Sort(sorted)
	for _, i := range []int{0, 1, len(sorted) / 2, len(sorted) - 1} {
		if got, ok := tr.Kth(i); !ok || got != sorted[i] {
			t.Fatalf("Kth(%d) = (%d,%v), want %d", i, got, ok, sorted[i])
		}
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("delete %d of key %d failed", i, k)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty after draining: %d", tr.Len())
	}
	if tr.Delete(1) {
		t.Fatal("delete on empty tree returned true")
	}
}

func TestSequentialAscendingDescending(t *testing.T) {
	for _, desc := range []bool{false, true} {
		tr := &Tree{}
		n := 10000
		for i := 0; i < n; i++ {
			k := int64(i)
			if desc {
				k = int64(n - i)
			}
			tr.Insert(k)
		}
		for i := 0; i < n; i++ {
			want := int64(i)
			if desc {
				want = int64(i + 1)
			}
			if got, ok := tr.Kth(i); !ok || got != want {
				t.Fatalf("desc=%v Kth(%d) = (%d,%v), want %d", desc, i, got, ok, want)
			}
		}
	}
}

func TestSlidingWindowUsage(t *testing.T) {
	// The competitor's actual access pattern: maintain a window of w keys,
	// query the median every step.
	rng := rand.New(rand.NewSource(3))
	n, w := 5000, 97
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	tr := &Tree{}
	for i := 0; i < n; i++ {
		tr.Insert(vals[i])
		if i >= w {
			if !tr.Delete(vals[i-w]) {
				t.Fatalf("delete of departing key failed at %d", i)
			}
		}
		lo := max(0, i-w+1)
		window := slices.Clone(vals[lo : i+1])
		slices.Sort(window)
		k := len(window) / 2
		if got, ok := tr.Kth(k); !ok || got != window[k] {
			t.Fatalf("step %d: median = (%d,%v), want %d", i, got, ok, window[k])
		}
	}
}

func TestQuickProperty(t *testing.T) {
	prop := func(inserts []int16, deletes []uint8) bool {
		tr := &Tree{}
		ref := &reference{}
		for _, v := range inserts {
			tr.Insert(int64(v))
			ref.insert(int64(v))
		}
		for _, d := range deletes {
			if len(ref.keys) == 0 {
				break
			}
			k := ref.keys[int(d)%len(ref.keys)]
			if tr.Delete(k) != ref.delete(k) {
				return false
			}
		}
		if tr.Len() != len(ref.keys) {
			return false
		}
		for i, want := range ref.keys {
			if got, ok := tr.Kth(i); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
