package segtree

import (
	"holistic/internal/parallel"
	"holistic/internal/sortutil"
)

// SortedTree is a segment tree whose nodes carry the sorted list of the
// values beneath them — the "base intervals" percentile competitor (§3.2).
// Building takes O(n log n) time and space; selecting the k-th smallest
// value in a frame takes O((log n)²).
type SortedTree struct {
	n     int
	nodes [][]int64 // nodes[1] is the root; leaves at [n, 2n)
}

// NewSorted builds a sorted segment tree over values. Construction merges
// children bottom-up — one task per node level-by-level, so the build
// parallelizes like the merge sort tree's.
func NewSorted(values []int64) *SortedTree {
	n := len(values)
	t := &SortedTree{n: n}
	if n == 0 {
		return t
	}
	t.nodes = make([][]int64, 2*n)
	parallel.For(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.nodes[n+i] = values[i : i+1]
		}
	})
	// Merge pairs bottom-up. Internal node i covers nodes 2i and 2i+1; node
	// indices [2^j, 2^(j+1)) form independent bands whose children all lie
	// in later bands (or are leaves), so each band is processed in parallel.
	band := 1
	for band*2 <= n-1 {
		band *= 2
	}
	for ; band >= 1; band /= 2 {
		bandLo := band
		bandHi := 2 * band
		if bandHi > n {
			bandHi = n
		}
		parallel.ForEach(bandHi-bandLo, func(off int) {
			i := bandLo + off
			l, r := t.nodes[2*i], t.nodes[2*i+1]
			merged := make([]int64, len(l)+len(r))
			mi, li, ri := 0, 0, 0
			for li < len(l) && ri < len(r) {
				if l[li] <= r[ri] {
					merged[mi] = l[li]
					li++
				} else {
					merged[mi] = r[ri]
					ri++
				}
				mi++
			}
			mi += copy(merged[mi:], l[li:])
			copy(merged[mi:], r[ri:])
			t.nodes[i] = merged
		})
	}
	return t
}

// Len returns the number of leaves.
func (t *SortedTree) Len() int { return t.n }

// cover returns the canonical node lists covering leaf positions [lo, hi).
func (t *SortedTree) cover(lo, hi int) [][]int64 {
	var runs [][]int64
	l, r := lo+t.n, hi+t.n
	for l < r {
		if l&1 == 1 {
			runs = append(runs, t.nodes[l])
			l++
		}
		if r&1 == 1 {
			r--
			runs = append(runs, t.nodes[r])
		}
		l >>= 1
		r >>= 1
	}
	return runs
}

// Kth returns the k-th smallest (0-based) value at leaf positions [lo, hi).
// ok is false when the clamped range holds fewer than k+1 values.
//
// The frame is covered by O(log n) sorted lists; the answer is found by
// binary searching the value domain, counting elements <= candidate across
// all lists — two nested logarithmic factors, hence O((log n)²).
func (t *SortedTree) Kth(lo, hi, k int) (value int64, ok bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > t.n {
		hi = t.n
	}
	if k < 0 || k >= hi-lo {
		return 0, false
	}
	runs := t.cover(lo, hi)
	var vLo, vHi int64
	first := true
	for _, run := range runs {
		if len(run) == 0 {
			continue
		}
		if first {
			vLo, vHi = run[0], run[len(run)-1]
			first = false
			continue
		}
		if run[0] < vLo {
			vLo = run[0]
		}
		if run[len(run)-1] > vHi {
			vHi = run[len(run)-1]
		}
	}
	// Smallest v such that at least k+1 elements are <= v. The midpoint is
	// computed with unsigned arithmetic so extreme domains cannot overflow.
	for vLo < vHi {
		mid := vLo + int64((uint64(vHi)-uint64(vLo))>>1)
		cnt := 0
		for _, run := range runs {
			cnt += sortutil.UpperBound(run, mid)
		}
		if cnt >= k+1 {
			vHi = mid
		} else {
			vLo = mid + 1
		}
	}
	return vLo, true
}

// CountBelow returns the number of values smaller than threshold at leaf
// positions [lo, hi).
func (t *SortedTree) CountBelow(lo, hi int, threshold int64) int {
	if lo < 0 {
		lo = 0
	}
	if hi > t.n {
		hi = t.n
	}
	if lo >= hi {
		return 0
	}
	cnt := 0
	for _, run := range t.cover(lo, hi) {
		cnt += sortutil.LowerBound(run, threshold)
	}
	return cnt
}
