// Package segtree implements the segment-tree evaluation strategies the
// paper compares against (§3.2).
//
// Tree (the plain segment tree of Leis et al., PVLDB 2015) evaluates framed
// distributive and algebraic aggregates: an O(n) build produces a read-only
// index that answers any frame in O(log n), independent of frame overlap, so
// the probe phase is embarrassingly parallel. It is the window operator's
// engine for framed non-holistic aggregates (SUM, MIN, COUNT, ...) — and, in
// our operator, also the workhorse behind framed MIN/MAX even though the SQL
// standard already permits those.
//
// SortedTree is the sorted-list-annotated segment tree (base intervals,
// Arasu & Widom 2004): every node carries the sorted list of its leaves'
// values. Percentile queries cover the frame with O(log n) nodes and binary
// search the k-th element across their lists, costing O((log n)²) per frame
// — the parallelizable-but-slower percentile competitor of Table 1.
package segtree

// Tree is a segment tree over n leaves with a user-supplied merge function.
// Merge must be associative; no inverse is required.
type Tree[S any] struct {
	n     int
	nodes []S
	merge func(S, S) S
}

// New builds a segment tree over values in O(n). The values slice is not
// retained.
func New[S any](values []S, merge func(S, S) S) *Tree[S] {
	n := len(values)
	t := &Tree[S]{n: n, merge: merge}
	if n == 0 {
		return t
	}
	t.nodes = make([]S, 2*n)
	copy(t.nodes[n:], values)
	for i := n - 1; i >= 1; i-- {
		t.nodes[i] = merge(t.nodes[2*i], t.nodes[2*i+1])
	}
	return t
}

// Len returns the number of leaves.
func (t *Tree[S]) Len() int { return t.n }

// Query merges the values at leaf positions [lo, hi). ok is false when the
// clamped range is empty.
func (t *Tree[S]) Query(lo, hi int) (result S, ok bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > t.n {
		hi = t.n
	}
	if lo >= hi {
		return result, false
	}
	// Bottom-up traversal over the implicit tree; merge order is preserved
	// left-to-right so non-commutative merges work too.
	var left, right S
	haveL, haveR := false, false
	l, r := lo+t.n, hi+t.n
	for l < r {
		if l&1 == 1 {
			if haveL {
				left = t.merge(left, t.nodes[l])
			} else {
				left, haveL = t.nodes[l], true
			}
			l++
		}
		if r&1 == 1 {
			r--
			if haveR {
				right = t.merge(t.nodes[r], right)
			} else {
				right, haveR = t.nodes[r], true
			}
		}
		l >>= 1
		r >>= 1
	}
	switch {
	case haveL && haveR:
		return t.merge(left, right), true
	case haveL:
		return left, true
	default:
		return right, true
	}
}
