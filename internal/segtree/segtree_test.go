package segtree

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestTreeSumQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 15, 16, 17, 1000} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(100)
		}
		tr := New(vals, func(a, b int64) int64 { return a + b })
		for lo := 0; lo <= n; lo++ {
			for hi := lo; hi <= n; hi++ {
				want := int64(0)
				for i := lo; i < hi; i++ {
					want += vals[i]
				}
				got, ok := tr.Query(lo, hi)
				if ok != (hi > lo) {
					t.Fatalf("n=%d [%d,%d): ok=%v", n, lo, hi, ok)
				}
				if ok && got != want {
					t.Fatalf("n=%d sum[%d,%d) = %d, want %d", n, lo, hi, got, want)
				}
			}
		}
	}
}

func TestTreeNonCommutativeMerge(t *testing.T) {
	// Concatenation order must be left-to-right.
	vals := []string{"a", "b", "c", "d", "e", "f", "g"}
	tr := New(vals, func(a, b string) string { return a + b })
	for lo := 0; lo <= len(vals); lo++ {
		for hi := lo; hi <= len(vals); hi++ {
			want := ""
			for i := lo; i < hi; i++ {
				want += vals[i]
			}
			got, ok := tr.Query(lo, hi)
			if !ok {
				if want != "" {
					t.Fatalf("[%d,%d): unexpected !ok", lo, hi)
				}
				continue
			}
			if got != want {
				t.Fatalf("[%d,%d) = %q, want %q", lo, hi, got, want)
			}
		}
	}
}

func TestTreeMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 300
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(1000) - 500
	}
	minT := New(vals, func(a, b int64) int64 { return min(a, b) })
	maxT := New(vals, func(a, b int64) int64 { return max(a, b) })
	for trial := 0; trial < 300; trial++ {
		lo := rng.Intn(n)
		hi := lo + 1 + rng.Intn(n-lo)
		wantMin, wantMax := vals[lo], vals[lo]
		for i := lo; i < hi; i++ {
			wantMin = min(wantMin, vals[i])
			wantMax = max(wantMax, vals[i])
		}
		if got, _ := minT.Query(lo, hi); got != wantMin {
			t.Fatalf("min[%d,%d) = %d, want %d", lo, hi, got, wantMin)
		}
		if got, _ := maxT.Query(lo, hi); got != wantMax {
			t.Fatalf("max[%d,%d) = %d, want %d", lo, hi, got, wantMax)
		}
	}
}

func TestTreeClamping(t *testing.T) {
	tr := New([]int64{1, 2, 3}, func(a, b int64) int64 { return a + b })
	if got, ok := tr.Query(-5, 99); !ok || got != 6 {
		t.Fatalf("clamped query = (%d,%v)", got, ok)
	}
	if _, ok := tr.Query(2, 2); ok {
		t.Fatal("empty range must return !ok")
	}
	empty := New[int64](nil, func(a, b int64) int64 { return a + b })
	if _, ok := empty.Query(0, 1); ok {
		t.Fatal("empty tree must return !ok")
	}
}

func TestSortedTreeKth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 64, 65, 513} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(int64(n)) - int64(n)/2
		}
		tr := NewSorted(vals)
		for trial := 0; trial < 100; trial++ {
			lo := rng.Intn(n)
			hi := lo + 1 + rng.Intn(n-lo)
			k := rng.Intn(hi - lo)
			want := slices.Clone(vals[lo:hi])
			slices.Sort(want)
			got, ok := tr.Kth(lo, hi, k)
			if !ok || got != want[k] {
				t.Fatalf("n=%d Kth(%d,%d,%d) = (%d,%v), want %d", n, lo, hi, k, got, ok, want[k])
			}
		}
		if _, ok := tr.Kth(0, n, n); ok {
			t.Fatal("out-of-range k must return !ok")
		}
		if _, ok := tr.Kth(0, 0, 0); ok {
			t.Fatal("empty range must return !ok")
		}
	}
}

func TestSortedTreeCountBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 500
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(50)
	}
	tr := NewSorted(vals)
	for trial := 0; trial < 300; trial++ {
		lo := rng.Intn(n + 1)
		hi := lo + rng.Intn(n+1-lo)
		th := rng.Int63n(52)
		want := 0
		for i := lo; i < hi; i++ {
			if vals[i] < th {
				want++
			}
		}
		if got := tr.CountBelow(lo, hi, th); got != want {
			t.Fatalf("CountBelow(%d,%d,%d) = %d, want %d", lo, hi, th, got, want)
		}
	}
}

func TestSortedTreeProperty(t *testing.T) {
	prop := func(raw []int16, loSeed, hiSeed, kSeed uint16) bool {
		n := len(raw)
		if n == 0 {
			return true
		}
		vals := make([]int64, n)
		for i, v := range raw {
			vals[i] = int64(v)
		}
		tr := NewSorted(vals)
		lo := int(loSeed) % n
		hi := lo + 1 + int(hiSeed)%(n-lo)
		k := int(kSeed) % (hi - lo)
		want := slices.Clone(vals[lo:hi])
		slices.Sort(want)
		got, ok := tr.Kth(lo, hi, k)
		return ok && got == want[k]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
