package rangetree

import (
	"math"
	"math/rand"
	"testing"

	"holistic/internal/mst"
)

// TestCountDistinctBelowBatchMatchesScalar cross-checks the depth-
// synchronous batched decomposition against per-query CountDistinctBelow
// over randomized data: sliding frames (the grouping fast path), random
// frames, clamped ranges and out-of-domain thresholds.
func TestCountDistinctBelowBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	variants := []mst.Options{
		{},
		{Fanout: 2, SampleEvery: 1},
		{NoArena: true},
	}
	for _, opt := range variants {
		for _, n := range []int{0, 1, 2, 7, 33, 257, 1500} {
			ranks := make([]int64, n)
			prevs := make([]int64, n)
			for i := range ranks {
				ranks[i] = int64(rng.Intn(n/3 + 2))
				prevs[i] = int64(rng.Intn(n + 2))
			}
			rt, err := New(ranks, prevs, opt)
			if err != nil {
				t.Fatal(err)
			}
			m := 2*n + 16
			lo := make([]int32, m)
			hi := make([]int32, m)
			rankThr := make([]int64, m)
			prevThr := make([]int64, m)
			for q := 0; q < m; q++ {
				switch q % 4 {
				case 0: // sliding frame
					lo[q] = int32(q / 2)
					hi[q] = int32(q/2 + 40)
					rankThr[q] = int64(q % (n/3 + 2))
					prevThr[q] = int64(q/2) + 1
				case 1: // random in-domain
					lo[q] = int32(rng.Intn(n + 1))
					hi[q] = lo[q] + int32(rng.Intn(n+1))
					rankThr[q] = int64(rng.Intn(n/3 + 3))
					prevThr[q] = int64(rng.Intn(n + 3))
				case 2: // duplicate of the previous query (dedup shape)
					lo[q], hi[q] = lo[q-1], hi[q-1]
					rankThr[q], prevThr[q] = rankThr[q-1], prevThr[q-1]
				default: // clamping and extremes
					lo[q] = int32(rng.Intn(2*n+3) - n - 1)
					hi[q] = int32(rng.Intn(2*n+3) - n - 1)
					rankThr[q] = []int64{-1, 0, math.MaxInt64, 5}[rng.Intn(4)]
					prevThr[q] = []int64{-1, 0, math.MaxInt64, 3}[rng.Intn(4)]
				}
			}
			out := make([]int32, m)
			rt.CountDistinctBelowBatch(lo, hi, rankThr, prevThr, out)
			for q := 0; q < m; q++ {
				want := rt.CountDistinctBelow(int(lo[q]), int(hi[q]), rankThr[q], prevThr[q])
				if int(out[q]) != want {
					t.Fatalf("opt=%+v n=%d query %d: batch(%d,%d,%d,%d)=%d, scalar=%d",
						opt, n, q, lo[q], hi[q], rankThr[q], prevThr[q], out[q], want)
				}
			}
		}
	}
}
