package rangetree

import (
	"testing"

	"holistic/internal/mst"
)

// FuzzDenseRankBatch cross-checks the depth-synchronous batched probe
// against the scalar canonical-decomposition walk over fuzzer-chosen rank
// arrays, previous-occurrence links, tree options and query arguments. The
// batch repeats, perturbs and full-spans the query so grouped inner-tree
// descents, singleton scalar groups and clamping all run in one pass.
func FuzzDenseRankBatch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 9, 0, 0, 9}, 0, 7, int64(4), int64(2), uint8(0), uint8(0), uint8(0))
	f.Add([]byte{5, 5, 5, 5}, 1, 3, int64(5), int64(0), uint8(3), uint8(2), uint8(1))
	f.Add([]byte{}, 0, 0, int64(0), int64(1), uint8(2), uint8(1), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, lo, hi int, rankThr, prevThr int64, fanout, sampleEvery, flags uint8) {
		ranks := make([]int64, len(data))
		prevs := make([]int64, len(data))
		for i, b := range data {
			ranks[i] = int64(b % 16) // low cardinality: rank ties are the interesting case
			prevs[i] = int64(int(b)%(len(data)+1)) - 1
		}
		opt := mst.Options{
			Fanout:      2 + int(fanout%7),
			SampleEvery: 1 + int(sampleEvery%15),
			NoCascading: flags&1 != 0,
			NoArena:     flags&4 != 0,
		}
		rt, err := New(ranks, prevs, opt)
		if err != nil {
			t.Fatalf("New(%d rows, %+v): %v", len(ranks), opt, err)
		}
		bLo := []int32{int32(lo), int32(lo), 0, int32(lo + 1)}
		bHi := []int32{int32(hi), int32(hi), int32(len(ranks)), int32(hi + 3)}
		bRank := []int64{rankThr, rankThr, rankThr, rankThr - 1}
		bPrev := []int64{prevThr, prevThr, prevThr, prevThr + 1}
		out := make([]int32, len(bLo))
		rt.CountDistinctBelowBatch(bLo, bHi, bRank, bPrev, out)
		for q := range bLo {
			want := rt.CountDistinctBelow(int(bLo[q]), int(bHi[q]), bRank[q], bPrev[q])
			if int(out[q]) != want {
				t.Errorf("CountDistinctBelowBatch query %d (%d, %d, rank<%d, prev<%d) = %d, scalar %d (opt %+v)",
					q, bLo[q], bHi[q], bRank[q], bPrev[q], out[q], want, opt)
			}
		}
	})
}
