// Batched framed dense-rank counting (PR 10). A window probe issues one
// CountDistinctBelow per row, and adjacent rows' frames decompose into
// almost the same O(log n) canonical segment-tree nodes. The batched form
// walks all queries' decompositions depth-synchronously: at every depth,
// each live query emits at most one left- and one right-boundary node, and
// because queries arrive in probe order, emissions for the same node are
// adjacent in the per-depth streams. Each maximal same-node group is then
// answered with ONE call into the node's nested merge sort tree — the
// batched CountBelowBatch kernel — so the inner O(log n) descent and its
// galloped top search are shared across the group instead of being paid per
// query. Left and right boundary emissions go to separate streams: a node
// appears as an l-node for one contiguous range of queries and as an r-node
// for another, and mixing the two would split the groups.
//
// Results are exactly CountDistinctBelow per query — enforced by
// TestCountDistinctBelowBatchMatchesScalar and core's batch_equiv_test.

package rangetree

import (
	"math"

	"holistic/internal/arena"
	"holistic/internal/sortutil"
)

// CountDistinctBelowBatch answers len(out) dense-rank counting queries at
// once: out[q] = CountDistinctBelow(int(lo[q]), int(hi[q]), rankThr[q],
// prevThr[q]). All five slices must have the same length. Queries should be
// in probe order (adjacent frames adjacent) so same-node groups are maximal;
// any order is correct.
func (t *DenseRankTree) CountDistinctBelowBatch(lo, hi []int32, rankThr, prevThr []int64, out []int32) {
	m := len(out)
	if len(lo) != m || len(hi) != m || len(rankThr) != m || len(prevThr) != m {
		//lint:invariant the collector builds all five arrays with one length; a mismatch is a caller bug that would silently mis-answer queries
		panic("rangetree: CountDistinctBelowBatch slice length mismatch")
	}
	if m == 0 {
		return
	}
	if t.n == 0 {
		for q := range out {
			out[q] = 0
		}
		return
	}
	if t.n > (math.MaxInt32-1)/2 {
		// Node indices run up to 2n and live in int32 scratch; partitions
		// this large take the scalar path (they cannot be built today — the
		// nested trees hit the element limit first — but stay correct).
		for q := range out {
			out[q] = int32(t.CountDistinctBelow(int(lo[q]), int(hi[q]), rankThr[q], prevThr[q]))
		}
		return
	}

	var buf []int32
	var gthr []int64
	if t.noArena {
		buf = make([]int32, 10*m)
		gthr = make([]int64, m)
	} else {
		buf = arena.Int32s.Get(10 * m)
		gthr = arena.Int64s.Get(m)
		defer arena.Int32s.Put(buf)
		defer arena.Int64s.Put(gthr)
	}
	ll, rr := buf[:m], buf[m:2*m]
	nodesL, qsL := buf[2*m:3*m], buf[3*m:4*m]
	nodesR, qsR := buf[4*m:5*m], buf[5*m:6*m]
	glo, ghi := buf[6*m:7*m], buf[7*m:8*m]
	gout, gq := buf[8*m:9*m], buf[9*m:10*m]

	n32 := int32(t.n)
	for q := 0; q < m; q++ {
		out[q] = 0
		l, h := lo[q], hi[q]
		if l < 0 {
			l = 0
		}
		if h > n32 {
			h = n32
		}
		if l >= h {
			ll[q], rr[q] = 0, 0
			continue
		}
		ll[q], rr[q] = l+n32, h+n32
	}

	// flush answers one per-depth emission stream: maximal groups of equal
	// consecutive node indices share one batched inner-tree call.
	flush := func(nodes, qs []int32, cnt int) {
		for i := 0; i < cnt; {
			j := i + 1
			for j < cnt && nodes[j] == nodes[i] {
				j++
			}
			nd := &t.nodes[nodes[i]]
			if nd.inner == nil || j-i == 1 {
				// Small node or singleton group: the scalar path is already
				// minimal (linear scan / one inner descent).
				for x := i; x < j; x++ {
					q := qs[x]
					m0 := sortutil.LowerBound(nd.ranks, rankThr[q])
					if m0 == 0 {
						continue
					}
					if nd.inner != nil {
						out[q] += int32(nd.inner.CountBelow(0, m0, prevThr[q]))
						continue
					}
					for _, p := range nd.prevs[:m0] {
						if p < prevThr[q] {
							out[q]++
						}
					}
				}
				i = j
				continue
			}
			gm := 0
			for x := i; x < j; x++ {
				q := qs[x]
				m0 := sortutil.LowerBound(nd.ranks, rankThr[q])
				if m0 == 0 {
					continue
				}
				glo[gm], ghi[gm] = 0, int32(m0)
				gthr[gm] = prevThr[q]
				gq[gm] = q
				gm++
			}
			if gm > 0 {
				nd.inner.CountBelowBatch(glo[:gm], ghi[:gm], gthr[:gm], gout[:gm])
				for x := 0; x < gm; x++ {
					out[gq[x]] += gout[x]
				}
			}
			i = j
		}
	}

	// Depth-synchronous canonical decomposition: the classic l/r boundary
	// walk of CountDistinctBelow, advanced one depth for all queries per
	// iteration.
	for {
		nl, nr := 0, 0
		any := false
		for q := 0; q < m; q++ {
			l, r := ll[q], rr[q]
			if l >= r {
				continue
			}
			if l&1 == 1 {
				nodesL[nl], qsL[nl] = l, int32(q)
				nl++
				l++
			}
			if r&1 == 1 {
				r--
				nodesR[nr], qsR[nr] = r, int32(q)
				nr++
			}
			l >>= 1
			r >>= 1
			ll[q], rr[q] = l, r
			if l < r {
				any = true
			}
		}
		flush(nodesL, qsL, nl)
		flush(nodesR, qsR, nr)
		if !any {
			break
		}
	}
}
