package rangetree

import (
	"math/rand"
	"testing"

	"holistic/internal/mst"
	"holistic/internal/preprocess"
)

// bruteDenseBelow counts distinct key values smaller than threshold within
// window positions [lo, hi).
func bruteDenseBelow(keys []int64, lo, hi int, threshold int64) int {
	seen := make(map[int64]struct{})
	for p := lo; p < hi; p++ {
		if keys[p] < threshold {
			seen[keys[p]] = struct{}{}
		}
	}
	return len(seen)
}

// buildFromKeys preprocesses raw keys into (denseRanks, prevIdcs) and builds
// the tree, mirroring what the window operator does.
func buildFromKeys(t *testing.T, keys []int64, opt mst.Options) (*DenseRankTree, []int64) {
	t.Helper()
	sorted := preprocess.SortIndicesByKey(keys)
	ranks, _ := preprocess.DenseRanks(sorted, func(a, b int) bool { return keys[a] == keys[b] })
	prev := preprocess.PrevIndices(sorted, func(a, b int) bool { return keys[a] == keys[b] })
	tree, err := New(ranks, prev, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tree, ranks
}

func TestDenseRankAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 15, 16, 17, 100, 1000} {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63n(int64(n)/3 + 2) // plenty of duplicate ranks
		}
		tree, ranks := buildFromKeys(t, keys, mst.Options{})
		for trial := 0; trial < 80; trial++ {
			lo := rng.Intn(n + 1)
			hi := lo + rng.Intn(n+1-lo)
			var rankTh int64
			if n > 0 {
				row := rng.Intn(n)
				rankTh = ranks[row]
			}
			got := tree.CountDistinctBelow(lo, hi, rankTh, int64(lo)+1)
			// Brute force over dense ranks: distinct ranks < rankTh in frame.
			want := bruteDenseBelow(ranks, lo, hi, rankTh)
			if got != want {
				t.Fatalf("n=%d [%d,%d) rankTh=%d: got %d want %d", n, lo, hi, rankTh, got, want)
			}
		}
	}
}

func TestDenseRankFullQuery(t *testing.T) {
	// End-to-end: dense_rank() over a running frame equals the brute-force
	// SQL semantics (1 + number of distinct smaller keys in frame).
	rng := rand.New(rand.NewSource(2))
	n := 500
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(50)
	}
	tree, ranks := buildFromKeys(t, keys, mst.Options{})
	for i := 0; i < n; i++ {
		lo, hi := 0, i+1 // UNBOUNDED PRECEDING .. CURRENT ROW (rows mode)
		got := 1 + tree.CountDistinctBelow(lo, hi, ranks[i], int64(lo)+1)
		want := 1 + bruteDenseBelow(keys, lo, hi, keys[i])
		if got != want {
			t.Fatalf("row %d: dense_rank %d, want %d", i, got, want)
		}
	}
}

func TestDenseRankSlidingFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 400
	w := 37
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(20)
	}
	tree, ranks := buildFromKeys(t, keys, mst.Options{Fanout: 2, SampleEvery: 1})
	for i := 0; i < n; i++ {
		lo := max(0, i-w+1)
		hi := i + 1
		got := tree.CountDistinctBelow(lo, hi, ranks[i], int64(lo)+1)
		want := bruteDenseBelow(keys, lo, hi, keys[i])
		if got != want {
			t.Fatalf("row %d frame [%d,%d): got %d want %d", i, lo, hi, got, want)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New([]int64{1}, []int64{0, 0}, mst.Options{}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestEmpty(t *testing.T) {
	tree, err := New(nil, nil, mst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.CountDistinctBelow(0, 10, 5, 1); got != 0 {
		t.Fatalf("empty tree count = %d", got)
	}
}
