// Package rangetree implements the three-dimensional range counting
// structure the paper prescribes for framed DENSE_RANK (§4.4): a range tree
// (Bentley) over the window positions whose nodes index their tuples by rank
// key, each carrying a nested merge sort tree over previous-occurrence
// indices.
//
// A framed dense rank needs the number of DISTINCT rank-key values inside
// the frame that compare smaller than the current row's key. Distinctness
// turns into a third dimension with the previous-occurrence trick of §4.2:
// count tuples with
//
//	position ∈ [frameLo, frameHi)   — dimension 1, the outer tree
//	rank key < current key          — dimension 2, sorted node lists
//	prevIdx  < frameLo+1            — dimension 3, nested merge sort trees
//
// The frame decomposes into O(log n) canonical nodes; in each node the rank
// constraint selects a prefix of the node's rank-sorted list, and the nested
// tree counts the prevIdx constraint over that prefix in O(log n). A query
// is O((log n)²) and the structure takes O(n (log n)²) space, matching the
// complexity the paper quotes for range trees with fractional cascading.
package rangetree

import (
	"fmt"
	"sync"

	"holistic/internal/mst"
	"holistic/internal/parallel"
	"holistic/internal/sortutil"
)

// smallNode is the node size below which a linear scan beats a nested tree.
const smallNode = 16

type node struct {
	ranks []int64 // node's rank keys, sorted ascending
	prevs []int64 // prevIdx of the same tuples, in rank-sorted order
	inner *mst.Tree
}

// DenseRankTree answers framed dense-rank counting queries.
type DenseRankTree struct {
	n     int
	nodes []node
	// noArena mirrors the build Options' NoArena for batch-query scratch.
	noArena bool
}

// New builds the structure for a partition in window order. ranks[i] is the
// dense rank of row i's rank key (preprocess.DenseRanks); prevIdcs[i] is the
// shifted previous-occurrence index of that key (preprocess.PrevIndices
// computed on rank-key equality).
func New(ranks, prevIdcs []int64, opt mst.Options) (*DenseRankTree, error) {
	if len(ranks) != len(prevIdcs) {
		return nil, fmt.Errorf("rangetree: %d ranks but %d prevIdcs", len(ranks), len(prevIdcs))
	}
	n := len(ranks)
	t := &DenseRankTree{n: n, noArena: opt.NoArena}
	if n == 0 {
		return t, nil
	}
	t.nodes = make([]node, 2*n)
	for i := 0; i < n; i++ {
		t.nodes[n+i] = node{ranks: ranks[i : i+1], prevs: prevIdcs[i : i+1]}
	}
	// Merge children bottom-up in power-of-two bands (children of band
	// [2^j, 2^(j+1)) live in later bands or are leaves).
	band := 1
	for band*2 <= n-1 {
		band *= 2
	}
	// Inner-tree builds can fail (element limit); the first error wins.
	// The write is mutex-guarded because band tasks run concurrently.
	var errMu sync.Mutex
	var buildErr error
	setErr := func(err error) {
		errMu.Lock()
		if buildErr == nil {
			buildErr = err
		}
		errMu.Unlock()
	}
	for ; band >= 1; band /= 2 {
		bandLo, bandHi := band, 2*band
		if bandHi > n {
			bandHi = n
		}
		parallel.ForEach(bandHi-bandLo, func(off int) {
			i := bandLo + off
			l, r := &t.nodes[2*i], &t.nodes[2*i+1]
			nd := node{
				ranks: make([]int64, len(l.ranks)+len(r.ranks)),
				prevs: make([]int64, len(l.prevs)+len(r.prevs)),
			}
			li, ri, mi := 0, 0, 0
			for li < len(l.ranks) && ri < len(r.ranks) {
				if l.ranks[li] <= r.ranks[ri] {
					nd.ranks[mi], nd.prevs[mi] = l.ranks[li], l.prevs[li]
					li++
				} else {
					nd.ranks[mi], nd.prevs[mi] = r.ranks[ri], r.prevs[ri]
					ri++
				}
				mi++
			}
			for ; li < len(l.ranks); li++ {
				nd.ranks[mi], nd.prevs[mi] = l.ranks[li], l.prevs[li]
				mi++
			}
			for ; ri < len(r.ranks); ri++ {
				nd.ranks[mi], nd.prevs[mi] = r.ranks[ri], r.prevs[ri]
				mi++
			}
			if len(nd.prevs) >= smallNode {
				inner, err := mst.Build(nd.prevs, opt)
				if err != nil {
					setErr(err)
					return
				}
				nd.inner = inner
			}
			t.nodes[i] = nd
		})
		if buildErr != nil {
			return nil, buildErr
		}
	}
	return t, nil
}

// Len returns the partition size.
func (t *DenseRankTree) Len() int { return t.n }

// CountDistinctBelow returns the number of distinct rank values r <
// rankThreshold among window positions [lo, hi), where distinctness is
// established by prevIdx < prevThreshold (normally frameLo+1 in the shifted
// representation).
func (t *DenseRankTree) CountDistinctBelow(lo, hi int, rankThreshold, prevThreshold int64) int {
	if lo < 0 {
		lo = 0
	}
	if hi > t.n {
		hi = t.n
	}
	if lo >= hi {
		return 0
	}
	total := 0
	l, r := lo+t.n, hi+t.n
	count := func(nd *node) {
		m := sortutil.LowerBound(nd.ranks, rankThreshold)
		if m == 0 {
			return
		}
		if nd.inner != nil {
			total += nd.inner.CountBelow(0, m, prevThreshold)
			return
		}
		for _, p := range nd.prevs[:m] {
			if p < prevThreshold {
				total++
			}
		}
	}
	for l < r {
		if l&1 == 1 {
			count(&t.nodes[l])
			l++
		}
		if r&1 == 1 {
			r--
			count(&t.nodes[r])
		}
		l >>= 1
		r >>= 1
	}
	return total
}

// MemBytes reports the approximate resident size of the structure: every
// node's rank/prevIdx arrays plus its nested tree. Used for cache budget
// accounting.
func (t *DenseRankTree) MemBytes() int64 {
	var total int64
	for i := range t.nodes {
		nd := &t.nodes[i]
		total += int64(16 * len(nd.ranks))
		if nd.inner != nil {
			total += int64(nd.inner.Stats().Bytes)
		}
	}
	return total
}
