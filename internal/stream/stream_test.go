package stream

import (
	"errors"
	"math/rand"
	"slices"
	"testing"

	"holistic/internal/mst"
	"holistic/internal/mst/tune"
)

// model is a brute-force reference for the sliding window.
type model struct {
	window  int64
	entries []entry
	latest  int64
}

func (m *model) observe(ts, val int64) {
	m.entries = append(m.entries, entry{ts, val})
	if ts > m.latest {
		m.latest = ts
	}
}

func (m *model) inWindow() []int64 {
	cut := m.latest - m.window
	var vals []int64
	for _, e := range m.entries {
		if e.ts > cut {
			vals = append(vals, e.val)
		}
	}
	return vals
}

func (m *model) distinct() int {
	seen := map[int64]struct{}{}
	for _, v := range m.inWindow() {
		seen[v] = struct{}{}
	}
	return len(seen)
}

func (m *model) countBelow(v int64) int {
	cnt := 0
	for _, x := range m.inWindow() {
		if x < v {
			cnt++
		}
	}
	return cnt
}

func (m *model) percentile(p float64) (int64, bool) {
	vals := m.inWindow()
	if len(vals) == 0 {
		return 0, false
	}
	slices.Sort(vals)
	k := int(p*float64(len(vals))+0.9999999) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(vals) {
		k = len(vals) - 1
	}
	return vals[k], true
}

func TestAggregatorAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, threshold := range []int{1, 7, 64, 0} {
		agg, err := NewAggregator(100, Options{RebuildThreshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		m := &model{window: 100}
		ts := int64(0)
		for step := 0; step < 4000; step++ {
			// Mostly ordered arrivals with occasional small out-of-order
			// jitter kept above the watermark.
			ts += rng.Int63n(3)
			arrival := ts
			if j := rng.Int63n(5); j > 0 && arrival-j >= agg.Watermark() {
				arrival -= j
			}
			val := rng.Int63n(40) - 10
			if err := agg.Observe(arrival, val); err != nil {
				var late *ErrLate
				if !errors.As(err, &late) {
					t.Fatal(err)
				}
				continue // legitimately rejected
			}
			m.observe(arrival, val)

			if step%37 != 0 {
				continue
			}
			if got, want := agg.Len(), len(m.inWindow()); got != want {
				t.Fatalf("threshold %d step %d: Len %d, want %d", threshold, step, got, want)
			}
			if got, want := agg.DistinctCount(), m.distinct(); got != want {
				t.Fatalf("threshold %d step %d: distinct %d, want %d", threshold, step, got, want)
			}
			v := rng.Int63n(50) - 15
			if got, want := agg.CountBelow(v), m.countBelow(v); got != want {
				t.Fatalf("threshold %d step %d: countBelow(%d) %d, want %d", threshold, step, v, got, want)
			}
			p := rng.Float64()
			gotP, gotOK := agg.Percentile(p)
			wantP, wantOK := m.percentile(p)
			if gotOK != wantOK || (gotOK && gotP != wantP) {
				t.Fatalf("threshold %d step %d: percentile(%v) (%d,%v), want (%d,%v)",
					threshold, step, p, gotP, gotOK, wantP, wantOK)
			}
		}
	}
}

func TestLateArrivalRejected(t *testing.T) {
	agg, err := NewAggregator(10, Options{RebuildThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(1); ts <= 10; ts++ {
		if err := agg.Observe(ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	// Watermark advanced past 1 after rebuilds; very old tuples fail.
	if agg.Watermark() == 0 {
		t.Fatal("watermark did not advance")
	}
	err = agg.Observe(agg.Watermark()-1, 99)
	var late *ErrLate
	if !errors.As(err, &late) {
		t.Fatalf("expected ErrLate, got %v", err)
	}
	if late.Timestamp != agg.Watermark()-1 {
		t.Fatalf("ErrLate fields wrong: %+v", late)
	}
}

func TestEmptyAndValidation(t *testing.T) {
	if _, err := NewAggregator(0, Options{}); err == nil {
		t.Fatal("window 0 must be rejected")
	}
	agg, err := NewAggregator(5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != 0 || agg.DistinctCount() != 0 {
		t.Fatal("empty aggregator not empty")
	}
	if _, ok := agg.Median(); ok {
		t.Fatal("median of empty window must not be ok")
	}
	if agg.Rank(5) != 1 {
		t.Fatal("rank in empty window must be 1")
	}
}

func TestEvictionAcrossRebuilds(t *testing.T) {
	agg, err := NewAggregator(50, Options{RebuildThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Two bursts separated by more than the window: after the second
	// burst only its values must be visible.
	for ts := int64(0); ts < 40; ts++ {
		if err := agg.Observe(ts, 1000+ts); err != nil {
			t.Fatal(err)
		}
	}
	for ts := int64(200); ts < 220; ts++ {
		if err := agg.Observe(ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := agg.Len(); got != 20 {
		t.Fatalf("Len = %d, want 20", got)
	}
	if got := agg.CountBelow(1000); got != 20 {
		t.Fatalf("all remaining values are < 1000: got %d", got)
	}
	if med, ok := agg.Median(); !ok || med != 209 {
		t.Fatalf("median = (%d,%v), want 209", med, ok)
	}
}

func TestNegativeValues(t *testing.T) {
	agg, err := NewAggregator(1000, Options{RebuildThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{-5, 3, -100, 7, 0, -5, 2}
	for i, v := range vals {
		if err := agg.Observe(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	if got := agg.DistinctCount(); got != 6 {
		t.Fatalf("distinct = %d, want 6", got)
	}
	if got := agg.CountBelow(0); got != 3 {
		t.Fatalf("countBelow(0) = %d, want 3", got)
	}
	if med, ok := agg.Median(); !ok || med != 0 {
		t.Fatalf("median = (%d,%v), want 0", med, ok)
	}
}

func BenchmarkObserve(b *testing.B) {
	agg, err := NewAggregator(100_000, Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		ts += rng.Int63n(3)
		if err := agg.Observe(ts, rng.Int63n(1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPercentileQuery(b *testing.B) {
	agg, err := NewAggregator(1_000_000, Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	ts := int64(0)
	for i := 0; i < 500_000; i++ {
		ts += rng.Int63n(3)
		if err := agg.Observe(ts, rng.Int63n(100_000)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := agg.Percentile(0.99); !ok {
			b.Fatal("empty window")
		}
	}
}

// TestAggregatorWithTuner pins the incremental path's tuner support: an
// aggregator whose rebuilds use tuner-selected tree parameters must answer
// identically to the fixed-parameter default across rebuild cycles.
func TestAggregatorWithTuner(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tuned, err := NewAggregator(80, Options{
		RebuildThreshold: 16,
		Tree:             mst.Options{Tuning: tune.Default()},
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewAggregator(80, Options{RebuildThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := int64(0)
	for step := 0; step < 1500; step++ {
		ts += rng.Int63n(3)
		val := rng.Int63n(60) - 20
		if err := tuned.Observe(ts, val); err != nil {
			t.Fatal(err)
		}
		if err := plain.Observe(ts, val); err != nil {
			t.Fatal(err)
		}
		if step%23 != 0 {
			continue
		}
		if a, b := tuned.DistinctCount(), plain.DistinctCount(); a != b {
			t.Fatalf("step %d: distinct %d != %d", step, a, b)
		}
		v := rng.Int63n(70) - 25
		if a, b := tuned.CountBelow(v), plain.CountBelow(v); a != b {
			t.Fatalf("step %d: countBelow(%d) %d != %d", step, v, a, b)
		}
		p := rng.Float64()
		aP, aOK := tuned.Percentile(p)
		bP, bOK := plain.Percentile(p)
		if aOK != bOK || (aOK && aP != bP) {
			t.Fatalf("step %d: percentile(%v) (%d,%v) != (%d,%v)", step, p, aP, aOK, bP, bOK)
		}
	}
}
