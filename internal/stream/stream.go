// Package stream extends merge sort trees to stream aggregation — the
// future-work direction the paper's conclusion names (§7: "it will be
// interesting to see how future work can expand this approach, e.g., to
// stream aggregation systems where additional challenges, such as
// out-of-order arrivals, are present").
//
// Aggregator maintains holistic aggregates (distinct count, percentiles,
// ranks) over a sliding time window of a stream:
//
//   - Tuples arrive roughly time-ordered; out-of-order arrivals are
//     accepted as long as they are newer than the watermark (the newest
//     timestamp already frozen into the tree). Older tuples are rejected —
//     standard watermark semantics.
//   - Recent tuples live in a small mutable tail; once the tail exceeds a
//     rebuild threshold it is sorted and frozen into the merge sort tree.
//     Rebuilding the tree over m tuples costs O(m log m) and happens every
//     Θ(m) arrivals, so the amortized maintenance cost per tuple is
//     O(log m) — matching the per-tuple cost of the dedicated streaming
//     structures (FiBA et al.) while reusing the relational machinery.
//   - The sliding window only evicts at the front, which a merge sort tree
//     handles for free: queries simply pass a narrower position range. The
//     evicted prefix is physically dropped at the next rebuild.
//
// Queries combine an O(log n) tree probe over the frozen part with a linear
// scan of the bounded tail.
package stream

import (
	"fmt"
	"math"
	"sort"

	"holistic/internal/delta"
	"holistic/internal/mst"
)

// entry is one stream tuple.
type entry struct {
	ts  int64
	val int64
}

// Options configures an Aggregator.
type Options struct {
	// RebuildThreshold is the tail size that triggers freezing into the
	// tree. 0 chooses max(1024, len(frozen)/4) adaptively.
	RebuildThreshold int
	// Tree configures the underlying merge sort trees.
	Tree mst.Options
}

// Aggregator maintains holistic aggregates over a sliding time window.
type Aggregator struct {
	window int64 // window length in timestamp units
	opt    Options

	// frozen tuples in timestamp order; tree indexes their values.
	frozen []entry
	tree   *mst.Tree
	// prevIdcs of the frozen values (shifted, §5.1) and the annotated
	// distinct-count tree over them.
	distinct *mst.Tree
	// lastPos maps each frozen value to its last frozen position, for
	// cross-part deduplication and for prevIdcs at rebuild time.
	lastPos map[int64]int
	// start is the first frozen position still inside the window.
	start int

	// tail holds arrivals since the last rebuild, in arrival order
	// (possibly out of timestamp order).
	tail []entry
	// tailRun caches the tail's in-window values as a sorted delta.Run, so
	// query bursts between arrivals pay the tail sort once. Invalidated by
	// Observe and by window movement.
	tailRun    delta.Run
	tailRunCut int64
	tailDirty  bool

	watermark int64 // newest frozen timestamp
	latest    int64 // newest observed timestamp
}

// NewAggregator creates a sliding-window aggregator. window is the window
// length in timestamp units: a query at time t covers (t-window, t].
func NewAggregator(window int64, opt Options) (*Aggregator, error) {
	if window <= 0 {
		return nil, fmt.Errorf("stream: window must be positive, got %d", window)
	}
	// Probe the tree options on an empty input so misconfiguration fails
	// at construction; the only rebuild-time error left is the tree's
	// element limit, which Observe surfaces to the caller.
	if _, err := mst.Build(nil, opt.Tree); err != nil {
		return nil, err
	}
	return &Aggregator{
		window:  window,
		opt:     opt,
		lastPos: make(map[int64]int),
	}, nil
}

// ErrLate is returned for tuples older than the watermark.
type ErrLate struct {
	Timestamp, Watermark int64
}

func (e *ErrLate) Error() string {
	return fmt.Sprintf("stream: tuple at %d is older than the watermark %d", e.Timestamp, e.Watermark)
}

// Observe ingests one tuple. Tuples may arrive out of order as long as
// their timestamp is not below the watermark.
func (a *Aggregator) Observe(ts, value int64) error {
	if ts < a.watermark {
		return &ErrLate{Timestamp: ts, Watermark: a.watermark}
	}
	a.tail = append(a.tail, entry{ts, value})
	a.tailDirty = true
	if ts > a.latest {
		a.latest = ts
	}
	if len(a.tail) >= a.rebuildThreshold() {
		if err := a.rebuild(); err != nil {
			return err
		}
	}
	return nil
}

// tailSorted returns the tail's in-window values as a sorted run, cached
// until the tail or the window cut changes.
func (a *Aggregator) tailSorted() delta.Run {
	cut := a.latest - a.window
	if !a.tailDirty && cut == a.tailRunCut {
		return a.tailRun
	}
	vals := a.tailRun.Values()[:0]
	for _, e := range a.tail {
		if e.ts > cut {
			vals = append(vals, e.val)
		}
	}
	a.tailRun = delta.NewRun(vals)
	a.tailRunCut = cut
	a.tailDirty = false
	return a.tailRun
}

func (a *Aggregator) rebuildThreshold() int {
	if a.opt.RebuildThreshold > 0 {
		return a.opt.RebuildThreshold
	}
	t := len(a.frozen) / 4
	if t < 1024 {
		t = 1024
	}
	return t
}

// Watermark returns the newest frozen timestamp; older arrivals are
// rejected.
func (a *Aggregator) Watermark() int64 { return a.watermark }

// Len returns the number of tuples currently inside the window.
func (a *Aggregator) Len() int {
	a.advance()
	return (len(a.frozen) - a.start) + a.tailSorted().Len()
}

// advance moves the window start past evicted frozen tuples.
func (a *Aggregator) advance() {
	cut := a.latest - a.window
	for a.start < len(a.frozen) && a.frozen[a.start].ts <= cut {
		a.start++
	}
}

// rebuild freezes the tail into the tree, dropping the evicted prefix. On
// error (the options were validated at construction, so only the tree's
// element limit remains) the aggregator is left untouched: everything is
// computed into fresh storage and committed only after both tree builds
// succeed, so the caller can keep querying the pre-rebuild state.
func (a *Aggregator) rebuild() error {
	a.advance()
	sort.SliceStable(a.tail, func(i, j int) bool { return a.tail[i].ts < a.tail[j].ts })
	merged := make([]entry, 0, len(a.frozen)-a.start+len(a.tail))
	merged = append(merged, a.frozen[a.start:]...)
	merged = append(merged, a.tail...)

	// Recompute values, prevIdcs and the value index.
	n := len(merged)
	vals := make([]int64, n)
	for i, e := range merged {
		vals[i] = e.val
	}
	lastPos := make(map[int64]int, len(a.lastPos))
	prev := make([]int64, n)
	for i, v := range vals {
		if p, ok := lastPos[v]; ok {
			prev[i] = int64(p) + 1
		}
		lastPos[v] = i
	}
	tree, err := mst.Build(vals, a.opt.Tree)
	if err != nil {
		return fmt.Errorf("stream: tree rebuild: %w", err)
	}
	distinct, err := mst.Build(prev, a.opt.Tree)
	if err != nil {
		return fmt.Errorf("stream: tree rebuild: %w", err)
	}

	a.frozen = merged
	a.tail = a.tail[:0]
	a.tailDirty = true
	a.start = 0
	if len(merged) > 0 {
		a.watermark = merged[len(merged)-1].ts
	}
	a.lastPos = lastPos
	a.tree = tree
	a.distinct = distinct
	return nil
}

// DistinctCount returns the number of distinct values inside the window.
func (a *Aggregator) DistinctCount() int {
	a.advance()
	cnt := 0
	if a.distinct != nil {
		cnt = a.distinct.CountBelow(a.start, len(a.frozen), int64(a.start)+1)
	}
	// Tail values: count those not already present in the frozen window
	// part; the run hands each distinct value over exactly once.
	a.tailSorted().ForEachUnique(func(v int64) {
		if p, ok := a.lastPos[v]; ok && p >= a.start {
			return // already counted in the frozen part
		}
		cnt++
	})
	return cnt
}

// CountBelow returns the number of window tuples with value < v.
func (a *Aggregator) CountBelow(v int64) int {
	a.advance()
	cnt := a.tailSorted().CountBelow(v)
	if a.tree != nil {
		cnt += a.tree.CountBelow(a.start, len(a.frozen), v)
	}
	return cnt
}

// Rank returns the 1-based rank a hypothetical value would take among the
// window's values (1 + the number of strictly smaller values).
func (a *Aggregator) Rank(v int64) int { return a.CountBelow(v) + 1 }

// Percentile returns PERCENTILE_DISC(p) of the window's values. ok is false
// when the window is empty.
func (a *Aggregator) Percentile(p float64) (value int64, ok bool) {
	size := a.Len()
	if size == 0 {
		return 0, false
	}
	k := int(math.Ceil(p*float64(size))) - 1
	if k < 0 {
		k = 0
	}
	if k >= size {
		k = size - 1
	}
	return a.selectKth(k), true
}

// Median is Percentile(0.5).
func (a *Aggregator) Median() (int64, bool) { return a.Percentile(0.5) }

// selectKth finds the k-th smallest window value by binary searching the
// value domain against the combined counts of the frozen tree and the tail.
func (a *Aggregator) selectKth(k int) int64 {
	// Collect the tail's in-window values sorted, so counting below a
	// candidate is a binary search rather than a scan per probe.
	tail := a.tailSorted()
	// Binary search the full value domain (64 probes, each an O(log n)
	// count); smallest v such that count(<= v) >= k+1.
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	countLE := func(v int64) int {
		c := tail.CountAtMost(v)
		if a.tree != nil {
			if v == math.MaxInt64 {
				c += len(a.frozen) - a.start
			} else {
				c += a.tree.CountBelow(a.start, len(a.frozen), v+1)
			}
		}
		return c
	}
	for lo < hi {
		mid := lo + int64((uint64(hi)-uint64(lo))>>1)
		if countLE(mid) >= k+1 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
