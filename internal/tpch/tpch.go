// Package tpch generates synthetic TPC-H-shaped tables for the paper's
// evaluation (§6.1). The official dbgen tool and its data files are not
// available offline, so this generator reproduces the statistical shape the
// experiments depend on: lineitem's date columns span roughly seven years,
// part keys repeat with the 1:4 lineitem-to-part ratio, extended prices are
// quantity-scaled, and receipt dates trail ship dates by 1–30 days. The
// experiments only exercise ordering, duplicate factors and value
// distributions — all preserved (see DESIGN.md §4, substitutions).
package tpch

import (
	"math/rand"
	"slices"

	"holistic/internal/core"
)

// LineitemRowsPerSF is the lineitem row count at scale factor 1, matching
// TPC-H's ~6M rows.
const LineitemRowsPerSF = 6_000_000

// Epoch day numbers bounding the TPC-H date range 1992-01-01 .. 1998-12-31.
const (
	startDate = 8035  // 1992-01-01 as days since Unix epoch
	endDate   = 10592 // 1998-12-31
)

// Lineitem holds the generated lineitem columns needed by the evaluation.
type Lineitem struct {
	OrderKey      []int64
	PartKey       []int64
	SuppKey       []int64
	Quantity      []int64
	ExtendedPrice []float64
	ShipDate      []int64 // days since epoch
	CommitDate    []int64
	ReceiptDate   []int64
}

// GenerateLineitem produces n lineitem rows with the given seed.
func GenerateLineitem(n int, seed int64) *Lineitem {
	rng := rand.New(rand.NewSource(seed))
	l := &Lineitem{
		OrderKey:      make([]int64, n),
		PartKey:       make([]int64, n),
		SuppKey:       make([]int64, n),
		Quantity:      make([]int64, n),
		ExtendedPrice: make([]float64, n),
		ShipDate:      make([]int64, n),
		CommitDate:    make([]int64, n),
		ReceiptDate:   make([]int64, n),
	}
	numParts := n/4 + 1   // SF·200k parts per SF·800k lineitems… 1:4 ratio
	numSupps := n/40 + 10 // 1:10 supplier-to-part ratio
	orderKey := int64(1)
	i := 0
	for i < n {
		// 1-7 lineitems per order, like dbgen.
		perOrder := 1 + rng.Intn(7)
		orderDate := startDate + rng.Intn(endDate-startDate-121)
		for j := 0; j < perOrder && i < n; j++ {
			l.OrderKey[i] = orderKey
			part := rng.Int63n(int64(numParts))
			l.PartKey[i] = part + 1
			l.SuppKey[i] = rng.Int63n(int64(numSupps)) + 1
			qty := rng.Int63n(50) + 1
			l.Quantity[i] = qty
			// retailprice(part) = 90000 + (part mod 20001) + 100·(part mod
			// 1000) cents, dbgen's formula; extendedprice = qty · retail.
			retail := 90000 + part%20001 + 100*(part%1000)
			l.ExtendedPrice[i] = float64(qty*retail) / 100
			ship := orderDate + 1 + rng.Intn(121)
			l.ShipDate[i] = int64(ship)
			l.CommitDate[i] = int64(orderDate + 30 + rng.Intn(61))
			l.ReceiptDate[i] = int64(ship + 1 + rng.Intn(30))
			i++
		}
		orderKey++
	}
	return l
}

// Table converts the lineitem data to a core.Table.
func (l *Lineitem) Table() *core.Table {
	return core.MustNewTable(
		core.NewInt64Column("l_orderkey", l.OrderKey, nil),
		core.NewInt64Column("l_partkey", l.PartKey, nil),
		core.NewInt64Column("l_suppkey", l.SuppKey, nil),
		core.NewInt64Column("l_quantity", l.Quantity, nil),
		core.NewFloat64Column("l_extendedprice", l.ExtendedPrice, nil),
		core.NewInt64Column("l_shipdate", l.ShipDate, nil),
		core.NewInt64Column("l_commitdate", l.CommitDate, nil),
		core.NewInt64Column("l_receiptdate", l.ReceiptDate, nil),
	)
}

// Len returns the number of rows.
func (l *Lineitem) Len() int { return len(l.OrderKey) }

// Orders holds the generated orders columns used by the monthly-active-user
// style queries of §1.
type Orders struct {
	OrderKey   []int64
	CustKey    []int64
	OrderDate  []int64
	TotalPrice []float64
}

// GenerateOrders produces n orders rows.
func GenerateOrders(n int, seed int64) *Orders {
	rng := rand.New(rand.NewSource(seed))
	o := &Orders{
		OrderKey:   make([]int64, n),
		CustKey:    make([]int64, n),
		OrderDate:  make([]int64, n),
		TotalPrice: make([]float64, n),
	}
	numCust := n/10 + 1
	for i := 0; i < n; i++ {
		o.OrderKey[i] = int64(i + 1)
		o.CustKey[i] = rng.Int63n(int64(numCust)) + 1
		o.OrderDate[i] = int64(startDate + rng.Intn(endDate-startDate))
		o.TotalPrice[i] = float64(rng.Intn(50_000_000)) / 100
	}
	return o
}

// Table converts the orders data to a core.Table.
func (o *Orders) Table() *core.Table {
	return core.MustNewTable(
		core.NewInt64Column("o_orderkey", o.OrderKey, nil),
		core.NewInt64Column("o_custkey", o.CustKey, nil),
		core.NewInt64Column("o_orderdate", o.OrderDate, nil),
		core.NewFloat64Column("o_totalprice", o.TotalPrice, nil),
	)
}

// TPCCResults holds a synthetic tpcc_results table for the historical
// leaderboard query of §2.4.
type TPCCResults struct {
	System         []string
	TPS            []float64
	SubmissionDate []int64
}

// GenerateTPCCResults produces n benchmark submissions from a pool of
// database systems whose performance grows over time (so early submissions
// rank well against their contemporaries even when later systems dwarf
// them — the effect the paper's query exposes).
func GenerateTPCCResults(n int, seed int64) *TPCCResults {
	rng := rand.New(rand.NewSource(seed))
	systems := []string{
		"OraSQL", "DBSquared", "HyperSonic", "TurboDB", "MaxData",
		"QuickStore", "RelGine", "Fortress", "NimbleDB", "CoreBase",
		"AstraSQL", "PeakRows", "VectorVault", "GridMart", "SwiftQL",
	}
	r := &TPCCResults{
		System:         make([]string, n),
		TPS:            make([]float64, n),
		SubmissionDate: make([]int64, n),
	}
	for i := 0; i < n; i++ {
		day := int64(startDate) + int64(i)*int64(endDate-startDate)/int64(n+1) + int64(rng.Intn(30))
		r.SubmissionDate[i] = day
		r.System[i] = systems[rng.Intn(len(systems))]
		// Throughput grows ~25x across the date range with noise.
		progress := float64(day-startDate) / float64(endDate-startDate)
		base := 1000 * (1 + 24*progress)
		r.TPS[i] = base * (0.5 + rng.Float64())
	}
	return r
}

// Table converts the results to a core.Table.
func (r *TPCCResults) Table() *core.Table {
	return core.MustNewTable(
		core.NewStringColumn("dbsystem", r.System, nil),
		core.NewFloat64Column("tps", r.TPS, nil),
		core.NewInt64Column("submission_date", r.SubmissionDate, nil),
	)
}

// StockOrders generates the stock limit order book of §2.2's non-constant
// frame bound example: each order has a placement time and a per-order
// good_for validity interval.
type StockOrders struct {
	PlacementTime []int64 // seconds
	GoodFor       []int64 // seconds the order stays valid
	Price         []float64
}

// GenerateStockOrders produces n stock orders over one trading day.
func GenerateStockOrders(n int, seed int64) *StockOrders {
	rng := rand.New(rand.NewSource(seed))
	s := &StockOrders{
		PlacementTime: make([]int64, n),
		GoodFor:       make([]int64, n),
		Price:         make([]float64, n),
	}
	const tradingDay = 8 * 3600
	price := 100.0
	times := make([]int64, n)
	for i := range times {
		times[i] = rng.Int63n(tradingDay)
	}
	// Times arrive sorted so the random walk price is time-coherent.
	slices.Sort(times)
	for i := 0; i < n; i++ {
		s.PlacementTime[i] = times[i]
		s.GoodFor[i] = 30 + rng.Int63n(1800) // 30s .. 30min
		price += rng.NormFloat64() * 0.05
		if price < 1 {
			price = 1
		}
		s.Price[i] = price
	}
	return s
}

// Table converts the stock orders to a core.Table.
func (s *StockOrders) Table() *core.Table {
	return core.MustNewTable(
		core.NewInt64Column("placement_time", s.PlacementTime, nil),
		core.NewInt64Column("good_for", s.GoodFor, nil),
		core.NewFloat64Column("price", s.Price, nil),
	)
}
