package tpch

import (
	"math"
	"testing"
)

func TestLineitemShape(t *testing.T) {
	n := 50_000
	l := GenerateLineitem(n, 1)
	if l.Len() != n {
		t.Fatalf("Len = %d, want %d", l.Len(), n)
	}
	parts := make(map[int64]struct{})
	for i := 0; i < n; i++ {
		if l.ShipDate[i] < startDate || l.ShipDate[i] > endDate+121 {
			t.Fatalf("row %d: ship date %d outside TPC-H range", i, l.ShipDate[i])
		}
		gap := l.ReceiptDate[i] - l.ShipDate[i]
		if gap < 1 || gap > 30 {
			t.Fatalf("row %d: receipt-ship gap %d outside 1..30", i, gap)
		}
		if l.Quantity[i] < 1 || l.Quantity[i] > 50 {
			t.Fatalf("row %d: quantity %d", i, l.Quantity[i])
		}
		if l.ExtendedPrice[i] <= 0 {
			t.Fatalf("row %d: price %v", i, l.ExtendedPrice[i])
		}
		parts[l.PartKey[i]] = struct{}{}
	}
	// ~1:4 lineitem to part ratio: distinct parts should be a large
	// fraction of n/4.
	ratio := float64(len(parts)) / float64(n)
	if ratio < 0.15 || ratio > 0.3 {
		t.Fatalf("distinct part ratio %.3f outside [0.15, 0.3]", ratio)
	}
	// Orders group 1..7 lineitems.
	orderSizes := make(map[int64]int)
	for _, k := range l.OrderKey {
		orderSizes[k]++
	}
	for k, s := range orderSizes {
		if s < 1 || s > 7 {
			t.Fatalf("order %d has %d lineitems", k, s)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := GenerateLineitem(1000, 7)
	b := GenerateLineitem(1000, 7)
	for i := 0; i < 1000; i++ {
		if a.PartKey[i] != b.PartKey[i] || a.ShipDate[i] != b.ShipDate[i] {
			t.Fatal("generation is not deterministic for equal seeds")
		}
	}
	c := GenerateLineitem(1000, 8)
	same := true
	for i := 0; i < 1000; i++ {
		if a.PartKey[i] != c.PartKey[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestTables(t *testing.T) {
	lt := GenerateLineitem(100, 1).Table()
	if lt.Rows() != 100 || lt.Column("l_extendedprice") == nil {
		t.Fatal("lineitem table malformed")
	}
	ot := GenerateOrders(100, 1).Table()
	if ot.Rows() != 100 || ot.Column("o_custkey") == nil {
		t.Fatal("orders table malformed")
	}
	rt := GenerateTPCCResults(100, 1).Table()
	if rt.Rows() != 100 || rt.Column("tps") == nil {
		t.Fatal("tpcc_results table malformed")
	}
	st := GenerateStockOrders(100, 1).Table()
	if st.Rows() != 100 || st.Column("good_for") == nil {
		t.Fatal("stock_orders table malformed")
	}
}

func TestTPCCResultsTrend(t *testing.T) {
	r := GenerateTPCCResults(2000, 3)
	// Submissions are date-ordered and performance trends upward: the last
	// decile should clearly outperform the first.
	var early, late float64
	for i := 0; i < 200; i++ {
		early += r.TPS[i]
		late += r.TPS[len(r.TPS)-1-i]
	}
	if late < 5*early {
		t.Fatalf("no clear performance trend: early %.0f late %.0f", early, late)
	}
	for i := 1; i < len(r.SubmissionDate); i++ {
		if r.SubmissionDate[i] < r.SubmissionDate[i-1]-30 {
			t.Fatalf("submission dates not roughly increasing at %d", i)
		}
	}
}

func TestStockOrders(t *testing.T) {
	s := GenerateStockOrders(5000, 4)
	for i := 0; i < 5000; i++ {
		if s.GoodFor[i] < 30 || s.GoodFor[i] > 1830 {
			t.Fatalf("good_for %d outside range", s.GoodFor[i])
		}
		if s.Price[i] < 1 {
			t.Fatalf("price %v below floor", s.Price[i])
		}
		if i > 0 && s.PlacementTime[i] < s.PlacementTime[i-1] {
			t.Fatal("placement times not sorted")
		}
		if math.IsNaN(s.Price[i]) {
			t.Fatal("NaN price")
		}
	}
}
