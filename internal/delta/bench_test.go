package delta_test

import (
	"fmt"
	"math/rand"
	"testing"

	"holistic/internal/core"
	"holistic/internal/delta"
	"holistic/internal/frame"
	"holistic/internal/treecache"
)

// benchRow draws one row keyed by key whose partition column g is key%parts,
// so a mutation's partition membership is a function of its key: upserting
// keys with one residue touches exactly one partition.
func benchRow(rng *rand.Rand, key int64, parts int64) []delta.Value {
	return []delta.Value{
		delta.Int64Value(key),
		delta.Int64Value(key % parts),     // g
		delta.Int64Value(rng.Int63n(1e6)), // d
		delta.Int64Value(rng.Int63n(1e4)), // v
		delta.Float64Value(float64(rng.Int63n(1e4)) / 4),
		delta.StringValue(string(rune('a' + key%17))),
		delta.BoolValue(key%5 != 0),
	}
}

func benchBuffer(b *testing.B, n int, parts int64, opt delta.Options) (*delta.Buffer, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	rows := make([][]delta.Value, n)
	for i := range rows {
		rows[i] = benchRow(rng, int64(i), parts)
	}
	buf, err := delta.NewBuffer(buildTable(b, rows), "k", opt)
	if err != nil {
		b.Fatal(err)
	}
	return buf, rng
}

// BenchmarkDeltaApply measures sustained mutation throughput: batches of 100
// mixed upserts/appends/deletes against a 100k-row buffer, with the overlay
// folded back by Compact whenever it crosses the threshold (the production
// write path, compaction cost included).
func BenchmarkDeltaApply(b *testing.B) {
	const baseRows, parts, batchSize = 100_000, 100, 100
	buf, rng := benchBuffer(b, baseRows, parts, delta.Options{CompactRows: 25_000})
	nextKey := int64(baseRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		muts := make([]delta.Mutation, 0, batchSize)
		for j := 0; j < batchSize; j++ {
			switch j % 10 {
			case 0:
				muts = append(muts, delta.Mutation{Op: delta.OpAppend, Row: benchRow(rng, nextKey, parts)})
				nextKey++
			case 1:
				// Delete a key appended by an earlier batch (the base keys
				// stay live so upserts below never miss).
				if nextKey > int64(baseRows)+1 {
					k := int64(baseRows) + rng.Int63n(nextKey-int64(baseRows))
					muts = append(muts, delta.Mutation{Op: delta.OpUpsert, Row: benchRow(rng, k, parts)})
				}
			default:
				muts = append(muts, delta.Mutation{Op: delta.OpUpsert, Row: benchRow(rng, rng.Int63n(baseRows), parts)})
			}
		}
		if _, err := buf.Apply(-1, muts); err != nil {
			b.Fatal(err)
		}
		if buf.NeedsCompaction() {
			if _, _, err := buf.Compact(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(batchSize), "muts/op")
}

// benchEvalWindow is the query both eval benchmarks run: three holistic
// functions over 100 partitions with a sliding 1000-row frame.
func benchEvalWindow() *core.WindowSpec {
	return &core.WindowSpec{
		PartitionBy: []string{"g"},
		OrderBy:     []core.SortKey{{Column: "d"}},
		Frame: frame.Spec{
			Mode:  frame.Rows,
			Start: frame.Bound{Type: frame.Preceding, Offset: 999},
			End:   frame.Bound{Type: frame.CurrentRow},
		},
		FrameSet: true,
		Funcs: []core.FuncSpec{
			{Name: core.CountDistinct, Output: "cd", Arg: "v"},
			{Name: core.PercentileDisc, Output: "med", Fraction: 0.5, OrderBy: []core.SortKey{{Column: "v"}}},
			{Name: core.Rank, Output: "r", OrderBy: []core.SortKey{{Column: "v"}}},
		},
	}
}

// BenchmarkEvalWithDelta is the sustained-mutation query benchmark at 1M
// rows and 100 partitions: each iteration applies one 100-upsert batch
// confined to two partitions and re-evaluates the windowed query.
//
//   - delta: evaluates through the snapshot's delta view with a shared
//     structure cache — untouched partitions reuse their merge sort trees
//     across epochs, the sort order comes from the frozen-order merge.
//   - rebuild: evaluates the same merged table from scratch every batch
//     (no cache, no view) — the cost live mutation replaces.
func BenchmarkEvalWithDelta(b *testing.B) {
	const baseRows, parts, batchSize = 1_000_000, 100, 100
	run := func(b *testing.B, useDelta bool) {
		buf, rng := benchBuffer(b, baseRows, parts, delta.Options{})
		w := benchEvalWindow()
		cache := treecache.New(0)
		evalOnce := func() {
			snap := buf.Snapshot()
			tab, err := snap.Table()
			if err != nil {
				b.Fatal(err)
			}
			opt := core.Options{TaskSize: 1 << 14}
			if useDelta {
				view, verr := snap.View()
				if verr != nil {
					b.Fatal(verr)
				}
				opt.Cache = cache
				opt.CacheScope = fmt.Sprintf("bench@v1|g%d", snap.Gen())
				opt.Delta = view
			}
			if _, err := core.Run(tab, w, opt); err != nil {
				b.Fatal(err)
			}
		}
		evalOnce() // warm: the delta path starts from a populated cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			muts := make([]delta.Mutation, batchSize)
			for j := range muts {
				// Keys with residues 0 and 1 modulo parts: the batch touches
				// exactly two of the hundred partitions.
				k := rng.Int63n(baseRows/parts)*parts + int64(j%2)
				muts[j] = delta.Mutation{Op: delta.OpUpsert, Row: benchRow(rng, k, parts)}
			}
			if _, err := buf.Apply(-1, muts); err != nil {
				b.Fatal(err)
			}
			evalOnce()
		}
	}
	b.Run("delta", func(b *testing.B) { run(b, true) })
	b.Run("rebuild", func(b *testing.B) { run(b, false) })
}
