package delta

import (
	"fmt"
	"sync"

	"holistic/internal/core"
)

// frozen is one immutable base generation.
type frozen struct {
	table *core.Table
	gen   int64
}

// Snapshot is one immutable epoch of a Buffer: the frozen base plus the
// overlay accumulated since the freeze. Snapshots are safe to read from any
// number of goroutines and never change after publication; Apply builds the
// next epoch's snapshot from copies.
type Snapshot struct {
	f     *frozen
	epoch int64

	// gone marks base rows deleted from the merged table (nil: none).
	gone    []bool
	numGone int
	// overridden marks base rows whose current image lives in the overlay
	// (nil: none). Overridden rows still occupy their merged position.
	overridden []bool
	// removedRows lists base rows that left the frozen sort order (deleted
	// or first-overridden), with the epoch they left at. Order is the
	// mutation order, not the row order.
	removedRows   []int32
	removedEpochs []int64

	dirty  dirtyState
	ghosts ghostState

	matOnce sync.Once
	mat     *core.Table
	matErr  error

	viewOnce sync.Once
	view     *core.DeltaView
}

// dirtyState holds the overlay's current row images: appended rows and the
// new images of overridden base rows.
type dirtyState struct {
	// target is the overridden base row, or -1 for appended rows.
	target []int32
	alive  []bool
	// epochs is each slot's last-modified epoch.
	epochs []int64
	vals   store
}

// ghostState preserves superseded row images: each ghost records, at the
// epoch a row image was replaced or deleted, the values it had — enough to
// attribute the change to its window partition at query time.
type ghostState struct {
	epochs []int64
	vals   store
}

// Epoch returns the snapshot's epoch.
func (s *Snapshot) Epoch() int64 { return s.epoch }

// Gen returns the frozen generation the snapshot overlays (0 for the
// originally registered base, +1 per compaction).
func (s *Snapshot) Gen() int64 { return s.f.gen }

// BaseRows returns the frozen base's row count.
func (s *Snapshot) BaseRows() int { return s.f.table.Rows() }

// Rows returns the merged table's row count.
func (s *Snapshot) Rows() int {
	return s.f.table.Rows() - s.numGone - s.dirty.numOverrides() + s.dirty.numAlive()
}

// DeltaRows sizes the overlay — current images, ghosts and departed base
// rows — which is what the compaction threshold is measured against.
func (s *Snapshot) DeltaRows() int {
	return s.dirty.vals.n + s.ghosts.vals.n + len(s.removedRows)
}

// clean reports whether the snapshot carries no overlay at all, i.e. the
// merged table IS the frozen base.
func (s *Snapshot) clean() bool {
	return s.dirty.vals.n == 0 && s.ghosts.vals.n == 0 && len(s.removedRows) == 0 && s.numGone == 0
}

func (s *Snapshot) rowGone(r int32) bool       { return s.gone != nil && s.gone[r] }
func (s *Snapshot) rowOverridden(r int32) bool { return s.overridden != nil && s.overridden[r] }

// keyColPos returns the key column's position in the base schema.
func (s *Snapshot) keyColPos(keyCol string) int {
	for i, c := range s.f.table.Columns() {
		if c.Name() == keyCol {
			return i
		}
	}
	return -1
}

// cloneForApply deep-copies the overlay (the frozen base is shared) and
// advances the epoch, so the mutations of one batch never write into state a
// concurrent reader can observe.
func (s *Snapshot) cloneForApply() *Snapshot {
	n := &Snapshot{
		f:             s.f,
		epoch:         s.epoch + 1,
		numGone:       s.numGone,
		removedRows:   append([]int32(nil), s.removedRows...),
		removedEpochs: append([]int64(nil), s.removedEpochs...),
	}
	if s.gone != nil {
		n.gone = append([]bool(nil), s.gone...)
	}
	if s.overridden != nil {
		n.overridden = append([]bool(nil), s.overridden...)
	}
	n.dirty = dirtyState{
		target: append([]int32(nil), s.dirty.target...),
		alive:  append([]bool(nil), s.dirty.alive...),
		epochs: append([]int64(nil), s.dirty.epochs...),
		vals:   s.dirty.vals.clone(),
	}
	n.ghosts = ghostState{
		epochs: append([]int64(nil), s.ghosts.epochs...),
		vals:   s.ghosts.vals.clone(),
	}
	return n
}

// markOverridden records a base row's first override: it leaves the frozen
// sort order at this epoch but keeps its merged position.
func (s *Snapshot) markOverridden(r int32) {
	if s.overridden == nil {
		s.overridden = make([]bool, s.f.table.Rows())
	}
	s.overridden[r] = true
	s.removedRows = append(s.removedRows, r)
	s.removedEpochs = append(s.removedEpochs, s.epoch)
}

// markGone deletes a base row that already left the frozen order (its
// departure epoch is already recorded).
func (s *Snapshot) markGone(r int32) {
	if s.gone == nil {
		s.gone = make([]bool, s.f.table.Rows())
	}
	if !s.gone[r] {
		s.gone[r] = true
		s.numGone++
	}
}

// markOverriddenAndGone deletes a base row straight from the frozen state.
func (s *Snapshot) markOverriddenAndGone(r int32) {
	if s.overridden == nil {
		s.overridden = make([]bool, s.f.table.Rows())
	}
	s.overridden[r] = true
	s.removedRows = append(s.removedRows, r)
	s.removedEpochs = append(s.removedEpochs, s.epoch)
	s.markGone(r)
}

func (d *dirtyState) numAlive() int {
	n := 0
	for _, a := range d.alive {
		if a {
			n++
		}
	}
	return n
}

// numOverrides counts alive slots that shadow a base row (their merged
// position is the base row's, so they must not be double counted).
func (d *dirtyState) numOverrides() int {
	n := 0
	for i, a := range d.alive {
		if a && d.target[i] >= 0 {
			n++
		}
	}
	return n
}

// append adds a row image and returns its slot.
func (d *dirtyState) append(row []Value, target int32, epoch int64) int32 {
	slot := int32(len(d.target))
	d.target = append(d.target, target)
	d.alive = append(d.alive, true)
	d.epochs = append(d.epochs, epoch)
	d.vals.appendRow(row)
	return slot
}

// overwrite replaces a slot's image in place.
func (d *dirtyState) overwrite(slot int, row []Value, epoch int64) {
	d.epochs[slot] = epoch
	d.vals.setRow(slot, row)
}

// kill marks a slot's row deleted.
func (d *dirtyState) kill(slot int, epoch int64) {
	d.alive[slot] = false
	d.epochs[slot] = epoch
}

// appendFromStore copies row i of src into the ghost store.
func (g *ghostState) appendFromStore(src *store, i int, epoch int64) {
	g.epochs = append(g.epochs, epoch)
	g.vals.appendFrom(src, i)
}

// Table materializes (lazily, once) the merged table at this epoch:
// surviving base rows in base order — overridden ones patched with their
// overlay image — followed by surviving appended rows in append order. A
// clean snapshot returns the frozen base itself, sharing all storage.
func (s *Snapshot) Table() (*core.Table, error) {
	if s.clean() {
		return s.f.table, nil
	}
	s.matOnce.Do(func() {
		stats.Materializations.Add(1)
		s.mat, s.matErr = s.materialize()
	})
	return s.mat, s.matErr
}

func (s *Snapshot) materialize() (*core.Table, error) {
	nb := s.f.table.Rows()
	// slotOfBase maps overridden base rows to their current overlay image.
	slotOfBase := make(map[int32]int32)
	for slot, a := range s.dirty.alive {
		if a && s.dirty.target[slot] >= 0 {
			slotOfBase[s.dirty.target[slot]] = int32(slot)
		}
	}
	nOut := s.Rows()
	cols := make([]*core.Column, 0, len(s.f.table.Columns()))
	for ci, base := range s.f.table.Columns() {
		db := &s.dirty.vals.cols[ci]
		bld := newColBuilder(base.Name(), base.Kind(), nOut)
		for r := int32(0); int(r) < nb; r++ {
			if s.rowGone(r) {
				continue
			}
			if slot, ok := slotOfBase[r]; ok {
				bld.addFromBuf(db, int(slot))
				continue
			}
			bld.addFromColumn(base, int(r))
		}
		for slot := 0; slot < s.dirty.vals.n; slot++ {
			if s.dirty.alive[slot] && s.dirty.target[slot] < 0 {
				bld.addFromBuf(db, slot)
			}
		}
		cols = append(cols, bld.column())
	}
	return core.NewTable(cols...)
}

// View returns the core.DeltaView describing this snapshot's overlay
// against the merged table. A clean snapshot returns a view with an empty
// overlay rather than nil: evaluating through it is a no-op sort merge, and
// it keeps partition cache keys in content+epoch form from the very first
// query, so structures built before the first mutation are reused after it.
// The view's merged-row ids refer to the table returned by Table(); the two
// are built to agree.
func (s *Snapshot) View() (*core.DeltaView, error) {
	if _, err := s.Table(); err != nil {
		return nil, err
	}
	s.viewOnce.Do(func() {
		s.view = s.buildView()
	})
	return s.view, nil
}

func (s *Snapshot) buildView() *core.DeltaView {
	nb := s.f.table.Rows()
	skip := make([]bool, nb)
	mergedID := make([]int32, nb)
	shift := int32(0)
	for r := 0; r < nb; r++ {
		if s.rowGone(int32(r)) {
			skip[r] = true
			shift++
			mergedID[r] = -1
			continue
		}
		mergedID[r] = int32(r) - shift
		if s.rowOverridden(int32(r)) {
			skip[r] = true
		}
	}
	nbAlive := nb - s.numGone
	var dirtyIDs []int32
	var dirtyEpochs []int64
	appendOrd := int32(0)
	for slot := 0; slot < s.dirty.vals.n; slot++ {
		if !s.dirty.alive[slot] {
			continue
		}
		if t := s.dirty.target[slot]; t >= 0 {
			dirtyIDs = append(dirtyIDs, mergedID[t])
		} else {
			dirtyIDs = append(dirtyIDs, int32(nbAlive)+appendOrd)
			appendOrd++
		}
		dirtyEpochs = append(dirtyEpochs, s.dirty.epochs[slot])
	}
	v := &core.DeltaView{
		Frozen:        s.f.table,
		Epoch:         s.epoch,
		SkipFrozen:    skip,
		MergedID:      mergedID,
		Dirty:         dirtyIDs,
		DirtyEpochs:   dirtyEpochs,
		RemovedRows:   s.removedRows,
		RemovedEpochs: s.removedEpochs,
	}
	if s.ghosts.vals.n > 0 {
		v.Ghosts = s.ghosts.vals.table()
		v.GhostEpochs = s.ghosts.epochs
	}
	return v
}

// Verify checks the snapshot's internal invariants (tests and the fuzz
// oracle call it after every batch).
func (s *Snapshot) Verify() error {
	t, err := s.Table()
	if err != nil {
		return err
	}
	if t.Rows() != s.Rows() {
		return fmt.Errorf("delta: merged table has %d rows, snapshot accounts for %d", t.Rows(), s.Rows())
	}
	v, err := s.View()
	if err != nil {
		return err
	}
	if v == nil {
		return nil
	}
	clean := 0
	for _, sk := range v.SkipFrozen {
		if !sk {
			clean++
		}
	}
	if clean+len(v.Dirty) != t.Rows() {
		return fmt.Errorf("delta: view covers %d clean + %d dirty rows, merged table has %d", clean, len(v.Dirty), t.Rows())
	}
	return nil
}
