package delta

import "holistic/internal/sortutil"

// Run is an immutable sorted run of int64 values — the query-side shape of a
// small delta: a frozen structure (merge sort tree, sorted base run) answers
// the bulk of a probe and the Run answers the recent remainder with binary
// searches. internal/stream keeps its sliding-window tail in one, and the
// operator's delta sort path merges the frozen order with a run over the
// overlay the same way.
type Run struct {
	vals []int64
}

// NewRun sorts vals ascending (in place — the Run takes ownership) and wraps
// them.
func NewRun(vals []int64) Run {
	sortutil.IntroSort(vals, sortutil.ThreeWay)
	return Run{vals: vals}
}

// Len returns the number of values.
func (r Run) Len() int { return len(r.vals) }

// Values returns the sorted values; callers must not modify them.
func (r Run) Values() []int64 { return r.vals }

// CountBelow counts values strictly less than v.
func (r Run) CountBelow(v int64) int { return sortutil.LowerBound(r.vals, v) }

// CountAtMost counts values less than or equal to v.
func (r Run) CountAtMost(v int64) int { return sortutil.UpperBound(r.vals, v) }

// ForEachUnique calls fn once per distinct value, ascending.
func (r Run) ForEachUnique(fn func(v int64)) {
	for i, v := range r.vals {
		if i > 0 && r.vals[i-1] == v {
			continue
		}
		fn(v)
	}
}
