package delta_test

import (
	"errors"
	"math"
	"testing"

	"holistic/internal/core"
	"holistic/internal/delta"
)

// FuzzDeltaApply drives a Buffer with a byte-derived stream of valid
// append/upsert/delete batches (stale-epoch attempts and compactions
// interleaved) against a naive ordered-row model, requiring the buffer's
// materialized table to match the model after every batch and the
// snapshot's internal invariants to hold. The model implements the
// documented position semantics directly: upsert replaces in place, delete
// shifts later rows up, appends (and upserts of unknown keys) land at the
// tail.
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 0, 0, 4, 4, 4})
	f.Add([]byte{9, 2, 2, 2, 5, 5, 5, 6, 7, 2, 0, 1})
	f.Add([]byte{5, 6, 6, 6, 6, 6, 2, 9, 9, 9, 1, 3, 5, 7, 2, 4, 6, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		mkRow := func(key int64) []delta.Value {
			row := make([]delta.Value, 7)
			row[0] = delta.Int64Value(key)
			row[1] = delta.Int64Value(int64(next() % 3)) // g
			row[2] = delta.Int64Value(int64(next() % 9)) // d
			if b := next(); b%7 == 0 {
				row[3] = delta.NullValue(core.Int64)
			} else {
				row[3] = delta.Int64Value(int64(b % 6)) // v
			}
			row[4] = delta.Float64Value(float64(next()%8) / 2) // fv
			row[5] = delta.StringValue(string(rune('a' + next()%4)))
			row[6] = delta.BoolValue(next()%2 == 0)
			return row
		}
		var model [][]delta.Value
		nBase := int(next()) % 10
		for i := 0; i < nBase; i++ {
			model = append(model, mkRow(int64(i)))
		}
		nextKey := int64(nBase)
		buf, err := delta.NewBuffer(buildTable(t, model), "k", delta.Options{CompactRows: 8})
		if err != nil {
			t.Fatalf("NewBuffer: %v", err)
		}

		for pos < len(data) {
			var muts []delta.Mutation
			var pending [][]delta.Value // model rows after this batch, staged
			pending = append(pending, model...)
			nMut := 1 + int(next())%2
			for m := 0; m < nMut; m++ {
				switch op := next() % 8; {
				case op <= 1: // append a fresh key
					row := mkRow(nextKey)
					nextKey++
					muts = append(muts, delta.Mutation{Op: delta.OpAppend, Row: row})
					pending = append(pending, row)
				case op <= 3 && len(pending) > 0: // upsert existing, in place
					i := int(next()) % len(pending)
					row := mkRow(pending[i][0].Int)
					muts = append(muts, delta.Mutation{Op: delta.OpUpsert, Row: row})
					pending[i] = row
				case op == 4: // upsert a fresh key: appends
					row := mkRow(nextKey)
					nextKey++
					muts = append(muts, delta.Mutation{Op: delta.OpUpsert, Row: row})
					pending = append(pending, row)
				case op == 5 && len(pending) > 0: // delete: later rows shift up
					i := int(next()) % len(pending)
					row := mkRow(pending[i][0].Int)
					muts = append(muts, delta.Mutation{Op: delta.OpDelete, Row: row})
					pending = append(pending[:i], pending[i+1:]...)
				case op == 6: // stale-epoch attempt: must 409 and change nothing
					if len(model) == 0 {
						continue
					}
					stale := []delta.Mutation{{Op: delta.OpUpsert, Row: mkRow(model[0][0].Int)}}
					_, err := buf.Apply(buf.Epoch()+1, stale)
					var conflict *delta.EpochConflictError
					if !errors.As(err, &conflict) {
						t.Fatalf("stale-epoch Apply returned %v, want EpochConflictError", err)
					}
					continue
				default: // compact
					if _, _, err := buf.Compact(); err != nil {
						t.Fatalf("Compact: %v", err)
					}
					continue
				}
			}
			if len(muts) == 0 {
				continue
			}
			if _, err := buf.Apply(buf.Epoch(), muts); err != nil {
				t.Fatalf("Apply(%v): %v", muts, err)
			}
			model = pending
			snap := buf.Snapshot()
			if err := snap.Verify(); err != nil {
				t.Fatal(err)
			}
			requireTableMatchesModel(t, snap, model)
		}
		// Final cross-check after folding everything into a new generation.
		if _, _, err := buf.Compact(); err != nil {
			t.Fatalf("final Compact: %v", err)
		}
		requireTableMatchesModel(t, buf.Snapshot(), model)
	})
}

func requireTableMatchesModel(t *testing.T, snap *delta.Snapshot, model [][]delta.Value) {
	t.Helper()
	tab, err := snap.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != len(model) {
		t.Fatalf("epoch %d: table has %d rows, model has %d", snap.Epoch(), tab.Rows(), len(model))
	}
	if snap.Rows() != len(model) {
		t.Fatalf("epoch %d: snapshot accounts for %d rows, model has %d", snap.Epoch(), snap.Rows(), len(model))
	}
	for ci, col := range tab.Columns() {
		for ri, row := range model {
			want := row[ci]
			if col.IsNull(ri) != want.Null {
				t.Fatalf("epoch %d row %d col %s: null=%v, want %v", snap.Epoch(), ri, col.Name(), col.IsNull(ri), want.Null)
			}
			if want.Null {
				continue
			}
			switch col.Kind() {
			case core.Int64:
				if col.Int64(ri) != want.Int {
					t.Fatalf("epoch %d row %d col %s: %d != %d", snap.Epoch(), ri, col.Name(), col.Int64(ri), want.Int)
				}
			case core.Float64:
				if math.Float64bits(col.Float64(ri)) != math.Float64bits(want.Float) {
					t.Fatalf("epoch %d row %d col %s: %v != %v", snap.Epoch(), ri, col.Name(), col.Float64(ri), want.Float)
				}
			case core.String:
				if col.StringAt(ri) != want.Str {
					t.Fatalf("epoch %d row %d col %s: %q != %q", snap.Epoch(), ri, col.Name(), col.StringAt(ri), want.Str)
				}
			default:
				if col.Bool(ri) != want.Bool {
					t.Fatalf("epoch %d row %d col %s: %v != %v", snap.Epoch(), ri, col.Name(), col.Bool(ri), want.Bool)
				}
			}
		}
	}
}
