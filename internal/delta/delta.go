// Package delta adds live mutation to the otherwise immutable datasets the
// window operator evaluates: append, upsert and delete operations accumulate
// in per-table buffers with monotonically increasing epochs, while queries
// keep running against immutable snapshots.
//
// The design splits a mutable table into a frozen base — the table a
// generation was materialized from, whose sort orders and merge sort trees
// stay cached — and a small overlay recording everything that changed since
// the freeze: rows that left the frozen order (deletes and in-place
// overrides), the current images of changed and appended rows, and "ghost"
// rows preserving superseded images so a query can tell *when* each
// partition last changed. The window operator (core.Options.Delta) merges
// the frozen sort order with a sorted run over the overlay instead of
// re-sorting, and re-keys per-partition structures by partition content and
// last-change epoch, so partitions the mutation stream never touched keep
// hitting the structure cache across epochs.
//
// Writers are serialized; every Apply publishes a brand-new immutable
// Snapshot via an atomic pointer, so any number of concurrent readers see a
// consistent table at exactly one epoch with no locking on the read path. A
// background compactor (StartCompactor) folds a grown overlay back into a
// new frozen generation off the hot path and swaps it in with an
// epoch-gated pointer swap: the swap only happens if no writer advanced the
// epoch while the compactor was materializing.
package delta

import (
	"fmt"
	"sync"
	"sync/atomic"

	"holistic/internal/core"
)

// Op is a mutation kind.
type Op uint8

const (
	// OpAppend adds a new row at the end of the table.
	OpAppend Op = iota + 1
	// OpUpsert replaces the row with the same key in place (keeping its
	// logical position), or appends when the key is new. Requires a key
	// column.
	OpUpsert
	// OpDelete removes the row with the same key; later rows shift up.
	// Requires a key column.
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpAppend:
		return "append"
	case OpUpsert:
		return "upsert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Value is one typed cell of a mutation row. Kind must match the column the
// value is destined for; Null values still carry their column's kind.
type Value struct {
	Kind  core.Kind
	Null  bool
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Int64Value builds a non-null INT64 cell.
func Int64Value(v int64) Value { return Value{Kind: core.Int64, Int: v} }

// Float64Value builds a non-null FLOAT64 cell.
func Float64Value(v float64) Value { return Value{Kind: core.Float64, Float: v} }

// StringValue builds a non-null STRING cell.
func StringValue(v string) Value { return Value{Kind: core.String, Str: v} }

// BoolValue builds a non-null BOOL cell.
func BoolValue(v bool) Value { return Value{Kind: core.Bool, Bool: v} }

// NullValue builds a NULL cell of the given kind.
func NullValue(k core.Kind) Value { return Value{Kind: k, Null: true} }

// Mutation is one operation against a buffered table. Row is aligned with
// the base table's columns (declaration order, one Value per column); for
// OpDelete only the key column's cell is consulted.
type Mutation struct {
	Op  Op
	Row []Value
}

// EpochConflictError reports an Apply whose expected epoch did not match the
// buffer's current epoch — another writer got there first. The caller should
// re-read the current state and retry; windowd surfaces it as HTTP 409.
type EpochConflictError struct {
	Expected, Current int64
}

func (e *EpochConflictError) Error() string {
	return fmt.Sprintf("delta: epoch conflict: expected %d, buffer is at %d", e.Expected, e.Current)
}

// Options tunes a Buffer.
type Options struct {
	// CompactRows is the overlay size (delta rows: changed images, ghosts
	// and departed base rows) at which the background compactor folds the
	// overlay into a new frozen generation. <= 0 picks
	// max(1024, baseRows/8) adaptively.
	CompactRows int
}

// loc is a key's current location: a frozen base row or an overlay slot.
type loc struct {
	dirty bool
	idx   int32
}

// Buffer is a mutable table: a frozen base plus an epoch-stamped overlay.
// Apply serializes writers; Snapshot is wait-free and safe from any
// goroutine.
type Buffer struct {
	opt    Options
	keyCol string
	keyKd  core.Kind

	mu     sync.Mutex // serializes Apply and the compactor's swap
	keyIdx map[string]loc
	cur    atomic.Pointer[Snapshot]
}

// NewBuffer wraps base in a mutation buffer. keyColumn names the unique,
// non-null INT64 or STRING column upserts and deletes address rows by; an
// empty keyColumn makes the buffer append-only (upsert and delete are
// rejected). The buffer takes ownership of base: it must not be mutated by
// the caller afterwards.
func NewBuffer(base *core.Table, keyColumn string, opt Options) (*Buffer, error) {
	b := &Buffer{opt: opt, keyCol: keyColumn}
	if keyColumn != "" {
		col := base.Column(keyColumn)
		if col == nil {
			return nil, fmt.Errorf("delta: key column %q not in table", keyColumn)
		}
		if col.Kind() != core.Int64 && col.Kind() != core.String {
			return nil, fmt.Errorf("delta: key column %q is %v; keys must be INT64 or STRING", keyColumn, col.Kind())
		}
		b.keyKd = col.Kind()
		idx, err := buildKeyIndex(base, keyColumn)
		if err != nil {
			return nil, err
		}
		b.keyIdx = idx
	}
	snap := &Snapshot{f: &frozen{table: base}}
	snap.dirty.vals = emptyStore(base)
	snap.ghosts.vals = emptyStore(base)
	b.cur.Store(snap)
	return b, nil
}

// buildKeyIndex maps every base row's key to its row, rejecting NULL and
// duplicate keys.
func buildKeyIndex(t *core.Table, keyColumn string) (map[string]loc, error) {
	col := t.Column(keyColumn)
	idx := make(map[string]loc, t.Rows())
	for i := 0; i < t.Rows(); i++ {
		if col.IsNull(i) {
			return nil, fmt.Errorf("delta: key column %q has a NULL at row %d", keyColumn, i)
		}
		k := keyOfColumn(col, i)
		if _, dup := idx[k]; dup {
			return nil, fmt.Errorf("delta: key column %q has a duplicate at row %d", keyColumn, i)
		}
		idx[k] = loc{idx: int32(i)}
	}
	return idx, nil
}

// keyOfColumn renders row i's key cell.
func keyOfColumn(col *core.Column, i int) string {
	if col.Kind() == core.Int64 {
		return fmt.Sprintf("i%d", col.Int64(i))
	}
	return "s" + col.StringAt(i)
}

// keyOfValue renders a mutation row's key cell.
func keyOfValue(v Value) string {
	if v.Kind == core.Int64 {
		return fmt.Sprintf("i%d", v.Int)
	}
	return "s" + v.Str
}

// KeyColumn returns the configured key column ("" for append-only buffers).
func (b *Buffer) KeyColumn() string { return b.keyCol }

// Snapshot returns the current immutable state. The returned snapshot never
// changes; concurrent Applies publish new snapshots instead.
func (b *Buffer) Snapshot() *Snapshot { return b.cur.Load() }

// Epoch returns the current epoch: 0 for a freshly frozen buffer, +1 per
// applied batch. Epochs keep increasing across compactions.
func (b *Buffer) Epoch() int64 { return b.cur.Load().epoch }

// Apply applies one batch of mutations atomically, advancing the epoch by
// one. When expectedEpoch is >= 0 the batch only applies if it matches the
// current epoch (optimistic concurrency; *EpochConflictError otherwise — the
// windowd 409). A failed batch leaves the buffer at its previous state. The
// new epoch is returned; on error, the current (unchanged) epoch.
func (b *Buffer) Apply(expectedEpoch int64, muts []Mutation) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.cur.Load()
	if expectedEpoch >= 0 && expectedEpoch != cur.epoch {
		stats.Conflicts.Add(1)
		return cur.epoch, &EpochConflictError{Expected: expectedEpoch, Current: cur.epoch}
	}
	if len(muts) == 0 {
		return cur.epoch, nil
	}
	next := cur.cloneForApply()
	var nAppend, nUpsert, nDelete int64
	for i := range muts {
		if err := b.applyOne(next, &muts[i]); err != nil {
			// The shared key index may have been partially updated; restore
			// it from the still-current snapshot (error path only).
			b.restoreKeyIndex(cur)
			return cur.epoch, fmt.Errorf("delta: mutation %d: %w", i, err)
		}
		switch muts[i].Op {
		case OpAppend:
			nAppend++
		case OpUpsert:
			nUpsert++
		case OpDelete:
			nDelete++
		}
	}
	b.cur.Store(next)
	stats.Batches.Add(1)
	stats.Appends.Add(nAppend)
	stats.Upserts.Add(nUpsert)
	stats.Deletes.Add(nDelete)
	return next.epoch, nil
}

// applyOne applies one mutation to the in-construction snapshot, updating
// the buffer's key index alongside.
func (b *Buffer) applyOne(s *Snapshot, m *Mutation) error {
	cols := s.f.table.Columns()
	if len(m.Row) != len(cols) {
		return fmt.Errorf("%s row has %d cells, table has %d columns", m.Op, len(m.Row), len(cols))
	}
	for i, c := range cols {
		if m.Row[i].Kind != c.Kind() {
			return fmt.Errorf("%s cell %q is %v, column is %v", m.Op, c.Name(), m.Row[i].Kind, c.Kind())
		}
	}
	var key string
	if b.keyCol != "" {
		kv := m.Row[s.keyColPos(b.keyCol)]
		if kv.Null {
			return fmt.Errorf("%s row has a NULL key (%s)", m.Op, b.keyCol)
		}
		key = keyOfValue(kv)
	}
	switch m.Op {
	case OpAppend:
		if b.keyCol != "" {
			if _, exists := b.keyIdx[key]; exists {
				return fmt.Errorf("append of existing key %s=%s", b.keyCol, key[1:])
			}
		}
		slot := s.dirty.append(m.Row, -1, s.epoch)
		if b.keyCol != "" {
			b.keyIdx[key] = loc{dirty: true, idx: slot}
		}
		return nil
	case OpUpsert:
		if b.keyCol == "" {
			return fmt.Errorf("upsert requires a key column")
		}
		l, exists := b.keyIdx[key]
		if !exists {
			slot := s.dirty.append(m.Row, -1, s.epoch)
			b.keyIdx[key] = loc{dirty: true, idx: slot}
			return nil
		}
		if l.dirty {
			// The previous image becomes a ghost so queries can still tell
			// its partition changed at this epoch, then the slot is updated
			// in place: the row keeps its logical position.
			s.ghosts.appendFromStore(&s.dirty.vals, int(l.idx), s.epoch)
			s.dirty.overwrite(int(l.idx), m.Row, s.epoch)
			return nil
		}
		// First override of a frozen base row: the frozen image leaves the
		// frozen sort order, the new image lives in the overlay at the same
		// logical position.
		s.markOverridden(l.idx)
		slot := s.dirty.append(m.Row, l.idx, s.epoch)
		b.keyIdx[key] = loc{dirty: true, idx: slot}
		return nil
	case OpDelete:
		if b.keyCol == "" {
			return fmt.Errorf("delete requires a key column")
		}
		l, exists := b.keyIdx[key]
		if !exists {
			return fmt.Errorf("delete of unknown key %s=%s", b.keyCol, key[1:])
		}
		if l.dirty {
			s.ghosts.appendFromStore(&s.dirty.vals, int(l.idx), s.epoch)
			if base := s.dirty.target[l.idx]; base >= 0 {
				// The slot was an override: the underlying base row is now
				// truly gone and later merged rows shift up.
				s.markGone(base)
			}
			s.dirty.kill(int(l.idx), s.epoch)
		} else {
			s.markOverriddenAndGone(l.idx)
		}
		delete(b.keyIdx, key)
		return nil
	}
	return fmt.Errorf("unknown op %v", m.Op)
}

// restoreKeyIndex rebuilds the key index from a snapshot after a failed
// batch partially updated it.
func (b *Buffer) restoreKeyIndex(s *Snapshot) {
	if b.keyCol == "" {
		return
	}
	col := s.f.table.Column(b.keyCol)
	idx := make(map[string]loc, s.f.table.Rows())
	for i := 0; i < s.f.table.Rows(); i++ {
		if s.rowGone(int32(i)) || s.rowOverridden(int32(i)) {
			continue
		}
		idx[keyOfColumn(col, i)] = loc{idx: int32(i)}
	}
	kc := s.keyColPos(b.keyCol)
	for slot := 0; slot < s.dirty.vals.n; slot++ {
		if !s.dirty.alive[slot] {
			continue
		}
		idx[s.dirty.vals.keyAt(kc, slot)] = loc{dirty: true, idx: int32(slot)}
	}
	b.keyIdx = idx
}
