package delta

import "sync/atomic"

// Stats is a point-in-time snapshot of the package-wide mutation counters
// (all Buffers in the process), mirroring ingest.Snapshot: windowd's
// windowd_delta_* metric families and the /statusz delta line read it.
type Stats struct {
	Batches          int64 // successfully applied batches
	Appends          int64 // mutations by op, successful batches only
	Upserts          int64
	Deletes          int64
	Conflicts        int64 // epoch-CAS failures (the 409s)
	Compactions      int64 // successful generation swaps
	Materializations int64 // merged-table builds (lazy, once per snapshot)
}

var stats struct {
	Batches          atomic.Int64
	Appends          atomic.Int64
	Upserts          atomic.Int64
	Deletes          atomic.Int64
	Conflicts        atomic.Int64
	Compactions      atomic.Int64
	Materializations atomic.Int64
}

// Counters reads the package-wide counters.
func Counters() Stats {
	return Stats{
		Batches:          stats.Batches.Load(),
		Appends:          stats.Appends.Load(),
		Upserts:          stats.Upserts.Load(),
		Deletes:          stats.Deletes.Load(),
		Conflicts:        stats.Conflicts.Load(),
		Compactions:      stats.Compactions.Load(),
		Materializations: stats.Materializations.Load(),
	}
}
