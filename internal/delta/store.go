package delta

import (
	"fmt"

	"holistic/internal/core"
)

// store is a small columnar row store matching a base table's schema; the
// overlay's current images and ghosts both live in one.
type store struct {
	cols []colBuf
	n    int
}

// colBuf is one typed column buffer.
type colBuf struct {
	name   string
	kind   core.Kind
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	nulls  []bool
}

// emptyStore builds a store with t's schema and no rows.
func emptyStore(t *core.Table) store {
	st := store{cols: make([]colBuf, 0, len(t.Columns()))}
	for _, c := range t.Columns() {
		st.cols = append(st.cols, colBuf{name: c.Name(), kind: c.Kind()})
	}
	return st
}

func (st *store) clone() store {
	out := store{cols: make([]colBuf, len(st.cols)), n: st.n}
	for i := range st.cols {
		c := &st.cols[i]
		out.cols[i] = colBuf{
			name:   c.name,
			kind:   c.kind,
			ints:   append([]int64(nil), c.ints...),
			floats: append([]float64(nil), c.floats...),
			strs:   append([]string(nil), c.strs...),
			bools:  append([]bool(nil), c.bools...),
			nulls:  append([]bool(nil), c.nulls...),
		}
	}
	return out
}

func (c *colBuf) appendValue(v Value) {
	c.nulls = append(c.nulls, v.Null)
	switch c.kind {
	case core.Int64:
		c.ints = append(c.ints, v.Int)
	case core.Float64:
		c.floats = append(c.floats, v.Float)
	case core.String:
		c.strs = append(c.strs, v.Str)
	default:
		c.bools = append(c.bools, v.Bool)
	}
}

func (c *colBuf) setValue(i int, v Value) {
	c.nulls[i] = v.Null
	switch c.kind {
	case core.Int64:
		c.ints[i] = v.Int
	case core.Float64:
		c.floats[i] = v.Float
	case core.String:
		c.strs[i] = v.Str
	default:
		c.bools[i] = v.Bool
	}
}

func (c *colBuf) valueAt(i int) Value {
	v := Value{Kind: c.kind, Null: c.nulls[i]}
	switch c.kind {
	case core.Int64:
		v.Int = c.ints[i]
	case core.Float64:
		v.Float = c.floats[i]
	case core.String:
		v.Str = c.strs[i]
	default:
		v.Bool = c.bools[i]
	}
	return v
}

func (st *store) appendRow(row []Value) {
	for i := range st.cols {
		st.cols[i].appendValue(row[i])
	}
	st.n++
}

func (st *store) setRow(i int, row []Value) {
	for ci := range st.cols {
		st.cols[ci].setValue(i, row[ci])
	}
}

func (st *store) appendFrom(src *store, i int) {
	for ci := range st.cols {
		st.cols[ci].appendValue(src.cols[ci].valueAt(i))
	}
	st.n++
}

// keyAt renders row i's cell of column kc as a key string.
func (st *store) keyAt(kc, i int) string {
	c := &st.cols[kc]
	if c.kind == core.Int64 {
		return fmt.Sprintf("i%d", c.ints[i])
	}
	return "s" + c.strs[i]
}

// table converts the store into a core.Table (ghost rows are handed to the
// operator this way). The columns share the store's backing arrays, which
// are immutable once the owning snapshot is published.
func (st *store) table() *core.Table {
	cols := make([]*core.Column, 0, len(st.cols))
	for i := range st.cols {
		c := &st.cols[i]
		nulls := c.nulls
		if !anyTrue(nulls) {
			nulls = nil
		}
		switch c.kind {
		case core.Int64:
			cols = append(cols, core.NewInt64Column(c.name, c.ints, nulls))
		case core.Float64:
			cols = append(cols, core.NewFloat64Column(c.name, c.floats, nulls))
		case core.String:
			cols = append(cols, core.NewStringColumn(c.name, c.strs, nulls))
		default:
			cols = append(cols, core.NewBoolColumn(c.name, c.bools, nulls))
		}
	}
	return core.MustNewTable(cols...)
}

// colBuilder accumulates one merged output column.
type colBuilder struct {
	name    string
	kind    core.Kind
	ints    []int64
	floats  []float64
	strs    []string
	bools   []bool
	nulls   []bool
	anyNull bool
}

func newColBuilder(name string, kind core.Kind, capacity int) *colBuilder {
	b := &colBuilder{name: name, kind: kind, nulls: make([]bool, 0, capacity)}
	switch kind {
	case core.Int64:
		b.ints = make([]int64, 0, capacity)
	case core.Float64:
		b.floats = make([]float64, 0, capacity)
	case core.String:
		b.strs = make([]string, 0, capacity)
	default:
		b.bools = make([]bool, 0, capacity)
	}
	return b
}

func (b *colBuilder) addFromColumn(c *core.Column, i int) {
	null := c.IsNull(i)
	b.nulls = append(b.nulls, null)
	b.anyNull = b.anyNull || null
	switch b.kind {
	case core.Int64:
		var v int64
		if !null {
			v = c.Int64(i)
		}
		b.ints = append(b.ints, v)
	case core.Float64:
		var v float64
		if !null {
			v = c.Float64(i)
		}
		b.floats = append(b.floats, v)
	case core.String:
		var v string
		if !null {
			v = c.StringAt(i)
		}
		b.strs = append(b.strs, v)
	default:
		var v bool
		if !null {
			v = c.Bool(i)
		}
		b.bools = append(b.bools, v)
	}
}

func (b *colBuilder) addFromBuf(c *colBuf, i int) {
	null := c.nulls[i]
	b.nulls = append(b.nulls, null)
	b.anyNull = b.anyNull || null
	switch b.kind {
	case core.Int64:
		b.ints = append(b.ints, c.ints[i])
	case core.Float64:
		b.floats = append(b.floats, c.floats[i])
	case core.String:
		b.strs = append(b.strs, c.strs[i])
	default:
		b.bools = append(b.bools, c.bools[i])
	}
}

func (b *colBuilder) column() *core.Column {
	nulls := b.nulls
	if !b.anyNull {
		nulls = nil
	}
	switch b.kind {
	case core.Int64:
		return core.NewInt64Column(b.name, b.ints, nulls)
	case core.Float64:
		return core.NewFloat64Column(b.name, b.floats, nulls)
	case core.String:
		return core.NewStringColumn(b.name, b.strs, nulls)
	default:
		return core.NewBoolColumn(b.name, b.bools, nulls)
	}
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}
