package delta

import (
	"time"
)

// compactThreshold returns the overlay size that triggers compaction.
func (b *Buffer) compactThreshold(s *Snapshot) int {
	if b.opt.CompactRows > 0 {
		return b.opt.CompactRows
	}
	t := s.f.table.Rows() / 8
	if t < 1024 {
		t = 1024
	}
	return t
}

// NeedsCompaction reports whether the current overlay reached the
// compaction threshold.
func (b *Buffer) NeedsCompaction() bool {
	s := b.cur.Load()
	return s.DeltaRows() >= b.compactThreshold(s)
}

// Compact folds the current overlay into a new frozen generation: the merged
// table is materialized off the write path, then swapped in with an
// epoch-gated pointer swap — if any writer advanced the epoch while the
// compactor was materializing, the swap is abandoned (the next compaction
// attempt starts over from the newer snapshot) rather than blocking writers
// for the duration of an O(n) rebuild. Returns whether a swap happened and
// the generation that became current.
func (b *Buffer) Compact() (swapped bool, gen int64, err error) {
	snap := b.cur.Load()
	if snap.clean() {
		return false, snap.f.gen, nil
	}
	mat, err := snap.Table()
	if err != nil {
		return false, snap.f.gen, err
	}
	var newIdx map[string]loc
	if b.keyCol != "" {
		newIdx, err = buildKeyIndex(mat, b.keyCol)
		if err != nil {
			return false, snap.f.gen, err
		}
	}
	next := &Snapshot{
		f:     &frozen{table: mat, gen: snap.f.gen + 1},
		epoch: snap.epoch,
	}
	next.dirty.vals = emptyStore(mat)
	next.ghosts.vals = emptyStore(mat)

	b.mu.Lock()
	if b.cur.Load() != snap {
		// Epoch gate: a writer published a newer snapshot while we were
		// materializing; our merged table is stale.
		b.mu.Unlock()
		return false, b.cur.Load().f.gen, nil
	}
	b.cur.Store(next)
	if b.keyCol != "" {
		b.keyIdx = newIdx
	}
	b.mu.Unlock()
	stats.Compactions.Add(1)
	return true, next.f.gen, nil
}

// StartCompactor runs a background loop that compacts the buffer whenever
// the overlay crosses the compaction threshold, checking every interval.
// onSwap (optional) is called after each successful swap with the old and
// new generation — windowd uses it to release the old generation's cache
// entries. The returned stop function terminates the loop and waits for it.
func (b *Buffer) StartCompactor(interval time.Duration, onSwap func(oldGen, newGen int64)) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			if !b.NeedsCompaction() {
				continue
			}
			oldGen := b.cur.Load().f.gen
			swapped, newGen, err := b.Compact()
			if err != nil || !swapped {
				continue
			}
			if onSwap != nil {
				onSwap(oldGen, newGen)
			}
		}
	}()
	var once func()
	var stopOnce bool
	once = func() {
		if stopOnce {
			return
		}
		stopOnce = true
		close(done)
		<-finished
	}
	return once
}
