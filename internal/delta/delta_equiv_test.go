// The mutation-equivalence harness: randomized append/upsert/delete
// interleavings across every window function the operator implements, with
// each epoch's delta-path evaluation required to be byte-identical to a
// from-scratch rebuild over the same merged table. This is the proof
// obligation of the delta design — the incremental sort merge and the
// content+epoch partition re-keying must be invisible in results.
package delta_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"holistic/internal/core"
	"holistic/internal/delta"
	"holistic/internal/frame"
	"holistic/internal/mst"
	"holistic/internal/mst/tune"
	"holistic/internal/treecache"
)

// tableSchema mirrors core's randomized-test schema plus a unique INT64 key
// column "k" for upserts/deletes.
var tableColumns = []struct {
	name string
	kind core.Kind
}{
	{"k", core.Int64},
	{"g", core.Int64},
	{"d", core.Int64},
	{"v", core.Int64},
	{"fv", core.Float64},
	{"s", core.String},
	{"flt", core.Bool},
}

// randRow draws one row with the given key; value columns get occasional
// NULLs (zero payloads, so model-vs-table comparisons are well defined).
func randRow(rng *rand.Rand, key int64) []delta.Value {
	row := make([]delta.Value, len(tableColumns))
	row[0] = delta.Int64Value(key)
	row[1] = delta.Int64Value(rng.Int63n(3)) // g
	row[2] = delta.Int64Value(rng.Int63n(40))
	if rng.Intn(15) == 0 {
		row[2] = delta.NullValue(core.Int64) // d
	}
	row[3] = delta.Int64Value(rng.Int63n(12))
	if rng.Intn(10) == 0 {
		row[3] = delta.NullValue(core.Int64) // v
	}
	row[4] = delta.Float64Value(float64(rng.Intn(50)) / 2)
	if rng.Intn(10) == 0 {
		row[4] = delta.NullValue(core.Float64) // fv
	}
	row[5] = delta.StringValue(string(rune('a' + rng.Intn(6))))
	if rng.Intn(12) == 0 {
		row[5] = delta.NullValue(core.String) // s
	}
	row[6] = delta.BoolValue(rng.Intn(4) != 0)
	if rng.Intn(20) == 0 {
		row[6] = delta.NullValue(core.Bool) // flt
	}
	return row
}

// buildTable assembles a core.Table from value rows in the test schema.
func buildTable(t testing.TB, rows [][]delta.Value) *core.Table {
	t.Helper()
	n := len(rows)
	cols := make([]*core.Column, len(tableColumns))
	for ci, tc := range tableColumns {
		nulls := make([]bool, n)
		any := false
		for ri, row := range rows {
			nulls[ri] = row[ci].Null
			any = any || row[ci].Null
		}
		if !any {
			nulls = nil
		}
		switch tc.kind {
		case core.Int64:
			vals := make([]int64, n)
			for ri, row := range rows {
				vals[ri] = row[ci].Int
			}
			cols[ci] = core.NewInt64Column(tc.name, vals, nulls)
		case core.Float64:
			vals := make([]float64, n)
			for ri, row := range rows {
				vals[ri] = row[ci].Float
			}
			cols[ci] = core.NewFloat64Column(tc.name, vals, nulls)
		case core.String:
			vals := make([]string, n)
			for ri, row := range rows {
				vals[ri] = row[ci].Str
			}
			cols[ci] = core.NewStringColumn(tc.name, vals, nulls)
		default:
			vals := make([]bool, n)
			for ri, row := range rows {
				vals[ri] = row[ci].Bool
			}
			cols[ci] = core.NewBoolColumn(tc.name, vals, nulls)
		}
	}
	return core.MustNewTable(cols...)
}

// randFrame mirrors core's randomized frame generator (per-row offset
// expressions included — they hash the original row index, which the delta
// and from-scratch paths agree on by construction).
func randFrame(rng *rand.Rand) frame.Spec {
	modes := []frame.Mode{frame.Rows, frame.Rows, frame.Range, frame.Groups}
	s := frame.Spec{Mode: modes[rng.Intn(len(modes))]}
	bound := func(start bool) frame.Bound {
		r := rng.Intn(12)
		switch {
		case r < 2:
			if start {
				return frame.Bound{Type: frame.UnboundedPreceding}
			}
			return frame.Bound{Type: frame.UnboundedFollowing}
		case r < 5:
			return frame.Bound{Type: frame.Preceding, Offset: int64(rng.Intn(6))}
		case r < 7:
			return frame.Bound{Type: frame.CurrentRow}
		case r < 10 || s.Mode != frame.Rows:
			return frame.Bound{Type: frame.Following, Offset: int64(rng.Intn(6))}
		default:
			salt := rng.Int63n(1000)
			fn := func(row int) int64 { return (int64(row)*2654435761 + salt) % 7 }
			if rng.Intn(2) == 0 {
				return frame.Bound{Type: frame.Preceding, OffsetFn: fn}
			}
			return frame.Bound{Type: frame.Following, OffsetFn: fn}
		}
	}
	s.Start = bound(true)
	s.End = bound(false)
	s.Exclude = frame.Exclusion(rng.Intn(4))
	return s
}

// allFuncSpecs builds one spec per window function with randomized knobs —
// the full surface the equivalence obligation covers.
func allFuncSpecs(rng *rand.Rand) []core.FuncSpec {
	ordV := []core.SortKey{{Column: "v"}}
	ordVDesc := []core.SortKey{{Column: "v", Desc: true}}
	ordFV := []core.SortKey{{Column: "fv"}}
	ordDV := []core.SortKey{{Column: "d"}, {Column: "v", Desc: true}}
	pick := func(opts ...[]core.SortKey) []core.SortKey { return opts[rng.Intn(len(opts))] }
	maybeFilter := func() string {
		if rng.Intn(3) == 0 {
			return "flt"
		}
		return ""
	}
	ignoreNulls := rng.Intn(3) == 0
	return []core.FuncSpec{
		{Name: core.CountStar, Output: "o1", Filter: maybeFilter()},
		{Name: core.Count, Output: "o2", Arg: "v", Filter: maybeFilter()},
		{Name: core.Sum, Output: "o3", Arg: "v", Filter: maybeFilter()},
		{Name: core.Sum, Output: "o3f", Arg: "fv"},
		{Name: core.Avg, Output: "o4", Arg: "fv", Filter: maybeFilter()},
		{Name: core.Min, Output: "o5", Arg: "s"},
		{Name: core.Max, Output: "o6", Arg: "v", Filter: maybeFilter()},
		{Name: core.CountDistinct, Output: "o7", Arg: "v", Filter: maybeFilter()},
		{Name: core.CountDistinct, Output: "o7s", Arg: "s"},
		{Name: core.SumDistinct, Output: "o8", Arg: "v"},
		{Name: core.SumDistinct, Output: "o8f", Arg: "fv", Filter: maybeFilter()},
		{Name: core.AvgDistinct, Output: "o9", Arg: "v"},
		{Name: core.Rank, Output: "o10", OrderBy: pick(ordV, ordVDesc, ordDV)},
		{Name: core.DenseRank, Output: "o11", OrderBy: pick(ordV, ordVDesc), Filter: maybeFilter()},
		{Name: core.PercentRank, Output: "o12", OrderBy: pick(ordV, ordVDesc)},
		{Name: core.RowNumber, Output: "o13", OrderBy: pick(ordV, ordDV), Filter: maybeFilter()},
		{Name: core.CumeDist, Output: "o14", OrderBy: pick(ordV, ordVDesc)},
		{Name: core.Ntile, Output: "o15", N: int64(1 + rng.Intn(4)), OrderBy: ordV},
		{Name: core.PercentileDisc, Output: "o16", Fraction: float64(rng.Intn(101)) / 100, OrderBy: pick(ordV, ordFV), Filter: maybeFilter()},
		{Name: core.PercentileCont, Output: "o17", Fraction: float64(rng.Intn(101)) / 100, OrderBy: ordFV},
		{Name: core.NthValue, Output: "o18", Arg: "s", N: int64(1 + rng.Intn(3)), OrderBy: pick(ordV, ordVDesc), IgnoreNulls: ignoreNulls},
		{Name: core.FirstValue, Output: "o19", Arg: "v", OrderBy: pick(ordV, ordDV), Filter: maybeFilter(), IgnoreNulls: ignoreNulls},
		{Name: core.LastValue, Output: "o20", Arg: "fv", OrderBy: ordV},
		{Name: core.Lead, Output: "o21", Arg: "v", N: int64(rng.Intn(3)), OrderBy: pick(ordV, ordVDesc), IgnoreNulls: ignoreNulls},
		{Name: core.Lag, Output: "o22", Arg: "s", N: int64(rng.Intn(2)), OrderBy: ordV, Filter: maybeFilter()},
	}
}

// randMutations draws a valid batch against the live key set, mutating it.
func randMutations(rng *rand.Rand, live *[]int64, nextKey *int64, n int) []delta.Mutation {
	muts := make([]delta.Mutation, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Intn(10)
		switch {
		case r < 3 || len(*live) == 0: // append a fresh key
			k := *nextKey
			*nextKey++
			muts = append(muts, delta.Mutation{Op: delta.OpAppend, Row: randRow(rng, k)})
			*live = append(*live, k)
		case r < 7: // upsert an existing key (possibly moving partitions)
			k := (*live)[rng.Intn(len(*live))]
			muts = append(muts, delta.Mutation{Op: delta.OpUpsert, Row: randRow(rng, k)})
		case r < 8: // upsert a fresh key (append via upsert)
			k := *nextKey
			*nextKey++
			muts = append(muts, delta.Mutation{Op: delta.OpUpsert, Row: randRow(rng, k)})
			*live = append(*live, k)
		default: // delete an existing key
			i := rng.Intn(len(*live))
			k := (*live)[i]
			*live = append((*live)[:i], (*live)[i+1:]...)
			muts = append(muts, delta.Mutation{Op: delta.OpDelete, Row: randRow(rng, k)})
		}
	}
	return muts
}

// requireColumnsIdentical asserts two result columns agree bit for bit —
// floats compared by Float64bits, not tolerance.
func requireColumnsIdentical(t *testing.T, got, want *core.Column, label string) {
	t.Helper()
	if got.Kind() != want.Kind() || got.Len() != want.Len() {
		t.Fatalf("%s: shape (%v,%d) vs (%v,%d)", label, got.Kind(), got.Len(), want.Kind(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.IsNull(i) != want.IsNull(i) {
			t.Fatalf("%s row %d: null=%v, want %v", label, i, got.IsNull(i), want.IsNull(i))
		}
		if got.IsNull(i) {
			continue
		}
		switch got.Kind() {
		case core.Int64:
			if got.Int64(i) != want.Int64(i) {
				t.Fatalf("%s row %d: %d != %d", label, i, got.Int64(i), want.Int64(i))
			}
		case core.Float64:
			if math.Float64bits(got.Float64(i)) != math.Float64bits(want.Float64(i)) {
				t.Fatalf("%s row %d: %v (%#x) != %v (%#x)", label, i,
					got.Float64(i), math.Float64bits(got.Float64(i)),
					want.Float64(i), math.Float64bits(want.Float64(i)))
			}
		case core.String:
			if got.StringAt(i) != want.StringAt(i) {
				t.Fatalf("%s row %d: %q != %q", label, i, got.StringAt(i), want.StringAt(i))
			}
		default:
			if got.Bool(i) != want.Bool(i) {
				t.Fatalf("%s row %d: %v != %v", label, i, got.Bool(i), want.Bool(i))
			}
		}
	}
}

// TestDeltaEquivalenceRandomized is the harness proper: random mutation
// interleavings, and after every batch the delta evaluation (shared cache
// across epochs, so stale reuse would be caught) must equal a cache-free
// from-scratch evaluation of the same merged table, for all 22 functions,
// under every tree variant including spilled chunk forests.
func TestDeltaEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// The tuner variant exercises the ",tn:" cache-key component: delta
	// re-keys (pk=…|pd<stamp>) survive across epochs, so a tuned tree
	// aliasing an untuned entry would surface here as a wrong answer.
	treeVariants := []mst.Options{{}, {Fanout: 2, SampleEvery: 1}, {SpillRows: 16}, {Tuning: tune.Default()}}
	for trial := 0; trial < 8; trial++ {
		nBase := []int{0, 3, 20, 45}[trial%4]
		var rows [][]delta.Value
		nextKey := int64(0)
		var live []int64
		for i := 0; i < nBase; i++ {
			rows = append(rows, randRow(rng, nextKey))
			live = append(live, nextKey)
			nextKey++
		}
		base := buildTable(t, rows)
		buf, err := delta.NewBuffer(base, "k", delta.Options{})
		if err != nil {
			t.Fatalf("trial %d: NewBuffer: %v", trial, err)
		}
		fs := randFrame(rng)
		w := &core.WindowSpec{
			OrderBy:  []core.SortKey{{Column: "d", Desc: rng.Intn(2) == 0}},
			Frame:    fs,
			FrameSet: true,
			Funcs:    allFuncSpecs(rng),
		}
		if rng.Intn(2) == 0 {
			w.PartitionBy = []string{"g"}
		}
		tv := treeVariants[trial%len(treeVariants)]
		cache := treecache.New(0)
		for batch := 0; batch < 8; batch++ {
			muts := randMutations(rng, &live, &nextKey, 1+rng.Intn(6))
			if _, err := buf.Apply(-1, muts); err != nil {
				t.Fatalf("trial %d batch %d: Apply: %v", trial, batch, err)
			}
			if batch == 5 {
				// Fold the overlay into a new generation mid-stream: later
				// batches then exercise the delta path on generation > 0.
				if _, _, err := buf.Compact(); err != nil {
					t.Fatalf("trial %d batch %d: Compact: %v", trial, batch, err)
				}
			}
			snap := buf.Snapshot()
			if err := snap.Verify(); err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, batch, err)
			}
			tab, err := snap.Table()
			if err != nil {
				t.Fatalf("trial %d batch %d: Table: %v", trial, batch, err)
			}
			view, err := snap.View()
			if err != nil {
				t.Fatalf("trial %d batch %d: View: %v", trial, batch, err)
			}
			deltaOpt := core.Options{
				Tree: tv, TaskSize: 16,
				Cache:      cache,
				CacheScope: fmt.Sprintf("eq@v1|g%d", snap.Gen()),
				Delta:      view,
			}
			got, err := core.Run(tab, w, deltaOpt)
			if err != nil {
				t.Fatalf("trial %d batch %d: delta run: %v", trial, batch, err)
			}
			// The rebuild oracle runs scalar (NoBatch): the delta path's
			// batched kernels must be invisible against it byte-for-byte.
			want, err := core.Run(tab, w, core.Options{Tree: tv, TaskSize: 16, NoBatch: true})
			if err != nil {
				t.Fatalf("trial %d batch %d: rebuild run: %v", trial, batch, err)
			}
			for i := range w.Funcs {
				f := &w.Funcs[i]
				label := fmt.Sprintf("trial %d batch %d epoch %d gen %d %v (%s)",
					trial, batch, snap.Epoch(), snap.Gen(), f.Name, f.Output)
				requireColumnsIdentical(t, got.Column(f.Output), want.Column(f.Output), label)
			}
		}
	}
}

// TestDeltaUntouchedPartitionCacheReuse pins the point of the content+epoch
// partition keys: after mutating rows of one partition, a re-query at the
// new epoch must hit the cache for the untouched partitions' structures.
func TestDeltaUntouchedPartitionCacheReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var rows [][]delta.Value
	for i := int64(0); i < 120; i++ {
		row := randRow(rng, i)
		row[1] = delta.Int64Value(i % 4) // g: four partitions
		rows = append(rows, row)
	}
	base := buildTable(t, rows)
	buf, err := delta.NewBuffer(base, "k", delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := &core.WindowSpec{
		PartitionBy: []string{"g"},
		OrderBy:     []core.SortKey{{Column: "d"}},
		Funcs: []core.FuncSpec{
			{Name: core.CountDistinct, Output: "o", Arg: "v"},
			{Name: core.Rank, Output: "r", OrderBy: []core.SortKey{{Column: "v"}}},
		},
	}
	cache := treecache.New(0)
	query := func() {
		t.Helper()
		snap := buf.Snapshot()
		tab, err := snap.Table()
		if err != nil {
			t.Fatal(err)
		}
		view, err := snap.View()
		if err != nil {
			t.Fatal(err)
		}
		opt := core.Options{Cache: cache, CacheScope: fmt.Sprintf("reuse@v1|g%d", snap.Gen()), Delta: view}
		if _, err := core.Run(tab, w, opt); err != nil {
			t.Fatal(err)
		}
	}
	query() // cold: populates per-partition structures for all four partitions
	missesCold := cache.Stats().Misses

	// Mutate only partition g=0 (key 0 has g = 0%4 = 0).
	row := randRow(rng, 0)
	row[1] = delta.Int64Value(0)
	if _, err := buf.Apply(-1, []delta.Mutation{{Op: delta.OpUpsert, Row: row}}); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	query() // warm: partitions g=1..3 must reuse their structures
	after := cache.Stats()
	if after.Hits <= before.Hits {
		t.Fatalf("no cache hits across epochs: %+v -> %+v", before, after)
	}
	// The second query may rebuild the touched partition's structures and
	// the new epoch's sort/stamps, but must not rebuild everything again.
	if rebuilds := after.Misses - before.Misses; rebuilds >= missesCold {
		t.Fatalf("epoch bump rebuilt %d structures, cold run built %d — no reuse", rebuilds, missesCold)
	}
}
