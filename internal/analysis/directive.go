package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //lint: annotation. The grammar is
//
//	//lint:<name> <justification...>
//
// with no space between "//lint:" and the name. The justification is
// required for the suppression directives (parallel-safe, invariant,
// framebounds-ok, sortstability-ok); marker directives (parallel-entry)
// take none. Directives attach to the line they are written on and to the
// line directly below, so both trailing and leading placement work:
//
//	x := racyThing() //lint:parallel-safe tasks write disjoint epochs
//
//	//lint:invariant the caller checked the key is present
//	panic("absent key")
type Directive struct {
	// Name is the directive name, e.g. "parallel-safe".
	Name string
	// Reason is the justification text after the name (may be empty).
	Reason string
	// Pos is the position of the comment.
	Pos token.Pos
}

// Directive names understood by the suite. Suppression directives require
// a justification; so does narrowconv-entry, which blesses a whole audited
// helper. parallel-entry is the only bare marker.
const (
	DirectiveParallelSafe    = "parallel-safe"
	DirectiveParallelEntry   = "parallel-entry"
	DirectiveInvariant       = "invariant"
	DirectiveFrameBoundsOK   = "framebounds-ok"
	DirectiveSortStableOK    = "sortstability-ok"
	DirectivePoolLifecycleOK = "poollifecycle-ok"
	DirectiveSpanEndOK       = "spanend-ok"
	DirectiveCtxFlowOK       = "ctxflow-ok"
	DirectiveNarrowConvOK    = "narrowconv-ok"
	DirectiveNarrowConvEntry = "narrowconv-entry"
)

// KnownDirectives maps every understood directive name to whether it
// requires a justification string.
var KnownDirectives = map[string]bool{
	DirectiveParallelSafe:    true,
	DirectiveParallelEntry:   false,
	DirectiveInvariant:       true,
	DirectiveFrameBoundsOK:   true,
	DirectiveSortStableOK:    true,
	DirectivePoolLifecycleOK: true,
	DirectiveSpanEndOK:       true,
	DirectiveCtxFlowOK:       true,
	DirectiveNarrowConvOK:    true,
	DirectiveNarrowConvEntry: true,
}

const directivePrefix = "//lint:"

// ParseDirectives extracts every //lint: directive from the files'
// comments, in source order. Malformed directives (the bare prefix) are
// returned with an empty name so lintdirective can flag them.
func ParseDirectives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, reason, _ := strings.Cut(rest, " ")
				// The justification ends at a nested comment marker, so
				// tooling comments (e.g. analysistest want expectations)
				// don't count as a reason.
				if i := strings.Index(reason, "//"); i >= 0 {
					reason = reason[:i]
				}
				out = append(out, Directive{
					Name:   strings.TrimSpace(name),
					Reason: strings.TrimSpace(reason),
					Pos:    c.Pos(),
				})
			}
		}
	}
	return out
}
