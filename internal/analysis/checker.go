package analysis

import (
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"strings"
)

// Finding is one diagnostic with its position resolved, ready for text or
// SARIF rendering.
type Finding struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// CollectStandalone loads the requested packages of the enclosing module
// from source, applies the analyzers, and returns the findings in package
// then position order. Patterns are `./...` (every package of the module
// containing dir) or package directories relative to dir.
func CollectStandalone(analyzers []*Analyzer, dir string, patterns []string) ([]Finding, error) {
	root, modPath, err := FindModule(dir)
	if err != nil {
		return nil, err
	}
	loader := NewLoader(root, modPath)

	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			all, err := loader.ModulePackages()
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
			continue
		}
		abs, err := filepath.Abs(filepath.Join(dir, pat))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", pat, modPath)
		}
		if rel == "." {
			add(modPath)
		} else {
			add(modPath + "/" + filepath.ToSlash(rel))
		}
	}

	var findings []Finding
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return findings, err
		}
		for _, d := range RunPackage(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Info) {
			findings = append(findings, Finding{
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
				Analyzer: d.Analyzer,
			})
		}
	}
	return findings, nil
}

// RunStandalone is CollectStandalone plus the usual file:line:col text
// rendering to out. It returns the number of findings.
func RunStandalone(analyzers []*Analyzer, dir string, patterns []string, out io.Writer) (int, error) {
	findings, err := CollectStandalone(analyzers, dir, patterns)
	for _, f := range findings {
		fmt.Fprintf(out, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	return len(findings), err
}
