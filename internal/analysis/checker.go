package analysis

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// RunStandalone loads the requested packages of the enclosing module from
// source, applies the analyzers, and prints findings to out in the usual
// file:line:col format. It returns the number of findings. Patterns are
// `./...` (every package of the module containing dir) or package
// directories relative to dir.
func RunStandalone(analyzers []*Analyzer, dir string, patterns []string, out io.Writer) (int, error) {
	root, modPath, err := FindModule(dir)
	if err != nil {
		return 0, err
	}
	loader := NewLoader(root, modPath)

	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			all, err := loader.ModulePackages()
			if err != nil {
				return 0, err
			}
			for _, p := range all {
				add(p)
			}
			continue
		}
		abs, err := filepath.Abs(filepath.Join(dir, pat))
		if err != nil {
			return 0, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return 0, fmt.Errorf("analysis: %s is outside module %s", pat, modPath)
		}
		if rel == "." {
			add(modPath)
		} else {
			add(modPath + "/" + filepath.ToSlash(rel))
		}
	}

	count := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return count, err
		}
		for _, d := range RunPackage(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Info) {
			fmt.Fprintf(out, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			count++
		}
	}
	return count, nil
}
