package lintdirective_test

import (
	"testing"

	"holistic/internal/analysis/analysistest"
	"holistic/internal/analysis/lintdirective"
)

func TestLintDirective(t *testing.T) {
	analysistest.Run(t, "testdata", lintdirective.Analyzer, "a")
}
