// Package lintdirective validates the //lint: annotation grammar itself,
// so a typo in an escape hatch cannot silently disable (or fail to
// disable) a check: unknown directive names and empty directives are
// findings. The per-analyzer requirement that suppression directives
// carry a justification string is enforced by the owning analyzers.
package lintdirective

import (
	"sort"
	"strings"

	"holistic/internal/analysis"
)

// Analyzer is the lintdirective analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lintdirective",
	Doc:  "reports malformed or unknown //lint: directives",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, d := range pass.Directives {
		if d.Name == "" {
			pass.Reportf(d.Pos, "malformed //lint: directive: missing name")
			continue
		}
		if _, known := analysis.KnownDirectives[d.Name]; !known {
			pass.Reportf(d.Pos, "unknown //lint: directive %q (known: %s)", d.Name, knownNames())
		}
	}
	return nil
}

func knownNames() string {
	names := make([]string, 0, len(analysis.KnownDirectives))
	for n := range analysis.KnownDirectives {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
