// Package a exercises lintdirective: unknown and malformed //lint:
// directives are findings, well-formed ones are not.
package a

import "sync"

var mu sync.Mutex

func known(x *int) {
	mu.Lock()
	*x++ //lint:parallel-safe guarded by mu; well-formed, not reported here
	mu.Unlock()
}

func typo(x *int) {
	*x++ //lint:paralel-safe misspelled // want "unknown //lint: directive"
}

func unknownName(x *int) {
	*x++ //lint:nolint // want "unknown //lint: directive"
}

func missingName(x *int) {
	*x++ //lint: // want "malformed //lint: directive"
}
