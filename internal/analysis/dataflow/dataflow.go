// Package dataflow is a generic forward dataflow solver over the control
// flow graphs of package cfg. An analyzer describes its lattice through
// the Problem interface — the choice of Join makes it a may-analysis
// (union: "held on some path") or a must-analysis (intersection: "guarded
// on every path") — and Solve iterates the classic worklist algorithm to a
// fixpoint. Walk then replays the transfer function over the solved graph
// so check phases can ask "what holds immediately before this node".
//
// Termination is the implementation's contract with the Problem: facts
// must form a finite-height lattice and Transfer/Refine/Join must be
// monotone. All analyzer facts here are finite sets keyed by declared
// variables, which bounds the chain height by the function's variable
// count.
package dataflow

import (
	"go/ast"

	"holistic/internal/analysis/cfg"
)

// Problem describes one forward dataflow analysis. Implementations must
// treat facts as immutable: Transfer, Refine and Join return fresh values
// (or an unchanged input) and never mutate their arguments — Solve caches
// and re-joins facts across worklist iterations.
type Problem[F any] interface {
	// Entry is the fact at function entry.
	Entry() F
	// Transfer applies the effect of one block node.
	Transfer(fact F, n ast.Node) F
	// Refine specializes a fact along an outgoing edge (e.g. using
	// e.Cond on True/False edges). Return fact unchanged when the edge
	// adds no information.
	Refine(fact F, e *cfg.Edge) F
	// Join combines facts where control-flow paths meet.
	Join(a, b F) F
	// Equal reports whether two facts are equal; Solve uses it to detect
	// the fixpoint.
	Equal(a, b F) bool
}

// Solve runs the forward worklist algorithm to fixpoint and returns the
// fact holding at entry to each reachable block. Unreachable blocks
// (including dead blocks the CFG builder leaves behind after return/panic)
// have no entry in the map.
func Solve[F any](g *cfg.Graph, p Problem[F]) map[*cfg.Block]F {
	in := map[*cfg.Block]F{g.Entry: p.Entry()}
	work := []*cfg.Block{g.Entry}
	queued := map[*cfg.Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := in[blk]
		for _, n := range blk.Nodes {
			out = p.Transfer(out, n)
		}
		for _, e := range blk.Succs {
			f := p.Refine(out, e)
			old, seen := in[e.To]
			next := f
			if seen {
				next = p.Join(old, f)
			}
			if seen && p.Equal(old, next) {
				continue
			}
			in[e.To] = next
			if !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return in
}

// Walk replays the transfer function over every reachable block, calling
// visit with the fact in force immediately before each node. Check phases
// use it to report against the solved facts.
func Walk[F any](g *cfg.Graph, p Problem[F], in map[*cfg.Block]F, visit func(b *cfg.Block, fact F, n ast.Node)) {
	for _, blk := range g.Blocks {
		f, ok := in[blk]
		if !ok {
			continue
		}
		for _, n := range blk.Nodes {
			visit(blk, f, n)
			f = p.Transfer(f, n)
		}
	}
}

// Out recomputes the fact at the end of a reachable block. ok is false for
// unreachable blocks.
func Out[F any](p Problem[F], in map[*cfg.Block]F, b *cfg.Block) (F, bool) {
	f, ok := in[b]
	if !ok {
		var zero F
		return zero, false
	}
	for _, n := range b.Nodes {
		f = p.Transfer(f, n)
	}
	return f, true
}
