package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"maps"
	"testing"

	"holistic/internal/analysis/cfg"
	"holistic/internal/analysis/dataflow"
)

func graphFor(t *testing.T, src, name string) (*cfg.Graph, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", "package p\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:  map[ast.Expr]types.TypeAndValue{},
		Defs:   map[*ast.Ident]types.Object{},
		Uses:   map[*ast.Ident]types.Object{},
		Scopes: map[ast.Node]*types.Scope{},
	}
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, g := range cfg.FileGraphs(file, info) {
		if fd, ok := g.Func.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return g, info
		}
	}
	t.Fatalf("no graph for %s", name)
	return nil, nil
}

// mayAssign is a may-analysis: the set of variable names assigned on some
// path. Join is union.
type mayAssign struct{}

type strset = map[string]bool

func (mayAssign) Entry() strset          { return nil }
func (mayAssign) Equal(a, b strset) bool { return maps.Equal(a, b) }

func (mayAssign) Join(a, b strset) strset {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := maps.Clone(a)
	maps.Copy(out, b)
	return out
}

func (mayAssign) Refine(f strset, e *cfg.Edge) strset { return f }

func (mayAssign) Transfer(f strset, n ast.Node) strset {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return f
	}
	out := maps.Clone(f)
	if out == nil {
		out = strset{}
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
	}
	return out
}

const branchLoopSrc = `
func f(cond bool, n int) {
	a := 1
	if cond {
		b := 2
		_ = b
	} else {
		c := 3
		_ = c
	}
	for i := 0; i < n; i++ {
		d := 4
		_ = d
	}
	_ = a
}
`

func TestMayUnionAcrossBranchesAndLoop(t *testing.T) {
	g, _ := graphFor(t, branchLoopSrc, "f")
	in := dataflow.Solve[strset](g, mayAssign{})
	exit, ok := in[g.Exit]
	if !ok {
		t.Fatal("exit has no in-fact")
	}
	for _, want := range []string{"a", "b", "c", "d", "i"} {
		if !exit[want] {
			t.Fatalf("exit fact %v is missing %q", exit, want)
		}
	}
}

const cycleSrc = `
func f(n int) {
	x := 0
loop:
	x++
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j > i {
				continue
			}
			x = j
		}
	}
	if x < n {
		goto loop
	}
}
`

// The solver must reach a fixpoint on nested loops plus a goto back edge;
// a non-monotone or non-terminating worklist would hang or miss blocks.
func TestFixpointTerminationOnCycles(t *testing.T) {
	g, _ := graphFor(t, cycleSrc, "f")
	in := dataflow.Solve[strset](g, mayAssign{})
	exit := in[g.Exit]
	for _, want := range []string{"x", "i", "j"} {
		if !exit[want] {
			t.Fatalf("exit fact %v is missing %q", exit, want)
		}
	}
}

// mustGuard is a must-analysis with edge refinement: a variable is
// "guarded" when every path to the point passed the true edge of a
// comparison naming it. Join is intersection.
type mustGuard struct{ info *types.Info }

func (mustGuard) Entry() strset          { return nil }
func (mustGuard) Equal(a, b strset) bool { return maps.Equal(a, b) }

func (mustGuard) Join(a, b strset) strset {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := strset{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func (m mustGuard) Refine(f strset, e *cfg.Edge) strset {
	if e.Kind != cfg.True || e.Cond == nil {
		return f
	}
	bin, ok := e.Cond.(*ast.BinaryExpr)
	if !ok {
		return f
	}
	id, ok := bin.X.(*ast.Ident)
	if !ok {
		return f
	}
	out := maps.Clone(f)
	if out == nil {
		out = strset{}
	}
	out[id.Name] = true
	return out
}

func (mustGuard) Transfer(f strset, n ast.Node) strset { return f }

const guardSrc = `
func allPaths(v int) int {
	if v < 10 {
		return v
	}
	return 0
}

func onePath(v int, cond bool) int {
	if cond {
		if v < 10 {
			_ = v
		} else {
			return 0
		}
	}
	return v
}
`

func TestMustIntersectionWithRefinement(t *testing.T) {
	g, info := graphFor(t, guardSrc, "allPaths")
	in := dataflow.Solve[strset](g, mustGuard{info})
	// Exit joins the guarded return v with the unguarded return 0 path —
	// but both returns flow to Exit; only the True-edge path is guarded,
	// so the intersection drops v.
	if exit := in[g.Exit]; exit["v"] {
		t.Fatalf("exit fact %v should not keep v: the else path never guarded it", exit)
	}
	// Inside the then-branch, v must be guarded: find the in-fact of the
	// block holding `return v`.
	found := false
	for b, f := range in {
		for _, n := range b.Nodes {
			if r, ok := n.(*ast.ReturnStmt); ok && len(r.Results) == 1 {
				if id, ok := r.Results[0].(*ast.Ident); ok && id.Name == "v" {
					found = true
					if !f["v"] {
						t.Fatalf("return v in-fact %v lost the guard from the true edge", f)
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no block holds `return v`")
	}

	g2, _ := graphFor(t, guardSrc, "onePath")
	in2 := dataflow.Solve[strset](g2, mustGuard{info})
	// The final `return v` merges the guarded inner path with the
	// cond-false path that never compared v: must-join drops the guard.
	for b, f := range in2 {
		for _, n := range b.Nodes {
			if r, ok := n.(*ast.ReturnStmt); ok && len(r.Results) == 1 {
				if id, ok := r.Results[0].(*ast.Ident); ok && id.Name == "v" && f["v"] {
					t.Fatalf("return v in-fact %v kept the guard across an unguarded path", f)
				}
			}
		}
	}
}

// TestWalkReplaysSolve checks Walk presents each node exactly once with
// the fact the solver computed, and that Out recomputes block exits
// consistently with successors' joins.
func TestWalkReplaysSolve(t *testing.T) {
	g, _ := graphFor(t, branchLoopSrc, "f")
	p := mayAssign{}
	in := dataflow.Solve[strset](g, p)
	visited := map[ast.Node]int{}
	dataflow.Walk[strset](g, p, in, func(b *cfg.Block, f strset, n ast.Node) {
		visited[n]++
		// The walk fact can never exceed what flows out of the block.
		out, ok := dataflow.Out[strset](p, in, b)
		if !ok {
			t.Fatalf("walked block has no in-fact")
		}
		for name := range f {
			if !out[name] {
				t.Fatalf("walk fact %v not contained in block out-fact %v", f, out)
			}
		}
	})
	total := 0
	for b := range in {
		total += len(b.Nodes)
	}
	if len(visited) == 0 {
		t.Fatal("walk visited nothing")
	}
	for n, c := range visited {
		if c != 1 {
			t.Fatalf("node %T visited %d times", n, c)
		}
	}
	if len(visited) != total {
		t.Fatalf("walk visited %d nodes, reachable blocks hold %d", len(visited), total)
	}
}
