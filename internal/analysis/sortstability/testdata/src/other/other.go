// Package other is outside the MST packages; unstable sorts on
// position-free data are the caller's business.
package other

import "slices"

func Sorted(xs []int) []int {
	slices.Sort(xs)
	return xs
}
