// Package mst stands in for the MST packages, where tuple/run order is
// position-disambiguated and unstable sorts are findings.
package mst

import (
	"slices"
	"sort"
)

type run struct {
	key int64
	pos int
}

func unstableSorts(keys []int64, runs []run) {
	slices.Sort(keys)                                                            // want "unstable"
	slices.SortFunc(runs, func(a, b run) int { return int(a.key) - int(b.key) }) // want "unstable"
	sort.Slice(runs, func(i, j int) bool { return runs[i].key < runs[j].key })   // want "unstable"
}

func stableSortsAreFine(runs []run) {
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].key < runs[j].key })
	slices.SortStableFunc(runs, func(a, b run) int { return int(a.key - b.key) })
}

func positionDisambiguated(runs []run) {
	//lint:sortstability-ok the comparator is total: equal keys are ordered by tuple position, so stability is vacuous
	slices.SortFunc(runs, func(a, b run) int {
		if a.key != b.key {
			return int(a.key - b.key)
		}
		return a.pos - b.pos
	})
}

func bareHatchIsAFinding(keys []int64) {
	slices.Sort(keys) //lint:sortstability-ok // want "needs a justification string"
}
