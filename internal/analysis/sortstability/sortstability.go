// Package sortstability protects the ordering invariant the merge sort
// tree construction rests on: tuples and runs must be ordered with stable,
// position-disambiguated comparators. Algorithm 1 and the run merges of
// §4.2/§5.2 identify tuples by their position in the sorted partition;
// an unstable sort that reorders equal keys silently permutes those
// positions and corrupts counts, ranks and fractional-cascading samples.
//
// Inside internal/mst, internal/sortutil and internal/core the analyzer
// reports calls to the unstable standard-library sorts — sort.Slice,
// sort.Sort, slices.Sort and slices.SortFunc — steering call sites to
// sort.SliceStable / slices.SortStableFunc or to the sortutil comparators
// that break ties on tuple position.
//
// Sites whose comparator is already total (so stability is vacuous)
// annotate with `//lint:sortstability-ok <reason>`; the reason is
// mandatory.
package sortstability

import (
	"go/ast"
	"go/types"
	"strings"

	"holistic/internal/analysis"
)

// Analyzer is the sortstability analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sortstability",
	Doc:  "reports unstable standard-library sorts on tuple/run data in the MST packages",
	Run:  run,
}

// restricted are the import-path fragments of the packages whose tuple
// and run data carries positional meaning.
var restricted = []string{"internal/mst", "internal/sortutil", "internal/core"}

// unstable maps package path -> function names of the unstable sorts.
var unstable = map[string]map[string]bool{
	"sort":   {"Slice": true, "Sort": true},
	"slices": {"Sort": true, "SortFunc": true},
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			names, ok := unstable[fn.Pkg().Path()]
			if !ok || !names[fn.Name()] {
				return true
			}
			if _, ok := pass.Suppression(call.Pos(), analysis.DirectiveSortStableOK); ok {
				return true
			}
			pass.Reportf(call.Pos(), "%s.%s is unstable; MST tuple/run order is position-disambiguated — use sort.SliceStable, slices.SortStableFunc or a position tie-breaking comparator (or annotate //lint:sortstability-ok <reason> if the comparator is total)", fn.Pkg().Name(), fn.Name())
			return true
		})
	}
	pass.ReportBareDirectives(analysis.DirectiveSortStableOK)
	return nil
}

func inScope(path string) bool {
	for _, frag := range restricted {
		if strings.HasSuffix(path, frag) {
			return true
		}
	}
	return false
}
