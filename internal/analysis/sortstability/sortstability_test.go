package sortstability_test

import (
	"testing"

	"holistic/internal/analysis/analysistest"
	"holistic/internal/analysis/sortstability"
)

func TestSortStability(t *testing.T) {
	analysistest.Run(t, "testdata", sortstability.Analyzer, "m/internal/mst", "other")
}
