// Package mst exercises the narrowing-conversion guard: the import-path
// suffix puts it in the analyzer's scope.
package mst

import "math"

func sink(...any) {}

// --- unguarded conversions ---

func unguarded(v int) int32 {
	return int32(v) // want "unguarded narrowing conversion to int32"
}

func unguardedUint(v uint64) uint32 {
	return uint32(v) // want "unguarded narrowing conversion to uint32"
}

func unguardedInt64(v int64) int32 {
	return int32(v) // want "unguarded narrowing conversion to int32"
}

// Conversions from at-most-32-bit sources never narrow.
func alreadyNarrow(v int32, w int16) {
	sink(int32(v), int32(w), uint32(uint16(9)))
}

func constantInRange() int32 {
	return int32(1 << 20)
}

// --- guard refinement ---

func guardedByEarlyOut(v int) int32 {
	if v > math.MaxInt32 {
		return 0
	}
	return int32(v)
}

func guardedOnTrueEdge(v int) int32 {
	if v <= math.MaxInt32 {
		return int32(v)
	}
	return 0
}

func guardedStrictLess(v int) int32 {
	if v < math.MaxInt32+1 {
		return int32(v)
	}
	return 0
}

func guardSwappedOperands(v int) int32 {
	if math.MaxInt32 >= v {
		return int32(v)
	}
	return 0
}

// The guard constant itself must fit: bounding by a >2³¹ constant proves
// nothing.
func guardTooLoose(v int) int32 {
	if v <= math.MaxInt32+1 {
		return int32(v) // want "unguarded narrowing conversion to int32"
	}
	return 0
}

// A cond-less switch lowers to a refinable if-chain, so its case edges
// guard like ifs (the count_batch.go threshold-clamp shape).
func guardedBySwitch(v int64) int32 {
	switch {
	case v <= 0:
		return 0
	case v > math.MaxInt32:
		return math.MaxInt32
	default:
		return int32(v)
	}
}

// --- must-join: every path has to establish the bound ---

func guardOnOnePathOnly(v int, cond bool) int32 {
	if cond {
		if v > math.MaxInt32 {
			return 0
		}
	}
	return int32(v) // want "unguarded narrowing conversion to int32"
}

func guardOnBothPaths(v int, cond bool) int32 {
	if cond {
		if v > math.MaxInt32 {
			return 0
		}
	} else {
		if v > 100 {
			return 0
		}
	}
	return int32(v)
}

// --- narrow sources and copy propagation ---

func narrowSource(small int16) int32 {
	v := int(small)
	return int32(v)
}

func copyPropagation(v int) int32 {
	if v > math.MaxInt32 {
		return 0
	}
	w := v
	return int32(w)
}

// --- kills ---

func reassignKills(v, u int) int32 {
	if v > math.MaxInt32 {
		return 0
	}
	v = u
	return int32(v) // want "unguarded narrowing conversion to int32"
}

func incrementKills(v int) int32 {
	if v > math.MaxInt32 {
		return 0
	}
	v++
	return int32(v) // want "unguarded narrowing conversion to int32"
}

func compoundAssignKills(v, u int) int32 {
	if v > math.MaxInt32 {
		return 0
	}
	v += u
	return int32(v) // want "unguarded narrowing conversion to int32"
}

// A loop back-edge joins the incremented value into the guard, killing it
// (the fixpoint must not let the pre-loop guard leak through).
func loopKills(v int) int32 {
	if v > math.MaxInt32 {
		return 0
	}
	var acc int32
	for i := 0; i < 3; i++ {
		acc += int32(v) // want "unguarded narrowing conversion to int32"
		v++
	}
	return acc
}

// --- funnels and directives ---

// i32 is this package's audited funnel: the body is exempt because the
// declaration carries the entry directive.
//
//lint:narrowconv-entry testdata funnel: callers prove the bound
func i32(v int) int32 { return int32(v) }

func throughFunnel(v int) int32 {
	return i32(v)
}

func annotatedSite(v int) int32 {
	//lint:narrowconv-ok the caller masked v to 20 bits
	return int32(v)
}

func bareOKDirective(v int) int32 {
	//lint:narrowconv-ok // want "needs a justification"
	return int32(v)
}

//lint:narrowconv-entry // want "needs a justification"
func bareEntryDirective(v int) int32 { return int32(v) }
