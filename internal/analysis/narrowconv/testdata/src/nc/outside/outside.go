// Package outside is not a kernel package: narrowing is unchecked here.
package outside

func Narrow(v int) int32 { return int32(v) }
