package narrowconv_test

import (
	"testing"

	"holistic/internal/analysis/analysistest"
	"holistic/internal/analysis/narrowconv"
)

func TestNarrowConv(t *testing.T) {
	analysistest.Run(t, "testdata", narrowconv.Analyzer, "nc/internal/mst", "nc/outside")
}
