// Package narrowconv guards the 32-bit narrowing conversions in the batch
// kernels' SoA paths (internal/mst) and the operator plumbing above them
// (internal/core). The merge sort tree stores 32-bit elements whenever the
// payload domain fits (§5.1), so index and threshold values cross from int
// to int32/uint32 at many kernel boundaries; on a >2³¹-row dataset an
// unguarded conversion would wrap silently and return wrong counts rather
// than fail.
//
// The analyzer runs a must-dataflow over the function's CFG: a conversion
// int32(v)/uint32(v) from a wider integer type is safe only when, on
// every path reaching it, v is
//
//   - guarded: a dominating comparison against a constant bounds it
//     (the false edge of `v > math.MaxInt32`, the true edge of
//     `v <= math.MaxInt32`, a cond-less switch case edge — package cfg
//     lowers those to refinable if-chains); or
//   - narrow: assigned from a value that provably fits (a constant in
//     range, a widening of an at-most-32-bit value, a copy of a
//     guarded/narrow variable).
//
// Values are non-negative by domain (§5.1 preprocesses payloads into
// [0, n]), so only upper bounds are checked; a lower-bound analysis would
// add noise without catching a real wrap.
//
// Everything else must either go through an audited funnel helper whose
// declaration carries `//lint:narrowconv-entry <reason>` (the helper's
// body is exempt; the reason documents why the quantity fits — e.g.
// mst.Build rejects inputs of 2³¹ elements or more, so tree positions
// fit), or annotate the site with `//lint:narrowconv-ok <reason>`.
package narrowconv

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"maps"
	"math"
	"strings"

	"holistic/internal/analysis"
	"holistic/internal/analysis/cfg"
	"holistic/internal/analysis/dataflow"
)

// Analyzer is the narrowconv analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "narrowconv",
	Doc:  "reports unguarded int->int32/uint32 narrowing conversions in the merge-sort-tree kernels and the core operator",
	Run:  run,
}

// pkgSuffixes scopes the analyzer to the kernel, operator and on-disk
// format packages.
var pkgSuffixes = []string{"internal/mst", "internal/core", "internal/segment"}

// state is the per-variable must-fact: properties holding on every path.
type state uint8

const (
	guarded state = 1 << iota // a dominating comparison bounds it by <= math.MaxInt32
	narrow                    // assigned from a value that provably fits 32 bits
)

type fact map[types.Object]state

func run(pass *analysis.Pass) error {
	if !hasAnySuffix(pass.Pkg.Path(), pkgSuffixes) {
		pass.ReportBareDirectives(analysis.DirectiveNarrowConvOK)
		pass.ReportBareDirectives(analysis.DirectiveNarrowConvEntry)
		return nil
	}
	for _, file := range pass.Files {
		for _, g := range cfg.FileGraphs(file, pass.TypesInfo) {
			if fd, ok := g.Func.(*ast.FuncDecl); ok {
				if _, exempt := pass.Suppression(fd.Pos(), analysis.DirectiveNarrowConvEntry); exempt {
					continue // audited funnel: the body is the guard
				}
			}
			analyzeGraph(pass, g)
		}
	}
	pass.ReportBareDirectives(analysis.DirectiveNarrowConvOK)
	pass.ReportBareDirectives(analysis.DirectiveNarrowConvEntry)
	return nil
}

type problem struct{ pass *analysis.Pass }

func (p problem) Entry() fact          { return nil }
func (p problem) Equal(a, b fact) bool { return maps.Equal(a, b) }

// Join intersects: a property must hold on every incoming path.
func (p problem) Join(a, b fact) fact {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := fact{}
	for o, sa := range a {
		if s := sa & b[o]; s != 0 {
			out[o] = s
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func set(f fact, o types.Object, s state) fact {
	if f[o] == s {
		return f
	}
	nf := make(fact, len(f)+1)
	maps.Copy(nf, f)
	nf[o] = s
	return nf
}

func del(f fact, o types.Object) fact {
	if _, ok := f[o]; !ok {
		return f
	}
	nf := maps.Clone(f)
	delete(nf, o)
	return nf
}

// Refine adds guard facts along comparison edges.
func (p problem) Refine(f fact, e *cfg.Edge) fact {
	if e.Cond == nil || (e.Kind != cfg.True && e.Kind != cfg.False) {
		return f
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok {
		return f
	}
	// Normalize to ident OP constant.
	id, _ := ast.Unparen(bin.X).(*ast.Ident)
	cval, haveC := constVal(p.pass, bin.Y)
	op := bin.Op
	if id == nil || !haveC {
		if id, _ = ast.Unparen(bin.Y).(*ast.Ident); id == nil {
			return f
		}
		if cval, haveC = constVal(p.pass, bin.X); !haveC {
			return f
		}
		op = flip(op)
	}
	obj := p.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return f
	}
	// Which comparison holds along this edge?
	if e.Kind == cfg.False {
		op = negate(op)
	}
	max := constant.MakeInt64(math.MaxInt32)
	bounded := false
	switch op {
	case token.LSS: // v < c: bounded when c <= MaxInt32+1
		bounded = constant.Compare(cval, token.LEQ, constant.MakeInt64(math.MaxInt32+1))
	case token.LEQ, token.EQL: // v <= c, v == c: bounded when c <= MaxInt32
		bounded = constant.Compare(cval, token.LEQ, max)
	}
	if !bounded {
		return f
	}
	return set(f, obj, f[obj]|guarded)
}

// flip mirrors a comparison when its operands swap sides.
func flip(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// negate inverts a comparison for the false edge.
func negate(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

func (p problem) Transfer(f fact, n ast.Node) fact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			// Compound update: the bound no longer holds.
			for _, lhs := range n.Lhs {
				if obj := identObj(p.pass, lhs); obj != nil {
					f = del(f, obj)
				}
			}
			return f
		}
		if len(n.Lhs) != len(n.Rhs) {
			for _, lhs := range n.Lhs {
				if obj := identObj(p.pass, lhs); obj != nil {
					f = del(f, obj)
				}
			}
			return f
		}
		for i := range n.Lhs {
			obj := identObj(p.pass, n.Lhs[i])
			if obj == nil {
				continue
			}
			if s := p.classify(f, n.Rhs[i]); s != 0 {
				f = set(f, obj, s)
			} else {
				f = del(f, obj)
			}
		}
		return f
	case *ast.IncDecStmt:
		if obj := identObj(p.pass, n.X); obj != nil {
			f = del(f, obj)
		}
		return f
	}
	return f
}

// classify reports the must-state an assignment from expr establishes.
func (p problem) classify(f fact, expr ast.Expr) state {
	expr = ast.Unparen(expr)
	if cval, ok := constVal(p.pass, expr); ok {
		if inInt32Range(cval) {
			return narrow
		}
		return 0
	}
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := p.pass.TypesInfo.ObjectOf(e); obj != nil {
			return f[obj]
		}
	case *ast.CallExpr:
		// A widening conversion like int(x16) of an at-most-32-bit
		// signed-compatible value stays narrow.
		if len(e.Args) != 1 {
			return 0
		}
		tv, ok := p.pass.TypesInfo.Types[e.Fun]
		if !ok || !tv.IsType() {
			return 0
		}
		if src, ok := p.pass.TypesInfo.TypeOf(e.Args[0]).Underlying().(*types.Basic); ok {
			switch src.Kind() {
			case types.Int8, types.Int16, types.Int32, types.Uint8, types.Uint16:
				return narrow
			}
		}
	}
	return 0
}

func analyzeGraph(pass *analysis.Pass, g *cfg.Graph) {
	p := problem{pass}
	in := dataflow.Solve[fact](g, p)
	dataflow.Walk[fact](g, p, in, func(_ *cfg.Block, f fact, n ast.Node) {
		cfg.InspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkConversion(pass, f, call)
			return true
		})
	})
}

// checkConversion reports an int32/uint32 conversion from a wider integer
// whose operand is not provably bounded.
func checkConversion(pass *analysis.Pass, f fact, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || (dst.Kind() != types.Int32 && dst.Kind() != types.Uint32) {
		return
	}
	operand := ast.Unparen(call.Args[0])
	src, ok := pass.TypesInfo.TypeOf(operand).Underlying().(*types.Basic)
	if !ok {
		return
	}
	switch src.Kind() {
	case types.Int, types.Int64, types.Uint, types.Uint64:
	default:
		return // already at most 32 bits (or not an integer)
	}
	if cval, ok := constVal(pass, operand); ok && inInt32Range(cval) {
		return
	}
	if id, ok := operand.(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil && f[obj] != 0 {
			return // guarded or narrow on every path
		}
	}
	if _, ok := pass.Suppression(call.Pos(), analysis.DirectiveNarrowConvOK); ok {
		return
	}
	pass.Reportf(call.Pos(), "unguarded narrowing conversion to %s: a >2³¹ value would wrap silently; bound the value first, route it through an audited //lint:narrowconv-entry helper, or annotate //lint:narrowconv-ok <reason>", dst.Name())
}

func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

func constVal(pass *analysis.Pass, e ast.Expr) (constant.Value, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return nil, false
	}
	return tv.Value, true
}

func inInt32Range(v constant.Value) bool {
	return constant.Compare(v, token.GEQ, constant.MakeInt64(math.MinInt32)) &&
		constant.Compare(v, token.LEQ, constant.MakeInt64(math.MaxInt32))
}

func hasAnySuffix(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}
