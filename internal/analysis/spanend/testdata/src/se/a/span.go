// Package a exercises the obs span lifecycle contract against the real
// internal/obs package (matched by import-path suffix).
package a

import "holistic/internal/obs"

func work(...any) {}

// --- leaks ---

func leakOnEarlyReturn(cond bool) {
	sp := obs.NewSpan("query") // want "not ended on every return path"
	if cond {
		return
	}
	sp.End()
}

func endedOnAllPaths(cond bool) {
	sp := obs.NewSpan("query")
	if cond {
		sp.End()
		return
	}
	sp.End()
}

func deferredEnd() {
	sp := obs.NewSpan("query")
	defer sp.End()
	work(sp.Name())
}

func deferredLiteralEnd() {
	sp := obs.NewSpan("query")
	defer func() { sp.End() }()
	work(sp.Name())
}

func leakOnPanicPath(bad bool) {
	sp := obs.NewSpan("query") // want "not ended on a panic path"
	if bad {
		panic("invariant broken")
	}
	sp.End()
}

// The guarded-defer idiom: on the nil edge the span is the disabled span
// and needs no End, so both paths verify.
func guardedDefer(parent *obs.Span) {
	sp := parent.Child("eval")
	if sp != nil {
		defer sp.End()
	}
	work(sp)
}

func nilCheckEarlyOut(parent *obs.Span) {
	sp := parent.Child("eval")
	if sp == nil {
		return
	}
	work(sp.Name())
	sp.End()
}

// --- nesting ---

func childOpenWhenParentEnds() {
	parent := obs.NewSpan("run")
	child := parent.Phase("sort")
	work(child.Name())
	parent.End() // want "still open when its parent"
	child.End()
}

func nestedProperly() {
	parent := obs.NewSpan("run")
	child := parent.Phase("sort")
	work(child.Name())
	child.End()
	parent.End()
}

// A deferred parent End runs after the children's explicit Ends, so the
// defer is not a nesting violation.
func deferredParentEnd() {
	parent := obs.NewSpan("run")
	defer parent.End()
	child := parent.Phase("sort")
	work(child.Name())
	child.End()
}

// --- ownership hand-offs (silent discharges) ---

func escapeReturn() *obs.Span {
	sp := obs.NewSpan("query")
	return sp
}

type carrier struct{ trace *obs.Span }

func escapeFieldStore(c *carrier) {
	sp := obs.NewSpan("query")
	c.trace = sp
}

func escapeCallArg() {
	sp := obs.NewSpan("query")
	work(sp)
}

func escapeGoroutine() {
	sp := obs.NewSpan("worker")
	go func() {
		defer sp.End()
		work()
	}()
}

// Ownership moves with a plain copy; the End through the new name counts.
func ownershipMove() {
	sp := obs.NewSpan("query")
	alias := sp
	alias.End()
}

// --- function-literal splicing ---

func runOnce(fn func()) { fn() }

func endInsideCallLiteral() {
	sp := obs.NewSpan("query")
	runOnce(func() {
		sp.End()
	})
}

// --- directives ---

func annotatedLongLived() {
	//lint:spanend-ok the monitor span outlives the function by design; Shutdown ends it
	sp := obs.NewSpan("monitor")
	work(sp.Name())
}

func bareDirective() {
	//lint:spanend-ok // want "needs a justification"
	sp := obs.NewSpan("monitor")
	work(sp.Name())
}
