package spanend_test

import (
	"testing"

	"holistic/internal/analysis/analysistest"
	"holistic/internal/analysis/spanend"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, "testdata", spanend.Analyzer, "se/a")
}
