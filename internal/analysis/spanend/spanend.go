// Package spanend enforces the trace-span lifecycle of internal/obs with
// a path-sensitive dataflow analysis: every span started with NewSpan,
// Child or Phase must be ended on every return path and on every explicit
// panic path, and a phase span must not still be open when its parent is
// explicitly ended (phase totals would attribute the child's tail to the
// wrong phase).
//
// Per tracked span variable the analysis runs a may-lattice {live, ended,
// deferred} over the function's CFG, with call-argument function literals
// spliced inline (package cfg). The obs contract shapes the transfer
// function:
//
//   - sp.End() ends the span; `defer sp.End()` (directly or inside a
//     deferred literal) covers every exit, panics included. End is
//     idempotent by contract, so double End is not a finding.
//   - a nil *Span is the disabled span, so on the nil edge of a
//     `sp == nil` / `sp != nil` check the obligation is discharged —
//     the `if sp := X.Child("e"); sp != nil { defer sp.End() }` idiom
//     verifies as written.
//   - passing a span to a call, storing it into a field or composite
//     literal, returning it, or handing it to a goroutine transfers
//     ownership: whoever holds the span now owns the End. Spans are
//     freely shared (unlike pooled buffers), so escapes are silent
//     discharges, not findings.
//
// Deliberate exceptions annotate `//lint:spanend-ok <reason>` at the span
// start; the reason is mandatory.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"strings"

	"holistic/internal/analysis"
	"holistic/internal/analysis/cfg"
	"holistic/internal/analysis/dataflow"
)

// Analyzer is the spanend analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "reports obs trace spans not ended on every return/panic path and phase spans still open when their parent ends",
	Run:  run,
}

// obsPkgSuffix identifies the obs package by import-path suffix so the
// analyzer works on testdata modules too.
const obsPkgSuffix = "internal/obs"

// spanStarters are the callables that hand out a span the holder must End.
var spanStarters = map[string]bool{"NewSpan": true, "Child": true, "Phase": true}

type state uint8

const (
	live     state = 1 << iota // started and not yet ended
	ended                      // ended (or known nil/disabled)
	deferred                   // a deferred End covers it at exit
)

type fact map[types.Object]state

// origin records where a tracked span was started and which tracked span
// it was started under (nil parent for roots and untracked receivers).
type origin struct {
	pos    token.Pos
	parent types.Object
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, g := range cfg.FileGraphs(file, pass.TypesInfo) {
			analyzeGraph(pass, g)
		}
	}
	pass.ReportBareDirectives(analysis.DirectiveSpanEndOK)
	return nil
}

type problem struct{ pass *analysis.Pass }

func (p problem) Entry() fact          { return nil }
func (p problem) Equal(a, b fact) bool { return maps.Equal(a, b) }

func (p problem) Join(a, b fact) fact {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := maps.Clone(a)
	for o, s := range b {
		out[o] |= s
	}
	return out
}

func set(f fact, o types.Object, s state) fact {
	if f[o] == s {
		return f
	}
	nf := make(fact, len(f)+1)
	maps.Copy(nf, f)
	nf[o] = s
	return nf
}

func del(f fact, o types.Object) fact {
	if _, ok := f[o]; !ok {
		return f
	}
	nf := maps.Clone(f)
	delete(nf, o)
	return nf
}

// Refine discharges a span's obligation on the edge where it is known
// nil: the nil *Span is the disabled span and needs no End.
func (p problem) Refine(f fact, e *cfg.Edge) fact {
	if e.Cond == nil || (e.Kind != cfg.True && e.Kind != cfg.False) {
		return f
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return f
	}
	var id *ast.Ident
	switch {
	case isNil(bin.Y):
		id, _ = ast.Unparen(bin.X).(*ast.Ident)
	case isNil(bin.X):
		id, _ = ast.Unparen(bin.Y).(*ast.Ident)
	default:
		return f
	}
	if id == nil {
		return f
	}
	obj := p.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return f
	}
	s, tracked := f[obj]
	if !tracked {
		return f
	}
	nilEdge := (bin.Op == token.EQL) == (e.Kind == cfg.True)
	if nilEdge {
		return set(f, obj, s&^live|ended)
	}
	return f
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func (p problem) Transfer(f fact, n ast.Node) fact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return p.transferAssign(f, n)
	case *ast.DeferStmt:
		for _, obj := range endCallsDeep(p.pass, n) {
			if s, ok := f[obj]; ok {
				f = set(f, obj, s&^live|deferred)
			}
		}
		return f
	case *ast.GoStmt:
		// The goroutine owns the span now (worker spans are ended by the
		// worker body, analyzed as its own root).
		for obj := range referencedDeep(p.pass, f, n) {
			f = del(f, obj)
		}
		return f
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if obj := trackedIdent(p.pass, f, res); obj != nil {
				f = del(f, obj)
			}
		}
		return f
	default:
		for _, obj := range endCallsShallow(p.pass, n) {
			if s, ok := f[obj]; ok {
				f = set(f, obj, s&^live|ended)
			}
		}
		// Passing a span to any call or embedding it in a composite
		// literal hands the End obligation to the receiver.
		for obj := range escapesShallow(p.pass, f, n) {
			f = del(f, obj)
		}
		return f
	}
}

func (p problem) transferAssign(f fact, n *ast.AssignStmt) fact {
	if len(n.Lhs) != len(n.Rhs) {
		return f
	}
	for i := range n.Lhs {
		rhs := ast.Unparen(n.Rhs[i])
		switch lhs := ast.Unparen(n.Lhs[i]).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := p.pass.TypesInfo.ObjectOf(lhs)
			if obj == nil {
				continue
			}
			switch {
			case isSpanStart(p.pass, rhs):
				f = set(f, obj, live)
			case trackedIdent(p.pass, f, rhs) != nil:
				src := trackedIdent(p.pass, f, rhs)
				s := f[src]
				f = del(f, src)
				f = set(f, obj, s)
			default:
				if _, ok := f[obj]; ok {
					f = del(f, obj)
				}
			}
		default:
			// Field/element store: ownership escapes silently
			// (opt.trace = sp is the sanctioned hand-off idiom).
			if obj := trackedIdent(p.pass, f, rhs); obj != nil {
				f = del(f, obj)
			}
		}
	}
	return f
}

func analyzeGraph(pass *analysis.Pass, g *cfg.Graph) {
	origins := collectOrigins(pass, g)
	if len(origins) == 0 {
		return
	}
	p := problem{pass}
	in := dataflow.Solve[fact](g, p)

	report := func(pos token.Pos, format string, args ...any) {
		if _, ok := pass.Suppression(pos, analysis.DirectiveSpanEndOK); ok {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	// Nesting: an explicit End on a parent while a tracked child started
	// under it is still live attributes the child's tail to the wrong
	// phase.
	dataflow.Walk[fact](g, p, in, func(_ *cfg.Block, f fact, n ast.Node) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return // deferred parent Ends run after the children's explicit Ends
		}
		for _, parent := range endCallsShallow(pass, n) {
			for child, o := range origins {
				if o.parent != parent {
					continue
				}
				if s, ok := f[child]; ok && s&live != 0 && s&deferred == 0 {
					report(callPos(n), "span %s is still open when its parent %s ends; end the child first so phase totals nest", child.Name(), parent.Name())
				}
			}
		}
	})

	reported := map[types.Object]bool{}
	leak := func(exit *cfg.Block, format string) {
		exitFact, ok := in[exit]
		if !ok {
			return
		}
		for obj, s := range exitFact {
			if s&live != 0 && !reported[obj] {
				if o, ok := origins[obj]; ok {
					reported[obj] = true
					report(o.pos, format, obj.Name())
				}
			}
		}
	}
	leak(g.Exit, "span %s is not ended on every return path (call End on all exits, defer it, or annotate //lint:spanend-ok <reason>)")
	leak(g.PanicExit, "span %s is not ended on a panic path; defer its End so the trace survives aborts (//lint:spanend-ok <reason>)")
}

// collectOrigins maps every variable assigned from a span start to where
// it started and the tracked receiver it was started under.
func collectOrigins(pass *analysis.Pass, g *cfg.Graph) map[types.Object]origin {
	origins := map[types.Object]origin{}
	assigned := map[types.Object]bool{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				continue
			}
			for i := range as.Lhs {
				rhs := ast.Unparen(as.Rhs[i])
				if !isSpanStart(pass, rhs) {
					continue
				}
				id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil {
					continue
				}
				assigned[obj] = true
				if _, seen := origins[obj]; !seen {
					origins[obj] = origin{pos: rhs.Pos(), parent: startReceiver(pass, rhs)}
				}
			}
		}
	}
	// Parents must themselves be tracked variables of this graph.
	for obj, o := range origins {
		if o.parent != nil && !assigned[o.parent] {
			o.parent = nil
			origins[obj] = o
		}
	}
	return origins
}

// startReceiver returns the object of the receiver variable of a
// Child/Phase call (`sp` in sp.Child("x")), or nil.
func startReceiver(pass *analysis.Pass, expr ast.Expr) types.Object {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

func trackedIdent(pass *analysis.Pass, f fact, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if _, ok := f[obj]; !ok {
		return nil
	}
	return obj
}

// isSpanStart reports whether expr calls obs.NewSpan or the Child/Phase
// methods of *obs.Span.
func isSpanStart(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), obsPkgSuffix) && spanStarters[fn.Name()]
}

// endCallsShallow collects receivers of End() calls under n, skipping
// function literals.
func endCallsShallow(pass *analysis.Pass, n ast.Node) []types.Object {
	var out []types.Object
	cfg.InspectShallow(n, func(m ast.Node) bool {
		out = appendEndReceiver(pass, out, m)
		return true
	})
	return out
}

// endCallsDeep collects receivers of End() calls under n, descending into
// deferred literals too.
func endCallsDeep(pass *analysis.Pass, n ast.Node) []types.Object {
	var out []types.Object
	ast.Inspect(n, func(m ast.Node) bool {
		out = appendEndReceiver(pass, out, m)
		return true
	})
	return out
}

func appendEndReceiver(pass *analysis.Pass, out []types.Object, m ast.Node) []types.Object {
	call, ok := m.(*ast.CallExpr)
	if !ok {
		return out
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return out
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), obsPkgSuffix) {
		return out
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return out
	}
	if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
		out = append(out, obj)
	}
	return out
}

// referencedDeep finds tracked spans referenced anywhere under n,
// including inside goroutine literals.
func referencedDeep(pass *analysis.Pass, f fact, n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				if _, tracked := f[obj]; tracked {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// escapesShallow finds tracked spans passed as call arguments or placed
// into composite literals under n: ownership transfers, obligation
// discharged.
func escapesShallow(pass *analysis.Pass, f fact, n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	cfg.InspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			for _, arg := range m.Args {
				if obj := trackedIdent(pass, f, arg); obj != nil {
					out[obj] = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range m.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if obj := trackedIdent(pass, f, elt); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func callPos(n ast.Node) token.Pos { return n.Pos() }
