// Package analysis is a self-contained static-analysis framework modelled
// on golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast, go/types and go/importer packages (the x/tools module is not a
// dependency of this repository).
//
// It exists to machine-check the contracts that keep the parallel
// evaluation engines sound. The syntactic analyzers:
//
//   - parallelbody: closures handed to internal/parallel must only write
//     state that is disjoint per task (§5.2's morsel-driven tasks share
//     nothing but the output arrays they index).
//   - nopanic: library packages return errors; panics are reserved for
//     annotated invariant assertions.
//   - framebounds: frame boundary arithmetic stays inside internal/frame,
//     so EXCLUDE/ROWS/RANGE/GROUPS edge cases live in exactly one place.
//   - sortstability: tuple and run data is sorted with the sanctioned
//     stable or position-disambiguated comparators; MST construction
//     breaks without them.
//   - lintdirective: the //lint: annotation grammar itself is validated.
//
// The path-sensitive analyzers, built on the CFG builder (subpackage cfg)
// and the generic forward worklist solver (subpackage dataflow):
//
//   - poollifecycle: every pooled scratch buffer is put exactly once on
//     every path, never used after put, never silently escaping.
//   - spanend: every obs trace span is ended on every return/panic path
//     and phase spans nest.
//   - ctxflow: request-path parallel loops stay cancellable; handler
//     paths never manufacture detached contexts.
//   - narrowconv: int->int32/uint32 narrowing in the MST kernels is
//     dominated by a bounds guard or routed through audited helpers.
//
// The suite is wired into cmd/holisticlint, which runs either standalone
// (`holisticlint [-sarif out.sarif] ./...`) or as a `go vet -vettool=`
// backend.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Directives holds every //lint: directive found in the package's
	// files, in source order.
	Directives []Directive

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Position resolves pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// Suppression looks up a directive of the given name that covers pos: the
// directive must sit in the same file, on the same line as pos or on the
// line directly above it. It returns the directive and whether one was
// found. Callers must still honour RequireReason via the directive's
// Reason field — an empty reason suppresses the original finding but is
// reported as a finding of its own by the owning analyzer (see
// ReportBareDirectives).
func (p *Pass) Suppression(pos token.Pos, name string) (Directive, bool) {
	target := p.Position(pos)
	for _, d := range p.Directives {
		if d.Name != name {
			continue
		}
		dp := p.Position(d.Pos)
		if dp.Filename != target.Filename {
			continue
		}
		if dp.Line == target.Line || dp.Line == target.Line-1 {
			return d, true
		}
	}
	return Directive{}, false
}

// ReportBareDirectives reports every directive with the given name whose
// justification string is empty. Each analyzer calls this for the escape
// hatches it owns, so `//lint:parallel-safe` without a reason is itself a
// finding — the hatch demands a written proof sketch. A bare hatch still
// suppresses the original finding, so exactly one actionable diagnostic is
// produced either way.
func (p *Pass) ReportBareDirectives(name string) {
	for _, d := range p.Directives {
		if d.Name == name && d.Reason == "" {
			p.Reportf(d.Pos, "//lint:%s needs a justification string", name)
		}
	}
}

// RunPackage applies every analyzer to the package and returns the
// collected diagnostics sorted by position. Findings located in _test.go
// files are dropped: the suite enforces contracts on shipped code, and go
// vet hands drivers the test variant of each package too.
func RunPackage(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	directives := ParseDirectives(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			Directives: directives,
			report: func(d Diagnostic) {
				if strings.HasSuffix(fset.Position(d.Pos).Filename, "_test.go") {
					return
				}
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Pos:      token.NoPos,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
				Analyzer: a.Name,
			})
		}
	}
	sortDiagnostics(fset, diags)
	return diags
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	// Insertion sort keeps the dependency surface minimal; diagnostic
	// counts are tiny.
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && diagLess(fset, diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

func diagLess(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Analyzer < b.Analyzer
}
