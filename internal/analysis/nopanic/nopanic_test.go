package nopanic_test

import (
	"testing"

	"holistic/internal/analysis/analysistest"
	"holistic/internal/analysis/nopanic"
)

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, "testdata", nopanic.Analyzer, "a", "cmd/tool", "mainpkg")
}
