// Package nopanic enforces the error-handling convention of the library
// packages: they return errors, they don't panic. A panic that crosses the
// package boundary takes down the whole process — unacceptable for a
// long-running server evaluating untrusted queries.
//
// The analyzer reports every call to the builtin panic in importable
// (non-main, non-cmd) packages. Genuine invariant assertions — places
// where the caller's contract makes the condition impossible and
// continuing would corrupt results — are annotated with
// `//lint:invariant <proof sketch>` on the panic line or the line above;
// the justification string is mandatory.
package nopanic

import (
	"go/ast"
	"go/types"
	"strings"

	"holistic/internal/analysis"
)

// Analyzer is the nopanic analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "reports panic calls in library packages; return an error or annotate with //lint:invariant",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if exempt(pass) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !isBuiltin {
				return true // a local function that shadows the builtin
			}
			if _, ok := pass.Suppression(call.Pos(), analysis.DirectiveInvariant); ok {
				return true
			}
			pass.Reportf(call.Pos(), "panic in library package %s; return an error, or mark an impossible condition with //lint:invariant <proof>", pass.Pkg.Path())
			return true
		})
	}
	pass.ReportBareDirectives(analysis.DirectiveInvariant)
	return nil
}

// exempt reports whether the package is outside nopanic's scope: command
// binaries (main packages, anything under a cmd/ tree) may panic freely.
func exempt(pass *analysis.Pass) bool {
	if pass.Pkg.Name() == "main" {
		return true
	}
	path := pass.Pkg.Path()
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}
