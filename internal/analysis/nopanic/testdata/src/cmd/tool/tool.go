// Package tool lives under a cmd/ tree, where panics are allowed: a
// binary crashing loudly on startup misconfiguration is the convention.
package tool

func Run(args []string) {
	if len(args) == 0 {
		panic("usage: tool <file>")
	}
}
