// Command mainpkg shows that main packages are exempt from nopanic.
package main

func main() {
	panic("binaries may panic")
}
