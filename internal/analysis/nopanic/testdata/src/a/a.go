// Package a exercises nopanic: library panics are findings, returned
// errors and annotated invariants are not.
package a

import "errors"

func bad(x int) {
	if x < 0 {
		panic("negative") // want "panic in library package"
	}
}

func badWrapped(err error) {
	panic(err) // want "panic in library package"
}

func good(x int) error {
	if x < 0 {
		return errors.New("negative")
	}
	return nil
}

func annotatedInvariant(idx, n int) {
	if idx >= n {
		//lint:invariant idx was bounds-checked by the exported entry point; overrunning would corrupt neighbouring columns
		panic("index out of range")
	}
}

func bareHatchIsAFinding() {
	panic("boom") //lint:invariant // want "needs a justification string"
}

func shadowedPanicIsNotTheBuiltin() {
	panic := func(string) {}
	panic("fine")
}
