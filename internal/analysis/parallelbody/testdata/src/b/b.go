// Package b exercises the parallelbody escape hatches: the
// //lint:parallel-safe suppression (with and without the mandatory
// justification) and the //lint:parallel-entry relay marker.
package b

import (
	"sync"

	"holistic/internal/parallel"
)

func suppressedOnLine(n int) int {
	var mu sync.Mutex
	total := 0
	parallel.For(n, 0, func(lo, hi int) {
		mu.Lock()
		total += hi - lo //lint:parallel-safe the update is guarded by mu, the analyzer cannot see lock scopes
		mu.Unlock()
	})
	return total
}

func suppressedOnCall(n int) int {
	shared := 0
	//lint:parallel-safe SetMaxWorkers(1) pins this loop to one worker in the enclosing benchmark harness
	parallel.For(n, 0, func(lo, hi int) {
		shared = hi
	})
	return shared
}

func bareHatchIsAFinding(n int) int {
	shared := 0
	parallel.ForEach(n, func(task int) {
		shared = task //lint:parallel-safe // want "needs a justification string"
	})
	return shared
}

// apply relays its closure to parallel.For, so closures handed to it are
// analyzed under the same disjointness contract.
//
//lint:parallel-entry
func apply(n int, body func(lo, hi int)) {
	parallel.For(n, 0, body)
}

func entryPointIsChecked(n int) int {
	var racy int
	apply(n, func(lo, hi int) {
		racy = lo // want "assignment to captured variable"
	})
	return racy
}

func entryPointDisjointIsFine(n int) []int {
	out := make([]int, n)
	apply(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i
		}
	})
	return out
}
