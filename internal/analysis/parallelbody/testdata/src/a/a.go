// Package a exercises the parallelbody true positives: every flavour of
// non-disjoint write to captured state inside task closures.
package a

import (
	"context"

	"holistic/internal/parallel"
)

func positives(n int) int {
	total := 0
	var out []int
	seen := map[int]bool{}
	var last int
	parallel.For(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += i           // want "non-atomic compound update of captured variable"
			out = append(out, i) // want "append to captured slice"
			seen[i] = true       // want "write to captured map"
			last = i             // want "assignment to captured variable"
		}
	})
	return total + last + len(out) + len(seen)
}

func counter(n int) int {
	count := 0
	parallel.ForEach(n, func(task int) {
		count++ // want "non-atomic increment of captured variable"
	})
	return count
}

type stats struct{ maxSeen int }

func structWrites() {
	var s stats
	p := &s.maxSeen
	parallel.Run(func() {
		s.maxSeen = 1 // want "write to field"
		*p = 2        // want "write through captured pointer"
	})
}

func contextVariants(ctx context.Context, n int) int {
	total := 0
	_ = parallel.ForContext(ctx, n, 0, func(lo, hi int) {
		total += hi // want "non-atomic compound update of captured variable"
	})
	var last int
	_ = parallel.ForEachContext(ctx, n, func(task int) {
		last = task // want "assignment to captured variable"
	})
	return total + last
}

func viaLocalVariable(n int) int {
	var racy int
	body := func(lo, hi int) {
		racy = hi // want "assignment to captured variable"
	}
	parallel.For(n, 0, body)
	return racy
}

func indexedWritesAreDisjoint(n int) []int {
	out := make([]int, n)
	sums := make([]int, n)
	parallel.For(n, 0, func(lo, hi int) {
		acc := 0 // task-local state is fine
		for i := lo; i < hi; i++ {
			out[i] = i * i // indexed write into a captured slice: disjoint by contract
			acc += i
			sums[i] = acc
		}
	})
	return out
}

func serialCallersAreNotFlagged() int {
	apply := func(body func(lo, hi int)) { body(0, 1) }
	x := 0
	apply(func(lo, hi int) { x = hi }) // plain call, not a parallel entry point
	return x
}
