package parallelbody_test

import (
	"testing"

	"holistic/internal/analysis/analysistest"
	"holistic/internal/analysis/parallelbody"
)

func TestParallelBody(t *testing.T) {
	analysistest.Run(t, "testdata", parallelbody.Analyzer, "a", "b")
}
