// Package parallelbody enforces the concurrency contract of
// internal/parallel: closures passed to parallel.For, parallel.ForEach and
// parallel.Run run concurrently on disjoint task ranges, so they must not
// write shared captured state ("body must be safe for concurrent
// invocation on disjoint ranges").
//
// The analyzer inspects every function literal handed to those entry
// points (directly, or through a local variable) and reports writes to
// variables captured from the enclosing scope that are not provably
// disjoint per task:
//
//   - plain assignment to a captured scalar (including `x = append(x, …)`),
//   - compound assignment and ++/-- on a captured variable (a non-atomic
//     read-modify-write),
//   - writes to a captured map (concurrent map writes fault at runtime),
//   - field writes on captured structs and writes through captured
//     pointers.
//
// Indexed writes into captured slices and arrays (`out[i] = v`) are
// allowed: tasks index disjoint ranges by construction, which is the whole
// point of the task decomposition (§5.2) — the analyzer enforces the
// sharing discipline, the race detector backs it up dynamically.
//
// Functions that relay their closure arguments to internal/parallel can be
// marked with a //lint:parallel-entry directive on their declaration;
// function literals passed to them are then analyzed the same way.
//
// Findings are suppressed with `//lint:parallel-safe <reason>` on the
// offending line, the line above it, or the line of (or above) the
// parallel call itself; the reason string is mandatory.
package parallelbody

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"holistic/internal/analysis"
)

// Analyzer is the parallelbody analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "parallelbody",
	Doc:  "reports non-disjoint writes to captured variables inside closures passed to internal/parallel",
	Run:  run,
}

// parallelPkgSuffix identifies the parallel package by import-path suffix
// so the analyzer works both on this module and on testdata modules.
const parallelPkgSuffix = "internal/parallel"

// bodyArgs maps the parallel entry points to the argument positions of
// their task closures; -1 means "all trailing arguments" (parallel.Run is
// variadic over thunks). The context-aware variants shift the closure one
// position right.
var bodyArgs = map[string]int{
	"For": 2, "ForEach": 1, "Run": -1,
	"ForContext": 3, "ForEachContext": 2,
}

func run(pass *analysis.Pass) error {
	entries := parallelEntryDecls(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, body := range taskClosures(pass, call, entries) {
				checkBody(pass, call, body)
			}
			return true
		})
	}
	pass.ReportBareDirectives(analysis.DirectiveParallelSafe)
	return nil
}

// parallelEntryDecls collects the functions of this package whose
// declarations carry a //lint:parallel-entry directive.
func parallelEntryDecls(pass *analysis.Pass) map[types.Object]bool {
	entries := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := pass.Suppression(fd.Pos(), analysis.DirectiveParallelEntry); !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				entries[obj] = true
			}
		}
	}
	return entries
}

// taskClosures returns the function literals that the call hands to a
// parallel entry point for concurrent invocation. Arguments that cannot be
// resolved to a literal in the enclosing file (named functions, method
// values, parameters) are skipped: their bodies are analyzed where they
// are defined, or not at all — the analyzer is deliberately first-order.
func taskClosures(pass *analysis.Pass, call *ast.CallExpr, entries map[types.Object]bool) []*ast.FuncLit {
	var argIdx int
	switch callee := calleeFunc(pass, call); {
	case callee == nil:
		return nil
	case callee.Pkg() != nil && strings.HasSuffix(callee.Pkg().Path(), parallelPkgSuffix):
		idx, ok := bodyArgs[callee.Name()]
		if !ok {
			return nil
		}
		argIdx = idx
	case entries[callee]:
		argIdx = -2 // every func-typed argument
	default:
		return nil
	}

	var lits []*ast.FuncLit
	for i, arg := range call.Args {
		switch {
		case argIdx >= 0 && i != argIdx:
			continue
		case argIdx == -2:
			if _, ok := pass.TypesInfo.TypeOf(arg).Underlying().(*types.Signature); !ok {
				continue
			}
		}
		if lit := resolveFuncLit(pass, arg); lit != nil {
			lits = append(lits, lit)
		}
	}
	return lits
}

// calleeFunc resolves the called function object, if it is a declared
// function or method.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// resolveFuncLit returns the function literal an argument denotes: either
// the literal itself, or the unique local `name := func(...){...}`
// definition the identifier refers to.
func resolveFuncLit(pass *analysis.Pass, arg ast.Expr) *ast.FuncLit {
	switch arg := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return arg
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[arg]
		if obj == nil {
			return nil
		}
		var lit *ast.FuncLit
		count := 0
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || pass.TypesInfo.ObjectOf(id) != obj {
						continue
					}
					if fl, ok := as.Rhs[i].(*ast.FuncLit); ok {
						lit = fl
						count++
					}
				}
				return true
			})
		}
		if count == 1 {
			return lit
		}
	}
	return nil
}

// checkBody reports unsynchronized writes to captured state inside one
// task closure.
func checkBody(pass *analysis.Pass, call *ast.CallExpr, lit *ast.FuncLit) {
	report := func(pos token.Pos, format string, args ...any) {
		if _, ok := pass.Suppression(pos, analysis.DirectiveParallelSafe); ok {
			return
		}
		// A directive on the parallel call itself covers the whole body.
		if _, ok := pass.Suppression(call.Pos(), analysis.DirectiveParallelSafe); ok {
			return
		}
		pass.Reportf(pos, format, args...)
	}
	captured := func(obj types.Object) bool {
		if v, ok := obj.(*types.Var); !ok || v.IsField() {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					rhs = n.Rhs[i]
				}
				checkWrite(pass, report, captured, lhs, n.Tok, rhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, report, captured, n.X, n.Tok, nil)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					checkWrite(pass, report, captured, n.Key, n.Tok, nil)
				}
				if n.Value != nil {
					checkWrite(pass, report, captured, n.Value, n.Tok, nil)
				}
			}
		}
		return true
	})
}

// checkWrite classifies one write destination inside a task body and
// reports it when it targets captured, non-disjoint state.
func checkWrite(pass *analysis.Pass, report func(token.Pos, string, ...any), captured func(types.Object) bool, lhs ast.Expr, tok token.Token, rhs ast.Expr) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" || tok == token.DEFINE {
			return
		}
		obj := pass.TypesInfo.ObjectOf(lhs)
		if obj == nil || !captured(obj) {
			return
		}
		switch {
		case tok == token.INC || tok == token.DEC:
			report(lhs.Pos(), "non-atomic %s of captured variable %q in parallel body; use sync/atomic or make it task-local", incDecWord(tok), lhs.Name)
		case tok != token.ASSIGN:
			report(lhs.Pos(), "non-atomic compound update of captured variable %q in parallel body; use sync/atomic or a mutex", lhs.Name)
		case isAppendTo(pass, rhs, obj):
			report(lhs.Pos(), "append to captured slice %q in parallel body; concurrent appends race on len — preallocate and index by task", lhs.Name)
		default:
			report(lhs.Pos(), "assignment to captured variable %q in parallel body; tasks race on it — guard it or make it task-local", lhs.Name)
		}
	case *ast.IndexExpr:
		t := pass.TypesInfo.TypeOf(lhs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return // indexed slice/array writes are disjoint by the task contract
		}
		if obj := rootObject(pass, lhs.X); obj != nil && captured(obj) {
			report(lhs.Pos(), "write to captured map %q in parallel body; concurrent map writes fault — use per-task maps and merge", obj.Name())
		}
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[lhs]; sel == nil || sel.Kind() != types.FieldVal {
			return
		}
		if obj := rootObject(pass, lhs.X); obj != nil && captured(obj) {
			report(lhs.Pos(), "write to field %q of captured %q in parallel body; tasks race on it — guard it or write via disjoint indices", lhs.Sel.Name, obj.Name())
		}
	case *ast.StarExpr:
		if obj := rootObject(pass, lhs.X); obj != nil && captured(obj) {
			report(lhs.Pos(), "write through captured pointer %q in parallel body; tasks race on the pointee", obj.Name())
		}
	}
}

// rootObject walks to the base identifier of a selector/index/deref chain
// and returns its object, or nil. Chains that pass through a slice or map
// index are cut: `xs[i].field = v` writes element i, which the task
// contract already makes disjoint.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			return nil
		default:
			return nil
		}
	}
}

func isAppendTo(pass *analysis.Pass, rhs ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(first) == obj
}

func incDecWord(tok token.Token) string {
	if tok == token.INC {
		return "increment"
	}
	return "decrement"
}
