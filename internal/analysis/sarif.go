package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF rendering (Static Analysis Results Interchange Format 2.1.0,
// the minimal subset GitHub code scanning and most SARIF viewers accept):
// one run, one tool driver listing the analyzers as rules, one result per
// finding with a physical location. CI uploads the file as a job artifact
// so findings surface as annotations without parsing the text output.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings as a SARIF 2.1.0 log. baseDir, when
// non-empty, relativizes file paths so the artifact is stable across
// checkouts.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding, baseDir string) error {
	driver := sarifDriver{Name: "holisticlint"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if baseDir != "" {
			if rel, err := filepath.Rel(baseDir, uri); err == nil {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
