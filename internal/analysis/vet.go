package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// This file implements the `go vet -vettool` driver protocol, the
// standard-library twin of golang.org/x/tools/go/analysis/unitchecker
// (which this module deliberately does not depend on). cmd/go invokes the
// tool three ways:
//
//	tool -V=full        print an identity line for the build cache key
//	tool -flags         print the tool's flags as JSON for validation
//	tool [flags] x.cfg  analyze one package described by the JSON config
//
// The config names the package's files and maps each import to the export
// data cmd/go already compiled, so type-checking uses the gc importer
// with a lookup function — no source re-typechecking and no network.
// Findings print to stderr as file:line:col lines and the process exits
// with status 2, which go vet relays as a build failure (our CI gate).

// VetConfig mirrors the JSON configuration cmd/go passes to -vettool
// drivers (see cmd/go/internal/work and x/tools unitchecker.Config).
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion writes the -V=full identity line cmd/go hashes into its
// build cache key: name, "version", and a build ID derived from the
// executable's contents, in the exact shape toolID expects.
func PrintVersion(out io.Writer, progname string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%02x", sum[:])
		}
	}
	fmt.Fprintf(out, "%s version devel comments-go-here buildID=%s\n", progname, id)
}

// PrintFlags writes the -flags JSON description of the tool's flags; the
// suite defines none beyond the protocol flags cmd/go already knows.
func PrintFlags(out io.Writer) {
	fmt.Fprintln(out, "[]")
}

// RunVet analyzes the single package described by cfgFile and returns the
// process exit code: 0 for success, 1 for driver errors, 2 when findings
// were reported (matching go vet's convention).
func RunVet(analyzers []*Analyzer, cfgFile string, stderr io.Writer) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// The suite exports no cross-package facts, but cmd/go requires the
	// facts file to exist for caching; write it before anything can fail.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("{}\n"), 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(stderr, err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 1
	}

	diags := RunPackage(analyzers, fset, files, pkg, info)
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s (%s)\n", relPosition(fset, d.Pos, cfg.Dir), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func readVetConfig(cfgFile string) (*VetConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}
	return cfg, nil
}

// relPosition shortens absolute file names to be relative to the package
// directory's module, matching go vet's diagnostic style.
func relPosition(fset *token.FileSet, pos token.Pos, dir string) string {
	p := fset.Position(pos)
	if dir != "" {
		if rel, err := filepath.Rel(dir, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			p.Filename = rel
		}
	}
	return p.String()
}
