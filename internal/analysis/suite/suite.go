// Package suite registers the holisticlint analyzers. cmd/holisticlint
// and the repo-wide regression test both consume this list, so adding an
// analyzer here wires it into the CLI, go vet, and CI at once.
package suite

import (
	"holistic/internal/analysis"
	"holistic/internal/analysis/ctxflow"
	"holistic/internal/analysis/framebounds"
	"holistic/internal/analysis/lintdirective"
	"holistic/internal/analysis/narrowconv"
	"holistic/internal/analysis/nopanic"
	"holistic/internal/analysis/parallelbody"
	"holistic/internal/analysis/poollifecycle"
	"holistic/internal/analysis/sortstability"
	"holistic/internal/analysis/spanend"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		framebounds.Analyzer,
		lintdirective.Analyzer,
		narrowconv.Analyzer,
		nopanic.Analyzer,
		parallelbody.Analyzer,
		poollifecycle.Analyzer,
		sortstability.Analyzer,
		spanend.Analyzer,
	}
}
