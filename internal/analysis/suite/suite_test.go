package suite_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"holistic/internal/analysis"
	"holistic/internal/analysis/suite"
)

// TestRepoClean is the lint gate: the full analyzer suite must report zero
// findings on the module. Run `go build -o /tmp/holisticlint
// ./cmd/holisticlint && /tmp/holisticlint ./...` to see findings locally.
func TestRepoClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	count, err := analysis.RunStandalone(suite.All(), cwd, []string{"./..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("holisticlint reports %d finding(s) on the repo:\n%s", count, out.String())
	}
}

// TestVetToolProtocol end-to-end checks the `go vet -vettool` driver mode:
// it builds cmd/holisticlint and runs it through the real go command
// against a package that carries a known (annotated-off in the repo, but
// here unannotated) violation. The protocol details — -V=full identity,
// -flags probing, the JSON package config, export-data type-checking and
// the facts output file — are all exercised by cmd/go itself.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to the go command")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go command not found: %v", err)
	}
	root, _, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "holisticlint")
	build := exec.Command(goTool, "build", "-o", bin, "./cmd/holisticlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building holisticlint: %v\n%s", err, out)
	}

	// The clean repo must pass through the vet protocol on a library
	// package that the suite scrutinizes heavily.
	vet := exec.Command(goTool, "vet", "-vettool="+bin, "./internal/rangetree/", "./internal/sortutil/")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean packages failed: %v\n%s", err, out)
	}

	// A module with a violation must fail with the finding on stderr.
	dirty := t.TempDir()
	writeFile(t, filepath.Join(dirty, "go.mod"), "module dirty\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dirty, "lib.go"), `package lib

func Explode() {
	panic("boom")
}
`)
	vet = exec.Command(goTool, "vet", "-vettool="+bin, "./...")
	vet.Dir = dirty
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on a package with a panic violation:\n%s", out)
	}
	if !strings.Contains(string(out), "panic in library package") {
		t.Fatalf("vet output does not contain the nopanic finding:\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
