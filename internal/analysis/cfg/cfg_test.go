package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"holistic/internal/analysis/cfg"
)

// load parses and type-checks src (a complete file body for package p) and
// returns the file and type info.
func load(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", "package p\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:  map[ast.Expr]types.TypeAndValue{},
		Defs:   map[*ast.Ident]types.Object{},
		Uses:   map[*ast.Ident]types.Object{},
		Scopes: map[ast.Node]*types.Scope{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return file, info
}

// graphFor builds the CFG of the named function.
func graphFor(t *testing.T, src, name string) *cfg.Graph {
	t.Helper()
	file, info := load(t, src)
	for _, g := range cfg.FileGraphs(file, info) {
		if fd, ok := g.Func.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return g
		}
	}
	t.Fatalf("no graph for %s", name)
	return nil
}

// reachable returns the set of blocks reachable from the entry.
func reachable(g *cfg.Graph) map[*cfg.Block]bool {
	seen := map[*cfg.Block]bool{g.Entry: true}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range b.Succs {
			if !seen[e.To] {
				seen[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return seen
}

// blockOf returns the reachable block whose printed nodes contain marker.
func blockOf(t *testing.T, g *cfg.Graph, marker string) *cfg.Block {
	t.Helper()
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if id, ok := n.(*ast.ExprStmt); ok {
				if call, ok := id.X.(*ast.CallExpr); ok {
					if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == marker {
						return b
					}
				}
			}
		}
	}
	t.Fatalf("no reachable block calls %s", marker)
	return nil
}

const panicSrc = `
func f(bad bool) int {
	if bad {
		panic("boom")
	}
	return 1
}
`

func TestPanicEdge(t *testing.T) {
	g := graphFor(t, panicSrc, "f")
	if len(g.PanicExit.Preds) != 1 {
		t.Fatalf("PanicExit has %d preds, want 1", len(g.PanicExit.Preds))
	}
	r := reachable(g)
	if !r[g.Exit] || !r[g.PanicExit] {
		t.Fatalf("exit reachable=%v panic-exit reachable=%v, want both", r[g.Exit], r[g.PanicExit])
	}
}

const deadCodeSrc = `
func mark() {}
func dead() {}

func f() int {
	mark()
	return 1
	dead()
	return 2
}
`

func TestReturnMakesCodeUnreachable(t *testing.T) {
	g := graphFor(t, deadCodeSrc, "f")
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatal("exit not reachable")
	}
	for b := range r {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "dead" {
						t.Fatal("statement after return is reachable")
					}
				}
			}
		}
	}
}

const condSrc = `
func f(v int) int {
	if v < 10 {
		return v
	}
	return 0
}
`

// Branch edges carry the condition so dataflow refinement can see it.
func TestBranchEdgesCarryCond(t *testing.T) {
	g := graphFor(t, condSrc, "f")
	var kinds []cfg.EdgeKind
	for b := range reachable(g) {
		for _, e := range b.Succs {
			if e.Cond == nil {
				continue
			}
			bin, ok := e.Cond.(*ast.BinaryExpr)
			if !ok || bin.Op != token.LSS {
				t.Fatalf("cond edge carries %T, want the v < 10 comparison", e.Cond)
			}
			kinds = append(kinds, e.Kind)
		}
	}
	if len(kinds) != 2 || kinds[0] == kinds[1] {
		t.Fatalf("cond edge kinds %v, want one True and one False", kinds)
	}
}

const labeledSrc = `
func mark() {}
func after() {}

func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
			mark()
		}
	}
	after()
}
`

func TestLabeledLoopTargets(t *testing.T) {
	g := graphFor(t, labeledSrc, "f")
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatal("exit not reachable through the labeled loops")
	}
	// after() runs on every completion path, so its block must be reachable,
	// and the inner body (mark) too.
	blockOf(t, g, "after")
	blockOf(t, g, "mark")
	// break outer must bypass the outer post statement: the after block has
	// at least two reachable predecessor edges (loop-exit and break).
	ab := blockOf(t, g, "after")
	preds := 0
	for _, e := range ab.Preds {
		if r[e.From] {
			preds++
		}
	}
	if preds < 2 {
		t.Fatalf("after() has %d reachable pred edges, want >= 2 (cond exit + break outer)", preds)
	}
}

const gotoSrc = `
func mark() {}

func f(n int) {
again:
	n--
	mark()
	if n > 0 {
		goto again
	}
}
`

func TestGotoBackEdge(t *testing.T) {
	g := graphFor(t, gotoSrc, "f")
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatal("exit not reachable")
	}
	// The goto creates a cycle: the marked block must be its own ancestor.
	mb := blockOf(t, g, "mark")
	seen := map[*cfg.Block]bool{}
	var walk func(b *cfg.Block) bool
	walk = func(b *cfg.Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, e := range b.Succs {
			if e.To == mb || walk(e.To) {
				return true
			}
		}
		return false
	}
	if !walk(mb) {
		t.Fatal("goto back edge missing: mark block is not on a cycle")
	}
}

const spliceSrc = `
func run(fn func()) { fn() }
func mark() {}

func f() {
	run(func() {
		mark()
	})
}

func g() {
	h := func() { mark() }
	h()
}
`

// Literals passed directly as call arguments are spliced into the caller's
// graph; literals bound to variables are separate roots.
func TestFuncLitSplicing(t *testing.T) {
	file, info := load(t, spliceSrc)
	graphs := cfg.FileGraphs(file, info)
	var fg *cfg.Graph
	roots := 0
	for _, gr := range graphs {
		if fd, ok := gr.Func.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fg = gr
		}
		if _, ok := gr.Func.(*ast.FuncLit); ok {
			roots++
		}
	}
	if fg == nil {
		t.Fatal("no graph for f")
	}
	if len(fg.Spliced) != 1 {
		t.Fatalf("f spliced %d literals, want 1", len(fg.Spliced))
	}
	// mark() from the spliced literal is visible in f's own graph.
	blockOf(t, fg, "mark")
	// g's variable-bound literal is its own root, not spliced anywhere.
	if roots != 1 {
		t.Fatalf("%d literal roots, want 1 (the var-bound literal in g)", roots)
	}
}

const shallowSrc = `
func f() {
	_ = func() { inner() }
	outer()
}
func inner() {}
func outer() {}
`

func TestInspectShallow(t *testing.T) {
	file, _ := load(t, shallowSrc)
	var names []string
	ast.Inspect(file, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Name.Name != "f" {
			return true
		}
		cfg.InspectShallow(fd.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				names = append(names, id.Name)
			}
			return true
		})
		return false
	})
	joined := strings.Join(names, " ")
	if strings.Contains(joined, "inner") {
		t.Fatalf("InspectShallow descended into a function literal: %v", names)
	}
	if !strings.Contains(joined, "outer") {
		t.Fatalf("InspectShallow missed top-level idents: %v", names)
	}
}

const deferSrc = `
func cleanup() {}

func f() {
	defer cleanup()
	cleanup()
}
`

func TestDeferStaysANode(t *testing.T) {
	g := graphFor(t, deferSrc, "f")
	defers := 0
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				defers++
			}
		}
	}
	if defers != 1 {
		t.Fatalf("%d defer nodes reachable, want 1", defers)
	}
}
