// Package cfg builds intraprocedural control-flow graphs over go/ast for
// the dataflow-powered analyzers (poollifecycle, spanend, narrowconv).
//
// A Graph has one basic block per straight-line statement run and explicit
// edges for branches, loops, labeled break/continue, goto, switch/select
// dispatch, return and panic. Edges out of a condition carry the condition
// expression and a True/False kind, so dataflow clients can refine facts
// along branch outcomes (e.g. "on the false edge of v > math.MaxInt32, v
// fits in an int32"; "on the true edge of sp == nil, the span is the
// disabled span"). Cond-less switch statements are lowered to if-chains so
// their case edges refine the same way.
//
// Function literals that are passed directly as call arguments — the
// obs.(*Span).Timed(name, func(){...}) shape, closure bodies handed to
// helpers that invoke them synchronously — are spliced inline exactly
// once: the literal's body becomes part of the enclosing graph right after
// the call node, with returns inside the literal targeting a literal-local
// join block. Literals launched by go statements, registered by defer, or
// bound to variables are not spliced; FileGraphs returns them as roots of
// their own. The splice is a deliberate over-approximation (the callee may
// invoke the closure zero or many times), which errs on the side of
// seeing the closure's assignments — the direction the lifecycle
// analyzers need.
package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EdgeKind classifies a control-flow edge.
type EdgeKind uint8

const (
	// Next is an unconditional transfer.
	Next EdgeKind = iota
	// True is the taken edge of a condition (Cond holds).
	True
	// False is the fall-through edge of a condition (Cond fails).
	False
)

func (k EdgeKind) String() string {
	switch k {
	case True:
		return "true"
	case False:
		return "false"
	}
	return "next"
}

// Edge is one control-flow edge. Cond is the branch condition for True and
// False edges when the construct exposes one (if conditions, for
// conditions, cond-less switch cases); it is nil for loop-iteration edges
// of range statements and for multi-expression switch cases.
type Edge struct {
	From, To *Block
	Kind     EdgeKind
	Cond     ast.Expr
}

// Block is one basic block. Nodes are the statements and condition
// expressions executed in order; composite statements (if, for, switch)
// are decomposed into their parts, so Nodes only ever holds simple
// statements and expressions.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Func is the *ast.FuncDecl or *ast.FuncLit the graph was built for
	// (set by FileGraphs; nil for graphs built directly with New).
	Func ast.Node
	// Blocks lists every block, Entry first. Blocks unreachable in the
	// source (code after return/panic) stay in the list with no
	// predecessors; solvers skip them.
	Blocks []*Block
	// Entry is the block control enters at.
	Entry *Block
	// Exit is the block every return path and the fall-off-the-end path
	// reach. It has no nodes.
	Exit *Block
	// PanicExit is the block explicit panic(...) statements jump to. It
	// has no nodes. Implicit runtime panics are not modelled.
	PanicExit *Block
	// Spliced records the function literals whose bodies were inlined
	// into this graph; FileGraphs uses it to avoid re-analyzing them as
	// separate roots.
	Spliced map[*ast.FuncLit]bool
}

// New builds the control-flow graph of one function body. info may be nil;
// when present it is used to tell the panic builtin from a shadowing
// declaration.
func New(body *ast.BlockStmt, info *types.Info) *Graph {
	g := &Graph{Spliced: map[*ast.FuncLit]bool{}}
	b := &builder{g: g, info: info, labels: map[string]*Block{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	g.PanicExit = b.newBlock()
	b.cur = g.Entry
	b.stmt(body)
	b.edge(b.cur, g.Exit, Next, nil)
	return g
}

// FileGraphs builds one graph per function in the file: every declared
// function with a body, plus every function literal that was not spliced
// into an enclosing graph (goroutine bodies, deferred closures, literals
// bound to variables). Graphs come back in source order with Func set.
func FileGraphs(file *ast.File, info *types.Info) []*Graph {
	var graphs []*Graph
	spliced := map[*ast.FuncLit]bool{}
	build := func(fn ast.Node, body *ast.BlockStmt) {
		g := New(body, info)
		g.Func = fn
		for fl := range g.Spliced {
			spliced[fl] = true
		}
		graphs = append(graphs, g)
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			build(fd, fd.Body)
		}
	}
	// Literals visit outer-before-inner (ast.Inspect is pre-order), so by
	// the time an inner literal is reached, building its unspliced outer
	// literal has already recorded whether it was spliced there.
	var lits []*ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, fl)
		}
		return true
	})
	for _, fl := range lits {
		if !spliced[fl] {
			build(fl, fl.Body)
		}
	}
	return graphs
}

// InspectShallow walks the AST below n in source order like ast.Inspect,
// but does not descend into function literals: their statements belong to
// other graphs (or were spliced as separate nodes), so a shallow walk is
// what per-node transfer functions want.
func InspectShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return visit(m)
	})
}

// loopTarget is one enclosing breakable/continuable construct.
type loopTarget struct {
	label string
	block *Block
}

type builder struct {
	g    *Graph
	info *types.Info
	cur  *Block

	breaks    []loopTarget // loops, switches, selects
	continues []loopTarget // loops only
	labels    map[string]*Block
	litExit   []*Block // return targets of spliced literals, innermost last

	// pendingLabel is the label of the immediately-enclosing labeled
	// statement, consumed by the next loop/switch/select.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, kind EdgeKind, cond ast.Expr) {
	e := &Edge{From: from, To: to, Kind: kind, Cond: cond}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// labelBlock returns the goto/label target block for name, creating it on
// first reference (gotos may jump forward).
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *builder) findTarget(stack []loopTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// returnTarget is where return statements jump: the innermost spliced
// literal's local exit, or the function exit.
func (b *builder) returnTarget() *Block {
	if n := len(b.litExit); n > 0 {
		return b.litExit[n-1]
	}
	return b.g.Exit
}

// leaf appends a simple statement or expression to the current block and,
// when splice is set, inlines the bodies of function literals the node
// passes directly as call arguments.
func (b *builder) leaf(n ast.Node, splice bool) {
	b.cur.Nodes = append(b.cur.Nodes, n)
	if !splice {
		return
	}
	for _, fl := range directCallArgLits(n) {
		b.spliceLit(fl)
	}
}

// spliceLit inlines one literal's body after the current block. Returns
// inside the literal target a literal-local join; break/continue/label
// scopes restart (a literal cannot branch to enclosing constructs).
func (b *builder) spliceLit(fl *ast.FuncLit) {
	b.g.Spliced[fl] = true
	join := b.newBlock()
	savedBreaks, savedContinues := b.breaks, b.continues
	savedLabels, savedPending := b.labels, b.pendingLabel
	b.breaks, b.continues, b.labels, b.pendingLabel = nil, nil, map[string]*Block{}, ""
	b.litExit = append(b.litExit, join)

	entry := b.newBlock()
	b.edge(b.cur, entry, Next, nil)
	b.cur = entry
	b.stmt(fl.Body)
	b.edge(b.cur, join, Next, nil)

	b.litExit = b.litExit[:len(b.litExit)-1]
	b.breaks, b.continues = savedBreaks, savedContinues
	b.labels, b.pendingLabel = savedLabels, savedPending
	b.cur = join
}

// directCallArgLits collects function literals under n that appear
// directly as call arguments, in source order, without descending into
// literals already collected (their nested call-arg literals splice when
// their own body is built).
func directCallArgLits(n ast.Node) []*ast.FuncLit {
	var lits []*ast.FuncLit
	marked := map[*ast.FuncLit]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		if fl, ok := m.(*ast.FuncLit); ok {
			return !marked[fl] // don't look inside literals being spliced
		}
		if call, ok := m.(*ast.CallExpr); ok {
			for _, arg := range call.Args {
				if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok && !marked[fl] {
					marked[fl] = true
					lits = append(lits, fl)
				}
			}
		}
		return true
	})
	return lits
}

// isPanicCall reports whether s is a call to the panic builtin.
func (b *builder) isPanicCall(s *ast.ExprStmt) bool {
	call, ok := ast.Unparen(s.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info != nil {
		_, isBuiltin := b.info.Uses[id].(*types.Builtin)
		return isBuiltin
	}
	return true
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.leaf(s.Cond, false)
		header := b.cur
		then := b.newBlock()
		join := b.newBlock()
		b.edge(header, then, True, s.Cond)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, join, Next, nil)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(header, els, False, s.Cond)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join, Next, nil)
		} else {
			b.edge(header, join, False, s.Cond)
		}
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		header := b.newBlock()
		b.edge(b.cur, header, Next, nil)
		b.cur = header
		body := b.newBlock()
		exit := b.newBlock()
		post := b.newBlock() // continue target
		if s.Cond != nil {
			b.leaf(s.Cond, false)
			b.edge(b.cur, body, True, s.Cond)
			b.edge(b.cur, exit, False, s.Cond)
		} else {
			b.edge(b.cur, body, Next, nil) // exit only via break/return
		}
		b.breaks = append(b.breaks, loopTarget{label, exit})
		b.continues = append(b.continues, loopTarget{label, post})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, post, Next, nil)
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, header, Next, nil)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exit
	case *ast.RangeStmt:
		label := b.takeLabel()
		header := b.newBlock()
		b.edge(b.cur, header, Next, nil)
		b.cur = header
		if s.X != nil {
			b.leaf(s.X, false)
		}
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(header, body, True, nil)
		b.edge(header, exit, False, nil)
		b.breaks = append(b.breaks, loopTarget{label, exit})
		b.continues = append(b.continues, loopTarget{label, header})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, header, Next, nil)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exit
	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		if s.Tag != nil {
			b.leaf(s.Tag, false)
		}
		b.switchClauses(label, s.Body, s.Tag == nil)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		b.leaf(s.Assign, false)
		b.switchClauses(label, s.Body, false)
	case *ast.SelectStmt:
		label := b.takeLabel()
		exit := b.newBlock()
		header := b.cur
		b.breaks = append(b.breaks, loopTarget{label, exit})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			body := b.newBlock()
			b.edge(header, body, Next, nil)
			b.cur = body
			if cc.Comm != nil {
				b.leaf(cc.Comm, true)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.edge(b.cur, exit, Next, nil)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = exit
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb, Next, nil)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		b.leaf(s, false)
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(b.breaks, labelName(s.Label)); t != nil {
				b.edge(b.cur, t, Next, nil)
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			if t := b.findTarget(b.continues, labelName(s.Label)); t != nil {
				b.edge(b.cur, t, Next, nil)
			}
			b.cur = b.newBlock()
		case token.GOTO:
			b.edge(b.cur, b.labelBlock(s.Label.Name), Next, nil)
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// switchClauses wires the edge to the next clause body.
		}
	case *ast.ReturnStmt:
		b.leaf(s, true)
		b.edge(b.cur, b.returnTarget(), Next, nil)
		b.cur = b.newBlock()
	case *ast.ExprStmt:
		if b.isPanicCall(s) {
			b.leaf(s, false)
			b.edge(b.cur, b.g.PanicExit, Next, nil)
			b.cur = b.newBlock()
			return
		}
		b.leaf(s, true)
	case *ast.GoStmt, *ast.DeferStmt:
		// The launched/registered literal is not spliced: it runs at
		// another time. Analyzers inspect the node itself (e.g. a
		// deferred put discharges a pool obligation).
		b.leaf(s, false)
	default:
		// Assign, IncDec, Send, Decl, Empty: plain nodes.
		b.leaf(s, true)
	}
}

// switchClauses lowers a switch body. When refine is set (cond-less
// switch), single-expression cases become an if-chain whose True/False
// edges carry the case expression, so must-facts ("the default clause only
// runs when tv <= math.MaxInt32 failed to match") refine exactly like
// written-out ifs.
func (b *builder) switchClauses(label string, body *ast.BlockStmt, refine bool) {
	exit := b.newBlock()
	b.breaks = append(b.breaks, loopTarget{label, exit})

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, cl := range body.List {
		clauses = append(clauses, cl.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}

	chain := b.cur
	defaultIdx := -1
	for i, cc := range clauses {
		if len(cc.List) == 0 {
			defaultIdx = i
			continue
		}
		if refine && len(cc.List) == 1 {
			cond := cc.List[0]
			chain.Nodes = append(chain.Nodes, cond)
			b.edge(chain, bodies[i], True, cond)
			next := b.newBlock()
			b.edge(chain, next, False, cond)
			chain = next
			continue
		}
		for _, e := range cc.List {
			chain.Nodes = append(chain.Nodes, e)
		}
		b.edge(chain, bodies[i], Next, nil)
	}
	if defaultIdx >= 0 {
		b.edge(chain, bodies[defaultIdx], Next, nil)
	} else {
		b.edge(chain, exit, Next, nil)
	}

	for i, cc := range clauses {
		b.cur = bodies[i]
		for _, st := range cc.Body {
			b.stmt(st)
		}
		if i+1 < len(clauses) && endsInFallthrough(cc.Body) {
			b.edge(b.cur, bodies[i+1], Next, nil)
		} else {
			b.edge(b.cur, exit, Next, nil)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = exit
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}
