// Package ctxflow enforces cooperative cancellation on the request path:
// long-running loops in internal/core, internal/server and
// internal/parallel must remain cancellable, because a disconnected client
// whose query keeps burning every core is the exact failure mode the
// context plumbing of PR 4 exists to prevent.
//
// Three rules, all scoped by import-path suffix:
//
//   - blocking-loop: a call to parallel.For, parallel.ForEach or
//     parallel.Run (the cancellation-blind entry points) from a function
//     where a context.Context is reachable — as a parameter or local of
//     any enclosing function, or as a field of an in-scope struct value
//     such as core.Options — must use the *Context variant instead.
//   - nil-context: passing a literal nil context to parallel.ForContext
//     or parallel.ForEachContext while a context is reachable disables
//     cancellation the caller went out of its way to provide.
//   - fresh-context: context.Background() or context.TODO() inside
//     internal/server manufactures a context detached from the request;
//     handler paths must thread r.Context() instead.
//
// Exceptions annotate `//lint:ctxflow-ok <reason>`; the reason is
// mandatory. The analysis is reachability-based, not path-based: it asks
// "could this call site have threaded a context", which is a property of
// scopes, not of branches.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"holistic/internal/analysis"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "reports cancellation-blind parallel loops, nil contexts and fresh Background/TODO contexts on the request path",
	Run:  run,
}

// loopPkgSuffixes are the packages whose parallel loops must be
// cancellable.
var loopPkgSuffixes = []string{"internal/core", "internal/server", "internal/parallel", "internal/delta"}

// serverPkgSuffix scopes the fresh-context rule to handler code.
const serverPkgSuffix = "internal/server"

// parallelPkgSuffix identifies the loop substrate.
const parallelPkgSuffix = "internal/parallel"

// blind maps the cancellation-blind entry points to their context-aware
// replacements.
var blind = map[string]string{
	"For":     "ForContext",
	"ForEach": "ForEachContext",
	"Run":     "ForEachContext",
}

// ctxTakers are the entry points taking a context as first argument.
var ctxTakers = map[string]bool{"ForContext": true, "ForEachContext": true}

func run(pass *analysis.Pass) error {
	pkgPath := pass.Pkg.Path()
	inLoopPkgs := hasAnySuffix(pkgPath, loopPkgSuffixes)
	inServer := strings.HasSuffix(pkgPath, serverPkgSuffix)
	if !inLoopPkgs && !inServer {
		pass.ReportBareDirectives(analysis.DirectiveCtxFlowOK)
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case inLoopPkgs && strings.HasSuffix(fn.Pkg().Path(), parallelPkgSuffix):
				if repl, isBlind := blind[fn.Name()]; isBlind {
					if ctxReachable(pass, call) {
						report(pass, call, "parallel.%s ignores the context reachable here; use parallel.%s so the loop stays cancellable (//lint:ctxflow-ok <reason>)", fn.Name(), repl)
					}
				} else if ctxTakers[fn.Name()] && len(call.Args) > 0 && isNil(call.Args[0]) {
					if ctxReachable(pass, call) {
						report(pass, call, "nil context passed to parallel.%s while a context is reachable; thread it so the loop stays cancellable (//lint:ctxflow-ok <reason>)", fn.Name())
					}
				}
			case inServer && fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO"):
				report(pass, call, "context.%s on a handler path detaches the work from the request; thread the request context instead (//lint:ctxflow-ok <reason>)", fn.Name())
			}
			return true
		})
	}
	pass.ReportBareDirectives(analysis.DirectiveCtxFlowOK)
	return nil
}

func report(pass *analysis.Pass, call *ast.CallExpr, format string, args ...any) {
	if _, ok := pass.Suppression(call.Pos(), analysis.DirectiveCtxFlowOK); ok {
		return
	}
	pass.Reportf(call.Pos(), format, args...)
}

// ctxReachable reports whether a context.Context could have been threaded
// to the call: some variable in scope at the call — a parameter or local
// of any enclosing function — either is a context.Context or is a struct
// (or pointer to one) carrying a context.Context field, like
// core.Options.
func ctxReachable(pass *analysis.Pass, call *ast.CallExpr) bool {
	scope := pass.Pkg.Scope().Innermost(call.Pos())
	for ; scope != nil && scope != pass.Pkg.Scope(); scope = scope.Parent() {
		for _, name := range scope.Names() {
			obj, ok := scope.Lookup(name).(*types.Var)
			if !ok || obj.Pos() > call.Pos() {
				continue
			}
			if isCtxType(obj.Type()) || carriesCtxField(obj.Type()) {
				return true
			}
		}
	}
	return false
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil &&
		(obj.Pkg().Path() == "context" || strings.HasSuffix(obj.Pkg().Path(), "/context"))
}

// carriesCtxField reports whether t is a struct (or pointer to one) with
// a context.Context field.
func carriesCtxField(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isCtxType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func hasAnySuffix(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
