// Package server exercises the request-path cancellation rules: the
// import-path suffix puts it under both the blocking-loop and the
// fresh-context rule.
package server

import (
	"context"

	"holistic/internal/parallel"
)

func consume(...any) {}

// --- blocking-loop rule ---

func blindLoopWithCtxParam(ctx context.Context, n int) {
	parallel.For(n, 1, func(lo, hi int) {}) // want "ignores the context reachable here"
}

func blindForEachWithCtxParam(ctx context.Context, n int) {
	parallel.ForEach(n, func(i int) {}) // want "ignores the context reachable here"
}

func blindRunWithCtxParam(ctx context.Context) {
	parallel.Run(func() {}, func() {}) // want "ignores the context reachable here"
}

func threadedLoop(ctx context.Context, n int) error {
	return parallel.ForContext(ctx, n, 1, func(lo, hi int) {})
}

// No context is reachable here, so the blind loop is allowed.
func noCtxReachable(n int) {
	parallel.For(n, 1, func(lo, hi int) {})
}

// A local declared after the call does not count as reachable.
func ctxDeclaredAfter(n int) {
	parallel.For(n, 1, func(lo, hi int) {})
	ctx := context.TODO() // want "detaches the work from the request"
	consume(ctx)
}

// options carries a context field, like core.Options: reachability sees
// through the struct.
type options struct {
	Ctx   context.Context
	Limit int
}

func blindLoopWithCarrier(opt options, n int) {
	parallel.For(n, 1, func(lo, hi int) {}) // want "ignores the context reachable here"
}

func blindLoopWithCarrierPtr(opt *options, n int) {
	parallel.ForEach(n, func(i int) {}) // want "ignores the context reachable here"
}

// A context local of the enclosing function is reachable inside literals.
func blindLoopInsideClosure(ctx context.Context, n int) func() {
	return func() {
		parallel.For(n, 1, func(lo, hi int) {}) // want "ignores the context reachable here"
	}
}

// --- nil-context rule ---

func nilCtxWhileReachable(ctx context.Context, n int) {
	_ = parallel.ForContext(nil, n, 1, func(lo, hi int) {}) // want "nil context passed to parallel.ForContext"
}

func nilCtxNoneReachable(n int) {
	_ = parallel.ForContext(nil, n, 1, func(lo, hi int) {})
}

// --- fresh-context rule ---

func freshBackground() context.Context {
	return context.Background() // want "detaches the work from the request"
}

func annotatedDetach() context.Context {
	//lint:ctxflow-ok the janitor loop is process-scoped by design and must survive request cancellation
	return context.Background()
}

func bareDirective() context.Context {
	//lint:ctxflow-ok // want "needs a justification"
	return context.Background()
}
