// Package core is under the blocking-loop rule but not the fresh-context
// rule (Background outside handler code is the operator's own business).
package core

import (
	"context"

	"holistic/internal/parallel"
)

func blindLoopWithCtx(ctx context.Context, n int) {
	parallel.For(n, 1, func(lo, hi int) {}) // want "ignores the context reachable here"
}

func backgroundAllowedOutsideServer() context.Context {
	return context.Background()
}
