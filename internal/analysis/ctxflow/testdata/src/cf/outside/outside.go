// Package outside is not on the request path: no rule applies, whatever
// the loops do.
package outside

import (
	"context"

	"holistic/internal/parallel"
)

func blindLoopUnscoped(ctx context.Context, n int) {
	parallel.For(n, 1, func(lo, hi int) {})
	_ = context.Background()
}
