package ctxflow_test

import (
	"testing"

	"holistic/internal/analysis/analysistest"
	"holistic/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "cf/internal/server", "cf/internal/core", "cf/outside")
}
