package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

func TestWriteSARIF(t *testing.T) {
	analyzers := []*Analyzer{
		{Name: "poollifecycle", Doc: "check pooled buffer lifecycles"},
		{Name: "spanend", Doc: "check span End on every path"},
	}
	findings := []Finding{
		{
			Pos:      token.Position{Filename: "/repo/internal/mst/build.go", Line: 42, Column: 7},
			Message:  "buffer b is not returned to the pool on every path",
			Analyzer: "poollifecycle",
		},
		{
			Pos:      token.Position{Filename: "/repo/internal/core/eval.go", Line: 9, Column: 2},
			Message:  "span eval is not ended on every return path",
			Analyzer: "spanend",
		},
	}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, analyzers, findings, "/repo"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	// The output must be valid JSON in the SARIF 2.1.0 shape CI uploads.
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	if log.Version != "2.1.0" {
		t.Fatalf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("%d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "holisticlint" {
		t.Fatalf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 2 {
		t.Fatalf("%d rules, want one per analyzer", len(run.Tool.Driver.Rules))
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if !ruleIDs["poollifecycle"] || !ruleIDs["spanend"] {
		t.Fatalf("rule ids %v missing an analyzer", ruleIDs)
	}

	if len(run.Results) != 2 {
		t.Fatalf("%d results, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "poollifecycle" {
		t.Fatalf("first result ruleId = %q", first.RuleID)
	}
	if first.Message.Text == "" {
		t.Fatal("first result has an empty message")
	}
	if len(first.Locations) != 1 {
		t.Fatalf("first result has %d locations, want 1", len(first.Locations))
	}
	loc := first.Locations[0].PhysicalLocation
	// URIs are relativized against baseDir so the artifact links resolve
	// inside the repository checkout, not the runner's filesystem.
	if loc.ArtifactLocation.URI != "internal/mst/build.go" {
		t.Fatalf("uri = %q, want repo-relative internal/mst/build.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Fatalf("region = %d:%d, want 42:7", loc.Region.StartLine, loc.Region.StartColumn)
	}
}

func TestWriteSARIFNoFindings(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, nil, ""); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// An empty run still needs a non-null results array: the upload action
	// rejects `"results": null`.
	if len(log.Runs) != 1 || log.Runs[0].Results == nil {
		t.Fatalf("empty run must keep results []: %s", buf.String())
	}
}
