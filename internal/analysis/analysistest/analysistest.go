// Package analysistest is a golden-file test harness for the analyzers in
// internal/analysis, modelled on golang.org/x/tools/go/analysis/analysistest
// but built on the repo's own loader so it needs no external dependencies.
//
// Tests lay out packages under <analyzer>/testdata/src/<importpath>/ and
// annotate lines that should produce findings with want comments:
//
//	racy = 1 // want "assignment to captured variable"
//
// Each `// want "re" ["re" ...]` comment expects exactly that many
// findings on its line, matched against the regular expressions in column
// order; lines without a want comment must produce none. Testdata packages
// may import real module packages (e.g. holistic/internal/parallel) —
// imports resolve against the enclosing module, then against the testdata
// src tree, then against the standard library.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"holistic/internal/analysis"
)

// Run loads each package from dir/src and checks the analyzer's findings
// against the packages' want comments. dir is typically "testdata".
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modRoot, modPath, err := analysis.FindModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(modRoot, modPath)
	src := filepath.Join(cwd, dir, "src")
	if err := registerTestdata(loader, src); err != nil {
		t.Fatal(err)
	}
	for _, pkgPath := range pkgs {
		checkPackage(t, loader, a, pkgPath)
	}
}

// registerTestdata maps every package directory under src as an extra
// import root.
func registerTestdata(loader *analysis.Loader, src string) error {
	return filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return err
		}
		pkgDir := filepath.Dir(p)
		rel, err := filepath.Rel(src, pkgDir)
		if err != nil {
			return err
		}
		loader.Extra[filepath.ToSlash(rel)] = pkgDir
		return nil
	})
}

func checkPackage(t *testing.T, loader *analysis.Loader, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	pkg, err := loader.Load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	diags := analysis.RunPackage([]*analysis.Analyzer{a}, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)

	// Group findings by file:line, preserving column order.
	got := map[string][]analysis.Diagnostic{}
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		got[key] = append(got[key], d)
	}
	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}

	for key, res := range wants {
		found := got[key]
		delete(got, key)
		if len(found) != len(res) {
			t.Errorf("%s: want %d finding(s), got %d: %s", key, len(res), len(found), messages(found))
			continue
		}
		for i, re := range res {
			if !re.MatchString(found[i].Message) {
				t.Errorf("%s: finding %q does not match want %q", key, found[i].Message, re)
			}
		}
	}
	for key, found := range got {
		t.Errorf("%s: unexpected finding(s): %s", key, messages(found))
	}
}

var wantRE = regexp.MustCompile(`// want( "(?:[^"\\]|\\.)*")+\s*$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants extracts `// want "re"...` expectations, keyed by file:line.
func parseWants(pkg *analysis.Package) (map[string][]*regexp.Regexp, error) {
	wants := map[string][]*regexp.Regexp{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRE.FindString(c.Text)
				if m == "" {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, arg := range wantArgRE.FindAllStringSubmatch(m, -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", key, arg[1], err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants, nil
}

func messages(diags []analysis.Diagnostic) string {
	if len(diags) == 0 {
		return "(none)"
	}
	var parts []string
	for _, d := range diags {
		parts = append(parts, fmt.Sprintf("%q", d.Message))
	}
	return strings.Join(parts, ", ")
}
