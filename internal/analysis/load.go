package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source, resolving
// module-internal imports against the module tree, extra roots (used by
// analysistest for its testdata packages) against their registered
// directories, and everything else (the standard library) through the
// go/importer source importer. No export data or network access is
// required, which keeps the linter runnable in hermetic environments.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleRoot string
	// Extra maps additional import paths to directories; analysistest
	// registers testdata packages here.
	Extra map[string]string

	std  types.Importer
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader builds a loader for the module rooted at moduleRoot.
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleRoot: moduleRoot,
		Extra:      map[string]string{},
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		busy:       map[string]bool{},
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// resolveDir maps an import path to a source directory, or "" when the
// path is not provided by the module or the extra roots.
func (l *Loader) resolveDir(path string) string {
	if dir, ok := l.Extra[path]; ok {
		return dir
	}
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest))
	}
	return ""
}

// Load parses and type-checks the package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := l.resolveDir(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: cannot resolve import %q", path)
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(func(imp string) (*types.Package, error) {
		if l.resolveDir(imp) != "" {
			p, err := l.Load(imp)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return l.std.Import(imp)
	})}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses every non-test .go file of the package in dir.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ModulePackages lists the import paths of every package in the module,
// skipping testdata and hidden directories — the same set `go list ./...`
// reports.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, filepath.Dir(p))
		if err != nil {
			return err
		}
		imp := l.ModulePath
		if rel != "." {
			imp = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != imp {
			paths = append(paths, imp)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
