// Package a exercises framebounds: raw frame-bound comparisons and manual
// clamping outside internal/frame are findings.
package a

func clampByHand(frameStart, frameEnd, n int) (int, int) {
	if frameStart < 0 { // want "raw frame-bound comparison"
		frameStart = 0
	}
	if frameEnd > n { // want "raw frame-bound comparison"
		frameEnd = n
	}
	return frameStart, frameEnd
}

func clampWithBuiltins(frameLo, frameHi, n int) (int, int) {
	return max(frameLo, 0), min(frameHi, n) // want "manual clamping" "manual clamping"
}

type window struct{ frameStart, frameEnd int }

func fieldComparison(w window) bool {
	return w.frameStart <= w.frameEnd // want "raw frame-bound comparison"
}

func suppressed(frameStart int) bool {
	//lint:framebounds-ok competitor engine probes the raw bound for its own pruning heuristic; canonical clamping happens upstream
	return frameStart < 0
}

func bareHatchIsAFinding(frameHi int) bool {
	return frameHi > 0 //lint:framebounds-ok // want "needs a justification string"
}

func unrelatedNamesAreFine(start, end, n int) (int, int) {
	if start < 0 {
		start = 0
	}
	if end > n {
		end = n
	}
	return start, end
}
