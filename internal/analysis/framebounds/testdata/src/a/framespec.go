package a

// Files named framespec.go are the sanctioned home of raw frame-bound
// plumbing, mirroring the repo's root framespec.go; nothing here is
// reported.

func specClamp(frameStart, n int) int {
	if frameStart > n {
		return n
	}
	return frameStart
}
