// Package frame stands in for internal/frame: the canonical owner of
// frame-bound arithmetic is exempt wholesale.
package frame

func Clamp(frameStart, frameEnd, n int) (int, int) {
	if frameStart < 0 {
		frameStart = 0
	}
	if frameEnd > n {
		frameEnd = n
	}
	return frameStart, frameEnd
}
