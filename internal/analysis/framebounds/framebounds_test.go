package framebounds_test

import (
	"testing"

	"holistic/internal/analysis/analysistest"
	"holistic/internal/analysis/framebounds"
)

func TestFrameBounds(t *testing.T) {
	analysistest.Run(t, "testdata", framebounds.Analyzer, "a", "x/internal/frame")
}
