// Package framebounds keeps window-frame boundary arithmetic inside the
// canonical helpers. Frame clamping is where EXCLUDE/ROWS/RANGE/GROUPS
// edge cases hide (empty frames, saturating RANGE offsets, peer-group
// clipping — §2.2/§4.7), so internal/frame owns all of it:
// frame.Computer.Bounds clamps, frame.Computer.Ranges decomposes after
// exclusion, and nothing else in the tree is allowed to re-derive them.
//
// The analyzer reports, outside internal/frame and framespec.go:
//
//   - raw ordered comparisons (`<`, `<=`, `>`, `>=`) against a variable
//     named like a frame bound (frameStart, frameEnd, frameLo, frameHi,
//     case-insensitive), and
//   - manual clamping of such a variable with the min/max builtins.
//
// Call sites that intentionally post-process canonical bounds annotate
// with `//lint:framebounds-ok <reason>`; the reason is mandatory.
package framebounds

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"holistic/internal/analysis"
)

// Analyzer is the framebounds analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "framebounds",
	Doc:  "reports raw frame-bound comparisons and manual clamping outside internal/frame",
	Run:  run,
}

// boundNames are the lower-cased identifier names treated as frame
// boundaries.
var boundNames = map[string]bool{
	"framestart": true,
	"frameend":   true,
	"framelo":    true,
	"framehi":    true,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/frame") {
		return nil
	}
	for _, file := range pass.Files {
		if filepath.Base(pass.Position(file.Pos()).Filename) == "framespec.go" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ:
				default:
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if name, ok := boundName(side); ok {
						report(pass, n.Pos(), "raw frame-bound comparison on %q; frame edge cases belong in internal/frame — use frame.Computer.Bounds/Ranges", name)
						break
					}
				}
			case *ast.CallExpr:
				id, ok := ast.Unparen(n.Fun).(*ast.Ident)
				if !ok || (id.Name != "min" && id.Name != "max") {
					return true
				}
				if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !isBuiltin {
					return true
				}
				for _, arg := range n.Args {
					if name, ok := boundName(arg); ok {
						report(pass, n.Pos(), "manual clamping of frame bound %q with %s; use the clamped values from frame.Computer.Bounds", name, id.Name)
						break
					}
				}
			}
			return true
		})
	}
	pass.ReportBareDirectives(analysis.DirectiveFrameBoundsOK)
	return nil
}

func report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if _, ok := pass.Suppression(pos, analysis.DirectiveFrameBoundsOK); ok {
		return
	}
	pass.Reportf(pos, format, args...)
}

// boundName reports whether the expression is an identifier or field
// selection named like a frame bound.
func boundName(e ast.Expr) (string, bool) {
	var name string
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return "", false
	}
	return name, boundNames[strings.ToLower(name)]
}
