// Package poolalias protects the recycling discipline of the pooled
// scratch buffers (internal/arena.Pool and the Options get* helpers in
// internal/core): a pooled buffer is handed out at an exact size class and
// must come back at that class. Growing one with append either reallocates
// — the grown slice silently escapes the pool and the original is never
// put back — or, worse, extends in place into the class-cap tail, writing
// bytes that alias the next request's allocation after the buffer is
// recycled.
//
// The analyzer flags append calls whose first argument is (a variable
// assigned from) a pool Get. The analysis is flow-insensitive within each
// function: a variable that ever held a pooled buffer is treated as pooled
// everywhere in that function, which errs on the side of reporting.
// Call sites that provably stay within the requested length — or that
// reslice before appending so the result never returns to the pool —
// annotate with `//lint:poolalias-ok <reason>`; the reason is mandatory.
package poolalias

import (
	"go/ast"
	"go/types"
	"strings"

	"holistic/internal/analysis"
)

// Analyzer is the poolalias analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolalias",
	Doc:  "reports append on pooled scratch buffers, which breaks the size-class recycling contract",
	Run:  run,
}

// poolGetters maps import-path suffix -> method names that hand out pooled
// buffers.
var poolGetters = map[string]map[string]bool{
	"internal/arena": {"Get": true, "GetZeroed": true},
	"internal/core":  {"getInt32s": true, "getInt64s": true, "getUint64s": true, "getBools": true},
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFunc(pass, fn)
			return true
		})
	}
	pass.ReportBareDirectives(analysis.DirectivePoolAliasOK)
	return nil
}

// checkFunc inspects one function (closures included — pooled buffers
// captured by the probe closures are the most common aliasing hazard).
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Pass 1: every variable assigned from a pool Get anywhere in the
	// function is pooled.
	pooled := make(map[types.Object]bool)
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isPoolGet(pass, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					pooled[obj] = true
				}
			}
		}
		return true
	})

	// Pass 2: report appends whose base is pooled (by variable or
	// directly from a Get call).
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			return true
		}
		if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
			return true
		}
		var what string
		switch base := ast.Unparen(call.Args[0]).(type) {
		case *ast.Ident:
			if pooled[pass.TypesInfo.ObjectOf(base)] {
				what = base.Name
			}
		case *ast.CallExpr:
			if isPoolGet(pass, base) {
				what = "a fresh pool Get"
			}
		}
		if what == "" {
			return true
		}
		if _, ok := pass.Suppression(call.Pos(), analysis.DirectivePoolAliasOK); ok {
			return true
		}
		pass.Reportf(call.Pos(), "append on pooled buffer %s: growth breaks the size-class recycling contract (write by index, or annotate //lint:poolalias-ok <reason>)", what)
		return true
	})
}

// isPoolGet reports whether expr is a call to one of the pool getters.
func isPoolGet(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	for suffix, names := range poolGetters {
		if strings.HasSuffix(fn.Pkg().Path(), suffix) && names[fn.Name()] {
			return true
		}
	}
	return false
}
