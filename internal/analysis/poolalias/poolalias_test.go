package poolalias_test

import (
	"testing"

	"holistic/internal/analysis/analysistest"
	"holistic/internal/analysis/poolalias"
)

func TestPoolAlias(t *testing.T) {
	analysistest.Run(t, "testdata", poolalias.Analyzer, "pa/internal/core")
}
