// Package core stands in for internal/core's pooled scratch helpers and
// exercises every shape of append the analyzer must judge.
package core

import "pa/internal/arena"

// Options mirrors the pooled-scratch accessors.
type Options struct{ NoPool bool }

func (o Options) getInt32s(n int) []int32 {
	if o.NoPool {
		return make([]int32, n)
	}
	return arena.Int32s.Get(n)
}

func appendOnHelperBuffer(o Options) []int32 {
	buf := o.getInt32s(8)
	buf = append(buf, 1) // want "append on pooled buffer buf"
	return buf
}

func appendOnDirectGet() []int32 {
	return append(arena.Int32s.Get(4), 9) // want "append on pooled buffer a fresh pool Get"
}

func appendOnZeroedGet() {
	buf := arena.Int32s.GetZeroed(4)
	buf = append(buf, 2) // want "append on pooled buffer buf"
	arena.Int32s.Put(buf)
}

// The analysis is flow-insensitive: once pooled in a function, always
// pooled — even when the append textually precedes the pool assignment.
func flowInsensitive(o Options) {
	var buf []int32
	buf = append(buf, 3) // want "append on pooled buffer buf"
	buf = o.getInt32s(2)
	o.putInt32s(buf)
}

func (o Options) putInt32s(buf []int32) {
	if o.NoPool {
		return
	}
	arena.Int32s.Put(buf)
}

// Pooled buffers captured by closures stay pooled inside them.
func closureCapture(o Options) {
	buf := o.getInt32s(4)
	grow := func() {
		buf = append(buf, 5) // want "append on pooled buffer buf"
	}
	grow()
	o.putInt32s(buf)
}

func indexedWritesAreFine(o Options) []int32 {
	buf := o.getInt32s(8)
	for i := range buf {
		buf[i] = int32(i)
	}
	return buf
}

func plainSlicesAreFine() []int32 {
	s := make([]int32, 0, 4)
	s = append(s, 1)
	return s
}

func suppressedWithReason(o Options) {
	buf := o.getInt32s(8)
	//lint:poolalias-ok the result is resliced to the original class cap and never returned to the pool
	buf = append(buf[:0], 7)
	_ = buf
}

func bareHatchIsAFinding(o Options) {
	buf := o.getInt32s(2)
	buf = append(buf, 3) //lint:poolalias-ok // want "needs a justification string"
	_ = buf
}
