// Package arena stands in for the pool side of internal/arena: the
// analyzer matches Get/GetZeroed by method name and import-path suffix.
package arena

// Pool hands out size-classed buffers.
type Pool struct{}

// Get returns a buffer of length n.
func (p *Pool) Get(n int) []int32 { return make([]int32, n) }

// GetZeroed returns a zeroed buffer of length n.
func (p *Pool) GetZeroed(n int) []int32 { return make([]int32, n) }

// Put returns a buffer to the pool.
func (p *Pool) Put(buf []int32) {}

// Int32s is the shared pool.
var Int32s = &Pool{}
