package poollifecycle_test

import (
	"testing"

	"holistic/internal/analysis/analysistest"
	"holistic/internal/analysis/poollifecycle"
)

func TestPoolLifecycle(t *testing.T) {
	analysistest.Run(t, "testdata", poollifecycle.Analyzer, "pl/internal/core")
}
