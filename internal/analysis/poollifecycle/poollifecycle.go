// Package poollifecycle enforces the checkout discipline of the pooled
// scratch buffers (internal/arena.Pool and the Options get*/put* helpers
// in internal/core) with a path-sensitive dataflow analysis: every buffer
// obtained from a pool getter must be returned to the pool exactly once on
// every path out of the function, must not be used after it was returned,
// and must not escape the function's put discipline silently.
//
// Per tracked variable the analysis runs a may-lattice {live, released,
// deferred} over the function's CFG (package cfg), with function literals
// passed directly as call arguments spliced inline — so a buffer obtained
// inside an obs Timed closure and released by the enclosing function is
// still seen as balanced. It reports:
//
//   - a buffer live on some path reaching the function exit (leak),
//     reported at the get call;
//   - a put on a buffer already returned (or covered by a deferred put);
//   - any use of a buffer after it was returned on some path;
//   - a live buffer overwritten before being returned;
//   - escapes: returning the buffer, storing it into a field, element or
//     channel, embedding it in a composite literal, or capturing it in a
//     go statement — each hands ownership to code the intraprocedural
//     analysis cannot see;
//   - append on a pooled buffer (growth breaks size-class recycling;
//     subsumes the retired syntactic poolalias analyzer).
//
// Passing a buffer as a plain call argument is a borrow and is fine; a
// deferred put discharges the obligation on every exit, panics included.
// Deliberate ownership hand-offs (a helper documented to return a pooled
// buffer the caller must put) annotate the site with
// `//lint:poollifecycle-ok <reason>`; the reason is mandatory. Paths that
// end in an explicit panic are exempt from the leak check: a panic aborts
// the query and the pools are GC-backed, so nothing is lost but a recycle.
package poollifecycle

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"strings"

	"holistic/internal/analysis"
	"holistic/internal/analysis/cfg"
	"holistic/internal/analysis/dataflow"
)

// Analyzer is the poollifecycle analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poollifecycle",
	Doc:  "reports pooled scratch buffers that leak on some path, are used or put after release, escape the put discipline, or grow via append",
	Run:  run,
}

// poolGetters maps import-path suffix -> callables that hand out pooled
// buffers the caller must return.
var poolGetters = map[string]map[string]bool{
	"internal/arena": {"Get": true, "GetZeroed": true},
	"internal/core":  {"getInt32s": true, "getInt64s": true, "getUint64s": true, "getBools": true},
}

// poolPutters maps import-path suffix -> callables that return a buffer
// (always their first argument) to the pool.
var poolPutters = map[string]map[string]bool{
	"internal/arena": {"Put": true},
	"internal/core":  {"putInt32s": true, "putInt64s": true, "putUint64s": true, "putBools": true},
}

// state is the per-variable may-fact: which events happened on some path.
type state uint8

const (
	live     state = 1 << iota // holds an unreturned buffer
	released                   // was returned to the pool
	deferred                   // a deferred put covers it at exit
)

// fact maps tracked variables to their state; nil is the empty fact.
// Facts are immutable — all updates copy (see dataflow.Problem).
type fact map[types.Object]state

// arenaPkgSuffix identifies the pool implementation itself, which is exempt:
// its whole purpose is to hand buffers out and take them back, so every
// helper there "leaks" by construction.
const arenaPkgSuffix = "internal/arena"

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), arenaPkgSuffix) {
		pass.ReportBareDirectives(analysis.DirectivePoolLifecycleOK)
		return nil
	}
	for _, file := range pass.Files {
		for _, g := range cfg.FileGraphs(file, pass.TypesInfo) {
			analyzeGraph(pass, g)
		}
	}
	pass.ReportBareDirectives(analysis.DirectivePoolLifecycleOK)
	return nil
}

type problem struct{ pass *analysis.Pass }

func (p problem) Entry() fact                     { return nil }
func (p problem) Equal(a, b fact) bool            { return maps.Equal(a, b) }
func (p problem) Refine(f fact, e *cfg.Edge) fact { return f }

func (p problem) Join(a, b fact) fact {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := maps.Clone(a)
	for o, s := range b {
		out[o] |= s
	}
	return out
}

func set(f fact, o types.Object, s state) fact {
	if f[o] == s {
		return f
	}
	nf := make(fact, len(f)+1)
	maps.Copy(nf, f)
	nf[o] = s
	return nf
}

func del(f fact, o types.Object) fact {
	if _, ok := f[o]; !ok {
		return f
	}
	nf := maps.Clone(f)
	delete(nf, o)
	return nf
}

func (p problem) Transfer(f fact, n ast.Node) fact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return p.transferAssign(f, n)
	case *ast.DeferStmt:
		// A deferred put covers the buffer on every exit. Look deep:
		// `defer opt.putInt32s(buf)` and `defer func() { opt.putInt32s(buf) }()`
		// both count.
		for _, obj := range putArgsDeep(p.pass, n) {
			if s, ok := f[obj]; ok {
				f = set(f, obj, s&^live|deferred)
			}
		}
		return f
	case *ast.GoStmt:
		// Ownership moves to the goroutine; the escape is reported in the
		// check phase.
		for obj := range capturedDeep(p.pass, f, n) {
			f = del(f, obj)
		}
		return f
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if obj := trackedIdent(p.pass, f, res); obj != nil {
				f = del(f, obj)
			}
		}
		return f
	default:
		// Puts, escapes via send or composite literal.
		for _, obj := range putArgsShallow(p.pass, n) {
			if s, ok := f[obj]; ok {
				f = set(f, obj, s&^live|released)
			}
		}
		for obj := range escapesShallow(p.pass, f, n) {
			f = del(f, obj)
		}
		return f
	}
}

func (p problem) transferAssign(f fact, n *ast.AssignStmt) fact {
	// Puts buried in the right-hand sides (rare) still release.
	for _, rhs := range n.Rhs {
		for _, obj := range putArgsShallow(p.pass, rhs) {
			if s, ok := f[obj]; ok {
				f = set(f, obj, s&^live|released)
			}
		}
	}
	if len(n.Lhs) != len(n.Rhs) {
		return f
	}
	for i := range n.Lhs {
		rhs := ast.Unparen(n.Rhs[i])
		switch lhs := ast.Unparen(n.Lhs[i]).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := p.pass.TypesInfo.ObjectOf(lhs)
			if obj == nil {
				continue
			}
			switch {
			case isPoolGet(p.pass, rhs) || isWrappedGet(p.pass, rhs):
				f = set(f, obj, live)
			case trackedIdent(p.pass, f, rhs) != nil:
				// Ownership moves: the new name takes over the state.
				src := trackedIdent(p.pass, f, rhs)
				s := f[src]
				f = del(f, src)
				f = set(f, obj, s)
			case isSliceOf(p.pass, rhs, obj):
				// buf = buf[:n] keeps the same backing buffer checked out.
			default:
				if _, ok := f[obj]; ok {
					f = del(f, obj) // rebound; overwrite-while-live reported in check phase
				}
			}
		default:
			// Store into a field, element or deref: ownership escapes the
			// function (reported in the check phase).
			if obj := trackedIdent(p.pass, f, rhs); obj != nil {
				f = del(f, obj)
			}
		}
	}
	return f
}

// analyzeGraph solves and checks one function.
func analyzeGraph(pass *analysis.Pass, g *cfg.Graph) {
	origins := collectOrigins(pass, g)
	if len(origins) == 0 {
		return
	}
	p := problem{pass}
	in := dataflow.Solve[fact](g, p)

	reportedUse := map[types.Object]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if _, ok := pass.Suppression(pos, analysis.DirectivePoolLifecycleOK); ok {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	dataflow.Walk[fact](g, p, in, func(_ *cfg.Block, f fact, n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, f, n, report)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj := trackedIdent(pass, f, res); obj != nil && f[obj]&live != 0 {
					report(n.Pos(), "pooled buffer %s escapes via return; the caller now owns the put (annotate //lint:poollifecycle-ok <reason> if that hand-off is documented)", obj.Name())
				}
			}
		case *ast.GoStmt:
			for obj := range capturedDeep(pass, f, n) {
				if f[obj]&live != 0 {
					report(n.Pos(), "pooled buffer %s is captured by a goroutine; its put can no longer be sequenced with the pool (annotate //lint:poollifecycle-ok <reason>)", obj.Name())
				}
			}
		case *ast.DeferStmt:
			for _, obj := range putArgsDeep(pass, n) {
				if f[obj]&(released|deferred) != 0 {
					report(n.Pos(), "pooled buffer %s is already returned to the pool when this deferred put runs", obj.Name())
				}
			}
		default:
			puts := putArgsShallow(pass, n)
			putSet := map[types.Object]bool{}
			for _, obj := range puts {
				putSet[obj] = true
				if f[obj]&(released|deferred) != 0 {
					report(callPos(n), "pooled buffer %s is returned to the pool twice (a path already put it)", obj.Name())
				}
			}
			for obj, pos := range escapesShallow(pass, f, n) {
				if f[obj]&live != 0 {
					report(pos, "pooled buffer %s escapes into a composite literal or channel; the put discipline loses track of it (annotate //lint:poollifecycle-ok <reason>)", obj.Name())
				}
			}
			// Any other appearance of a released buffer is a use-after-put.
			for obj, pos := range identUses(pass, f, n) {
				if putSet[obj] || reportedUse[obj] {
					continue
				}
				if f[obj]&released != 0 {
					reportedUse[obj] = true
					report(pos, "pooled buffer %s is used after being returned to the pool", obj.Name())
				}
			}
		}
	})

	// Leak check: a buffer live on some path reaching the exit was not
	// returned there. Reported at the get so one finding covers all paths.
	if exitFact, ok := in[g.Exit]; ok {
		for obj, s := range exitFact {
			if s&live != 0 {
				if pos, ok := origins[obj]; ok {
					report(pos, "pooled buffer %s is not returned to the pool on every path (put it on all exits, defer the put, or annotate //lint:poollifecycle-ok <reason>)", obj.Name())
				}
			}
		}
	}
}

// checkAssign reports appends, overwrites and stores of live buffers.
func checkAssign(pass *analysis.Pass, f fact, n *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		rhs := ast.Unparen(n.Rhs[i])
		// Appends first: they subsume the overwrite report.
		if base, fresh := appendBase(pass, rhs); base != nil || fresh {
			what := "a fresh pool Get"
			tracked := false
			if base != nil {
				if obj := trackedIdent(pass, f, base); obj != nil {
					what, tracked = obj.Name(), true
				}
			}
			if fresh || tracked {
				report(rhs.Pos(), "append on pooled buffer %s: growth breaks the size-class recycling contract (write by index, or annotate //lint:poollifecycle-ok <reason>)", what)
				continue
			}
		}
		switch lhs := ast.Unparen(n.Lhs[i]).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(lhs)
			if obj == nil {
				continue
			}
			if _, ok := f[obj]; !ok || f[obj]&live == 0 {
				continue
			}
			if src := trackedIdent(pass, f, rhs); src == obj {
				continue
			}
			if isSliceOf(pass, rhs, obj) {
				continue
			}
			report(lhs.Pos(), "pooled buffer %s is overwritten while still checked out; the buffer can no longer be returned", obj.Name())
		default:
			if obj := trackedIdent(pass, f, rhs); obj != nil && f[obj]&live != 0 {
				report(n.Pos(), "pooled buffer %s is stored outside the function's scope; the put discipline loses track of it (annotate //lint:poollifecycle-ok <reason>)", obj.Name())
			}
		}
	}
}

// collectOrigins maps every variable assigned from a pool get (directly or
// through a wrapping call) to the position of its first get.
func collectOrigins(pass *analysis.Pass, g *cfg.Graph) map[types.Object]token.Pos {
	origins := map[types.Object]token.Pos{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				continue
			}
			for i := range as.Lhs {
				rhs := ast.Unparen(as.Rhs[i])
				if !isPoolGet(pass, rhs) && !isWrappedGet(pass, rhs) {
					continue
				}
				id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					if _, seen := origins[obj]; !seen {
						origins[obj] = rhs.Pos()
					}
				}
			}
		}
	}
	return origins
}

// trackedIdent returns the tracked object expr denotes, or nil.
func trackedIdent(pass *analysis.Pass, f fact, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if _, ok := f[obj]; !ok {
		return nil
	}
	return obj
}

// isSliceOf reports whether expr is a slice expression over obj itself
// (buf[:n] — same backing buffer).
func isSliceOf(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	sl, ok := ast.Unparen(expr).(*ast.SliceExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sl.X).(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == obj
}

// isPoolGet reports whether expr is a call to one of the pool getters.
func isPoolGet(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	return calleeIn(pass, call, poolGetters)
}

// isWrappedGet reports whether expr is a call that receives a fresh pool
// get as a direct argument — `SortIndicesIn(opt.getInt32s(k), keys)` hands
// the buffer through, so the obligation transfers to the call's result.
func isWrappedGet(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || calleeIn(pass, call, poolGetters) {
		return false
	}
	for _, arg := range call.Args {
		if isPoolGet(pass, arg) {
			return true
		}
	}
	return false
}

// putArgsShallow collects the tracked-or-not objects passed as the buffer
// argument of pool put calls under n, not descending into literals.
func putArgsShallow(pass *analysis.Pass, n ast.Node) []types.Object {
	var out []types.Object
	cfg.InspectShallow(n, func(m ast.Node) bool {
		out = appendPutArg(pass, out, m)
		return true
	})
	return out
}

// putArgsDeep is putArgsShallow descending into literals (for defer).
func putArgsDeep(pass *analysis.Pass, n ast.Node) []types.Object {
	var out []types.Object
	ast.Inspect(n, func(m ast.Node) bool {
		out = appendPutArg(pass, out, m)
		return true
	})
	return out
}

func appendPutArg(pass *analysis.Pass, out []types.Object, m ast.Node) []types.Object {
	call, ok := m.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 || !calleeIn(pass, call, poolPutters) {
		return out
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			out = append(out, obj)
		}
	}
	return out
}

// escapesShallow finds tracked objects placed into composite literals or
// sent on channels under n, mapped to the escape position.
func escapesShallow(pass *analysis.Pass, f fact, n ast.Node) map[types.Object]token.Pos {
	out := map[types.Object]token.Pos{}
	cfg.InspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CompositeLit:
			for _, elt := range m.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if obj := trackedIdent(pass, f, elt); obj != nil {
					out[obj] = elt.Pos()
				}
			}
		case *ast.SendStmt:
			if obj := trackedIdent(pass, f, m.Value); obj != nil {
				out[obj] = m.Pos()
			}
		}
		return true
	})
	return out
}

// capturedDeep finds tracked objects referenced anywhere under n,
// including inside function literals (goroutine captures).
func capturedDeep(pass *analysis.Pass, f fact, n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				if _, tracked := f[obj]; tracked {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// identUses maps tracked objects used under n (shallow) to their first
// use position. Left-hand sides of assignments are rebindings, not uses;
// the caller passes assignment right-hand sides instead of whole nodes.
func identUses(pass *analysis.Pass, f fact, n ast.Node) map[types.Object]token.Pos {
	out := map[types.Object]token.Pos{}
	cfg.InspectShallow(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, tracked := f[obj]; !tracked {
			return true
		}
		if _, seen := out[obj]; !seen {
			out[obj] = id.Pos()
		}
		return true
	})
	return out
}

// appendBase classifies an append call: base is the first argument when it
// is an identifier; fresh reports a direct pool get as first argument.
func appendBase(pass *analysis.Pass, expr ast.Expr) (base *ast.Ident, fresh bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, false
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return nil, false
	}
	switch first := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		return first, false
	case *ast.CallExpr:
		return nil, isPoolGet(pass, first)
	}
	return nil, false
}

// callPos returns a position inside n suitable for reporting a call-level
// finding.
func callPos(n ast.Node) token.Pos { return n.Pos() }

// calleeIn reports whether the call's resolved callee matches one of the
// (package-suffix, name) tables.
func calleeIn(pass *analysis.Pass, call *ast.CallExpr, table map[string]map[string]bool) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	for suffix, names := range table {
		if strings.HasSuffix(fn.Pkg().Path(), suffix) && names[fn.Name()] {
			return true
		}
	}
	return false
}
