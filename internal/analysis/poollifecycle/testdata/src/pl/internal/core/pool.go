// Package core mirrors the pooled-scratch idioms of the real
// internal/core: the package path suffix makes the analyzer treat the
// Options get*/put* methods below as pool accessors, and the imported
// arena package as the pool implementation.
package core

import "holistic/internal/arena"

// Options carries the pool accessors, matching the real core.Options.
type Options struct{}

func (Options) getInt32s(n int) []int32 { return arena.Int32s.Get(n) }
func (Options) putInt32s(b []int32)     { arena.Int32s.Put(b) }
func (Options) getBools(n int) []bool   { return make([]bool, n) }
func (Options) putBools(b []bool)       {}

func use(...any) {}

// wrap stands in for helpers like SortIndicesIn that receive a fresh get
// as a direct argument and hand the buffer through to their result.
func wrap(b []int32) []int32 { return b }

// --- leaks ---

func leakOnOnePath(o Options, cond bool) {
	buf := o.getInt32s(8) // want "not returned to the pool on every path"
	use(buf)
	if cond {
		return
	}
	o.putInt32s(buf)
}

func leakWrappedGet(o Options) {
	idx := wrap(o.getInt32s(8)) // want "not returned to the pool on every path"
	use(idx)
}

func balanced(o Options, cond bool) {
	buf := o.getInt32s(8)
	use(buf)
	if cond {
		o.putInt32s(buf)
		return
	}
	o.putInt32s(buf)
}

func deferredPut(o Options) {
	buf := o.getInt32s(8)
	defer o.putInt32s(buf)
	use(buf)
}

func deferredLiteralPut(o Options) {
	buf := o.getInt32s(8)
	defer func() { o.putInt32s(buf) }()
	use(buf)
}

// Panic paths are exempt from the leak check: the pools are GC-backed.
func panicPathExempt(o Options, bad bool) {
	buf := o.getInt32s(8)
	if bad {
		panic("invariant broken")
	}
	o.putInt32s(buf)
}

// A put inside a loop body covers the loop's own get.
func loopBalanced(o Options, n int) {
	for i := 0; i < n; i++ {
		buf := o.getInt32s(8)
		use(buf, i)
		o.putInt32s(buf)
	}
}

// --- double put / use after put ---

func doublePut(o Options) {
	buf := o.getInt32s(8)
	o.putInt32s(buf)
	o.putInt32s(buf) // want "returned to the pool twice"
}

func putAfterDefer(o Options) {
	buf := o.getInt32s(8)
	defer o.putInt32s(buf)
	use(buf)
	o.putInt32s(buf) // want "returned to the pool twice"
}

func useAfterPut(o Options) {
	buf := o.getInt32s(8)
	o.putInt32s(buf)
	use(buf) // want "used after being returned to the pool"
}

func useOnReleasedPath(o Options, cond bool) {
	buf := o.getInt32s(8)
	if cond {
		o.putInt32s(buf)
	} else {
		o.putInt32s(buf)
	}
	use(buf) // want "used after being returned to the pool"
}

// --- escapes ---

func escapeReturn(o Options) []int32 {
	buf := o.getInt32s(8)
	return buf // want "escapes via return"
}

// Documented hand-offs annotate the return with a reason.
func escapeReturnDocumented(o Options) []int32 {
	buf := o.getInt32s(8)
	//lint:poollifecycle-ok the caller is documented to put the buffer back via putInt32s
	return buf
}

type holder struct{ buf []int32 }

// Escapes hand ownership away, so the escape itself is the finding — the
// buffer is no longer tracked afterwards and the leak check stays quiet.
func escapeFieldStore(o Options, h *holder) {
	buf := o.getInt32s(8)
	h.buf = buf // want "stored outside the function's scope"
}

func escapeCompositeLit(o Options) {
	buf := o.getInt32s(8)
	use(holder{buf: buf}) // want "escapes into a composite literal"
}

func escapeGoroutine(o Options) {
	buf := o.getInt32s(8)
	go func() { // want "captured by a goroutine"
		use(buf)
	}()
}

// Borrowing — passing the buffer as a plain call argument — is fine.
func borrowIsFine(o Options) {
	buf := o.getInt32s(8)
	use(buf)
	o.putInt32s(buf)
}

// --- append and overwrite ---

func appendGrowth(o Options) {
	buf := o.getInt32s(8)
	buf = append(buf, 1) // want "append on pooled buffer"
	o.putInt32s(buf)
}

// The append result still wraps the pooled memory (the call sees a fresh
// get as a direct argument), so the never-put result also leaks.
func appendFreshGet(o Options) {
	buf := append(o.getInt32s(8), 1) // want "append on pooled buffer" "not returned to the pool on every path"
	use(buf)
}

// The overwrite clobbers the only reference, so the overwrite itself is
// the finding; afterwards the buffer is untracked.
func overwriteWhileLive(o Options) {
	buf := o.getInt32s(8)
	use(buf)
	buf = make([]int32, 4) // want "overwritten while still checked out"
	use(buf)
}

// Re-slicing keeps the same backing buffer checked out — not an overwrite.
func resliceIsFine(o Options) {
	buf := o.getInt32s(8)
	buf = buf[:4]
	use(buf)
	o.putInt32s(buf)
}

// Ownership moves with a plain copy; the put through the new name counts.
func ownershipMove(o Options) {
	buf := o.getInt32s(8)
	alias := buf
	use(alias)
	o.putInt32s(alias)
}

// --- function-literal splicing ---

// run stands in for obs.Timed-style helpers that invoke their literal
// argument exactly once; the analyzer splices the body inline.
func run(fn func()) { fn() }

func putInsideCallLiteral(o Options) {
	buf := o.getInt32s(8)
	run(func() {
		use(buf)
		o.putInt32s(buf)
	})
}

func getInsideCallLiteral(o Options) {
	run(func() {
		buf := o.getInt32s(8) // want "not returned to the pool on every path"
		use(buf)
	})
}

// --- directive hygiene ---

func bareDirective(o Options) []int32 {
	buf := o.getInt32s(8)
	//lint:poollifecycle-ok // want "needs a justification"
	return buf
}
