package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) (string, *ParsedMetrics) {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	p, err := ParseText(b.String())
	if err != nil {
		t.Fatalf("ParseText: %v\npayload:\n%s", err, b.String())
	}
	return b.String(), p
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Total requests.", "route", "code")
	g := r.NewGauge("inflight", "In-flight requests.")
	c.With("POST /v1/query", "200").Add(3)
	c.With("POST /v1/query", "400").Inc()
	c.With("GET /v1/healthz", "200").Inc()
	g.With().Set(2)
	g.With().Add(-1)

	text, p := scrape(t, r)
	if p.Types["requests_total"] != "counter" || p.Types["inflight"] != "gauge" {
		t.Fatalf("types = %v", p.Types)
	}
	if v, ok := p.Value("requests_total", "route=POST /v1/query", "code=200"); !ok || v != 3 {
		t.Fatalf("requests 200 = %v %v", v, ok)
	}
	if v, ok := p.Value("requests_total", "route=POST /v1/query", "code=400"); !ok || v != 1 {
		t.Fatalf("requests 400 = %v %v", v, ok)
	}
	if v, ok := p.Value("inflight"); !ok || v != 1 {
		t.Fatalf("inflight = %v %v", v, ok)
	}
	// Counters never go backwards: a negative Add is dropped.
	cc := c.With("POST /v1/query", "200")
	cc.Add(-5)
	if v, _ := p.Value("requests_total", "route=POST /v1/query", "code=200"); v != 3 {
		t.Fatalf("negative add changed parsed snapshot: %v", v)
	}
	_, p2 := scrape(t, r)
	if v, _ := p2.Value("requests_total", "route=POST /v1/query", "code=200"); v != 3 {
		t.Fatalf("negative add applied: %v", v)
	}
	// Deterministic rendering: same registry, same payload.
	text2, _ := scrape(t, r)
	if text != text2 {
		t.Fatalf("non-deterministic exposition:\n%s\nvs\n%s", text, text2)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "route")
	cell := h.With("q")
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		cell.Observe(v)
	}
	_, p := scrape(t, r)
	want := map[string]float64{"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}
	for le, n := range want {
		if v, ok := p.Value("latency_seconds_bucket", "route=q", "le="+le); !ok || v != n {
			t.Fatalf("bucket le=%s = %v %v, want %v", le, v, ok, n)
		}
	}
	if v, _ := p.Value("latency_seconds_count", "route=q"); v != 4 {
		t.Fatalf("count = %v", v)
	}
	if v, _ := p.Value("latency_seconds_sum", "route=q"); math.Abs(v-5.555) > 1e-9 {
		t.Fatalf("sum = %v", v)
	}
	// Boundary value lands in its bucket (le is inclusive).
	cell.Observe(0.01)
	_, p = scrape(t, r)
	if v, _ := p.Value("latency_seconds_bucket", "route=q", "le=0.01"); v != 2 {
		t.Fatalf("inclusive le bucket = %v, want 2", v)
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	hits := 0.0
	r.NewCounterFunc("cache_hits_total", "Cache hits.", []string{"cache"}, func() []Sample {
		return []Sample{{Labels: []string{"tree"}, Value: hits}}
	})
	r.NewGaugeFunc("pool_bytes", "Pool bytes in flight.", []string{"pool"}, func() []Sample {
		return []Sample{
			{Labels: []string{"int32"}, Value: 128},
			{Labels: []string{"int64"}, Value: 256},
		}
	})
	hits = 7
	_, p := scrape(t, r)
	if v, ok := p.Value("cache_hits_total", "cache=tree"); !ok || v != 7 {
		t.Fatalf("cache_hits_total = %v %v", v, ok)
	}
	if v, ok := p.Value("pool_bytes", "pool=int64"); !ok || v != 256 {
		t.Fatalf("pool_bytes = %v %v", v, ok)
	}
}

func TestRegisterSameNameSharesFamily(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("c_total", "x")
	b := r.NewCounter("c_total", "x")
	a.With().Inc()
	b.With().Inc()
	_, p := scrape(t, r)
	if v, _ := p.Value("c_total"); v != 2 {
		t.Fatalf("shared family value = %v, want 2", v)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("weird_total", "x", "q")
	c.With("a\"b\\c\nd").Inc()
	_, p := scrape(t, r)
	if v, ok := p.Value("weird_total", `q=a"b\c`+"\nd"); !ok || v != 1 {
		t.Fatalf("escaped label lost: %v %v (samples %v)", v, ok, p.Samples)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ops_total", "x", "worker")
	h := r.NewHistogram("dur_seconds", "x", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for i := 0; i < 1000; i++ {
				c.With(name).Inc()
				h.With().Observe(0.001)
			}
		}(w)
	}
	wg.Wait()
	_, p := scrape(t, r)
	for w := 0; w < 8; w++ {
		if v, _ := p.Value("ops_total", "worker="+string(rune('a'+w))); v != 1000 {
			t.Fatalf("worker %d = %v", w, v)
		}
	}
	if v, _ := p.Value("dur_seconds_count"); v != 8000 {
		t.Fatalf("histogram count = %v", v)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.0001, 2, 4)
	want := []float64{0.0001, 0.0002, 0.0004, 0.0008}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket[%d] = %v, want %v", i, b[i], want[i])
		}
	}
	if len(DefaultLatencyBuckets) != 18 {
		t.Fatalf("default buckets = %d", len(DefaultLatencyBuckets))
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"no_type_decl 1\n",
		"# TYPE x counter\nx{l=nope} 1\n",
		"# TYPE x counter\nx 1\nx 2\n",
		"# TYPE x wat\n",
		"# TYPE x counter\nx{l=\"unterminated} 1\n",
		"# TYPE x counter\nx notanumber\n",
	}
	for _, c := range cases {
		if _, err := ParseText(c); err == nil {
			t.Fatalf("ParseText accepted %q", c)
		}
	}
}
