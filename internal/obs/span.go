// Package obs is the stdlib-only observability substrate of the query path:
// hierarchical trace spans threaded through the window operator via context
// (span.go, context.go), and a metrics registry with Prometheus text
// exposition (metrics.go, expfmt.go).
//
// The package is designed around one invariant: a nil *Span is a fully
// functional disabled span. Every method no-ops on a nil receiver, so the
// instrumented code carries no "is tracing on" branches and — crucially —
// performs zero allocations when tracing is disabled. The alloc guards in
// internal/core pin that property.
package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are pre-rendered
// strings so reading a finished trace never races with formatting.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed region of execution. Spans form a tree: phases of a
// query, per-function evaluations, parallel worker bodies. Timings use the
// runtime's monotonic clock (time.Now / time.Since), so spans are immune to
// wall-clock steps.
//
// A span is safe for concurrent use: parallel workers may attach children
// and attributes to the same parent simultaneously. A nil *Span is the
// disabled span — every method is a no-op and Child returns nil, so a
// disabled trace costs nothing along the instrumented path.
type Span struct {
	name  string
	phase bool
	start time.Time

	mu       sync.Mutex
	ended    bool
	dur      time.Duration
	attrs    []Attr
	children []*Span
}

// NewSpan starts a new root span.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a new child span under s. On a nil receiver it returns nil,
// so instrumentation chains stay disabled end to end.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Phase starts a child span marked as an aggregation phase: PhaseTotals
// (and core.Profile on top of it) sums phase spans by name, while unmarked
// spans — evaluation groupings, workers, cache probes — only structure the
// tree. The phase names the operator emits are enumerated in DESIGN.md §9.
func (s *Span) Phase(name string) *Span {
	c := s.Child(name)
	if c != nil {
		c.phase = true
	}
	return c
}

// Timed runs fn inside a phase span named name. With a nil receiver fn
// still runs, just untimed.
func (s *Span) Timed(name string, fn func()) {
	if s == nil {
		fn()
		return
	}
	c := s.Phase(name)
	fn()
	c.End()
}

// End finishes the span, fixing its duration. End is idempotent; the first
// call wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Set records a string attribute, replacing an existing value under the
// same key.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.Set(key, strconv.FormatInt(value, 10))
}

// Name returns the span's name; "" on a nil receiver.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// IsPhase reports whether the span is an aggregation phase.
func (s *Span) IsPhase() bool { return s != nil && s.phase }

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Duration returns the span's duration: fixed once ended, the running time
// so far otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Attr returns the value recorded under key, or "" when absent.
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Attrs returns a copy of the span's attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Children returns a copy of the span's direct children in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Walk visits the span and its descendants pre-order, passing each span's
// depth below s.
func (s *Span) Walk(visit func(sp *Span, depth int)) {
	if s == nil {
		return
	}
	s.walk(visit, 0)
}

func (s *Span) walk(visit func(sp *Span, depth int), depth int) {
	visit(s, depth)
	for _, c := range s.Children() {
		c.walk(visit, depth+1)
	}
}

// PhaseTotal is one aggregated phase: total duration of every phase span
// sharing the name.
type PhaseTotal struct {
	Name  string
	Total time.Duration
}

// PhaseTotals aggregates the phase-marked spans of the tree by name, in
// first-seen pre-order — the view core.Profile exposes as Phases.
func (s *Span) PhaseTotals() []PhaseTotal {
	if s == nil {
		return nil
	}
	var order []string
	totals := make(map[string]time.Duration)
	s.Walk(func(sp *Span, _ int) {
		if !sp.IsPhase() {
			return
		}
		if _, ok := totals[sp.name]; !ok {
			order = append(order, sp.name)
		}
		totals[sp.name] += sp.Duration()
	})
	out := make([]PhaseTotal, len(order))
	for i, n := range order {
		out[i] = PhaseTotal{Name: n, Total: totals[n]}
	}
	return out
}

// Render formats the span tree as indented text, one span per line:
//
//	run 12.4ms rows=20000
//	  partition+order sort 4.0ms
//	  eval 8.2ms function=count(distinct) engine=mst
//
// Unfinished spans are marked; attribute order is insertion order.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Walk(func(sp *Span, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		b.WriteString(sp.name)
		fmt.Fprintf(&b, " %v", sp.Duration().Round(time.Microsecond))
		if !sp.Ended() {
			b.WriteString(" (unfinished)")
		}
		for _, a := range sp.Attrs() {
			b.WriteByte(' ')
			b.WriteString(a.Key)
			b.WriteByte('=')
			b.WriteString(a.Value)
		}
		b.WriteByte('\n')
	})
	return b.String()
}
