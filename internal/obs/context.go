package obs

import "context"

// spanKey is the context key spans travel under.
type spanKey struct{}

// ContextWith returns a context carrying the span. Parallel loops pick the
// span up with FromContext to attach per-worker child spans.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the span carried by ctx, tolerating a nil context.
// It returns nil — the disabled span — when none is present.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
