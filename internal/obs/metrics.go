package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric registry: counters, gauges and fixed-bucket histograms with label
// vectors, rendered in the Prometheus text exposition format (version
// 0.0.4) by WriteText. Families render in registration order and series in
// sorted label order, so two scrapes of an idle registry are byte-identical
// — the property the exposition round-trip tests rely on.

// Sample is one series produced by a func-backed metric: label values (in
// the family's label order) and the current value.
type Sample struct {
	Labels []string
	Value  float64
}

// Registry holds metric families. The zero value is not ready; use
// NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

type family struct {
	name, help, typ string
	labels          []string
	buckets         []float64 // histograms only
	sample          func() []Sample

	mu    sync.Mutex
	cells map[string]*cell
}

type cell struct {
	labelValues []string
	val         atomicFloat // counter / gauge value
	// histogram state
	bcounts []atomic.Int64
	sum     atomicFloat
	count   atomic.Int64
}

// atomicFloat is a float64 with atomic Add/Store/Load, for counters that
// accumulate durations and gauges measured in seconds or bytes.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// register appends a family, or returns the existing one under the same
// name (re-registration hands back the same handles, so package-level
// metrics can be declared from multiple constructors safely).
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.fams {
		if have.name == f.name {
			return have
		}
	}
	r.fams = append(r.fams, f)
	return f
}

// NewCounter registers a monotonically increasing counter vector.
func (r *Registry) NewCounter(name, help string, labels ...string) *Counter {
	return &Counter{f: r.register(&family{name: name, help: help, typ: "counter", labels: labels, cells: map[string]*cell{}})}
}

// NewGauge registers a gauge vector.
func (r *Registry) NewGauge(name, help string, labels ...string) *Gauge {
	return &Gauge{f: r.register(&family{name: name, help: help, typ: "gauge", labels: labels, cells: map[string]*cell{}})}
}

// NewHistogram registers a histogram vector with the given bucket upper
// bounds (ascending; the +Inf bucket is implicit). Nil buckets select
// DefaultLatencyBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	return &Histogram{f: r.register(&family{name: name, help: help, typ: "histogram", labels: labels, buckets: buckets, cells: map[string]*cell{}})}
}

// NewCounterFunc registers a counter family whose series are produced by fn
// at scrape time — for counters owned elsewhere (cache statistics, pool and
// arena counters). fn must report monotonically non-decreasing values.
func (r *Registry) NewCounterFunc(name, help string, labels []string, fn func() []Sample) {
	r.register(&family{name: name, help: help, typ: "counter", labels: labels, sample: fn})
}

// NewGaugeFunc registers a gauge family whose series are produced by fn at
// scrape time.
func (r *Registry) NewGaugeFunc(name, help string, labels []string, fn func() []Sample) {
	r.register(&family{name: name, help: help, typ: "gauge", labels: labels, sample: fn})
}

// DefaultLatencyBuckets are the fixed log-scale latency bucket bounds in
// seconds: 100µs doubling up to ~13s. Log-scale bounds keep relative error
// constant across the microsecond-to-seconds range windowd queries span.
var DefaultLatencyBuckets = ExpBuckets(100e-6, 2, 18)

// ExpBuckets returns n bucket bounds growing exponentially from start by
// factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

func (f *family) cell(labelValues []string) *cell {
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.cells[key]
	if !ok {
		c = &cell{labelValues: append([]string(nil), labelValues...)}
		if f.typ == "histogram" {
			c.bcounts = make([]atomic.Int64, len(f.buckets))
		}
		f.cells[key] = c
	}
	return c
}

// Counter is a monotonically increasing metric vector.
type Counter struct{ f *family }

// With resolves the series for the given label values (one per registered
// label name).
func (c *Counter) With(labelValues ...string) *CounterCell {
	return &CounterCell{c.f.cell(labelValues)}
}

// CounterCell is one counter series.
type CounterCell struct{ c *cell }

// Inc adds 1.
func (c *CounterCell) Inc() { c.c.val.Add(1) }

// Add adds v, which must be non-negative (counters are monotonic);
// negative deltas are dropped.
func (c *CounterCell) Add(v float64) {
	if v > 0 {
		c.c.val.Add(v)
	}
}

// Gauge is a point-in-time metric vector.
type Gauge struct{ f *family }

// With resolves the series for the given label values.
func (g *Gauge) With(labelValues ...string) *GaugeCell {
	return &GaugeCell{g.f.cell(labelValues)}
}

// GaugeCell is one gauge series.
type GaugeCell struct{ c *cell }

// Set stores v.
func (g *GaugeCell) Set(v float64) { g.c.val.Store(v) }

// Add adds v (possibly negative).
func (g *GaugeCell) Add(v float64) { g.c.val.Add(v) }

// Histogram is a fixed-bucket histogram vector.
type Histogram struct{ f *family }

// With resolves the series for the given label values.
func (h *Histogram) With(labelValues ...string) *HistogramCell {
	return &HistogramCell{c: h.f.cell(labelValues), buckets: h.f.buckets}
}

// HistogramCell is one histogram series.
type HistogramCell struct {
	c       *cell
	buckets []float64
}

// Observe records one value.
func (h *HistogramCell) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	if i < len(h.buckets) {
		h.c.bcounts[i].Add(1)
	}
	h.c.sum.Add(v)
	h.c.count.Add(1)
}

// WriteText renders every family in the Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		if f.sample != nil {
			for _, s := range f.sample() {
				writeSample(&b, f.name, f.labels, s.Labels, "", "", s.Value)
			}
			continue
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.cells))
		for k := range f.cells {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		cells := make([]*cell, len(keys))
		for i, k := range keys {
			cells[i] = f.cells[k]
		}
		f.mu.Unlock()
		for _, c := range cells {
			if f.typ != "histogram" {
				writeSample(&b, f.name, f.labels, c.labelValues, "", "", c.val.Load())
				continue
			}
			cum := int64(0)
			for i, bound := range f.buckets {
				cum += c.bcounts[i].Load()
				writeSample(&b, f.name+"_bucket", f.labels, c.labelValues, "le", formatFloat(bound), float64(cum))
			}
			total := c.count.Load()
			writeSample(&b, f.name+"_bucket", f.labels, c.labelValues, "le", "+Inf", float64(total))
			writeSample(&b, f.name+"_sum", f.labels, c.labelValues, "", "", c.sum.Load())
			writeSample(&b, f.name+"_count", f.labels, c.labelValues, "", "", float64(total))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample renders one series line; extraKey/extraValue append a
// trailing label (the histogram "le").
func writeSample(b *strings.Builder, name string, labels, values []string, extraKey, extraValue string, v float64) {
	b.WriteString(name)
	n := len(labels)
	if n > len(values) {
		n = len(values)
	}
	if n > 0 || extraKey != "" {
		b.WriteByte('{')
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(labels[i])
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraKey != "" {
			if n > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraKey)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
