package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseText is a strict parser for the Prometheus text exposition format
// subset WriteText emits. It exists so the metrics tests can round-trip a
// scrape — every line must parse, every series must belong to a declared
// family — instead of grepping for substrings.

// ParsedMetrics is the result of parsing one exposition payload.
type ParsedMetrics struct {
	// Types maps family name to its declared type (counter, gauge,
	// histogram).
	Types map[string]string
	// Help maps family name to its HELP text.
	Help map[string]string
	// Samples maps the full series identity — name plus sorted label
	// pairs, e.g. `windowd_requests_total{code="200",route="POST /v1/query"}`
	// — to its value.
	Samples map[string]float64
}

// Value returns the sample for name with the given label pairs
// ("key=value"), and whether it exists. Labels may be given in any order.
func (p *ParsedMetrics) Value(name string, labels ...string) (float64, bool) {
	kv := make(map[string]string, len(labels))
	for _, l := range labels {
		k, v, ok := strings.Cut(l, "=")
		if !ok {
			return 0, false
		}
		kv[k] = v
	}
	v, ok := p.Samples[seriesID(name, kv)]
	return v, ok
}

// seriesID renders the canonical series identity: name{k="v",...} with keys
// sorted.
func seriesID(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sortStrings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// sortStrings is an insertion sort; label sets are tiny and this keeps the
// parser free of package-level sort noise in profiles.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ParseText parses a text exposition payload, validating that every sample
// line belongs to a family declared by a preceding # TYPE line (histogram
// samples may use the _bucket/_sum/_count suffixes of their family).
func ParseText(data string) (*ParsedMetrics, error) {
	p := &ParsedMetrics{
		Types:   map[string]string{},
		Help:    map[string]string{},
		Samples: map[string]float64{},
	}
	for i, line := range strings.Split(data, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := p.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := p.parseSample(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return p, nil
}

func (p *ParsedMetrics) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		p.Help[fields[2]] = help
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if _, dup := p.Types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %q", fields[2])
		}
		p.Types[fields[2]] = fields[3]
	}
	return nil
}

func (p *ParsedMetrics) parseSample(line string) error {
	name, rest, err := scanName(line)
	if err != nil {
		return err
	}
	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		rest, err = scanLabels(rest, labels)
		if err != nil {
			return err
		}
	}
	rest = strings.TrimLeft(rest, " \t")
	// An optional timestamp may follow the value; WriteText never emits
	// one, but accept it for forward compatibility.
	valueField, _, _ := strings.Cut(rest, " ")
	v, err := parseValue(valueField)
	if err != nil {
		return fmt.Errorf("bad value %q: %w", valueField, err)
	}
	if err := p.checkFamily(name); err != nil {
		return err
	}
	id := seriesID(name, labels)
	if _, dup := p.Samples[id]; dup {
		return fmt.Errorf("duplicate series %s", id)
	}
	p.Samples[id] = v
	return nil
}

// checkFamily verifies the sample belongs to a declared family, resolving
// histogram suffixes against a declared histogram type.
func (p *ParsedMetrics) checkFamily(name string) error {
	if _, ok := p.Types[name]; ok {
		return nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suffix)
		if found && p.Types[base] == "histogram" {
			return nil
		}
	}
	return fmt.Errorf("series %q has no preceding # TYPE declaration", name)
}

func scanName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", "", fmt.Errorf("malformed sample line %q", line)
	}
	return line[:i], line[i:], nil
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// scanLabels parses a {k="v",...} block, storing unescaped values.
func scanLabels(s string, out map[string]string) (rest string, err error) {
	s = s[1:] // consume '{'
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return s[1:], nil
		}
		i := 0
		for i < len(s) && isNameChar(s[i], i == 0) {
			i++
		}
		if i == 0 {
			return "", fmt.Errorf("malformed label name at %q", s)
		}
		key := s[:i]
		s = s[i:]
		if !strings.HasPrefix(s, `="`) {
			return "", fmt.Errorf(`expected ="..." after label %q`, key)
		}
		s = s[2:]
		var val strings.Builder
		for {
			if s == "" {
				return "", fmt.Errorf("unterminated label value for %q", key)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if s == "" {
					return "", fmt.Errorf("dangling escape in label %q", key)
				}
				e := s[0]
				s = s[1:]
				switch e {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(e)
				default:
					return "", fmt.Errorf("bad escape \\%c in label %q", e, key)
				}
				continue
			}
			val.WriteByte(c)
		}
		if _, dup := out[key]; dup {
			return "", fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val.String()
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
}

// parseValue parses a sample value; strconv.ParseFloat accepts the +Inf
// and -Inf spellings the exposition format uses.
func parseValue(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}
