package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsDisabled(t *testing.T) {
	var s *Span
	if c := s.Child("x"); c != nil {
		t.Fatalf("nil.Child = %v, want nil", c)
	}
	if c := s.Phase("x"); c != nil {
		t.Fatalf("nil.Phase = %v, want nil", c)
	}
	ran := false
	s.Timed("x", func() { ran = true })
	if !ran {
		t.Fatal("Timed on nil span did not run fn")
	}
	s.End()
	s.Set("k", "v")
	s.SetInt("k", 1)
	if s.Name() != "" || s.IsPhase() || s.Ended() || s.Duration() != 0 || s.Attr("k") != "" {
		t.Fatal("nil span accessors not zero")
	}
	if s.Attrs() != nil || s.Children() != nil || s.PhaseTotals() != nil {
		t.Fatal("nil span slices not nil")
	}
	s.Walk(func(*Span, int) { t.Fatal("Walk visited nil span") })
	if s.Render() != "" {
		t.Fatal("nil span Render not empty")
	}
}

func TestNilSpanZeroAlloc(t *testing.T) {
	var s *Span
	fn := func() {}
	allocs := testing.AllocsPerRun(100, func() {
		c := s.Child("child")
		c.Set("k", "v")
		c.SetInt("n", 7)
		c.End()
		s.Timed("phase", fn)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per run, want 0", allocs)
	}
}

func TestSpanTree(t *testing.T) {
	root := NewSpan("run")
	root.SetInt("rows", 100)
	a := root.Phase("sort")
	time.Sleep(time.Millisecond)
	a.End()
	b := root.Child("eval")
	b.Set("engine", "mst")
	p := b.Phase("probe")
	p.End()
	b.End()
	root.End()

	if !root.Ended() {
		t.Fatal("root not ended")
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "sort" || kids[1].Name() != "eval" {
		t.Fatalf("children = %v", kids)
	}
	if !kids[0].IsPhase() || kids[1].IsPhase() {
		t.Fatal("phase marking wrong")
	}
	if got := b.Attr("engine"); got != "mst" {
		t.Fatalf("Attr(engine) = %q", got)
	}
	if root.Duration() < a.Duration() {
		t.Fatalf("root %v shorter than child %v", root.Duration(), a.Duration())
	}
	// End is idempotent: duration is fixed by the first call.
	d := root.Duration()
	time.Sleep(time.Millisecond)
	root.End()
	if root.Duration() != d {
		t.Fatal("second End changed duration")
	}
}

func TestPhaseTotalsAggregates(t *testing.T) {
	root := NewSpan("run")
	for i := 0; i < 3; i++ {
		eval := root.Child("eval") // structural: must not appear in totals
		eval.Timed("probe", func() { time.Sleep(time.Millisecond) })
		eval.End()
	}
	root.Timed("sort", func() {})
	root.End()

	totals := root.PhaseTotals()
	if len(totals) != 2 {
		t.Fatalf("totals = %+v, want probe+sort", totals)
	}
	if totals[0].Name != "probe" || totals[1].Name != "sort" {
		t.Fatalf("order = %+v", totals)
	}
	if totals[0].Total < 3*time.Millisecond {
		t.Fatalf("probe total %v, want >= 3ms", totals[0].Total)
	}
}

func TestSpanSetReplaces(t *testing.T) {
	s := NewSpan("x")
	s.Set("k", "a")
	s.Set("k", "b")
	if got := s.Attrs(); len(got) != 1 || got[0].Value != "b" {
		t.Fatalf("attrs = %v", got)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("run")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := root.Child("worker")
				c.SetInt("chunk", int64(j))
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 800 {
		t.Fatalf("children = %d, want 800", got)
	}
}

func TestRender(t *testing.T) {
	root := NewSpan("run")
	c := root.Phase("sort")
	c.Set("rows", "5")
	c.End()
	root.Child("open") // left unfinished deliberately
	root.End()
	out := root.Render()
	if !strings.HasPrefix(out, "run ") {
		t.Fatalf("render = %q", out)
	}
	if !strings.Contains(out, "\n  sort ") || !strings.Contains(out, "rows=5") {
		t.Fatalf("render missing child line: %q", out)
	}
	if !strings.Contains(out, "open") || !strings.Contains(out, "(unfinished)") {
		t.Fatalf("render missing unfinished marker: %q", out)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty ctx span = %v", got)
	}
	var nilCtx context.Context
	if got := FromContext(nilCtx); got != nil {
		t.Fatalf("nil ctx span = %v", got)
	}
	s := NewSpan("x")
	ctx := ContextWith(context.Background(), s)
	if got := FromContext(ctx); got != s {
		t.Fatalf("FromContext = %v, want %v", got, s)
	}
	if ctx := ContextWith(nilCtx, s); FromContext(ctx) != s {
		t.Fatal("ContextWith(nil, s) lost span")
	}
}
