// Package incremental implements the competitor evaluation strategies the
// paper measures against merge sort trees: the incremental algorithms of
// Wesley and Xu (PVLDB 2016) and the naive per-frame recomputation (§5.5).
//
// Incremental engines keep an aggregation state (a counting hash table for
// distinct counts, a sorted buffer for percentiles) up to date as tuples
// enter and leave the window frame. That is O(1)–O(w) per row while frames
// overlap, but the state is inherently serial: a task that starts in the
// middle of the input must first rebuild the state of its first frame,
// re-doing O(n) work in the worst case. Under task-based parallelism with
// O(n) tasks this degrades the algorithms to O(n²) (§3.2) — the effect is
// real and measured in Figures 10–12, which is why these engines accept row
// ranges and are driven by the same 20 000-tuple tasks as everything else.
//
// All engines consume preprocessed integer keys (see package preprocess) and
// a FrameFunc that yields each row's continuous frame; non-monotonic frames
// are supported and trigger the add/remove bookkeeping whose overhead
// Figure 12 quantifies.
package incremental

// FrameFunc returns the continuous frame [lo, hi) of a row, already clamped
// to [0, n).
type FrameFunc func(row int) (lo, hi int)

// Window incrementally maintains a frame over positions, calling add/remove
// exactly once per position entering or leaving. It is the sliding-state
// core every incremental competitor shares.
type Window struct {
	lo, hi  int // current [lo, hi); lo == hi means empty
	started bool
}

// Advance moves the window to [lo, hi), invoking the callbacks per position.
// Frames may move backwards (non-monotonic case); the extra bookkeeping per
// re-entering tuple is exactly the overhead the paper describes.
func (w *Window) Advance(lo, hi int, add, remove func(pos int)) {
	if hi < lo {
		hi = lo
	}
	if !w.started {
		w.lo, w.hi = lo, lo
		w.started = true
	}
	// If the new frame is disjoint from the current one, drop everything
	// first so we never add a position twice.
	if lo >= w.hi || hi <= w.lo {
		for p := w.lo; p < w.hi; p++ {
			remove(p)
		}
		w.lo, w.hi = lo, lo
	}
	for w.hi < hi {
		add(w.hi)
		w.hi++
	}
	for w.hi > hi {
		w.hi--
		remove(w.hi)
	}
	for w.lo > lo {
		w.lo--
		add(w.lo)
	}
	for w.lo < lo {
		remove(w.lo)
		w.lo++
	}
}
