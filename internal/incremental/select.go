package incremental

import (
	"math/rand"
	"sort"

	"holistic/internal/ostree"
)

// KthFunc maps a frame size to the 0-based index of the element a selection
// query asks for: percentile_disc(p) uses ceil(p·size)−1, a median size/2,
// nth_value(k) uses k−1. A negative return marks the row's result NULL.
type KthFunc func(size int) int

// SelectKthRange evaluates a framed "k-th smallest value" (percentiles,
// framed value functions) for rows [rowLo, rowHi) with Wesley and Xu's
// incremental strategy: the frame's values are kept in a sorted buffer that
// is updated by binary search plus memmove as tuples enter and leave. Each
// update is O(w), giving the O(n·w) = O(n²) worst case of Table 1 — but very
// small constants, which is why it wins for tiny frames (Figure 11).
// valid[i] is false when the query selects nothing (empty frame).
func SelectKthRange(keys []int64, frame FrameFunc, kth KthFunc, out []int64, valid []bool, rowLo, rowHi int) {
	buf := make([]int64, 0, 1024)
	insert := func(p int) {
		k := keys[p]
		i := sort.Search(len(buf), func(i int) bool { return buf[i] > k })
		buf = append(buf, 0)
		copy(buf[i+1:], buf[i:])
		buf[i] = k
	}
	remove := func(p int) {
		k := keys[p]
		i := sort.Search(len(buf), func(i int) bool { return buf[i] >= k })
		buf = append(buf[:i], buf[i+1:]...)
	}
	var w Window
	for i := rowLo; i < rowHi; i++ {
		lo, hi := frame(i)
		w.Advance(lo, hi, insert, remove)
		k := kth(len(buf))
		if k < 0 || k >= len(buf) {
			valid[i] = false
			continue
		}
		out[i] = buf[k]
		valid[i] = true
	}
}

// SelectKthOSTreeRange is the order-statistic-tree competitor (§5.5): the
// frame is maintained in a counted B-tree, so updates and selections are
// O(log w) — serially optimal, but the per-task state rebuild still costs
// O(w log w), which Figure 11 shows overtaking the merge sort tree once
// frames approach the task size.
func SelectKthOSTreeRange(keys []int64, frame FrameFunc, kth KthFunc, out []int64, valid []bool, rowLo, rowHi int) {
	var tree ostree.Tree
	var w Window
	for i := rowLo; i < rowHi; i++ {
		lo, hi := frame(i)
		w.Advance(lo, hi,
			func(p int) { tree.Insert(keys[p]) },
			func(p int) { tree.Delete(keys[p]) })
		k := kth(tree.Len())
		v, ok := tree.Kth(k)
		if !ok {
			valid[i] = false
			continue
		}
		out[i] = v
		valid[i] = true
	}
}

// SelectKthNaiveRange evaluates the framed selection by copying each frame
// and running quickselect — O(w) per row with no state to rebuild, which
// makes it the most task-parallel-friendly competitor and still O(n·w)
// overall.
func SelectKthNaiveRange(keys []int64, frame FrameFunc, kth KthFunc, out []int64, valid []bool, rowLo, rowHi int) {
	var buf []int64
	rng := rand.New(rand.NewSource(int64(rowLo)*2654435761 + 1))
	for i := rowLo; i < rowHi; i++ {
		lo, hi := frame(i)
		k := kth(hi - lo)
		if k < 0 || k >= hi-lo {
			valid[i] = false
			continue
		}
		buf = append(buf[:0], keys[lo:hi]...)
		out[i] = quickselect(buf, k, rng)
		valid[i] = true
	}
}

// Quickselect returns the k-th smallest element of a, permuting a in place.
// seed feeds the pivot choice; callers pass a per-task constant so runs are
// deterministic.
func Quickselect(a []int64, k int, seed int64) int64 {
	return quickselect(a, k, rand.New(rand.NewSource(seed)))
}

// quickselect returns the k-th smallest element of a, permuting a in place.
func quickselect(a []int64, k int, rng *rand.Rand) int64 {
	lo, hi := 0, len(a) // active range [lo, hi)
	for hi-lo > 1 {
		pivot := a[lo+rng.Intn(hi-lo)]
		// 3-way partition of [lo, hi) around pivot.
		lt, gt := lo, hi
		for i := lo; i < gt; {
			switch {
			case a[i] < pivot:
				a[i], a[lt] = a[lt], a[i]
				lt++
				i++
			case a[i] > pivot:
				gt--
				a[i], a[gt] = a[gt], a[i]
			default:
				i++
			}
		}
		switch {
		case k < lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return pivot
		}
	}
	return a[lo]
}
