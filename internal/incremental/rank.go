package incremental

import "math/rand"

// CountBelowSelfNaiveRange evaluates framed rank-style counts naively:
// out[i] is the number of frame positions p with keys[p] < keys[i]
// (strict=true) or keys[p] <= keys[i] (strict=false). RANK is the strict
// count plus one, ROW_NUMBER the strict count over disambiguated keys plus
// one, CUME_DIST the non-strict count divided by the frame size.
func CountBelowSelfNaiveRange(keys []int64, frame FrameFunc, strict bool, out []int64, rowLo, rowHi int) {
	for i := rowLo; i < rowHi; i++ {
		lo, hi := frame(i)
		self := keys[i]
		cnt := int64(0)
		if strict {
			for p := lo; p < hi; p++ {
				if keys[p] < self {
					cnt++
				}
			}
		} else {
			for p := lo; p < hi; p++ {
				if keys[p] <= self {
					cnt++
				}
			}
		}
		out[i] = cnt
	}
}

// DenseRankNaiveRange evaluates a framed DENSE_RANK naively: out[i] is the
// number of distinct key values inside the frame that are smaller than
// keys[i] (the dense rank minus one).
func DenseRankNaiveRange(keys []int64, frame FrameFunc, out []int64, rowLo, rowHi int) {
	for i := rowLo; i < rowHi; i++ {
		lo, hi := frame(i)
		self := keys[i]
		seen := make(map[int64]struct{}, hi-lo)
		for p := lo; p < hi; p++ {
			if keys[p] < self {
				seen[keys[p]] = struct{}{}
			}
		}
		out[i] = int64(len(seen))
	}
}

// LeadLagNaiveRange evaluates a framed LEAD/LAG with its own ORDER BY
// (§4.6) naively. keys must be unique (position-disambiguated): for each row
// the engine counts the frame keys smaller than the row's own key (its
// 0-based row number in function order), offsets it, and selects the key at
// the adjusted position with quickselect. valid[i] is false when the
// adjusted position leaves the frame or the row itself is outside its frame.
func LeadLagNaiveRange(keys []int64, frame FrameFunc, offset int, out []int64, valid []bool, rowLo, rowHi int) {
	var buf []int64
	rng := rand.New(rand.NewSource(int64(rowLo)*2654435761 + 7))
	for i := rowLo; i < rowHi; i++ {
		lo, hi := frame(i)
		if i < lo || i >= hi {
			valid[i] = false
			continue
		}
		self := keys[i]
		rowno := 0
		for p := lo; p < hi; p++ {
			if keys[p] < self {
				rowno++
			}
		}
		target := rowno + offset
		if target < 0 || target >= hi-lo {
			valid[i] = false
			continue
		}
		buf = append(buf[:0], keys[lo:hi]...)
		out[i] = quickselect(buf, target, rng)
		valid[i] = true
	}
}
