package incremental

// DistinctCountRange evaluates a framed COUNT DISTINCT for rows [rowLo,
// rowHi) with Wesley and Xu's incremental algorithm: a hash table maps each
// key in the current frame to its multiplicity; the distinct count is the
// table's size. The state starts empty, so a mid-input task first pays for
// rebuilding its first frame.
func DistinctCountRange(keys []int64, frame FrameFunc, out []int64, rowLo, rowHi int) {
	counts := make(map[int64]int)
	var w Window
	for i := rowLo; i < rowHi; i++ {
		lo, hi := frame(i)
		w.Advance(lo, hi,
			func(p int) { counts[keys[p]]++ },
			func(p int) {
				if c := counts[keys[p]]; c == 1 {
					delete(counts, keys[p])
				} else {
					counts[keys[p]] = c - 1
				}
			})
		out[i] = int64(len(counts))
	}
}

// DistinctCountNaiveRange evaluates a framed COUNT DISTINCT for rows
// [rowLo, rowHi) by deduplicating every frame from scratch — the O(n·w)
// baseline.
func DistinctCountNaiveRange(keys []int64, frame FrameFunc, out []int64, rowLo, rowHi int) {
	for i := rowLo; i < rowHi; i++ {
		lo, hi := frame(i)
		seen := make(map[int64]struct{}, hi-lo)
		for p := lo; p < hi; p++ {
			seen[keys[p]] = struct{}{}
		}
		out[i] = int64(len(seen))
	}
}

// SumDistinctNaiveRange evaluates a framed SUM(DISTINCT x) naively. valid[i]
// is false when the frame is empty (SQL NULL).
func SumDistinctNaiveRange(keys []int64, values []float64, frame FrameFunc, out []float64, valid []bool, rowLo, rowHi int) {
	for i := rowLo; i < rowHi; i++ {
		lo, hi := frame(i)
		seen := make(map[int64]struct{}, hi-lo)
		sum := 0.0
		for p := lo; p < hi; p++ {
			if _, dup := seen[keys[p]]; dup {
				continue
			}
			seen[keys[p]] = struct{}{}
			sum += values[p]
		}
		out[i] = sum
		valid[i] = hi > lo
	}
}
