package incremental

import (
	"math/rand"
	"slices"
	"testing"
)

// slidingFrame builds a ROWS BETWEEN w-1 PRECEDING AND CURRENT ROW frame.
func slidingFrame(n, w int) FrameFunc {
	return func(i int) (int, int) {
		lo := i - w + 1
		if lo < 0 {
			lo = 0
		}
		return lo, i + 1
	}
}

// jumpyFrame builds the non-monotonic frame family of §6.5.
func jumpyFrame(keys []int64, n int) FrameFunc {
	return func(i int) (int, int) {
		h := int(keys[i] * 7703 % 499)
		lo := i - h
		hi := i + (500 - h) + 1
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		if hi < lo {
			hi = lo
		}
		return lo, hi
	}
}

func refDistinct(keys []int64, lo, hi int) int64 {
	seen := make(map[int64]struct{})
	for p := lo; p < hi; p++ {
		seen[keys[p]] = struct{}{}
	}
	return int64(len(seen))
}

func TestDistinctCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 3000
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(40)
	}
	for _, frame := range []FrameFunc{slidingFrame(n, 1), slidingFrame(n, 97), jumpyFrame(keys, n)} {
		inc := make([]int64, n)
		DistinctCountRange(keys, frame, inc, 0, n)
		naive := make([]int64, n)
		DistinctCountNaiveRange(keys, frame, naive, 0, n)
		for i := 0; i < n; i++ {
			lo, hi := frame(i)
			want := refDistinct(keys, lo, hi)
			if inc[i] != want {
				t.Fatalf("incremental row %d: got %d want %d", i, inc[i], want)
			}
			if naive[i] != want {
				t.Fatalf("naive row %d: got %d want %d", i, naive[i], want)
			}
		}
	}
}

func TestDistinctCountTaskBoundaries(t *testing.T) {
	// Evaluating in separate row ranges must give identical results to one
	// pass — each task rebuilds its own state.
	rng := rand.New(rand.NewSource(2))
	n := 1000
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(25)
	}
	frame := slidingFrame(n, 113)
	whole := make([]int64, n)
	DistinctCountRange(keys, frame, whole, 0, n)
	chunked := make([]int64, n)
	for lo := 0; lo < n; lo += 97 {
		hi := min(lo+97, n)
		DistinctCountRange(keys, frame, chunked, lo, hi)
	}
	if !slices.Equal(whole, chunked) {
		t.Fatal("task-chunked evaluation differs from single pass")
	}
}

func refKth(keys []int64, lo, hi, k int) (int64, bool) {
	if k < 0 || k >= hi-lo {
		return 0, false
	}
	buf := slices.Clone(keys[lo:hi])
	slices.Sort(buf)
	return buf[k], true
}

func TestSelectEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	keys := make([]int64, n)
	for i := range keys {
		// Unique keys (position-disambiguated), as the operator provides.
		keys[i] = rng.Int63n(50)*int64(n) + int64(i)
	}
	median := func(size int) int { return (size - 1) / 2 }
	p90 := func(size int) int {
		if size == 0 {
			return -1
		}
		return (size*90+99)/100 - 1
	}
	engines := map[string]func(FrameFunc, KthFunc, []int64, []bool){
		"incremental": func(f FrameFunc, k KthFunc, out []int64, valid []bool) {
			SelectKthRange(keys, f, k, out, valid, 0, n)
		},
		"ostree": func(f FrameFunc, k KthFunc, out []int64, valid []bool) {
			SelectKthOSTreeRange(keys, f, k, out, valid, 0, n)
		},
		"naive": func(f FrameFunc, k KthFunc, out []int64, valid []bool) {
			SelectKthNaiveRange(keys, f, k, out, valid, 0, n)
		},
	}
	for _, kth := range []KthFunc{median, p90} {
		for _, frame := range []FrameFunc{slidingFrame(n, 1), slidingFrame(n, 301), jumpyFrame(keys, n)} {
			for name, run := range engines {
				out := make([]int64, n)
				valid := make([]bool, n)
				run(frame, kth, out, valid)
				for i := 0; i < n; i++ {
					lo, hi := frame(i)
					want, wantOK := refKth(keys, lo, hi, kth(hi-lo))
					if valid[i] != wantOK || (wantOK && out[i] != want) {
						t.Fatalf("%s row %d: got (%d,%v) want (%d,%v)", name, i, out[i], valid[i], want, wantOK)
					}
				}
			}
		}
	}
}

func TestSelectChunkedMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 800
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(100)*1000 + int64(i)
	}
	frame := slidingFrame(n, 59)
	kth := func(size int) int { return size / 2 }
	whole := make([]int64, n)
	wholeV := make([]bool, n)
	SelectKthRange(keys, frame, kth, whole, wholeV, 0, n)
	chunk := make([]int64, n)
	chunkV := make([]bool, n)
	for lo := 0; lo < n; lo += 131 {
		SelectKthRange(keys, frame, kth, chunk, chunkV, lo, min(lo+131, n))
	}
	if !slices.Equal(whole, chunk) || !slices.Equal(wholeV, chunkV) {
		t.Fatal("chunked select differs from whole pass")
	}
}

func TestCountBelowSelfNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 500
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(20)
	}
	frame := slidingFrame(n, 73)
	strict := make([]int64, n)
	CountBelowSelfNaiveRange(keys, frame, true, strict, 0, n)
	nonStrict := make([]int64, n)
	CountBelowSelfNaiveRange(keys, frame, false, nonStrict, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := frame(i)
		ws, wn := int64(0), int64(0)
		for p := lo; p < hi; p++ {
			if keys[p] < keys[i] {
				ws++
			}
			if keys[p] <= keys[i] {
				wn++
			}
		}
		if strict[i] != ws || nonStrict[i] != wn {
			t.Fatalf("row %d: got (%d,%d) want (%d,%d)", i, strict[i], nonStrict[i], ws, wn)
		}
	}
}

func TestDenseRankNaive(t *testing.T) {
	keys := []int64{5, 3, 3, 8, 5, 1, 3}
	n := len(keys)
	out := make([]int64, n)
	DenseRankNaiveRange(keys, func(int) (int, int) { return 0, n }, out, 0, n)
	want := []int64{2, 1, 1, 3, 2, 0, 1}
	if !slices.Equal(out, want) {
		t.Fatalf("dense rank = %v, want %v", out, want)
	}
}

func TestLeadLagNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 400
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(30)*int64(n) + int64(i) // unique
	}
	frame := slidingFrame(n, 41)
	for _, offset := range []int{-2, -1, 0, 1, 3} {
		out := make([]int64, n)
		valid := make([]bool, n)
		LeadLagNaiveRange(keys, frame, offset, out, valid, 0, n)
		for i := 0; i < n; i++ {
			lo, hi := frame(i)
			sorted := slices.Clone(keys[lo:hi])
			slices.Sort(sorted)
			rowno, _ := slices.BinarySearch(sorted, keys[i])
			target := rowno + offset
			if target < 0 || target >= len(sorted) {
				if valid[i] {
					t.Fatalf("offset %d row %d: expected NULL", offset, i)
				}
				continue
			}
			if !valid[i] || out[i] != sorted[target] {
				t.Fatalf("offset %d row %d: got (%d,%v) want %d", offset, i, out[i], valid[i], sorted[target])
			}
		}
	}
}

func TestWindowAdvanceDisjointJump(t *testing.T) {
	// A frame jumping to a disjoint range must fully drain the old one.
	adds, removes := map[int]int{}, map[int]int{}
	var w Window
	w.Advance(0, 5, func(p int) { adds[p]++ }, func(p int) { removes[p]++ })
	w.Advance(10, 12, func(p int) { adds[p]++ }, func(p int) { removes[p]++ })
	w.Advance(3, 4, func(p int) { adds[p]++ }, func(p int) { removes[p]++ })
	for p := 0; p < 15; p++ {
		inFinal := p == 3
		net := adds[p] - removes[p]
		want := 0
		if inFinal {
			want = 1
		}
		if net != want {
			t.Fatalf("position %d: net membership %d, want %d", p, net, want)
		}
		if adds[p] < removes[p] {
			t.Fatalf("position %d removed more often than added", p)
		}
	}
}

func TestSumDistinctNaive(t *testing.T) {
	keys := []int64{1, 2, 1, 3, 2}
	values := []float64{10, 20, 11, 30, 21}
	n := len(keys)
	out := make([]float64, n)
	valid := make([]bool, n)
	SumDistinctNaiveRange(keys, values, func(i int) (int, int) { return 0, i + 1 }, out, valid, 0, n)
	// First occurrence wins within the frame scan.
	want := []float64{10, 30, 30, 60, 60}
	for i := range want {
		if !valid[i] || out[i] != want[i] {
			t.Fatalf("row %d: got (%v,%v) want %v", i, out[i], valid[i], want[i])
		}
	}
}
