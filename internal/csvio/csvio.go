// Package csvio reads and writes core tables as CSV with type inference,
// shared by the command-line tools. Column types are inferred from the
// data: INT64, then ISO dates (stored as days since the Unix epoch), then
// FLOAT64, then STRING; empty cells become SQL NULLs.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"holistic/internal/core"
)

// dateFormat is the accepted date layout.
const dateFormat = "2006-01-02"

var epoch = time.Unix(0, 0).UTC()

// DayToDate renders a days-since-epoch value as an ISO date.
func DayToDate(day int64) string {
	return epoch.AddDate(0, 0, int(day)).Format(dateFormat)
}

// DateToDay parses an ISO date into days since the epoch.
func DateToDay(s string) (int64, error) {
	d, err := time.Parse(dateFormat, s)
	if err != nil {
		return 0, err
	}
	return int64(d.Sub(epoch).Hours() / 24), nil
}

// File couples a loaded table with its rendering layout: which columns were
// parsed from ISO dates (and are stored as day numbers), so writing renders
// them back as dates.
type File struct {
	Table *core.Table
	// DateColumns marks columns parsed from ISO dates.
	DateColumns map[string]bool
}

// Read loads a CSV (header row required) into a table, inferring column
// types.
func Read(r io.Reader) (*File, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csvio: empty input (missing header row)")
	}
	header := records[0]
	rows := records[1:]
	n := len(rows)
	dateCols := map[string]bool{}
	cols := make([]*core.Column, len(header))
	for c, name := range header {
		isInt, isFloat, isDate := true, true, true
		sawValue := false
		for _, row := range rows {
			v := row[c]
			if v == "" {
				continue
			}
			sawValue = true
			if isInt {
				if _, e := strconv.ParseInt(v, 10, 64); e != nil {
					isInt = false
				}
			}
			if isFloat {
				if _, e := strconv.ParseFloat(v, 64); e != nil {
					isFloat = false
				}
			}
			if isDate {
				if _, e := time.Parse(dateFormat, v); e != nil {
					isDate = false
				}
			}
			if !isInt && !isFloat && !isDate {
				break
			}
		}
		nulls := make([]bool, n)
		hasNull := false
		for i, row := range rows {
			if row[c] == "" {
				nulls[i] = true
				hasNull = true
			}
		}
		if !hasNull {
			nulls = nil
		}
		switch {
		case isInt && sawValue:
			vals := make([]int64, n)
			for i, row := range rows {
				if row[c] != "" {
					vals[i], _ = strconv.ParseInt(row[c], 10, 64)
				}
			}
			cols[c] = core.NewInt64Column(name, vals, nulls)
		case isDate && sawValue:
			vals := make([]int64, n)
			for i, row := range rows {
				if row[c] != "" {
					vals[i], _ = DateToDay(row[c])
				}
			}
			cols[c] = core.NewInt64Column(name, vals, nulls)
			dateCols[name] = true
		case isFloat && sawValue:
			vals := make([]float64, n)
			for i, row := range rows {
				if row[c] != "" {
					vals[i], _ = strconv.ParseFloat(row[c], 64)
				}
			}
			cols[c] = core.NewFloat64Column(name, vals, nulls)
		default:
			// CSV cannot distinguish the empty string from NULL; empty
			// cells are treated as NULL for every type, strings included.
			vals := make([]string, n)
			for i, row := range rows {
				vals[i] = row[c]
			}
			cols[c] = core.NewStringColumn(name, vals, nulls)
		}
	}
	table, err := core.NewTable(cols...)
	if err != nil {
		return nil, err
	}
	return &File{Table: table, DateColumns: dateCols}, nil
}

// Write renders a table as CSV with a header row. NULLs become empty cells.
// dateColumns (may be nil) marks INT64 columns rendered as ISO dates.
func Write(w io.Writer, t *core.Table, dateColumns map[string]bool) error {
	cw := csv.NewWriter(w)
	cols := t.Columns()
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = c.Name()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(cols))
	for i := 0; i < t.Rows(); i++ {
		for c, col := range cols {
			if dateColumns[col.Name()] && col.Kind() == core.Int64 && !col.IsNull(i) {
				row[c] = DayToDate(col.Int64(i))
				continue
			}
			row[c] = FormatCell(col, i)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatCell renders one value; NULL renders as the empty string.
func FormatCell(col *core.Column, i int) string {
	if col.IsNull(i) {
		return ""
	}
	switch col.Kind() {
	case core.Int64:
		return strconv.FormatInt(col.Int64(i), 10)
	case core.Float64:
		return strconv.FormatFloat(col.Float64(i), 'g', -1, 64)
	case core.String:
		return col.StringAt(i)
	default:
		return strconv.FormatBool(col.Bool(i))
	}
}
