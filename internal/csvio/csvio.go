// Package csvio reads and writes core tables as CSV with type inference,
// shared by the command-line tools and the chunked ingester. Column types
// are inferred from the data: INT64, then ISO dates (stored as days since
// the Unix epoch), then FLOAT64, then STRING; empty cells become SQL NULLs.
//
// The inference state (ColFlags) and the strict row-to-column conversion
// (BuildColumns) are exported so internal/ingest can split the two phases:
// a sequential planning pass infers whole-file flags, then parallel workers
// parse disjoint row ranges under those fixed flags — guaranteeing every
// worker agrees on the schema regardless of which rows it saw.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"holistic/internal/core"
)

// dateFormat is the accepted date layout.
const dateFormat = "2006-01-02"

var epoch = time.Unix(0, 0).UTC()

// DayToDate renders a days-since-epoch value as an ISO date.
func DayToDate(day int64) string {
	return epoch.AddDate(0, 0, int(day)).Format(dateFormat)
}

// DateToDay parses an ISO date into days since the epoch.
func DateToDay(s string) (int64, error) {
	d, err := time.Parse(dateFormat, s)
	if err != nil {
		return 0, err
	}
	return int64(d.Sub(epoch).Hours() / 24), nil
}

// File couples a loaded table with its rendering layout: which columns were
// parsed from ISO dates (and are stored as day numbers), so writing renders
// them back as dates.
type File struct {
	Table *core.Table
	// DateColumns marks columns parsed from ISO dates.
	DateColumns map[string]bool
}

// ColFlags is the streaming type-inference state for one column. Observe
// every non-empty cell, then the narrowest surviving flag (int, then date,
// then float) decides the column type; a column with no surviving flag — or
// no values at all — is a string column. Flags from disjoint row ranges
// combine with Merge, so inference distributes over chunks.
type ColFlags struct {
	IsInt, IsFloat, IsDate bool
	// SawValue records whether any non-empty cell was observed; an all-NULL
	// column types as STRING.
	SawValue bool
}

// NewColFlags returns the initial state: every type still possible.
func NewColFlags() ColFlags {
	return ColFlags{IsInt: true, IsFloat: true, IsDate: true}
}

// Observe folds one cell into the inference state. Empty cells are NULLs
// and carry no type evidence.
func (f *ColFlags) Observe(v string) {
	if v == "" {
		return
	}
	f.SawValue = true
	if f.IsInt {
		if _, e := strconv.ParseInt(v, 10, 64); e != nil {
			f.IsInt = false
		}
	}
	if f.IsFloat {
		if _, e := strconv.ParseFloat(v, 64); e != nil {
			f.IsFloat = false
		}
	}
	if f.IsDate {
		if _, e := time.Parse(dateFormat, v); e != nil {
			f.IsDate = false
		}
	}
}

// Merge combines inference states from disjoint row ranges: a type survives
// only if it survived in both, and a value was seen if either saw one.
func (f *ColFlags) Merge(g ColFlags) {
	f.IsInt = f.IsInt && g.IsInt
	f.IsFloat = f.IsFloat && g.IsFloat
	f.IsDate = f.IsDate && g.IsDate
	f.SawValue = f.SawValue || g.SawValue
}

// cellError wraps a parse failure with its source location, naming the line
// and the column so a failure deep inside a multi-gigabyte ingest pinpoints
// the offending cell.
func cellError(line int, column string, err error) error {
	return fmt.Errorf("csvio: line %d, column %q: %w", line, column, err)
}

// BuildColumns converts parsed CSV rows into typed columns under the given
// per-column flags. The flags normally come from inference over a superset
// of rows (the whole file), so parsing is strict: a cell that contradicts
// its column's inferred type is an error, reported with the cell's source
// line and column name. lines[i] is the 1-based source line of row i; a nil
// lines slice numbers rows from 2 (row 0 follows a header on line 1).
//
// The second result marks date columns, matching File.DateColumns.
func BuildColumns(header []string, rows [][]string, flags []ColFlags, lines []int) ([]*core.Column, map[string]bool, error) {
	if len(flags) != len(header) {
		return nil, nil, fmt.Errorf("csvio: %d columns but %d flag entries", len(header), len(flags))
	}
	lineOf := func(i int) int {
		if lines != nil {
			return lines[i]
		}
		return i + 2
	}
	n := len(rows)
	dateCols := map[string]bool{}
	cols := make([]*core.Column, len(header))
	for c, name := range header {
		f := flags[c]
		nulls := make([]bool, n)
		hasNull := false
		for i, row := range rows {
			if row[c] == "" {
				nulls[i] = true
				hasNull = true
			}
		}
		if !hasNull {
			nulls = nil
		}
		switch {
		case f.IsInt && f.SawValue:
			vals := make([]int64, n)
			for i, row := range rows {
				if row[c] == "" {
					continue
				}
				v, err := strconv.ParseInt(row[c], 10, 64)
				if err != nil {
					return nil, nil, cellError(lineOf(i), name, err)
				}
				vals[i] = v
			}
			cols[c] = core.NewInt64Column(name, vals, nulls)
		case f.IsDate && f.SawValue:
			vals := make([]int64, n)
			for i, row := range rows {
				if row[c] == "" {
					continue
				}
				v, err := DateToDay(row[c])
				if err != nil {
					return nil, nil, cellError(lineOf(i), name, err)
				}
				vals[i] = v
			}
			cols[c] = core.NewInt64Column(name, vals, nulls)
			dateCols[name] = true
		case f.IsFloat && f.SawValue:
			vals := make([]float64, n)
			for i, row := range rows {
				if row[c] == "" {
					continue
				}
				v, err := strconv.ParseFloat(row[c], 64)
				if err != nil {
					return nil, nil, cellError(lineOf(i), name, err)
				}
				vals[i] = v
			}
			cols[c] = core.NewFloat64Column(name, vals, nulls)
		default:
			// CSV cannot distinguish the empty string from NULL; empty
			// cells are treated as NULL for every type, strings included.
			vals := make([]string, n)
			for i, row := range rows {
				vals[i] = row[c]
			}
			cols[c] = core.NewStringColumn(name, vals, nulls)
		}
	}
	return cols, dateCols, nil
}

// Read loads a CSV (header row required) into a table, inferring column
// types.
func Read(r io.Reader) (*File, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("csvio: empty input (missing header row)")
	}
	if err != nil {
		return nil, err
	}
	var rows [][]string
	var lines []int
	flags := make([]ColFlags, len(header))
	for c := range flags {
		flags[c] = NewColFlags()
	}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line, _ := cr.FieldPos(0)
		lines = append(lines, line)
		for c, v := range row {
			flags[c].Observe(v)
		}
		rows = append(rows, row)
	}
	cols, dateCols, err := BuildColumns(header, rows, flags, lines)
	if err != nil {
		return nil, err
	}
	table, err := core.NewTable(cols...)
	if err != nil {
		return nil, err
	}
	return &File{Table: table, DateColumns: dateCols}, nil
}

// Write renders a table as CSV with a header row. NULLs become empty cells.
// dateColumns (may be nil) marks INT64 columns rendered as ISO dates.
func Write(w io.Writer, t *core.Table, dateColumns map[string]bool) error {
	cw := csv.NewWriter(w)
	cols := t.Columns()
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = c.Name()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(cols))
	for i := 0; i < t.Rows(); i++ {
		for c, col := range cols {
			if dateColumns[col.Name()] && col.Kind() == core.Int64 && !col.IsNull(i) {
				row[c] = DayToDate(col.Int64(i))
				continue
			}
			row[c] = FormatCell(col, i)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatCell renders one value; NULL renders as the empty string.
func FormatCell(col *core.Column, i int) string {
	if col.IsNull(i) {
		return ""
	}
	switch col.Kind() {
	case core.Int64:
		return strconv.FormatInt(col.Int64(i), 10)
	case core.Float64:
		return strconv.FormatFloat(col.Float64(i), 'g', -1, 64)
	case core.String:
		return col.StringAt(i)
	default:
		return strconv.FormatBool(col.Bool(i))
	}
}
