package csvio

import (
	"bytes"
	"strings"
	"testing"

	"holistic/internal/core"
)

func TestTypeInference(t *testing.T) {
	src := `i,f,d,s,mixed
1,1.5,2024-01-01,abc,1
-2,2,2024-02-29,def,
3,.25,1969-12-31,7up,2.5
`
	f, err := Read(strings.NewReader(src))
	table := f.Table
	if err != nil {
		t.Fatal(err)
	}
	if table.Rows() != 3 {
		t.Fatalf("rows = %d", table.Rows())
	}
	if k := table.Column("i").Kind(); k != core.Int64 {
		t.Fatalf("i inferred as %v", k)
	}
	if k := table.Column("f").Kind(); k != core.Float64 {
		t.Fatalf("f inferred as %v", k)
	}
	if k := table.Column("d").Kind(); k != core.Int64 {
		t.Fatalf("d (dates) inferred as %v", k)
	}
	if k := table.Column("s").Kind(); k != core.String {
		t.Fatalf("s inferred as %v", k)
	}
	// "mixed" holds 1 and 2.5 -> float, with a NULL in between.
	if k := table.Column("mixed").Kind(); k != core.Float64 {
		t.Fatalf("mixed inferred as %v", k)
	}
	if !table.Column("mixed").IsNull(1) {
		t.Fatal("empty cell must be NULL")
	}
	if table.Column("i").Int64(1) != -2 {
		t.Fatal("int parse wrong")
	}
	// Dates become day numbers; 1969-12-31 is day -1.
	if table.Column("d").Int64(2) != -1 {
		t.Fatalf("date day = %d, want -1", table.Column("d").Int64(2))
	}
}

func TestDateHelpers(t *testing.T) {
	day, err := DateToDay("1970-01-02")
	if err != nil || day != 1 {
		t.Fatalf("DateToDay = (%d, %v)", day, err)
	}
	if got := DayToDate(day); got != "1970-01-02" {
		t.Fatalf("DayToDate = %q", got)
	}
	for _, d := range []string{"1970-01-01", "2000-02-29", "1992-06-11", "2038-01-19"} {
		day, err := DateToDay(d)
		if err != nil {
			t.Fatal(err)
		}
		if DayToDate(day) != d {
			t.Fatalf("round trip of %s failed: %s", d, DayToDate(day))
		}
	}
}

func TestRoundTrip(t *testing.T) {
	table := core.MustNewTable(
		core.NewInt64Column("a", []int64{1, 2, 0}, []bool{false, false, true}),
		core.NewFloat64Column("b", []float64{1.25, 0, -3}, []bool{false, true, false}),
		core.NewStringColumn("c", []string{"x", "y,z", `qu"ote`}, nil),
		core.NewBoolColumn("d", []bool{true, false, true}, nil),
	)
	var buf bytes.Buffer
	if err := Write(&buf, table, nil); err != nil {
		t.Fatal(err)
	}
	bf, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back := bf.Table
	if back.Rows() != 3 {
		t.Fatalf("rows = %d", back.Rows())
	}
	if !back.Column("a").IsNull(2) || back.Column("a").Int64(1) != 2 {
		t.Fatal("int column round trip failed")
	}
	if !back.Column("b").IsNull(1) || back.Column("b").Float64(0) != 1.25 {
		t.Fatal("float column round trip failed")
	}
	if back.Column("c").StringAt(1) != "y,z" || back.Column("c").StringAt(2) != `qu"ote` {
		t.Fatal("string quoting round trip failed")
	}
	// Bools come back as strings ("true"/"false") — CSV has no bool type.
	if back.Column("d").Kind() != core.String || back.Column("d").StringAt(0) != "true" {
		t.Fatal("bool rendering failed")
	}
}

func TestEmptyAndErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input must fail")
	}
	// Header only: zero-row table with string columns (no data to infer).
	f2, err := Read(strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f2.Table.Rows() != 0 || f2.Table.Column("a") == nil {
		t.Fatal("header-only input mishandled")
	}
	// Ragged rows are a CSV error.
	if _, err := Read(strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("ragged input must fail")
	}
}

func TestAllNullColumnDefaultsToString(t *testing.T) {
	// encoding/csv skips blank lines, so anchor the empty column with a
	// second, populated one.
	f3, err := Read(strings.NewReader("a,b\n,1\n,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	table3 := f3.Table
	if table3.Rows() != 2 {
		t.Fatalf("rows = %d", table3.Rows())
	}
	if table3.Column("a").Kind() != core.String {
		t.Fatalf("all-empty column inferred as %v", table3.Column("a").Kind())
	}
	if !table3.Column("a").IsNull(0) || !table3.Column("a").IsNull(1) {
		t.Fatal("empty cells must stay NULL")
	}
}

func TestDateColumnsRenderAsDates(t *testing.T) {
	src := "d,v\n1995-06-22,1\n1995-05-09,2\n"
	f, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !f.DateColumns["d"] || f.DateColumns["v"] {
		t.Fatalf("date detection wrong: %v", f.DateColumns)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f.Table, f.DateColumns); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != src {
		t.Fatalf("date round trip:\n%q !=\n%q", got, src)
	}
}

func TestMalformedInputErrorsNotPanics(t *testing.T) {
	cases := []string{
		"a,b\n\"unterminated,1\n", // unclosed quote
		"a,b\n1,2,3\n",            // too many fields
		"a,b\n1,2\n3\n",           // too few fields mid-file
		"a\"b,c\n1,2\n",           // bare quote in header
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", src)
		}
	}
}

func TestNullRoundTripAllKinds(t *testing.T) {
	src := "i,f,s,d\n" +
		"1,1.5,x,2024-03-01\n" +
		",,,\n" + // all NULL row
		"3,2.5,z,2024-03-03\n"
	f, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"i", "f", "s", "d"} {
		col := f.Table.Column(name)
		if !col.IsNull(1) {
			t.Errorf("column %s row 1 not NULL", name)
		}
		if col.IsNull(0) || col.IsNull(2) {
			t.Errorf("column %s has spurious NULLs", name)
		}
	}
	if f.Table.Column("i").Kind() != core.Int64 ||
		f.Table.Column("f").Kind() != core.Float64 ||
		f.Table.Column("s").Kind() != core.String ||
		!f.DateColumns["d"] {
		t.Fatal("kinds not preserved around NULL row")
	}
	var buf bytes.Buffer
	if err := Write(&buf, f.Table, f.DateColumns); err != nil {
		t.Fatal(err)
	}
	if buf.String() != src {
		t.Fatalf("NULL round trip:\n%q !=\n%q", buf.String(), src)
	}
}

func TestInferenceConflictsDowngrade(t *testing.T) {
	// A type conflict downgrades the column to the widest type that still
	// parses every value — never an error, never a panic.
	cases := []struct {
		src  string
		want core.Kind
	}{
		{"c\n1\n2.5\n", core.Float64},                // int then float
		{"c\n1\nabc\n", core.String},                 // int then word
		{"c\n2024-01-01\n5\n", core.String},          // date then int
		{"c\n2024-01-01\n2024-13-99\n", core.String}, // date then bad date
		{"c\n9223372036854775807\n", core.Int64},     // max int64 stays int
		{"c\n9223372036854775808\n", core.Float64},   // overflow falls to float
		{"c\n1e3\n2\n", core.Float64},                // scientific notation
	}
	for _, tc := range cases {
		f, err := Read(strings.NewReader(tc.src))
		if err != nil {
			t.Errorf("Read(%q): %v", tc.src, err)
			continue
		}
		if got := f.Table.Column("c").Kind(); got != tc.want {
			t.Errorf("Read(%q): inferred %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestBuildColumnsErrorContext(t *testing.T) {
	// Strict parsing under fixed flags (the ingest worker path) must report
	// the offending cell as `line N, column "x"`.
	header := []string{"a", "v"}
	rows := [][]string{{"1", "x"}, {"oops", "y"}}
	flags := []ColFlags{{IsInt: true, SawValue: true}, {SawValue: true}}
	_, _, err := BuildColumns(header, rows, flags, nil)
	if err == nil {
		t.Fatal("contradicting cell must error")
	}
	if !strings.Contains(err.Error(), `line 3, column "a"`) {
		t.Fatalf("error %q lacks line/column context", err)
	}
	// An explicit line table overrides the default numbering.
	_, _, err = BuildColumns(header, rows, flags, []int{10, 42})
	if err == nil || !strings.Contains(err.Error(), `line 42, column "a"`) {
		t.Fatalf("error %q ignores the line table", err)
	}
	// Same contract for dates and floats.
	dflags := []ColFlags{{IsDate: true, SawValue: true}, {SawValue: true}}
	_, _, err = BuildColumns(header, [][]string{{"2024-13-99", "x"}}, dflags, nil)
	if err == nil || !strings.Contains(err.Error(), `line 2, column "a"`) {
		t.Fatalf("date error %q lacks context", err)
	}
	fflags := []ColFlags{{IsFloat: true, SawValue: true}}
	_, _, err = BuildColumns(header[:1], [][]string{{"1.5"}, {"nope"}}, fflags, nil)
	if err == nil || !strings.Contains(err.Error(), `line 3, column "a"`) {
		t.Fatalf("float error %q lacks context", err)
	}
	if _, _, err := BuildColumns(header, rows, flags[:1], nil); err == nil {
		t.Fatal("flag/header arity mismatch must error")
	}
}

func TestColFlagsMerge(t *testing.T) {
	// Merging per-chunk inference states must equal inferring over the
	// concatenation — the property the two-phase ingester relies on.
	chunks := [][]string{{"1", "2"}, {"3.5", ""}}
	whole := NewColFlags()
	merged := NewColFlags()
	first := true
	for _, ch := range chunks {
		part := NewColFlags()
		for _, v := range ch {
			part.Observe(v)
			whole.Observe(v)
		}
		if first {
			merged, first = part, false
		} else {
			merged.Merge(part)
		}
	}
	if merged != whole {
		t.Fatalf("merged %+v != whole-scan %+v", merged, whole)
	}
	if merged.IsInt || !merged.IsFloat || merged.IsDate || !merged.SawValue {
		t.Fatalf("unexpected inference outcome %+v", merged)
	}
}

func TestDuplicateHeaderErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("a,a\n1,2\n")); err == nil {
		t.Fatal("duplicate header must error, not shadow a column")
	}
}
