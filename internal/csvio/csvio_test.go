package csvio

import (
	"bytes"
	"strings"
	"testing"

	"holistic/internal/core"
)

func TestTypeInference(t *testing.T) {
	src := `i,f,d,s,mixed
1,1.5,2024-01-01,abc,1
-2,2,2024-02-29,def,
3,.25,1969-12-31,7up,2.5
`
	f, err := Read(strings.NewReader(src))
	table := f.Table
	if err != nil {
		t.Fatal(err)
	}
	if table.Rows() != 3 {
		t.Fatalf("rows = %d", table.Rows())
	}
	if k := table.Column("i").Kind(); k != core.Int64 {
		t.Fatalf("i inferred as %v", k)
	}
	if k := table.Column("f").Kind(); k != core.Float64 {
		t.Fatalf("f inferred as %v", k)
	}
	if k := table.Column("d").Kind(); k != core.Int64 {
		t.Fatalf("d (dates) inferred as %v", k)
	}
	if k := table.Column("s").Kind(); k != core.String {
		t.Fatalf("s inferred as %v", k)
	}
	// "mixed" holds 1 and 2.5 -> float, with a NULL in between.
	if k := table.Column("mixed").Kind(); k != core.Float64 {
		t.Fatalf("mixed inferred as %v", k)
	}
	if !table.Column("mixed").IsNull(1) {
		t.Fatal("empty cell must be NULL")
	}
	if table.Column("i").Int64(1) != -2 {
		t.Fatal("int parse wrong")
	}
	// Dates become day numbers; 1969-12-31 is day -1.
	if table.Column("d").Int64(2) != -1 {
		t.Fatalf("date day = %d, want -1", table.Column("d").Int64(2))
	}
}

func TestDateHelpers(t *testing.T) {
	day, err := DateToDay("1970-01-02")
	if err != nil || day != 1 {
		t.Fatalf("DateToDay = (%d, %v)", day, err)
	}
	if got := DayToDate(day); got != "1970-01-02" {
		t.Fatalf("DayToDate = %q", got)
	}
	for _, d := range []string{"1970-01-01", "2000-02-29", "1992-06-11", "2038-01-19"} {
		day, err := DateToDay(d)
		if err != nil {
			t.Fatal(err)
		}
		if DayToDate(day) != d {
			t.Fatalf("round trip of %s failed: %s", d, DayToDate(day))
		}
	}
}

func TestRoundTrip(t *testing.T) {
	table := core.MustNewTable(
		core.NewInt64Column("a", []int64{1, 2, 0}, []bool{false, false, true}),
		core.NewFloat64Column("b", []float64{1.25, 0, -3}, []bool{false, true, false}),
		core.NewStringColumn("c", []string{"x", "y,z", `qu"ote`}, nil),
		core.NewBoolColumn("d", []bool{true, false, true}, nil),
	)
	var buf bytes.Buffer
	if err := Write(&buf, table, nil); err != nil {
		t.Fatal(err)
	}
	bf, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back := bf.Table
	if back.Rows() != 3 {
		t.Fatalf("rows = %d", back.Rows())
	}
	if !back.Column("a").IsNull(2) || back.Column("a").Int64(1) != 2 {
		t.Fatal("int column round trip failed")
	}
	if !back.Column("b").IsNull(1) || back.Column("b").Float64(0) != 1.25 {
		t.Fatal("float column round trip failed")
	}
	if back.Column("c").StringAt(1) != "y,z" || back.Column("c").StringAt(2) != `qu"ote` {
		t.Fatal("string quoting round trip failed")
	}
	// Bools come back as strings ("true"/"false") — CSV has no bool type.
	if back.Column("d").Kind() != core.String || back.Column("d").StringAt(0) != "true" {
		t.Fatal("bool rendering failed")
	}
}

func TestEmptyAndErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input must fail")
	}
	// Header only: zero-row table with string columns (no data to infer).
	f2, err := Read(strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f2.Table.Rows() != 0 || f2.Table.Column("a") == nil {
		t.Fatal("header-only input mishandled")
	}
	// Ragged rows are a CSV error.
	if _, err := Read(strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("ragged input must fail")
	}
}

func TestAllNullColumnDefaultsToString(t *testing.T) {
	// encoding/csv skips blank lines, so anchor the empty column with a
	// second, populated one.
	f3, err := Read(strings.NewReader("a,b\n,1\n,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	table3 := f3.Table
	if table3.Rows() != 2 {
		t.Fatalf("rows = %d", table3.Rows())
	}
	if table3.Column("a").Kind() != core.String {
		t.Fatalf("all-empty column inferred as %v", table3.Column("a").Kind())
	}
	if !table3.Column("a").IsNull(0) || !table3.Column("a").IsNull(1) {
		t.Fatal("empty cells must stay NULL")
	}
}

func TestDateColumnsRenderAsDates(t *testing.T) {
	src := "d,v\n1995-06-22,1\n1995-05-09,2\n"
	f, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !f.DateColumns["d"] || f.DateColumns["v"] {
		t.Fatalf("date detection wrong: %v", f.DateColumns)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f.Table, f.DateColumns); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != src {
		t.Fatalf("date round trip:\n%q !=\n%q", got, src)
	}
}
