package frame

import (
	"testing"
)

// mustComputer builds a computer or fails the test.
func mustComputer(t *testing.T, spec Spec, n int, keys []int64, groups []int32) *Computer {
	t.Helper()
	c, err := NewComputer(spec, n, keys, groups)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func bounds(c *Computer, n int) [][2]int {
	out := make([][2]int, n)
	for i := 0; i < n; i++ {
		lo, hi := c.Bounds(i)
		out[i] = [2]int{lo, hi}
	}
	return out
}

func TestRowsBounds(t *testing.T) {
	n := 6
	cases := []struct {
		name string
		spec Spec
		want [][2]int
	}{
		{
			"unbounded preceding to current row",
			Spec{Mode: Rows, Start: Bound{Type: UnboundedPreceding}, End: Bound{Type: CurrentRow}},
			[][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}},
		},
		{
			"2 preceding to current row",
			Spec{Mode: Rows, Start: Bound{Type: Preceding, Offset: 2}, End: Bound{Type: CurrentRow}},
			[][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 5}, {3, 6}},
		},
		{
			"current row to 1 following",
			Spec{Mode: Rows, Start: Bound{Type: CurrentRow}, End: Bound{Type: Following, Offset: 1}},
			[][2]int{{0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 6}, {5, 6}},
		},
		{
			"whole partition",
			WholePartition(),
			[][2]int{{0, 6}, {0, 6}, {0, 6}, {0, 6}, {0, 6}, {0, 6}},
		},
		{
			"3 preceding to 1 preceding",
			Spec{Mode: Rows, Start: Bound{Type: Preceding, Offset: 3}, End: Bound{Type: Preceding, Offset: 1}},
			[][2]int{{0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 5}},
		},
		{
			"1 following to 3 following",
			Spec{Mode: Rows, Start: Bound{Type: Following, Offset: 1}, End: Bound{Type: Following, Offset: 3}},
			[][2]int{{1, 4}, {2, 5}, {3, 6}, {4, 6}, {5, 6}, {6, 6}},
		},
	}
	for _, c := range cases {
		comp := mustComputer(t, c.spec, n, nil, nil)
		got := bounds(comp, n)
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: row %d frame %v, want %v", c.name, i, got[i], c.want[i])
			}
		}
	}
}

func TestRangeBounds(t *testing.T) {
	keys := []int64{1, 3, 3, 5, 9, 9, 9, 14}
	n := len(keys)
	spec := Spec{Mode: Range,
		Start: Bound{Type: Preceding, Offset: 4},
		End:   Bound{Type: CurrentRow}}
	c := mustComputer(t, spec, n, keys, nil)
	// Row 3 (key 5): keys in [1, 5] -> rows 0..3; peers of 5 end at 4.
	if lo, hi := c.Bounds(3); lo != 0 || hi != 4 {
		t.Fatalf("row 3 = [%d,%d), want [0,4)", lo, hi)
	}
	// Row 4 (key 9): keys in [5, 9] -> rows 3..6 (all three 9-peers).
	if lo, hi := c.Bounds(4); lo != 3 || hi != 7 {
		t.Fatalf("row 4 = [%d,%d), want [3,7)", lo, hi)
	}
	// CURRENT ROW end includes peers: row 5 (another 9) same frame.
	if lo, hi := c.Bounds(5); lo != 3 || hi != 7 {
		t.Fatalf("row 5 = [%d,%d), want [3,7)", lo, hi)
	}
}

func TestRangeFollowing(t *testing.T) {
	keys := []int64{1, 3, 3, 5, 9}
	spec := Spec{Mode: Range,
		Start: Bound{Type: CurrentRow},
		End:   Bound{Type: Following, Offset: 2}}
	c := mustComputer(t, spec, len(keys), keys, nil)
	// Row 0 (key 1): [1, 3] -> rows 0..2.
	if lo, hi := c.Bounds(0); lo != 0 || hi != 3 {
		t.Fatalf("row 0 = [%d,%d), want [0,3)", lo, hi)
	}
	// Row 3 (key 5): [5, 7] -> row 3 only.
	if lo, hi := c.Bounds(3); lo != 3 || hi != 4 {
		t.Fatalf("row 3 = [%d,%d), want [3,4)", lo, hi)
	}
}

func TestRangeUnboundedDefault(t *testing.T) {
	keys := []int64{2, 2, 4, 6}
	c := mustComputer(t, Default(), len(keys), keys, nil)
	want := [][2]int{{0, 2}, {0, 2}, {0, 3}, {0, 4}}
	for i, w := range want {
		if lo, hi := c.Bounds(i); lo != w[0] || hi != w[1] {
			t.Fatalf("row %d = [%d,%d), want %v", i, lo, hi, w)
		}
	}
}

func TestGroupsBounds(t *testing.T) {
	groups := []int32{0, 0, 1, 1, 1, 2, 3, 3}
	n := len(groups)
	spec := Spec{Mode: Groups,
		Start: Bound{Type: Preceding, Offset: 1},
		End:   Bound{Type: Following, Offset: 1}}
	c := mustComputer(t, spec, n, nil, groups)
	want := [][2]int{
		{0, 5}, {0, 5}, // group 0: groups -1..1 -> rows 0..5
		{0, 6}, {0, 6}, {0, 6}, // group 1: groups 0..2
		{2, 8},         // group 2: groups 1..3
		{5, 8}, {5, 8}, // group 3: groups 2..4 (clamped)
	}
	for i, w := range want {
		if lo, hi := c.Bounds(i); lo != w[0] || hi != w[1] {
			t.Fatalf("row %d = [%d,%d), want %v", i, lo, hi, w)
		}
	}
}

func TestPerRowOffsets(t *testing.T) {
	// Non-monotonic ROWS frame driven by a per-row expression (§6.5).
	n := 10
	offsets := []int64{0, 3, 1, 4, 1, 5, 9, 2, 6, 5}
	spec := Spec{Mode: Rows,
		Start: Bound{Type: Preceding, OffsetFn: func(row int) int64 { return offsets[row] }},
		End:   Bound{Type: CurrentRow}}
	if spec.Monotonic() {
		t.Fatal("per-row offsets must not report monotonic")
	}
	c := mustComputer(t, spec, n, nil, nil)
	for i := 0; i < n; i++ {
		wantLo := i - int(offsets[i])
		if wantLo < 0 {
			wantLo = 0
		}
		if lo, hi := c.Bounds(i); lo != wantLo || hi != i+1 {
			t.Fatalf("row %d = [%d,%d), want [%d,%d)", i, lo, hi, wantLo, i+1)
		}
	}
	// Negative per-row offsets clamp to zero.
	neg := Spec{Mode: Rows,
		Start: Bound{Type: Preceding, OffsetFn: func(int) int64 { return -5 }},
		End:   Bound{Type: CurrentRow}}
	cn := mustComputer(t, neg, n, nil, nil)
	if lo, hi := cn.Bounds(4); lo != 4 || hi != 5 {
		t.Fatalf("clamped = [%d,%d), want [4,5)", lo, hi)
	}
}

func TestExclusions(t *testing.T) {
	groups := []int32{0, 1, 1, 1, 2, 2}
	n := len(groups)
	base := Spec{Mode: Rows, Start: Bound{Type: UnboundedPreceding}, End: Bound{Type: UnboundedFollowing}}

	cur := base
	cur.Exclude = ExcludeCurrentRow
	c := mustComputer(t, cur, n, nil, groups)
	if got := c.Ranges(2, nil); len(got) != 2 || got[0] != [2]int{0, 2} || got[1] != [2]int{3, 6} {
		t.Fatalf("exclude current row: %v", got)
	}
	if got := c.FrameSize(2); got != 5 {
		t.Fatalf("frame size = %d, want 5", got)
	}

	grp := base
	grp.Exclude = ExcludeGroup
	c = mustComputer(t, grp, n, nil, groups)
	if got := c.Ranges(2, nil); len(got) != 2 || got[0] != [2]int{0, 1} || got[1] != [2]int{4, 6} {
		t.Fatalf("exclude group: %v", got)
	}

	ties := base
	ties.Exclude = ExcludeTies
	c = mustComputer(t, ties, n, nil, groups)
	got := c.Ranges(2, nil)
	if len(got) != 3 || got[0] != [2]int{0, 1} || got[1] != [2]int{2, 3} || got[2] != [2]int{4, 6} {
		t.Fatalf("exclude ties: %v", got)
	}
	if got := c.FrameSize(2); got != 4 {
		t.Fatalf("ties frame size = %d, want 4", got)
	}

	// Row at the partition edge: exclusion at the boundary leaves 2 ranges.
	if got := c.Ranges(0, nil); len(got) != 2 || got[0] != [2]int{0, 1} || got[1] != [2]int{1, 6} {
		t.Fatalf("edge ties: %v", got)
	}
}

func TestExclusionOutsideFrame(t *testing.T) {
	// Frame strictly after the current row; excluding the current row must
	// not change anything, and EXCLUDE TIES must not re-add the row.
	groups := []int32{0, 0, 0, 1, 2}
	spec := Spec{Mode: Rows,
		Start:   Bound{Type: Following, Offset: 2},
		End:     Bound{Type: Following, Offset: 4},
		Exclude: ExcludeTies}
	c := mustComputer(t, spec, 5, nil, groups)
	// Row 0's frame is [2,5); its peer row 2 is inside the frame and gets
	// excluded, while row 0 itself was never part of the frame and must not
	// be re-added.
	got := c.Ranges(0, nil)
	if len(got) != 1 || got[0] != [2]int{3, 5} {
		t.Fatalf("ranges = %v, want [[3,5)]", got)
	}
	// Row 1's peers are rows 0..2; frame is [3,5); untouched.
	if got = c.Ranges(1, nil); len(got) != 1 || got[0] != [2]int{3, 5} {
		t.Fatalf("ranges = %v, want [[3,5)]", got)
	}
}

func TestEmptyFrames(t *testing.T) {
	spec := Spec{Mode: Rows,
		Start: Bound{Type: Following, Offset: 5},
		End:   Bound{Type: Following, Offset: 2}}
	c := mustComputer(t, spec, 4, nil, nil)
	for i := 0; i < 4; i++ {
		if lo, hi := c.Bounds(i); lo != hi {
			t.Fatalf("inverted bounds row %d: [%d,%d)", i, lo, hi)
		}
		if got := c.Ranges(i, nil); len(got) != 0 {
			t.Fatalf("inverted bounds row %d: ranges %v", i, got)
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []Spec{
		{Mode: Rows, Start: Bound{Type: UnboundedFollowing}, End: Bound{Type: CurrentRow}},
		{Mode: Rows, Start: Bound{Type: CurrentRow}, End: Bound{Type: UnboundedPreceding}},
		{Mode: Rows, Start: Bound{Type: Preceding, Offset: -1}, End: Bound{Type: CurrentRow}},
	}
	for i, s := range bad {
		if _, err := NewComputer(s, 10, nil, nil); err == nil {
			t.Errorf("spec %d: expected validation error", i)
		}
	}
	if _, err := NewComputer(Spec{Mode: Range, Start: Bound{Type: Preceding, Offset: 1}, End: Bound{Type: CurrentRow}}, 3, nil, nil); err == nil {
		t.Error("RANGE without keys must fail")
	}
	if _, err := NewComputer(Spec{Mode: Groups, Start: Bound{Type: CurrentRow}, End: Bound{Type: CurrentRow}}, 3, nil, nil); err == nil {
		t.Error("GROUPS without peer groups must fail")
	}
}

func TestRangeOffsetSaturation(t *testing.T) {
	const big = int64(1) << 62
	const huge = big + big/2
	keys := []int64{-big, 0, big}
	spec := Spec{Mode: Range,
		Start: Bound{Type: Preceding, Offset: huge},
		End:   Bound{Type: Following, Offset: huge}}
	c := mustComputer(t, spec, 3, keys, nil)
	// Row 0: key-huge saturates to -inf (lo 0); key+huge = big/2 < big, so
	// row 2 stays out. Row 1 covers everything. Row 2: key+huge saturates
	// to +inf, key-huge = -big/2 > -big, so row 0 stays out.
	want := [][2]int{{0, 2}, {0, 3}, {1, 3}}
	for i, w := range want {
		if lo, hi := c.Bounds(i); lo != w[0] || hi != w[1] {
			t.Fatalf("row %d = [%d,%d), want %v", i, lo, hi, w)
		}
	}
}

func TestModeAndBoundStrings(t *testing.T) {
	if Rows.String() != "ROWS" || Range.String() != "RANGE" || Groups.String() != "GROUPS" {
		t.Error("mode strings wrong")
	}
	if UnboundedPreceding.String() != "UNBOUNDED PRECEDING" || CurrentRow.String() != "CURRENT ROW" {
		t.Error("bound strings wrong")
	}
}
