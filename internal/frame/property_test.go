package frame

import (
	"math/rand"
	"testing"
)

// TestRangesWithinBoundsProperty checks the structural invariants tying
// Ranges to Bounds for random specifications: every post-exclusion range
// lies inside the pre-exclusion bounds, ranges are sorted, disjoint and
// non-empty, and FrameSize is their total length.
func TestRangesWithinBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(60)
		keys := make([]int64, n)
		groups := make([]int32, n)
		cur := int64(0)
		g := int32(0)
		for i := 0; i < n; i++ {
			if i > 0 && rng.Intn(3) > 0 {
				cur += rng.Int63n(3) // duplicates allowed
				if cur != keys[i-1] {
					g++
				}
			}
			keys[i] = cur
			groups[i] = g
		}
		spec := Spec{
			Mode:    Mode(rng.Intn(3)),
			Exclude: Exclusion(rng.Intn(4)),
		}
		randBound := func(start bool) Bound {
			switch rng.Intn(4) {
			case 0:
				if start {
					return Bound{Type: UnboundedPreceding}
				}
				return Bound{Type: UnboundedFollowing}
			case 1:
				return Bound{Type: Preceding, Offset: int64(rng.Intn(5))}
			case 2:
				return Bound{Type: CurrentRow}
			default:
				return Bound{Type: Following, Offset: int64(rng.Intn(5))}
			}
		}
		spec.Start = randBound(true)
		spec.End = randBound(false)
		c, err := NewComputer(spec, n, keys, groups)
		if err != nil {
			t.Fatal(err)
		}
		for row := 0; row < n; row++ {
			lo, hi := c.Bounds(row)
			if lo < 0 || hi > n || lo > hi {
				t.Fatalf("trial %d row %d: bounds [%d,%d) invalid", trial, row, lo, hi)
			}
			ranges := c.Ranges(row, nil)
			total := 0
			prevHi := -1
			for _, r := range ranges {
				if r[0] >= r[1] {
					t.Fatalf("trial %d row %d: empty range %v emitted", trial, row, r)
				}
				if r[0] < lo || r[1] > hi {
					t.Fatalf("trial %d row %d: range %v outside bounds [%d,%d)", trial, row, r, lo, hi)
				}
				if r[0] <= prevHi {
					t.Fatalf("trial %d row %d: ranges unsorted/overlapping: %v", trial, row, ranges)
				}
				prevHi = r[1] - 1
				total += r[1] - r[0]
			}
			if got := c.FrameSize(row); got != total {
				t.Fatalf("trial %d row %d: FrameSize %d != ranges total %d", trial, row, got, total)
			}
			if total > hi-lo {
				t.Fatalf("trial %d row %d: exclusion grew the frame", trial, row)
			}
			// NO OTHERS must keep the frame intact.
			if spec.Exclude == ExcludeNoOthers && total != hi-lo {
				t.Fatalf("trial %d row %d: NO OTHERS changed the frame", trial, row)
			}
			// EXCLUDE CURRENT ROW removes at most one row.
			if spec.Exclude == ExcludeCurrentRow && (hi-lo)-total > 1 {
				t.Fatalf("trial %d row %d: current-row exclusion removed %d rows", trial, row, (hi-lo)-total)
			}
		}
	}
}

// TestMonotonicFramesProperty: with constant offsets, both bounds must be
// non-decreasing in the row position — the property incremental engines
// exploit (§3.2).
func TestMonotonicFramesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(50)
		keys := make([]int64, n)
		for i := 1; i < n; i++ {
			keys[i] = keys[i-1] + rng.Int63n(4)
		}
		groups := make([]int32, n)
		for i := 1; i < n; i++ {
			groups[i] = groups[i-1]
			if keys[i] != keys[i-1] {
				groups[i]++
			}
		}
		spec := Spec{Mode: Mode(rng.Intn(3))}
		starts := []Bound{{Type: UnboundedPreceding}, {Type: Preceding, Offset: int64(rng.Intn(4))}, {Type: CurrentRow}, {Type: Following, Offset: int64(rng.Intn(4))}}
		ends := []Bound{{Type: UnboundedFollowing}, {Type: Preceding, Offset: int64(rng.Intn(4))}, {Type: CurrentRow}, {Type: Following, Offset: int64(rng.Intn(4))}}
		spec.Start = starts[rng.Intn(len(starts))]
		spec.End = ends[rng.Intn(len(ends))]
		if !spec.Monotonic() {
			t.Fatal("constant bounds must report monotonic")
		}
		c, err := NewComputer(spec, n, keys, groups)
		if err != nil {
			t.Fatal(err)
		}
		prevLo, prevHi := 0, 0
		for row := 0; row < n; row++ {
			lo, hi := c.Bounds(row)
			if lo < hi { // empty frames may clamp non-monotonically
				if lo < prevLo || hi < prevHi {
					t.Fatalf("trial %d (spec %+v) row %d: bounds [%d,%d) moved backwards from [%d,%d)",
						trial, spec, row, lo, hi, prevLo, prevHi)
				}
				prevLo, prevHi = lo, hi
			}
		}
	}
}
