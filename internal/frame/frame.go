// Package frame implements SQL window frame semantics (§2.2, §4.7): ROWS,
// RANGE and GROUPS framing modes, UNBOUNDED/offset/CURRENT ROW bounds with
// constant or per-row (non-constant, possibly non-monotonic) offsets, and
// the frame exclusion clauses, which break a continuous frame into at most
// three continuous ranges.
//
// A Computer is built once per partition from the partition's sorted order
// keys and peer-group numbering; Bounds then yields each row's continuous
// frame and Ranges the post-exclusion decomposition. All positions are
// partition-relative and half-open.
package frame

import (
	"fmt"

	"holistic/internal/sortutil"
)

// Mode selects how frame offsets are interpreted.
type Mode int

const (
	// Rows counts physical rows.
	Rows Mode = iota
	// Range offsets the current row's order key by a value delta; requires
	// a single numeric ORDER BY key.
	Range
	// Groups counts peer groups (SQL:2011).
	Groups
)

func (m Mode) String() string {
	switch m {
	case Rows:
		return "ROWS"
	case Range:
		return "RANGE"
	case Groups:
		return "GROUPS"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// BoundType is the kind of a frame bound.
type BoundType int

const (
	// UnboundedPreceding starts the frame at the partition start.
	UnboundedPreceding BoundType = iota
	// Preceding offsets backwards from the current row.
	Preceding
	// CurrentRow bounds the frame at the current row (including peers in
	// RANGE/GROUPS mode, per the SQL standard).
	CurrentRow
	// Following offsets forwards from the current row.
	Following
	// UnboundedFollowing ends the frame at the partition end.
	UnboundedFollowing
)

func (b BoundType) String() string {
	switch b {
	case UnboundedPreceding:
		return "UNBOUNDED PRECEDING"
	case Preceding:
		return "PRECEDING"
	case CurrentRow:
		return "CURRENT ROW"
	case Following:
		return "FOLLOWING"
	case UnboundedFollowing:
		return "UNBOUNDED FOLLOWING"
	}
	return fmt.Sprintf("BoundType(%d)", int(b))
}

// Bound is one frame boundary. Offset applies to Preceding/Following bounds;
// OffsetFn, when non-nil, supplies a per-row offset instead — SQL allows
// arbitrary expressions as frame offsets (§2.2's stock limit order example),
// which makes frames non-monotonic.
type Bound struct {
	Type     BoundType
	Offset   int64
	OffsetFn func(row int) int64
}

// Exclusion is the SQL:2011 frame exclusion clause.
type Exclusion int

const (
	// ExcludeNoOthers keeps the frame as is (the default).
	ExcludeNoOthers Exclusion = iota
	// ExcludeCurrentRow removes the current row.
	ExcludeCurrentRow
	// ExcludeGroup removes the current row and all its peers.
	ExcludeGroup
	// ExcludeTies removes the current row's peers but keeps the row itself.
	ExcludeTies
)

// Spec is a complete window frame specification.
type Spec struct {
	Mode    Mode
	Start   Bound
	End     Bound
	Exclude Exclusion
}

// Default is SQL's default frame: RANGE BETWEEN UNBOUNDED PRECEDING AND
// CURRENT ROW.
func Default() Spec {
	return Spec{Mode: Range, Start: Bound{Type: UnboundedPreceding}, End: Bound{Type: CurrentRow}}
}

// WholePartition is ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED
// FOLLOWING.
func WholePartition() Spec {
	return Spec{Mode: Rows, Start: Bound{Type: UnboundedPreceding}, End: Bound{Type: UnboundedFollowing}}
}

// Validate checks the static parts of the specification.
func (s Spec) Validate() error {
	if s.Start.Type == UnboundedFollowing {
		return fmt.Errorf("frame: start bound cannot be UNBOUNDED FOLLOWING")
	}
	if s.End.Type == UnboundedPreceding {
		return fmt.Errorf("frame: end bound cannot be UNBOUNDED PRECEDING")
	}
	for _, b := range []Bound{s.Start, s.End} {
		if (b.Type == Preceding || b.Type == Following) && b.OffsetFn == nil && b.Offset < 0 {
			return fmt.Errorf("frame: negative %v offset %d", b.Type, b.Offset)
		}
	}
	return nil
}

// Monotonic reports whether both frame boundaries are guaranteed to be
// non-decreasing in the row position — true exactly when no per-row offset
// expression is involved. Incremental competitors behave on monotonic
// frames and degrade otherwise (§6.5); the merge sort tree does not care.
func (s Spec) Monotonic() bool {
	return s.Start.OffsetFn == nil && s.End.OffsetFn == nil
}

// Computer evaluates a frame specification against one partition.
type Computer struct {
	spec Spec
	n    int
	// keys are the partition's order key values, oriented so the partition
	// order is ascending. Required for Range mode.
	keys []int64
	// groups[i] is the dense peer-group id of row i (non-decreasing).
	// Required for Groups mode and the GROUP/TIES exclusions; when nil,
	// every row forms its own peer group.
	groups []int32
	// groupStart[g] is the first row of peer group g; groupEnd[g] one past
	// its last row. Derived lazily from groups.
	groupStart, groupEnd []int32
}

// NewComputer builds a frame computer for a partition of n rows. orderKeys
// may be nil unless Mode is Range; peerGroups may be nil (each row its own
// peer) unless Mode is Groups or an exclusion other than NO OTHERS /
// CURRENT ROW is requested together with duplicate order keys.
func NewComputer(spec Spec, n int, orderKeys []int64, peerGroups []int32) (*Computer, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Mode == Range && orderKeys == nil && needsKeys(spec) {
		return nil, fmt.Errorf("frame: RANGE mode requires order keys")
	}
	if spec.Mode == Groups && peerGroups == nil {
		return nil, fmt.Errorf("frame: GROUPS mode requires peer groups")
	}
	c := &Computer{spec: spec, n: n, keys: orderKeys, groups: peerGroups}
	if peerGroups != nil {
		if len(peerGroups) != n {
			return nil, fmt.Errorf("frame: %d peer groups for %d rows", len(peerGroups), n)
		}
		numGroups := 0
		if n > 0 {
			numGroups = int(peerGroups[n-1]) + 1
		}
		c.groupStart = make([]int32, numGroups)
		c.groupEnd = make([]int32, numGroups)
		for i := 0; i < n; i++ {
			g := peerGroups[i]
			if i == 0 || peerGroups[i-1] != g {
				c.groupStart[g] = int32(i)
			}
			c.groupEnd[g] = int32(i + 1)
		}
	}
	if spec.Mode == Range && orderKeys != nil && len(orderKeys) != n {
		return nil, fmt.Errorf("frame: %d order keys for %d rows", len(orderKeys), n)
	}
	return c, nil
}

// needsKeys reports whether any bound of a RANGE spec actually needs key
// arithmetic (offset bounds) or peer lookup (current row).
func needsKeys(spec Spec) bool {
	for _, b := range []Bound{spec.Start, spec.End} {
		switch b.Type {
		case Preceding, Following, CurrentRow:
			return true
		}
	}
	return false
}

func (b Bound) offset(row int) int64 {
	if b.OffsetFn != nil {
		if off := b.OffsetFn(row); off > 0 {
			return off
		}
		return 0
	}
	return b.Offset
}

// Bounds returns row's continuous frame [lo, hi) before exclusion, clamped
// to [0, n). An empty frame yields lo == hi.
func (c *Computer) Bounds(row int) (lo, hi int) {
	lo = c.startBound(row)
	hi = c.endBound(row)
	if lo < 0 {
		lo = 0
	}
	if lo > c.n {
		lo = c.n
	}
	if hi > c.n {
		hi = c.n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func (c *Computer) startBound(row int) int {
	b := c.spec.Start
	switch c.spec.Mode {
	case Rows:
		switch b.Type {
		case UnboundedPreceding:
			return 0
		case Preceding:
			return row - clampInt(b.offset(row))
		case CurrentRow:
			return row
		case Following:
			return row + clampInt(b.offset(row))
		}
	case Range:
		switch b.Type {
		case UnboundedPreceding:
			return 0
		case Preceding:
			return sortutil.LowerBound(c.keys, satSub(c.keys[row], b.offset(row)))
		case CurrentRow:
			return sortutil.LowerBound(c.keys, c.keys[row])
		case Following:
			return sortutil.LowerBound(c.keys, satAdd(c.keys[row], b.offset(row)))
		}
	case Groups:
		g := int(c.groups[row])
		switch b.Type {
		case UnboundedPreceding:
			return 0
		case Preceding:
			g -= clampInt(b.offset(row))
		case CurrentRow:
			// keep g
		case Following:
			g += clampInt(b.offset(row))
		}
		if g < 0 {
			g = 0
		}
		if g >= len(c.groupStart) {
			return c.n
		}
		return int(c.groupStart[g])
	}
	return 0
}

func (c *Computer) endBound(row int) int {
	b := c.spec.End
	switch c.spec.Mode {
	case Rows:
		switch b.Type {
		case UnboundedFollowing:
			return c.n
		case Preceding:
			return row - clampInt(b.offset(row)) + 1
		case CurrentRow:
			return row + 1
		case Following:
			return row + clampInt(b.offset(row)) + 1
		}
	case Range:
		switch b.Type {
		case UnboundedFollowing:
			return c.n
		case Preceding:
			return sortutil.UpperBound(c.keys, satSub(c.keys[row], b.offset(row)))
		case CurrentRow:
			return sortutil.UpperBound(c.keys, c.keys[row])
		case Following:
			return sortutil.UpperBound(c.keys, satAdd(c.keys[row], b.offset(row)))
		}
	case Groups:
		g := int(c.groups[row])
		switch b.Type {
		case UnboundedFollowing:
			return c.n
		case Preceding:
			g -= clampInt(b.offset(row))
		case CurrentRow:
			// keep g
		case Following:
			g += clampInt(b.offset(row))
		}
		if g < 0 {
			return 0
		}
		if g >= len(c.groupEnd) {
			return c.n
		}
		return int(c.groupEnd[g])
	}
	return c.n
}

// peerRange returns the peer group [lo, hi) of row.
func (c *Computer) peerRange(row int) (int, int) {
	if c.groups != nil {
		g := c.groups[row]
		return int(c.groupStart[g]), int(c.groupEnd[g])
	}
	if c.keys != nil {
		return sortutil.LowerBound(c.keys, c.keys[row]), sortutil.UpperBound(c.keys, c.keys[row])
	}
	return row, row + 1
}

// Ranges appends row's frame, after applying the exclusion clause, to buf as
// up to three continuous [lo, hi) ranges and returns the result. Empty
// ranges are omitted.
func (c *Computer) Ranges(row int, buf [][2]int) [][2]int {
	lo, hi := c.Bounds(row)
	if lo >= hi {
		return buf
	}
	var cutLo, cutHi int // range to cut out
	keepSelf := false
	switch c.spec.Exclude {
	case ExcludeNoOthers:
		return append(buf, [2]int{lo, hi})
	case ExcludeCurrentRow:
		cutLo, cutHi = row, row+1
	case ExcludeGroup:
		cutLo, cutHi = c.peerRange(row)
	case ExcludeTies:
		cutLo, cutHi = c.peerRange(row)
		keepSelf = true
	}
	if cutHi <= lo || cutLo >= hi {
		return append(buf, [2]int{lo, hi})
	}
	if cutLo < lo {
		cutLo = lo
	}
	if cutHi > hi {
		cutHi = hi
	}
	if lo < cutLo {
		buf = append(buf, [2]int{lo, cutLo})
	}
	if keepSelf && row >= cutLo && row < cutHi {
		buf = append(buf, [2]int{row, row + 1})
	}
	if cutHi < hi {
		buf = append(buf, [2]int{cutHi, hi})
	}
	return buf
}

// FrameSize returns the number of rows in row's frame after exclusion.
func (c *Computer) FrameSize(row int) int {
	var buf [3][2]int
	total := 0
	for _, r := range c.Ranges(row, buf[:0]) {
		total += r[1] - r[0]
	}
	return total
}

// Spec returns the specification the computer was built from.
func (c *Computer) Spec() Spec { return c.spec }

// Len returns the partition size.
func (c *Computer) Len() int { return c.n }

func clampInt(v int64) int {
	const maxInt = int64(^uint(0) >> 1)
	if v > maxInt {
		return int(maxInt)
	}
	return int(v)
}

// satAdd and satSub saturate on overflow so RANGE offsets near the int64
// limits behave like ±infinity.
func satAdd(a, b int64) int64 {
	s := a + b
	if b > 0 && s < a {
		return int64(^uint64(0) >> 1)
	}
	if b < 0 && s > a {
		return -int64(^uint64(0)>>1) - 1
	}
	return s
}

func satSub(a, b int64) int64 {
	return satAdd(a, -b)
}
