// Package treecache provides the plan/tree cache behind windowd: built
// merge sort trees, preprocessed arrays and sort orders are kept resident
// across requests, keyed by (table version, window specification, tree
// options), so one O(n log n) construction answers arbitrarily many framed
// queries — the residency argument of Shi & Wang and the shared-work
// argument of Cao et al., applied across requests instead of within one.
//
// The cache is a byte-budgeted LRU with single-flight deduplication:
// concurrent requests for the same key trigger exactly one build, the
// followers block on the leader's result. It implements the
// core.TreeCache hook (GetOrBuild) and is safe for concurrent use.
package treecache

import (
	"container/list"
	"strings"
	"sync"
	"time"
)

// Cache is a byte-budgeted LRU of built index structures with
// single-flight build deduplication. The zero value is not usable; use New.
type Cache struct {
	mu      sync.Mutex
	budget  int64 // <= 0: unlimited
	used    int64
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are *entry
	flights map[string]*flight

	// counters, guarded by mu.
	hits          int64
	misses        int64 // leader builds that populated an entry
	joins         int64 // followers deduplicated onto a leader's build
	failures      int64 // builds that returned an error
	evictions     int64
	invalidations int64
	buildTime     time.Duration
}

type entry struct {
	key   string
	val   any
	bytes int64
	elem  *list.Element
}

// flight is one in-progress build; followers block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a cache that evicts least-recently-used entries once the
// summed entry sizes exceed budgetBytes. budgetBytes <= 0 disables the
// budget (nothing is ever evicted).
func New(budgetBytes int64) *Cache {
	return &Cache{
		budget:  budgetBytes,
		entries: make(map[string]*entry),
		lru:     list.New(),
		flights: make(map[string]*flight),
	}
}

// GetOrBuild returns the value cached under key, building it on a miss.
// build returns the value together with its approximate resident size in
// bytes, which counts against the cache budget. Concurrent callers with
// the same key trigger exactly one build: the first becomes the leader,
// the rest block until the leader finishes and share its value.
//
// If the leader's build fails (for example because the leader's request
// was cancelled), followers do not inherit the error: each retries the
// build itself, un-deduplicated, so one cancelled request can never poison
// an unrelated healthy one.
func (c *Cache) GetOrBuild(key string, build func() (value any, bytes int64, err error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits++
		c.mu.Unlock()
		return e.val, nil
	}
	f, inFlight := c.flights[key]
	if inFlight {
		c.joins++
		c.mu.Unlock()
		<-f.done
		if f.err == nil {
			return f.val, nil
		}
		// The leader failed; build without deduplication rather than
		// propagating a foreign error.
		return c.buildDirect(key, build)
	}
	f = &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	val, err := c.buildDirect(key, build)
	f.val, f.err = val, err
	close(f.done)
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	return val, err
}

// buildDirect runs build, records timing and on success inserts the result.
func (c *Cache) buildDirect(key string, build func() (any, int64, error)) (any, error) {
	start := time.Now()
	val, bytes, err := build()
	elapsed := time.Since(start)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buildTime += elapsed
	if err != nil {
		c.failures++
		return nil, err
	}
	c.misses++
	c.insertLocked(key, val, bytes)
	return val, nil
}

// insertLocked adds (or replaces) an entry and evicts down to the budget.
func (c *Cache) insertLocked(key string, val any, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	if old, ok := c.entries[key]; ok {
		c.used -= old.bytes
		c.lru.Remove(old.elem)
		delete(c.entries, key)
	}
	if c.budget > 0 && bytes > c.budget {
		// An entry larger than the whole budget would evict everything and
		// then be evicted itself on the next insert; don't cache it.
		return
	}
	e := &entry{key: key, val: val, bytes: bytes}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.used += bytes
	for c.budget > 0 && c.used > c.budget {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*entry)
		c.lru.Remove(tail)
		delete(c.entries, victim.key)
		c.used -= victim.bytes
		c.evictions++
	}
}

// InvalidatePrefix drops every entry whose key starts with prefix and
// reports how many were removed. It is how a dataset reload invalidates
// all structures built against the previous table version.
func (c *Cache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for key, e := range c.entries {
		if strings.HasPrefix(key, prefix) {
			c.lru.Remove(e.elem)
			delete(c.entries, key)
			c.used -= e.bytes
			removed++
		}
	}
	c.invalidations += int64(removed)
	return removed
}

// InvalidateEpochsBelow drops, among the entries whose key starts with
// prefix, exactly those that carry an epoch component "e<digits>|"
// immediately after the prefix with an epoch below the given one, and
// reports how many were removed. This is the partial-invalidation hook of
// live mutation: when a dataset's epoch advances, the per-epoch entries
// (merged sort orders, stamp maps) of superseded epochs are reclaimed while
// every prefix-sharing key without an epoch component — the generation's
// frozen sort orders ("fz|...") and the content+epoch partition keys —
// survives untouched.
func (c *Cache) InvalidateEpochsBelow(prefix string, epoch int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for key, e := range c.entries {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		ep, ok := parseEpochComponent(key[len(prefix):])
		if !ok || ep >= epoch {
			continue
		}
		c.lru.Remove(e.elem)
		delete(c.entries, key)
		c.used -= e.bytes
		removed++
	}
	c.invalidations += int64(removed)
	return removed
}

// parseEpochComponent matches a leading "e<digits>|" key component.
func parseEpochComponent(rest string) (int64, bool) {
	if len(rest) < 3 || rest[0] != 'e' {
		return 0, false
	}
	var n int64
	i := 1
	for ; i < len(rest); i++ {
		d := rest[i]
		if d == '|' {
			break
		}
		if d < '0' || d > '9' {
			return 0, false
		}
		n = n*10 + int64(d-'0')
	}
	if i == 1 || i == len(rest) {
		return 0, false
	}
	return n, true
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Entries       int
	Bytes         int64
	Budget        int64
	Hits          int64
	Misses        int64 // = successful builds
	Joins         int64 // followers deduplicated by single-flight
	Failures      int64
	Evictions     int64
	Invalidations int64
	BuildTime     time.Duration
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       len(c.entries),
		Bytes:         c.used,
		Budget:        c.budget,
		Hits:          c.hits,
		Misses:        c.misses,
		Joins:         c.joins,
		Failures:      c.failures,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		BuildTime:     c.buildTime,
	}
}
