package treecache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetOrBuildHitAndMiss(t *testing.T) {
	c := New(1 << 20)
	builds := 0
	build := func() (any, int64, error) {
		builds++
		return "value", 8, nil
	}
	for i := 0; i < 3; i++ {
		v, err := c.GetOrBuild("k", build)
		if err != nil || v != "value" {
			t.Fatalf("GetOrBuild #%d = (%v, %v)", i, v, err)
		}
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 2 || s.Entries != 1 || s.Bytes != 8 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSingleFlightDeduplicatesConcurrentBuilds(t *testing.T) {
	c := New(1 << 20)
	var builds atomic.Int64
	gate := make(chan struct{})
	const workers = 16
	var wg sync.WaitGroup
	results := make([]any, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetOrBuild("shared", func() (any, int64, error) {
				builds.Add(1)
				<-gate // hold the build open until every worker has arrived
				return 42, 8, nil
			})
			if err != nil {
				t.Errorf("GetOrBuild: %v", err)
			}
			results[w] = v
		}()
	}
	close(gate)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("%d builds for %d concurrent callers, want 1", got, workers)
	}
	for w, v := range results {
		if v != 42 {
			t.Fatalf("worker %d got %v", w, v)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
	if s.Hits+s.Joins != workers-1 {
		t.Fatalf("hits (%d) + joins (%d) != %d", s.Hits, s.Joins, workers-1)
	}
}

func TestFollowerRetriesAfterLeaderFailure(t *testing.T) {
	c := New(1 << 20)
	leaderStarted := make(chan struct{})
	leaderRelease := make(chan struct{})
	errLeader := errors.New("leader cancelled")

	var followerV any
	var followerErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-leaderStarted
		// Let the leader's build fail; whether this call joins the flight
		// (and retries) or arrives after it was torn down, it must build a
		// fresh value rather than inherit the leader's error.
		close(leaderRelease)
		followerV, followerErr = c.GetOrBuild("k", func() (any, int64, error) {
			return "rebuilt", 8, nil
		})
	}()

	v, err := c.GetOrBuild("k", func() (any, int64, error) {
		close(leaderStarted)
		<-leaderRelease
		return nil, 0, errLeader
	})
	if !errors.Is(err, errLeader) || v != nil {
		t.Fatalf("leader got (%v, %v)", v, err)
	}
	<-done
	if followerErr != nil || followerV != "rebuilt" {
		t.Fatalf("follower got (%v, %v), want rebuilt value", followerV, followerErr)
	}
	if s := c.Stats(); s.Failures != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	c := New(100)
	add := func(key string, bytes int64) {
		if _, err := c.GetOrBuild(key, func() (any, int64, error) { return key, bytes, nil }); err != nil {
			t.Fatal(err)
		}
	}
	add("a", 40)
	add("b", 40)
	// Touch "a" so "b" is the LRU victim.
	if _, err := c.GetOrBuild("a", func() (any, int64, error) { t.Fatal("a must be cached"); return nil, 0, nil }); err != nil {
		t.Fatal(err)
	}
	add("c", 40) // exceeds 100 -> evict b
	s := c.Stats()
	if s.Entries != 2 || s.Bytes != 80 || s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
	rebuilt := false
	if _, err := c.GetOrBuild("b", func() (any, int64, error) { rebuilt = true; return "b", 40, nil }); err != nil {
		t.Fatal(err)
	}
	if !rebuilt {
		t.Fatal("evicted entry b still served from cache")
	}
}

func TestOversizedEntryNotCached(t *testing.T) {
	c := New(100)
	for i := 0; i < 2; i++ {
		if _, err := c.GetOrBuild("huge", func() (any, int64, error) { return "x", 1000, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("oversized entry was cached: %+v", s)
	}
	if s.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (no caching)", s.Misses)
	}
}

func TestInvalidatePrefix(t *testing.T) {
	c := New(0) // unlimited
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("ds@1|entry%d", i)
		if _, err := c.GetOrBuild(key, func() (any, int64, error) { return i, 8, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.GetOrBuild("other@1|x", func() (any, int64, error) { return "keep", 8, nil }); err != nil {
		t.Fatal(err)
	}
	if n := c.InvalidatePrefix("ds@1|"); n != 5 {
		t.Fatalf("InvalidatePrefix removed %d, want 5", n)
	}
	s := c.Stats()
	if s.Entries != 1 || s.Invalidations != 5 {
		t.Fatalf("stats = %+v", s)
	}
	rebuilt := false
	if _, err := c.GetOrBuild("ds@1|entry0", func() (any, int64, error) { rebuilt = true; return 0, 8, nil }); err != nil {
		t.Fatal(err)
	}
	if !rebuilt {
		t.Fatal("invalidated entry still served")
	}
}

func TestUnlimitedBudgetNeverEvicts(t *testing.T) {
	c := New(0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := c.GetOrBuild(key, func() (any, int64, error) { return i, 1 << 20, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Entries != 100 || s.Evictions != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReplaceExistingKeyAdjustsBytes(t *testing.T) {
	c := New(1 << 20)
	if _, err := c.GetOrBuild("k", func() (any, int64, error) { return 1, 100, nil }); err != nil {
		t.Fatal(err)
	}
	// Forcing a rebuild through failure-retry path would complicate things;
	// exercise insertLocked replacement via invalidate + rebuild instead.
	c.InvalidatePrefix("k")
	if _, err := c.GetOrBuild("k", func() (any, int64, error) { return 2, 60, nil }); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Bytes != 60 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInvalidateEpochsBelow(t *testing.T) {
	c := New(0)
	put := func(key string) {
		t.Helper()
		if _, err := c.GetOrBuild(key, func() (any, int64, error) { return key, 8, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("ds@1|g2|fz|sortidx|p=;o=")   // generation-stable: must survive
	put("ds@1|g2|e3|sortidx|p=;o=")   // superseded epoch: dropped
	put("ds@1|g2|e4|stamps|p=")       // superseded epoch: dropped
	put("ds@1|g2|e5|sortidx|p=;o=")   // current epoch: survives
	put("ds@1|g2|p=;o=|pk=i7;|pd3|x") // partition key (no epoch component): survives
	put("other@1|e1|sortidx|p=;o=")   // different scope: survives
	if n := c.InvalidateEpochsBelow("ds@1|g2|", 5); n != 2 {
		t.Fatalf("InvalidateEpochsBelow removed %d, want 2", n)
	}
	if s := c.Stats(); s.Entries != 4 || s.Invalidations != 2 {
		t.Fatalf("stats = %+v", s)
	}
	for _, key := range []string{
		"ds@1|g2|fz|sortidx|p=;o=",
		"ds@1|g2|e5|sortidx|p=;o=",
		"ds@1|g2|p=;o=|pk=i7;|pd3|x",
		"other@1|e1|sortidx|p=;o=",
	} {
		rebuilt := false
		if _, err := c.GetOrBuild(key, func() (any, int64, error) { rebuilt = true; return nil, 8, nil }); err != nil {
			t.Fatal(err)
		}
		if rebuilt {
			t.Fatalf("entry %q was dropped, want kept", key)
		}
	}
}

func TestParseEpochComponent(t *testing.T) {
	cases := []struct {
		rest string
		n    int64
		ok   bool
	}{
		{"e12|sortidx", 12, true},
		{"e0|x", 0, true},
		{"e|x", 0, false},  // no digits
		{"e12", 0, false},  // no terminator
		{"e1x|", 0, false}, // non-digit
		{"f12|", 0, false}, // wrong lead byte
		{"", 0, false},
		{"entry0", 0, false}, // "e" followed by non-digits
	}
	for _, tc := range cases {
		n, ok := parseEpochComponent(tc.rest)
		if n != tc.n || ok != tc.ok {
			t.Errorf("parseEpochComponent(%q) = (%d, %v), want (%d, %v)", tc.rest, n, ok, tc.n, tc.ok)
		}
	}
}
