package sqlparse

import (
	"strings"
	"testing"

	"holistic/internal/core"
)

func inheritTable() *core.Table {
	return core.MustNewTable(
		core.NewInt64Column("g", []int64{1, 1, 2, 2, 1}, nil),
		core.NewInt64Column("d", []int64{3, 1, 2, 5, 4}, nil),
		core.NewInt64Column("v", []int64{10, 20, 30, 40, 50}, nil),
	)
}

func TestNamedWindowInheritance(t *testing.T) {
	q, err := Parse(`
		select count(v) over w2, sum(v) over w1
		from t
		window w1 as (partition by g),
		       w2 as (w1 order by d rows between 1 preceding and current row)`)
	if err != nil {
		t.Fatal(err)
	}
	w2 := q.Windows["w2"]
	if w2.Ref != "" {
		t.Fatalf("w2.Ref not cleared: %q", w2.Ref)
	}
	if len(w2.PartitionBy) != 1 || w2.PartitionBy[0] != "g" {
		t.Fatalf("w2 did not inherit PARTITION BY: %+v", w2.PartitionBy)
	}
	if len(w2.OrderBy) != 1 || w2.OrderBy[0].Column != "d" {
		t.Fatalf("w2 ORDER BY wrong: %+v", w2.OrderBy)
	}
	if w2.Frame == nil || w2.Frame.Mode != "rows" {
		t.Fatalf("w2 frame wrong: %+v", w2.Frame)
	}
	// w1 itself stays frame- and order-free.
	w1 := q.Windows["w1"]
	if len(w1.OrderBy) != 0 || w1.Frame != nil {
		t.Fatalf("w1 mutated by inheritance: %+v", w1)
	}
	// The resolved query must execute.
	res, err := Execute(q, map[string]*core.Table{"t": inheritTable()}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 5 {
		t.Fatalf("rows = %d", res.Rows())
	}
}

func TestNamedWindowInheritanceChainAndForwardRef(t *testing.T) {
	// w3 references w2 which references w1, with the definitions listed in
	// the opposite order — resolution is order-independent.
	q, err := Parse(`
		select rank(order by v) over w3 from t
		window w3 as (w2 groups between unbounded preceding and current row),
		       w2 as (w1 order by d),
		       w1 as (partition by g)`)
	if err != nil {
		t.Fatal(err)
	}
	w3 := q.Windows["w3"]
	if len(w3.PartitionBy) != 1 || w3.PartitionBy[0] != "g" {
		t.Fatalf("w3 partition not inherited through the chain: %+v", w3.PartitionBy)
	}
	if len(w3.OrderBy) != 1 || w3.OrderBy[0].Column != "d" {
		t.Fatalf("w3 order not inherited: %+v", w3.OrderBy)
	}
	if w3.Frame == nil || w3.Frame.Mode != "groups" {
		t.Fatalf("w3 frame wrong: %+v", w3.Frame)
	}
}

func TestInlineWindowInheritance(t *testing.T) {
	q, err := Parse(`
		select sum(v) over (w1 order by d rows 2 preceding) from t
		window w1 as (partition by g)`)
	if err != nil {
		t.Fatal(err)
	}
	w := q.Items[0].Func.Window
	if len(w.PartitionBy) != 1 || w.PartitionBy[0] != "g" {
		t.Fatalf("inline window did not inherit: %+v", w)
	}
	if len(w.OrderBy) != 1 || w.Frame == nil || w.Frame.Mode != "rows" {
		t.Fatalf("inline additions lost: %+v", w)
	}
}

func TestNamedWindowInheritanceErrors(t *testing.T) {
	cases := []struct {
		name, sql, wantErr string
	}{
		{
			name: "cycle",
			sql: `select count(v) over w1 from t
			      window w1 as (w2 order by d), w2 as (w1)`,
			wantErr: "cycle",
		},
		{
			name: "self cycle",
			sql: `select count(v) over w1 from t
			      window w1 as (w1 order by d)`,
			wantErr: "cycle",
		},
		{
			name: "partition override",
			sql: `select count(v) over w2 from t
			      window w1 as (partition by g), w2 as (w1 partition by d)`,
			wantErr: "PARTITION BY",
		},
		{
			name: "order override",
			sql: `select count(v) over w2 from t
			      window w1 as (order by d), w2 as (w1 order by v)`,
			wantErr: "ORDER BY",
		},
		{
			name: "base frame clause",
			sql: `select count(v) over w2 from t
			      window w1 as (order by d rows 1 preceding), w2 as (w1)`,
			wantErr: "frame clause",
		},
		{
			name: "unknown base",
			sql: `select count(v) over w2 from t
			      window w2 as (nosuch order by d)`,
			wantErr: "unknown window",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.sql)
			if err == nil {
				t.Fatalf("no error, want %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
