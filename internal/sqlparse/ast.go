package sqlparse

import (
	"fmt"
	"strings"

	"holistic/internal/core"
	"holistic/internal/frame"
)

// Query is a parsed SELECT statement.
type Query struct {
	// Items are the select-list entries. Plain column references and window
	// function calls are both allowed.
	Items []SelectItem
	// From is the source table name.
	From string
	// Windows holds the named windows of the WINDOW clause.
	Windows map[string]*WindowDef
}

// SelectItem is one select-list entry.
type SelectItem struct {
	// Column is set for a plain column reference.
	Column string
	// Func is set for a window function call.
	Func *FuncCall
	// Alias is the AS name (may be empty).
	Alias string
	// Text is the original SQL snippet, used for default output names.
	Text string
}

// FuncCall is a window function invocation with the paper's extensions.
type FuncCall struct {
	Name        string
	Star        bool     // count(*)
	Distinct    bool     // count(distinct x), sum(distinct x), ...
	Args        []string // column arguments
	Number      float64  // numeric literal argument (percentile fraction, ntile buckets, offsets)
	HasNumber   bool
	OrderBy     []OrderKey // function-level ORDER BY (§2.4)
	Filter      string     // FILTER (WHERE col)
	IgnoreNulls bool
	// Window is the inline OVER (...) definition; WindowRef names a WINDOW
	// clause entry instead.
	Window    *WindowDef
	WindowRef string
}

// OrderKey is one ORDER BY entry.
type OrderKey struct {
	Column     string
	Desc       bool
	NullsFirst bool
	NullsSet   bool
}

// WindowDef is an OVER clause body.
type WindowDef struct {
	// Ref names an existing window this definition inherits from (the
	// SQL-standard existing-window-name form: WINDOW w2 AS (w1 ORDER BY
	// ...)). The parser records it; resolution copies the base window's
	// partitioning/ordering into this definition and clears Ref, erroring
	// on cycles and on override conflicts.
	Ref         string
	PartitionBy []string
	OrderBy     []OrderKey
	Frame       *FrameDef
}

// FrameDef is a window frame clause.
type FrameDef struct {
	Mode    string // "rows", "range", "groups"
	Start   BoundDef
	End     BoundDef
	Exclude string // "", "current row", "group", "ties", "no others"
}

// BoundDef is one frame bound.
type BoundDef struct {
	Kind   string // "unbounded preceding", "preceding", "current row", "following", "unbounded following"
	Offset int64
}

// inherit copies the base window named by Ref into this definition,
// enforcing the standard's existing-window-name rules: the derived window
// may not have its own PARTITION BY, may add an ORDER BY only when the base
// has none, and the base may not carry a frame clause (frames never
// inherit; the derived window supplies its own).
func (w *WindowDef) inherit(base *WindowDef) error {
	name := w.Ref
	if len(w.PartitionBy) > 0 {
		return fmt.Errorf("sql: window inheriting from %q cannot override its PARTITION BY", name)
	}
	if base.Frame != nil {
		return fmt.Errorf("sql: cannot inherit from window %q because it has a frame clause", name)
	}
	if len(base.OrderBy) > 0 && len(w.OrderBy) > 0 {
		return fmt.Errorf("sql: window inheriting from %q cannot override its ORDER BY", name)
	}
	w.PartitionBy = base.PartitionBy
	if len(w.OrderBy) == 0 {
		w.OrderBy = base.OrderBy
	}
	w.Ref = ""
	return nil
}

// sortKey renders a canonical identity of the window's partitioning and
// ordering. Functions whose windows share it can share one sort — and even
// one operator invocation with per-function frame overrides — which is the
// duplicated-work avoidance of Kohn et al. and Cao et al. (§3.1).
func (w *WindowDef) sortKey() string {
	if w == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "p:%v|o:%v", w.PartitionBy, w.OrderBy)
	return sb.String()
}

// toSortKeys converts parsed order keys to core sort keys.
func toSortKeys(keys []OrderKey) []core.SortKey {
	out := make([]core.SortKey, len(keys))
	for i, k := range keys {
		sk := core.SortKey{Column: k.Column, Desc: k.Desc}
		if k.NullsSet {
			// core's NullsSmallest means "NULLS FIRST ascending / LAST
			// descending" (the non-default placement).
			sk.NullsSmallest = k.NullsFirst != k.Desc
		}
		out[i] = sk
	}
	return out
}

// toFrameSpec converts a parsed frame to the engine representation.
func (f *FrameDef) toFrameSpec() (frame.Spec, error) {
	var spec frame.Spec
	switch f.Mode {
	case "rows":
		spec.Mode = frame.Rows
	case "range":
		spec.Mode = frame.Range
	case "groups":
		spec.Mode = frame.Groups
	default:
		return spec, fmt.Errorf("sql: unknown frame mode %q", f.Mode)
	}
	var err error
	spec.Start, err = f.Start.toBound()
	if err != nil {
		return spec, err
	}
	spec.End, err = f.End.toBound()
	if err != nil {
		return spec, err
	}
	switch f.Exclude {
	case "", "no others":
	case "current row":
		spec.Exclude = frame.ExcludeCurrentRow
	case "group":
		spec.Exclude = frame.ExcludeGroup
	case "ties":
		spec.Exclude = frame.ExcludeTies
	default:
		return spec, fmt.Errorf("sql: unknown exclusion %q", f.Exclude)
	}
	return spec, nil
}

func (b BoundDef) toBound() (frame.Bound, error) {
	switch b.Kind {
	case "unbounded preceding":
		return frame.Bound{Type: frame.UnboundedPreceding}, nil
	case "preceding":
		return frame.Bound{Type: frame.Preceding, Offset: b.Offset}, nil
	case "current row":
		return frame.Bound{Type: frame.CurrentRow}, nil
	case "following":
		return frame.Bound{Type: frame.Following, Offset: b.Offset}, nil
	case "unbounded following":
		return frame.Bound{Type: frame.UnboundedFollowing}, nil
	}
	return frame.Bound{}, fmt.Errorf("sql: unknown frame bound %q", b.Kind)
}

// funcNameMap maps SQL function names to engine functions, together with
// their argument shapes.
var funcNameMap = map[string]core.FuncName{
	"count":           core.Count, // count(*) and count(distinct) special-cased
	"sum":             core.Sum,
	"avg":             core.Avg,
	"min":             core.Min,
	"max":             core.Max,
	"rank":            core.Rank,
	"dense_rank":      core.DenseRank,
	"percent_rank":    core.PercentRank,
	"row_number":      core.RowNumber,
	"cume_dist":       core.CumeDist,
	"ntile":           core.Ntile,
	"percentile_disc": core.PercentileDisc,
	"percentile_cont": core.PercentileCont,
	"median":          core.PercentileCont,
	"nth_value":       core.NthValue,
	"first_value":     core.FirstValue,
	"last_value":      core.LastValue,
	"lead":            core.Lead,
	"lag":             core.Lag,
}

// toFuncSpec converts a parsed call to a core function spec.
func (c *FuncCall) toFuncSpec(output string) (core.FuncSpec, error) {
	name, ok := funcNameMap[c.Name]
	if !ok {
		return core.FuncSpec{}, fmt.Errorf("sql: unknown function %q", c.Name)
	}
	spec := core.FuncSpec{
		Output:      output,
		OrderBy:     toSortKeys(c.OrderBy),
		Filter:      c.Filter,
		IgnoreNulls: c.IgnoreNulls,
	}
	arg := ""
	if len(c.Args) > 0 {
		arg = c.Args[0]
	}
	switch name {
	case core.Count:
		switch {
		case c.Star:
			spec.Name = core.CountStar
		case c.Distinct:
			spec.Name = core.CountDistinct
			spec.Arg = arg
		default:
			spec.Name = core.Count
			spec.Arg = arg
		}
	case core.Sum:
		spec.Name = core.Sum
		if c.Distinct {
			spec.Name = core.SumDistinct
		}
		spec.Arg = arg
	case core.Avg:
		spec.Name = core.Avg
		if c.Distinct {
			spec.Name = core.AvgDistinct
		}
		spec.Arg = arg
	case core.Min, core.Max:
		// MIN(DISTINCT) == MIN.
		spec.Name = name
		spec.Arg = arg
	case core.PercentileDisc, core.PercentileCont:
		spec.Name = name
		if c.Name == "median" {
			spec.Fraction = 0.5
		} else {
			if !c.HasNumber {
				return spec, fmt.Errorf("sql: %s requires a fraction argument", c.Name)
			}
			spec.Fraction = c.Number
		}
	case core.Ntile:
		spec.Name = name
		if !c.HasNumber {
			return spec, fmt.Errorf("sql: ntile requires a bucket count")
		}
		spec.N = int64(c.Number)
	case core.NthValue:
		spec.Name = name
		spec.Arg = arg
		if !c.HasNumber {
			return spec, fmt.Errorf("sql: nth_value requires n")
		}
		spec.N = int64(c.Number)
	case core.Lead, core.Lag:
		spec.Name = name
		spec.Arg = arg
		if c.HasNumber {
			spec.N = int64(c.Number)
		}
	default:
		spec.Name = name
		spec.Arg = arg
	}
	return spec, nil
}
