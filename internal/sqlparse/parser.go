package sqlparse

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Parse parses one SELECT statement of the paper's dialect.
func Parse(src string) (*Query, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, tokens: tokens}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	src    string
	tokens []token
	pos    int
}

func (p *parser) cur() token  { return p.tokens[p.pos] }
func (p *parser) next() token { t := p.tokens[p.pos]; p.pos++; return t }

// isKw reports whether the current token is the given keyword.
func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

// expectKw consumes the keyword or fails.
func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %q", strings.ToUpper(kw))
	}
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errf("expected %s", what)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	got := t.text
	if t.kind == tokEOF {
		got = "end of input"
	}
	return fmt.Errorf("sql: %s, got %q at offset %d", fmt.Sprintf(format, args...), got, t.pos)
}

var reservedAfterItem = map[string]bool{
	"from": true, "window": true, "as": true,
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	q := &Query{Windows: map[string]*WindowDef{}}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, item)
		if p.cur().kind == tokComma {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	fromTok, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	q.From = fromTok.text
	if p.acceptKw("window") {
		for {
			nameTok, err := p.expect(tokIdent, "window name")
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("as"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLParen, "'('"); err != nil {
				return nil, err
			}
			def, err := p.parseWindowBody()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			q.Windows[strings.ToLower(nameTok.text)] = def
			if p.cur().kind == tokComma {
				p.pos++
				continue
			}
			break
		}
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	if err := q.resolveWindows(); err != nil {
		return nil, err
	}
	return q, nil
}

// resolveWindows resolves named-window inheritance (the SQL-standard
// existing-window-name form, WINDOW w2 AS (w1 ORDER BY ...)) and the
// select-list window references. Named windows may inherit from each other
// in any definition order; definition cycles are errors, as are the
// standard's override conflicts (see WindowDef.inherit). Inline OVER bodies
// may also open with an existing window name.
func (q *Query) resolveWindows() error {
	state := map[string]int{} // 0 unvisited, 1 resolving, 2 resolved
	var resolve func(name string) (*WindowDef, error)
	resolve = func(name string) (*WindowDef, error) {
		def, ok := q.Windows[name]
		if !ok {
			return nil, fmt.Errorf("sql: unknown window %q", name)
		}
		switch state[name] {
		case 1:
			return nil, fmt.Errorf("sql: window definition cycle through %q", name)
		case 2:
			return def, nil
		}
		state[name] = 1
		if def.Ref != "" {
			base, err := resolve(strings.ToLower(def.Ref))
			if err != nil {
				return nil, err
			}
			if err := def.inherit(base); err != nil {
				return nil, err
			}
		}
		state[name] = 2
		return def, nil
	}
	names := make([]string, 0, len(q.Windows))
	for name := range q.Windows {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic resolution (and error) order
	for _, name := range names {
		if _, err := resolve(name); err != nil {
			return err
		}
	}
	for i := range q.Items {
		fc := q.Items[i].Func
		if fc == nil {
			continue
		}
		if fc.WindowRef != "" {
			def, ok := q.Windows[strings.ToLower(fc.WindowRef)]
			if !ok {
				return fmt.Errorf("sql: unknown window %q", fc.WindowRef)
			}
			fc.Window = def
			continue
		}
		if fc.Window != nil && fc.Window.Ref != "" {
			base, ok := q.Windows[strings.ToLower(fc.Window.Ref)]
			if !ok {
				return fmt.Errorf("sql: unknown window %q", fc.Window.Ref)
			}
			if err := fc.Window.inherit(base); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	start := p.cur().pos
	var item SelectItem
	identTok, err := p.expect(tokIdent, "column or function")
	if err != nil {
		return item, err
	}
	if p.cur().kind == tokLParen {
		fc, err := p.parseFuncCall(strings.ToLower(identTok.text))
		if err != nil {
			return item, err
		}
		item.Func = fc
	} else {
		item.Column = identTok.text
	}
	end := p.cur().pos
	item.Text = strings.TrimSpace(p.src[start:min(end, len(p.src))])
	if p.acceptKw("as") {
		aliasTok, err := p.expect(tokIdent, "alias")
		if err != nil {
			return item, err
		}
		item.Alias = aliasTok.text
	} else if p.cur().kind == tokIdent && !reservedAfterItem[strings.ToLower(p.cur().text)] {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseFuncCall(name string) (*FuncCall, error) {
	fc := &FuncCall{Name: name}
	p.pos++ // '('
	if p.cur().kind == tokStar {
		fc.Star = true
		p.pos++
	} else if p.cur().kind != tokRParen {
		if p.acceptKw("distinct") {
			fc.Distinct = true
		}
		// Arguments: identifiers and at most one numeric literal, in any
		// order, optionally followed by ORDER BY.
		for {
			if p.isKw("order") {
				break
			}
			switch p.cur().kind {
			case tokIdent:
				fc.Args = append(fc.Args, p.next().text)
			case tokNumber:
				numTok := p.next()
				v, err := strconv.ParseFloat(numTok.text, 64)
				if err != nil {
					return nil, fmt.Errorf("sql: bad number %q", numTok.text)
				}
				fc.Number = v
				fc.HasNumber = true
			default:
				return nil, p.errf("expected function argument")
			}
			if p.cur().kind == tokComma {
				p.pos++
				continue
			}
			break
		}
		if p.acceptKw("order") {
			if err := p.expectKw("by"); err != nil {
				return nil, err
			}
			keys, err := p.parseOrderList()
			if err != nil {
				return nil, err
			}
			fc.OrderBy = keys
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	if p.acceptKw("filter") {
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		if err := p.expectKw("where"); err != nil {
			return nil, err
		}
		colTok, err := p.expect(tokIdent, "filter column")
		if err != nil {
			return nil, err
		}
		fc.Filter = colTok.text
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("ignore") {
		if err := p.expectKw("nulls"); err != nil {
			return nil, err
		}
		fc.IgnoreNulls = true
	}
	if err := p.expectKw("over"); err != nil {
		return nil, err
	}
	if p.cur().kind == tokLParen {
		p.pos++
		def, err := p.parseWindowBody()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		fc.Window = def
	} else {
		refTok, err := p.expect(tokIdent, "window name or '('")
		if err != nil {
			return nil, err
		}
		fc.WindowRef = refTok.text
	}
	return fc, nil
}

// windowBodyKeywords are the words that can open a window-body clause; any
// other leading identifier names an existing window to inherit from.
var windowBodyKeywords = map[string]bool{
	"partition": true, "order": true, "rows": true, "range": true, "groups": true,
}

func (p *parser) parseWindowBody() (*WindowDef, error) {
	def := &WindowDef{}
	if t := p.cur(); t.kind == tokIdent && !windowBodyKeywords[strings.ToLower(t.text)] {
		def.Ref = p.next().text
	}
	if p.acceptKw("partition") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			colTok, err := p.expect(tokIdent, "partition column")
			if err != nil {
				return nil, err
			}
			def.PartitionBy = append(def.PartitionBy, colTok.text)
			if p.cur().kind == tokComma {
				p.pos++
				continue
			}
			break
		}
	}
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		keys, err := p.parseOrderList()
		if err != nil {
			return nil, err
		}
		def.OrderBy = keys
	}
	for _, mode := range []string{"rows", "range", "groups"} {
		if p.acceptKw(mode) {
			fr, err := p.parseFrame(mode)
			if err != nil {
				return nil, err
			}
			def.Frame = fr
			break
		}
	}
	return def, nil
}

func (p *parser) parseOrderList() ([]OrderKey, error) {
	var keys []OrderKey
	for {
		colTok, err := p.expect(tokIdent, "order column")
		if err != nil {
			return nil, err
		}
		key := OrderKey{Column: colTok.text}
		if p.acceptKw("desc") {
			key.Desc = true
		} else {
			p.acceptKw("asc")
		}
		if p.acceptKw("nulls") {
			switch {
			case p.acceptKw("first"):
				key.NullsFirst = true
				key.NullsSet = true
			case p.acceptKw("last"):
				key.NullsSet = true
			default:
				return nil, p.errf("expected FIRST or LAST")
			}
		}
		keys = append(keys, key)
		if p.cur().kind == tokComma {
			p.pos++
			continue
		}
		return keys, nil
	}
}

func (p *parser) parseFrame(mode string) (*FrameDef, error) {
	fr := &FrameDef{Mode: mode}
	if p.acceptKw("between") {
		start, err := p.parseBound()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		end, err := p.parseBound()
		if err != nil {
			return nil, err
		}
		fr.Start, fr.End = start, end
	} else {
		// Single-bound shorthand: the bound is the start, end = CURRENT ROW.
		start, err := p.parseBound()
		if err != nil {
			return nil, err
		}
		fr.Start = start
		fr.End = BoundDef{Kind: "current row"}
	}
	if p.acceptKw("exclude") {
		switch {
		case p.acceptKw("current"):
			if err := p.expectKw("row"); err != nil {
				return nil, err
			}
			fr.Exclude = "current row"
		case p.acceptKw("group"):
			fr.Exclude = "group"
		case p.acceptKw("ties"):
			fr.Exclude = "ties"
		case p.acceptKw("no"):
			if err := p.expectKw("others"); err != nil {
				return nil, err
			}
			fr.Exclude = "no others"
		default:
			return nil, p.errf("expected exclusion clause")
		}
	}
	return fr, nil
}

func (p *parser) parseBound() (BoundDef, error) {
	switch {
	case p.acceptKw("unbounded"):
		switch {
		case p.acceptKw("preceding"):
			return BoundDef{Kind: "unbounded preceding"}, nil
		case p.acceptKw("following"):
			return BoundDef{Kind: "unbounded following"}, nil
		}
		return BoundDef{}, p.errf("expected PRECEDING or FOLLOWING")
	case p.acceptKw("current"):
		if err := p.expectKw("row"); err != nil {
			return BoundDef{}, err
		}
		return BoundDef{Kind: "current row"}, nil
	case p.cur().kind == tokNumber:
		numTok := p.next()
		n, err := strconv.ParseInt(numTok.text, 10, 64)
		if err != nil {
			return BoundDef{}, fmt.Errorf("sql: bad frame offset %q", numTok.text)
		}
		switch {
		case p.acceptKw("preceding"):
			return BoundDef{Kind: "preceding", Offset: n}, nil
		case p.acceptKw("following"):
			return BoundDef{Kind: "following", Offset: n}, nil
		}
		return BoundDef{}, p.errf("expected PRECEDING or FOLLOWING")
	case p.cur().kind == tokString:
		// Interval-style literals like '1 month' preceding: the numeric
		// prefix is taken as the offset in the order key's units; unit
		// words are accepted for readability (documented in README).
		strTok := p.next()
		n, err := parseIntervalLiteral(strTok.text)
		if err != nil {
			return BoundDef{}, err
		}
		switch {
		case p.acceptKw("preceding"):
			return BoundDef{Kind: "preceding", Offset: n}, nil
		case p.acceptKw("following"):
			return BoundDef{Kind: "following", Offset: n}, nil
		}
		return BoundDef{}, p.errf("expected PRECEDING or FOLLOWING")
	}
	return BoundDef{}, p.errf("expected frame bound")
}

// parseIntervalLiteral maps '1 week' style literals to day counts (the RANGE
// order keys of the examples are day numbers): supported units are day(s),
// week(s), month(s) (30 days), year(s) (365 days); a bare number passes
// through.
func parseIntervalLiteral(s string) (int64, error) {
	fields := strings.Fields(strings.ToLower(s))
	if len(fields) == 0 {
		return 0, fmt.Errorf("sql: empty interval literal")
	}
	n, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sql: bad interval %q", s)
	}
	if len(fields) == 1 {
		return n, nil
	}
	switch strings.TrimSuffix(fields[1], "s") {
	case "day":
		return n, nil
	case "week":
		return n * 7, nil
	case "month":
		return n * 30, nil
	case "year":
		return n * 365, nil
	}
	return 0, fmt.Errorf("sql: unsupported interval unit in %q", s)
}
