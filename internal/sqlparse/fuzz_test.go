package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that accepted queries
// survive a reparse of their structural parts. Run the seed corpus with
// `go test`, explore with `go test -fuzz=FuzzParse`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"select a from t",
		"select count(*) over (order by d) from t",
		"select count(distinct x) over w from t window w as (order by d)",
		"select rank(order by tps desc) over w from t window w as (order by d range between unbounded preceding and current row)",
		"select percentile_disc(0.5 order by x) over (order by d rows between 999 preceding and current row) as m from t",
		"select nth_value(x, 3 order by a) ignore nulls over (partition by g order by d groups between 1 preceding and 1 following exclude ties) from t",
		"select sum(v) filter (where f) over (order by d desc nulls last) from t",
		"select lead(x order by a) over (order by d rows between '1 week' preceding and current row) from t",
		"select a, b, c from t -- comment",
		`select "quoted col" from t`,
		"select f(',') over (order by d) from t",
		"select x from",
		"select ((( from t",
		"select count(distinct) over () from t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if q.From == "" && len(q.Items) > 0 {
			t.Fatalf("accepted query without FROM: %q", src)
		}
		for _, item := range q.Items {
			if item.Func == nil && item.Column == "" {
				t.Fatalf("accepted empty select item: %q", src)
			}
			if item.Func != nil && item.Func.Window == nil && item.Func.WindowRef == "" {
				t.Fatalf("accepted window function without window: %q", src)
			}
		}
	})
}

func TestFuzzRegressionInputs(t *testing.T) {
	// Inputs that once looked suspicious; all must be handled gracefully.
	inputs := []string{
		strings.Repeat("(", 1000),
		"select " + strings.Repeat("a,", 500) + "a from t",
		"select 'unterminated from t",
		"select \"unterminated from t",
		"select a from t window",
		"select f(1.2.3) over (order by d) from t",
		"select f(x) over (rows between 9999999999999999999999 preceding and current row) from t",
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}
