package sqlparse

import (
	"strings"
	"testing"

	"holistic/internal/core"
	"holistic/internal/frame"
)

func TestParsePaperLeaderboardQuery(t *testing.T) {
	// The §2.4 showcase query, verbatim except for unsupported projections.
	q, err := Parse(`
		select dbsystem, tps,
		  count(distinct dbsystem) over w,
		  rank(order by tps desc) over w,
		  first_value(tps order by tps desc) over w,
		  first_value(dbsystem order by tps desc) over w,
		  lead(tps order by tps desc) over w,
		  lead(dbsystem order by tps desc) over w
		from tpcc_results
		window w as (order by submission_date
		  range between unbounded preceding and current row)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.From != "tpcc_results" {
		t.Fatalf("from = %q", q.From)
	}
	if len(q.Items) != 8 {
		t.Fatalf("items = %d", len(q.Items))
	}
	if q.Items[0].Column != "dbsystem" || q.Items[1].Column != "tps" {
		t.Fatal("pass-through columns wrong")
	}
	cd := q.Items[2].Func
	if cd == nil || cd.Name != "count" || !cd.Distinct || cd.Args[0] != "dbsystem" {
		t.Fatalf("count distinct parsed wrong: %+v", cd)
	}
	rk := q.Items[3].Func
	if rk == nil || rk.Name != "rank" || len(rk.OrderBy) != 1 || !rk.OrderBy[0].Desc {
		t.Fatalf("rank parsed wrong: %+v", rk)
	}
	// All functions must share the named window.
	for i := 2; i < 8; i++ {
		if q.Items[i].Func.Window == nil {
			t.Fatalf("item %d window not resolved", i)
		}
		if q.Items[i].Func.Window != q.Items[2].Func.Window {
			t.Fatalf("item %d does not share window w", i)
		}
	}
	w := q.Items[2].Func.Window
	if len(w.OrderBy) != 1 || w.OrderBy[0].Column != "submission_date" {
		t.Fatalf("window order wrong: %+v", w.OrderBy)
	}
	if w.Frame == nil || w.Frame.Mode != "range" ||
		w.Frame.Start.Kind != "unbounded preceding" || w.Frame.End.Kind != "current row" {
		t.Fatalf("frame wrong: %+v", w.Frame)
	}
}

func TestParsePercentileWithInterval(t *testing.T) {
	q, err := Parse(`
		select percentile_disc(0.99 order by delay) over (
		  order by l_shipdate
		  range between '1 week' preceding and current row) as p99
		from lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	fc := q.Items[0].Func
	if fc.Number != 0.99 || !fc.HasNumber {
		t.Fatalf("fraction = %v", fc.Number)
	}
	if q.Items[0].Alias != "p99" {
		t.Fatalf("alias = %q", q.Items[0].Alias)
	}
	fr := fc.Window.Frame
	if fr.Start.Kind != "preceding" || fr.Start.Offset != 7 {
		t.Fatalf("interval start = %+v", fr.Start)
	}
}

func TestParseIntervalUnits(t *testing.T) {
	cases := map[string]int64{
		"3":        3,
		"1 day":    1,
		"2 days":   2,
		"1 week":   7,
		"2 weeks":  14,
		"1 month":  30,
		"1 year":   365,
		"3 months": 90,
	}
	for lit, want := range cases {
		got, err := parseIntervalLiteral(lit)
		if err != nil || got != want {
			t.Fatalf("interval %q = (%d, %v), want %d", lit, got, err, want)
		}
	}
	if _, err := parseIntervalLiteral("1 fortnight"); err == nil {
		t.Fatal("expected error for unsupported unit")
	}
}

func TestParseFilterIgnoreNullsExclusion(t *testing.T) {
	q, err := Parse(`
		select rank(order by a) filter (where active) over (
		    partition by g, h order by d desc nulls last
		    rows between 5 preceding and 2 following exclude ties),
		  nth_value(x, 3 order by a) ignore nulls over (order by d groups current row)
		from t`)
	if err != nil {
		t.Fatal(err)
	}
	f0 := q.Items[0].Func
	if f0.Filter != "active" {
		t.Fatalf("filter = %q", f0.Filter)
	}
	w0 := f0.Window
	if len(w0.PartitionBy) != 2 || w0.PartitionBy[1] != "h" {
		t.Fatalf("partition = %v", w0.PartitionBy)
	}
	if !w0.OrderBy[0].Desc || !w0.OrderBy[0].NullsSet || w0.OrderBy[0].NullsFirst {
		t.Fatalf("order key = %+v", w0.OrderBy[0])
	}
	if w0.Frame.Exclude != "ties" || w0.Frame.Start.Offset != 5 || w0.Frame.End.Offset != 2 {
		t.Fatalf("frame = %+v", w0.Frame)
	}
	f1 := q.Items[1].Func
	if !f1.IgnoreNulls || f1.Number != 3 || f1.Args[0] != "x" {
		t.Fatalf("nth_value = %+v", f1)
	}
	if f1.Window.Frame.Mode != "groups" || f1.Window.Frame.Start.Kind != "current row" ||
		f1.Window.Frame.End.Kind != "current row" {
		t.Fatalf("groups frame = %+v", f1.Window.Frame)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select a",
		"select a from",
		"select rank(order by x) over from t",
		"select rank(order by x) over w from t", // unresolved window
		"select f(x) over (order by d) from t window w as (order by",
		"select count(distinct a) over (rows between 1 preceding) from t", // missing AND
		"select a from t garbage",
		"select percentile_disc(order by x) over (order by d) from t trailing",
	}
	for _, src := range bad {
		q, err := Parse(src)
		if err == nil {
			// Some of these fail at bind time instead.
			if _, e2 := Execute(q, map[string]*core.Table{}, core.Options{}); e2 == nil {
				t.Fatalf("expected error for %q", src)
			}
		}
	}
}

func TestExecuteEndToEnd(t *testing.T) {
	table := core.MustNewTable(
		core.NewInt64Column("d", []int64{1, 2, 3, 4, 5, 6}, nil),
		core.NewInt64Column("v", []int64{5, 3, 5, 1, 3, 2}, nil),
	)
	out, err := Parse(`
		select d, count(distinct v) over w as cd, rank(order by v) over w
		from t
		window w as (order by d rows between 2 preceding and current row)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(out, map[string]*core.Table{"t": table}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 6 {
		t.Fatalf("rows = %d", res.Rows())
	}
	// Pass-through column keeps its values.
	for i := 0; i < 6; i++ {
		if res.Column("d").Int64(i) != int64(i+1) {
			t.Fatal("pass-through column corrupted")
		}
	}
	wantCD := []int64{1, 2, 2, 3, 3, 3}
	for i, want := range wantCD {
		if got := res.Column("cd").Int64(i); got != want {
			t.Fatalf("cd[%d] = %d, want %d", i, got, want)
		}
	}
	// Unaliased rank column gets the function name.
	if res.Column("rank") == nil {
		t.Fatal("missing default-named rank column")
	}
	wantRank := []int64{1, 1, 2, 1, 2, 2}
	for i, want := range wantRank {
		if got := res.Column("rank").Int64(i); got != want {
			t.Fatalf("rank[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestExecuteWindowGrouping(t *testing.T) {
	// Two distinct windows => two operator runs; same window => shared.
	table := core.MustNewTable(
		core.NewInt64Column("d", []int64{1, 2, 3}, nil),
		core.NewInt64Column("v", []int64{9, 8, 7}, nil),
	)
	q, err := Parse(`
		select sum(v) over (order by d rows between 1 preceding and current row),
		       count(*) over (order by d rows between 1 preceding and current row),
		       sum(v) over (order by d rows between unbounded preceding and current row) as total
		from t`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(q, map[string]*core.Table{"t": table}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First two share a window and get default names sum, count.
	if res.Column("sum") == nil || res.Column("count") == nil || res.Column("total") == nil {
		names := []string{}
		for _, c := range res.Columns() {
			names = append(names, c.Name())
		}
		t.Fatalf("column names = %v", names)
	}
	wantSum := []int64{9, 17, 15}
	wantTotal := []int64{9, 17, 24}
	for i := 0; i < 3; i++ {
		if res.Column("sum").Int64(i) != wantSum[i] {
			t.Fatalf("sum[%d] = %d", i, res.Column("sum").Int64(i))
		}
		if res.Column("total").Int64(i) != wantTotal[i] {
			t.Fatalf("total[%d] = %d", i, res.Column("total").Int64(i))
		}
	}
}

func TestToFrameSpecAndBounds(t *testing.T) {
	fr := &FrameDef{Mode: "range",
		Start:   BoundDef{Kind: "preceding", Offset: 9},
		End:     BoundDef{Kind: "unbounded following"},
		Exclude: "group"}
	spec, err := fr.toFrameSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mode != frame.Range || spec.Start.Offset != 9 ||
		spec.End.Type != frame.UnboundedFollowing || spec.Exclude != frame.ExcludeGroup {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := (&FrameDef{Mode: "bogus"}).toFrameSpec(); err == nil {
		t.Fatal("expected mode error")
	}
}

func TestDuplicateDefaultNames(t *testing.T) {
	table := core.MustNewTable(core.NewInt64Column("v", []int64{1, 2}, nil))
	q, err := Parse(`
		select sum(v) over (rows between unbounded preceding and unbounded following),
		       sum(v) over (rows between unbounded preceding and unbounded following)
		from t`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(q, map[string]*core.Table{"t": table}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Column("sum") == nil || res.Column("sum_2") == nil {
		t.Fatal("expected uniquified default names sum, sum_2")
	}
}

func TestCaseInsensitivityAndComments(t *testing.T) {
	q, err := Parse(strings.ToUpper(`select rank(order by v) over w from t window w as (order by d)`))
	if err == nil {
		// Upper-casing also upper-cases identifiers; just check it parses
		// and resolves the upper-cased window name case-insensitively.
		if q.Items[0].Func.Window == nil {
			t.Fatal("window not resolved case-insensitively")
		}
	} else {
		t.Fatal(err)
	}
	if _, err := Parse("select v -- a comment\nfrom t"); err != nil {
		t.Fatal(err)
	}
}
