package sqlparse

import (
	"fmt"

	"holistic/internal/core"
	"holistic/internal/frame"
	"holistic/internal/plan"
)

// Execute runs a parsed query against the named tables and returns a result
// table with one column per select-list item, in select order.
//
// Execution goes through the shared-plan optimizer (internal/plan): windows
// sharing a definition evaluate in one operator invocation, compatible
// windows cluster under one sort, and tree structures are shared across
// functions — the duplicated-work avoidance of Kohn et al. and Cao et al.
// that §3.1 cites as complementary to the paper, generalized to prefix-
// compatible orders.
func Execute(q *Query, tables map[string]*core.Table, opt core.Options) (*core.Table, error) {
	out, _, err := ExecutePlanned(q, tables, opt)
	return out, err
}

// ExecutePlanned is Execute plus the plan's sharing statistics (operator
// count, sorts/trees/preprocessing shared) for callers that surface them,
// like windowd's query stats.
func ExecutePlanned(q *Query, tables map[string]*core.Table, opt core.Options) (*core.Table, plan.Stats, error) {
	src, ok := tables[q.From]
	if !ok {
		return nil, plan.Stats{}, fmt.Errorf("sql: unknown table %q", q.From)
	}
	for i := range q.Items {
		item := &q.Items[i]
		if item.Func == nil && src.Column(item.Column) == nil {
			return nil, plan.Stats{}, fmt.Errorf("sql: unknown column %q", item.Column)
		}
	}
	p, err := BuildPlan(q, src)
	if err != nil {
		return nil, plan.Stats{}, err
	}
	return p.Execute(src, opt)
}

// BuildPlan runs the shared-plan optimizer over a parsed query. The table
// supplies column kinds for the planner's float-sensitivity gate; it may be
// nil (explaining without data), which keeps the planner conservative about
// sharing sorts under SUM/MIN/MAX.
func BuildPlan(q *Query, t *core.Table) (*plan.Plan, error) {
	stmt, err := toStatement(q)
	if err != nil {
		return nil, err
	}
	var kinds plan.KindResolver
	if t != nil {
		kinds = plan.TableKinds(t)
	}
	return plan.Build(stmt, kinds)
}

// toStatement converts a parsed query to planner form: output names
// assigned (aliases win; defaults are the function or column name,
// uniquified), function specs bound, and every function's frame resolved
// explicitly — a missing frame clause means SQL's default frame, which
// depends on the window's ORDER BY, so it is encoded per function rather
// than left per-window.
func toStatement(q *Query) (*plan.Statement, error) {
	used := map[string]int{}
	outName := func(base string) string {
		used[base]++
		if used[base] == 1 {
			return base
		}
		return fmt.Sprintf("%s_%d", base, used[base])
	}
	stmt := &plan.Statement{Table: q.From, Items: make([]plan.Item, len(q.Items))}
	for i := range q.Items {
		item := &q.Items[i]
		if item.Func == nil {
			name := item.Alias
			if name == "" {
				name = item.Column
			}
			stmt.Items[i] = plan.Item{Name: outName(name), SrcColumn: item.Column}
			continue
		}
		fc := item.Func
		if fc.Window == nil {
			return nil, fmt.Errorf("sql: %s has no window", item.Text)
		}
		name := item.Alias
		if name == "" {
			name = fc.Name
		}
		name = outName(name)
		spec, err := fc.toFuncSpec(name)
		if err != nil {
			return nil, err
		}
		if fd := fc.Window.Frame; fd != nil {
			fs, err := fd.toFrameSpec()
			if err != nil {
				return nil, err
			}
			spec.Frame = &fs
		} else {
			fs := defaultFrame(fc.Window)
			spec.Frame = &fs
		}
		stmt.Items[i] = plan.Item{
			Name:        name,
			PartitionBy: fc.Window.PartitionBy,
			OrderBy:     toSortKeys(fc.Window.OrderBy),
			Func:        &spec,
		}
	}
	return stmt, nil
}

// defaultFrame is SQL's default frame for a window: RANGE UNBOUNDED
// PRECEDING .. CURRENT ROW with an ORDER BY, the whole partition without.
func defaultFrame(w *WindowDef) frame.Spec {
	if len(w.OrderBy) > 0 {
		return frame.Default()
	}
	return frame.WholePartition()
}
