package sqlparse

import (
	"fmt"

	"holistic/internal/core"
	"holistic/internal/frame"
)

// Execute runs a parsed query against the named tables and returns a result
// table with one column per select-list item, in select order.
//
// Function calls sharing a window definition are evaluated in one window
// operator invocation, so partitioning and ordering are computed once per
// distinct window — the duplicated-work avoidance of Kohn et al. and Cao et
// al. that §3.1 cites as complementary to the paper.
func Execute(q *Query, tables map[string]*core.Table, opt core.Options) (*core.Table, error) {
	src, ok := tables[q.From]
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", q.From)
	}

	// Assign output column names: aliases win; default names are the
	// function (or column) name, uniquified.
	used := map[string]int{}
	outName := func(base string) string {
		used[base]++
		if used[base] == 1 {
			return base
		}
		return fmt.Sprintf("%s_%d", base, used[base])
	}
	type outputRef struct {
		name     string
		fromSrc  bool // pass-through column
		srcCol   string
		groupKey string
	}
	outputs := make([]outputRef, len(q.Items))

	// Group function calls by (PARTITION BY, ORDER BY): windows that share
	// them share one sort and one operator invocation, with differing
	// frames expressed as per-function overrides.
	type group struct {
		def   *WindowDef // representative: supplies partitioning/ordering
		funcs []core.FuncSpec
	}
	groups := map[string]*group{}
	var groupOrder []string

	for i := range q.Items {
		item := &q.Items[i]
		if item.Func == nil {
			if src.Column(item.Column) == nil {
				return nil, fmt.Errorf("sql: unknown column %q", item.Column)
			}
			name := item.Alias
			if name == "" {
				name = item.Column
			}
			outputs[i] = outputRef{name: outName(name), fromSrc: true, srcCol: item.Column}
			continue
		}
		fc := item.Func
		if fc.Window == nil {
			return nil, fmt.Errorf("sql: %s has no window", item.Text)
		}
		name := item.Alias
		if name == "" {
			name = fc.Name
		}
		name = outName(name)
		spec, err := fc.toFuncSpec(name)
		if err != nil {
			return nil, err
		}
		// The function's frame becomes a per-function override, so windows
		// differing only in framing still share the group. A missing frame
		// clause means SQL's default frame, which depends on the presence
		// of an ORDER BY — encode it explicitly to keep the default
		// per-window rather than per-group.
		frameDef := fc.Window.Frame
		if frameDef != nil {
			fs, err := frameDef.toFrameSpec()
			if err != nil {
				return nil, err
			}
			spec.Frame = &fs
		} else {
			fs := defaultFrame(fc.Window)
			spec.Frame = &fs
		}
		key := fc.Window.sortKey()
		g, ok := groups[key]
		if !ok {
			g = &group{def: fc.Window}
			groups[key] = g
			groupOrder = append(groupOrder, key)
		}
		g.funcs = append(g.funcs, spec)
		outputs[i] = outputRef{name: name, groupKey: key}
	}

	// Run one window operator per distinct (partitioning, ordering).
	results := map[string]*core.Result{}
	for _, key := range groupOrder {
		g := groups[key]
		w := &core.WindowSpec{
			PartitionBy: g.def.PartitionBy,
			OrderBy:     toSortKeys(g.def.OrderBy),
			Funcs:       g.funcs,
		}
		res, err := core.Run(src, w, opt)
		if err != nil {
			return nil, err
		}
		results[key] = res
	}

	// Assemble the output table in select order.
	cols := make([]*core.Column, len(outputs))
	for i, o := range outputs {
		if o.fromSrc {
			cols[i] = renameColumn(src.Column(o.srcCol), o.name)
			continue
		}
		cols[i] = results[o.groupKey].Column(o.name)
	}
	return core.NewTable(cols...)
}

// renameColumn returns a view of col under a new name.
func renameColumn(col *core.Column, name string) *core.Column {
	if col.Name() == name {
		return col
	}
	return col.Renamed(name)
}

// defaultFrame is SQL's default frame for a window: RANGE UNBOUNDED
// PRECEDING .. CURRENT ROW with an ORDER BY, the whole partition without.
func defaultFrame(w *WindowDef) frame.Spec {
	if len(w.OrderBy) > 0 {
		return frame.Default()
	}
	return frame.WholePartition()
}
