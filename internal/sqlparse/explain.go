package sqlparse

import (
	"fmt"
	"strings"

	"holistic/internal/core"
	"holistic/internal/frame"
)

// Explain renders the evaluation plan of a parsed query: how the select
// list groups into window-operator invocations, which index structure each
// function builds, and which preprocessing steps feed it — the §4/§5
// pipeline, made visible.
func Explain(q *Query) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Window query over %s\n", q.From)

	type planned struct {
		def   *WindowDef
		items []*SelectItem
	}
	groups := map[string]*planned{}
	var order []string
	passThrough := 0
	for i := range q.Items {
		item := &q.Items[i]
		if item.Func == nil {
			passThrough++
			continue
		}
		if item.Func.Window == nil {
			return "", fmt.Errorf("sql: %s has no window", item.Text)
		}
		key := item.Func.Window.sortKey()
		g, ok := groups[key]
		if !ok {
			g = &planned{def: item.Func.Window}
			groups[key] = g
			order = append(order, key)
		}
		g.items = append(g.items, item)
	}
	if passThrough > 0 {
		fmt.Fprintf(&sb, "├─ %d pass-through column(s)\n", passThrough)
	}
	for gi, key := range order {
		g := groups[key]
		fmt.Fprintf(&sb, "├─ window operator %d: partition by %s, order by %s\n",
			gi+1, describeCols(g.def.PartitionBy), describeOrder(g.def.OrderBy))
		fmt.Fprintf(&sb, "│    shared: parallel sort, partition boundaries\n")
		for _, item := range g.items {
			fc := item.Func
			spec, err := fc.toFuncSpec("x")
			if err != nil {
				return "", err
			}
			fr := frameText(fc.Window)
			fmt.Fprintf(&sb, "│    ├─ %s\n", strings.Join(strings.Fields(item.Text), " "))
			fmt.Fprintf(&sb, "│    │    frame: %s\n", fr)
			fmt.Fprintf(&sb, "│    │    plan:  %s\n", functionPlan(spec.Name))
		}
	}
	return sb.String(), nil
}

func describeCols(cols []string) string {
	if len(cols) == 0 {
		return "(none)"
	}
	return strings.Join(cols, ", ")
}

func describeOrder(keys []OrderKey) string {
	if len(keys) == 0 {
		return "(none)"
	}
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k.Column
		if k.Desc {
			parts[i] += " desc"
		}
	}
	return strings.Join(parts, ", ")
}

func frameText(w *WindowDef) string {
	if w.Frame == nil {
		if len(w.OrderBy) > 0 {
			return "range unbounded preceding .. current row (SQL default)"
		}
		return "whole partition (SQL default)"
	}
	f := w.Frame
	s := fmt.Sprintf("%s %s .. %s", f.Mode, boundText(f.Start), boundText(f.End))
	if f.Exclude != "" && f.Exclude != "no others" {
		s += " exclude " + f.Exclude
	}
	return s
}

func boundText(b BoundDef) string {
	switch b.Kind {
	case "preceding", "following":
		return fmt.Sprintf("%d %s", b.Offset, b.Kind)
	default:
		return b.Kind
	}
}

// functionPlan names the §4 algorithm a function runs under the default
// engine.
func functionPlan(name core.FuncName) string {
	switch name {
	case core.CountStar, core.Count:
		return "frame-size arithmetic (no index)"
	case core.Sum, core.Avg, core.Min, core.Max:
		return "segment tree over kept values (O(n) build, O(log n) probe)"
	case core.CountDistinct:
		return "prevIdcs (Alg. 1) -> merge sort tree -> count-below probes (§4.2)"
	case core.SumDistinct, core.AvgDistinct:
		return "prevIdcs (Alg. 1) -> annotated merge sort tree -> prefix-aggregate probes (§4.3)"
	case core.Rank, core.PercentRank, core.CumeDist:
		return "dense ranks (Fig. 8) -> merge sort tree -> count-below probes (§4.4)"
	case core.RowNumber, core.Ntile:
		return "position-disambiguated ranks -> merge sort tree -> count-below probes (§4.4)"
	case core.DenseRank:
		return "dense ranks + prevIdcs -> range tree -> 3-dim count probes (§4.4, O(n log² n))"
	case core.PercentileDisc, core.PercentileCont, core.NthValue, core.FirstValue, core.LastValue:
		return "permutation array (Fig. 6) -> merge sort tree -> select-kth probes (§4.5)"
	case core.Lead, core.Lag:
		return "permutation array -> merge sort tree -> row-number + select probes (§4.6)"
	}
	return "merge sort tree"
}

// frameSpecOf exposes the effective frame of a window definition (used by
// tests).
func frameSpecOf(w *WindowDef) (frame.Spec, error) {
	if w.Frame == nil {
		return defaultFrame(w), nil
	}
	return w.Frame.toFrameSpec()
}
