package sqlparse

import (
	"strings"
	"testing"

	"holistic/internal/frame"
)

func TestExplainLeaderboard(t *testing.T) {
	q, err := Parse(`
		select dbsystem,
		  count(distinct dbsystem) over w,
		  rank(order by tps desc) over w,
		  percentile_disc(0.9 order by tps) over (order by tps rows between 10 preceding and current row) as p90
		from tpcc_results
		window w as (order by submission_date
		  range between unbounded preceding and current row)`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Window query over tpcc_results",
		"1 pass-through column(s)",
		"window operator 1", "window operator 2",
		"order by submission_date",
		"range unbounded preceding .. current row",
		"rows 10 preceding .. current row",
		"prevIdcs (Alg. 1)",
		"dense ranks (Fig. 8)",
		"permutation array (Fig. 6)",
	} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}
	// The two w-functions share operator 1; the inline window is its own.
	if strings.Count(plan, "window operator") != 2 {
		t.Fatalf("expected exactly 2 operators:\n%s", plan)
	}
}

func TestExplainDefaultsAndExclusion(t *testing.T) {
	q, err := Parse(`
		select sum(v) over (partition by g),
		       count(distinct v) over (order by d rows between 3 preceding and 1 following exclude ties)
		from t`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"whole partition (SQL default)",
		"exclude ties",
		"partition by g",
		"segment tree over kept values",
	} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestFrameSpecOfDefaults(t *testing.T) {
	withOrder := &WindowDef{OrderBy: []OrderKey{{Column: "d"}}}
	spec, err := frameSpecOf(withOrder)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mode != frame.Range || spec.End.Type != frame.CurrentRow {
		t.Fatalf("default with order = %+v", spec)
	}
	noOrder := &WindowDef{}
	spec, err = frameSpecOf(noOrder)
	if err != nil {
		t.Fatal(err)
	}
	if spec.End.Type != frame.UnboundedFollowing {
		t.Fatalf("default without order = %+v", spec)
	}
}
