// Package sqlparse parses the SQL dialect the paper proposes (§2.4): SELECT
// queries whose window functions compose freely with window frames,
// DISTINCT arguments, function-level ORDER BY clauses, FILTER and
// IGNORE NULLS:
//
//	select dbsystem, tps,
//	  count(distinct dbsystem) over w,
//	  rank(order by tps desc) over w,
//	  first_value(tps order by tps desc) over w,
//	  lead(tps order by tps desc) over w
//	from tpcc_results
//	window w as (order by submission_date
//	             range between unbounded preceding and current row)
//
// The paper notes that the PostgreSQL grammar already accepts DISTINCT and
// ORDER BY inside every function call and only rejects them in semantic
// analysis — so no new grammar is needed, only the analysis has to allow
// them. This parser implements exactly that: the SQL:2011 window grammar
// with those restrictions removed.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokOperator
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits a SQL string into tokens. Keywords are returned as tokIdent;
// the parser matches them case-insensitively.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == ',':
			l.emit(tokComma, ",")
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '*':
			l.emit(tokStar, "*")
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexQuotedIdent(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
			l.lexNumber()
		case isIdentStart(rune(c)):
			l.lexIdent()
		case strings.ContainsRune("<>=+-/%", rune(c)):
			l.emit(tokOperator, string(c))
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
	return l.tokens, nil
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: l.pos})
	l.pos += len(text)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

func (l *lexer) lexQuotedIdent() error {
	start := l.pos
	l.pos++
	end := strings.IndexByte(l.src[l.pos:], '"')
	if end < 0 {
		return fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[l.pos : l.pos+end], pos: start})
	l.pos += end + 1
	return nil
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func isIdentStart(c rune) bool {
	return c == '_' || unicode.IsLetter(c)
}

func isIdentPart(c rune) bool {
	return c == '_' || c == '.' || unicode.IsLetter(c) || unicode.IsDigit(c)
}
