package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 99, 20000, 20001, 123456} {
		for _, ts := range []int{0, 1, 7, 20000} {
			seen := make([]int32, n)
			For(n, ts, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d taskSize=%d: index %d visited %d times", n, ts, i, c)
				}
			}
		}
	}
}

func TestForRespectsTaskSize(t *testing.T) {
	var maxChunk atomic.Int64
	For(100000, 512, func(lo, hi int) {
		if int64(hi-lo) > maxChunk.Load() {
			maxChunk.Store(int64(hi - lo))
		}
	})
	if maxChunk.Load() > 512 {
		t.Fatalf("chunk of size %d exceeds task size 512", maxChunk.Load())
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	ForEach(100, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
	ForEach(0, func(int) { t.Fatal("must not be called") })
}

func TestRun(t *testing.T) {
	var a, b atomic.Bool
	Run(func() { a.Store(true) }, func() { b.Store(true) })
	if !a.Load() || !b.Load() {
		t.Fatal("Run did not execute all thunks")
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetMaxWorkers(1)", Workers())
	}
	SetMaxWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS", Workers())
	}
	SetMaxWorkers(prev)
}

func TestForSerialWhenOneWorker(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	// With one worker chunks must arrive in order (serial fallback).
	last := -1
	For(100, 10, func(lo, hi int) {
		if lo <= last {
			t.Fatalf("out-of-order chunk [%d,%d) after %d", lo, hi, last)
		}
		last = lo
	})
}

func TestForConcurrentWorkers(t *testing.T) {
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)
	if Workers() != 8 {
		t.Fatalf("Workers() = %d", Workers())
	}
	n := 100_000
	var sum atomic.Int64
	For(n, 64, func(lo, hi int) {
		local := int64(0)
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		sum.Add(local)
	})
	want := int64(n) * int64(n-1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForEachConcurrentWorkers(t *testing.T) {
	prev := SetMaxWorkers(6)
	defer SetMaxWorkers(prev)
	seen := make([]atomic.Int32, 500)
	ForEach(500, func(i int) { seen[i].Add(1) })
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, seen[i].Load())
		}
	}
}

func TestRunConcurrent(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	var flags [10]atomic.Bool
	thunks := make([]func(), len(flags))
	for i := range thunks {
		i := i
		thunks[i] = func() { flags[i].Store(true) }
	}
	Run(thunks...)
	for i := range flags {
		if !flags[i].Load() {
			t.Fatalf("thunk %d did not run", i)
		}
	}
}

func TestForContextCompletesWithLiveContext(t *testing.T) {
	var sum atomic.Int64
	if err := ForContext(context.Background(), 1000, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	}); err != nil {
		t.Fatalf("ForContext: %v", err)
	}
	if want := int64(1000) * 999 / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := atomic.Bool{}
	err := ForContext(ctx, 1_000_000, 1, func(lo, hi int) { called.Store(true) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// At most one chunk per worker may slip in; with cancellation before the
	// call, the serial path runs nothing at all.
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	ran := false
	if err := ForContext(ctx, 100, 10, func(lo, hi int) { ran = true }); !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("serial path: err=%v ran=%v", err, ran)
	}
}

func TestForContextCancelMidway(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	ctx, cancel := context.WithCancel(context.Background())
	var chunks atomic.Int64
	err := ForContext(ctx, 100_000, 1, func(lo, hi int) {
		if chunks.Add(1) == 50 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Far fewer than all 100k single-element chunks may have run: each of
	// the 4 workers finishes at most the chunk it was on.
	if got := chunks.Load(); got > 100 {
		t.Fatalf("%d chunks ran after cancellation at 50", got)
	}
}

func TestForEachContextCancelMidway(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	ctx, cancel := context.WithCancel(context.Background())
	var tasks atomic.Int64
	err := ForEachContext(ctx, 100_000, func(i int) {
		if tasks.Add(1) == 25 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := tasks.Load(); got > 100 {
		t.Fatalf("%d tasks ran after cancellation at 25", got)
	}
}

func TestForEachContextNilContext(t *testing.T) {
	var sum atomic.Int64
	if err := ForEachContext(nil, 100, func(i int) { sum.Add(int64(i)) }); err != nil {
		t.Fatalf("ForEachContext(nil): %v", err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}

func TestNegativeSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(-5)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatal("negative limit must restore the default")
	}
	SetMaxWorkers(prev)
}
