// Package parallel provides the task-based execution substrate used by the
// window operator and all evaluation engines.
//
// The design follows morsel-driven parallelism (Leis et al., SIGMOD 2014) as
// described in §3.2 and §5.2 of the paper: work is cut into a number of
// fixed-size tasks that is linear in the input size (default task size
// 20 000 tuples, matching Hyper), and a pool of workers drains the task
// queue. Task-based — rather than thread-based — parallelism is exactly what
// degrades incremental window algorithms to O(n²), so faithfully reproducing
// it matters for the evaluation.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"holistic/internal/obs"
)

// DefaultTaskSize is the number of tuples per task. Hyper cuts tasks of
// 20 000 tuples (§5.5); we use the same default so that the crossover points
// in the evaluation are comparable.
const DefaultTaskSize = 20000

// maxWorkers caps the worker count; 0 means GOMAXPROCS.
var maxWorkers int32

// SetMaxWorkers limits the number of workers used by For and Run. n <= 0
// restores the default (GOMAXPROCS). It returns the previous limit.
// It is intended for benchmarks that compare serial against parallel
// execution.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(atomic.SwapInt32(&maxWorkers, int32(n)))
}

// Workers reports the number of workers For and Run will use.
func Workers() int {
	if n := int(atomic.LoadInt32(&maxWorkers)); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// limitKey carries a per-context worker cap (see ContextWithLimit).
type limitKey struct{}

// ContextWithLimit returns a context that caps the number of workers the
// context-aware loops (ForContext, ForEachContext) use, below the
// process-wide Workers() limit. Unlike SetMaxWorkers the cap is scoped to
// work done under this context, so one capped request cannot starve — or
// be widened by — its neighbours. A nil ctx starts from context.Background;
// n <= 0 removes a cap set further up.
func ContextWithLimit(ctx context.Context, n int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, limitKey{}, n)
}

// ctxWorkers is Workers() clamped by ctx's cap, if any.
func ctxWorkers(ctx context.Context) int {
	workers := Workers()
	if ctx == nil {
		return workers
	}
	if lim, ok := ctx.Value(limitKey{}).(int); ok && lim > 0 && lim < workers {
		return lim
	}
	return workers
}

// For splits [0, n) into chunks of at most taskSize elements and invokes
// body(lo, hi) for each chunk, using up to Workers() goroutines. It returns
// once every chunk completed. taskSize <= 0 selects DefaultTaskSize.
//
// body must be safe for concurrent invocation on disjoint ranges.
func For(n, taskSize int, body func(lo, hi int)) {
	_ = ForContext(nil, n, taskSize, body)
}

// ForContext is For with cooperative cancellation: between task chunks the
// workers check ctx and stop claiming new chunks once it is done, so a
// cancelled caller stops burning cores after at most one chunk per worker.
// Chunks already started always run to completion — body never observes a
// half-processed range. ForContext returns ctx.Err() if the loop was cut
// short, nil if every chunk ran. A nil ctx disables cancellation.
//
// A span carried by ctx (obs.ContextWith) receives one "worker" child per
// worker goroutine — or one for the whole loop on the serial path —
// annotated with the number of chunks that worker drained. Without a span
// the loop allocates nothing for tracing.
func ForContext(ctx context.Context, n, taskSize int, body func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if taskSize <= 0 {
		taskSize = DefaultTaskSize
	}
	tasks := (n + taskSize - 1) / taskSize
	workers := ctxWorkers(ctx)
	if workers > tasks {
		workers = tasks
	}
	parent := obs.FromContext(ctx)
	if workers <= 1 {
		sp := parent.Child("worker")
		chunks := 0
		for lo := 0; lo < n; lo += taskSize {
			if err := ctxErr(ctx); err != nil {
				finishWorker(sp, chunks)
				return err
			}
			hi := lo + taskSize
			if hi > n {
				hi = n
			}
			body(lo, hi)
			chunks++
		}
		finishWorker(sp, chunks)
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sp := parent.Child("worker")
			chunks := 0
			for ctxErr(ctx) == nil {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					break
				}
				lo := t * taskSize
				hi := lo + taskSize
				if hi > n {
					hi = n
				}
				body(lo, hi)
				chunks++
			}
			finishWorker(sp, chunks)
		}()
	}
	wg.Wait()
	return ctxErr(ctx)
}

// finishWorker stamps and ends a worker span; a nil span costs nothing.
func finishWorker(sp *obs.Span, chunks int) {
	sp.SetInt("chunks", int64(chunks))
	sp.End()
}

// ForEach invokes body(i) for every task index i in [0, tasks) using up to
// Workers() goroutines. Unlike For it does not further subdivide: one call
// per task. Use it when tasks are heterogeneous units (e.g. one partition
// per task).
func ForEach(tasks int, body func(task int)) {
	_ = ForEachContext(nil, tasks, body)
}

// ForEachContext is ForEach with the same cooperative-cancellation contract
// as ForContext: ctx is checked between tasks, tasks in flight finish, and
// the ctx error is returned when the loop was cut short. A nil ctx disables
// cancellation.
func ForEachContext(ctx context.Context, tasks int, body func(task int)) error {
	if tasks <= 0 {
		return nil
	}
	workers := ctxWorkers(ctx)
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for t := 0; t < tasks; t++ {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			body(t)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctxErr(ctx) == nil {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				body(t)
			}
		}()
	}
	wg.Wait()
	return ctxErr(ctx)
}

// ctxErr is ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Run executes the given thunks concurrently (bounded by Workers()) and
// waits for all of them.
func Run(thunks ...func()) {
	ForEach(len(thunks), func(i int) { thunks[i]() })
}
