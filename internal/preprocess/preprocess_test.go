package preprocess

import (
	"cmp"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestSortIndicesStable(t *testing.T) {
	keys := []int64{3, 1, 3, 1, 2, 3, 1}
	sorted := SortIndicesByKey(keys)
	want := []int32{1, 3, 6, 4, 0, 2, 5}
	if !slices.Equal(sorted, want) {
		t.Fatalf("sorted = %v, want %v", sorted, want)
	}
}

func TestPrevIndicesPaperExample(t *testing.T) {
	// Figure 1: input a b b a c b a c; prevIdcs (unshifted) - - 1 0 - 2 3 4,
	// shifted by one with "-" -> 0: 0 0 2 1 0 3 4 5.
	keys := []int64{'a', 'b', 'b', 'a', 'c', 'b', 'a', 'c'}
	got := PrevIndicesByKey(keys)
	want := []int64{0, 0, 2, 1, 0, 3, 4, 5}
	if !slices.Equal(got, want) {
		t.Fatalf("prevIdcs = %v, want %v", got, want)
	}
	// The paper's query: frame = last 5 values (positions 3..7), distinct
	// count = entries < 3+1 = 4 in prevIdcs[3:8] -> values 1,0,3 -> 3.
	cnt := 0
	for _, v := range got[3:8] {
		if v < 4 {
			cnt++
		}
	}
	if cnt != 3 {
		t.Fatalf("distinct count via prevIdcs = %d, want 3", cnt)
	}
}

func TestPrevIndicesProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		keys := make([]int64, len(raw))
		for i, v := range raw {
			keys[i] = int64(v % 16)
		}
		got := PrevIndicesByKey(keys)
		for i, v := range keys {
			want := int64(0)
			for j := i - 1; j >= 0; j-- {
				if keys[j] == v {
					want = int64(j) + 1
					break
				}
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseRanks(t *testing.T) {
	keys := []int64{30, 10, 30, 20, 10}
	sorted := SortIndicesByKey(keys)
	ranks, distinct := DenseRanks(sorted, func(a, b int) bool { return keys[a] == keys[b] })
	if distinct != 3 {
		t.Fatalf("distinct = %d, want 3", distinct)
	}
	want := []int64{2, 0, 2, 1, 0}
	if !slices.Equal(ranks, want) {
		t.Fatalf("ranks = %v, want %v", ranks, want)
	}
}

func TestDenseRanksDescending(t *testing.T) {
	keys := []int64{30, 10, 30, 20, 10}
	sorted := SortIndices(len(keys), func(a, b int) int { return cmp.Compare(keys[b], keys[a]) })
	ranks, distinct := DenseRanks(sorted, func(a, b int) bool { return keys[a] == keys[b] })
	if distinct != 3 {
		t.Fatalf("distinct = %d, want 3", distinct)
	}
	want := []int64{0, 2, 0, 1, 2}
	if !slices.Equal(ranks, want) {
		t.Fatalf("desc ranks = %v, want %v", ranks, want)
	}
}

func TestRowNumbersAndPermutationInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]int64, 500)
	for i := range keys {
		keys[i] = rng.Int63n(40)
	}
	sorted := SortIndicesByKey(keys)
	rowno := RowNumbers(sorted)
	perm := Permutation(sorted)
	for r := range perm {
		if rowno[perm[r]] != int64(r) {
			t.Fatalf("rowno and permutation are not inverses at %d", r)
		}
	}
	// Row numbers must order like (key, pos).
	byRowno := make([]int, len(keys))
	for pos, r := range rowno {
		byRowno[r] = pos
	}
	for i := 1; i < len(byRowno); i++ {
		a, b := byRowno[i-1], byRowno[i]
		if keys[a] > keys[b] || (keys[a] == keys[b] && a >= b) {
			t.Fatalf("row numbers not consistent with stable order at %d", i)
		}
	}
}

func TestPermutationPaperExample(t *testing.T) {
	// Figure 6: window-ordered input d a c b e c d (positions 0..6);
	// sorting alphabetically with position tiebreak yields the permutation
	// array a:1 b:3 c:2 c:5 d:0 d:6 e:4.
	keys := []int64{'d', 'a', 'c', 'b', 'e', 'c', 'd'}
	perm := Permutation(SortIndicesByKey(keys))
	want := []int64{1, 3, 2, 5, 0, 6, 4}
	if !slices.Equal(perm, want) {
		t.Fatalf("perm = %v, want %v", perm, want)
	}
	// Median of frame [2,6]: 5 qualifying entries, 3rd smallest. Scanning
	// perm for entries in [2,6]: 3, 2, 5 -> third is 5 -> value 'c'.
	cnt := 0
	for _, pos := range perm {
		if pos >= 2 && pos <= 6 {
			cnt++
			if cnt == 3 {
				if keys[pos] != 'c' {
					t.Fatalf("median value = %c, want c", rune(keys[pos]))
				}
				break
			}
		}
	}
}

func TestRemap(t *testing.T) {
	include := []bool{true, false, false, true, true, false, true}
	r := NewRemap(include)
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	wantKept := []int{0, 3, 4, 6}
	for j, want := range wantKept {
		if got := r.ToOriginal(j); got != want {
			t.Fatalf("ToOriginal(%d) = %d, want %d", j, got, want)
		}
	}
	cases := []struct{ orig, want int }{
		{-3, 0}, {0, 0}, {1, 1}, {2, 1}, {3, 1}, {4, 2}, {5, 3}, {6, 3}, {7, 4}, {100, 4},
	}
	for _, c := range cases {
		if got := r.ToFiltered(c.orig); got != c.want {
			t.Fatalf("ToFiltered(%d) = %d, want %d", c.orig, got, c.want)
		}
	}
	for i, inc := range include {
		if r.Kept(i) != inc {
			t.Fatalf("Kept(%d) = %v", i, r.Kept(i))
		}
	}
}

func TestRemapFrameTranslationProperty(t *testing.T) {
	// Property: the filtered frame [ToFiltered(lo), ToFiltered(hi)) contains
	// exactly the kept positions of the original frame [lo, hi).
	prop := func(mask []bool, loSeed, hiSeed uint8) bool {
		n := len(mask)
		r := NewRemap(mask)
		lo := 0
		hi := 0
		if n > 0 {
			lo = int(loSeed) % (n + 1)
			hi = lo + int(hiSeed)%(n+1-lo)
		}
		fLo, fHi := r.ToFiltered(lo), r.ToFiltered(hi)
		var want []int
		for i := lo; i < hi; i++ {
			if mask[i] {
				want = append(want, i)
			}
		}
		if fHi-fLo != len(want) {
			return false
		}
		for j := fLo; j < fHi; j++ {
			if r.ToOriginal(j) != want[j-fLo] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
