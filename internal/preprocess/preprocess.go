// Package preprocess implements the per-partition preprocessing stages that
// feed merge sort trees (§4.2, §4.5, §5.1): computing previous-occurrence
// indices (Algorithm 1), dense rank numbering (Figure 8), permutation
// arrays (Figure 6), row numbers, and the index remapping used for
// IGNORE NULLS and the FILTER clause (§4.7).
//
// All stages work on a partition's rows in window (frame) order and reduce
// arbitrary SQL types, collations and multi-column ORDER BY clauses to plain
// integers via a caller-supplied comparator — exactly the split §5.1
// describes: "we avoid handling all SQL types and intricacies of ORDER BY
// clauses ... as part of the merge sort tree and instead move this
// complexity into the preprocessing step."
package preprocess

import (
	"cmp"

	"holistic/internal/sortutil"
)

// SortIndices returns the positions 0..n-1 sorted ascending by compare, with
// the original position as tiebreaker. The tiebreak makes the sort stable —
// the property Algorithm 1 relies on ("effectively a stable sort ...
// leaving the relative order of duplicates unchanged") — and the sort runs
// in parallel.
func SortIndices(n int, compare func(a, b int) int) []int32 {
	return SortIndicesIn(nil, n, compare)
}

// SortIndicesIn is SortIndices writing into buf when it has sufficient
// capacity (a fresh array is allocated otherwise), so callers can run the
// sort in pooled scratch. The returned slice has length n and aliases buf.
func SortIndicesIn(buf []int32, n int, compare func(a, b int) int) []int32 {
	var idx []int32
	if cap(buf) >= n {
		idx = buf[:n]
	} else {
		idx = make([]int32, n)
	}
	for i := range idx {
		idx[i] = int32(i)
	}
	sortutil.SortFunc(idx, func(a, b int32) int {
		if c := compare(int(a), int(b)); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	return idx
}

// SortIndicesByKey is SortIndices specialised to precomputed int64 keys.
func SortIndicesByKey(keys []int64) []int32 {
	return SortIndicesByKeyIn(nil, keys)
}

// SortIndicesByKeyIn is SortIndicesByKey writing into buf (see
// SortIndicesIn).
func SortIndicesByKeyIn(buf []int32, keys []int64) []int32 {
	return SortIndicesIn(buf, len(keys), func(a, b int) int {
		return cmp.Compare(keys[a], keys[b])
	})
}

// PrevIndices implements Algorithm 1 on an already sorted index array: for
// every position it computes the index of the previous occurrence of the
// same value, in the shifted representation of §5.1 — 0 for "no previous
// occurrence" ("–" in Figure 1), previousIndex+1 otherwise. same must
// report value equality of two positions.
//
// The resulting array is the merge sort tree payload for framed distinct
// aggregates: the distinct count of frame [lo, hi) is the number of entries
// in prevIdcs[lo:hi] that are < lo+1.
func PrevIndices(sorted []int32, same func(a, b int) bool) []int64 {
	prev := make([]int64, len(sorted))
	for i := 1; i < len(sorted); i++ {
		if same(int(sorted[i-1]), int(sorted[i])) {
			prev[sorted[i]] = int64(sorted[i-1]) + 1
		}
	}
	return prev
}

// PrevIndicesByKey runs Algorithm 1 for precomputed int64 keys.
func PrevIndicesByKey(keys []int64) []int64 {
	sorted := SortIndicesByKey(keys)
	return PrevIndices(sorted, func(a, b int) bool { return keys[a] == keys[b] })
}

// DenseRanks numbers each position with the 0-based dense rank of its value
// (Figure 8): equal values share a number, and numbers are consecutive. It
// returns the ranks in position order and the number of distinct values.
// RANK and CUME_DIST queries use these as the merge sort tree payload.
func DenseRanks(sorted []int32, same func(a, b int) bool) (ranks []int64, distinct int) {
	ranks = make([]int64, len(sorted))
	rank := int64(-1)
	for i, pos := range sorted {
		if i == 0 || !same(int(sorted[i-1]), int(pos)) {
			rank++
		}
		ranks[pos] = rank
	}
	return ranks, int(rank + 1)
}

// RowNumbers assigns each position its 0-based index in the sorted order —
// the position-disambiguated ranks used by ROW_NUMBER and LEAD/LAG (§4.4:
// "duplicate elements [are disambiguated] based on their position in the
// input data, such that two elements never compare as equal").
func RowNumbers(sorted []int32) []int64 {
	rowno := make([]int64, len(sorted))
	for r, pos := range sorted {
		rowno[pos] = int64(r)
	}
	return rowno
}

// Permutation returns the permutation array of Figure 6 for percentile and
// value-function queries: entry r holds the position (in window order) of
// the r-th smallest value. This is exactly the sorted index array, re-typed
// to document intent.
func Permutation(sorted []int32) []int64 {
	return PermutationIn(nil, sorted)
}

// PermutationIn is Permutation writing into buf when it has sufficient
// capacity, so the array can live in pooled scratch (the merge sort tree
// copies its input, making the permutation a pure temporary).
func PermutationIn(buf []int64, sorted []int32) []int64 {
	var perm []int64
	if cap(buf) >= len(sorted) {
		perm = buf[:len(sorted)]
	} else {
		perm = make([]int64, len(sorted))
	}
	for r, pos := range sorted {
		perm[r] = int64(pos)
	}
	return perm
}

// Remap translates frame positions between a partition and its filtered
// subset, implementing IGNORE NULLS and the FILTER clause (§4.5, §4.7): the
// merge sort tree is built only on the kept tuples, and original frame
// boundaries are remapped with a prefix-count array. Both directions are
// O(1) per lookup after an O(n) build.
type Remap struct {
	kept   []int32
	prefix []int32 // prefix[i] = kept positions < i; len n+1
}

// NewRemap builds a remapping from an inclusion mask.
func NewRemap(include []bool) *Remap {
	r := &Remap{prefix: make([]int32, len(include)+1)}
	for i, inc := range include {
		r.prefix[i+1] = r.prefix[i]
		if inc {
			r.kept = append(r.kept, int32(i))
			r.prefix[i+1]++
		}
	}
	return r
}

// Len returns the number of kept positions.
func (r *Remap) Len() int { return len(r.kept) }

// ToFiltered maps an original frame boundary to the filtered domain: the
// number of kept positions before orig.
func (r *Remap) ToFiltered(orig int) int {
	if orig < 0 {
		return 0
	}
	if orig >= len(r.prefix) {
		return len(r.kept)
	}
	return int(r.prefix[orig])
}

// ToOriginal maps a filtered position back to its original position.
func (r *Remap) ToOriginal(filtered int) int {
	return int(r.kept[filtered])
}

// Kept reports whether original position i survived the filter.
func (r *Remap) Kept(i int) bool {
	return r.prefix[i+1] > r.prefix[i]
}
