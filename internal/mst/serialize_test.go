package mst

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 2, 33, 1000, 4097} {
		for _, opt := range []Options{
			{},
			{Fanout: 2, SampleEvery: 1},
			{Fanout: 4, SampleEvery: 16, Force64: true},
			{NoCascading: true},
		} {
			keys := randKeys(rng, n, int64(n)+1)
			orig, err := Build(keys, opt)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			written, err := orig.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if written != int64(buf.Len()) {
				t.Fatalf("WriteTo reported %d bytes, wrote %d", written, buf.Len())
			}
			back, err := ReadTree(&buf)
			if err != nil {
				t.Fatalf("n=%d opt=%+v: %v", n, opt, err)
			}
			if back.Len() != n || back.Is32Bit() != orig.Is32Bit() {
				t.Fatalf("n=%d: shape changed (len %d, 32bit %v)", n, back.Len(), back.Is32Bit())
			}
			// Queries must agree exactly with the original tree.
			for trial := 0; trial < 60; trial++ {
				lo := rng.Intn(n + 1)
				hi := lo + rng.Intn(n+1-lo)
				th := rng.Int63n(int64(n) + 2)
				if got, want := back.CountBelow(lo, hi, th), orig.CountBelow(lo, hi, th); got != want {
					t.Fatalf("n=%d opt=%+v count[%d,%d)<%d: %d != %d", n, opt, lo, hi, th, got, want)
				}
				if n > 0 {
					k := rng.Intn(n)
					gp, gok := back.SelectKth(0, int64(n)+1, k)
					wp, wok := orig.SelectKth(0, int64(n)+1, k)
					if gok != wok || gp != wp {
						t.Fatalf("n=%d select %d: (%d,%v) != (%d,%v)", n, k, gp, gok, wp, wok)
					}
				}
			}
			// The deserialized structure must satisfy all invariants too.
			if back.t32 != nil {
				checkInvariants(t, back.t32)
			} else {
				checkInvariants(t, back.t64)
			}
		}
	}
}

func TestSerializeCorruption(t *testing.T) {
	keys := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	tree, err := Build(keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Bad magic.
	bad := append([]byte("XXXX"), full[4:]...)
	if _, err := ReadTree(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncations at every prefix must error, not panic.
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := ReadTree(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Implausible header values.
	hdr := append([]byte{}, full...)
	hdr[8] = 0xFF // clobber n
	hdr[9] = 0xFF
	hdr[10] = 0xFF
	hdr[11] = 0xFF
	if _, err := ReadTree(bytes.NewReader(hdr)); err == nil {
		t.Fatal("implausible n accepted")
	}
}

func TestSerializedSizeMatchesStats(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	keys := randKeys(rng, 20_000, 20_000)
	tree, err := Build(keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s := tree.Stats()
	// Payload + pointer bytes dominate; header and strides are tiny.
	if buf.Len() < s.Bytes || buf.Len() > s.Bytes+1024 {
		t.Fatalf("serialized %d bytes, stats say %d", buf.Len(), s.Bytes)
	}
}
