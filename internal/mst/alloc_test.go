package mst

import (
	"math/rand"
	"testing"
)

// Steady-state queries — CountBelow, CountRange, SelectKth, AggBelow — must
// not allocate: their descent state lives on the goroutine stack and the
// cascade lookups are pure array arithmetic. These guards pin that property
// so a refactor that makes a closure or descent frame escape fails loudly.

func allocTree(t testing.TB, n int) (*Tree, []int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(int64(n))
	}
	tr, err := Build(keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, keys
}

func TestAllocsCountQueries(t *testing.T) {
	tr, _ := allocTree(t, 4096)
	n := tr.Len()
	sink := 0
	allocs := testing.AllocsPerRun(200, func() {
		sink += tr.CountBelow(n/8, n-n/8, int64(n/2))
		sink += tr.CountRange(0, n, int64(n/4), int64(3*n/4))
	})
	if allocs != 0 {
		t.Fatalf("count queries allocate %.1f objects/op, want 0", allocs)
	}
	_ = sink
}

func TestAllocsSelectQueries(t *testing.T) {
	tr, _ := allocTree(t, 4096)
	n := tr.Len()
	sink := 0
	var ranges [2][2]int64
	ranges[0] = [2]int64{0, int64(n / 3)}
	ranges[1] = [2]int64{int64(n / 2), int64(n)}
	allocs := testing.AllocsPerRun(200, func() {
		pos, ok := tr.SelectKth(0, int64(n), 17)
		if ok {
			sink += pos
		}
		pos, ok = tr.SelectKthRanges(ranges[:], 5)
		if ok {
			sink += pos
		}
	})
	if allocs != 0 {
		t.Fatalf("select queries allocate %.1f objects/op, want 0", allocs)
	}
	_ = sink
}

func TestAllocsAnnotatedAggBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 4096
	keys := make([]int64, n)
	weights := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(int64(n))
		weights[i] = rng.Int63n(100)
	}
	at, err := BuildAnnotated(keys, weights, func(a, b int64) int64 { return a + b }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sink int64
	allocs := testing.AllocsPerRun(200, func() {
		if v, ok := at.AggBelow(n/8, n-n/8, int64(n/2)); ok {
			sink += v
		}
	})
	if allocs != 0 {
		t.Fatalf("AggBelow allocates %.1f objects/op, want 0", allocs)
	}
	_ = sink
}

// The build path has a small, documented allocation allowance. With the
// scratch pools warm, a serial build of n=10_000 (3 levels at f=32) performs
// roughly:
//
//   - 2 structs (Tree, tree) + 1 base-payload copy
//   - 2 arena structs + 2 arena chunk slabs (one per element type; the
//     slabs hold every level and sample array)
//   - ~4 appends each for the levels/samples/stride/effLen bookkeeping
//     slices (they start empty and grow a handful of headers)
//
// for about two dozen objects regardless of n. The guard uses a generous
// bound — the point is to catch a return to per-run scratch allocation
// (which costs ~3 allocations per merge run, i.e. thousands at this size),
// not to pin the exact constant.
func TestAllocsBuildSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	keys := make([]int64, 10_000)
	for i := range keys {
		keys[i] = rng.Int63n(int64(len(keys)))
	}
	opt := Options{Serial: true}
	if _, err := Build(keys, opt); err != nil { // warm the pools
		t.Fatal(err)
	}
	var sink *Tree
	allocs := testing.AllocsPerRun(5, func() {
		tr, err := Build(keys, opt)
		if err != nil {
			t.Fatal(err)
		}
		sink = tr
	})
	const allowance = 64
	if allocs > allowance {
		t.Fatalf("serial build allocates %.0f objects/op, allowance is %d — per-run merge scratch is escaping the pools", allocs, allowance)
	}
	_ = sink
}
