package mst

// i32 is the audited narrowing funnel for tree-bounded quantities: element
// indices, ranks, run numbers, cursor positions, level numbers and fanout
// multiples. Build rejects inputs of math.MaxInt32 or more elements, and the
// batch kernels reject query batches of that size, so every such quantity
// fits int32 exactly. Narrowing conversions outside this funnel are flagged
// by the narrowconv analyzer; keep new ones routed through here (or prove a
// local bound).
//
//lint:narrowconv-entry every in-tree index, rank and count is bounded by Build's math.MaxInt32 element cap and the batch kernels' query cap
func i32(v int) int32 { return int32(v) }
