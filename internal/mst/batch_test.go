package mst

import (
	"math"
	"math/rand"
	"testing"
)

// batchVariants are the tree configurations the batch kernels must agree
// with the scalar descents on: the defaults, a deep skinny tree, no
// cascading, and the forced 64-bit representation.
func batchVariants() []Options {
	return []Options{
		{},
		{Fanout: 2, SampleEvery: 1},
		{Fanout: 3, SampleEvery: 2, NoCascading: true},
		{Force64: true},
		{NoArena: true},
	}
}

// TestCountBelowBatchMatchesScalar cross-checks CountBelowBatch against
// per-query CountBelow over randomized data, including sliding frames (the
// galloping fast path), random frames (bidirectional galloping), clamped
// and trivial queries, and out-of-domain thresholds.
func TestCountBelowBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, opt := range batchVariants() {
		for _, n := range []int{0, 1, 2, 7, 33, 257, 4000} {
			keys := make([]int64, n)
			for i := range keys {
				keys[i] = int64(rng.Intn(n + 1))
			}
			tree, err := Build(keys, opt)
			if err != nil {
				t.Fatal(err)
			}
			m := 2*n + 16
			lo := make([]int32, m)
			hi := make([]int32, m)
			thr := make([]int64, m)
			for q := 0; q < m; q++ {
				switch q % 4 {
				case 0: // sliding frame, monotone threshold
					lo[q] = int32(q / 2)
					hi[q] = int32(q/2 + 50)
					thr[q] = int64(q/2) + 1
				case 1: // random in-domain
					lo[q] = int32(rng.Intn(n + 1))
					hi[q] = lo[q] + int32(rng.Intn(n+1))
					thr[q] = int64(rng.Intn(n + 2))
				case 2: // duplicate of the previous query (dedup shape)
					lo[q], hi[q], thr[q] = lo[q-1], hi[q-1], thr[q-1]
				default: // out-of-range clamping and trivial cases
					lo[q] = int32(rng.Intn(2*n+3) - n - 1)
					hi[q] = int32(rng.Intn(2*n+3) - n - 1)
					thr[q] = []int64{-1, 0, int64(n) + 7, math.MaxInt64, 3}[rng.Intn(5)]
				}
			}
			out := make([]int32, m)
			tree.CountBelowBatch(lo, hi, thr, out)
			for q := 0; q < m; q++ {
				want := tree.CountBelow(int(lo[q]), int(hi[q]), thr[q])
				if int(out[q]) != want {
					t.Fatalf("opt=%+v n=%d query %d: CountBelowBatch(%d,%d,%d)=%d, scalar=%d",
						opt, n, q, lo[q], hi[q], thr[q], out[q], want)
				}
			}
		}
	}
}

// TestSelectKthRangesBatchMatchesScalar cross-checks SelectKthRangesBatch
// against per-query SelectKthRanges over randomized multi-range queries,
// including empty ranges, unsatisfiable ranks and negative ranks.
func TestSelectKthRangesBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, opt := range batchVariants() {
		for _, n := range []int{0, 1, 2, 9, 65, 300, 2500} {
			keys := make([]int64, n)
			for i := range keys {
				keys[i] = int64(rng.Intn(n + 1))
			}
			tree, err := Build(keys, opt)
			if err != nil {
				t.Fatal(err)
			}
			m := n + 24
			off := make([]int32, 1, m+1)
			var vlo, vhi []int64
			k := make([]int32, m)
			for q := 0; q < m; q++ {
				nr := rng.Intn(4) // 0..3 ranges
				if q%5 == 4 && q > 0 {
					// Same ranges as the previous query, shifted rank.
					p0, p1 := int(off[q-1]), int(off[q])
					vlo = append(vlo, vlo[p0:p1]...)
					vhi = append(vhi, vhi[p0:p1]...)
				} else {
					start := int64(0)
					for r := 0; r < nr; r++ {
						a := start + int64(rng.Intn(n/2+2))
						b := a + int64(rng.Intn(n/2+2)) // may be empty (a == b)
						vlo = append(vlo, a)
						vhi = append(vhi, b)
						start = b
					}
				}
				off = append(off, int32(len(vlo)))
				k[q] = int32(rng.Intn(n+3) - 1) // includes -1 and > total
			}
			out := make([]int32, m)
			tree.SelectKthRangesBatch(off, vlo, vhi, k, out)
			var scratch [maxSelectRanges][2]int64
			for q := 0; q < m; q++ {
				nr := 0
				for j := off[q]; j < off[q+1]; j++ {
					scratch[nr] = [2]int64{vlo[j], vhi[j]}
					nr++
				}
				pos, ok := tree.SelectKthRanges(scratch[:nr], int(k[q]))
				want := int32(-1)
				if ok {
					want = int32(pos)
				}
				if out[q] != want {
					t.Fatalf("opt=%+v n=%d query %d (ranges=%v k=%d): batch=%d scalar=%d ok=%v",
						opt, n, q, scratch[:nr], k[q], out[q], want, ok)
				}
			}
		}
	}
}

// TestLowerBoundFromP exhausts guess positions against the plain binary
// search on small sorted arrays with duplicates.
func TestLowerBoundFromP(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		a := make([]int32, n)
		v := int32(0)
		for i := range a {
			v += int32(rng.Intn(3))
			a[i] = v
		}
		for x := int32(-1); x <= v+1; x++ {
			want := lowerBoundP(a, x)
			for g := -2; g <= n+2; g++ {
				if got := lowerBoundFromP(a, x, g); got != want {
					t.Fatalf("lowerBoundFromP(%v, %d, guess=%d) = %d, want %d", a, x, g, got, want)
				}
			}
		}
	}
}
