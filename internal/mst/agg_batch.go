package mst

import (
	"math"

	"holistic/internal/arena"
)

// Batched, level-synchronous aggregate kernel over the annotated tree
// (round 2 of the count/select kernels in count_batch.go/select_batch.go).
//
// The hard part relative to counting is that AggBelow's result is built by
// merging run-prefix aggregates in a pinned order: the scalar walk merges
// contributions in depth-first left-to-right recursion order, and for
// floating-point aggregates that order is part of the answer. The batched
// kernel cannot interleave per-query merges with the level-synchronous
// descent without replaying that order, so it runs in two phases:
//
//  1. descend the shared frontier exactly like countKernel, but instead of
//     adding covered-run ranks into a count it records each contribution —
//     a "take" of agg[level][runStart+rank-1] — as a compact int32 triple
//     (run start, level, aggregate index) tagged with its query;
//  2. group the takes by query (counting sort — takes already carry their
//     query tag) and order each query's takes by run start position.
//
// A take covers the position interval [runStart, runEnd) of its run, the
// takes of one query cover disjoint intervals, and the scalar walk visits
// intervals left to right — so ascending run start IS the scalar emission
// order, and folding the sorted takes through merge reproduces AggBelow
// bit for bit. Equivalence is enforced by TestAggBelowBatchMatchesScalar
// and core's batch_equiv_test.
//
// The descent itself shares everything countKernel shares: one galloped
// top-level search seeded from the previous query, per-level geometry and
// sample rows loaded once per level, flat SoA frontier scratch.

// takeStride is the int32 record width of a pending take:
// (query, run start, level, aggregate index).
const takeStride = 4

// AggBelowBatch answers len(result) aggregate queries at once:
// result[q], ok[q] = AggBelow(int(lo[q]), int(hi[q]), threshold[q]), and
// cnt[q] = CountBelow(int(lo[q]), int(hi[q]), threshold[q]) — the distinct
// count falls out of the same descent for free, and the DISTINCT-aggregate
// collectors need it for the NULL rule. All six slices must have the same
// length. Queries should be in probe order for the galloping top search.
func (at *AnnotatedTree[S]) AggBelowBatch(lo, hi []int32, threshold []int64, result []S, ok []bool, cnt []int32) {
	m := len(result)
	if len(lo) != m || len(hi) != m || len(threshold) != m || len(ok) != m || len(cnt) != m {
		//lint:invariant the collector builds all six arrays with one length; a mismatch is a caller bug that would silently mis-answer queries
		panic("mst: AggBelowBatch slice length mismatch")
	}
	if m >= math.MaxInt32 {
		//lint:invariant the kernel addresses queries with int32 slots; callers batch per chunk, far below 2³¹ queries
		panic("mst: AggBelowBatch batch of 2³¹ or more queries")
	}
	if m == 0 {
		return
	}
	for q := 0; q < m; q++ {
		ok[q] = false
		cnt[q] = 0
	}
	if at.n == 0 {
		return
	}
	t := at.t
	noArena := at.noArena

	// Clamp and clip every query exactly like AggBelow; resolved (invalid)
	// queries are marked with an empty position range so the descent skips
	// them without a separate mask.
	cb := kernelInt32(noArena, 2*m)
	klo, khi := cb[:m], cb[m:]
	cthr := kernelInt64(noArena, m)
	for q := 0; q < m; q++ {
		l, h, ct, valid := at.clip(int(lo[q]), int(hi[q]), threshold[q])
		if !valid {
			klo[q], khi[q] = 0, 0
			continue
		}
		klo[q], khi[q] = i32(l), i32(h)
		cthr[q] = ct
	}

	top := t.top()
	run0 := t.run(top, 0)

	// Frontier scratch, exactly countKernel's shape: at most two partial
	// runs per query per level bound both frontiers.
	fbuf := kernelInt32(noArena, 12*m)
	cq, cr, crank := fbuf[:2*m], fbuf[2*m:4*m], fbuf[4*m:6*m]
	nq, nr, nrank := fbuf[6*m:8*m], fbuf[8*m:10*m], fbuf[10*m:12*m]

	// Pending takes: a growable flat record buffer plus per-query counts for
	// the counting sort of phase 2. Most queries take O(f·levels) runs, so
	// the initial capacity of four takes per query usually survives.
	takeCnt := kernelInt32(noArena, m)
	clear(takeCnt) // pooled scratch is not zeroed
	tb := kernelInt32(noArena, 4*takeStride*m)
	tn := 0

	// Top level: gallop each query's threshold rank from the previous
	// query's answer; full-span queries resolve directly against the top
	// run's prefix aggregates.
	cn := 0
	g := 0
	for q := 0; q < m; q++ {
		if klo[q] >= khi[q] {
			continue
		}
		rank := topSearch(t, run0, cthr[q], g)
		g = rank
		if klo[q] <= 0 && int(khi[q]) >= t.n {
			if rank > 0 {
				result[q] = at.agg[top][rank-1]
				ok[q] = true
				cnt[q] = i32(rank)
			}
			continue
		}
		cq[cn], cr[cn], crank[cn] = i32(q), 0, i32(rank)
		cn++
	}

	// Phase 1: level-synchronous descent. Covered children with a positive
	// rank become takes; partially covered children descend.
	for level := top; level >= 1 && cn > 0; level-- {
		runLen := t.effLen[level]
		childLen := t.effLen[level-1]
		samples := t.samples[level]
		stride := 0
		if samples != nil {
			stride = t.stride[level]
		}
		kids := t.levels[level-1]
		f, k := t.f, t.k
		nn := 0
		for it := 0; it < cn; it++ {
			q := int(cq[it])
			r := int(cr[it])
			rank := int(crank[it])
			runStart := r * runLen
			runEnd := runStart + runLen
			if runEnd > t.n {
				runEnd = t.n
			}
			qlo, qhi := int(klo[q]), int(khi[q])
			cFirst := 0
			if qlo > runStart {
				cFirst = (qlo - runStart) / childLen
			}
			last := qhi
			if last > runEnd {
				last = runEnd
			}
			cLast := (last - 1 - runStart) / childLen
			x := cthr[q]
			for c := cFirst; c <= cLast; c++ {
				cs := runStart + c*childLen
				ce := cs + childLen
				if ce > runEnd {
					ce = runEnd
				}
				cRank := childRankIn(samples, stride, r, rank, c, f, k, kids[cs:ce], x)
				if qlo <= cs && qhi >= ce {
					if cRank > 0 {
						cnt[q] += i32(cRank)
						if tn*takeStride == len(tb) {
							nb := kernelInt32(noArena, 2*len(tb))
							copy(nb, tb)
							putKernelInt32(noArena, tb)
							tb = nb
						}
						b := tn * takeStride
						tb[b], tb[b+1], tb[b+2], tb[b+3] = i32(q), i32(cs), i32(level-1), i32(cs+cRank-1)
						tn++
						takeCnt[q]++
					}
					continue
				}
				if nn == len(nq) {
					//lint:invariant a query keeps at most two partial runs per level (the runs holding lo and hi-1), so the next frontier holds at most 2·m items
					panic("mst: aggKernel frontier overflow")
				}
				nq[nn], nr[nn], nrank[nn] = i32(q), i32(r*f+c), i32(cRank)
				nn++
			}
		}
		cq, nq = nq, cq
		cr, nr = nr, cr
		crank, nrank = nrank, crank
		cn = nn
	}

	// Phase 2: counting sort by query, order each query's takes by run
	// start, fold left to right. takeCnt is turned into running cursors by
	// the prefix sum; after the scatter it holds per-query end offsets.
	if tn > 0 {
		ord := kernelInt32(noArena, 3*tn)
		sum := int32(0)
		for q := 0; q < m; q++ {
			c := takeCnt[q]
			takeCnt[q] = sum
			sum += c
		}
		for i := 0; i < tn; i++ {
			b := i * takeStride
			q := tb[b]
			p := takeCnt[q]
			takeCnt[q] = p + 1
			o := int(p) * 3
			ord[o], ord[o+1], ord[o+2] = tb[b+1], tb[b+2], tb[b+3]
		}
		start := int32(0)
		for q := 0; q < m; q++ {
			end := takeCnt[q]
			// Takes arrive nearly ordered (one level's emissions are already
			// ascending), so the stride-3 insertion sort is cheap.
			for i := start + 1; i < end; i++ {
				o := int(i) * 3
				c0, c1, c2 := ord[o], ord[o+1], ord[o+2]
				j := i - 1
				for j >= start && ord[int(j)*3] > c0 {
					jo := int(j) * 3
					ord[jo+3], ord[jo+4], ord[jo+5] = ord[jo], ord[jo+1], ord[jo+2]
					j--
				}
				jo := int(j+1) * 3
				ord[jo], ord[jo+1], ord[jo+2] = c0, c1, c2
			}
			for i := start; i < end; i++ {
				o := int(i) * 3
				part := at.agg[ord[o+1]][ord[o+2]]
				if !ok[q] {
					result[q], ok[q] = part, true
				} else {
					result[q] = at.merge(result[q], part)
				}
			}
			start = end
		}
		putKernelInt32(noArena, ord)
	}

	putKernelInt32(noArena, tb)
	putKernelInt32(noArena, takeCnt)
	putKernelInt32(noArena, fbuf)
	putKernelInt64(noArena, cthr)
	putKernelInt32(noArena, cb)
}

// kernelInt64 fetches flat int64 kernel scratch, honouring NoArena.
func kernelInt64(noArena bool, n int) []int64 {
	if noArena {
		return make([]int64, n)
	}
	return arena.Int64s.Get(n)
}

// putKernelInt64 returns int64 kernel scratch to the pool.
func putKernelInt64(noArena bool, buf []int64) {
	if noArena {
		return
	}
	arena.Int64s.Put(buf)
}
