package mst

import (
	"math/rand"
	"testing"
)

// checkInvariants validates the structural invariants of a built tree:
// every level is a permutation of the base multiset, runs are sorted, the
// top level is one fully sorted run, and every cascading sample really is
// the merge's consumed-count snapshot.
func checkInvariants[P payload](t *testing.T, tr *tree[P]) {
	t.Helper()
	n := tr.n
	base := map[P]int{}
	for _, v := range tr.levels[0] {
		base[v]++
	}
	for l := 1; l < len(tr.levels); l++ {
		// Same multiset.
		seen := map[P]int{}
		for _, v := range tr.levels[l] {
			seen[v]++
		}
		if len(seen) != len(base) {
			t.Fatalf("level %d: element multiset changed", l)
		}
		for v, c := range base {
			if seen[v] != c {
				t.Fatalf("level %d: count of %v is %d, want %d", l, v, seen[v], c)
			}
		}
		// Runs sorted.
		rl := tr.effLen[l]
		for start := 0; start < n; start += rl {
			end := start + rl
			if end > n {
				end = n
			}
			run := tr.levels[l][start:end]
			for i := 1; i < len(run); i++ {
				if run[i-1] > run[i] {
					t.Fatalf("level %d run at %d not sorted", l, start)
				}
			}
		}
		// Samples: for run r, sample s covers the prefix of length s·k; the
		// recorded consumed counts must equal, per child, the number of its
		// elements among the lexicographically smallest s·k elements of the
		// merge — verified by re-merging.
		if tr.samples[l] == nil {
			continue
		}
		numRuns := (n + rl - 1) / rl
		for r := 0; r < numRuns; r++ {
			kids := tr.children(l, r)
			runStart := r * rl
			runEnd := runStart + rl
			if runEnd > n {
				runEnd = n
			}
			length := runEnd - runStart
			// Reference merge with consumed tracking.
			pos := make([]int, len(kids))
			for p := 0; p <= length; p++ {
				if p%tr.k == 0 {
					sample := tr.samples[l][r*tr.stride[l]+(p/tr.k)*tr.f:]
					for c := range kids {
						if int(sample[c]) != pos[c] {
							t.Fatalf("level %d run %d sample at prefix %d child %d: %d, want %d",
								l, r, p, c, sample[c], pos[c])
						}
					}
				}
				if p == length {
					break
				}
				// Take the stable minimum head.
				best := -1
				for c, kid := range kids {
					if pos[c] >= len(kid) {
						continue
					}
					if best == -1 || kid[pos[c]] < kids[best][pos[best]] {
						best = c
					}
				}
				pos[best]++
			}
		}
	}
	if len(tr.levels) > 1 {
		top := tr.levels[tr.top()]
		for i := 1; i < len(top); i++ {
			if top[i-1] > top[i] {
				t.Fatal("top level not fully sorted")
			}
		}
	}
}

func TestTreeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{1, 2, 31, 32, 33, 100, 1023, 1024, 1025} {
		for _, opt := range []Options{
			{},
			{Fanout: 2, SampleEvery: 1},
			{Fanout: 3, SampleEvery: 5},
			{Fanout: 4, SampleEvery: 2, Serial: true},
			{Fanout: 7, SampleEvery: 3, Force64: true},
		} {
			keys := randKeys(rng, n, int64(n)/2+1) // duplicates guaranteed
			tree, err := Build(keys, opt)
			if err != nil {
				t.Fatal(err)
			}
			if tree.t32 != nil {
				checkInvariants(t, tree.t32)
			} else {
				checkInvariants(t, tree.t64)
			}
		}
	}
}

// TestSampleFormulaMatchesPaper checks the §5.1 element-count formula:
// ⌈log_f n⌉·n payload elements.
func TestSampleFormulaMatchesPaper(t *testing.T) {
	for _, c := range []struct{ n, f, wantLevels int }{
		{1024, 2, 10}, {1024, 32, 2}, {33, 32, 2}, {32, 32, 1}, {1000000, 32, 4},
	} {
		keys := make([]int64, c.n)
		tree, err := Build(keys, Options{Fanout: c.f})
		if err != nil {
			t.Fatal(err)
		}
		s := tree.Stats()
		if s.Levels != c.wantLevels+1 { // +1 for the base copy
			t.Fatalf("n=%d f=%d: levels = %d, want %d", c.n, c.f, s.Levels, c.wantLevels+1)
		}
		if s.Elements != s.Levels*c.n {
			t.Fatalf("n=%d f=%d: elements = %d, want %d", c.n, c.f, s.Elements, s.Levels*c.n)
		}
	}
}
