package mst

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Serialization implements §5.1's observation that merge sort trees "could
// also be spooled to disk": a built tree is a handful of flat integer
// arrays, so the on-disk format is a small header plus raw little-endian
// array dumps — loadable without rebuilding the O(n log n) construction.
//
// Format (little endian):
//
//	magic "MST1" | flags u32 (bit0: 64-bit payloads, bit1: cascading,
//	bit2: spill-chunked)
//	n u64 | fanout u32 | sampleEvery u32 | levels u32
//	per level: payload array (4 or 8 bytes per element)
//	per level >= 1, if cascading: stride u64 + sample array (4 bytes each)
//
// A spill-chunked tree (Options.SpillRows, spill.go) instead writes
//
//	magic "MST1" | flags u32 (bit2 set, others clear)
//	n u64 | chunkLen u64 | numChunks u32
//	per chunk: one full monolithic tree record (magic included)
//
// Chunks cannot nest: a chunk record with bit2 set is rejected.

const magic = "MST1"

const (
	flag64Bit uint32 = 1 << iota
	flagCascading
	flagChunked
)

// WriteTo serialises the tree. It returns the number of bytes written.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	var err error
	switch {
	case t.chunks != nil:
		err = writeChunked(cw, t)
	case t.t32 != nil:
		err = writeTree(cw, t.t32, false)
	default:
		err = writeTree(cw, t.t64, true)
	}
	if err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// writeChunked serialises a spill forest: a chunk-list header followed by
// one monolithic tree record per chunk.
func writeChunked(w io.Writer, t *Tree) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	//lint:narrowconv-ok the chunk count is at most n < 2³¹
	for _, v := range []any{flagChunked, uint64(t.n), uint64(t.chunkLen), uint32(len(t.chunks))} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, c := range t.chunks {
		var err error
		if c.t32 != nil {
			err = writeTree(w, c.t32, false)
		} else {
			err = writeTree(w, c.t64, true)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadTree deserialises a tree written by WriteTo.
func ReadTree(r io.Reader) (*Tree, error) {
	return readTreeFrom(bufio.NewReader(r), true)
}

// readTreeFrom reads one tree record; allowChunked permits the spill-forest
// form at the top level only (chunks cannot nest).
func readTreeFrom(br *bufio.Reader, allowChunked bool) (*Tree, error) {
	var head [4]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("mst: reading magic: %w", err)
	}
	if string(head[:]) != magic {
		return nil, fmt.Errorf("mst: bad magic %q", head[:])
	}
	var flags uint32
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, fmt.Errorf("mst: reading flags: %w", err)
	}
	if flags&flagChunked != 0 {
		if !allowChunked {
			return nil, fmt.Errorf("mst: nested spill-chunked tree")
		}
		return readChunked(br)
	}
	var fanout, sampleEvery, levels uint32
	var n uint64
	for _, v := range []any{&n, &fanout, &sampleEvery, &levels} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("mst: reading header: %w", err)
		}
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("mst: serialized tree claims %d elements", n)
	}
	if fanout < 2 || sampleEvery < 1 || levels < 1 || levels > 64 {
		return nil, fmt.Errorf("mst: implausible header (f=%d k=%d levels=%d)", fanout, sampleEvery, levels)
	}
	out := &Tree{n: int(n), opt: Options{Fanout: int(fanout), SampleEvery: int(sampleEvery), NoCascading: flags&flagCascading == 0}}
	if flags&flag64Bit != 0 {
		tr, err := readTree[int64](br, out.opt, int(n), int(levels), flags)
		if err != nil {
			return nil, err
		}
		out.t64 = tr
	} else {
		tr, err := readTree[int32](br, out.opt, int(n), int(levels), flags)
		if err != nil {
			return nil, err
		}
		out.t32 = tr
	}
	return out, nil
}

// readChunked reads the spill-forest form: chunk-list header then one
// monolithic record per chunk, validated for mutual consistency.
func readChunked(br *bufio.Reader) (*Tree, error) {
	var n, chunkLen uint64
	var numChunks uint32
	for _, v := range []any{&n, &chunkLen, &numChunks} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("mst: reading chunk header: %w", err)
		}
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("mst: serialized chunked tree claims %d elements", n)
	}
	if chunkLen < 1 || chunkLen >= n {
		return nil, fmt.Errorf("mst: implausible chunk length %d for %d elements", chunkLen, n)
	}
	if want := (n + chunkLen - 1) / chunkLen; uint64(numChunks) != want {
		return nil, fmt.Errorf("mst: chunk count %d inconsistent with n=%d chunkLen=%d", numChunks, n, chunkLen)
	}
	out := &Tree{n: int(n), chunkLen: int(chunkLen), chunks: make([]*Tree, numChunks)}
	for i := range out.chunks {
		c, err := readTreeFrom(br, false)
		if err != nil {
			return nil, fmt.Errorf("mst: reading chunk %d: %w", i, err)
		}
		want := int(chunkLen)
		if i == len(out.chunks)-1 {
			want = int(n) - i*int(chunkLen)
		}
		if c.n != want {
			return nil, fmt.Errorf("mst: chunk %d has %d elements, want %d", i, c.n, want)
		}
		out.chunks[i] = c
	}
	out.opt = out.chunks[0].opt
	out.opt.SpillRows = int(chunkLen)
	return out, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeTree[P payload](w io.Writer, t *tree[P], is64 bool) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	flags := uint32(0)
	if is64 {
		flags |= flag64Bit
	}
	cascading := len(t.levels) <= 1 || t.samples[len(t.samples)-1] != nil
	if cascading {
		flags |= flagCascading
	}
	//lint:narrowconv-ok Options.validate caps f and k, and the level count is log_f(n) — all far below 2³²
	for _, v := range []any{flags, uint64(t.n), uint32(t.f), uint32(t.k), uint32(len(t.levels))} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, lv := range t.levels {
		if err := binary.Write(w, binary.LittleEndian, lv); err != nil {
			return err
		}
	}
	if cascading {
		for l := 1; l < len(t.levels); l++ {
			if err := binary.Write(w, binary.LittleEndian, uint64(t.stride[l])); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, t.samples[l]); err != nil {
				return err
			}
		}
	}
	return nil
}

func readTree[P payload](r io.Reader, opt Options, n, levels int, flags uint32) (*tree[P], error) {
	t := &tree[P]{n: n, f: opt.Fanout, k: opt.SampleEvery}
	t.levels = make([][]P, levels)
	t.samples = make([][]int32, levels)
	t.stride = make([]int, levels)
	t.effLen = make([]int, levels)
	rl := 1
	for l := 0; l < levels; l++ {
		if l > 0 {
			rl *= t.f
			if rl > n {
				rl = n
			}
		}
		t.effLen[l] = rl
		t.levels[l] = make([]P, n)
		if err := binary.Read(r, binary.LittleEndian, t.levels[l]); err != nil {
			return nil, fmt.Errorf("mst: reading level %d: %w", l, err)
		}
	}
	// Validate the level structure implied by the header: the top level
	// must cover n and the second-from-top must not.
	if levels > 1 && t.effLen[levels-1] != n {
		return nil, fmt.Errorf("mst: level count inconsistent with n and fanout")
	}
	if flags&flagCascading != 0 {
		for l := 1; l < levels; l++ {
			var stride uint64
			if err := binary.Read(r, binary.LittleEndian, &stride); err != nil {
				return nil, fmt.Errorf("mst: reading stride %d: %w", l, err)
			}
			numRuns := (n + t.effLen[l] - 1) / t.effLen[l]
			// Accept both the padded SoA stride (the current layout) and the
			// dense pre-padding stride, so records written before the layout
			// change still load; probes only index the dense prefix of a row.
			padded := sampleStride(t.effLen[l], t.k, t.f)
			dense := (t.effLen[l]/t.k + 1) * t.f
			if int(stride) != padded && int(stride) != dense {
				return nil, fmt.Errorf("mst: level %d stride %d, want %d or %d", l, stride, padded, dense)
			}
			t.stride[l] = int(stride)
			t.samples[l] = make([]int32, numRuns*int(stride))
			if err := binary.Read(r, binary.LittleEndian, t.samples[l]); err != nil {
				return nil, fmt.Errorf("mst: reading samples %d: %w", l, err)
			}
		}
	}
	finalizeCodes(t)
	return t, nil
}
