package mst

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"holistic/internal/parallel"
)

// bruteCountBelow is the O(n) reference for CountBelow.
func bruteCountBelow(keys []int64, lo, hi int, threshold int64) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(keys) {
		hi = len(keys)
	}
	cnt := 0
	for i := lo; i < hi; i++ {
		if keys[i] < threshold {
			cnt++
		}
	}
	return cnt
}

// bruteSelectKth is the O(n) reference for SelectKth.
func bruteSelectKth(keys []int64, vLo, vHi int64, k int) (int, bool) {
	for i, v := range keys {
		if v >= vLo && v < vHi {
			if k == 0 {
				return i, true
			}
			k--
		}
	}
	return 0, false
}

func randKeys(rng *rand.Rand, n int, domain int64) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(domain)
	}
	return keys
}

func optVariants() []Options {
	return []Options{
		{},                           // defaults f=k=32
		{Fanout: 2, SampleEvery: 1},  // classic binary tree, dense pointers
		{Fanout: 2, SampleEvery: 7},  // odd sampling distance
		{Fanout: 4, SampleEvery: 16}, //
		{Fanout: 3, SampleEvery: 5},  // non-power-of-two fanout
		{Fanout: 32, SampleEvery: 32, Serial: true},
		{NoCascading: true}, // plain O((log n)^2) queries
		{Force64: true},     // 64-bit payloads
		{Fanout: 64, SampleEvery: 4, Force64: true},
	}
}

func TestCountBelowAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 7, 31, 32, 33, 100, 1000, 4097} {
		keys := randKeys(rng, n, int64(n)+1)
		for _, opt := range optVariants() {
			tree, err := Build(keys, opt)
			if err != nil {
				t.Fatalf("Build(n=%d, %+v): %v", n, opt, err)
			}
			for trial := 0; trial < 50; trial++ {
				lo := rng.Intn(n + 1)
				hi := lo + rng.Intn(n+1-lo)
				th := rng.Int63n(int64(n) + 2)
				got := tree.CountBelow(lo, hi, th)
				want := bruteCountBelow(keys, lo, hi, th)
				if got != want {
					t.Fatalf("CountBelow(n=%d, opt=%+v, lo=%d, hi=%d, th=%d) = %d, want %d",
						n, opt, lo, hi, th, got, want)
				}
			}
		}
	}
}

func TestCountBelowExhaustiveSmall(t *testing.T) {
	// Every (lo, hi, threshold) triple on a fixed small input, all options.
	keys := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4}
	n := len(keys)
	for _, opt := range optVariants() {
		tree, err := Build(keys, opt)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo <= n; lo++ {
			for hi := lo; hi <= n; hi++ {
				for th := int64(0); th <= 10; th++ {
					got := tree.CountBelow(lo, hi, th)
					want := bruteCountBelow(keys, lo, hi, th)
					if got != want {
						t.Fatalf("opt=%+v lo=%d hi=%d th=%d: got %d want %d", opt, lo, hi, th, got, want)
					}
				}
			}
		}
	}
}

func TestSelectKthAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 32, 33, 257, 1000} {
		keys := randKeys(rng, n, int64(n))
		for _, opt := range optVariants() {
			tree, err := Build(keys, opt)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 80; trial++ {
				vLo := rng.Int63n(int64(n) + 1)
				vHi := vLo + rng.Int63n(int64(n)+1-vLo)
				k := rng.Intn(n + 1)
				gotPos, gotOK := tree.SelectKth(vLo, vHi, k)
				wantPos, wantOK := bruteSelectKth(keys, vLo, vHi, k)
				if gotOK != wantOK || (gotOK && gotPos != wantPos) {
					t.Fatalf("SelectKth(n=%d, opt=%+v, vLo=%d, vHi=%d, k=%d) = (%d,%v), want (%d,%v)",
						n, opt, vLo, vHi, k, gotPos, gotOK, wantPos, wantOK)
				}
			}
		}
	}
}

func TestSelectKthExhaustiveSmall(t *testing.T) {
	keys := []int64{5, 0, 2, 7, 2, 2, 9, 1, 4, 4, 6, 8, 0, 3}
	n := len(keys)
	for _, opt := range optVariants() {
		tree, err := Build(keys, opt)
		if err != nil {
			t.Fatal(err)
		}
		for vLo := int64(0); vLo <= 10; vLo++ {
			for vHi := vLo; vHi <= 10; vHi++ {
				for k := 0; k <= n; k++ {
					gotPos, gotOK := tree.SelectKth(vLo, vHi, k)
					wantPos, wantOK := bruteSelectKth(keys, vLo, vHi, k)
					if gotOK != wantOK || (gotOK && gotPos != wantPos) {
						t.Fatalf("opt=%+v vLo=%d vHi=%d k=%d: got (%d,%v) want (%d,%v)",
							opt, vLo, vHi, k, gotPos, gotOK, wantPos, wantOK)
					}
				}
			}
		}
	}
}

func TestCountRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := randKeys(rng, 500, 50)
	tree, err := Build(keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(501)
		hi := lo + rng.Intn(501-lo)
		vLo := rng.Int63n(51)
		vHi := rng.Int63n(51)
		want := 0
		for i := lo; i < hi && i < len(keys); i++ {
			if keys[i] >= vLo && keys[i] < vHi {
				want++
			}
		}
		if got := tree.CountRange(lo, hi, vLo, vHi); got != want {
			t.Fatalf("CountRange(%d,%d,%d,%d) = %d, want %d", lo, hi, vLo, vHi, got, want)
		}
	}
}

// TestCountBelowProperty is a quick-check property: for random inputs and
// random queries, the MST count always equals the brute-force count.
func TestCountBelowProperty(t *testing.T) {
	prop := func(raw []uint16, loSeed, hiSeed, thSeed uint16) bool {
		n := len(raw)
		keys := make([]int64, n)
		for i, v := range raw {
			keys[i] = int64(v % 97)
		}
		tree, err := Build(keys, Options{Fanout: 4, SampleEvery: 3})
		if err != nil {
			return false
		}
		lo := 0
		hi := 0
		if n > 0 {
			lo = int(loSeed) % (n + 1)
			hi = lo + int(hiSeed)%(n+1-lo)
		}
		th := int64(thSeed % 100)
		return tree.CountBelow(lo, hi, th) == bruteCountBelow(keys, lo, hi, th)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMonotoneCountProperty checks the structural invariants of CountBelow:
// monotone in the threshold and additive over position ranges.
func TestMonotoneCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := randKeys(rng, 777, 100)
	tree, err := Build(keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		lo := rng.Intn(778)
		hi := lo + rng.Intn(778-lo)
		mid := lo + rng.Intn(hi-lo+1)
		t1 := rng.Int63n(101)
		t2 := t1 + rng.Int63n(101-t1)
		c1 := tree.CountBelow(lo, hi, t1)
		c2 := tree.CountBelow(lo, hi, t2)
		if c1 > c2 {
			t.Fatalf("count not monotone in threshold: %d@%d > %d@%d", c1, t1, c2, t2)
		}
		if tree.CountBelow(lo, mid, t1)+tree.CountBelow(mid, hi, t1) != c1 {
			t.Fatalf("count not additive over [%d,%d)+[%d,%d)", lo, mid, mid, hi)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]int64{1}, Options{Fanout: 1}); err == nil {
		t.Fatal("expected error for fanout 1")
	}
	if _, err := Build([]int64{1}, Options{SampleEvery: -1}); err == nil {
		t.Fatal("expected error for negative sample distance")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	empty, err := Build(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.CountBelow(0, 0, 5); got != 0 {
		t.Fatalf("empty tree count = %d", got)
	}
	if _, ok := empty.SelectKth(0, 10, 0); ok {
		t.Fatal("empty tree select returned ok")
	}
	single, err := Build([]int64{7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := single.CountBelow(0, 1, 8); got != 1 {
		t.Fatalf("single count below 8 = %d, want 1", got)
	}
	if got := single.CountBelow(0, 1, 7); got != 0 {
		t.Fatalf("single count below 7 = %d, want 0", got)
	}
	if pos, ok := single.SelectKth(7, 8, 0); !ok || pos != 0 {
		t.Fatalf("single select = (%d,%v)", pos, ok)
	}
}

func Test32BitSelection(t *testing.T) {
	small, err := Build([]int64{1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !small.Is32Bit() {
		t.Fatal("small-domain tree should use 32-bit payloads")
	}
	big, err := Build([]int64{1, 1 << 40}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if big.Is32Bit() {
		t.Fatal("wide-domain tree must use 64-bit payloads")
	}
	if got := big.CountBelow(0, 2, 1<<40); got != 1 {
		t.Fatalf("wide count = %d", got)
	}
	forced, err := Build([]int64{1, 2, 3}, Options{Force64: true})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Is32Bit() {
		t.Fatal("Force64 must produce a 64-bit tree")
	}
}

func TestValue(t *testing.T) {
	keys := []int64{4, 8, 15, 16, 23, 42}
	tree, err := Build(keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range keys {
		if got := tree.Value(i); got != want {
			t.Fatalf("Value(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestStats(t *testing.T) {
	n := 10_000
	rng := rand.New(rand.NewSource(5))
	keys := randKeys(rng, n, int64(n))
	tree, err := Build(keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := tree.Stats()
	// ceil(log_32 10000) = 3 levels above the base copy? 32^3 = 32768 >= n,
	// 32^2 = 1024 < n, so levels = base + 3.
	if s.Levels != 4 {
		t.Fatalf("levels = %d, want 4", s.Levels)
	}
	if s.Elements != 4*n {
		t.Fatalf("elements = %d, want %d", s.Elements, 4*n)
	}
	if s.ElementBytes != 4 {
		t.Fatalf("element bytes = %d, want 4 (32-bit path)", s.ElementBytes)
	}
	if s.Pointers == 0 || s.Bytes == 0 {
		t.Fatalf("stats missing pointer accounting: %+v", s)
	}
	noCascade, err := Build(keys, Options{NoCascading: true})
	if err != nil {
		t.Fatal(err)
	}
	if p := noCascade.Stats().Pointers; p != 0 {
		t.Fatalf("no-cascading tree reports %d pointers", p)
	}
}

func TestDuplicateHeavyInput(t *testing.T) {
	// The prevIdcs array of a distinct count over a mostly-unique column is
	// almost entirely zeros (§5.3) — exercise that shape explicitly.
	n := 5000
	keys := make([]int64, n)
	for i := 100; i < n; i += 500 {
		keys[i] = int64(i)
	}
	for _, opt := range []Options{{}, {NoCascading: true}, {Fanout: 2, SampleEvery: 1}} {
		tree, err := Build(keys, opt)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		for trial := 0; trial < 100; trial++ {
			lo := rng.Intn(n + 1)
			hi := lo + rng.Intn(n+1-lo)
			th := rng.Int63n(int64(n))
			if got, want := tree.CountBelow(lo, hi, th), bruteCountBelow(keys, lo, hi, th); got != want {
				t.Fatalf("opt=%+v lo=%d hi=%d th=%d: got %d want %d", opt, lo, hi, th, got, want)
			}
		}
	}
}

// TestParallelBuildPaths forces a large worker pool so the within-run
// parallel multiway merge (splitter search, piece merging, piece-local
// sample recording) actually executes, then validates counts and the
// structural invariants.
func TestParallelBuildPaths(t *testing.T) {
	prev := parallel.SetMaxWorkers(8)
	defer parallel.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(55))
	for _, n := range []int{1 << 15, 1<<15 + 7777} {
		keys := randKeys(rng, n, 64) // few distinct values stress findSplit ties
		for _, opt := range []Options{{Fanout: 2, SampleEvery: 4}, {}} {
			tree, err := Build(keys, opt)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 200; trial++ {
				lo := rng.Intn(n + 1)
				hi := lo + rng.Intn(n+1-lo)
				th := rng.Int63n(66)
				if got, want := tree.CountBelow(lo, hi, th), bruteCountBelow(keys, lo, hi, th); got != want {
					t.Fatalf("n=%d opt=%+v [%d,%d) th=%d: got %d want %d", n, opt, lo, hi, th, got, want)
				}
			}
			if tree.t32 != nil {
				checkInvariants(t, tree.t32)
			} else {
				checkInvariants(t, tree.t64)
			}
		}
	}
}

// TestConcurrentProbes hammers one shared tree from many goroutines — the
// probe phase is embarrassingly parallel because the tree is read-only
// after construction (§4.1). Run with -race.
func TestConcurrentProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	n := 20_000
	keys := randKeys(rng, n, int64(n))
	tree, err := Build(keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := parallel.SetMaxWorkers(8)
	defer parallel.SetMaxWorkers(prev)
	errs := make([]error, 8)
	parallel.ForEach(8, func(g int) {
		r := rand.New(rand.NewSource(int64(g)))
		for trial := 0; trial < 2000; trial++ {
			lo := r.Intn(n + 1)
			hi := lo + r.Intn(n+1-lo)
			th := r.Int63n(int64(n) + 1)
			if got, want := tree.CountBelow(lo, hi, th), bruteCountBelow(keys, lo, hi, th); got != want {
				errs[g] = fmt.Errorf("goroutine %d: count[%d,%d)<%d = %d, want %d", g, lo, hi, th, got, want)
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
