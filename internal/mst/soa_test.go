package mst

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"
)

// TestCodeOfMonotone pins the offset-value code's ordering contract over the
// full signed domain: codes order like the keys' high words, and equal codes
// imply equal high words.
func TestCodeOfMonotone(t *testing.T) {
	vals := []int64{
		math.MinInt64, math.MinInt64 + 1, -(1 << 40), -(1 << 32), -1, 0, 1,
		(1 << 31) - 1, 1 << 31, 1 << 32, (1 << 40) + 7, math.MaxInt64 - 1, math.MaxInt64,
	}
	for _, a := range vals {
		for _, b := range vals {
			ca, cb := codeOf(a), codeOf(b)
			if (a>>32 < b>>32) != (ca < cb) {
				t.Fatalf("codeOf not monotone: %d -> %#x vs %d -> %#x", a, ca, b, cb)
			}
			if (a>>32 == b>>32) != (ca == cb) {
				t.Fatalf("codeOf collision mismatch: %d -> %#x vs %d -> %#x", a, ca, b, cb)
			}
		}
	}
	if codeOf(int32(77)) != 0 {
		t.Fatal("32-bit payload code must be 0")
	}
}

// TestLowerBoundFromOVC exhausts guesses and thresholds against lowerBoundP
// over 64-bit arrays whose high words vary — including negatives, so the
// sign-bias of the code projection is exercised.
func TestLowerBoundFromOVC(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		a := make([]int64, n)
		v := int64(-1) << 40
		for i := range a {
			v += int64(rng.Intn(3)) * (1 << 31) // straddles high-word boundaries
			a[i] = v
		}
		codes := make([]uint32, n)
		for i, x := range a {
			codes[i] = codeOf(x)
		}
		probes := append([]int64{math.MinInt64, math.MaxInt64, 0}, a...)
		for _, x := range probes {
			want := lowerBoundP(a, x)
			for g := -2; g <= n+2; g++ {
				if got := lowerBoundFromOVC(a, codes, x, g); got != want {
					t.Fatalf("lowerBoundFromOVC(%v, %d, guess=%d) = %d, want %d", a, x, g, got, want)
				}
			}
		}
	}
}

// TestSoALayoutAligned checks the cache-line contract of the arena build:
// every level slab, every sample slab and — via the padded stride — every
// per-run sample row starts on a 64-byte boundary.
func TestSoALayoutAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	keys := make([]int64, 10000)
	for i := range keys {
		keys[i] = int64(rng.Intn(len(keys)))
	}
	tree, err := Build(keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.t32
	if tr == nil {
		t.Fatal("expected 32-bit representation")
	}
	for l := 1; l < len(tr.levels); l++ {
		if addr := uintptr(unsafe.Pointer(&tr.levels[l][0])); addr%cacheLineBytes != 0 {
			t.Fatalf("level %d slab at %#x not cache-line aligned", l, addr)
		}
		if tr.samples[l] == nil {
			continue
		}
		if addr := uintptr(unsafe.Pointer(&tr.samples[l][0])); addr%cacheLineBytes != 0 {
			t.Fatalf("sample slab %d at %#x not cache-line aligned", l, addr)
		}
		if tr.stride[l]%(cacheLineBytes/4) != 0 {
			t.Fatalf("level %d stride %d not a whole number of cache lines", l, tr.stride[l])
		}
	}
}

// TestTopCodesMaterialized checks the top code stripe appears exactly for
// large 64-bit trees and matches codeOf element-wise.
func TestTopCodesMaterialized(t *testing.T) {
	big := make([]int64, ovcMinN+100)
	rng := rand.New(rand.NewSource(71))
	for i := range big {
		big[i] = rng.Int63() - rng.Int63()
	}
	tree, err := Build(big, Options{Force64: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.t64
	if tr.topCodes == nil {
		t.Fatal("large 64-bit tree should carry a top code stripe")
	}
	top := tr.levels[len(tr.levels)-1]
	if len(tr.topCodes) != len(top) {
		t.Fatalf("code stripe length %d, top run %d", len(tr.topCodes), len(top))
	}
	for i, v := range top {
		if tr.topCodes[i] != codeOf(v) {
			t.Fatalf("code %d mismatch", i)
		}
	}
	small, err := Build(big[:128], Options{Force64: true})
	if err != nil {
		t.Fatal(err)
	}
	if small.t64.topCodes != nil {
		t.Fatal("small tree should not materialize codes")
	}
	tree32, err := Build([]int64{1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree32.t32 != nil && tree32.t32.topCodes != nil {
		t.Fatal("32-bit tree should not materialize codes")
	}
}
