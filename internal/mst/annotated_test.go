package mst

import (
	"math/rand"
	"testing"
)

// prevIdcs computes the previous-occurrence index array of Algorithm 1 in
// the shifted representation of §5.1: 0 means "no previous occurrence",
// otherwise the value is previousIndex+1.
func prevIdcsRef(vals []int64) []int64 {
	last := make(map[int64]int)
	out := make([]int64, len(vals))
	for i, v := range vals {
		if p, ok := last[v]; ok {
			out[i] = int64(p) + 1
		}
		last[v] = i
	}
	return out
}

func bruteSumDistinct(vals []int64, lo, hi int) (float64, bool) {
	seen := make(map[int64]bool)
	sum := 0.0
	any := false
	for i := lo; i < hi && i < len(vals); i++ {
		if i < 0 || seen[vals[i]] {
			continue
		}
		seen[vals[i]] = true
		sum += float64(vals[i])
		any = true
	}
	return sum, any
}

func bruteMinDistinct(vals []int64, lo, hi int) (int64, bool) {
	var best int64
	any := false
	for i := lo; i < hi && i < len(vals); i++ {
		if !any || vals[i] < best {
			best = vals[i]
			any = true
		}
	}
	return best, any
}

func TestAnnotatedSumDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{0, 1, 2, 17, 64, 500, 3000} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(int64(n)/4 + 2) // plenty of duplicates
		}
		keys := prevIdcsRef(vals)
		aggVals := make([]float64, n)
		for i, v := range vals {
			aggVals[i] = float64(v)
		}
		for _, opt := range []Options{{}, {Fanout: 2, SampleEvery: 1}, {NoCascading: true}, {Serial: true}} {
			at, err := BuildAnnotated(keys, aggVals, func(a, b float64) float64 { return a + b }, opt)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 60; trial++ {
				lo := rng.Intn(n + 1)
				hi := lo + rng.Intn(n+1-lo)
				// SUM DISTINCT over frame [lo, hi): entries with prevIdx
				// (shifted) < lo+1 are first occurrences inside the frame.
				got, gotOK := at.AggBelow(lo, hi, int64(lo)+1)
				want, wantOK := bruteSumDistinct(vals, lo, hi)
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("n=%d opt=%+v frame [%d,%d): got (%v,%v) want (%v,%v)",
						n, opt, lo, hi, got, gotOK, want, wantOK)
				}
				// The count must agree with a plain count query too.
				gotCnt := at.CountBelow(lo, hi, int64(lo)+1)
				wantCnt := bruteCountBelow(keys, lo, hi, int64(lo)+1)
				if gotCnt != wantCnt {
					t.Fatalf("n=%d frame [%d,%d): count %d want %d", n, lo, hi, gotCnt, wantCnt)
				}
			}
		}
	}
}

func TestAnnotatedMinDistinct(t *testing.T) {
	// MIN(DISTINCT x) == MIN(x); the annotated tree must still produce it
	// through prefix-min annotations.
	rng := rand.New(rand.NewSource(11))
	n := 1000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(100)
	}
	keys := prevIdcsRef(vals)
	at, err := BuildAnnotated(keys, vals, func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(n + 1)
		hi := lo + rng.Intn(n+1-lo)
		got, gotOK := at.AggBelow(lo, hi, int64(lo)+1)
		want, wantOK := bruteMinDistinct(vals, lo, hi)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("frame [%d,%d): got (%v,%v) want (%v,%v)", lo, hi, got, gotOK, want, wantOK)
		}
	}
}

func TestAnnotatedValidation(t *testing.T) {
	if _, err := BuildAnnotated([]int64{0, 1}, []int64{1}, func(a, b int64) int64 { return a + b }, Options{}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := BuildAnnotated([]int64{-1}, []int64{1}, func(a, b int64) int64 { return a + b }, Options{}); err == nil {
		t.Fatal("expected domain error for negative key")
	}
	if _, err := BuildAnnotated([]int64{5}, []int64{1}, func(a, b int64) int64 { return a + b }, Options{}); err == nil {
		t.Fatal("expected domain error for key > n")
	}
}
