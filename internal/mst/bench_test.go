package mst

import (
	"fmt"
	"math/rand"
	"testing"
)

// Micro-benchmarks of the raw data structure, separating build and probe
// cost from the window operator around it (the §6.6 methodology).

func benchKeys(n int) []int64 {
	rng := rand.New(rand.NewSource(42))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(int64(n))
	}
	return keys
}

func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		keys := benchKeys(n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(8 * n))
			for i := 0; i < b.N; i++ {
				if _, err := Build(keys, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCountBelow(b *testing.B) {
	n := 1_000_000
	keys := benchKeys(n)
	frame := n / 20
	for _, cfg := range []struct {
		name string
		opt  Options
	}{
		{"cascading", Options{}},
		{"noCascading", Options{NoCascading: true}},
		{"f2k1", Options{Fanout: 2, SampleEvery: 1}},
	} {
		tree, err := Build(keys, cfg.opt)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				row := i % n
				lo := row - frame
				if lo < 0 {
					lo = 0
				}
				sink += tree.CountBelow(lo, row+1, keys[row])
			}
			if sink < 0 {
				b.Fatal("impossible")
			}
		})
	}
}

func BenchmarkSelectKth(b *testing.B) {
	n := 1_000_000
	// Permutation-array payload, as percentiles use (§4.5).
	perm := make([]int64, n)
	for i := range perm {
		perm[i] = int64(i)
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	tree, err := Build(perm, Options{})
	if err != nil {
		b.Fatal(err)
	}
	frame := n / 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := i % (n - frame)
		if _, ok := tree.SelectKth(int64(row), int64(row+frame), frame/2); !ok {
			b.Fatal("select failed")
		}
	}
}

func BenchmarkAnnotatedAggBelow(b *testing.B) {
	n := 500_000
	rng := rand.New(rand.NewSource(2))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(int64(n) / 4)
	}
	prev := prevIdcsRef(vals)
	aggVals := make([]float64, n)
	for i, v := range vals {
		aggVals[i] = float64(v)
	}
	at, err := BuildAnnotated(prev, aggVals, func(a, b float64) float64 { return a + b }, Options{})
	if err != nil {
		b.Fatal(err)
	}
	frame := n / 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := i % n
		lo := row - frame
		if lo < 0 {
			lo = 0
		}
		at.AggBelow(lo, row+1, int64(lo)+1)
	}
}
