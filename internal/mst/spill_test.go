package mst

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSpillEquivalence drives every query primitive of a spill-chunked tree
// against a monolithic tree over the same keys: answers must be identical
// for arbitrary position ranges, thresholds, multi-range selects and batch
// kernels, including the full-span queries served by the lazily merged top
// run.
func TestSpillEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 63, 64, 65, 257, 1000} {
		for _, spill := range []int{1, 7, 64, 250} {
			for _, force64 := range []bool{false, true} {
				keys := make([]int64, n)
				for i := range keys {
					keys[i] = int64(rng.Intn(n + 1))
				}
				if force64 {
					for i := range keys {
						keys[i] += 1 << 40
					}
				}
				mono, err := Build(keys, Options{})
				if err != nil {
					t.Fatal(err)
				}
				chunked, err := Build(keys, Options{SpillRows: spill})
				if err != nil {
					t.Fatal(err)
				}
				if n > spill && chunked.ChunkCount() == 0 {
					t.Fatalf("n=%d spill=%d: expected a chunk forest", n, spill)
				}
				checkSpillPair(t, rng, mono, chunked, keys)
			}
		}
	}
}

func checkSpillPair(t *testing.T, rng *rand.Rand, mono, chunked *Tree, keys []int64) {
	t.Helper()
	n := len(keys)
	if mono.Len() != chunked.Len() {
		t.Fatalf("Len: %d vs %d", mono.Len(), chunked.Len())
	}
	for i := 0; i < n; i++ {
		if mono.Value(i) != chunked.Value(i) {
			t.Fatalf("Value(%d): %d vs %d", i, mono.Value(i), chunked.Value(i))
		}
	}
	for q := 0; q < 200; q++ {
		lo := rng.Intn(n + 1)
		hi := rng.Intn(n + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		thr := keys[rng.Intn(n)] + int64(rng.Intn(3)-1)
		if got, want := chunked.CountBelow(lo, hi, thr), mono.CountBelow(lo, hi, thr); got != want {
			t.Fatalf("CountBelow(%d,%d,%d): %d vs %d", lo, hi, thr, got, want)
		}
		vLo := keys[rng.Intn(n)]
		vHi := vLo + int64(rng.Intn(5))
		if got, want := chunked.CountRange(lo, hi, vLo, vHi), mono.CountRange(lo, hi, vLo, vHi); got != want {
			t.Fatalf("CountRange: %d vs %d", got, want)
		}
		k := rng.Intn(n + 1)
		gp, gok := chunked.SelectKth(vLo, vHi, k)
		wp, wok := mono.SelectKth(vLo, vHi, k)
		if gok != wok || (gok && gp != wp) {
			t.Fatalf("SelectKth(%d,%d,%d): (%d,%v) vs (%d,%v)", vLo, vHi, k, gp, gok, wp, wok)
		}
		ranges := [][2]int64{{vLo, vHi}, {vHi + 1, vHi + 3}}
		gp, gok = chunked.SelectKthRanges(ranges, k)
		wp, wok = mono.SelectKthRanges(ranges, k)
		if gok != wok || (gok && gp != wp) {
			t.Fatalf("SelectKthRanges: (%d,%v) vs (%d,%v)", gp, gok, wp, wok)
		}
		if got, want := chunked.CountRanges(lo, hi, ranges), mono.CountRanges(lo, hi, ranges); got != want {
			t.Fatalf("CountRanges: %d vs %d", got, want)
		}
	}
	// Full-span queries exercise the lazily merged top run.
	for q := 0; q < 50; q++ {
		thr := keys[rng.Intn(n)] + int64(rng.Intn(3)-1)
		if got, want := chunked.CountBelow(0, n, thr), mono.CountBelow(0, n, thr); got != want {
			t.Fatalf("full-span CountBelow(%d): %d vs %d", thr, got, want)
		}
	}
	// Batch kernels must agree with the scalar answers on the forest.
	m := 64
	lo32 := make([]int32, m)
	hi32 := make([]int32, m)
	thr := make([]int64, m)
	out := make([]int32, m)
	for q := 0; q < m; q++ {
		a, b := rng.Intn(n+1), rng.Intn(n+1)
		if a > b {
			a, b = b, a
		}
		lo32[q], hi32[q] = int32(a), int32(b)
		thr[q] = keys[rng.Intn(n)]
	}
	chunked.CountBelowBatch(lo32, hi32, thr, out)
	for q := 0; q < m; q++ {
		if want := mono.CountBelow(int(lo32[q]), int(hi32[q]), thr[q]); int(out[q]) != want {
			t.Fatalf("CountBelowBatch[%d]: %d vs %d", q, out[q], want)
		}
	}
	off := make([]int32, m+1)
	var vlo, vhi []int64
	ks := make([]int32, m)
	for q := 0; q < m; q++ {
		off[q] = int32(len(vlo))
		nr := 1 + rng.Intn(2)
		base := keys[rng.Intn(n)]
		for j := 0; j < nr; j++ {
			vlo = append(vlo, base)
			vhi = append(vhi, base+int64(rng.Intn(4)))
			base = vhi[len(vhi)-1] + 2
		}
		ks[q] = int32(rng.Intn(n + 1))
	}
	off[m] = int32(len(vlo))
	sel := make([]int32, m)
	chunked.SelectKthRangesBatch(off, vlo, vhi, ks, sel)
	var scratch [][2]int64
	for q := 0; q < m; q++ {
		scratch = scratch[:0]
		for j := off[q]; j < off[q+1]; j++ {
			scratch = append(scratch, [2]int64{vlo[j], vhi[j]})
		}
		wp, wok := mono.SelectKthRanges(scratch, int(ks[q]))
		if !wok {
			wp = -1
		}
		if int(sel[q]) != wp {
			t.Fatalf("SelectKthRangesBatch[%d]: %d vs %d", q, sel[q], wp)
		}
	}
}

// TestSpillSerializeRoundTrip checks WriteTo/ReadTree on a chunk forest.
func TestSpillSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := make([]int64, 500)
	for i := range keys {
		keys[i] = int64(rng.Intn(300))
	}
	orig, err := Build(keys, Options{SpillRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ChunkCount() != orig.ChunkCount() || got.Len() != orig.Len() {
		t.Fatalf("shape: chunks %d vs %d, len %d vs %d", got.ChunkCount(), orig.ChunkCount(), got.Len(), orig.Len())
	}
	for q := 0; q < 200; q++ {
		lo := rng.Intn(len(keys) + 1)
		hi := rng.Intn(len(keys) + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		thr := int64(rng.Intn(300))
		if a, b := got.CountBelow(lo, hi, thr), orig.CountBelow(lo, hi, thr); a != b {
			t.Fatalf("CountBelow after round trip: %d vs %d", a, b)
		}
	}
	// Truncated input must fail cleanly.
	full := buf.Bytes()
	var buf2 bytes.Buffer
	if _, err := orig.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTree(bytes.NewReader(buf2.Bytes()[:len(full)/2])); err == nil {
		t.Fatal("truncated chunked tree deserialised without error")
	}
}

// TestSpillOptionValidation pins the Options.SpillRows contract.
func TestSpillOptionValidation(t *testing.T) {
	if _, err := Build([]int64{1, 2}, Options{SpillRows: -1}); err == nil {
		t.Fatal("negative SpillRows accepted")
	}
	// SpillRows >= n builds a monolithic tree.
	tr, err := Build([]int64{3, 1, 2}, Options{SpillRows: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.ChunkCount() != 0 {
		t.Fatalf("SpillRows == n built a forest of %d chunks", tr.ChunkCount())
	}
}
