package mst

import "fmt"

// maxSelectRanges bounds the number of value ranges a multi-range select
// accepts. Frame exclusion splits a frame into at most three continuous
// ranges (§4.7), so three is all the window operator ever needs.
const maxSelectRanges = 4

// SelectKthRanges generalises SelectKth to a union of disjoint value ranges:
// it returns the base position of the i-th entry (0-based, in position
// order) whose value falls into any of the half-open ranges. The ranges must
// be sorted and non-overlapping. Frame exclusion clauses produce such
// unions; the descent simply tracks one cascaded rank pair per range, so the
// query stays O(log n) with a constant factor of at most three (§4.7).
func (t *Tree) SelectKthRanges(ranges [][2]int64, i int) (pos int, ok bool) {
	if i < 0 || t.n == 0 || len(ranges) == 0 {
		return 0, false
	}
	if len(ranges) > maxSelectRanges {
		//lint:invariant frame exclusion yields at most 3 ranges (§4.7); more is a window-operator bug, and truncating would silently mis-select
		panic(fmt.Sprintf("mst: SelectKthRanges got %d ranges, max %d", len(ranges), maxSelectRanges))
	}
	if t.chunks != nil {
		return t.chunkedSelectKthRanges(ranges, i)
	}
	if len(ranges) == 1 {
		return t.SelectKth(ranges[0][0], ranges[0][1], i)
	}
	if t.t32 != nil {
		var b [maxSelectRanges][2]int32
		m := 0
		for _, r := range ranges {
			lo, hi := clampI32(r[0]), clampI32(r[1])
			if lo < hi {
				b[m] = [2]int32{lo, hi}
				m++
			}
		}
		return selectKthMulti(t.t32, b[:m], i)
	}
	var b [maxSelectRanges][2]int64
	m := 0
	for _, r := range ranges {
		if r[0] < r[1] {
			b[m] = r
			m++
		}
	}
	return selectKthMulti(t.t64, b[:m], i)
}

// CountRanges returns the number of entries at positions [lo, hi) whose
// value falls into any of the sorted, disjoint half-open value ranges.
func (t *Tree) CountRanges(lo, hi int, ranges [][2]int64) int {
	total := 0
	for _, r := range ranges {
		total += t.CountRange(lo, hi, r[0], r[1])
	}
	return total
}

// selectKthMulti runs the Figure 7 descent with one rank pair per value
// range.
func selectKthMulti[P payload](t *tree[P], bounds [][2]P, i int) (int, bool) {
	if len(bounds) == 0 {
		return 0, false
	}
	top := t.top()
	run0 := t.run(top, 0)
	var ranks [maxSelectRanges][2]int
	total := 0
	for r, b := range bounds {
		ranks[r][0] = lowerBoundP(run0, b[0])
		ranks[r][1] = lowerBoundP(run0, b[1])
		total += ranks[r][1] - ranks[r][0]
	}
	if i >= total {
		return 0, false
	}
	level, run := top, 0
	for level > 0 {
		runStart := run * t.effLen[level]
		runEnd := runStart + t.effLen[level]
		if runEnd > t.n {
			runEnd = t.n
		}
		numKids := (runEnd - runStart + t.effLen[level-1] - 1) / t.effLen[level-1]
		descended := false
		for c := 0; c < numKids; c++ {
			var childRanks [maxSelectRanges][2]int
			cnt := 0
			for r, b := range bounds {
				childRanks[r][0] = t.childRank(level, run, ranks[r][0], c, b[0])
				childRanks[r][1] = t.childRank(level, run, ranks[r][1], c, b[1])
				cnt += childRanks[r][1] - childRanks[r][0]
			}
			if i < cnt {
				copy(ranks[:], childRanks[:])
				run = run*t.f + c
				level--
				descended = true
				break
			}
			i -= cnt
		}
		if !descended {
			//lint:invariant the caller-checked rank i is < the root count, so some child run must contain the i-th element; losing it means corrupted cascade samples
			panic("mst: SelectKthRanges descent lost element")
		}
	}
	return run, true
}
