package mst

import (
	"math/rand"
	"testing"
)

func bruteSelectRanges(keys []int64, ranges [][2]int64, k int) (int, bool) {
	for i, v := range keys {
		in := false
		for _, r := range ranges {
			if v >= r[0] && v < r[1] {
				in = true
				break
			}
		}
		if in {
			if k == 0 {
				return i, true
			}
			k--
		}
	}
	return 0, false
}

func TestSelectKthRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 5, 64, 500, 2000} {
		keys := randKeys(rng, n, int64(n))
		for _, opt := range []Options{{}, {Fanout: 2, SampleEvery: 1}, {NoCascading: true}, {Force64: true}} {
			tree, err := Build(keys, opt)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 100; trial++ {
				// Build up to 3 sorted disjoint value ranges.
				numR := 1 + rng.Intn(3)
				cuts := make([]int64, 0, 2*numR)
				for len(cuts) < 2*numR {
					cuts = append(cuts, rng.Int63n(int64(n)+1))
				}
				for i := 1; i < len(cuts); i++ {
					for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
						cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
					}
				}
				ranges := make([][2]int64, numR)
				for r := 0; r < numR; r++ {
					ranges[r] = [2]int64{cuts[2*r], cuts[2*r+1]}
				}
				k := rng.Intn(n + 1)
				gotPos, gotOK := tree.SelectKthRanges(ranges, k)
				wantPos, wantOK := bruteSelectRanges(keys, ranges, k)
				if gotOK != wantOK || (gotOK && gotPos != wantPos) {
					t.Fatalf("n=%d opt=%+v ranges=%v k=%d: got (%d,%v) want (%d,%v)",
						n, opt, ranges, k, gotPos, gotOK, wantPos, wantOK)
				}
				// CountRanges over the full position span must agree with
				// the number of qualifying entries.
				total := 0
				for _, v := range keys {
					for _, r := range ranges {
						if v >= r[0] && v < r[1] {
							total++
							break
						}
					}
				}
				if got := tree.CountRanges(0, n, ranges); got != total {
					t.Fatalf("CountRanges = %d, want %d", got, total)
				}
			}
		}
	}
}

func TestSelectKthRangesEdge(t *testing.T) {
	tree, err := Build([]int64{5, 2, 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tree.SelectKthRanges(nil, 0); ok {
		t.Fatal("no ranges must select nothing")
	}
	if _, ok := tree.SelectKthRanges([][2]int64{{3, 3}, {9, 9}}, 0); ok {
		t.Fatal("empty ranges must select nothing")
	}
	if pos, ok := tree.SelectKthRanges([][2]int64{{0, 3}, {6, 9}}, 1); !ok || pos != 2 {
		t.Fatalf("got (%d,%v), want (2,true)", pos, ok)
	}
}
