package mst

import (
	"math"

	"holistic/internal/arena"
)

// Batched, level-synchronous count kernels. A window probe issues one count
// query per row, and adjacent rows' frames overlap almost completely, so the
// per-query costs that the scalar descent pays again and again — the O(log n)
// top-level binary search, re-deriving per-level run geometry, reloading the
// cascading sample rows — are shared across a whole chunk of queries here:
//
//   - the top-level rank is found by galloping (exponential + binary search)
//     from the previous query's rank, which is O(1) amortised when
//     consecutive thresholds move slowly (sliding frames);
//   - the descent is level-synchronous: a frontier of (query, run, rank)
//     triples kept in flat int32 structure-of-arrays scratch is advanced one
//     level at a time, so each level's run length, sample table and child
//     element slab are loaded once per level, not once per query, and the
//     frontier items touching the same run hit warm cache lines;
//   - there is no per-level function call or closure: the whole descent is
//     two nested loops over int32 arrays.
//
// Results are exactly CountBelow per query — the equivalence is enforced by
// batch_test.go, FuzzCountSelect and core's batch_equiv_test.

// CountBelowBatch answers len(out) count queries at once:
// out[q] = CountBelow(int(lo[q]), int(hi[q]), threshold[q]). The lo, hi and
// threshold slices must have the same length as out. Queries should be in
// probe order (adjacent frames adjacent) for the galloping top-level search
// to pay off; any order is correct.
func (t *Tree) CountBelowBatch(lo, hi []int32, threshold []int64, out []int32) {
	m := len(out)
	if len(lo) != m || len(hi) != m || len(threshold) != m {
		//lint:invariant the collector builds all four arrays with one length; a mismatch is a caller bug that would silently mis-answer queries
		panic("mst: CountBelowBatch slice length mismatch")
	}
	if m >= math.MaxInt32 {
		//lint:invariant the kernel addresses queries with int32 slots; callers batch per chunk, far below 2³¹ queries
		panic("mst: CountBelowBatch batch of 2³¹ or more queries")
	}
	if m == 0 {
		return
	}
	if t.n == 0 {
		for q := range out {
			out[q] = 0
		}
		return
	}
	if t.chunks != nil {
		// Spill-chunked trees answer batches with the scalar per-chunk
		// decomposition: the level-synchronous kernels assume one monolithic
		// level geometry. Results stay exactly CountBelow per query.
		for q := range out {
			out[q] = i32(t.CountBelow(int(lo[q]), int(hi[q]), threshold[q]))
		}
		return
	}
	// Clamp every query exactly like CountBelow and resolve the trivial ones
	// up front; resolved queries are marked with an empty position range so
	// the kernels skip them without a separate mask.
	noArena := t.opt.NoArena
	cb := kernelInt32(noArena, 2*m)
	klo, khi := cb[:m], cb[m:]
	for q := 0; q < m; q++ {
		l, h := int(lo[q]), int(hi[q])
		if l < 0 {
			l = 0
		}
		if h > t.n {
			h = t.n
		}
		if l >= h {
			out[q] = 0
			l, h = 0, 0
		}
		klo[q], khi[q] = i32(l), i32(h)
	}
	if t.t32 != nil {
		thr := kernelInt32(noArena, m)
		for q := 0; q < m; q++ {
			if klo[q] >= khi[q] {
				continue
			}
			switch tv := threshold[q]; {
			case tv <= 0:
				out[q] = 0
				klo[q], khi[q] = 0, 0
			case tv > math.MaxInt32:
				out[q] = khi[q] - klo[q]
				klo[q], khi[q] = 0, 0
			default:
				thr[q] = int32(tv)
			}
		}
		countKernel(t.t32, klo, khi, thr, out, noArena)
		putKernelInt32(noArena, thr)
	} else {
		countKernel(t.t64, klo, khi, threshold, out, noArena)
	}
	putKernelInt32(noArena, cb)
}

// countKernel is the generic level-synchronous count descent. lo/hi are
// pre-clamped to [0, n]; queries with lo >= hi are already resolved and
// skipped. out[q] accumulates the covered-run ranks of query q.
func countKernel[P payload](t *tree[P], lo, hi []int32, thr []P, out []int32, noArena bool) {
	m := len(out)
	top := t.top()
	run0 := t.run(top, 0)

	// Frontier scratch: at any level a query keeps at most two partial runs
	// alive (the runs containing lo and hi-1), so 2·m triples bound both the
	// current and the next frontier. One flat pooled buffer holds all six
	// structure-of-arrays columns.
	buf := kernelInt32(noArena, 12*m)
	cq, cr, crank := buf[:2*m], buf[2*m:4*m], buf[4*m:6*m]
	nq, nr, nrank := buf[6*m:8*m], buf[8*m:10*m], buf[10*m:12*m]

	// Top level: one sorted run. Seed each query's binary search with the
	// previous query's rank — adjacent probe rows have nearly equal
	// thresholds, so the gallop usually terminates within a few elements.
	cn := 0
	g := 0
	for q := 0; q < m; q++ {
		if lo[q] >= hi[q] {
			continue
		}
		rank := topSearch(t, run0, thr[q], g)
		g = rank
		if lo[q] <= 0 && int(hi[q]) >= t.n {
			out[q] = i32(rank)
			continue
		}
		out[q] = 0
		cq[cn], cr[cn], crank[cn] = i32(q), 0, i32(rank)
		cn++
	}

	// Descend the whole frontier one level per iteration. Per-level state
	// (run geometry, sample table, child element slab) is hoisted out of the
	// per-item loop. Partially covered runs are never leaves: level-0 runs
	// hold one element each, so the frontier drains at level 1.
	for level := top; level >= 1 && cn > 0; level-- {
		runLen := t.effLen[level]
		childLen := t.effLen[level-1]
		samples := t.samples[level]
		stride := 0
		if samples != nil {
			stride = t.stride[level]
		}
		kids := t.levels[level-1]
		f, k := t.f, t.k
		nn := 0
		for it := 0; it < cn; it++ {
			q := int(cq[it])
			r := int(cr[it])
			rank := int(crank[it])
			runStart := r * runLen
			runEnd := runStart + runLen
			if runEnd > t.n {
				runEnd = t.n
			}
			qlo, qhi := int(lo[q]), int(hi[q])
			// Jump straight to the children overlapping [qlo, qhi): the
			// frontier item exists because the query range overlaps this run,
			// so cFirst <= cLast.
			cFirst := 0
			if qlo > runStart {
				cFirst = (qlo - runStart) / childLen
			}
			last := qhi
			if last > runEnd {
				last = runEnd
			}
			cLast := (last - 1 - runStart) / childLen
			x := thr[q]
			acc := int32(0)
			for c := cFirst; c <= cLast; c++ {
				cs := runStart + c*childLen
				ce := cs + childLen
				if ce > runEnd {
					ce = runEnd
				}
				cRank := childRankIn(samples, stride, r, rank, c, f, k, kids[cs:ce], x)
				if qlo <= cs && qhi >= ce {
					acc += i32(cRank)
				} else {
					if nn == len(nq) {
						//lint:invariant a query keeps at most two partial runs per level (the runs holding lo and hi-1), so the next frontier holds at most 2·m items
						panic("mst: countKernel frontier overflow")
					}
					nq[nn], nr[nn], nrank[nn] = i32(q), i32(r*f+c), i32(cRank)
					nn++
				}
			}
			out[q] += acc
		}
		cq, nq = nq, cq
		cr, nr = nr, cr
		crank, nrank = nrank, crank
		cn = nn
	}
	putKernelInt32(noArena, buf)
}

// childRankIn is childRank with the per-level state (sample table, stride,
// child run slice) hoisted by the caller, so the batched kernels resolve
// cascading pointers without re-deriving run geometry per query.
func childRankIn[P payload](samples []int32, stride, r, rank, c, f, k int, kid []P, x P) int {
	if samples == nil {
		return lowerBoundP(kid, x)
	}
	q := rank / k
	base := int(samples[r*stride+q*f+c])
	wHi := base + rank - q*k
	if wHi > len(kid) {
		wHi = len(kid)
	}
	return base + lowerBoundP(kid[base:wHi], x)
}

// lowerBoundFromP is lowerBoundP seeded with a guess g: it gallops
// exponentially from g toward the answer and binary-searches the final
// window, so the cost is O(log d) in the distance d between the guess and
// the answer instead of O(log n). With g out of [0, len(a)] the guess is
// clamped; any g is correct.
func lowerBoundFromP[P payload](a []P, x P, g int) int {
	n := len(a)
	if g < 0 {
		g = 0
	} else if g > n {
		g = n
	}
	if g < n && a[g] < x {
		// Answer right of g: probe g+1, g+2, g+4, … lb always satisfies
		// a[lb] < x; hi is n or satisfies a[hi] >= x.
		lb, hi := g, n
		for step := 1; ; step <<= 1 {
			j := lb + step
			if j >= n {
				break
			}
			if a[j] < x {
				lb = j
			} else {
				hi = j
				break
			}
		}
		return lb + 1 + lowerBoundP(a[lb+1:hi], x)
	}
	if g > 0 && a[g-1] >= x {
		// Answer at or left of g-1: probe g-2, g-3, g-5, … ub always
		// satisfies a[ub] >= x; lo is 0 or satisfies a[lo-1] < x.
		ub := g - 1
		lo := 0
		for step := 1; ; step <<= 1 {
			j := ub - step
			if j < 0 {
				break
			}
			if a[j] >= x {
				ub = j
			} else {
				lo = j + 1
				break
			}
		}
		return lo + lowerBoundP(a[lo:ub], x)
	}
	return g
}

// kernelInt32 fetches flat int32 kernel scratch, honouring NoArena.
func kernelInt32(noArena bool, n int) []int32 {
	if noArena {
		return make([]int32, n)
	}
	return arena.Int32s.Get(n)
}

// putKernelInt32 returns kernel scratch to the pool. Under NoArena the
// buffer came from make and must not enter the pool (its counters account
// only pooled buffers).
func putKernelInt32(noArena bool, buf []int32) {
	if noArena {
		return
	}
	arena.Int32s.Put(buf)
}
