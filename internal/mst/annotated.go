package mst

import (
	"fmt"
	"math"

	"holistic/internal/parallel"
)

// AnnotatedTree is a merge sort tree whose elements additionally carry
// running prefix aggregates within every sorted run (Figure 5). It evaluates
// framed DISTINCT variants of arbitrary distributive (or algebraic)
// aggregates: the aggregate only needs a merge function — no inverse — which
// is what makes the approach applicable to user-defined aggregates (§4.3).
//
// The tree is keyed by the previous-occurrence index of each tuple
// (Algorithm 1): an entry's value contributes to a frame [lo, hi) exactly
// when its position is inside the frame and its previous occurrence lies
// before lo, i.e. exactly when a CountBelow query would count it. The
// aggregate over a frame is therefore assembled from the same run prefixes
// the count query visits, using the stored prefix aggregates.
//
// Internally keys are disambiguated to key·(n+1)+position so that every
// element is unique and a run's merge order is reproducible; thresholds
// scale accordingly. This forces the 64-bit representation.
type AnnotatedTree[S any] struct {
	t     *tree[int64]
	agg   [][]S
	merge func(S, S) S
	n     int
	shift int64
	// noArena mirrors Options.NoArena for the batched kernel's scratch.
	noArena bool
}

// BuildAnnotated constructs an annotated merge sort tree over keys, where
// values[i] is the aggregate input of tuple i and merge combines two
// aggregate states. Keys must lie in [0, len(keys)] — the previous-index
// domain of §5.1.
func BuildAnnotated[S any](keys []int64, values []S, merge func(S, S) S, opt Options) (*AnnotatedTree[S], error) {
	opt = opt.resolveFor(len(keys))
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := len(keys)
	if len(values) != n {
		return nil, fmt.Errorf("mst: %d keys but %d values", n, len(values))
	}
	if n >= math.MaxInt32 {
		return nil, fmt.Errorf("mst: input of %d elements exceeds the 2³¹ element limit", n)
	}
	shift := int64(n) + 1
	composite := make([]int64, n)
	for i, k := range keys {
		if k < 0 || k > int64(n) {
			return nil, fmt.Errorf("mst: key %d at position %d outside previous-index domain [0, %d]", k, i, n)
		}
		composite[i] = k*shift + int64(i)
	}
	at := &AnnotatedTree[S]{
		t:       buildTree(composite, opt),
		merge:   merge,
		n:       n,
		shift:   shift,
		noArena: opt.NoArena,
	}
	// Annotate every level with per-run prefix aggregates. The base position
	// of an element is recovered from its composite key, so annotations can
	// be computed after the build in one parallel pass per level.
	at.agg = make([][]S, len(at.t.levels))
	for l := range at.t.levels {
		elems := at.t.levels[l]
		agg := make([]S, len(elems))
		rl := at.t.effLen[l]
		numRuns := 1
		if rl > 0 {
			numRuns = (n + rl - 1) / rl
		}
		build := func(r int) {
			start := r * rl
			end := start + rl
			if end > n {
				end = n
			}
			var acc S
			for i := start; i < end; i++ {
				pos := int(elems[i] % at.shift)
				v := values[pos]
				if i == start {
					acc = v
				} else {
					acc = merge(acc, v)
				}
				agg[i] = acc
			}
		}
		if opt.Serial {
			for r := 0; r < numRuns; r++ {
				build(r)
			}
		} else {
			parallel.ForEach(numRuns, build)
		}
		at.agg[l] = agg
	}
	return at, nil
}

// Len returns the number of elements the tree was built over.
func (at *AnnotatedTree[S]) Len() int { return at.n }

// MemBytes reports the approximate resident size of the tree: payloads and
// cascading pointers plus the per-element aggregate annotations, assuming
// aggBytes bytes per aggregate state. Used for cache budget accounting.
func (at *AnnotatedTree[S]) MemBytes(aggBytes int) int64 {
	total := int64(stats(at.t, 8).Bytes)
	for _, lv := range at.agg {
		total += int64(len(lv) * aggBytes)
	}
	return total
}

// CountBelow returns the number of entries at positions [lo, hi) whose key
// is strictly smaller than threshold (the distinct count when keys are
// previous-occurrence indices and threshold is the frame start).
func (at *AnnotatedTree[S]) CountBelow(lo, hi int, threshold int64) int {
	lo, hi, ct, ok := at.clip(lo, hi, threshold)
	if !ok {
		return 0
	}
	return at.t.countBelow(lo, hi, ct)
}

// aggWalkFrame is one suspended partial run of the iterative aggregate
// walk: the run's level, index and exact rank of the threshold, plus the
// resumable child-scan cursor (cs, absolute position) and the run's end.
type aggWalkFrame struct {
	level, run, rank int32
	cs, runEnd       int32
}

// AggBelow merges the aggregate states of all entries at positions [lo, hi)
// whose key is strictly smaller than threshold. ok is false when no entry
// qualifies (the SQL aggregate is then NULL).
//
// The walk visits the same run-prefix decomposition a count query produces
// (§4.3), iteratively with an explicit stack of resumable frames: child
// scans suspend when they descend into a partially covered child and resume
// afterwards, so contributions merge in exactly the left-to-right recursion
// order without allocating a visit closure per query.
func (at *AnnotatedTree[S]) AggBelow(lo, hi int, threshold int64) (result S, ok bool) {
	lo, hi, ct, valid := at.clip(lo, hi, threshold)
	if !valid {
		return result, false
	}
	t := at.t
	top := t.top()
	rank := lowerBoundP(t.run(top, 0), ct)
	if lo <= 0 && hi >= t.n {
		if rank == 0 {
			return result, false
		}
		return at.agg[top][rank-1], true
	}
	take := func(level, runStart, rank int) {
		if rank == 0 {
			return
		}
		part := at.agg[level][runStart+rank-1]
		if !ok {
			result, ok = part, true
		} else {
			result = at.merge(result, part)
		}
	}
	var stack [maxDescentStack]aggWalkFrame
	runEnd := t.effLen[top]
	if runEnd > t.n {
		runEnd = t.n
	}
	stack[0] = aggWalkFrame{level: i32(top), run: 0, rank: i32(rank), cs: 0, runEnd: i32(runEnd)}
	sp := 1
	for sp > 0 {
		fr := &stack[sp-1]
		level := int(fr.level)
		r := int(fr.run)
		childLen := t.effLen[level-1]
		runStart := r * t.effLen[level]
		descended := false
		for int(fr.cs) < int(fr.runEnd) {
			cs := int(fr.cs)
			ce := cs + childLen
			if ce > int(fr.runEnd) {
				ce = int(fr.runEnd)
			}
			c := (cs - runStart) / childLen
			fr.cs = i32(cs + childLen)
			if hi <= cs || lo >= ce {
				continue
			}
			childRank := t.childRank(level, r, int(fr.rank), c, ct)
			if lo <= cs && hi >= ce {
				take(level-1, cs, childRank)
				continue
			}
			if sp == len(stack) {
				//lint:invariant at most two partial runs exist per level and trees have at most 32 levels, so the stack cannot exceed 2·33 frames
				panic("mst: AggBelow walk stack overflow")
			}
			// cs is the partial child's run start; its end is clamped to n.
			childEnd := cs + childLen
			if childEnd > t.n {
				childEnd = t.n
			}
			stack[sp] = aggWalkFrame{
				level: i32(level - 1), run: i32(r*t.f + c), rank: i32(childRank),
				cs: i32(cs), runEnd: i32(childEnd),
			}
			sp++
			descended = true
			break
		}
		if !descended && int(fr.cs) >= int(fr.runEnd) {
			sp--
		}
	}
	return result, ok
}

// clip clamps the position range and maps the key threshold to the composite
// domain. Every element with key < threshold has composite key
// < threshold·shift because the position component is < shift.
func (at *AnnotatedTree[S]) clip(lo, hi int, threshold int64) (int, int, int64, bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > at.n {
		hi = at.n
	}
	if lo >= hi || threshold <= 0 {
		return 0, 0, 0, false
	}
	if threshold > int64(at.n) {
		threshold = int64(at.n) + 1
	}
	return lo, hi, threshold * at.shift, true
}
