package mst

import (
	"bytes"
	"testing"
)

// FuzzCountSelect cross-checks the tree's count and select queries —
// scalar descents and the batched level-synchronous kernels — against brute
// force over fuzzer-chosen inputs, tree options and query arguments.
// CI runs it as a smoke pass on main pushes; `go test -fuzz=FuzzCountSelect
// ./internal/mst/` digs deeper locally.
func FuzzCountSelect(f *testing.F) {
	f.Add([]byte{1, 2, 3, 250, 0, 0, 9}, 0, 7, int64(4), 2, uint8(0), uint8(0), uint8(0))
	f.Add([]byte{5, 5, 5, 5}, 1, 3, int64(5), 0, uint8(3), uint8(2), uint8(1))
	f.Add([]byte{}, 0, 0, int64(0), 0, uint8(2), uint8(1), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, lo, hi int, threshold int64, k int, fanout, sampleEvery, flags uint8) {
		keys := make([]int64, len(data))
		for i, b := range data {
			// Non-negative keys per Build's contract; spread a few values
			// past the 32-bit boundary to exercise the 64-bit payload path.
			keys[i] = int64(b)
			if b >= 250 {
				keys[i] = int64(b) << 24
			}
		}
		opt := Options{
			Fanout:      2 + int(fanout%7),
			SampleEvery: 1 + int(sampleEvery%15),
			NoCascading: flags&1 != 0,
			Force64:     flags&2 != 0,
			Serial:      flags&4 != 0,
		}
		tree, err := Build(keys, opt)
		if err != nil {
			t.Fatalf("Build(%d keys, %+v): %v", len(keys), opt, err)
		}

		got := tree.CountBelow(lo, hi, threshold)
		want := 0
		cLo, cHi := clampRange(lo, hi, len(keys))
		for _, v := range keys[cLo:cHi] {
			if v < threshold {
				want++
			}
		}
		if got != want {
			t.Errorf("CountBelow(%d, %d, %d) = %d, brute force %d (opt %+v)", lo, hi, threshold, got, want, opt)
		}

		// Select the k-th entry by value range [0, threshold); compare
		// against a brute-force scan in position order.
		pos, ok := tree.SelectKth(0, threshold, k)
		wantPos, wantOK := 0, false
		if k >= 0 {
			seen := 0
			for i, v := range keys {
				if v >= 0 && v < threshold {
					if seen == k {
						wantPos, wantOK = i, true
						break
					}
					seen++
				}
			}
		}
		if ok != wantOK || (ok && pos != wantPos) {
			t.Errorf("SelectKth(0, %d, %d) = (%d, %v), brute force (%d, %v) (opt %+v)", threshold, k, pos, ok, wantPos, wantOK, opt)
		}

		// The batched kernels must agree with the brute force too. The batch
		// repeats the query (exercising the dedup/gallop-from-equal shape),
		// perturbs it (bidirectional galloping) and covers the full span.
		bLo := []int32{int32(lo), int32(lo), 0, int32(lo + 1)}
		bHi := []int32{int32(hi), int32(hi), int32(len(keys)), int32(hi + 3)}
		bThr := []int64{threshold, threshold, threshold, threshold - 1}
		bOut := make([]int32, len(bLo))
		tree.CountBelowBatch(bLo, bHi, bThr, bOut)
		for q := range bOut {
			bruteCnt := 0
			qLo, qHi := clampRange(int(bLo[q]), int(bHi[q]), len(keys))
			for _, v := range keys[qLo:qHi] {
				if v < bThr[q] {
					bruteCnt++
				}
			}
			if int(bOut[q]) != bruteCnt {
				t.Errorf("CountBelowBatch query %d (%d, %d, %d) = %d, brute force %d (opt %+v)",
					q, bLo[q], bHi[q], bThr[q], bOut[q], bruteCnt, opt)
			}
		}

		sOff := []int32{0, 1, 2}
		sVlo := []int64{0, 0}
		sVhi := []int64{threshold, threshold}
		sK := []int32{int32(k), int32(k)} // may wrap for huge k; the oracle below uses the wrapped value
		sOut := make([]int32, 2)
		tree.SelectKthRangesBatch(sOff, sVlo, sVhi, sK, sOut)
		for q := range sOut {
			wantB := int32(-1)
			if kq := int(sK[q]); kq >= 0 {
				seen := 0
				for i, v := range keys {
					if v >= 0 && v < threshold {
						if seen == kq {
							wantB = int32(i)
							break
						}
						seen++
					}
				}
			}
			if sOut[q] != wantB {
				t.Errorf("SelectKthRangesBatch query %d ([0,%d), k=%d) = %d, brute force %d (opt %+v)",
					q, threshold, sK[q], sOut[q], wantB, opt)
			}
		}
	})
}

// FuzzAggBatch cross-checks the batched aggregate kernel against the scalar
// annotated descent: results must be byte-identical (the merge is an
// order-sensitive string concatenation, so any reordering of the take fold
// shows up immediately), ok flags must agree, and the count side output must
// match CountBelow.
func FuzzAggBatch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 250, 0, 0, 9}, 0, 7, int64(4), uint8(0), uint8(0), uint8(0))
	f.Add([]byte{5, 5, 5, 5}, 1, 3, int64(5), uint8(3), uint8(2), uint8(1))
	f.Add([]byte{}, 0, 0, int64(0), uint8(2), uint8(1), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, lo, hi int, threshold int64, fanout, sampleEvery, flags uint8) {
		keys := make([]int64, len(data))
		vals := make([]string, len(data))
		for i, b := range data {
			// Annotated keys live in the previous-index domain [0, n].
			keys[i] = int64(int(b) % (len(data) + 1))
			vals[i] = string(rune('a' + int(b)%26))
		}
		opt := Options{
			Fanout:      2 + int(fanout%7),
			SampleEvery: 1 + int(sampleEvery%15),
			NoCascading: flags&1 != 0,
			Force64:     flags&2 != 0,
			NoArena:     flags&4 != 0,
		}
		at, err := BuildAnnotated(keys, vals, func(a, b string) string { return a + "|" + b }, opt)
		if err != nil {
			t.Fatalf("BuildAnnotated(%d keys, %+v): %v", len(keys), opt, err)
		}
		// Repeat, perturb and full-span the query so the batch sees dedup,
		// bidirectional galloping and the top-level fast path in one pass.
		bLo := []int32{int32(lo), int32(lo), 0, int32(lo + 1)}
		bHi := []int32{int32(hi), int32(hi), int32(len(keys)), int32(hi + 3)}
		bThr := []int64{threshold, threshold, threshold, threshold - 1}
		res := make([]string, len(bLo))
		ok := make([]bool, len(bLo))
		cnt := make([]int32, len(bLo))
		at.AggBelowBatch(bLo, bHi, bThr, res, ok, cnt)
		for q := range bLo {
			wantRes, wantOK := at.AggBelow(int(bLo[q]), int(bHi[q]), bThr[q])
			if ok[q] != wantOK || (ok[q] && res[q] != wantRes) {
				t.Errorf("AggBelowBatch query %d (%d, %d, %d) = (%q, %v), scalar (%q, %v) (opt %+v)",
					q, bLo[q], bHi[q], bThr[q], res[q], ok[q], wantRes, wantOK, opt)
			}
			if wantCnt := at.CountBelow(int(bLo[q]), int(bHi[q]), bThr[q]); int(cnt[q]) != wantCnt {
				t.Errorf("AggBelowBatch query %d count = %d, scalar CountBelow %d (opt %+v)",
					q, cnt[q], wantCnt, opt)
			}
		}
	})
}

// FuzzSerialize round-trips fuzzer-built trees through the MST1 format and
// checks the deserialized tree answers count and select queries identically
// to the original, across payload widths, fanouts and sampling rates.
func FuzzSerialize(f *testing.F) {
	f.Add([]byte{1, 2, 3, 250, 0, 0, 9}, 0, 7, int64(4), 2, uint8(0), uint8(0), uint8(0))
	f.Add([]byte{5, 5, 5, 5}, 1, 3, int64(5), 0, uint8(3), uint8(2), uint8(3))
	f.Add([]byte{}, 0, 0, int64(0), 0, uint8(2), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, lo, hi int, threshold int64, k int, fanout, sampleEvery, flags uint8) {
		keys := make([]int64, len(data))
		for i, b := range data {
			keys[i] = int64(b)
			if b >= 250 {
				keys[i] = int64(b) << 24 // force the 64-bit payload path
			}
		}
		opt := Options{
			Fanout:      2 + int(fanout%7),
			SampleEvery: 1 + int(sampleEvery%15),
			NoCascading: flags&1 != 0,
			Force64:     flags&2 != 0,
		}
		orig, err := Build(keys, opt)
		if err != nil {
			t.Fatalf("Build(%d keys, %+v): %v", len(keys), opt, err)
		}

		var buf bytes.Buffer
		written, err := orig.WriteTo(&buf)
		if err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if written != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", written, buf.Len())
		}
		got, err := ReadTree(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadTree: %v", err)
		}

		if got.Len() != orig.Len() || got.Is32Bit() != orig.Is32Bit() {
			t.Fatalf("round trip changed shape: len %d->%d, 32bit %v->%v",
				orig.Len(), got.Len(), orig.Is32Bit(), got.Is32Bit())
		}
		if a, b := orig.CountBelow(lo, hi, threshold), got.CountBelow(lo, hi, threshold); a != b {
			t.Errorf("CountBelow(%d, %d, %d): orig %d, round-tripped %d", lo, hi, threshold, a, b)
		}
		aPos, aOK := orig.SelectKth(0, threshold, k)
		bPos, bOK := got.SelectKth(0, threshold, k)
		if aOK != bOK || (aOK && aPos != bPos) {
			t.Errorf("SelectKth(0, %d, %d): orig (%d, %v), round-tripped (%d, %v)",
				threshold, k, aPos, aOK, bPos, bOK)
		}
		for pos := 0; pos < orig.Len(); pos++ {
			if a, b := orig.Value(pos), got.Value(pos); a != b {
				t.Fatalf("Value(%d): orig %d, round-tripped %d", pos, a, b)
			}
		}
	})
}

func clampRange(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo > hi {
		return 0, 0
	}
	return lo, hi
}
