package mst

// Stats describes the storage of a built tree, matching the accounting of
// §5.1: the tree has ⌈log_f n⌉·n payload elements plus
// (⌈log_f n⌉−1)·n·f/k cascading pointers, so a larger fanout shrinks the
// payload exponentially while growing the pointer share linearly.
type Stats struct {
	Levels         int // number of levels including the base copy
	Elements       int // payload elements across all levels
	Pointers       int // cascading pointer entries across all levels
	ElementBytes   int // bytes per payload element (4 or 8)
	Bytes          int // total bytes of payloads plus pointers
	Fanout         int
	SampleDistance int
}

// Stats reports the storage consumed by the tree. For a spill forest the
// counts sum over the subtrees (Levels reports the deepest subtree, and
// ElementBytes the widest payload).
func (t *Tree) Stats() Stats {
	if t.chunks != nil {
		var s Stats
		for _, c := range t.chunks {
			cs := c.Stats()
			s.Elements += cs.Elements
			s.Pointers += cs.Pointers
			s.Bytes += cs.Bytes
			if cs.Levels > s.Levels {
				s.Levels = cs.Levels
			}
			if cs.ElementBytes > s.ElementBytes {
				s.ElementBytes = cs.ElementBytes
			}
			s.Fanout, s.SampleDistance = cs.Fanout, cs.SampleDistance
		}
		return s
	}
	if t.t32 != nil {
		return stats(t.t32, 4)
	}
	return stats(t.t64, 8)
}

func stats[P payload](t *tree[P], elemBytes int) Stats {
	s := Stats{
		Levels:         len(t.levels),
		ElementBytes:   elemBytes,
		Fanout:         t.f,
		SampleDistance: t.k,
	}
	for l, lv := range t.levels {
		s.Elements += len(lv)
		s.Pointers += len(t.samples[l])
	}
	s.Bytes = s.Elements*elemBytes + s.Pointers*4
	return s
}
