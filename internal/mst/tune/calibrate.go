package tune

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"holistic/internal/mst"
)

// Config shapes a calibration run. Zero fields take the defaults below.
type Config struct {
	// Sizes is the ascending ladder of partition sizes to measure. Each
	// measured size becomes one table row; the row's MaxN boundary is the
	// geometric midpoint to the next size (the crossover is closer to
	// multiplicative than additive in n).
	Sizes []int
	// Fanouts and Samples are the candidate f and k values; every (f, k)
	// pair is measured per size.
	Fanouts []int
	Samples []int
	// ProbeWeight scales probe time against build time in the score:
	// score = build + ProbeWeight·probe. A cached tree amortizes its build
	// over many probe passes, so weights > 1 model steady-state serving.
	ProbeWeight float64
	// Rounds repeats each measurement, keeping the fastest round (minimum
	// filters scheduler noise better than the mean).
	Rounds int
	// Seed fixes the synthetic workload, so two calibration runs on one
	// machine measure identical work.
	Seed int64
}

func (c Config) withDefaults() Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{128, 1024, 16384, 262144}
	}
	if len(c.Fanouts) == 0 {
		c.Fanouts = []int{8, 16, 32}
	}
	if len(c.Samples) == 0 {
		c.Samples = []int{8, 16, 32}
	}
	if c.ProbeWeight == 0 {
		c.ProbeWeight = 4
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	return c
}

// Calibrate measures build and probe times over Config's size ladder and
// returns the winning (f, k, batch) per size band. The workload mirrors the
// window operator's: trees over previous-occurrence-style keys, probed with
// a full sliding-frame pass of count queries (the shape every batched
// family reduces to). Wall-clock noise makes the result machine- and
// run-specific; use Default() when reproducibility across machines matters
// more than the last few percent.
func Calibrate(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]Row, 0, len(cfg.Sizes))
	for si, n := range cfg.Sizes {
		if n < 1 {
			return nil, fmt.Errorf("tune: calibration size %d out of range", n)
		}
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(n + 1))
		}
		probes := n
		if probes > 8192 {
			probes = 8192
		}
		lo := make([]int32, probes)
		hi := make([]int32, probes)
		thr := make([]int64, probes)
		out := make([]int32, probes)
		window := n / 4
		if window < 1 {
			window = 1
		}
		for q := 0; q < probes; q++ {
			start := q * (n - window + 1) / probes
			lo[q], hi[q] = int32(start), int32(start+window)
			thr[q] = int64(start) + 1
		}

		best := Row{MaxN: n}
		bestScore := math.Inf(1)
		for _, f := range cfg.Fanouts {
			for _, k := range cfg.Samples {
				opt := mst.Options{Fanout: f, SampleEvery: k}
				var tree *mst.Tree
				build := measure(cfg.Rounds, func() {
					t, err := mst.Build(keys, opt)
					if err != nil {
						//lint:invariant candidate (f, k) grids are bounded positive ints and sizes are validated above, so Build cannot reject them
						panic(err)
					}
					tree = t
				})
				scalar := measure(cfg.Rounds, func() {
					for q := 0; q < probes; q++ {
						out[q] = int32(tree.CountBelow(int(lo[q]), int(hi[q]), thr[q]))
					}
				})
				batch := measure(cfg.Rounds, func() {
					tree.CountBelowBatch(lo, hi, thr, out)
				})
				probe := scalar
				if batch < probe {
					probe = batch
				}
				score := build + cfg.ProbeWeight*probe
				if score < bestScore {
					bestScore = score
					best = Row{MaxN: n, Fanout: f, SampleEvery: k, Batch: batch < scalar}
				}
			}
		}
		if si+1 < len(cfg.Sizes) {
			// Band boundary at the geometric midpoint to the next size.
			best.MaxN = int(math.Sqrt(float64(n) * float64(cfg.Sizes[si+1])))
		} else {
			best.MaxN = 1 << 62
		}
		rows = append(rows, best)
	}
	return NewTable(rows)
}

// measure runs fn `rounds` times and returns the fastest round in seconds.
func measure(rounds int, fn func()) float64 {
	bestNs := int64(math.MaxInt64)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		fn()
		if d := time.Since(start).Nanoseconds(); d < bestNs {
			bestNs = d
		}
	}
	return float64(bestNs) / 1e9
}
