package tune

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"holistic/internal/mst"
)

// TestDefaultTable pins the static reference table: band boundaries, the
// per-band parameters and the signature's stability.
func TestDefaultTable(t *testing.T) {
	tab := Default()
	cases := []struct {
		n     int
		f, k  int
		batch bool
	}{
		{0, 8, 8, false},
		{256, 8, 8, false},
		{257, 16, 16, true},
		{65536, 16, 16, true},
		{65537, 32, 32, true},
		{10_000_000, 32, 32, true},
	}
	for _, c := range cases {
		got := tab.Choose(c.n)
		if got.Fanout != c.f || got.SampleEvery != c.k || got.Batch != c.batch {
			t.Fatalf("Choose(%d) = %+v, want f=%d k=%d batch=%v", c.n, got, c.f, c.k, c.batch)
		}
	}
	if Default().Sig() != tab.Sig() {
		t.Fatal("Default table signature not stable")
	}
	other, err := NewTable([]Row{{MaxN: 1 << 62, Fanout: 4, SampleEvery: 4, Batch: true}})
	if err != nil {
		t.Fatal(err)
	}
	if other.Sig() == tab.Sig() {
		t.Fatal("different tables must have different signatures")
	}
}

// TestTableRoundTrip checks Encode/Decode and Save/Load preserve rows,
// order and signature, and that version mismatches are rejected.
func TestTableRoundTrip(t *testing.T) {
	tab, err := NewTable([]Row{
		{MaxN: 1 << 62, Fanout: 32, SampleEvery: 32, Batch: true},
		{MaxN: 512, Fanout: 8, SampleEvery: 4, Batch: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0].MaxN != 512 {
		t.Fatal("NewTable must sort rows by MaxN")
	}
	var buf bytes.Buffer
	if err := tab.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Sig() != tab.Sig() {
		t.Fatalf("round trip changed signature: %s -> %s", tab.Sig(), back.Sig())
	}
	bad := bytes.NewBufferString(`{"version": 99, "rows": [{"max_n": 1, "fanout": 2, "sample_every": 1}]}`)
	if _, err := Decode(bad); err == nil {
		t.Fatal("version mismatch must be rejected")
	}

	path := filepath.Join(t.TempDir(), "tuning.json")
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Sig() != tab.Sig() {
		t.Fatal("Save/Load changed signature")
	}
}

// TestTunerShapesTree checks the mst integration: a tuned build uses the
// table's f and k (observable through Stats), explicit options still win,
// and tuned trees answer identically to untuned ones.
func TestTunerShapesTree(t *testing.T) {
	tab, err := NewTable([]Row{{MaxN: 1 << 62, Fanout: 4, SampleEvery: 2, Batch: true}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(79))
	keys := make([]int64, 3000)
	for i := range keys {
		keys[i] = int64(rng.Intn(len(keys)))
	}
	tuned, err := mst.Build(keys, mst.Options{Tuning: tab})
	if err != nil {
		t.Fatal(err)
	}
	if got := tuned.Stats().Fanout; got != 4 {
		t.Fatalf("tuned fanout = %d, want 4", got)
	}
	explicit, err := mst.Build(keys, mst.Options{Tuning: tab, Fanout: 16, SampleEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := explicit.Stats().Fanout; got != 16 {
		t.Fatalf("explicit fanout = %d, want 16 (explicit options beat the tuner)", got)
	}
	plain, err := mst.Build(keys, mst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		lo := rng.Intn(len(keys))
		hi := lo + rng.Intn(len(keys)-lo)
		thr := int64(rng.Intn(len(keys) + 2))
		if a, b := tuned.CountBelow(lo, hi, thr), plain.CountBelow(lo, hi, thr); a != b {
			t.Fatalf("tuned tree answers differently: %d vs %d", a, b)
		}
	}
}

// TestCalibrateSmall smoke-tests the measurement pass on tiny sizes: it
// must return a valid, usable table covering all sizes.
func TestCalibrateSmall(t *testing.T) {
	tab, err := Calibrate(Config{
		Sizes:   []int{64, 512},
		Fanouts: []int{4, 8},
		Samples: []int{4},
		Rounds:  1,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tab.Rows))
	}
	for _, n := range []int{1, 100, 10000} {
		c := tab.Choose(n)
		if c.Fanout < 2 || c.SampleEvery < 1 {
			t.Fatalf("Choose(%d) returned invalid parameters %+v", n, c)
		}
	}
	if tab.Rows[len(tab.Rows)-1].MaxN != 1<<62 {
		t.Fatal("last row must be a catch-all")
	}
}
