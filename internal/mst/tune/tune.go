// Package tune derives merge-sort-tree construction and probe parameters
// from measured build+probe crossover curves, replacing the paper's fixed
// f = k = 32 (§5.2 fixes both constants once for all inputs) with a
// per-input-size choice.
//
// The tuner is a versioned lookup table: each row covers partition sizes up
// to its MaxN and names the fanout f, the cascading sample distance k, and
// whether the batched level-synchronous probe kernels should be used at
// that size. Tables come from two places:
//
//   - Default() — a static, documented table checked in for
//     reproducibility: every run with the default table builds identical
//     trees and picks identical probe paths on every machine;
//   - Calibrate() — an on-machine measurement pass that builds trees and
//     replays sliding-window probe workloads across a size ladder, finds
//     where the batch kernels' setup cost crosses under the scalar
//     descent's per-query cost, and picks the (f, k) with the best
//     build+probe total per size.
//
// A Table implements mst.Tuner. Determinism contract: Choose is a pure
// function of (table, n), and Sig() identifies the table's exact contents,
// so structure caches can fold it into their keys (two different tables
// never alias a cache entry). Tables serialize to versioned JSON
// (Encode/Decode, Save/Load) so a calibrated table can be shipped next to
// a deployment and reloaded at start-up.
package tune

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"

	"holistic/internal/mst"
)

// TableVersion is the current serialization format version.
const TableVersion = 1

// Row is one size band of a tuning table: it applies to partition sizes
// n <= MaxN that no earlier row covers. The last row additionally covers
// every larger size (a catch-all), so a table always answers.
type Row struct {
	MaxN        int  `json:"max_n"`
	Fanout      int  `json:"fanout"`
	SampleEvery int  `json:"sample_every"`
	Batch       bool `json:"batch"`
}

// Table is a versioned tuning table; it implements mst.Tuner. Rows must be
// sorted by ascending MaxN (NewTable and Decode enforce this).
type Table struct {
	Version int   `json:"version"`
	Rows    []Row `json:"rows"`
	sig     string
}

// NewTable builds a table from rows, sorting them by MaxN and precomputing
// the signature. At least one row is required.
func NewTable(rows []Row) (*Table, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("tune: table needs at least one row")
	}
	sorted := make([]Row, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].MaxN < sorted[j].MaxN })
	for _, r := range sorted {
		if r.Fanout != 0 && r.Fanout < 2 {
			return nil, fmt.Errorf("tune: fanout %d out of range (0 or >= 2)", r.Fanout)
		}
		if r.SampleEvery < 0 {
			return nil, fmt.Errorf("tune: sample distance %d out of range", r.SampleEvery)
		}
	}
	t := &Table{Version: TableVersion, Rows: sorted}
	t.sig = computeSig(t)
	return t, nil
}

// Default returns the static reference table. The bands follow the measured
// shape of the build/probe crossover on current x86-64 and arm64 parts, and
// are deliberately coarse so results stay explainable:
//
//	n <= 256     f=8,  k=8,  scalar — trees this small are one or two
//	                          levels; batch frontier setup outweighs the
//	                          shared descent, and a small f keeps the
//	                          single merge's tournament tree tiny.
//	n <= 65536   f=16, k=16, batch — mid sizes profit from batching, and
//	                          the halved fanout keeps a sample row (4·16
//	                          bytes) inside one cache line, which is what
//	                          the SoA layout optimizes for.
//	larger       f=32, k=32, batch — the paper's constants; at this size
//	                          the O(log_f n) level count dominates and the
//	                          wider fanout wins back the extra compares.
func Default() *Table {
	t, err := NewTable([]Row{
		{MaxN: 256, Fanout: 8, SampleEvery: 8, Batch: false},
		{MaxN: 65536, Fanout: 16, SampleEvery: 16, Batch: true},
		{MaxN: 1 << 62, Fanout: 32, SampleEvery: 32, Batch: true},
	})
	if err != nil {
		//lint:invariant the static rows above satisfy NewTable's fanout/sample bounds by inspection
		panic(err)
	}
	return t
}

// Choose returns the parameters for a partition of n elements: the first
// row whose MaxN covers n, or the last row as catch-all.
func (t *Table) Choose(n int) mst.Choice {
	for _, r := range t.Rows {
		if n <= r.MaxN {
			return mst.Choice{Fanout: r.Fanout, SampleEvery: r.SampleEvery, Batch: r.Batch}
		}
	}
	last := t.Rows[len(t.Rows)-1]
	return mst.Choice{Fanout: last.Fanout, SampleEvery: last.SampleEvery, Batch: last.Batch}
}

// Sig returns a stable signature of the table's exact contents, suitable
// for folding into structure cache keys.
func (t *Table) Sig() string {
	if t.sig == "" {
		t.sig = computeSig(t)
	}
	return t.sig
}

func computeSig(t *Table) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d", t.Version)
	for _, r := range t.Rows {
		fmt.Fprintf(h, "|%d:%d:%d:%v", r.MaxN, r.Fanout, r.SampleEvery, r.Batch)
	}
	return fmt.Sprintf("v%d-%016x", t.Version, h.Sum64())
}

// Encode writes the table as versioned JSON.
func (t *Table) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Decode reads a table written by Encode, validating the format version and
// re-establishing the row order and signature.
func Decode(r io.Reader) (*Table, error) {
	var raw Table
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("tune: decoding table: %w", err)
	}
	if raw.Version != TableVersion {
		return nil, fmt.Errorf("tune: table version %d, want %d", raw.Version, TableVersion)
	}
	return NewTable(raw.Rows)
}

// Save writes the table to path atomically (write-then-rename).
func (t *Table) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a table from path.
func Load(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
