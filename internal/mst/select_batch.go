package mst

import (
	"fmt"
	"math"
)

// Batched, level-synchronous select kernel: the Figure 7 descent run over a
// whole chunk of queries at once. Selection descends a single root-to-leaf
// path per query (unlike counting there is no frontier growth), so the
// batched win is in the shared per-level state and the galloped top-level
// rank searches: adjacent probe rows carry nearly identical value ranges, so
// each range bound's top rank is found by galloping from the previous
// query's rank instead of a full O(log n) binary search. Query state lives
// in flat int32 structure-of-arrays scratch; every live query moves down
// exactly one level per kernel step.

// SelectKthRangesBatch answers len(out) select queries at once. Query q has
// the sorted, disjoint half-open value ranges (vlo[j], vhi[j]) for j in
// [off[q], off[q+1]) — at most maxSelectRanges of them — and selects the
// k[q]-th (0-based, in position order) entry whose value falls into any
// range. out[q] receives the base position, or -1 when fewer than k[q]+1
// entries qualify. Results are exactly SelectKthRanges per query.
func (t *Tree) SelectKthRangesBatch(off []int32, vlo, vhi []int64, k []int32, out []int32) {
	m := len(out)
	if len(off) != m+1 || len(k) != m || len(vlo) != len(vhi) || len(vlo) != int(off[m]) {
		//lint:invariant the collector builds offsets and flattened ranges together; a mismatch is a caller bug that would silently mis-select
		panic("mst: SelectKthRangesBatch slice length mismatch")
	}
	if m >= math.MaxInt32 {
		//lint:invariant the kernel addresses queries with int32 slots; callers batch per chunk, far below 2³¹ queries
		panic("mst: SelectKthRangesBatch batch of 2³¹ or more queries")
	}
	if m == 0 {
		return
	}
	for q := 0; q < m; q++ {
		if nr := off[q+1] - off[q]; nr > maxSelectRanges {
			//lint:invariant frame exclusion yields at most 3 ranges (§4.7); more is a window-operator bug, and truncating would silently mis-select
			panic(fmt.Sprintf("mst: SelectKthRangesBatch got %d ranges, max %d", nr, maxSelectRanges))
		}
	}
	if t.n == 0 {
		for q := range out {
			out[q] = -1
		}
		return
	}
	if t.chunks != nil {
		// Spill-chunked trees fall back to the scalar per-chunk walk; the
		// kernel's geometry assumptions only hold for monolithic trees.
		var rs [maxSelectRanges][2]int64
		for q := range out {
			o0, o1 := int(off[q]), int(off[q+1])
			nr := 0
			for j := o0; j < o1; j++ {
				rs[nr] = [2]int64{vlo[j], vhi[j]}
				nr++
			}
			if pos, ok := t.SelectKthRanges(rs[:nr], int(k[q])); ok {
				out[q] = i32(pos)
			} else {
				out[q] = -1
			}
		}
		return
	}
	noArena := t.opt.NoArena
	if t.t32 != nil {
		nr := len(vlo)
		vb := kernelInt32(noArena, 2*nr)
		vlo32, vhi32 := vb[:nr], vb[nr:]
		for j := range vlo32 {
			vlo32[j] = clampI32(vlo[j])
			vhi32[j] = clampI32(vhi[j])
		}
		selectKernel(t.t32, off, vlo32, vhi32, k, out, noArena)
		putKernelInt32(noArena, vb)
		return
	}
	selectKernel(t.t64, off, vlo, vhi, k, out, noArena)
}

// selectKernel is the generic level-synchronous select descent. Empty value
// ranges contribute zero-width rank pairs throughout, so they need no
// special casing (SelectKthRanges drops them up front; the result is the
// same either way).
func selectKernel[P payload](t *tree[P], off []int32, vlo, vhi []P, k []int32, out []int32, noArena bool) {
	m := len(out)
	top := t.top()
	run0 := t.run(top, 0)
	nR := len(vlo)

	// Flat query state: one cascaded rank pair per flattened range (parallel
	// to vlo/vhi), plus per-query current run, remaining rank, and the live
	// list. Every live query descends all the way to level 0, so the live
	// list is fixed after the top-level resolution.
	buf := kernelInt32(noArena, 2*nR+3*m)
	rlo, rhi := buf[:nR], buf[nR:2*nR]
	runQ := buf[2*nR : 2*nR+m]
	remQ := buf[2*nR+m : 2*nR+2*m]
	lq := buf[2*nR+2*m : 2*nR+3*m]

	// Top level: gallop each range bound from the previous query's rank for
	// the same range ordinal — adjacent frames shift slowly, so the seed is
	// almost always within a few elements of the answer.
	var glo, ghi [maxSelectRanges]int
	ln := 0
	for q := 0; q < m; q++ {
		o0, o1 := int(off[q]), int(off[q+1])
		if o0 == o1 || k[q] < 0 {
			out[q] = -1
			continue
		}
		total := 0
		for j := o0; j < o1; j++ {
			ord := j - o0
			a := topSearch(t, run0, vlo[j], glo[ord])
			b := topSearch(t, run0, vhi[j], ghi[ord])
			glo[ord], ghi[ord] = a, b
			rlo[j], rhi[j] = i32(a), i32(b)
			total += b - a
		}
		if int(k[q]) >= total {
			out[q] = -1
			continue
		}
		runQ[q] = 0
		remQ[q] = k[q]
		lq[ln] = i32(q)
		ln++
	}

	// Level-synchronous descent: per level, every live query scans this
	// run's children (two cascaded searches per range per child) until the
	// child straddling its remaining rank is found, then steps into it.
	for level := top; level >= 1 && ln > 0; level-- {
		runLen := t.effLen[level]
		childLen := t.effLen[level-1]
		samples := t.samples[level]
		stride := 0
		if samples != nil {
			stride = t.stride[level]
		}
		kids := t.levels[level-1]
		f, kk := t.f, t.k
		for li := 0; li < ln; li++ {
			q := int(lq[li])
			r := int(runQ[q])
			i := int(remQ[q])
			o0, o1 := int(off[q]), int(off[q+1])
			runStart := r * runLen
			runEnd := runStart + runLen
			if runEnd > t.n {
				runEnd = t.n
			}
			numKids := (runEnd - runStart + childLen - 1) / childLen
			descended := false
			for c := 0; c < numKids; c++ {
				cs := runStart + c*childLen
				ce := cs + childLen
				if ce > runEnd {
					ce = runEnd
				}
				kid := kids[cs:ce]
				var cl, ch [maxSelectRanges]int32
				cnt := 0
				for j := o0; j < o1; j++ {
					a := childRankIn(samples, stride, r, int(rlo[j]), c, f, kk, kid, vlo[j])
					b := childRankIn(samples, stride, r, int(rhi[j]), c, f, kk, kid, vhi[j])
					cl[j-o0], ch[j-o0] = i32(a), i32(b)
					cnt += b - a
				}
				if i < cnt {
					for j := o0; j < o1; j++ {
						rlo[j], rhi[j] = cl[j-o0], ch[j-o0]
					}
					runQ[q] = i32(r*f + c)
					remQ[q] = i32(i)
					descended = true
					break
				}
				i -= cnt
			}
			if !descended {
				//lint:invariant the top-level check verified k < total qualifying entries, so some child run must contain the k-th element; losing it means corrupted cascade samples
				panic("mst: selectKernel descent lost element")
			}
		}
	}

	// Level-0 runs hold one element: the run index is the base position.
	for li := 0; li < ln; li++ {
		q := int(lq[li])
		out[q] = runQ[q]
	}
	putKernelInt32(noArena, buf)
}
