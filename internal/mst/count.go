package mst

import "fmt"

// maxDescentStack bounds the explicit stacks of the iterative descents.
// A tree over n < 2³¹ elements with fanout f >= 2 has at most 32 merge
// levels; a count descent keeps at most two partial runs per level alive
// (the runs containing lo and hi-1), so 2·33 frames is a hard ceiling.
const maxDescentStack = 72

// descFrame is one pending partial run of an iterative descent: the run's
// level and index, plus the exact number of its elements < threshold.
type descFrame struct {
	level, run, rank int32
}

// countBelow counts the elements at positions [lo, hi) of the base array
// whose value is strictly smaller than threshold. Callers guarantee
// 0 <= lo < hi <= n.
//
// The range is pieced together from sorted runs top-down (Figure 2): runs
// completely inside [lo, hi) contribute their rank of threshold directly;
// the at most two runs overlapping a range edge are descended into. With
// fractional cascading the rank inside a child run is re-located inside a
// window of at most k elements around the parent's sampled pointer
// (Figure 3), so only the top-level binary search pays O(log n).
//
// The descent is iterative with an explicit stack: partially overlapped
// runs are pushed and their children scanned when popped, so the hot query
// path pays no call overhead per level. This is also the scalar fallback
// the batched kernels (count_batch.go) degrade to under Options.NoBatch.
func (t *tree[P]) countBelow(lo, hi int, threshold P) int {
	top := t.top()
	rank := lowerBoundP(t.run(top, 0), threshold)
	if lo <= 0 && hi >= t.n {
		return rank
	}
	var stack [maxDescentStack]descFrame
	stack[0] = descFrame{level: i32(top), run: 0, rank: i32(rank)}
	sp := 1
	total := 0
	for sp > 0 {
		sp--
		fr := stack[sp]
		level := int(fr.level)
		r := int(fr.run)
		rank := int(fr.rank)
		runStart := r * t.effLen[level]
		runEnd := runStart + t.effLen[level]
		if runEnd > t.n {
			runEnd = t.n
		}
		// A partially overlapped run is never a leaf: level-0 runs hold
		// exactly one element and are either fully covered or skipped.
		childLen := t.effLen[level-1]
		for c, cs := 0, runStart; cs < runEnd; c, cs = c+1, cs+childLen {
			ce := cs + childLen
			if ce > runEnd {
				ce = runEnd
			}
			if hi <= cs || lo >= ce {
				continue
			}
			childRank := t.childRank(level, r, rank, c, threshold)
			if lo <= cs && hi >= ce {
				total += childRank
			} else {
				if sp == len(stack) {
					//lint:invariant at most two partial runs exist per level and trees have at most 32 levels, so the stack cannot exceed 2·33 frames
					panic("mst: countBelow descent stack overflow")
				}
				stack[sp] = descFrame{level: i32(level - 1), run: i32(r*t.f + c), rank: i32(childRank)}
				sp++
			}
		}
	}
	return total
}

// childRank returns the number of elements < threshold in child run c of run
// r at the given level. rank must be the exact number of elements
// < threshold in the parent run; the sampled cascading pointer at the last
// sample point at or before rank bounds the child position to a window of at
// most rank mod k elements (§4.2).
func (t *tree[P]) childRank(level, r, rank, c int, threshold P) int {
	kid := t.run(level-1, r*t.f+c)
	samples := t.samples[level]
	if samples == nil {
		return lowerBoundP(kid, threshold)
	}
	q := rank / t.k
	base := int(samples[r*t.stride[level]+q*t.f+c])
	wHi := base + rank - q*t.k
	if wHi > len(kid) {
		wHi = len(kid)
	}
	return base + lowerBoundP(kid[base:wHi], threshold)
}

// selectKth returns the base position of the i-th entry (0-based, in
// position order) whose value v satisfies vLo <= v < vHi. The descent
// follows §4.5 / Figure 7: at every level, count the qualifying elements per
// child run (two cascaded searches each) and descend into the child that
// straddles the running total.
func (t *tree[P]) selectKth(vLo, vHi P, i int) (int, bool) {
	top := t.top()
	run0 := t.run(top, 0)
	rLo := lowerBoundP(run0, vLo)
	rHi := lowerBoundP(run0, vHi)
	if i >= rHi-rLo {
		return 0, false
	}
	level, r := top, 0
	for level > 0 {
		runStart := r * t.effLen[level]
		runEnd := runStart + t.effLen[level]
		if runEnd > t.n {
			runEnd = t.n
		}
		numKids := (runEnd - runStart + t.effLen[level-1] - 1) / t.effLen[level-1]
		descended := false
		for c := 0; c < numKids; c++ {
			cLo := t.childRank(level, r, rLo, c, vLo)
			cHi := t.childRank(level, r, rHi, c, vHi)
			if cnt := cHi - cLo; i < cnt {
				rLo, rHi = cLo, cHi
				r = r*t.f + c
				level--
				descended = true
				break
			} else {
				i -= cnt
			}
		}
		if !descended {
			//lint:invariant SelectKth verified i < count at the root, so every level's children jointly contain the i-th element; losing it means corrupted cascade samples
			panic(fmt.Sprintf("mst: selectKth descent lost element (level=%d run=%d i=%d)", level, r, i))
		}
	}
	return r, true
}
