package mst

import (
	"math"
	"unsafe"

	"holistic/internal/arena"
	"holistic/internal/parallel"
)

// Level spans: buildTree opens one "mst: merge level" span per level under
// Options.Trace (package obs), annotated with the level number and run
// count, so a trace shows where construction time goes as the runs grow.

// buildTree constructs the tree levels bottom-up (§4.2): level l is produced
// by f-way merges of the runs of level l-1. The merge keeps, every k
// outputs, a snapshot of how many elements it has consumed from each child
// run — these snapshots are exactly the fractional-cascading pointers of
// Figure 4, produced "as a byproduct of constructing the merge sort tree by
// persisting the input iterators used during the merge steps".
//
// Lower levels have many runs, so runs are batched into tasks of roughly
// DefaultTaskSize tuples; upper levels have few runs, so the merge itself is
// split into independent output pieces whose child splits are found with a
// rank binary search over the value domain (§5.2).
//
// Allocation discipline: the level and sample arrays for the whole tree are
// carved out of one arena slab per element type (their total size is known
// up front), and each merge task borrows its scratch state — consumed
// counters, tournament tree, head values — from the shared pools, so a
// steady stream of builds allocates only the slabs themselves.
func buildTree[P payload](base []P, opt Options) *tree[P] {
	n := len(base)
	t := &tree[P]{n: n, f: opt.Fanout, k: opt.SampleEvery}
	t.levels = [][]P{base}
	t.samples = [][]int32{nil}
	t.stride = []int{0}
	t.effLen = []int{1}
	if n <= 1 {
		return t
	}
	cascade := !opt.NoCascading

	// Pre-size one slab per element type so the arena never grows: every
	// level holds exactly n payload elements, and the sample table size per
	// level follows from the run count and stride.
	var arP *arena.Arena[P]
	var arS *arena.Arena[int32]
	if !opt.NoArena {
		totalP, totalS := 0, 0
		// Each level's slab is cache-line aligned (AllocAligned), so budget
		// one line of alignment slack per stripe on top of the exact sizes.
		slackP := cacheLineBytes / int(unsafe.Sizeof(*new(P)))
		for rl := 1; rl < n; {
			rl *= t.f
			if rl > n {
				rl = n
			}
			totalP += n + slackP
			if cascade {
				numRuns := (n + rl - 1) / rl
				totalS += numRuns*sampleStride(rl, t.k, t.f) + cacheLineBytes/4
			}
		}
		arP = arena.New[P](totalP)
		if totalS > 0 {
			arS = arena.New[int32](totalS)
		}
	}

	for rl := 1; rl < n; {
		rl *= t.f
		if rl > n {
			rl = n
		}
		level := len(t.levels)
		t.effLen = append(t.effLen, rl)
		var out []P
		if arP != nil {
			out = arP.AllocAligned(n, cacheLineBytes)
		} else {
			out = make([]P, n)
		}
		t.levels = append(t.levels, out)
		numRuns := (n + rl - 1) / rl
		var samples []int32
		stride := 0
		if cascade {
			stride = sampleStride(rl, t.k, t.f)
			// Sample slots beyond a run's child count — including the
			// cache-line padding tail of every run row — stay zero; the
			// arena hands out zeroed memory just like make.
			if arS != nil {
				samples = arS.AllocAligned(numRuns*stride, cacheLineBytes)
			} else {
				samples = make([]int32, numRuns*stride)
			}
		}
		t.samples = append(t.samples, samples)
		t.stride = append(t.stride, stride)

		lsp := opt.Trace.Child("mst: merge level")
		lsp.SetInt("level", int64(level))
		lsp.SetInt("runs", int64(numRuns))

		workers := parallel.Workers()
		if opt.Serial || numRuns >= workers || workers == 1 {
			if opt.Serial {
				buf, vals := mergeScratch[P](t.f, opt.NoArena)
				for r := 0; r < numRuns; r++ {
					t.mergeRun(level, r, samples, stride, buf, vals)
				}
				putMergeScratch(opt.NoArena, buf, vals)
			} else {
				// Batch runs so one scratch acquisition serves ~one task's
				// worth of tuples.
				runsPerTask := 1
				if rl < parallel.DefaultTaskSize {
					runsPerTask = (parallel.DefaultTaskSize + rl - 1) / rl
				}
				parallel.For(numRuns, runsPerTask, func(lo, hi int) {
					buf, vals := mergeScratch[P](t.f, opt.NoArena)
					for r := lo; r < hi; r++ {
						t.mergeRun(level, r, samples, stride, buf, vals)
					}
					putMergeScratch(opt.NoArena, buf, vals)
				})
			}
		} else {
			for r := 0; r < numRuns; r++ {
				t.mergeRunParallel(level, r, samples, stride, workers, opt.NoArena)
			}
		}
		lsp.End()
		if rl >= n {
			break
		}
	}
	finalizeCodes(t)
	return t
}

// childRunOf returns child run c of a parent run whose children are the
// consecutive childLen-sized pieces of childData (the last piece may be
// short). Pure slicing — no allocation.
func childRunOf[P payload](childData []P, childLen, c int) []P {
	start := c * childLen
	end := start + childLen
	if end > len(childData) {
		end = len(childData)
	}
	return childData[start:end]
}

// children returns the child runs of run r at the given level. Only used by
// invariant tests; the merge path indexes childRunOf directly to avoid the
// per-run slice-of-slices allocation.
func (t *tree[P]) children(level, r int) [][]P {
	childLen := t.effLen[level-1]
	runStart := r * t.effLen[level]
	runEnd := runStart + t.effLen[level]
	if runEnd > t.n {
		runEnd = t.n
	}
	childData := t.levels[level-1][runStart:runEnd]
	m := (runEnd - runStart + childLen - 1) / childLen
	kids := make([][]P, m)
	for c := range kids {
		kids[c] = childRunOf(childData, childLen, c)
	}
	return kids
}

// payloadPool returns the shared scratch pool matching P's width, or nil
// when P is a named type the shared pools cannot serve.
func payloadPool[P payload]() *arena.Pool[P] {
	if p, ok := any(arena.Int32s).(*arena.Pool[P]); ok {
		return p
	}
	if p, ok := any(arena.Int64s).(*arena.Pool[P]); ok {
		return p
	}
	return nil
}

// mergeScratch acquires per-task merge state: a 7f-element int32 buffer
// (cursors, run ends, tiebreaks, loser tree, winner init, head codes —
// sliced by mergePiece) and an f-element head-value array.
func mergeScratch[P payload](f int, noPool bool) ([]int32, []P) {
	if noPool {
		return make([]int32, 7*f), make([]P, f)
	}
	buf := arena.Int32s.Get(7 * f)
	if p := payloadPool[P](); p != nil {
		//lint:poollifecycle-ok mergeScratch is the acquire half of a documented pair; putMergeScratch returns both buffers
		return buf, p.Get(f)
	}
	//lint:poollifecycle-ok mergeScratch is the acquire half of a documented pair; putMergeScratch returns both buffers
	return buf, make([]P, f)
}

// putMergeScratch recycles buffers acquired by mergeScratch.
func putMergeScratch[P payload](noPool bool, buf []int32, vals []P) {
	if noPool {
		return
	}
	arena.Int32s.Put(buf)
	if p := payloadPool[P](); p != nil {
		p.Put(vals)
	}
}

// mergeRun merges the children of run r at the given level into the level's
// output array, recording cascading samples. buf and vals come from
// mergeScratch.
func (t *tree[P]) mergeRun(level, r int, samples []int32, stride int, buf []int32, vals []P) {
	runStart := r * t.effLen[level]
	runEnd := runStart + t.effLen[level]
	if runEnd > t.n {
		runEnd = t.n
	}
	childLen := t.effLen[level-1]
	m := (runEnd - runStart + childLen - 1) / childLen
	var sampleRun []int32
	if samples != nil {
		sampleRun = samples[r*stride : (r+1)*stride]
	}
	t.mergePiece(t.levels[level][runStart:runEnd], t.levels[level-1][runStart:runEnd],
		childLen, m, nil, buf, vals, sampleRun, 0, runEnd-runStart)
}

// mergeRunParallel splits the merge of run r into `workers` output pieces;
// the per-child split positions for each piece boundary are found with a
// rank search over the value domain, so pieces merge independently
// (Francis et al. 1993, cited in §5.2).
func (t *tree[P]) mergeRunParallel(level, r int, samples []int32, stride, workers int, noPool bool) {
	runStart := r * t.effLen[level]
	runEnd := runStart + t.effLen[level]
	if runEnd > t.n {
		runEnd = t.n
	}
	length := runEnd - runStart
	childLen := t.effLen[level-1]
	childData := t.levels[level-1][runStart:runEnd]
	m := (length + childLen - 1) / childLen
	f := t.f
	pieces := workers
	if pieces > length/1024 {
		pieces = length / 1024
	}
	if pieces <= 1 {
		buf, vals := mergeScratch[P](f, noPool)
		t.mergeRun(level, r, samples, stride, buf, vals)
		putMergeScratch(noPool, buf, vals)
		return
	}
	// Flat split table: row p holds the per-child consumed counts at output
	// boundary length*p/pieces. Row 0 is all zeros; row `pieces` is the child
	// lengths.
	var flat []int32
	if noPool {
		flat = make([]int32, (pieces+1)*m)
	} else {
		flat = arena.Int32s.Get((pieces + 1) * m)
		defer arena.Int32s.Put(flat)
	}
	clear(flat[:m])
	last := flat[pieces*m : (pieces+1)*m]
	for c := 0; c < m; c++ {
		last[c] = i32(len(childRunOf(childData, childLen, c)))
	}
	for p := 1; p < pieces; p++ {
		findSplitInto(flat[p*m:(p+1)*m], childData, childLen, m, length*p/pieces)
	}
	var sampleRun []int32
	if samples != nil {
		sampleRun = samples[r*stride : (r+1)*stride]
	}
	out := t.levels[level][runStart:runEnd]
	parallel.ForEach(pieces, func(p int) {
		t0 := length * p / pieces
		t1 := length * (p + 1) / pieces
		if p == pieces-1 {
			t1 = length
		}
		buf, vals := mergeScratch[P](f, noPool)
		t.mergePiece(out, childData, childLen, m, flat[p*m:(p+1)*m],
			buf, vals, sampleRun, t0, t1)
		putMergeScratch(noPool, buf, vals)
	})
}

// maxPayload is the largest value of P, used as the exhausted-run sentinel.
// A live run can legitimately hold this value, so comparisons always break
// ties on the tiebreak array, where exhausted runs sort after every live run.
func maxPayload[P payload]() P {
	var z P
	if unsafe.Sizeof(z) == 4 {
		v := int32(math.MaxInt32)
		return P(v)
	}
	v := int64(math.MaxInt64)
	return P(v)
}

// mergePiece merges outputs [t0, t1) of the run using a tournament (loser)
// tree of the m child runs, ordered by (value, child index) — the
// child-index tiebreak keeps the merge stable. Unlike a binary heap,
// advancing the winner costs exactly ⌈log₂ m⌉ comparisons along one root
// path, with no sift-down branching.
//
// split, when non-nil, gives the per-child consumed counts at output t0 (a
// row of mergeRunParallel's split table); nil means the piece starts at the
// beginning of every child.
//
// buf is mergeScratch's 7f-element scratch, laid out as cursor | end | tb |
// ltree | winners(2f) | codes: cursor[c]/end[c] are leaf c's absolute
// position and limit within childData, so refilling a leaf is two loads and
// a compare — no re-slicing. Node layout: leaves occupy virtual slots
// m..2m-1 (leaf c at m+c), internal nodes 1..m-1 hold the loser of their
// subtree's playoff, parent(i) = i/2. vals[c]/tb[c] are leaf c's head value
// and tiebreak; an exhausted leaf holds (maxPayload, m+c) so it loses
// against any live leaf, even one whose head equals maxPayload (live
// tiebreaks are < m). For 64-bit payloads, codes[c] caches the offset-value
// code of leaf c's head (soa.go): the tournament replay compares the 32-bit
// codes first and falls through to the full keys only on a code tie, which
// resolves most comparisons on the narrow stripe. Codes project the keys
// monotonically, so the merge order is bit-identical to the uncoded path.
//
// Samples are recorded at every output position that is a multiple of k,
// plus the final boundary; the merge loop runs in sample-free blocks so the
// hot path has no modulo.
func (t *tree[P]) mergePiece(out []P, childData []P, childLen, m int, split []int32, buf []int32, vals []P, sampleRun []int32, t0, t1 int) {
	k, f := t.k, t.f
	if childLen == 1 && split == nil && t0 == 0 && t1 == len(out) && (sampleRun == nil || k >= t1) {
		// Leaf level: every child is a single element, so the merge is a
		// small stable sort. Sample rows, if any, are only the zero row
		// (already zeroed storage) and the full-run boundary row.
		copy(out, childData[:t1])
		insertionSort(out)
		if sampleRun != nil && t1%k == 0 {
			base := (t1 / k) * f
			for c := 0; c < m; c++ {
				sampleRun[base+c] = 1
			}
		}
		return
	}
	cursor := buf[:m]
	end := buf[f : f+m]
	for c := 0; c < m; c++ {
		start := c * childLen
		stop := start + childLen
		if stop > len(childData) {
			stop = len(childData)
		}
		cursor[c] = i32(start)
		if split != nil {
			cursor[c] += split[c]
		}
		end[c] = i32(stop)
	}
	writeSample := func(row int) {
		base := row * f
		for c := 0; c < m; c++ {
			sampleRun[base+c] = cursor[c] - i32(c*childLen)
		}
	}
	if m == 1 {
		// Single child: the run is already sorted, only samples to record.
		c0 := int(cursor[0])
		if sampleRun != nil {
			for p := t0; p < t1; p++ {
				if p%k == 0 {
					sampleRun[(p/k)*f] = i32(c0)
				}
				out[p] = childData[c0]
				c0++
			}
			if t1 == len(out) && t1%k == 0 {
				sampleRun[(t1/k)*f] = i32(c0)
			}
		} else {
			copy(out[t0:t1], childData[c0:c0+(t1-t0)])
		}
		return
	}
	maxV := maxPayload[P]()
	ovc := unsafe.Sizeof(maxV) == 8
	tb := buf[2*f : 2*f+m]
	ltree := buf[3*f : 3*f+m]
	winners := buf[4*f : 4*f+2*m]
	codes := buf[6*f : 6*f+m]
	// Head codes are uint32 bit patterns stored in int32 scratch; every code
	// comparison casts back to uint32, where codeOf's sign-bias makes the
	// unsigned order match the signed key order.
	maxCode := int32(codeOf(maxV))
	for c := 0; c < m; c++ {
		if cursor[c] < end[c] {
			vals[c] = childData[cursor[c]]
			tb[c] = i32(c)
		} else {
			vals[c] = maxV
			tb[c] = i32(m + c)
		}
		codes[c] = int32(codeOf(vals[c]))
	}
	// Build the tournament bottom-up: winners[] is only needed during init.
	for c := 0; c < m; c++ {
		winners[m+c] = i32(c)
	}
	for i := m - 1; i >= 1; i-- {
		a, b := winners[2*i], winners[2*i+1]
		ca, cb := uint32(codes[a]), uint32(codes[b])
		if ca < cb || (ca == cb &&
			(vals[a] < vals[b] || (vals[a] == vals[b] && tb[a] < tb[b]))) {
			winners[i], ltree[i] = a, b
		} else {
			winners[i], ltree[i] = b, a
		}
	}
	winner := winners[1]
	p := t0
	for p < t1 {
		stop := t1
		if sampleRun != nil {
			if p%k == 0 {
				writeSample(p / k)
			}
			if next := (p/k + 1) * k; next < stop {
				stop = next
			}
		}
		if ovc {
			// 64-bit payloads: code-first replay. The duplicated loop keeps
			// the 32-bit path free of the extra stripe maintenance.
			for ; p < stop; p++ {
				c := winner
				out[p] = vals[c]
				pos := cursor[c] + 1
				cursor[c] = pos
				if pos < end[c] {
					v := childData[pos]
					vals[c] = v
					codes[c] = int32(codeOf(v))
				} else {
					vals[c] = maxV
					codes[c] = maxCode
					tb[c] = i32(m) + c
				}
				// Replay the root path: the refilled leaf competes against
				// the stored losers; whoever loses stays, the winner moves
				// up. Codes resolve unequal pairs without touching the keys.
				w := c
				vw, tw, cw := vals[w], tb[w], uint32(codes[w])
				for i := (m + int(c)) >> 1; i >= 1; i >>= 1 {
					l := ltree[i]
					cl := uint32(codes[l])
					if cl != cw {
						if cl < cw {
							ltree[i] = w
							w, cw = l, cl
							vw, tw = vals[l], tb[l]
						}
						continue
					}
					vl, tl := vals[l], tb[l]
					if vl < vw || (vl == vw && tl < tw) {
						ltree[i] = w
						w, vw, tw = l, vl, tl
					}
				}
				winner = w
			}
			continue
		}
		for ; p < stop; p++ {
			c := winner
			out[p] = vals[c]
			pos := cursor[c] + 1
			cursor[c] = pos
			if pos < end[c] {
				vals[c] = childData[pos]
			} else {
				vals[c] = maxV
				tb[c] = i32(m) + c
			}
			// Replay the root path: the refilled leaf competes against the
			// stored losers; whoever loses stays, the winner moves up.
			w := c
			vw, tw := vals[w], tb[w]
			for i := (m + int(c)) >> 1; i >= 1; i >>= 1 {
				l := ltree[i]
				vl, tl := vals[l], tb[l]
				if vl < vw || (vl == vw && tl < tw) {
					ltree[i] = w
					w, vw, tw = l, vl, tl
				}
			}
			winner = w
		}
	}
	if sampleRun != nil && t1 == len(out) && t1%k == 0 {
		writeSample(t1 / k)
	}
}

// insertionSort stably sorts a small slice ascending; equal elements keep
// their original (child) order, matching the merge's tiebreak.
func insertionSort[P payload](a []P) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// findSplitInto computes, for every child run, how many of its elements
// belong to the first `want` outputs of the stable merge, writing the counts
// into split (length m). It binary searches the value domain for the
// smallest value v such that at least `want` elements are <= v, then assigns
// the elements equal to v to children in child order (matching the merge's
// tiebreak).
func findSplitInto[P payload](split []int32, childData []P, childLen, m, want int) {
	clear(split)
	if want <= 0 {
		return
	}
	var lo, hi int64
	first := true
	for c := 0; c < m; c++ {
		kid := childRunOf(childData, childLen, c)
		if len(kid) == 0 {
			continue
		}
		if first {
			lo, hi = int64(kid[0]), int64(kid[len(kid)-1])
			first = false
			continue
		}
		if int64(kid[0]) < lo {
			lo = int64(kid[0])
		}
		if int64(kid[len(kid)-1]) > hi {
			hi = int64(kid[len(kid)-1])
		}
	}
	// Smallest v with countLessOrEqual(v) >= want. Unsigned midpoint
	// arithmetic avoids overflow on extreme domains.
	for lo < hi {
		mid := lo + int64((uint64(hi)-uint64(lo))>>1)
		cnt := 0
		for c := 0; c < m; c++ {
			cnt += upperBoundP(childRunOf(childData, childLen, c), P(mid))
		}
		if cnt >= want {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	v := P(lo)
	base := 0
	for c := 0; c < m; c++ {
		split[c] = i32(lowerBoundP(childRunOf(childData, childLen, c), v))
		base += int(split[c])
	}
	rem := want - base
	for c := 0; c < m && rem > 0; c++ {
		eq := upperBoundP(childRunOf(childData, childLen, c), v) - int(split[c])
		if eq > rem {
			eq = rem
		}
		split[c] += i32(eq)
		rem -= eq
	}
}

// lowerBoundP returns the number of elements of the sorted slice a that are
// strictly smaller than x.
func lowerBoundP[P payload](a []P, x P) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBoundP returns the number of elements of the sorted slice a that are
// smaller than or equal to x.
func upperBoundP[P payload](a []P, x P) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
