package mst

import (
	"holistic/internal/parallel"
)

// buildTree constructs the tree levels bottom-up (§4.2): level l is produced
// by f-way merges of the runs of level l-1. The merge keeps, every k
// outputs, a snapshot of how many elements it has consumed from each child
// run — these snapshots are exactly the fractional-cascading pointers of
// Figure 4, produced "as a byproduct of constructing the merge sort tree by
// persisting the input iterators used during the merge steps".
//
// Lower levels have many runs, so each run is merged by its own task; upper
// levels have few runs, so the merge itself is split into independent output
// pieces whose child splits are found with a rank binary search over the
// value domain (§5.2).
func buildTree[P payload](base []P, opt Options) *tree[P] {
	n := len(base)
	t := &tree[P]{n: n, f: opt.Fanout, k: opt.SampleEvery}
	t.levels = [][]P{base}
	t.samples = [][]int32{nil}
	t.stride = []int{0}
	t.effLen = []int{1}
	if n <= 1 {
		return t
	}
	cascade := !opt.NoCascading
	for rl := 1; rl < n; {
		rl *= t.f
		if rl > n {
			rl = n
		}
		level := len(t.levels)
		t.effLen = append(t.effLen, rl)
		out := make([]P, n)
		t.levels = append(t.levels, out)
		numRuns := (n + rl - 1) / rl
		var samples []int32
		stride := 0
		if cascade {
			stride = (rl/t.k + 1) * t.f
			samples = make([]int32, numRuns*stride)
		}
		t.samples = append(t.samples, samples)
		t.stride = append(t.stride, stride)

		workers := parallel.Workers()
		if opt.Serial || numRuns >= workers || workers == 1 {
			mergeRuns := func(r int) { t.mergeRun(level, r, samples, stride) }
			if opt.Serial {
				for r := 0; r < numRuns; r++ {
					mergeRuns(r)
				}
			} else {
				parallel.ForEach(numRuns, mergeRuns)
			}
		} else {
			for r := 0; r < numRuns; r++ {
				t.mergeRunParallel(level, r, samples, stride, workers)
			}
		}
		if rl >= n {
			break
		}
	}
	return t
}

// children returns the child runs of run r at the given level.
func (t *tree[P]) children(level, r int) [][]P {
	childLen := t.effLen[level-1]
	runStart := r * t.effLen[level]
	runEnd := runStart + t.effLen[level]
	if runEnd > t.n {
		runEnd = t.n
	}
	kids := make([][]P, 0, t.f)
	for s := runStart; s < runEnd; s += childLen {
		e := s + childLen
		if e > runEnd {
			e = runEnd
		}
		kids = append(kids, t.levels[level-1][s:e])
	}
	return kids
}

// mergeRun merges the children of run r at the given level into the level's
// output array, recording cascading samples.
func (t *tree[P]) mergeRun(level, r int, samples []int32, stride int) {
	runStart := r * t.effLen[level]
	runEnd := runStart + t.effLen[level]
	if runEnd > t.n {
		runEnd = t.n
	}
	kids := t.children(level, r)
	consumed := make([]int32, len(kids))
	var sampleRun []int32
	if samples != nil {
		sampleRun = samples[r*stride : (r+1)*stride]
	}
	t.mergePiece(t.levels[level][runStart:runEnd], kids, consumed, sampleRun, 0, runEnd-runStart)
}

// mergeRunParallel splits the merge of run r into `workers` output pieces;
// the per-child split positions for each piece boundary are found with a
// rank search over the value domain, so pieces merge independently
// (Francis et al. 1993, cited in §5.2).
func (t *tree[P]) mergeRunParallel(level, r int, samples []int32, stride, workers int) {
	runStart := r * t.effLen[level]
	runEnd := runStart + t.effLen[level]
	if runEnd > t.n {
		runEnd = t.n
	}
	length := runEnd - runStart
	kids := t.children(level, r)
	pieces := workers
	if pieces > length/1024 {
		pieces = length / 1024
	}
	if pieces <= 1 {
		t.mergeRun(level, r, samples, stride)
		return
	}
	splits := make([][]int32, pieces+1)
	splits[0] = make([]int32, len(kids))
	splits[pieces] = make([]int32, len(kids))
	for c, kid := range kids {
		splits[pieces][c] = int32(len(kid))
	}
	for p := 1; p < pieces; p++ {
		splits[p] = findSplit(kids, length*p/pieces)
	}
	var sampleRun []int32
	if samples != nil {
		sampleRun = samples[r*stride : (r+1)*stride]
	}
	out := t.levels[level][runStart:runEnd]
	parallel.ForEach(pieces, func(p int) {
		t0 := length * p / pieces
		t1 := length * (p + 1) / pieces
		if p == pieces-1 {
			t1 = length
		}
		consumed := make([]int32, len(kids))
		copy(consumed, splits[p])
		t.mergePiece(out, kids, consumed, sampleRun, t0, t1)
	})
}

// mergePiece merges outputs [t0, t1) of the run (given the consumed counts
// at t0) using an f-way heap ordered by (value, child index) — the child
// index tiebreak keeps the merge stable. Samples are recorded at every
// output position that is a multiple of k, plus the final boundary.
func (t *tree[P]) mergePiece(out []P, kids [][]P, consumed []int32, sampleRun []int32, t0, t1 int) {
	type head struct {
		v P
		c int32
	}
	heap := make([]head, 0, len(kids))
	push := func(h head) {
		heap = append(heap, h)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].v < heap[i].v || (heap[p].v == heap[i].v && heap[p].c <= heap[i].c) {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	popMin := func() head {
		h := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && (heap[l].v < heap[m].v || (heap[l].v == heap[m].v && heap[l].c < heap[m].c)) {
				m = l
			}
			if r < len(heap) && (heap[r].v < heap[m].v || (heap[r].v == heap[m].v && heap[r].c < heap[m].c)) {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
		return h
	}
	for c, kid := range kids {
		if int(consumed[c]) < len(kid) {
			push(head{kid[consumed[c]], int32(c)})
		}
	}
	k := t.k
	f := t.f
	for p := t0; p < t1; p++ {
		if sampleRun != nil && p%k == 0 {
			copy(sampleRun[(p/k)*f:(p/k)*f+len(kids)], consumed)
		}
		h := popMin()
		out[p] = h.v
		consumed[h.c]++
		kid := kids[h.c]
		if int(consumed[h.c]) < len(kid) {
			push(head{kid[consumed[h.c]], h.c})
		}
	}
	if sampleRun != nil && t1 == len(out) && t1%k == 0 {
		copy(sampleRun[(t1/k)*f:(t1/k)*f+len(kids)], consumed)
	}
}

// findSplit returns, for every child run, how many of its elements belong to
// the first want outputs of the stable merge of kids. It binary searches the
// value domain for the smallest value v such that at least `want` elements
// are <= v, then assigns the elements equal to v to children in child order
// (matching the merge's tiebreak).
func findSplit[P payload](kids [][]P, want int) []int32 {
	split := make([]int32, len(kids))
	if want <= 0 {
		return split
	}
	var lo, hi int64
	first := true
	for _, kid := range kids {
		if len(kid) == 0 {
			continue
		}
		if first {
			lo, hi = int64(kid[0]), int64(kid[len(kid)-1])
			first = false
			continue
		}
		if int64(kid[0]) < lo {
			lo = int64(kid[0])
		}
		if int64(kid[len(kid)-1]) > hi {
			hi = int64(kid[len(kid)-1])
		}
	}
	// Smallest v with countLessOrEqual(v) >= want. Unsigned midpoint
	// arithmetic avoids overflow on extreme domains.
	for lo < hi {
		mid := lo + int64((uint64(hi)-uint64(lo))>>1)
		cnt := 0
		for _, kid := range kids {
			cnt += upperBoundP(kid, P(mid))
		}
		if cnt >= want {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	v := P(lo)
	base := 0
	for c, kid := range kids {
		split[c] = int32(lowerBoundP(kid, v))
		base += int(split[c])
	}
	rem := want - base
	for c, kid := range kids {
		if rem <= 0 {
			break
		}
		eq := upperBoundP(kid, v) - int(split[c])
		if eq > rem {
			eq = rem
		}
		split[c] += int32(eq)
		rem -= eq
	}
	return split
}

// lowerBoundP returns the number of elements of the sorted slice a that are
// strictly smaller than x.
func lowerBoundP[P payload](a []P, x P) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBoundP returns the number of elements of the sorted slice a that are
// smaller than or equal to x.
func upperBoundP[P payload](a []P, x P) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
