package mst

import "math"

// Spill-aware tree construction ("Support Aggregate Analytic Window Function
// over Large Data by Spilling", Shi & Wang): when Options.SpillRows is set
// and the input exceeds it, the tree is built as an ordered forest of
// monolithic subtrees over consecutive chunks of the base array instead of
// one O(n log n) structure. Each subtree is built (and can be spooled or
// cached) independently — the shape a segmented, larger-than-memory dataset
// produces naturally, one subtree per on-disk segment's worth of rows.
//
// Queries decompose over the chunks: a position range [lo, hi) overlaps at
// most two chunks partially and covers the rest whole, and a whole chunk
// answers CountBelow with one rank search on its own top run. The one query
// shape that would degrade linearly in the chunk count — a full-span count,
// the dominant case for UNBOUNDED PRECEDING frames — is answered by a fully
// merged top run built lazily on first use, reusing the loser-tree merge and
// its pooled scratch from build.go. Until a full-span query arrives, the
// merged run costs nothing.
//
// Exactness: every primitive is integer counting/selection over the same
// key multiset, so chunked answers are byte-identical to the monolithic
// tree's (enforced by spill_test.go and core's equivalence harness). The
// annotated tree (SUM/AVG DISTINCT) is deliberately not chunked: its float
// prefix aggregates depend on merge order, and re-associating them would
// break the byte-identity contract.

// buildChunked constructs the spill forest: one monolithic subtree per
// SpillRows-sized chunk of keys. Build has already validated opt and the
// element limit.
func buildChunked(keys []int64, opt Options) (*Tree, error) {
	n := len(keys)
	cl := opt.SpillRows
	sub := opt
	sub.SpillRows = 0
	t := &Tree{n: n, opt: opt, chunkLen: cl, chunks: make([]*Tree, (n+cl-1)/cl)}
	for i := range t.chunks {
		lo := i * cl
		hi := lo + cl
		if hi > n {
			hi = n
		}
		c, err := Build(keys[lo:hi], sub)
		if err != nil {
			return nil, err
		}
		t.chunks[i] = c
	}
	return t, nil
}

// ChunkCount reports the number of subtrees of a spill-chunked tree (0 for a
// monolithic tree). Exposed for tests and cache accounting.
func (t *Tree) ChunkCount() int { return len(t.chunks) }

// chunkedCountBelow decomposes a count over the chunk forest. Callers
// guarantee 0 <= lo < hi <= n. Chunks fully inside [lo, hi) contribute the
// rank of threshold on their own top run (one binary search each); the at
// most two partially covered edge chunks descend normally. A full-span query
// short-circuits to one rank search on the lazily merged top run.
func (t *Tree) chunkedCountBelow(lo, hi int, threshold int64) int {
	if lo <= 0 && hi >= t.n {
		return t.topRank(threshold)
	}
	total := 0
	for ci := lo / t.chunkLen; ci < len(t.chunks); ci++ {
		base := ci * t.chunkLen
		if base >= hi {
			break
		}
		c := t.chunks[ci]
		cLo := lo - base
		if cLo < 0 {
			cLo = 0
		}
		cHi := hi - base
		if cHi > c.n {
			cHi = c.n
		}
		total += c.CountBelow(cLo, cHi, threshold)
	}
	return total
}

// chunkedSelectKthRanges walks chunks in position order, counting the
// qualifying entries per chunk on its own top runs, and descends into the
// chunk that straddles rank i. The returned position is rebased to the full
// array.
func (t *Tree) chunkedSelectKthRanges(ranges [][2]int64, i int) (int, bool) {
	if i < 0 {
		return 0, false
	}
	for ci, c := range t.chunks {
		cnt := c.CountRanges(0, c.n, ranges)
		if i < cnt {
			pos, ok := c.SelectKthRanges(ranges, i)
			if !ok {
				return 0, false
			}
			return ci*t.chunkLen + pos, true
		}
		i -= cnt
	}
	return 0, false
}

// topRank returns the number of keys < threshold across the whole tree using
// the merged top run.
func (t *Tree) topRank(threshold int64) int {
	t.topOnce.Do(t.mergeTop)
	if t.top32 != nil {
		if threshold <= 0 {
			return 0
		}
		if threshold > math.MaxInt32 {
			return t.n
		}
		return lowerBoundP(t.top32, int32(threshold))
	}
	return lowerBoundP(t.top64, threshold)
}

// mergeTop builds the fully sorted top run over all chunks by merging the
// chunk top runs with the loser-tree merge from build.go (mergePiece), using
// the same pooled scratch as tree construction. Guarded by topOnce: the
// merge runs at most once per tree, on the first full-span query.
func (t *Tree) mergeTop() {
	all32 := true
	for _, c := range t.chunks {
		if c.t32 == nil {
			all32 = false
			break
		}
	}
	if all32 {
		t.top32 = mergeChunkTops(t.chunks, t.chunkLen, t.n, chunkTop32, t.opt.NoArena)
		return
	}
	t.top64 = mergeChunkTops(t.chunks, t.chunkLen, t.n, chunkTop64, t.opt.NoArena)
}

func chunkTop32(c *Tree) []int32 { return c.t32.levels[c.t32.top()] }

// chunkTop64 returns the chunk's top run widened to int64: a mixed forest
// (some chunks 32-bit, some 64-bit) merges in the wider domain.
func chunkTop64(c *Tree) []int64 {
	if c.t64 != nil {
		return c.t64.levels[c.t64.top()]
	}
	src := c.t32.levels[c.t32.top()]
	out := make([]int64, len(src))
	for i, v := range src {
		out[i] = int64(v)
	}
	return out
}

// mergeChunkTops concatenates the chunk top runs into one child array and
// merges them with mergePiece's tournament loser tree — each chunk top run
// is one sorted child of length chunkLen (the last may be short), exactly
// the geometry mergePiece expects.
func mergeChunkTops[P payload](chunks []*Tree, chunkLen, n int, topOf func(*Tree) []P, noArena bool) []P {
	m := len(chunks)
	base := make([]P, 0, n)
	for _, c := range chunks {
		base = append(base, topOf(c)...)
	}
	out := make([]P, n)
	buf, vals := mergeScratch[P](m, noArena)
	// A throwaway geometry carrier: mergePiece only reads f (slot strides)
	// and, with sampleRun nil, never touches k or the level arrays.
	tmp := &tree[P]{n: n, f: m, k: 1}
	tmp.mergePiece(out, base, chunkLen, m, nil, buf, vals, nil, 0, n)
	putMergeScratch(noArena, buf, vals)
	return out
}
