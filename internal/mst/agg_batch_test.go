package mst

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// TestAggBelowBatchMatchesScalar cross-checks AggBelowBatch against
// per-query AggBelow with a string-concatenation merge, so any deviation in
// the take order — not just the take set — fails the test. The count output
// is cross-checked against CountBelow.
func TestAggBelowBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	merge := func(a, b string) string { return a + "|" + b }
	for _, opt := range batchVariants() {
		for _, n := range []int{0, 1, 2, 7, 33, 257, 4000, ovcMinN + 500} {
			keys := make([]int64, n)
			values := make([]string, n)
			for i := range keys {
				keys[i] = int64(rng.Intn(n + 1))
				values[i] = strconv.Itoa(i)
			}
			at, err := BuildAnnotated(keys, values, merge, opt)
			if err != nil {
				t.Fatal(err)
			}
			m := 2*n + 16
			lo := make([]int32, m)
			hi := make([]int32, m)
			thr := make([]int64, m)
			for q := 0; q < m; q++ {
				switch q % 4 {
				case 0: // sliding frame, monotone threshold
					lo[q] = int32(q / 2)
					hi[q] = int32(q/2 + 50)
					thr[q] = int64(q/2) + 1
				case 1: // random in-domain
					lo[q] = int32(rng.Intn(n + 1))
					hi[q] = lo[q] + int32(rng.Intn(n+1))
					thr[q] = int64(rng.Intn(n + 2))
				case 2: // duplicate of the previous query (dedup shape)
					lo[q], hi[q], thr[q] = lo[q-1], hi[q-1], thr[q-1]
				default: // clamping, trivial and full-span cases
					lo[q] = int32(rng.Intn(2*n+3) - n - 1)
					hi[q] = int32(rng.Intn(2*n+3) - n - 1)
					thr[q] = []int64{-1, 0, int64(n) + 7, math.MaxInt64, 3}[rng.Intn(5)]
				}
			}
			result := make([]string, m)
			okv := make([]bool, m)
			cnt := make([]int32, m)
			at.AggBelowBatch(lo, hi, thr, result, okv, cnt)
			for q := 0; q < m; q++ {
				want, wantOK := at.AggBelow(int(lo[q]), int(hi[q]), thr[q])
				if okv[q] != wantOK || (wantOK && result[q] != want) {
					t.Fatalf("opt=%+v n=%d query %d: AggBelowBatch(%d,%d,%d)=(%q,%v), scalar=(%q,%v)",
						opt, n, q, lo[q], hi[q], thr[q], result[q], okv[q], want, wantOK)
				}
				if wantCnt := at.CountBelow(int(lo[q]), int(hi[q]), thr[q]); int(cnt[q]) != wantCnt {
					t.Fatalf("opt=%+v n=%d query %d: batch cnt=%d, CountBelow=%d",
						opt, n, q, cnt[q], wantCnt)
				}
			}
		}
	}
}

// TestAggBelowBatchFloatBitIdentical pins the floating-point guarantee the
// collectors rely on: batched SUM-style merges are bit-identical to the
// scalar walk, across magnitudes chosen so that any reordering changes the
// rounding.
func TestAggBelowBatchFloatBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	merge := func(a, b float64) float64 { return a + b }
	n := 3000
	keys := make([]int64, n)
	values := make([]float64, n)
	for i := range keys {
		keys[i] = int64(rng.Intn(n + 1))
		values[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
	}
	at, err := BuildAnnotated(keys, values, merge, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := 4 * n
	lo := make([]int32, m)
	hi := make([]int32, m)
	thr := make([]int64, m)
	for q := 0; q < m; q++ {
		lo[q] = int32(rng.Intn(n))
		hi[q] = lo[q] + int32(rng.Intn(n/2+1))
		thr[q] = int64(rng.Intn(n + 2))
	}
	result := make([]float64, m)
	okv := make([]bool, m)
	cnt := make([]int32, m)
	at.AggBelowBatch(lo, hi, thr, result, okv, cnt)
	for q := 0; q < m; q++ {
		want, wantOK := at.AggBelow(int(lo[q]), int(hi[q]), thr[q])
		if okv[q] != wantOK {
			t.Fatalf("query %d: ok=%v scalar=%v", q, okv[q], wantOK)
		}
		if wantOK && math.Float64bits(result[q]) != math.Float64bits(want) {
			t.Fatalf("query %d: batch sum %x differs from scalar %x",
				q, math.Float64bits(result[q]), math.Float64bits(want))
		}
	}
}
