// Package mst implements the merge sort tree from "Efficient Evaluation of
// Arbitrarily-Framed Holistic SQL Aggregates and Window Functions"
// (SIGMOD 2022), §4 and §5.1.
//
// A merge sort tree over an array keeps the intermediate sorted runs of a
// (multiway) merge sort: level 0 is the original array, level l consists of
// sorted runs of length fanoutˡ, and the top level is one fully sorted run.
// The tree supports two-dimensional range queries over (position, value):
//
//   - CountBelow: how many entries in positions [lo, hi) have a value
//     smaller than a threshold — the primitive behind framed COUNT DISTINCT
//     (§4.2) and framed rank functions (§4.4);
//   - SelectKth: the i-th entry (in position order) whose value falls in a
//     given range — the primitive behind framed percentiles and value
//     functions (§4.5);
//   - AnnotatedTree additionally stores per-element prefix aggregates so
//     arbitrary distinct distributive aggregates can be framed (§4.3).
//
// Queries run in O(log n) thanks to fractional cascading: every k-th element
// of each run is annotated with, per child run, the number of elements the
// merge had consumed from that child, which bounds the re-search window at
// the child level by k (§4.2, Figures 3 and 4). Both the fanout f and the
// sampling parameter k are configurable; the paper settles on f = k = 32
// (§6.6) and so do we.
//
// Payload values are plain integers: the window operator's preprocessing
// (package preprocess) maps previous-occurrence indices, dense ranks and
// permutation entries to the integer domain [0, n], so trees are built with
// 32-bit elements whenever they fit and 64-bit elements otherwise (§5.1).
package mst

import (
	"fmt"
	"math"
	"sync"

	"holistic/internal/obs"
)

// DefaultFanout is the tree fanout f chosen by the paper's parameter study
// (§6.6, Figure 13).
const DefaultFanout = 32

// DefaultSampleEvery is the cascading-pointer sampling parameter k chosen by
// the paper's parameter study (§6.6, Figure 13).
const DefaultSampleEvery = 32

// Options configures tree construction.
type Options struct {
	// Fanout is the number of child runs merged into one parent run (f).
	// 0 selects DefaultFanout. Must be >= 2 otherwise.
	Fanout int
	// SampleEvery is the cascading-pointer sampling distance (k): every
	// k-th element of a run carries pointers into the child runs.
	// 0 selects DefaultSampleEvery. Must be >= 1 otherwise.
	SampleEvery int
	// NoCascading disables fractional cascading entirely; every level is
	// then located with a full binary search, degrading queries to
	// O((log n)²) as in Figure 2. Kept for the ablation benchmarks.
	NoCascading bool
	// Force64 forces 64-bit tree elements even when the payload domain fits
	// into 32 bits. Kept for the ablation benchmarks (§5.1 argues the
	// 32-bit representation wins through lower memory bandwidth).
	Force64 bool
	// Serial disables parallel construction.
	Serial bool
	// NoArena opts out of the allocation substrate: tree levels, cascading
	// samples and merge scratch are allocated with plain make instead of the
	// per-build arena slabs and shared scratch pools. Results are identical;
	// the flag exists for allocation-behavior comparisons and as an escape
	// hatch should the substrate misbehave.
	NoArena bool
	// SpillRows, when > 0, makes Build spill-aware: inputs larger than
	// SpillRows are built as an ordered forest of monolithic subtrees over
	// consecutive SpillRows-sized chunks (one per on-disk segment's worth of
	// rows in the out-of-core path), merged lazily at query time — see
	// spill.go. Answers are byte-identical to the monolithic tree's; only
	// Build honors the option (BuildAnnotated stays monolithic because its
	// float prefix aggregates depend on merge order). 0 disables spilling.
	SpillRows int
	// Tuning, when non-nil, supplies measured construction parameters per
	// input size: Build and BuildAnnotated consult it for the fanout and
	// sample distance when the corresponding field is left zero, replacing
	// the paper's fixed f = k = 32 with the tuner's crossover-derived
	// choice (package mst/tune provides the canonical implementation).
	// Explicitly set Fanout/SampleEvery always win over the tuner. The
	// tuner shapes the built structure, so its Sig() must be folded into
	// any cache key derived from these options.
	Tuning Tuner
	// Trace, when non-nil, receives one child span per merge level during
	// construction. It never influences the built structure, so it is
	// excluded from structural signatures and not persisted by Serialize.
	Trace *obs.Span
}

// Choice is a Tuner's parameter pick for one input size.
type Choice struct {
	// Fanout and SampleEvery are the construction parameters (f, k).
	// Values < 2 (resp. < 1) are ignored and fall back to the defaults.
	Fanout      int
	SampleEvery int
	// Batch reports whether the batched level-synchronous probe kernels
	// are expected to beat the scalar per-query descents at this size.
	// The tree itself answers identically either way; the window
	// operator uses the flag to pick its probe path.
	Batch bool
}

// Tuner supplies per-input-size construction and probe parameters, derived
// from measured build+probe crossover curves (see internal/mst/tune).
// Implementations must be deterministic — the same n always yields the same
// Choice — and safe for concurrent use. Sig must return a stable signature
// identifying the table the tuner answers from: it becomes part of tree
// cache keys, so two tuners that could ever answer differently must have
// different signatures.
type Tuner interface {
	Choose(n int) Choice
	Sig() string
}

func (o Options) withDefaults() Options {
	if o.Fanout == 0 {
		o.Fanout = DefaultFanout
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = DefaultSampleEvery
	}
	return o
}

// resolveFor applies the auto-tuner's parameter choice for an input of n
// elements to every field the caller left zero, then fills the remaining
// zeros with the paper defaults. The result is a pure function of (o, n),
// so rebuilding the same input with the same options always yields the
// same structure — the property delta re-keys and the treecache rely on.
func (o Options) resolveFor(n int) Options {
	if o.Tuning != nil {
		c := o.Tuning.Choose(n)
		if o.Fanout == 0 && c.Fanout >= 2 {
			o.Fanout = c.Fanout
		}
		if o.SampleEvery == 0 && c.SampleEvery >= 1 {
			o.SampleEvery = c.SampleEvery
		}
	}
	return o.withDefaults()
}

func (o Options) validate() error {
	if o.Fanout < 2 {
		return fmt.Errorf("mst: fanout must be >= 2, got %d", o.Fanout)
	}
	if o.SampleEvery < 1 {
		return fmt.Errorf("mst: sample distance must be >= 1, got %d", o.SampleEvery)
	}
	if o.SpillRows < 0 {
		return fmt.Errorf("mst: spill rows must be >= 0, got %d", o.SpillRows)
	}
	return nil
}

// payload is the element type of a tree level: the preprocessed integer
// domain of §5.1.
type payload interface {
	~int32 | ~int64
}

// tree is the generic merge sort tree. levels[0] is a copy of the input;
// levels[top] is a single sorted run.
type tree[P payload] struct {
	n int
	f int // fanout
	k int // sample distance
	// levels[l] holds the concatenated sorted runs of length runLen(l).
	levels [][]P
	// samples[l] (l >= 1) holds the cascading pointers of level l: for run
	// r and sample s (covering the run prefix of length s·k), f int32
	// consumed-element counts, one per child run. Flattened as
	// samples[l][r*stride(l) + s*f + child]. nil when cascading is off.
	samples [][]int32
	// stride[l] is the per-run sample stride at level l, padded to whole
	// cache lines (sampleStride, soa.go).
	stride []int
	// effLen[l] is the run length at level l (f^l), clamped to n at the top.
	effLen []int
	// topCodes is the offset-value code stripe of the top run: the high
	// 32-bit word of every element, used by the batched kernels' top-level
	// searches. Only materialized for 64-bit payload trees of at least
	// ovcMinN elements (soa.go); nil otherwise.
	topCodes []uint32
}

// Tree is a merge sort tree over an int64 payload array. It transparently
// stores 32-bit elements when the payload domain allows (§5.1).
type Tree struct {
	t32 *tree[int32]
	t64 *tree[int64]
	n   int
	opt Options

	// Spill-chunked representation (Options.SpillRows, spill.go): when
	// chunks is non-nil, t32/t64 are nil and chunks[i] is a monolithic
	// subtree over base positions [i·chunkLen, min((i+1)·chunkLen, n)).
	chunks   []*Tree
	chunkLen int
	// topOnce guards the lazily merged full top run (top32 or top64,
	// matching the forest's payload width), built on the first full-span
	// query by merging the chunk top runs with the loser-tree scratch.
	topOnce sync.Once
	top32   []int32
	top64   []int64
}

// Build constructs a merge sort tree over keys. The input slice is not
// modified. Keys must be >= 0 (the preprocessing stages only produce
// non-negative integers; the special value "–" is mapped to 0 with all
// indices shifted by one, §5.1).
func Build(keys []int64, opt Options) (*Tree, error) {
	opt = opt.resolveFor(len(keys))
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(keys) >= math.MaxInt32 {
		return nil, fmt.Errorf("mst: input of %d elements exceeds the 2³¹ element limit", len(keys))
	}
	if opt.SpillRows > 0 && len(keys) > opt.SpillRows {
		return buildChunked(keys, opt)
	}
	t := &Tree{n: len(keys), opt: opt}
	use32 := !opt.Force64
	if use32 {
		for _, v := range keys {
			if v < 0 || v > math.MaxInt32 {
				use32 = false
				break
			}
		}
	}
	if use32 {
		base := make([]int32, len(keys))
		for i, v := range keys {
			//lint:narrowconv-ok the use32 scan above proved every key is in [0, math.MaxInt32]
			base[i] = int32(v)
		}
		t.t32 = buildTree(base, opt)
	} else {
		base := make([]int64, len(keys))
		copy(base, keys)
		t.t64 = buildTree(base, opt)
	}
	return t, nil
}

// Len returns the number of elements the tree was built over.
func (t *Tree) Len() int { return t.n }

// Is32Bit reports whether the tree stores 32-bit elements (for a spill
// forest: whether every subtree does).
func (t *Tree) Is32Bit() bool {
	if t.chunks != nil {
		for _, c := range t.chunks {
			if !c.Is32Bit() {
				return false
			}
		}
		return true
	}
	return t.t32 != nil
}

// CountBelow returns the number of entries at positions [lo, hi) whose value
// is strictly smaller than threshold. lo and hi are clamped to [0, Len()].
func (t *Tree) CountBelow(lo, hi int, threshold int64) int {
	if lo < 0 {
		lo = 0
	}
	if hi > t.n {
		hi = t.n
	}
	if lo >= hi {
		return 0
	}
	if t.chunks != nil {
		return t.chunkedCountBelow(lo, hi, threshold)
	}
	if t.t32 != nil {
		if threshold <= 0 {
			return 0
		}
		if threshold > math.MaxInt32 {
			return hi - lo
		}
		return t.t32.countBelow(lo, hi, int32(threshold))
	}
	return t.t64.countBelow(lo, hi, threshold)
}

// CountRange returns the number of entries at positions [lo, hi) whose value
// v satisfies vLo <= v < vHi.
func (t *Tree) CountRange(lo, hi int, vLo, vHi int64) int {
	if vHi <= vLo {
		return 0
	}
	return t.CountBelow(lo, hi, vHi) - t.CountBelow(lo, hi, vLo)
}

// SelectKth returns the position (index into the base array) of the i-th
// entry, in position order, whose value v satisfies vLo <= v < vHi.
// i is 0-based. ok is false when fewer than i+1 entries qualify.
func (t *Tree) SelectKth(vLo, vHi int64, i int) (pos int, ok bool) {
	if i < 0 || vHi <= vLo || t.n == 0 {
		return 0, false
	}
	if t.chunks != nil {
		return t.chunkedSelectKthRanges([][2]int64{{vLo, vHi}}, i)
	}
	if t.t32 != nil {
		l32 := clampI32(vLo)
		h32 := clampI32(vHi)
		if h32 <= l32 {
			return 0, false
		}
		return t.t32.selectKth(l32, h32, i)
	}
	return t.t64.selectKth(vLo, vHi, i)
}

func clampI32(v int64) int32 {
	if v < 0 {
		return 0
	}
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(v)
}

// Value returns the payload value at base position pos.
func (t *Tree) Value(pos int) int64 {
	if t.chunks != nil {
		return t.chunks[pos/t.chunkLen].Value(pos % t.chunkLen)
	}
	if t.t32 != nil {
		return int64(t.t32.levels[0][pos])
	}
	return t.t64.levels[0][pos]
}

// runLen returns f^l clamped to n.
func (t *tree[P]) runLen(level int) int { return t.effLen[level] }

// top returns the index of the topmost level (a single sorted run).
func (t *tree[P]) top() int { return len(t.levels) - 1 }

// run returns the elements of the given run at the given level.
func (t *tree[P]) run(level, run int) []P {
	rl := t.effLen[level]
	start := run * rl
	end := start + rl
	if end > t.n {
		end = t.n
	}
	return t.levels[level][start:end]
}
