package mst

import "unsafe"

// Cache-conscious struct-of-arrays level layout and offset-value-coded
// comparisons (PR 10; DESIGN.md §15).
//
// Layout. A tree level is two flat stripes: the payload run slab
// (levels[l]) and the cascading sample slab (samples[l]). Both were already
// arena-carved; this file makes the layout deliberate:
//
//   - every stripe starts on a 64-byte cache-line boundary
//     (arena.AllocAligned), so the first element of a level — and with the
//     power-of-two run lengths of the lower levels, the first element of
//     every run — never straddles a line;
//   - a run's per-sample pointer row (f consecutive int32 consumed-element
//     counts) is the unit one frontier step of the batched kernels loads.
//     The per-run sample stride is padded up to a whole number of cache
//     lines (sampleStride), so with the slab aligned, every sample row of
//     every run starts line-aligned: a frontier step touches exactly
//     ⌈4f/64⌉ lines — one line for f <= 16, two for the paper's f = 32 —
//     instead of up to one more when rows straddle lines.
//
// Offset-value coding (Do/Graefe/Naughton, "Efficient sorting, duplicate
// removal, grouping, and aggregation"). The payloads here are single
// non-negative integers, so the general (offset, value) pair over a
// multi-column key degenerates to two "columns": the high and the low
// 32-bit word. The code of a key is its high word — the value at the first
// possible offset — and two keys compare by their codes alone unless the
// codes tie, in which case the comparison falls through to the full key:
//
//   - run merges (mergePiece) keep the code of every leaf's head value next
//     to the head itself, so the tournament-tree comparisons resolve on the
//     cached 32-bit code pair and only touch the 64-bit keys on a code tie;
//   - the batched kernels' top-level probe searches run against a dedicated
//     uint32 code stripe of the top run (topCodes), halving the memory
//     touched by the cache-hostile O(log n) search; only tie steps load
//     the 64-bit key.
//
// Both apply to 64-bit payload trees only: for 32-bit payloads code and key
// coincide and the machinery would be pure overhead. Codes are a monotone
// projection of the keys, so every comparison outcome — and therefore every
// query answer and every merge order — is bit-identical to the uncoded
// path. Because the padded sample stride changes the serialized form and
// the in-memory geometry, treeSig carries a layout component ("l2") so
// structure caches never mix layouts across versions.

// cacheLineBytes is the layout grain of the SoA stripes.
const cacheLineBytes = 64

// ovcMinN is the smallest tree for which the top-level code stripe is
// materialized; below it the whole top run fits in a few lines anyway.
const ovcMinN = 4096

// sampleStride returns the per-run sample-table stride, in int32 elements,
// for a level with run length rl under sampling distance k and fanout f:
// the dense (rl/k+1)·f slots padded up to a whole number of cache lines so
// consecutive runs keep their sample rows line-aligned.
func sampleStride(rl, k, f int) int {
	s := (rl/k + 1) * f
	const pad = cacheLineBytes / 4
	return (s + pad - 1) / pad * pad
}

// codeOf is the offset-value code of a key: its high 32-bit word with the
// sign bit flipped, so unsigned code comparisons order exactly like signed
// comparisons of the keys' high words (keys may be negative — stream trees
// are built over raw column values). Equal codes require the full key. For
// 32-bit payloads every code is 0 and comparisons fall straight through to
// the key — the compiler folds the constant away.
func codeOf[P payload](v P) uint32 {
	if unsafe.Sizeof(v) == 8 {
		//lint:narrowconv-ok the >>32 bounds the operand to 32 bits, so the conversion is exact
		return uint32(uint64(int64(v))>>32) ^ 0x8000_0000
	}
	return 0
}

// finalizeCodes materializes the top-level code stripe of a built or
// deserialized tree. 64-bit payloads only; small trees skip it.
func finalizeCodes[P payload](t *tree[P]) {
	var z P
	if unsafe.Sizeof(z) != 8 || t.n < ovcMinN || len(t.levels) < 2 {
		return
	}
	top := t.levels[len(t.levels)-1]
	codes := make([]uint32, len(top))
	for i, v := range top {
		codes[i] = codeOf(v)
	}
	t.topCodes = codes
}

// lowerBoundFromOVC is lowerBoundFromP against a code stripe: every probe
// compares the 32-bit code first and touches the 64-bit key only on a code
// tie. codes must be the element-wise codeOf of a; the result is exactly
// lowerBoundP(a, x).
func lowerBoundFromOVC[P payload](a []P, codes []uint32, x P, g int) int {
	cx := codeOf(x)
	less := func(i int) bool {
		if c := codes[i]; c != cx {
			return c < cx
		}
		return a[i] < x
	}
	n := len(a)
	if g < 0 {
		g = 0
	} else if g > n {
		g = n
	}
	if g < n && less(g) {
		lb, hi := g, n
		for step := 1; ; step <<= 1 {
			j := lb + step
			if j >= n {
				break
			}
			if less(j) {
				lb = j
			} else {
				hi = j
				break
			}
		}
		lo := lb + 1
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if less(mid) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	if g > 0 && !less(g-1) {
		ub := g - 1
		lo := 0
		for step := 1; ; step <<= 1 {
			j := ub - step
			if j < 0 {
				break
			}
			if !less(j) {
				ub = j
			} else {
				lo = j + 1
				break
			}
		}
		hi := ub
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if less(mid) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	return g
}

// topSearch locates threshold in the tree's top run, galloping from guess g
// and using the offset-value code stripe when the tree carries one.
func topSearch[P payload](t *tree[P], run0 []P, x P, g int) int {
	if t.topCodes != nil {
		return lowerBoundFromOVC(run0, t.topCodes, x, g)
	}
	return lowerBoundFromP(run0, x, g)
}
