package sortutil

import (
	"cmp"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"holistic/internal/parallel"
)

func TestLowerUpperBound(t *testing.T) {
	a := []int64{1, 3, 3, 3, 7, 9}
	cases := []struct {
		x      int64
		lb, ub int
	}{
		{0, 0, 0}, {1, 0, 1}, {2, 1, 1}, {3, 1, 4}, {4, 4, 4},
		{7, 4, 5}, {8, 5, 5}, {9, 5, 6}, {10, 6, 6},
	}
	for _, c := range cases {
		if got := LowerBound(a, c.x); got != c.lb {
			t.Errorf("LowerBound(%d) = %d, want %d", c.x, got, c.lb)
		}
		if got := UpperBound(a, c.x); got != c.ub {
			t.Errorf("UpperBound(%d) = %d, want %d", c.x, got, c.ub)
		}
	}
	if LowerBound(nil, 5) != 0 || UpperBound(nil, 5) != 0 {
		t.Error("bounds on empty slice must be 0")
	}
}

func TestBounds32MatchBounds64(t *testing.T) {
	prop := func(raw []uint8, x uint8) bool {
		a64 := make([]int64, len(raw))
		a32 := make([]int32, len(raw))
		for i, v := range raw {
			a64[i] = int64(v)
			a32[i] = int32(v)
		}
		slices.Sort(a64)
		slices.Sort(a32)
		return LowerBound(a64, int64(x)) == LowerBound32(a32, int32(x)) &&
			UpperBound(a64, int64(x)) == UpperBound32(a32, int32(x))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountInRange(t *testing.T) {
	a := []int64{1, 2, 2, 5, 8, 8, 8, 12}
	if got := CountInRange(a, 2, 8); got != 6 {
		t.Fatalf("CountInRange[2,8] = %d, want 6", got)
	}
	if got := CountInRange(a, 9, 3); got != 0 {
		t.Fatalf("inverted range = %d, want 0", got)
	}
	if got := CountInRange32([]int32{1, 2, 3}, 2, 2); got != 1 {
		t.Fatalf("CountInRange32 = %d, want 1", got)
	}
}

func TestIntroSortBothPartitionings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := map[string]func(n int) []int64{
		"random": func(n int) []int64 {
			a := make([]int64, n)
			for i := range a {
				a[i] = rng.Int63n(1 << 30)
			}
			return a
		},
		"sorted": func(n int) []int64 {
			a := make([]int64, n)
			for i := range a {
				a[i] = int64(i)
			}
			return a
		},
		"reverse": func(n int) []int64 {
			a := make([]int64, n)
			for i := range a {
				a[i] = int64(n - i)
			}
			return a
		},
		"allequal": func(n int) []int64 { return make([]int64, n) },
		"fewdistinct": func(n int) []int64 {
			a := make([]int64, n)
			for i := range a {
				a[i] = rng.Int63n(3)
			}
			return a
		},
	}
	for name, gen := range shapes {
		for _, n := range []int{0, 1, 2, 23, 24, 25, 1000, 10000} {
			for _, p := range []Partitioning{ThreeWay, TwoWay} {
				a := gen(n)
				want := slices.Clone(a)
				slices.Sort(want)
				IntroSort(a, p)
				if !slices.Equal(a, want) {
					t.Fatalf("%s n=%d partitioning=%d: not sorted", name, n, p)
				}
			}
		}
	}
}

func TestMergeSplitStable(t *testing.T) {
	type elem struct{ key, src int }
	cmpE := func(a, b elem) int { return cmp.Compare(a.key, b.key) }
	x := []elem{{1, 0}, {3, 0}, {3, 0}, {5, 0}}
	y := []elem{{1, 1}, {3, 1}, {4, 1}}
	// The full stable merge.
	full := make([]elem, len(x)+len(y))
	MergeInto(full, x, y, cmpE)
	wantOrder := []elem{{1, 0}, {1, 1}, {3, 0}, {3, 0}, {3, 1}, {4, 1}, {5, 0}}
	if !slices.Equal(full, wantOrder) {
		t.Fatalf("MergeInto not stable: %v", full)
	}
	// Every split point must be consistent with the full merge prefix.
	for split := 0; split <= len(full); split++ {
		i, j := MergeSplit(x, y, split, cmpE)
		if i+j != split {
			t.Fatalf("split %d: i+j = %d", split, i+j)
		}
		nx := 0
		for _, e := range full[:split] {
			if e.src == 0 {
				nx++
			}
		}
		if i != nx {
			t.Fatalf("split %d: took %d from x, stable merge takes %d", split, i, nx)
		}
	}
}

func TestParallelMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, nx := range []int{0, 1, 100, 1 << 16} {
		for _, ny := range []int{0, 1, 77, 1 << 16} {
			x := make([]int64, nx)
			y := make([]int64, ny)
			for i := range x {
				x[i] = rng.Int63n(1000)
			}
			for i := range y {
				y[i] = rng.Int63n(1000)
			}
			slices.Sort(x)
			slices.Sort(y)
			got := make([]int64, nx+ny)
			ParallelMerge(got, x, y, cmp.Compare[int64])
			want := make([]int64, nx+ny)
			MergeInto(want, x, y, cmp.Compare[int64])
			if !slices.Equal(got, want) {
				t.Fatalf("ParallelMerge(%d,%d) differs from serial merge", nx, ny)
			}
		}
	}
}

func TestSortFunc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 100, 1 << 14, 1<<16 + 3} {
		a := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63n(1 << 20)
		}
		want := slices.Clone(a)
		slices.Sort(want)
		SortFunc(a, cmp.Compare[int64])
		if !slices.Equal(a, want) {
			t.Fatalf("SortFunc failed for n=%d", n)
		}
	}
}

func TestSortFuncStableWithTiebreak(t *testing.T) {
	// The window operator always sorts (key, position) pairs; with the
	// position tiebreak the sort must behave like a stable sort on key.
	type pair struct {
		key int64
		pos int
	}
	rng := rand.New(rand.NewSource(4))
	n := 1 << 16
	a := make([]pair, n)
	for i := range a {
		a[i] = pair{rng.Int63n(64), i} // heavy duplication
	}
	SortFunc(a, func(x, y pair) int {
		if c := cmp.Compare(x.key, y.key); c != 0 {
			return c
		}
		return cmp.Compare(x.pos, y.pos)
	})
	for i := 1; i < n; i++ {
		if a[i-1].key > a[i].key || (a[i-1].key == a[i].key && a[i-1].pos >= a[i].pos) {
			t.Fatalf("order violated at %d: %v %v", i, a[i-1], a[i])
		}
	}
}

func TestSortFuncSingleWorker(t *testing.T) {
	prev := parallel.SetMaxWorkers(1)
	defer parallel.SetMaxWorkers(prev)
	a := make([]int64, 1<<15)
	rng := rand.New(rand.NewSource(5))
	for i := range a {
		a[i] = rng.Int63()
	}
	want := slices.Clone(a)
	slices.Sort(want)
	SortFunc(a, cmp.Compare[int64])
	if !slices.Equal(a, want) {
		t.Fatal("single-worker SortFunc failed")
	}
}

func TestSortFuncProperty(t *testing.T) {
	prop := func(raw []int64) bool {
		a := slices.Clone(raw)
		want := slices.Clone(raw)
		slices.Sort(want)
		SortFunc(a, cmp.Compare[int64])
		return slices.Equal(a, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortFuncForcedParallel(t *testing.T) {
	prev := parallel.SetMaxWorkers(8)
	defer parallel.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{1 << 14, 1<<17 + 13, 1 << 18} {
		a := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63n(1000) // heavy duplicates exercise tie handling
		}
		want := slices.Clone(a)
		slices.Sort(want)
		SortFunc(a, cmp.Compare[int64])
		if !slices.Equal(a, want) {
			t.Fatalf("forced-parallel SortFunc failed for n=%d", n)
		}
	}
}

func TestParallelMergeForcedWorkers(t *testing.T) {
	prev := parallel.SetMaxWorkers(8)
	defer parallel.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(78))
	nx, ny := 1<<17, 1<<17+999
	x := make([]int64, nx)
	y := make([]int64, ny)
	for i := range x {
		x[i] = rng.Int63n(500)
	}
	for i := range y {
		y[i] = rng.Int63n(500)
	}
	slices.Sort(x)
	slices.Sort(y)
	got := make([]int64, nx+ny)
	ParallelMerge(got, x, y, cmp.Compare[int64])
	want := make([]int64, nx+ny)
	MergeInto(want, x, y, cmp.Compare[int64])
	if !slices.Equal(got, want) {
		t.Fatal("forced-parallel merge differs from serial merge")
	}
}
