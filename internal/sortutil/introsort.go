package sortutil

import "math/bits"

// Partitioning selects the quicksort partitioning scheme used by IntroSort.
//
// §5.3 of the paper reports that a 2-way partitioning quicksort degrades to
// O(n²) on inputs with few distinct values — exactly what the prevIdcs array
// of a framed distinct count over a mostly-unique column looks like (almost
// all entries are 0). Switching to 3-way (Dutch national flag) partitioning
// fixed this in Hyper; both schemes are kept here so the regression is
// reproducible (see BenchmarkAblationPartitioning).
type Partitioning int

const (
	// ThreeWay partitions into <, ==, > regions and recurses only into the
	// strict regions. Robust against duplicate-heavy inputs.
	ThreeWay Partitioning = iota
	// TwoWay is classic Hoare partitioning. Quadratic scanning behaviour on
	// duplicate-heavy inputs is only prevented by the introsort depth limit.
	TwoWay
)

// IntroSort sorts a ascending using quicksort with the given partitioning
// scheme, falling back to heapsort beyond 2·log2(n) recursion depth and to
// insertion sort for small ranges — the same introsort structure Hyper's
// sort code uses (§5.2).
func IntroSort(a []int64, p Partitioning) {
	if len(a) < 2 {
		return
	}
	depth := 2 * (bits.Len(uint(len(a))) - 1)
	introSort(a, depth, p)
}

const insertionThreshold = 24

func introSort(a []int64, depth int, p Partitioning) {
	for len(a) > insertionThreshold {
		if depth == 0 {
			heapSort(a)
			return
		}
		depth--
		if p == ThreeWay {
			lt, gt := partition3(a)
			// Recurse into the smaller side, loop on the larger one to
			// bound stack depth.
			if lt < len(a)-gt {
				introSort(a[:lt], depth, p)
				a = a[gt:]
			} else {
				introSort(a[gt:], depth, p)
				a = a[:lt]
			}
		} else {
			m := partition2(a)
			if m < len(a)-m {
				introSort(a[:m], depth, p)
				a = a[m:]
			} else {
				introSort(a[m:], depth, p)
				a = a[:m]
			}
		}
	}
	insertionSort(a)
}

// medianOfThree orders a[lo], a[mid], a[hi] and returns the median value.
func medianOfThree(a []int64) int64 {
	lo, mid, hi := 0, len(a)/2, len(a)-1
	if a[mid] < a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
	}
	return a[mid]
}

// partition3 performs Dutch-national-flag partitioning around a
// median-of-three pivot. It returns (lt, gt) such that a[:lt] < pivot,
// a[lt:gt] == pivot, a[gt:] > pivot.
func partition3(a []int64) (lt, gt int) {
	pivot := medianOfThree(a)
	lt, gt = 0, len(a)
	for i := lt; i < gt; {
		switch {
		case a[i] < pivot:
			a[i], a[lt] = a[lt], a[i]
			lt++
			i++
		case a[i] > pivot:
			gt--
			a[i], a[gt] = a[gt], a[i]
		default:
			i++
		}
	}
	return lt, gt
}

// partition2 performs Hoare partitioning around a median-of-three pivot and
// returns the split point m with a[:m] <= pivot <= a[m:] (both sides
// non-empty for len(a) >= 2).
func partition2(a []int64) int {
	pivot := medianOfThree(a)
	i, j := -1, len(a)
	for {
		for {
			i++
			if a[i] >= pivot {
				break
			}
		}
		for {
			j--
			if a[j] <= pivot {
				break
			}
		}
		if i >= j {
			return j + 1
		}
		a[i], a[j] = a[j], a[i]
	}
}

func insertionSort(a []int64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func heapSort(a []int64) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftDown(a, 0, i)
	}
}

func siftDown(a []int64, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}
