package sortutil

import (
	"slices"

	"holistic/internal/parallel"
)

// minParallelSort is the input size below which SortFunc falls back to a
// plain serial sort; smaller inputs are not worth the goroutine traffic.
const minParallelSort = 1 << 14

// SortFunc sorts a ascending according to cmp using a parallel merge sort:
// worker-count chunks are sorted independently (introsort via the standard
// library's pdqsort), then merged pairwise with splitter-parallelized merges
// (Francis et al. 1993) — the structure described in §5.2 of the paper.
//
// The sort is not stable; callers that need stability must make cmp total
// (the window operator always breaks ties on the original tuple position,
// which the paper relies on for Algorithm 1 as well).
func SortFunc[E any](a []E, cmp func(x, y E) int) {
	workers := parallel.Workers()
	if len(a) < minParallelSort || workers <= 1 {
		//lint:sortstability-ok SortFunc's documented contract makes cmp total (callers break ties on tuple position), so stability is vacuous
		slices.SortFunc(a, cmp)
		return
	}
	// Round chunk count up to a power of two so that the merge rounds pair
	// up evenly.
	chunks := 1
	for chunks < 2*workers {
		chunks *= 2
	}
	if chunks > len(a)/minParallelSort*2 {
		chunks = largestPow2(max(1, len(a)*2/minParallelSort))
	}
	if chunks <= 1 {
		//lint:sortstability-ok cmp is total per SortFunc's contract, see above
		slices.SortFunc(a, cmp)
		return
	}
	chunkLen := (len(a) + chunks - 1) / chunks
	bounds := make([]int, chunks+1)
	for i := 0; i <= chunks; i++ {
		b := i * chunkLen
		if b > len(a) {
			b = len(a)
		}
		bounds[i] = b
	}
	parallel.ForEach(chunks, func(i int) {
		//lint:sortstability-ok cmp is total per SortFunc's contract, see above
		slices.SortFunc(a[bounds[i]:bounds[i+1]], cmp)
	})

	buf := make([]E, len(a))
	src, dst := a, buf
	for width := 1; width < chunks; width *= 2 {
		type mergeJob struct{ lo, mid, hi int }
		var jobs []mergeJob
		for i := 0; i+width < chunks; i += 2 * width {
			hiIdx := i + 2*width
			if hiIdx > chunks {
				hiIdx = chunks
			}
			jobs = append(jobs, mergeJob{bounds[i], bounds[i+width], bounds[hiIdx]})
		}
		parallel.ForEach(len(jobs), func(j int) {
			jb := jobs[j]
			ParallelMerge(dst[jb.lo:jb.hi], src[jb.lo:jb.mid], src[jb.mid:jb.hi], cmp)
		})
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

func largestPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// ParallelMerge merges the sorted runs x and y into dst (len(dst) must be
// len(x)+len(y)). Large merges are split into independent pieces by binary
// searching output-percentile splitters in both runs, so the pieces can be
// merged by different workers — the parallel multiway merge balancing scheme
// of Francis et al. that §5.2 cites.
func ParallelMerge[E any](dst, x, y []E, cmp func(a, b E) int) {
	const minPiece = 1 << 15
	n := len(dst)
	pieces := parallel.Workers()
	if pieces > n/minPiece {
		pieces = n / minPiece
	}
	if pieces <= 1 {
		MergeInto(dst, x, y, cmp)
		return
	}
	cuts := make([]int, pieces+1) // split positions in x
	cuts[pieces] = len(x)
	for p := 1; p < pieces; p++ {
		t := n * p / pieces
		i, _ := MergeSplit(x, y, t, cmp)
		cuts[p] = i
	}
	parallel.ForEach(pieces, func(p int) {
		t0 := n * p / pieces
		t1 := n * (p + 1) / pieces
		if p == pieces-1 {
			t1 = n
		}
		i0, j0 := cuts[p], t0-cuts[p]
		i1, j1 := cuts[p+1], t1-cuts[p+1]
		MergeInto(dst[t0:t1], x[i0:i1], y[j0:j1], cmp)
	})
}

// MergeSplit finds the stable split of the first t output elements of
// merging x and y: it returns (i, j) with i+j = t such that the first t
// outputs are exactly x[:i] followed-merged-with y[:j]. Ties are broken in
// favour of x (stable merge order).
func MergeSplit[E any](x, y []E, t int, cmp func(a, b E) int) (i, j int) {
	lo := t - len(y)
	if lo < 0 {
		lo = 0
	}
	hi := t
	if hi > len(x) {
		hi = len(x)
	}
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		// If x[m] sorts before y[t-m-1] (ties favour x), then x[m] belongs
		// to the first t outputs, so the split must take more from x.
		if t-m > 0 && cmp(x[m], y[t-m-1]) <= 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo, t - lo
}

// MergeInto serially merges sorted runs x and y into dst
// (len(dst) == len(x)+len(y)). Ties take from x first, making the merge
// stable.
func MergeInto[E any](dst, x, y []E, cmp func(a, b E) int) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if cmp(x[i], y[j]) <= 0 {
			dst[k] = x[i]
			i++
		} else {
			dst[k] = y[j]
			j++
		}
		k++
	}
	k += copy(dst[k:], x[i:])
	copy(dst[k:], y[j:])
}
