// Package sortutil implements the sorting substrate the paper's window
// operator reuses (§5.3): parallel comparison sorts, splitter-based parallel
// merging of sorted runs (Francis et al. 1993), multiway merges for the
// merge sort tree build, an introsort with selectable 2-way/3-way quicksort
// partitioning, and the binary-search primitives the merge sort tree probes
// are made of.
package sortutil

// LowerBound returns the number of elements in the sorted slice a that are
// strictly smaller than x, i.e. the first index at which x could be inserted
// while keeping a sorted. a must be sorted ascending.
func LowerBound(a []int64, x int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound returns the number of elements in the sorted slice a that are
// smaller than or equal to x. a must be sorted ascending.
func UpperBound(a []int64, x int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LowerBound32 is LowerBound for int32 payloads (the 32-bit tree build path,
// §5.1).
func LowerBound32(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound32 is UpperBound for int32 payloads.
func UpperBound32(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CountInRange returns the number of elements of the sorted slice a that lie
// in the inclusive value range [lo, hi].
func CountInRange(a []int64, lo, hi int64) int {
	if hi < lo {
		return 0
	}
	return UpperBound(a, hi) - LowerBound(a, lo)
}

// CountInRange32 is CountInRange for int32 payloads.
func CountInRange32(a []int32, lo, hi int32) int {
	if hi < lo {
		return 0
	}
	return UpperBound32(a, hi) - LowerBound32(a, lo)
}
