package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"holistic/internal/core"
	"holistic/internal/csvio"
	"holistic/internal/delta"
	"holistic/internal/server/api"
)

// handleMutations applies one batch of mutations to a dataset. The batch is
// atomic: it either advances the dataset's epoch by exactly one, or leaves it
// untouched (a bad cell in mutation 7 rolls back mutations 0-6). A stale
// expected_epoch answers 409 conflict; after a successful batch the cache
// entries stamped with epochs below the new one are released.
func (s *Server) handleMutations(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ds, ok := s.lookup(name)
	if !ok {
		writeError(w, httpErrorf(http.StatusNotFound, api.CodeNotFound, "unknown dataset %q", name))
		return
	}
	var req api.MutateRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, registerError(name, err))
		return
	}
	if len(req.Mutations) == 0 {
		writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument,
			"mutate %q: empty mutation batch", name))
		return
	}
	muts := make([]delta.Mutation, len(req.Mutations))
	for i := range req.Mutations {
		m, err := parseMutation(ds, &req.Mutations[i])
		if err != nil {
			writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument,
				"mutate %q: mutation %d: %v", name, i, err))
			return
		}
		muts[i] = m
	}
	expected := int64(-1)
	if req.ExpectedEpoch != nil {
		expected = *req.ExpectedEpoch
	}
	epoch, err := ds.buf.Apply(expected, muts)
	if err != nil {
		var conflict *delta.EpochConflictError
		if errors.As(err, &conflict) {
			writeError(w, httpErrorf(http.StatusConflict, api.CodeConflict, "mutate %q: %v", name, err))
			return
		}
		writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument, "mutate %q: %v", name, err))
		return
	}
	snap := ds.buf.Snapshot()
	// Entries stamped with older epochs under the current generation are
	// unreachable (queries re-key changed partitions by their new stamp);
	// epoch-stamped survivors — untouched partitions — stay resident.
	removed := s.cache.InvalidateEpochsBelow(fmt.Sprintf("%s|g%d|", ds.scope, snap.Gen()), epoch)
	s.log.Info("mutations applied",
		"dataset", name, "epoch", epoch, "applied", len(muts),
		"rows", snap.Rows(), "delta_rows", snap.DeltaRows(), "invalidated", removed)
	writeJSON(w, http.StatusOK, api.MutateResponse{
		Epoch:     epoch,
		Applied:   len(muts),
		Rows:      snap.Rows(),
		DeltaRows: snap.DeltaRows(),
	})
}

// parseMutation converts one wire-form mutation into the typed row the delta
// buffer consumes, aligned with the dataset's base schema. Columns absent
// from the map are NULL; unknown columns are rejected so typos don't pass as
// implicit NULLs everywhere else.
func parseMutation(ds *dataset, spec *api.MutationSpec) (delta.Mutation, error) {
	var op delta.Op
	switch spec.Op {
	case api.OpAppend:
		op = delta.OpAppend
	case api.OpUpsert:
		op = delta.OpUpsert
	case api.OpDelete:
		op = delta.OpDelete
	default:
		return delta.Mutation{}, fmt.Errorf("unknown op %q (want %q, %q or %q)",
			spec.Op, api.OpAppend, api.OpUpsert, api.OpDelete)
	}
	cols := ds.file.Table.Columns()
	seen := 0
	row := make([]delta.Value, len(cols))
	for i, c := range cols {
		cell, ok := spec.Row[c.Name()]
		if !ok {
			row[i] = delta.NullValue(c.Kind())
			continue
		}
		seen++
		v, err := parseCell(c.Kind(), ds.file.DateColumns[c.Name()], cell)
		if err != nil {
			return delta.Mutation{}, fmt.Errorf("column %q: %v", c.Name(), err)
		}
		row[i] = v
	}
	if seen != len(spec.Row) {
		for name := range spec.Row {
			if ds.file.Table.Column(name) == nil {
				return delta.Mutation{}, fmt.Errorf("unknown column %q", name)
			}
		}
	}
	return delta.Mutation{Op: op, Row: row}, nil
}

// parseCell parses one rendered cell into a typed value, mirroring the CSV
// reader's forms (ISO dates for date columns, true/false bools).
func parseCell(kind core.Kind, isDate bool, cell string) (delta.Value, error) {
	switch kind {
	case core.Int64:
		if isDate {
			day, err := csvio.DateToDay(cell)
			if err != nil {
				return delta.Value{}, fmt.Errorf("bad date %q: %v", cell, err)
			}
			return delta.Int64Value(day), nil
		}
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return delta.Value{}, fmt.Errorf("bad int %q", cell)
		}
		return delta.Int64Value(n), nil
	case core.Float64:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return delta.Value{}, fmt.Errorf("bad float %q", cell)
		}
		return delta.Float64Value(f), nil
	case core.String:
		return delta.StringValue(cell), nil
	case core.Bool:
		b, err := strconv.ParseBool(cell)
		if err != nil {
			return delta.Value{}, fmt.Errorf("bad bool %q", cell)
		}
		return delta.BoolValue(b), nil
	}
	return delta.Value{}, fmt.Errorf("unsupported column kind %v", kind)
}
