// Package api defines the JSON wire types of the windowd HTTP daemon and a
// small client speaking them. The server handlers, the windowcli -server
// mode and the server tests all share these definitions, so requests are
// encoded exactly one way.
package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// QueryRequest asks the server to evaluate one SQL statement (the paper
// dialect of holistic.RunSQL) against the registered datasets. The FROM
// clause names the dataset.
type QueryRequest struct {
	SQL string `json:"sql"`
	// TimeoutMillis bounds the evaluation; 0 means the server default. The
	// server clamps values above its configured maximum.
	TimeoutMillis int64 `json:"timeout_millis,omitempty"`
}

// QueryResponse carries a result table with every cell rendered as text
// (NULLs as empty strings with Nulls marking them, dates as ISO dates).
type QueryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Nulls[i][j] reports whether cell (i, j) is SQL NULL — the empty
	// string alone cannot distinguish NULL from an empty string value.
	Nulls [][]bool   `json:"nulls,omitempty"`
	Stats QueryStats `json:"stats"`
}

// QueryStats describes one evaluation: wall time and the tree cache's
// cumulative counters after the query. A follow-up identical query leaves
// CacheMisses unchanged and raises CacheHits.
type QueryStats struct {
	ElapsedMillis float64 `json:"elapsed_millis"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
}

// ExplainRequest asks for the evaluation plan of a statement.
type ExplainRequest struct {
	SQL string `json:"sql"`
}

// ExplainResponse carries the rendered plan.
type ExplainResponse struct {
	Plan string `json:"plan"`
}

// RegisterRequest loads a dataset from a CSV file on the server's
// filesystem (the load-from-path form of dataset registration).
type RegisterRequest struct {
	Path string `json:"path"`
}

// DatasetInfo describes one registered dataset. Version starts at 1 and
// increments on every reload under the same name.
type DatasetInfo struct {
	Name    string   `json:"name"`
	Version int64    `json:"version"`
	Rows    int      `json:"rows"`
	Columns []string `json:"columns"`
}

// DatasetList is the GET /datasets response.
type DatasetList struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Client speaks the windowd protocol against a base URL like
// "http://127.0.0.1:8080".
type Client struct {
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do sends body (JSON-encoded unless raw) and decodes the response into out.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("windowd: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("windowd: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return err
		}
	}
	return c.do(ctx, method, path, "application/json", body, out)
}

// Query evaluates a SQL statement.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.doJSON(ctx, http.MethodPost, "/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Explain fetches the evaluation plan of a statement.
func (c *Client) Explain(ctx context.Context, sql string) (string, error) {
	var resp ExplainResponse
	if err := c.doJSON(ctx, http.MethodPost, "/explain", ExplainRequest{SQL: sql}, &resp); err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// UploadCSV registers (or reloads) a dataset from CSV content.
func (c *Client) UploadCSV(ctx context.Context, name string, csvData []byte) (*DatasetInfo, error) {
	var info DatasetInfo
	if err := c.do(ctx, http.MethodPost, "/datasets/"+name, "text/csv", csvData, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// RegisterPath registers (or reloads) a dataset from a CSV file on the
// server's filesystem.
func (c *Client) RegisterPath(ctx context.Context, name, path string) (*DatasetInfo, error) {
	var info DatasetInfo
	if err := c.doJSON(ctx, http.MethodPost, "/datasets/"+name, RegisterRequest{Path: path}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Datasets lists the registered datasets.
func (c *Client) Datasets(ctx context.Context) ([]DatasetInfo, error) {
	var list DatasetList
	if err := c.doJSON(ctx, http.MethodGet, "/datasets", nil, &list); err != nil {
		return nil, err
	}
	return list.Datasets, nil
}

// Statusz fetches the plain-text metrics page.
func (c *Client) Statusz(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/statusz", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("windowd: statusz: HTTP %d", resp.StatusCode)
	}
	return string(data), nil
}
