// Package api defines the JSON wire types of the windowd HTTP daemon and a
// small client speaking them. The server handlers, the windowcli -server
// mode and the server tests all share these definitions, so requests are
// encoded exactly one way.
//
// The HTTP surface is versioned under /v1: /v1/query, /v1/explain,
// /v1/datasets, /v1/healthz and /v1/metrics. The pre-versioning unversioned
// paths remain as aliases that answer identically while emitting a
// Deprecation header; the client speaks /v1 exclusively. Every non-2xx
// response carries the ErrorResponse envelope with a stable machine code.
package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// API paths (version 1). Legacy aliases strip the /v1 prefix.
const (
	PathQuery    = "/v1/query"
	PathExplain  = "/v1/explain"
	PathDatasets = "/v1/datasets"
	PathHealthz  = "/v1/healthz"
	PathMetrics  = "/v1/metrics"
)

// ErrorCode is a stable machine-readable error classification, carried in
// every non-2xx response. Codes are coarser than messages: clients branch
// on the code and show the message.
type ErrorCode string

const (
	// CodeInvalidArgument: the request was malformed or the SQL failed to
	// parse/validate (HTTP 400).
	CodeInvalidArgument ErrorCode = "invalid_argument"
	// CodeNotFound: unknown dataset or unknown route (HTTP 404).
	CodeNotFound ErrorCode = "not_found"
	// CodeMethodNotAllowed: known route, wrong HTTP method (HTTP 405).
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	// CodeConflict: the request races a running operation, e.g. starting
	// an ingest for a dataset that is already ingesting (HTTP 409).
	CodeConflict ErrorCode = "conflict"
	// CodePayloadTooLarge: the request body exceeded the server's upload
	// limit (HTTP 413).
	CodePayloadTooLarge ErrorCode = "payload_too_large"
	// CodeResourceExhausted: no evaluation slot before the deadline
	// (HTTP 503).
	CodeResourceExhausted ErrorCode = "resource_exhausted"
	// CodeDeadlineExceeded: the query ran past its timeout (HTTP 504).
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeCanceled: the client went away mid-evaluation (HTTP 504; mostly
	// seen in logs, the client rarely reads it).
	CodeCanceled ErrorCode = "canceled"
	// CodeInternal: unclassified server-side failure (HTTP 500).
	CodeInternal ErrorCode = "internal"
)

// QueryRequest asks the server to evaluate one SQL statement (the paper
// dialect of holistic.RunSQL) against the registered datasets. The FROM
// clause names the dataset.
type QueryRequest struct {
	SQL string `json:"sql"`
	// TimeoutMillis bounds the evaluation; 0 means the server default. The
	// server clamps values above its configured maximum.
	TimeoutMillis int64 `json:"timeout_millis,omitempty"`
	// IncludeTrace asks for the query's rendered span tree in
	// QueryResponse.Trace (the remote counterpart of windowcli -trace).
	IncludeTrace bool `json:"include_trace,omitempty"`
}

// QueryResponse carries a result table with every cell rendered as text
// (NULLs as empty strings with Nulls marking them, dates as ISO dates).
type QueryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Nulls[i][j] reports whether cell (i, j) is SQL NULL — the empty
	// string alone cannot distinguish NULL from an empty string value.
	Nulls [][]bool   `json:"nulls,omitempty"`
	Stats QueryStats `json:"stats"`
	// Trace is the indented span tree of the evaluation, present when the
	// request set IncludeTrace.
	Trace string `json:"trace,omitempty"`
}

// QueryStats describes one evaluation: wall time, the tree cache's
// cumulative counters after the query, and the statement's shared-plan
// shape. A follow-up identical query leaves CacheMisses unchanged and
// raises CacheHits.
type QueryStats struct {
	ElapsedMillis float64 `json:"elapsed_millis"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	// Operators is the statement plan's DAG node count; SortsShared and
	// TreesShared count the sorts and tree builds the shared-plan optimizer
	// eliminated. Deterministic properties of the plan shape, not runtime
	// cache observations.
	Operators   int `json:"operators,omitempty"`
	SortsShared int `json:"sorts_shared,omitempty"`
	TreesShared int `json:"trees_shared,omitempty"`
}

// ExplainRequest asks for the evaluation plan of a statement.
type ExplainRequest struct {
	SQL string `json:"sql"`
}

// PlanNode is one operator of the structured explain DAG. Nodes arrive in a
// valid execution order: inputs always precede consumers.
type PlanNode struct {
	// ID identifies the node within the plan (e.g. "sort0", "tree0_1").
	ID string `json:"id"`
	// Kind is the operator class: "sort", "partitions", "preprocess",
	// "tree" or "probe".
	Kind string `json:"kind"`
	// Label describes the operator.
	Label string `json:"label"`
	// Inputs lists the IDs of the nodes this one consumes.
	Inputs []string `json:"inputs,omitempty"`
	// SharedBy lists the output columns this node serves; more than one
	// entry means the node is computed once and reused.
	SharedBy []string `json:"shared_by,omitempty"`
}

// ExplainResponse carries the rendered plan. Plan is the legacy flat text;
// PlanDAG is the shared-plan optimizer's structured DAG.
type ExplainResponse struct {
	Plan    string     `json:"plan"`
	PlanDAG []PlanNode `json:"plan_dag,omitempty"`
	// Operators, SortsShared and TreesShared summarize the DAG the way
	// QueryStats does for an executed query.
	Operators   int `json:"operators,omitempty"`
	SortsShared int `json:"sorts_shared,omitempty"`
	TreesShared int `json:"trees_shared,omitempty"`
}

// Dataset source kinds for RegisterRequest.Source.
const (
	// SourceCSV (or an empty Source) loads a CSV file from Path.
	SourceCSV = "csv"
	// SourceDir registers an existing segment dataset directory (Dir).
	SourceDir = "dir"
	// SourceIngest ingests the CSV at Path into the segment directory Dir
	// asynchronously; poll GET /v1/datasets/{name}/ingest for progress.
	SourceIngest = "ingest"
)

// Ingest states reported by IngestStatus.State.
const (
	IngestRunning = "running"
	IngestDone    = "done"
	IngestFailed  = "failed"
)

// RegisterRequest is the JSON form of dataset registration: a CSV file on
// the server's filesystem (Source csv/empty), an existing out-of-core
// segment directory (Source dir), or an asynchronous CSV→segments ingest
// (Source ingest).
type RegisterRequest struct {
	// Path is the server-side CSV file (sources csv and ingest).
	Path string `json:"path,omitempty"`
	// Source selects the registration kind; empty means csv.
	Source string `json:"source,omitempty"`
	// Dir is the segment dataset directory (sources dir and ingest).
	Dir string `json:"dir,omitempty"`
	// RowsPerSegment overrides the ingest interval size (source ingest;
	// <= 0 selects the server default).
	RowsPerSegment int `json:"rows_per_segment,omitempty"`
	// BlockRows overrides the segment block granularity (source ingest).
	BlockRows int `json:"block_rows,omitempty"`
	// KeyColumn names a unique, non-NULL INT64 or STRING column that
	// upserts and deletes address rows by (POST .../mutations). Datasets
	// registered without one are append-only under mutation.
	KeyColumn string `json:"key_column,omitempty"`
}

// Mutation op names for MutationSpec.Op.
const (
	OpAppend = "append"
	OpUpsert = "upsert"
	OpDelete = "delete"
)

// MutationSpec is one row mutation. Row maps column names to rendered cell
// values (same text forms as CSV cells: dates as ISO dates, bools as
// true/false); columns absent from the map are NULL. A delete only needs
// the key column.
type MutationSpec struct {
	Op  string            `json:"op"`
	Row map[string]string `json:"row"`
}

// MutateRequest is the POST /v1/datasets/{name}/mutations body: one batch
// of mutations applied atomically, advancing the dataset's epoch by one.
type MutateRequest struct {
	// ExpectedEpoch, when set, makes the batch conditional: it only applies
	// if it matches the dataset's current epoch, otherwise the server
	// answers 409 conflict with the current epoch in the message
	// (optimistic concurrency for multi-writer streams). Omitted means
	// apply unconditionally.
	ExpectedEpoch *int64         `json:"expected_epoch,omitempty"`
	Mutations     []MutationSpec `json:"mutations"`
}

// MutateResponse reports the batch's outcome: the new epoch, the mutation
// count applied, and the dataset's live size after the batch.
type MutateResponse struct {
	Epoch   int64 `json:"epoch"`
	Applied int   `json:"applied"`
	// Rows is the merged table's current row count.
	Rows int `json:"rows"`
	// DeltaRows sizes the mutation overlay pending compaction.
	DeltaRows int `json:"delta_rows"`
}

// IngestStatus is the GET /v1/datasets/{name}/ingest response and the 202
// body of an accepted source=ingest registration.
type IngestStatus struct {
	// State is running, done or failed.
	State string `json:"state"`
	// Error carries the failure message when State is failed.
	Error string `json:"error,omitempty"`
	// Planned reports whether the planning pass finished; totals are zero
	// until it has.
	Planned        bool  `json:"planned"`
	TotalIntervals int   `json:"total_intervals"`
	DoneIntervals  int   `json:"done_intervals"`
	TotalRows      int64 `json:"total_rows"`
	DoneRows       int64 `json:"done_rows"`
	// Resumed counts intervals inherited from a previous run's state.
	Resumed int `json:"resumed"`
	// Dataset is the registered dataset once State is done.
	Dataset *DatasetInfo `json:"dataset,omitempty"`
}

// DatasetInfo describes one registered dataset. Version starts at 1 and
// increments on every reload under the same name.
type DatasetInfo struct {
	Name    string   `json:"name"`
	Version int64    `json:"version"`
	Rows    int      `json:"rows"`
	Columns []string `json:"columns"`
	// Segments is the segment-file count for datasets materialized from a
	// segment directory; 0 for plain CSV registrations.
	Segments int `json:"segments,omitempty"`
	// Epoch counts applied mutation batches since registration.
	Epoch int64 `json:"epoch,omitempty"`
	// KeyColumn is the mutation key column, when one was configured.
	KeyColumn string `json:"key_column,omitempty"`
}

// DatasetList is the GET /v1/datasets response.
type DatasetList struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// ErrorDetail is the error object inside the envelope.
type ErrorDetail struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	Detail  string    `json:"detail,omitempty"`
}

// ErrorResponse is the envelope of every non-2xx response:
// {"error":{"code":...,"message":...,"detail":...}}.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// Error is the client-side form of a server error: the envelope plus the
// HTTP status. Clients branch on Code.
type Error struct {
	Status  int
	Code    ErrorCode
	Message string
	Detail  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("windowd: %s: %s (HTTP %d)", e.Code, e.Message, e.Status)
}

// Client speaks the windowd /v1 protocol against a base URL like
// "http://127.0.0.1:8080".
type Client struct {
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do sends body (JSON-encoded unless raw) and decodes the response into out.
// Non-2xx responses come back as *Error.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error.Code != "" {
			return &Error{
				Status:  resp.StatusCode,
				Code:    e.Error.Code,
				Message: e.Error.Message,
				Detail:  e.Error.Detail,
			}
		}
		return &Error{
			Status:  resp.StatusCode,
			Code:    CodeInternal,
			Message: string(bytes.TrimSpace(data)),
		}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return err
		}
	}
	return c.do(ctx, method, path, "application/json", body, out)
}

// Query evaluates a SQL statement.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.doJSON(ctx, http.MethodPost, PathQuery, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Explain fetches the legacy flat-text evaluation plan of a statement.
func (c *Client) Explain(ctx context.Context, sql string) (string, error) {
	resp, err := c.ExplainPlan(ctx, sql)
	if err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// ExplainPlan fetches the full explain response: the structured plan DAG
// with shared-node annotations plus the legacy text rendering.
func (c *Client) ExplainPlan(ctx context.Context, sql string) (*ExplainResponse, error) {
	var resp ExplainResponse
	if err := c.doJSON(ctx, http.MethodPost, PathExplain, ExplainRequest{SQL: sql}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// UploadCSV registers (or reloads) a dataset from CSV content.
func (c *Client) UploadCSV(ctx context.Context, name string, csvData []byte) (*DatasetInfo, error) {
	var info DatasetInfo
	if err := c.do(ctx, http.MethodPost, PathDatasets+"/"+name, "text/csv", csvData, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// UploadCSVKeyed registers (or reloads) a dataset from CSV content with a
// mutation key column, enabling upserts and deletes against it.
func (c *Client) UploadCSVKeyed(ctx context.Context, name, keyColumn string, csvData []byte) (*DatasetInfo, error) {
	var info DatasetInfo
	path := PathDatasets + "/" + name + "?key=" + url.QueryEscape(keyColumn)
	if err := c.do(ctx, http.MethodPost, path, "text/csv", csvData, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Mutate applies one batch of mutations to a dataset, advancing its epoch.
// A stale MutateRequest.ExpectedEpoch comes back as *Error with
// CodeConflict (HTTP 409).
func (c *Client) Mutate(ctx context.Context, name string, req MutateRequest) (*MutateResponse, error) {
	var resp MutateResponse
	if err := c.doJSON(ctx, http.MethodPost, PathDatasets+"/"+name+"/mutations", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RegisterPath registers (or reloads) a dataset from a CSV file on the
// server's filesystem.
func (c *Client) RegisterPath(ctx context.Context, name, path string) (*DatasetInfo, error) {
	var info DatasetInfo
	if err := c.doJSON(ctx, http.MethodPost, PathDatasets+"/"+name, RegisterRequest{Path: path}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// RegisterDir registers (or reloads) a dataset from a segment dataset
// directory on the server's filesystem.
func (c *Client) RegisterDir(ctx context.Context, name, dir string) (*DatasetInfo, error) {
	var info DatasetInfo
	if err := c.doJSON(ctx, http.MethodPost, PathDatasets+"/"+name, RegisterRequest{Source: SourceDir, Dir: dir}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// StartIngest begins an asynchronous ingest of the server-side CSV at path
// into the segment directory dir, registering the dataset under name on
// completion. The returned status is the initial snapshot; poll
// IngestStatus until State leaves IngestRunning.
func (c *Client) StartIngest(ctx context.Context, name string, req RegisterRequest) (*IngestStatus, error) {
	req.Source = SourceIngest
	var st IngestStatus
	if err := c.doJSON(ctx, http.MethodPost, PathDatasets+"/"+name, req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// IngestStatus fetches the progress of dataset name's ingest.
func (c *Client) IngestStatus(ctx context.Context, name string) (*IngestStatus, error) {
	var st IngestStatus
	if err := c.doJSON(ctx, http.MethodGet, PathDatasets+"/"+name+"/ingest", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Datasets lists the registered datasets.
func (c *Client) Datasets(ctx context.Context) ([]DatasetInfo, error) {
	var list DatasetList
	if err := c.doJSON(ctx, http.MethodGet, PathDatasets, nil, &list); err != nil {
		return nil, err
	}
	return list.Datasets, nil
}

// getText fetches a plain-text page.
func (c *Client) getText(ctx context.Context, path string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("windowd: %s: HTTP %d", path, resp.StatusCode)
	}
	return string(data), nil
}

// Statusz fetches the plain-text debug status page.
func (c *Client) Statusz(ctx context.Context) (string, error) {
	return c.getText(ctx, "/statusz")
}

// Metrics fetches the Prometheus text exposition of GET /v1/metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	return c.getText(ctx, PathMetrics)
}
