package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"holistic/internal/arena"
	"holistic/internal/delta"
	"holistic/internal/server/api"
)

const mutCSV = `k,d,g,v
1,2024-01-01,a,10
2,2024-01-02,a,20
3,2024-01-03,b,30
4,2024-01-04,b,40
5,2024-01-05,a,50
`

// mutCSVAfter is mutCSV with the two test batches already applied: the
// mutated dataset and a fresh registration of this file must answer every
// query byte-identically (position semantics: upserts stay in place, the
// deleted row's successors shift up, appends land at the tail).
const mutCSVAfter = `k,d,g,v
1,2024-01-01,a,10
2,2024-02-01,a,25
4,2024-01-04,b,
5,2024-01-05,a,50
6,2024-01-06,b,60
`

func mustMutate(t *testing.T, c *api.Client, name string, req api.MutateRequest) *api.MutateResponse {
	t.Helper()
	resp, err := c.Mutate(context.Background(), name, req)
	if err != nil {
		t.Fatalf("mutate %s: %v", name, err)
	}
	return resp
}

func wantAPIError(t *testing.T, err error, status int, code api.ErrorCode) {
	t.Helper()
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("got %v, want *api.Error with HTTP %d %s", err, status, code)
	}
	if ae.Status != status || ae.Code != code {
		t.Fatalf("got HTTP %d %s, want HTTP %d %s", ae.Status, ae.Code, status, code)
	}
}

// TestMutationsEndToEnd drives the mutation surface over HTTP: a keyed
// dataset takes append/upsert/delete batches, answers queries identically to
// a fresh registration of the post-mutation data, reports live rows and
// epochs, and rejects stale epochs with 409.
func TestMutationsEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	info, err := c.UploadCSVKeyed(ctx, "live", "k", []byte(mutCSV))
	if err != nil {
		t.Fatal(err)
	}
	if info.KeyColumn != "k" || info.Rows != 5 {
		t.Fatalf("bad keyed dataset info: %+v", info)
	}

	// Warm the cache before mutating: untouched-partition reuse across
	// epochs must not change any answer (the equivalence harness checks
	// bytes; here we check the HTTP layer wires the epochs through).
	const sql = `select k, sum(v) over (partition by g order by k rows between 1 preceding and current row) as s,
	             rank(order by v) over (partition by g order by k) as r from live`
	if _, err := c.Query(ctx, api.QueryRequest{SQL: sql}); err != nil {
		t.Fatal(err)
	}

	resp := mustMutate(t, c, "live", api.MutateRequest{Mutations: []api.MutationSpec{
		{Op: api.OpAppend, Row: map[string]string{"k": "6", "d": "2024-01-06", "g": "b", "v": "60"}},
		{Op: api.OpUpsert, Row: map[string]string{"k": "2", "d": "2024-02-01", "g": "a", "v": "25"}},
		{Op: api.OpDelete, Row: map[string]string{"k": "3"}},
	}})
	if resp.Epoch != 1 || resp.Applied != 3 || resp.Rows != 5 {
		t.Fatalf("bad mutate response: %+v", resp)
	}

	// Second batch: an upsert that NULLs v (absent column = NULL).
	resp = mustMutate(t, c, "live", api.MutateRequest{Mutations: []api.MutationSpec{
		{Op: api.OpUpsert, Row: map[string]string{"k": "4", "d": "2024-01-04", "g": "b"}},
	}})
	if resp.Epoch != 2 || resp.Rows != 5 {
		t.Fatalf("bad mutate response: %+v", resp)
	}

	// The mutated dataset must answer exactly like a fresh registration of
	// the post-mutation rows.
	mustUpload(t, c, "rebuilt", mutCSVAfter)
	got, err := c.Query(ctx, api.QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Query(ctx, api.QueryRequest{SQL: strings.ReplaceAll(sql, "from live", "from rebuilt")})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("mutated dataset has %d rows, rebuilt %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] || got.Nulls[i][j] != want.Nulls[i][j] {
				t.Fatalf("row %d col %d: mutated %q (null=%v) != rebuilt %q (null=%v)",
					i, j, got.Rows[i][j], got.Nulls[i][j], want.Rows[i][j], want.Nulls[i][j])
			}
		}
	}

	// Stale expected epoch: 409 conflict, nothing applied.
	stale := int64(0)
	_, err = c.Mutate(ctx, "live", api.MutateRequest{
		ExpectedEpoch: &stale,
		Mutations:     []api.MutationSpec{{Op: api.OpDelete, Row: map[string]string{"k": "1"}}},
	})
	wantAPIError(t, err, 409, api.CodeConflict)

	// The matching epoch applies.
	match := int64(2)
	resp = mustMutate(t, c, "live", api.MutateRequest{
		ExpectedEpoch: &match,
		Mutations:     []api.MutationSpec{{Op: api.OpDelete, Row: map[string]string{"k": "1"}}},
	})
	if resp.Epoch != 3 || resp.Rows != 4 {
		t.Fatalf("bad conditional mutate response: %+v", resp)
	}

	// Failure atomicity: a bad cell in the second mutation rolls back the
	// whole batch — same rows, same epoch.
	_, err = c.Mutate(ctx, "live", api.MutateRequest{Mutations: []api.MutationSpec{
		{Op: api.OpAppend, Row: map[string]string{"k": "7", "g": "a", "v": "70"}},
		{Op: api.OpUpsert, Row: map[string]string{"k": "5", "g": "a", "v": "not-a-number"}},
	}})
	wantAPIError(t, err, 400, api.CodeInvalidArgument)
	_, err = c.Mutate(ctx, "live", api.MutateRequest{Mutations: []api.MutationSpec{
		{Op: api.OpAppend, Row: map[string]string{"k": "7", "typo": "oops"}},
	}})
	wantAPIError(t, err, 400, api.CodeInvalidArgument)
	_, err = c.Mutate(ctx, "live", api.MutateRequest{Mutations: []api.MutationSpec{
		{Op: "replace", Row: map[string]string{"k": "7"}},
	}})
	wantAPIError(t, err, 400, api.CodeInvalidArgument)
	_, err = c.Mutate(ctx, "nope", api.MutateRequest{Mutations: []api.MutationSpec{
		{Op: api.OpDelete, Row: map[string]string{"k": "1"}},
	}})
	wantAPIError(t, err, 404, api.CodeNotFound)

	// Datasets registered without a key column are append-only.
	mustUpload(t, c, "plain", mutCSV)
	resp = mustMutate(t, c, "plain", api.MutateRequest{Mutations: []api.MutationSpec{
		{Op: api.OpAppend, Row: map[string]string{"k": "6", "g": "b", "v": "60"}},
	}})
	if resp.Rows != 6 {
		t.Fatalf("append-only append: %+v", resp)
	}
	_, err = c.Mutate(ctx, "plain", api.MutateRequest{Mutations: []api.MutationSpec{
		{Op: api.OpUpsert, Row: map[string]string{"k": "1", "g": "a", "v": "11"}},
	}})
	wantAPIError(t, err, 400, api.CodeInvalidArgument)

	// The dataset listing reports live rows and epochs, not the base.
	list, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]api.DatasetInfo{}
	for _, d := range list {
		byName[d.Name] = d
	}
	if d := byName["live"]; d.Rows != 4 || d.Epoch != 3 || d.KeyColumn != "k" {
		t.Fatalf("live listing: %+v", d)
	}

	// And /statusz grows the delta line plus per-dataset epoch fields.
	page, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, wantStr := range []string{"delta: batches=", "conflicts=", "epoch=3", "delta_rows="} {
		if !strings.Contains(page, wantStr) {
			t.Fatalf("statusz missing %q:\n%s", wantStr, page)
		}
	}
}

// TestEpochSwapRaceStress runs 16 reader goroutines against a dataset whose
// writer rewrites every row's v to the batch number while a fast background
// compactor swaps frozen generations underneath. Each batch is atomic and
// sets all rows to one value, so any snapshot-consistent response must see
// min(v) == max(v) over the whole table in every row; a reader observing a
// torn epoch fails. Afterwards pooled scratch must balance (gets == puts)
// and at least one generation swap must actually have happened.
func TestEpochSwapRaceStress(t *testing.T) {
	_, c := newTestServer(t, Config{
		MaxConcurrent:   8,
		TaskSize:        64,
		CompactRows:     8,
		CompactInterval: 2 * time.Millisecond,
	})
	ctx := context.Background()

	const nRows = 48
	var sb strings.Builder
	sb.WriteString("k,g,v\n")
	for i := 0; i < nRows; i++ {
		fmt.Fprintf(&sb, "%d,%c,0\n", i, 'a'+byte(i%3))
	}
	if _, err := c.UploadCSVKeyed(ctx, "ds", "k", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}

	before := arena.Snapshot()
	countersBefore := delta.Counters()

	const sql = `select min(v) over (order by k rows between unbounded preceding and unbounded following) as lo,
	             max(v) over (order by k rows between unbounded preceding and unbounded following) as hi from ds`
	const batches = 25
	const readers = 16

	done := make(chan struct{})
	var writerErr error
	go func() {
		defer close(done)
		for b := 1; b <= batches; b++ {
			muts := make([]api.MutationSpec, nRows)
			for i := 0; i < nRows; i++ {
				muts[i] = api.MutationSpec{Op: api.OpUpsert, Row: map[string]string{
					"k": strconv.Itoa(i),
					"g": string(rune('a' + i%3)),
					"v": strconv.Itoa(b),
				}}
			}
			if _, err := c.Mutate(ctx, "ds", api.MutateRequest{Mutations: muts}); err != nil {
				writerErr = fmt.Errorf("batch %d: %w", b, err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; ; it++ {
				select {
				case <-done:
					if it > 0 {
						return
					}
				default:
				}
				resp, err := c.Query(ctx, api.QueryRequest{SQL: sql})
				if err != nil {
					errs[g] = fmt.Errorf("iter %d: %w", it, err)
					return
				}
				if len(resp.Rows) != nRows {
					errs[g] = fmt.Errorf("iter %d: %d rows, want %d", it, len(resp.Rows), nRows)
					return
				}
				v := resp.Rows[0][0]
				for r, row := range resp.Rows {
					if row[0] != v || row[1] != v {
						errs[g] = fmt.Errorf("iter %d: torn epoch: row %d lo=%s hi=%s, row 0 saw %s",
							it, r, row[0], row[1], v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	<-done
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}
	for g, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", g, err)
		}
	}

	// Quiesced: the final answer is the last batch's value everywhere.
	resp, err := c.Query(ctx, api.QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Rows[0][1]; got != strconv.Itoa(batches) {
		t.Fatalf("final max(v)=%s, want %d", got, batches)
	}

	counters := delta.Counters()
	if counters.Batches-countersBefore.Batches < batches {
		t.Fatalf("only %d batches recorded, want >= %d", counters.Batches-countersBefore.Batches, batches)
	}
	if counters.Compactions == countersBefore.Compactions {
		t.Fatal("background compactor never swapped a generation during the stress run")
	}

	// Every pooled buffer borrowed across the swaps must be back.
	deltas := poolDeltas(before, arena.Snapshot())
	for name, d := range deltas {
		if d.Gets != d.Puts || d.BytesInFlight != 0 {
			t.Errorf("pool %s leaked across epoch swaps: gets=%d puts=%d bytes_in_flight=%+d",
				name, d.Gets, d.Puts, d.BytesInFlight)
		}
	}
}
