package server

import (
	"strconv"
	"time"

	"holistic/internal/arena"
	"holistic/internal/core"
	"holistic/internal/delta"
	"holistic/internal/ingest"
	"holistic/internal/obs"
	"holistic/internal/plan"
)

// serverObs is windowd's metric surface, exported in the Prometheus text
// format at GET /v1/metrics. Request- and query-scoped series are updated
// live on their handles; counters owned elsewhere — the tree cache, the
// arena and the scratch pools — are func-backed and snapshotted at scrape
// time, so the exposition replaces the hand-rolled /statusz text as the
// machine-readable view of those subsystems (the text page stays for
// humans).
//
// Series (labels in braces), documented in DESIGN.md §9:
//
//	windowd_requests_total{route,code}            counter
//	windowd_request_duration_seconds{route}       histogram
//	windowd_response_bytes_total{route}           counter
//	windowd_inflight_requests                     gauge
//	windowd_eval_duration_seconds{function,engine} histogram
//	windowd_rows_returned_total                   counter
//	windowd_slow_queries_total                    counter
//	windowd_admission_queue_depth                 gauge
//	windowd_admission_in_use                      gauge
//	windowd_admission_timeouts_total              counter
//	windowd_uptime_seconds                        gauge  (func)
//	windowd_datasets                              gauge  (func)
//	windowd_cache_events_total{event}             counter (func)
//	windowd_cache_entries / _bytes / _budget_bytes gauge (func)
//	windowd_cache_build_seconds_total             counter (func)
//	windowd_arena_{arenas,chunks,resets}_total    counter (func)
//	windowd_arena_allocated_bytes_total           counter (func)
//	windowd_pool_{gets,puts,misses}_total{pool}   counter (func)
//	windowd_pool_bytes_in_flight{pool}            gauge  (func)
//	windowd_mst_batch_queries                     counter (func)
//	windowd_mst_batch_dedup_hits                  counter (func)
//	windowd_mst_batch_queries_family              counter (func, labels: family)
//	windowd_mst_batch_dedup_hits_family           counter (func, labels: family)
//	windowd_plan_shared_sorts                     counter (func)
//	windowd_plan_shared_trees                     counter (func)
//	windowd_plan_shared_preprocess                counter (func)
//	windowd_ingest_runs_total{state}              counter (func)
//	windowd_ingest_rows_total                     counter (func)
//	windowd_ingest_segments_written_total         counter (func)
//	windowd_ingest_intervals_resumed_total        counter (func)
//	windowd_delta_mutations_total{op}             counter (func)
//	windowd_delta_batches_total                   counter (func)
//	windowd_delta_conflicts_total                 counter (func)
//	windowd_delta_compactions_total               counter (func)
//	windowd_delta_materializations_total          counter (func)
//	windowd_delta_rows                            gauge  (func)
type serverObs struct {
	reg *obs.Registry

	requests  *obs.Counter
	reqDur    *obs.Histogram
	respBytes *obs.Counter
	inflight  *obs.GaugeCell

	evalDur      *obs.Histogram
	rowsReturned *obs.CounterCell
	slowQueries  *obs.CounterCell

	admissionDepth    *obs.GaugeCell
	admissionInUse    *obs.GaugeCell
	admissionTimeouts *obs.CounterCell
}

// newServerObs builds the registry. s only needs its cache and dataset map
// ready; the func-backed families hold the *Server and snapshot at scrape.
func newServerObs(s *Server) *serverObs {
	reg := obs.NewRegistry()
	start := time.Now()
	o := &serverObs{
		reg: reg,
		requests: reg.NewCounter("windowd_requests_total",
			"HTTP requests served, by route pattern and status code.",
			"route", "code"),
		reqDur: reg.NewHistogram("windowd_request_duration_seconds",
			"End-to-end request latency by route pattern.",
			nil, "route"),
		respBytes: reg.NewCounter("windowd_response_bytes_total",
			"Response body bytes written, by route pattern.",
			"route"),
	}
	o.inflight = reg.NewGauge("windowd_inflight_requests",
		"Requests currently being handled.").With()
	o.evalDur = reg.NewHistogram("windowd_eval_duration_seconds",
		"Per-(function, engine) window evaluation time, from the query span tree.",
		nil, "function", "engine")
	o.rowsReturned = reg.NewCounter("windowd_rows_returned_total",
		"Result rows rendered into query responses.").With()
	o.slowQueries = reg.NewCounter("windowd_slow_queries_total",
		"Queries exceeding the slow-query threshold.").With()
	o.admissionDepth = reg.NewGauge("windowd_admission_queue_depth",
		"Queries waiting for an evaluation slot.").With()
	o.admissionInUse = reg.NewGauge("windowd_admission_in_use",
		"Evaluation slots currently occupied.").With()
	o.admissionTimeouts = reg.NewCounter("windowd_admission_timeouts_total",
		"Queries that hit their deadline before getting an evaluation slot.").With()

	reg.NewGaugeFunc("windowd_uptime_seconds",
		"Seconds since the server was built.", nil, func() []obs.Sample {
			return []obs.Sample{{Value: time.Since(start).Seconds()}}
		})
	reg.NewGaugeFunc("windowd_datasets",
		"Registered datasets.", nil, func() []obs.Sample {
			s.mu.RLock()
			n := len(s.datasets)
			s.mu.RUnlock()
			return []obs.Sample{{Value: float64(n)}}
		})

	reg.NewCounterFunc("windowd_cache_events_total",
		"Tree cache lifecycle events: hit, miss, join (single-flight follower), failure, eviction, invalidation.",
		[]string{"event"}, func() []obs.Sample {
			st := s.cache.Stats()
			return []obs.Sample{
				{Labels: []string{"hit"}, Value: float64(st.Hits)},
				{Labels: []string{"miss"}, Value: float64(st.Misses)},
				{Labels: []string{"join"}, Value: float64(st.Joins)},
				{Labels: []string{"failure"}, Value: float64(st.Failures)},
				{Labels: []string{"eviction"}, Value: float64(st.Evictions)},
				{Labels: []string{"invalidation"}, Value: float64(st.Invalidations)},
			}
		})
	reg.NewGaugeFunc("windowd_cache_entries",
		"Entries resident in the tree cache.", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.cache.Stats().Entries)}}
		})
	reg.NewGaugeFunc("windowd_cache_bytes",
		"Bytes resident in the tree cache.", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.cache.Stats().Bytes)}}
		})
	reg.NewGaugeFunc("windowd_cache_budget_bytes",
		"Tree cache byte budget (0 = unlimited).", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.cache.Stats().Budget)}}
		})
	reg.NewCounterFunc("windowd_cache_build_seconds_total",
		"Cumulative time spent building cache entries.", nil, func() []obs.Sample {
			return []obs.Sample{{Value: s.cache.Stats().BuildTime.Seconds()}}
		})

	reg.NewCounterFunc("windowd_arena_arenas_total",
		"Arenas created by the allocation-aware query path.", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(arena.ArenaSnapshot().Arenas)}}
		})
	reg.NewCounterFunc("windowd_arena_chunks_total",
		"Chunks reserved by arenas.", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(arena.ArenaSnapshot().Chunks)}}
		})
	reg.NewCounterFunc("windowd_arena_allocated_bytes_total",
		"Bytes reserved by arenas.", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(arena.ArenaSnapshot().Bytes)}}
		})
	reg.NewCounterFunc("windowd_arena_resets_total",
		"Arena resets (reuse of reserved chunks).", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(arena.ArenaSnapshot().Resets)}}
		})

	reg.NewCounterFunc("windowd_mst_batch_queries",
		"Unique queries handed to the batched level-synchronous MST kernels (after adjacent-row dedup).", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(core.BatchSnapshot().Queries)}}
		})
	reg.NewCounterFunc("windowd_mst_batch_dedup_hits",
		"Row evaluations answered by reusing the previous row's identical batched query set.", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(core.BatchSnapshot().DedupHits)}}
		})
	reg.NewCounterFunc("windowd_mst_batch_queries_family",
		"Unique batched MST kernel queries split by kernel family: count, select, agg, rank.",
		[]string{"family"}, func() []obs.Sample {
			stats := core.BatchFamilySnapshot()
			out := make([]obs.Sample, len(stats))
			for i, st := range stats {
				out[i] = obs.Sample{Labels: []string{st.Family}, Value: float64(st.Queries)}
			}
			return out
		})
	reg.NewCounterFunc("windowd_mst_batch_dedup_hits_family",
		"Batched dedup hits split by kernel family: count, select, agg, rank.",
		[]string{"family"}, func() []obs.Sample {
			stats := core.BatchFamilySnapshot()
			out := make([]obs.Sample, len(stats))
			for i, st := range stats {
				out[i] = obs.Sample{Labels: []string{st.Family}, Value: float64(st.DedupHits)}
			}
			return out
		})

	reg.NewCounterFunc("windowd_plan_shared_sorts",
		"Window sorts avoided by the shared-plan optimizer (windows that reused another window's sort).", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(plan.Snapshot().SharedSorts)}}
		})
	reg.NewCounterFunc("windowd_plan_shared_trees",
		"Tree builds avoided by the shared-plan optimizer (consumers beyond a shared tree's first).", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(plan.Snapshot().SharedTrees)}}
		})
	reg.NewCounterFunc("windowd_plan_shared_preprocess",
		"Preprocessing passes avoided by the shared-plan optimizer (partition boundaries and per-partition arrays reused).", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(plan.Snapshot().SharedPreprocess)}}
		})

	reg.NewCounterFunc("windowd_ingest_runs_total",
		"Ingest runs by outcome: started, completed, failed.",
		[]string{"state"}, func() []obs.Sample {
			st := ingest.Snapshot()
			return []obs.Sample{
				{Labels: []string{"started"}, Value: float64(st.Started)},
				{Labels: []string{"completed"}, Value: float64(st.Completed)},
				{Labels: []string{"failed"}, Value: float64(st.Failed)},
			}
		})
	reg.NewCounterFunc("windowd_ingest_rows_total",
		"Data rows written into segment files by the ingest pipeline.", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(ingest.Snapshot().RowsIngested)}}
		})
	reg.NewCounterFunc("windowd_ingest_segments_written_total",
		"Segment files written by the ingest pipeline.", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(ingest.Snapshot().SegmentsWritten)}}
		})
	reg.NewCounterFunc("windowd_ingest_intervals_resumed_total",
		"Intervals skipped on resume because a previous run completed them.", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(ingest.Snapshot().IntervalsResumed)}}
		})

	reg.NewCounterFunc("windowd_delta_mutations_total",
		"Mutations applied to live datasets, by op: append, upsert, delete.",
		[]string{"op"}, func() []obs.Sample {
			st := delta.Counters()
			return []obs.Sample{
				{Labels: []string{"append"}, Value: float64(st.Appends)},
				{Labels: []string{"upsert"}, Value: float64(st.Upserts)},
				{Labels: []string{"delete"}, Value: float64(st.Deletes)},
			}
		})
	reg.NewCounterFunc("windowd_delta_batches_total",
		"Mutation batches applied (each advances its dataset's epoch by one).", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(delta.Counters().Batches)}}
		})
	reg.NewCounterFunc("windowd_delta_conflicts_total",
		"Mutation batches rejected for a stale expected epoch (HTTP 409).", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(delta.Counters().Conflicts)}}
		})
	reg.NewCounterFunc("windowd_delta_compactions_total",
		"Overlay-into-base compactions (frozen generation swaps).", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(delta.Counters().Compactions)}}
		})
	reg.NewCounterFunc("windowd_delta_materializations_total",
		"Merged-table materializations (once per queried dirty epoch).", nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(delta.Counters().Materializations)}}
		})
	reg.NewGaugeFunc("windowd_delta_rows",
		"Overlay rows pending compaction, summed over datasets.", nil, func() []obs.Sample {
			s.mu.RLock()
			total := 0
			for _, ds := range s.datasets {
				total += ds.buf.Snapshot().DeltaRows()
			}
			s.mu.RUnlock()
			return []obs.Sample{{Value: float64(total)}}
		})

	reg.NewCounterFunc("windowd_pool_gets_total",
		"Scratch-pool Get calls, by pool.", []string{"pool"}, poolSamples(func(ps arena.PoolStat) float64 { return float64(ps.Gets) }))
	reg.NewCounterFunc("windowd_pool_puts_total",
		"Scratch-pool Put calls, by pool.", []string{"pool"}, poolSamples(func(ps arena.PoolStat) float64 { return float64(ps.Puts) }))
	reg.NewCounterFunc("windowd_pool_misses_total",
		"Scratch-pool Gets that had to allocate, by pool.", []string{"pool"}, poolSamples(func(ps arena.PoolStat) float64 { return float64(ps.Misses) }))
	reg.NewGaugeFunc("windowd_pool_bytes_in_flight",
		"Scratch-pool bytes handed out and not yet returned, by pool.", []string{"pool"}, poolSamples(func(ps arena.PoolStat) float64 { return float64(ps.BytesInFlight) }))
	return o
}

// poolSamples adapts one numeric field of every registered pool into a
// labelled sample set.
func poolSamples(field func(arena.PoolStat) float64) func() []obs.Sample {
	return func() []obs.Sample {
		stats := arena.Snapshot()
		out := make([]obs.Sample, 0, len(stats))
		for _, ps := range stats {
			out = append(out, obs.Sample{Labels: []string{ps.Name}, Value: field(ps)})
		}
		return out
	}
}

// observeRequest records the per-request series after the handler returned.
func (o *serverObs) observeRequest(route string, status int, d time.Duration, bytes int64) {
	code := strconv.Itoa(status)
	o.requests.With(route, code).Inc()
	o.reqDur.With(route).Observe(d.Seconds())
	o.respBytes.With(route).Add(float64(bytes))
}

// observeQuerySpans walks a finished query span tree and feeds the
// per-(function, engine) evaluation histogram from the "eval" spans the
// operator emitted.
func (o *serverObs) observeQuerySpans(root *obs.Span) {
	root.Walk(func(sp *obs.Span, _ int) {
		if sp.Name() != "eval" {
			return
		}
		fn, eng := sp.Attr("function"), sp.Attr("engine")
		if fn == "" || eng == "" {
			return
		}
		o.evalDur.With(fn, eng).Observe(sp.Duration().Seconds())
	})
}
