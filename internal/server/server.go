// Package server implements windowd, the HTTP/JSON daemon serving framed
// holistic window queries over registered CSV datasets.
//
// Its core is a structure cache: the merge sort trees and preprocessed
// arrays the window operator builds are keyed by (dataset version,
// partitioning, ordering, tree options) and kept in a byte-budgeted LRU
// (internal/treecache), so a query repeated — or any query agreeing on
// partitioning and ordering — skips the build phase entirely. This is the
// paper's "one tree answers arbitrarily many framed queries" property
// lifted to the request level.
//
// Production plumbing: per-request timeouts plumbed into the operator's
// cooperative cancellation, a semaphore admission limiter, /healthz and
// /statusz, structured request logging, and graceful shutdown through
// http.Server.Shutdown draining in-flight queries.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"holistic/internal/arena"
	"holistic/internal/core"
	"holistic/internal/csvio"
	"holistic/internal/sqlparse"
	"holistic/internal/treecache"
)

// Config tunes the server.
type Config struct {
	// CacheBytes is the tree cache budget; <= 0 means unlimited.
	CacheBytes int64
	// MaxConcurrent caps queries evaluating at once; excess requests wait
	// for a slot until their deadline. <= 0 means 4.
	MaxConcurrent int
	// DefaultTimeout applies to queries that set no timeout (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps the per-request timeout (default 5m).
	MaxTimeout time.Duration
	// TaskSize overrides the operator's parallel task granularity
	// (tests use small values to exercise cancellation between chunks).
	TaskSize int
	// Logger receives structured request logs; nil means slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// dataset is one registered table plus its cache identity.
type dataset struct {
	file  *csvio.File
	info  DatasetInfo
	scope string // cache key prefix: "name@v<version>"
}

// DatasetInfo mirrors api.DatasetInfo without importing it (the api package
// imports nothing from server either; the JSON shapes are kept in sync by
// the shared-client tests).
type DatasetInfo struct {
	Name    string   `json:"name"`
	Version int64    `json:"version"`
	Rows    int      `json:"rows"`
	Columns []string `json:"columns"`
}

// Server is the windowd request handler.
type Server struct {
	cfg     Config
	log     *slog.Logger
	cache   *treecache.Cache
	limiter chan struct{}
	metrics *metrics

	mu       sync.RWMutex
	datasets map[string]*dataset

	mux *http.ServeMux
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		cache:    treecache.New(cfg.CacheBytes),
		limiter:  make(chan struct{}, cfg.MaxConcurrent),
		metrics:  newMetrics(),
		datasets: make(map[string]*dataset),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /datasets", s.handleListDatasets)
	mux.HandleFunc("POST /datasets/{name}", s.handleRegister)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /explain", s.handleExplain)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler with request logging and metrics wired
// around every route.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.begin()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(sw, r)
		d := time.Since(start)
		route := r.Method + " " + routeOf(r.URL.Path)
		s.metrics.end(route, sw.status, d)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(d)/float64(time.Millisecond),
		)
	})
}

// routeOf collapses parameterized paths so metrics aggregate per route, not
// per dataset name.
func routeOf(path string) string {
	if strings.HasPrefix(path, "/datasets/") {
		return "/datasets/{name}"
	}
	return path
}

// statusWriter records the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// CacheStats exposes the tree cache counters (used by /statusz and tests).
func (s *Server) CacheStats() treecache.Stats { return s.cache.Stats() }

// RegisterCSV parses csvData and registers (or reloads) it under name.
// A reload bumps the dataset version and invalidates every cache entry
// built against the previous version.
func (s *Server) RegisterCSV(name string, r io.Reader) (DatasetInfo, error) {
	file, err := csvio.Read(r)
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("parse csv: %w", err)
	}
	return s.install(name, file), nil
}

// RegisterPath loads a CSV file from the server's filesystem.
func (s *Server) RegisterPath(name, path string) (DatasetInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return DatasetInfo{}, err
	}
	defer f.Close()
	return s.RegisterCSV(name, f)
}

func (s *Server) install(name string, file *csvio.File) DatasetInfo {
	cols := make([]string, 0, len(file.Table.Columns()))
	for _, c := range file.Table.Columns() {
		cols = append(cols, c.Name())
	}
	s.mu.Lock()
	version := int64(1)
	oldScope := ""
	if prev, ok := s.datasets[name]; ok {
		version = prev.info.Version + 1
		oldScope = prev.scope
	}
	ds := &dataset{
		file:  file,
		scope: fmt.Sprintf("%s@v%d", name, version),
		info: DatasetInfo{
			Name:    name,
			Version: version,
			Rows:    file.Table.Rows(),
			Columns: cols,
		},
	}
	s.datasets[name] = ds
	s.mu.Unlock()
	if oldScope != "" {
		// Entries under the old scope are unreachable (new queries key on
		// the new version); drop them eagerly to release their bytes.
		removed := s.cache.InvalidatePrefix(oldScope + "|")
		s.log.Info("dataset reloaded", "dataset", name, "version", version, "invalidated", removed)
	} else {
		s.log.Info("dataset registered", "dataset", name, "rows", ds.info.Rows)
	}
	return ds.info
}

func (s *Server) lookup(name string) (*dataset, bool) {
	s.mu.RLock()
	ds, ok := s.datasets[name]
	s.mu.RUnlock()
	return ds, ok
}

// httpError is an error with a dedicated HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past WriteHeader cannot be reported to the client;
	// the types marshalled here contain no unencodable values.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log line only.
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	b.WriteString("windowd status\n\n")
	s.metrics.render(&b)
	st := s.cache.Stats()
	fmt.Fprintf(&b, "cache: entries=%d bytes=%d budget=%d hits=%d misses=%d joins=%d failures=%d evictions=%d invalidations=%d build_time=%s\n",
		st.Entries, st.Bytes, st.Budget, st.Hits, st.Misses, st.Joins, st.Failures, st.Evictions, st.Invalidations, st.BuildTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "arena: %s\n", arena.ArenaSnapshot())
	for _, ps := range arena.Snapshot() {
		fmt.Fprintf(&b, "%s\n", ps)
	}
	s.mu.RLock()
	names := make([]*dataset, 0, len(s.datasets))
	for _, ds := range s.datasets {
		names = append(names, ds)
	}
	s.mu.RUnlock()
	for _, ds := range names {
		fmt.Fprintf(&b, "dataset %s: version=%d rows=%d columns=%d\n",
			ds.info.Name, ds.info.Version, ds.info.Rows, len(ds.info.Columns))
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, b.String())
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]DatasetInfo, 0, len(s.datasets))
	for _, ds := range s.datasets {
		infos = append(infos, ds.info)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"datasets": infos})
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, httpErrorf(http.StatusBadRequest, "missing dataset name"))
		return
	}
	var info DatasetInfo
	var err error
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req struct {
			Path string `json:"path"`
		}
		if derr := json.NewDecoder(r.Body).Decode(&req); derr != nil {
			writeError(w, httpErrorf(http.StatusBadRequest, "bad register request: %v", derr))
			return
		}
		if req.Path == "" {
			writeError(w, httpErrorf(http.StatusBadRequest, "register request needs a path (or upload CSV directly)"))
			return
		}
		info, err = s.RegisterPath(name, req.Path)
	} else {
		info, err = s.RegisterCSV(name, r.Body)
	}
	if err != nil {
		writeError(w, httpErrorf(http.StatusBadRequest, "register %q: %v", name, err))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req struct {
		SQL string `json:"sql"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, httpErrorf(http.StatusBadRequest, "bad explain request: %v", err))
		return
	}
	q, err := sqlparse.Parse(req.SQL)
	if err != nil {
		writeError(w, httpErrorf(http.StatusBadRequest, "%v", err))
		return
	}
	plan, err := sqlparse.Explain(q)
	if err != nil {
		writeError(w, httpErrorf(http.StatusBadRequest, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"plan": plan})
}

// timeoutFor clamps the requested timeout into (0, MaxTimeout].
func (s *Server) timeoutFor(millis int64) time.Duration {
	d := time.Duration(millis) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		SQL           string `json:"sql"`
		TimeoutMillis int64  `json:"timeout_millis"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, httpErrorf(http.StatusBadRequest, "bad query request: %v", err))
		return
	}
	resp, err := s.query(r.Context(), req.SQL, req.TimeoutMillis)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryResponse mirrors api.QueryResponse (see DatasetInfo for why the
// shapes are duplicated rather than imported).
type queryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Nulls   [][]bool   `json:"nulls,omitempty"`
	Stats   struct {
		ElapsedMillis float64 `json:"elapsed_millis"`
		CacheHits     int64   `json:"cache_hits"`
		CacheMisses   int64   `json:"cache_misses"`
	} `json:"stats"`
}

// query parses, admits, evaluates and renders one statement.
func (s *Server) query(parent context.Context, sql string, timeoutMillis int64) (*queryResponse, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "%v", err)
	}
	ds, ok := s.lookup(q.From)
	if !ok {
		return nil, httpErrorf(http.StatusNotFound, "unknown dataset %q", q.From)
	}

	ctx, cancel := context.WithTimeout(parent, s.timeoutFor(timeoutMillis))
	defer cancel()

	// Admission: wait for an evaluation slot, but never past the deadline —
	// a query that times out in the queue fails fast without ever occupying
	// a slot, and a query cancelled mid-evaluation releases its slot as
	// soon as the operator observes the context.
	select {
	case s.limiter <- struct{}{}:
	case <-ctx.Done():
		return nil, httpErrorf(http.StatusServiceUnavailable, "no evaluation slot before deadline: %v", ctx.Err())
	}
	defer func() { <-s.limiter }()

	start := time.Now()
	res, err := sqlparse.Execute(q, map[string]*core.Table{q.From: ds.file.Table}, core.Options{
		Context:    ctx,
		Cache:      s.cache,
		CacheScope: ds.scope,
		TaskSize:   s.cfg.TaskSize,
	})
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, httpErrorf(http.StatusBadRequest, "%v", err)
	}
	elapsed := time.Since(start)

	resp := &queryResponse{}
	resp.Stats.ElapsedMillis = float64(elapsed) / float64(time.Millisecond)
	st := s.cache.Stats()
	resp.Stats.CacheHits = st.Hits
	resp.Stats.CacheMisses = st.Misses
	cols := res.Columns()
	resp.Columns = make([]string, len(cols))
	for i, c := range cols {
		resp.Columns[i] = c.Name()
	}
	n := res.Rows()
	resp.Rows = make([][]string, n)
	resp.Nulls = make([][]bool, n)
	for i := 0; i < n; i++ {
		row := make([]string, len(cols))
		nulls := make([]bool, len(cols))
		for c, col := range cols {
			nulls[c] = col.IsNull(i)
			if ds.file.DateColumns[col.Name()] && col.Kind() == core.Int64 && !col.IsNull(i) {
				row[c] = csvio.DayToDate(col.Int64(i))
				continue
			}
			row[c] = csvio.FormatCell(col, i)
		}
		resp.Rows[i] = row
		resp.Nulls[i] = nulls
	}
	return resp, nil
}
