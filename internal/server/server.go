// Package server implements windowd, the HTTP/JSON daemon serving framed
// holistic window queries over registered CSV datasets.
//
// Its core is a structure cache: the merge sort trees and preprocessed
// arrays the window operator builds are keyed by (dataset version,
// partitioning, ordering, tree options) and kept in a byte-budgeted LRU
// (internal/treecache), so a query repeated — or any query agreeing on
// partitioning and ordering — skips the build phase entirely. This is the
// paper's "one tree answers arbitrarily many framed queries" property
// lifted to the request level.
//
// The HTTP surface is versioned under /v1 (see internal/server/api for the
// wire contract): /v1/query, /v1/explain, /v1/datasets, /v1/healthz and the
// Prometheus exposition at /v1/metrics. The pre-versioning unversioned
// paths answer identically as deprecated aliases, with a Deprecation header
// and a Link to their successor. Every non-2xx response — including the
// mux's own 404 and 405 — carries the api.ErrorResponse envelope.
//
// Production plumbing: per-request timeouts plumbed into the operator's
// cooperative cancellation, a semaphore admission limiter, per-query trace
// spans feeding the metrics registry and a threshold-gated slow-query log,
// /healthz and /statusz, structured request logging, and graceful shutdown
// through http.Server.Shutdown draining in-flight queries.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"holistic/internal/arena"
	"holistic/internal/core"
	"holistic/internal/csvio"
	"holistic/internal/delta"
	"holistic/internal/ingest"
	"holistic/internal/mst"
	"holistic/internal/obs"
	"holistic/internal/plan"
	"holistic/internal/segment"
	"holistic/internal/server/api"
	"holistic/internal/sqlparse"
	"holistic/internal/treecache"
)

// Config tunes the server.
type Config struct {
	// CacheBytes is the tree cache budget; <= 0 means unlimited.
	CacheBytes int64
	// MaxConcurrent caps queries evaluating at once; excess requests wait
	// for a slot until their deadline. <= 0 means 4.
	MaxConcurrent int
	// DefaultTimeout applies to queries that set no timeout (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps the per-request timeout (default 5m).
	MaxTimeout time.Duration
	// TaskSize overrides the operator's parallel task granularity
	// (tests use small values to exercise cancellation between chunks).
	TaskSize int
	// SlowQuery is the slow-query log threshold: queries whose evaluation
	// takes at least this long are logged at WARN with their rendered span
	// tree (including cache_key attributes, so a cold-cache build is
	// distinguishable from a slow probe). <= 0 disables the log.
	SlowQuery time.Duration
	// MaxUploadBytes caps the request body of dataset registration (CSV
	// uploads and JSON register requests). Oversized uploads answer 413
	// with the payload_too_large code. <= 0 means 256 MiB.
	MaxUploadBytes int64
	// SpillRows, when > 0, makes the operator build merge sort trees as
	// forests of SpillRows-row subtrees (mst.Options.SpillRows), bounding
	// the largest contiguous build and enabling out-of-core-friendly
	// incremental tree construction. 0 keeps monolithic trees.
	SpillRows int
	// CompactRows is the per-dataset mutation-overlay size at which the
	// background compactor folds the overlay into a new frozen generation;
	// <= 0 picks max(1024, rows/8) adaptively (delta.Options.CompactRows).
	CompactRows int
	// CompactInterval is how often the background compactor checks each
	// dataset's overlay against the threshold. <= 0 disables background
	// compaction (overlays then only fold on reload).
	CompactInterval time.Duration
	// Logger receives structured request logs; nil means slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// dataset is one registered table plus its cache identity and mutation
// state. file.Table stays the registered base; queries read buf's current
// snapshot (identical until the first mutation).
type dataset struct {
	file  *csvio.File
	info  DatasetInfo
	scope string // cache key prefix: "name@v<version>"; queries append "|g<gen>"
	// buf is the live-mutation buffer over the registered table. Always
	// non-nil; datasets registered without a key column are append-only.
	buf *delta.Buffer
	// stopCompact terminates the dataset's background compactor; nil when
	// background compaction is disabled.
	stopCompact func()
}

// DatasetInfo mirrors api.DatasetInfo; the JSON shapes are kept in sync by
// the shared-client tests.
type DatasetInfo struct {
	Name    string   `json:"name"`
	Version int64    `json:"version"`
	Rows    int      `json:"rows"`
	Columns []string `json:"columns"`
	// Segments is the segment-file count for datasets materialized from a
	// segment directory; 0 for plain CSV registrations.
	Segments int `json:"segments,omitempty"`
	// Epoch counts applied mutation batches since registration.
	Epoch int64 `json:"epoch,omitempty"`
	// KeyColumn is the mutation key column, when one was configured.
	KeyColumn string `json:"key_column,omitempty"`
}

// Server is the windowd request handler.
type Server struct {
	cfg     Config
	log     *slog.Logger
	cache   *treecache.Cache
	limiter chan struct{}
	metrics *metrics   // plain-text /statusz counters
	obs     *serverObs // Prometheus /v1/metrics registry

	mu       sync.RWMutex
	datasets map[string]*dataset
	jobs     map[string]*ingestJob

	mux *http.ServeMux
}

// ingestJob is one asynchronous source→dataset ingest started by
// POST /v1/datasets/{name} with source=ingest. Progress is polled live off
// the Ingester; the outcome fields are set exactly once before done closes.
type ingestJob struct {
	ing  *ingest.Ingester
	done chan struct{}

	mu   sync.Mutex
	err  error
	info *DatasetInfo
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		cache:    treecache.New(cfg.CacheBytes),
		limiter:  make(chan struct{}, cfg.MaxConcurrent),
		metrics:  newMetrics(),
		datasets: make(map[string]*dataset),
		jobs:     make(map[string]*ingestJob),
	}
	s.obs = newServerObs(s)
	mux := http.NewServeMux()
	// Canonical v1 surface.
	mux.HandleFunc("GET "+api.PathHealthz, s.handleHealthz)
	mux.HandleFunc("GET "+api.PathMetrics, s.handleMetrics)
	mux.HandleFunc("GET "+api.PathDatasets, s.handleListDatasets)
	mux.HandleFunc("POST "+api.PathDatasets+"/{name}", s.handleRegister)
	mux.HandleFunc("GET "+api.PathDatasets+"/{name}/ingest", s.handleIngestStatus)
	mux.HandleFunc("POST "+api.PathDatasets+"/{name}/mutations", s.handleMutations)
	mux.HandleFunc("POST "+api.PathQuery, s.handleQuery)
	mux.HandleFunc("POST "+api.PathExplain, s.handleExplain)
	// Human-facing debug page; not part of the versioned API.
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	// Deprecated pre-versioning aliases: same handlers, plus a Deprecation
	// header pointing clients at the /v1 successor.
	mux.HandleFunc("GET /healthz", deprecated(s.handleHealthz))
	mux.HandleFunc("GET /datasets", deprecated(s.handleListDatasets))
	mux.HandleFunc("POST /datasets/{name}", deprecated(s.handleRegister))
	mux.HandleFunc("POST /query", deprecated(s.handleQuery))
	mux.HandleFunc("POST /explain", deprecated(s.handleExplain))
	s.mux = mux
	return s
}

// deprecated wraps a legacy unversioned route: the response gains a
// Deprecation header (RFC 8594 style) and a Link to the /v1 successor, and
// is otherwise byte-identical to the canonical route.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
		h(w, r)
	}
}

// Handler returns the HTTP handler with request logging and metrics wired
// around every route, and the error envelope wired under unmatched requests
// (the mux's plain-text 404/405 never reach a client).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.begin()
		s.obs.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if _, pattern := s.mux.Handler(r); pattern == "" {
			s.serveUnmatched(sw, r)
		} else {
			s.mux.ServeHTTP(sw, r)
		}
		d := time.Since(start)
		route := r.Method + " " + routeOf(r.URL.Path)
		s.metrics.end(route, sw.status, d)
		s.obs.inflight.Add(-1)
		s.obs.observeRequest(route, sw.status, d, sw.bytes)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(d)/float64(time.Millisecond),
		)
	})
}

// serveUnmatched answers a request no pattern matched with the JSON error
// envelope. The mux is probed against a throwaway writer to learn whether
// this is a 404 or a 405 (and to salvage the Allow header it computes).
func (s *Server) serveUnmatched(w http.ResponseWriter, r *http.Request) {
	h, _ := s.mux.Handler(r)
	probe := &probeWriter{header: make(http.Header)}
	h.ServeHTTP(probe, r)
	if allow := probe.header.Get("Allow"); allow != "" {
		w.Header().Set("Allow", allow)
	}
	if probe.status == http.StatusMethodNotAllowed {
		writeError(w, httpErrorf(http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method %s not allowed for %s", r.Method, r.URL.Path))
		return
	}
	writeError(w, httpErrorf(http.StatusNotFound, api.CodeNotFound,
		"no route for %s %s", r.Method, r.URL.Path))
}

// probeWriter captures the status and headers of the mux's built-in
// not-found/not-allowed handlers without sending anything to the client.
type probeWriter struct {
	header http.Header
	status int
}

func (p *probeWriter) Header() http.Header         { return p.header }
func (p *probeWriter) Write(b []byte) (int, error) { return len(b), nil }
func (p *probeWriter) WriteHeader(code int) {
	if p.status == 0 {
		p.status = code
	}
}

// routeOf collapses parameterized paths so metrics aggregate per route, not
// per dataset name. Route label cardinality is bounded by the route table,
// not by request paths: unmatched paths all collapse to "(unmatched)".
func routeOf(path string) string {
	p := strings.TrimPrefix(path, "/v1")
	switch p {
	case "/healthz", "/statusz", "/datasets", "/query", "/explain", "/metrics":
		return path
	}
	if strings.HasPrefix(p, "/datasets/") {
		suffix := ""
		if strings.HasSuffix(p, "/ingest") {
			suffix = "/ingest"
		} else if strings.HasSuffix(p, "/mutations") {
			suffix = "/mutations"
		}
		if strings.HasPrefix(path, "/v1/") {
			return "/v1/datasets/{name}" + suffix
		}
		return "/datasets/{name}" + suffix
	}
	return "(unmatched)"
}

// statusWriter records the response status and body size for logging and
// metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// CacheStats exposes the tree cache counters (used by /statusz and tests).
func (s *Server) CacheStats() treecache.Stats { return s.cache.Stats() }

// RegisterCSV parses csvData and registers (or reloads) it under name.
// A reload bumps the dataset version and invalidates every cache entry
// built against the previous version.
func (s *Server) RegisterCSV(name string, r io.Reader) (DatasetInfo, error) {
	return s.RegisterCSVKeyed(name, r, "")
}

// RegisterCSVKeyed registers a CSV dataset with a mutation key column:
// a unique, non-NULL INT64 or STRING column that upserts and deletes
// address rows by. An empty keyColumn makes the dataset append-only.
func (s *Server) RegisterCSVKeyed(name string, r io.Reader, keyColumn string) (DatasetInfo, error) {
	file, err := csvio.Read(r)
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("parse csv: %w", err)
	}
	return s.install(name, file, 0, keyColumn)
}

// RegisterPath loads a CSV file from the server's filesystem.
func (s *Server) RegisterPath(name, path string) (DatasetInfo, error) {
	return s.RegisterPathKeyed(name, path, "")
}

// RegisterPathKeyed loads a CSV file with a mutation key column.
func (s *Server) RegisterPathKeyed(name, path, keyColumn string) (DatasetInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return DatasetInfo{}, err
	}
	defer f.Close()
	return s.RegisterCSVKeyed(name, f, keyColumn)
}

// RegisterDir materializes a segment dataset directory (written by the
// ingest pipeline or windowcli -ingest) and registers it under name. Column
// loads go through the tree cache under content-addressed per-segment keys,
// so re-registering a partially changed directory only rebuilds the columns
// of segments whose content actually changed.
func (s *Server) RegisterDir(name, dir string) (DatasetInfo, error) {
	d, err := segment.OpenDir(dir)
	if err != nil {
		return DatasetInfo{}, err
	}
	defer d.Close()
	file, err := d.File(s.cache)
	if err != nil {
		return DatasetInfo{}, err
	}
	return s.install(name, file, len(d.Segments()), "")
}

func (s *Server) install(name string, file *csvio.File, segments int, keyColumn string) (DatasetInfo, error) {
	buf, err := delta.NewBuffer(file.Table, keyColumn, delta.Options{CompactRows: s.cfg.CompactRows})
	if err != nil {
		return DatasetInfo{}, err
	}
	cols := make([]string, 0, len(file.Table.Columns()))
	for _, c := range file.Table.Columns() {
		cols = append(cols, c.Name())
	}
	s.mu.Lock()
	version := int64(1)
	oldScope := ""
	var stopPrev func()
	if prev, ok := s.datasets[name]; ok {
		version = prev.info.Version + 1
		oldScope = prev.scope
		stopPrev = prev.stopCompact
	}
	ds := &dataset{
		file:  file,
		buf:   buf,
		scope: fmt.Sprintf("%s@v%d", name, version),
		info: DatasetInfo{
			Name:      name,
			Version:   version,
			Rows:      file.Table.Rows(),
			Columns:   cols,
			Segments:  segments,
			KeyColumn: keyColumn,
		},
	}
	if s.cfg.CompactInterval > 0 {
		scope := ds.scope
		ds.stopCompact = buf.StartCompactor(s.cfg.CompactInterval, func(oldGen, newGen int64) {
			// The folded generation's cache entries are unreachable (queries
			// key on the new gen); release their bytes eagerly.
			removed := s.cache.InvalidatePrefix(fmt.Sprintf("%s|g%d|", scope, oldGen))
			s.log.Info("delta compacted", "dataset", name, "gen", newGen, "invalidated", removed)
		})
	}
	s.datasets[name] = ds
	s.mu.Unlock()
	if stopPrev != nil {
		stopPrev()
	}
	if oldScope != "" {
		// Entries under the old scope are unreachable (new queries key on
		// the new version); drop them eagerly to release their bytes.
		removed := s.cache.InvalidatePrefix(oldScope + "|")
		s.log.Info("dataset reloaded", "dataset", name, "version", version, "invalidated", removed)
	} else {
		s.log.Info("dataset registered", "dataset", name, "rows", ds.info.Rows)
	}
	return ds.info, nil
}

// Close stops the background compactors. The HTTP side is shut down by the
// owner's http.Server; Close only releases server-owned goroutines.
func (s *Server) Close() {
	s.mu.Lock()
	stops := make([]func(), 0, len(s.datasets))
	for _, ds := range s.datasets {
		if ds.stopCompact != nil {
			stops = append(stops, ds.stopCompact)
			ds.stopCompact = nil
		}
	}
	s.mu.Unlock()
	for _, stop := range stops {
		stop()
	}
}

func (s *Server) lookup(name string) (*dataset, bool) {
	s.mu.RLock()
	ds, ok := s.datasets[name]
	s.mu.RUnlock()
	return ds, ok
}

// httpError is an error with a dedicated HTTP status and envelope code.
type httpError struct {
	status int
	code   api.ErrorCode
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, code api.ErrorCode, format string, args ...any) *httpError {
	return &httpError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past WriteHeader cannot be reported to the client;
	// the types marshalled here contain no unencodable values.
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders err as the api.ErrorResponse envelope. Errors that
// carry no explicit classification map to internal (500), except context
// errors, which surface as 504 with the matching code.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	code := api.CodeInternal
	var he *httpError
	switch {
	case errors.As(err, &he):
		status, code = he.status, he.code
	case errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusGatewayTimeout, api.CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log line only.
		status, code = http.StatusGatewayTimeout, api.CodeCanceled
	}
	writeJSON(w, status, api.ErrorResponse{Error: api.ErrorDetail{
		Code:    code,
		Message: err.Error(),
	}})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the Prometheus text exposition (format 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.reg.WriteText(w)
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	b.WriteString("windowd status\n\n")
	s.metrics.render(&b)
	st := s.cache.Stats()
	fmt.Fprintf(&b, "cache: entries=%d bytes=%d budget=%d hits=%d misses=%d joins=%d failures=%d evictions=%d invalidations=%d build_time=%s\n",
		st.Entries, st.Bytes, st.Budget, st.Hits, st.Misses, st.Joins, st.Failures, st.Evictions, st.Invalidations, st.BuildTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "arena: %s\n", arena.ArenaSnapshot())
	for _, ps := range arena.Snapshot() {
		fmt.Fprintf(&b, "%s\n", ps)
	}
	bs := core.BatchSnapshot()
	fmt.Fprintf(&b, "mst-batch: queries=%d dedup_hits=%d\n", bs.Queries, bs.DedupHits)
	is := ingest.Snapshot()
	fmt.Fprintf(&b, "ingest: started=%d completed=%d failed=%d rows=%d segments=%d resumed=%d\n",
		is.Started, is.Completed, is.Failed, is.RowsIngested, is.SegmentsWritten, is.IntervalsResumed)
	dst := delta.Counters()
	fmt.Fprintf(&b, "delta: batches=%d appends=%d upserts=%d deletes=%d conflicts=%d compactions=%d materializations=%d\n",
		dst.Batches, dst.Appends, dst.Upserts, dst.Deletes, dst.Conflicts, dst.Compactions, dst.Materializations)
	s.mu.RLock()
	names := make([]*dataset, 0, len(s.datasets))
	for _, ds := range s.datasets {
		names = append(names, ds)
	}
	s.mu.RUnlock()
	for _, ds := range names {
		snap := ds.buf.Snapshot()
		fmt.Fprintf(&b, "dataset %s: version=%d rows=%d columns=%d segments=%d epoch=%d gen=%d delta_rows=%d\n",
			ds.info.Name, ds.info.Version, snap.Rows(), len(ds.info.Columns), ds.info.Segments,
			snap.Epoch(), snap.Gen(), snap.DeltaRows())
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, b.String())
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]DatasetInfo, 0, len(s.datasets))
	for _, ds := range s.datasets {
		info := ds.info
		// Rows and Epoch are live: they track applied mutations, not the
		// registration-time base.
		snap := ds.buf.Snapshot()
		info.Rows = snap.Rows()
		info.Epoch = snap.Epoch()
		infos = append(infos, info)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"datasets": infos})
}

// registerError classifies a registration failure: an upload that tripped
// the MaxBytesReader cap is 413 payload_too_large, anything else 400.
func registerError(name string, err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return httpErrorf(http.StatusRequestEntityTooLarge, api.CodePayloadTooLarge,
			"register %q: request body exceeds the %d-byte upload limit", name, mbe.Limit)
	}
	return httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument, "register %q: %v", name, err)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument, "missing dataset name"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	if !strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		// The ?key= query parameter names the mutation key column for
		// direct CSV uploads (JSON registrations use key_column).
		info, err := s.RegisterCSVKeyed(name, body, r.URL.Query().Get("key"))
		if err != nil {
			writeError(w, registerError(name, err))
			return
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	var req api.RegisterRequest
	if derr := json.NewDecoder(body).Decode(&req); derr != nil {
		writeError(w, registerError(name, derr))
		return
	}
	var info DatasetInfo
	var err error
	switch req.Source {
	case "", api.SourceCSV:
		if req.Path == "" {
			writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument, "register request needs a path (or upload CSV directly)"))
			return
		}
		info, err = s.RegisterPathKeyed(name, req.Path, req.KeyColumn)
	case api.SourceDir:
		if req.Dir == "" {
			writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument, "source=dir needs dir (a segment dataset directory)"))
			return
		}
		info, err = s.RegisterDir(name, req.Dir)
	case api.SourceIngest:
		s.startIngest(w, r, name, req)
		return
	default:
		writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument,
			"unknown source %q (want %q, %q or %q)", req.Source, api.SourceCSV, api.SourceDir, api.SourceIngest))
		return
	}
	if err != nil {
		writeError(w, registerError(name, err))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// startIngest launches an asynchronous CSV→segment-directory ingest and
// answers 202 with the initial status. The work continues after this
// request returns (the goroutine detaches from the request's cancellation
// but keeps its values), and the finished dataset registers itself under
// name. Progress is served by GET /v1/datasets/{name}/ingest.
func (s *Server) startIngest(w http.ResponseWriter, r *http.Request, name string, req api.RegisterRequest) {
	if req.Path == "" || req.Dir == "" {
		writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument,
			"source=ingest needs path (CSV source) and dir (dataset directory)"))
		return
	}
	job := &ingestJob{
		ing: ingest.New(req.Path, req.Dir, ingest.Options{
			RowsPerSegment: req.RowsPerSegment,
			BlockRows:      req.BlockRows,
		}),
		done: make(chan struct{}),
	}
	s.mu.Lock()
	if prev, ok := s.jobs[name]; ok {
		select {
		case <-prev.done:
			// Finished (or failed): a new ingest may replace it.
		default:
			s.mu.Unlock()
			writeError(w, httpErrorf(http.StatusConflict, api.CodeConflict,
				"an ingest for dataset %q is already running", name))
			return
		}
	}
	s.jobs[name] = job
	s.mu.Unlock()
	s.log.Info("ingest started", "dataset", name, "source", req.Path, "dir", req.Dir)
	go s.runIngest(context.WithoutCancel(r.Context()), name, req.Dir, job)
	writeJSON(w, http.StatusAccepted, jobStatus(job))
}

func (s *Server) runIngest(ctx context.Context, name, dir string, job *ingestJob) {
	res, err := job.ing.Run(ctx)
	var info DatasetInfo
	if err == nil {
		info, err = s.RegisterDir(name, dir)
	}
	job.mu.Lock()
	job.err = err
	if err == nil {
		job.info = &info
	}
	job.mu.Unlock()
	close(job.done)
	if err != nil {
		s.log.Error("ingest failed", "dataset", name, "err", err)
		return
	}
	s.log.Info("ingest complete", "dataset", name,
		"rows", res.Rows, "segments", res.Segments, "resumed", res.Resumed)
}

// ingestStatusResponse mirrors api.IngestStatus (kept in sync by the
// shared-client tests). The embedded Progress flattens into the envelope.
type ingestStatusResponse struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	ingest.Progress
	Dataset *DatasetInfo `json:"dataset,omitempty"`
}

// jobStatus snapshots a job for the wire.
func jobStatus(job *ingestJob) ingestStatusResponse {
	st := ingestStatusResponse{State: api.IngestRunning, Progress: job.ing.Progress()}
	select {
	case <-job.done:
		job.mu.Lock()
		if job.err != nil {
			st.State = api.IngestFailed
			st.Error = job.err.Error()
		} else {
			st.State = api.IngestDone
			st.Dataset = job.info
		}
		job.mu.Unlock()
	default:
	}
	return st
}

func (s *Server) handleIngestStatus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	job, ok := s.jobs[name]
	s.mu.RUnlock()
	if !ok {
		writeError(w, httpErrorf(http.StatusNotFound, api.CodeNotFound, "no ingest for dataset %q", name))
		return
	}
	writeJSON(w, http.StatusOK, jobStatus(job))
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req struct {
		SQL string `json:"sql"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument, "bad explain request: %v", err))
		return
	}
	q, err := sqlparse.Parse(req.SQL)
	if err != nil {
		writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument, "%v", err))
		return
	}
	text, err := sqlparse.Explain(q)
	if err != nil {
		writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument, "%v", err))
		return
	}
	// The structured DAG benefits from column kinds (the planner's float-
	// sensitivity gate), so resolve the FROM dataset when it is registered;
	// explaining against an unknown dataset still works, conservatively.
	var tab *core.Table
	if ds, ok := s.lookup(q.From); ok {
		if t, err := ds.buf.Snapshot().Table(); err == nil {
			tab = t
		}
	}
	p, err := sqlparse.BuildPlan(q, tab)
	if err != nil {
		writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument, "%v", err))
		return
	}
	resp := &explainResponse{Plan: text, PlanDAG: p.Nodes}
	resp.Operators = p.Stats.Operators
	resp.SortsShared = p.Stats.SortsShared
	resp.TreesShared = p.Stats.TreesShared
	writeJSON(w, http.StatusOK, resp)
}

// explainResponse mirrors api.ExplainResponse (kept in sync by the
// shared-client tests); plan.Node carries api.PlanNode's json shape.
type explainResponse struct {
	Plan        string      `json:"plan"`
	PlanDAG     []plan.Node `json:"plan_dag,omitempty"`
	Operators   int         `json:"operators,omitempty"`
	SortsShared int         `json:"sorts_shared,omitempty"`
	TreesShared int         `json:"trees_shared,omitempty"`
}

// timeoutFor clamps the requested timeout into (0, MaxTimeout].
func (s *Server) timeoutFor(millis int64) time.Duration {
	d := time.Duration(millis) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		SQL           string `json:"sql"`
		TimeoutMillis int64  `json:"timeout_millis"`
		IncludeTrace  bool   `json:"include_trace"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument, "bad query request: %v", err))
		return
	}
	resp, err := s.query(r.Context(), req.SQL, req.TimeoutMillis, req.IncludeTrace)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryResponse mirrors api.QueryResponse (kept in sync by the
// shared-client tests).
type queryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Nulls   [][]bool   `json:"nulls,omitempty"`
	Stats   struct {
		ElapsedMillis float64 `json:"elapsed_millis"`
		CacheHits     int64   `json:"cache_hits"`
		CacheMisses   int64   `json:"cache_misses"`
		Operators     int     `json:"operators,omitempty"`
		SortsShared   int     `json:"sorts_shared,omitempty"`
		TreesShared   int     `json:"trees_shared,omitempty"`
	} `json:"stats"`
	Trace string `json:"trace,omitempty"`
}

// query parses, admits, evaluates and renders one statement. Every query
// runs under a trace span: the finished tree feeds the per-(function,
// engine) evaluation histograms, the slow-query log, and — when the request
// asked for it — the response's Trace field.
func (s *Server) query(parent context.Context, sql string, timeoutMillis int64, includeTrace bool) (*queryResponse, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument, "%v", err)
	}
	ds, ok := s.lookup(q.From)
	if !ok {
		return nil, httpErrorf(http.StatusNotFound, api.CodeNotFound, "unknown dataset %q", q.From)
	}

	ctx, cancel := context.WithTimeout(parent, s.timeoutFor(timeoutMillis))
	defer cancel()

	// Admission: wait for an evaluation slot, but never past the deadline —
	// a query that times out in the queue fails fast without ever occupying
	// a slot, and a query cancelled mid-evaluation releases its slot as
	// soon as the operator observes the context.
	s.obs.admissionDepth.Add(1)
	select {
	case s.limiter <- struct{}{}:
		s.obs.admissionDepth.Add(-1)
	case <-ctx.Done():
		s.obs.admissionDepth.Add(-1)
		s.obs.admissionTimeouts.Inc()
		return nil, httpErrorf(http.StatusServiceUnavailable, api.CodeResourceExhausted,
			"no evaluation slot before deadline: %v", ctx.Err())
	}
	s.obs.admissionInUse.Add(1)
	defer func() {
		<-s.limiter
		s.obs.admissionInUse.Add(-1)
	}()

	// Pin one snapshot for the whole evaluation: the merged table and the
	// delta view are one epoch, regardless of concurrent mutations or
	// compactions. The cache scope carries the frozen generation so a
	// compaction swap retires the old generation's entries wholesale.
	snap := ds.buf.Snapshot()
	tab, err := snap.Table()
	if err != nil {
		return nil, httpErrorf(http.StatusInternalServerError, api.CodeInternal, "materialize %q: %v", q.From, err)
	}
	view, err := snap.View()
	if err != nil {
		return nil, httpErrorf(http.StatusInternalServerError, api.CodeInternal, "delta view %q: %v", q.From, err)
	}

	root := obs.NewSpan("query")
	root.Set("sql", sql)
	start := time.Now()
	res, planStats, err := sqlparse.ExecutePlanned(q, map[string]*core.Table{q.From: tab}, core.Options{
		Tree:       mst.Options{SpillRows: s.cfg.SpillRows},
		Context:    ctx,
		Cache:      s.cache,
		CacheScope: fmt.Sprintf("%s|g%d", ds.scope, snap.Gen()),
		Delta:      view,
		TaskSize:   s.cfg.TaskSize,
		Trace:      root,
	})
	root.End()
	elapsed := time.Since(start)
	s.obs.observeQuerySpans(root)
	if s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery {
		s.obs.slowQueries.Inc()
		s.log.Warn("slow query",
			"sql", sql,
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond),
			"threshold_ms", float64(s.cfg.SlowQuery)/float64(time.Millisecond),
			"trace", "\n"+root.Render(),
		)
	}
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, httpErrorf(http.StatusBadRequest, api.CodeInvalidArgument, "%v", err)
	}

	resp := &queryResponse{}
	resp.Stats.ElapsedMillis = float64(elapsed) / float64(time.Millisecond)
	st := s.cache.Stats()
	resp.Stats.CacheHits = st.Hits
	resp.Stats.CacheMisses = st.Misses
	resp.Stats.Operators = planStats.Operators
	resp.Stats.SortsShared = planStats.SortsShared
	resp.Stats.TreesShared = planStats.TreesShared
	if includeTrace {
		resp.Trace = root.Render()
	}
	cols := res.Columns()
	resp.Columns = make([]string, len(cols))
	for i, c := range cols {
		resp.Columns[i] = c.Name()
	}
	n := res.Rows()
	resp.Rows = make([][]string, n)
	resp.Nulls = make([][]bool, n)
	for i := 0; i < n; i++ {
		row := make([]string, len(cols))
		nulls := make([]bool, len(cols))
		for c, col := range cols {
			nulls[c] = col.IsNull(i)
			if ds.file.DateColumns[col.Name()] && col.Kind() == core.Int64 && !col.IsNull(i) {
				row[c] = csvio.DayToDate(col.Int64(i))
				continue
			}
			row[c] = csvio.FormatCell(col, i)
		}
		resp.Rows[i] = row
		resp.Nulls[i] = nulls
	}
	s.obs.rowsReturned.Add(float64(n))
	return resp, nil
}
