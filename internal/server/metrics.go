package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in milliseconds; the last
// counts slot is the open-ended overflow bucket.
var latencyBuckets = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

const numBuckets = len(latencyBuckets)

// histogram is a fixed-bucket latency histogram. The zero value is ready.
type histogram struct {
	counts [numBuckets + 1]int64
	sum    float64
	n      int64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(latencyBuckets[:], ms)
	h.counts[i]++
	h.sum += ms
	h.n++
}

func (h *histogram) render(b *strings.Builder) {
	if h.n == 0 {
		b.WriteString("no samples")
		return
	}
	fmt.Fprintf(b, "n=%d mean=%.2fms", h.n, h.sum/float64(h.n))
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if i < len(latencyBuckets) {
			fmt.Fprintf(b, " le%gms=%d", latencyBuckets[i], c)
		} else {
			fmt.Fprintf(b, " gt%gms=%d", latencyBuckets[len(latencyBuckets)-1], c)
		}
	}
}

// endpointStats aggregates one route's request outcomes.
type endpointStats struct {
	requests int64
	errors   int64 // responses with status >= 400
	latency  histogram
}

// metrics is the server-wide counter set behind /statusz.
type metrics struct {
	mu        sync.Mutex
	start     time.Time
	requests  int64
	inFlight  int64
	endpoints map[string]*endpointStats
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), endpoints: make(map[string]*endpointStats)}
}

func (m *metrics) begin() {
	m.mu.Lock()
	m.requests++
	m.inFlight++
	m.mu.Unlock()
}

func (m *metrics) end(route string, status int, d time.Duration) {
	m.mu.Lock()
	m.inFlight--
	ep := m.endpoints[route]
	if ep == nil {
		ep = &endpointStats{}
		m.endpoints[route] = ep
	}
	ep.requests++
	if status >= 400 {
		ep.errors++
	}
	ep.latency.observe(d)
	m.mu.Unlock()
}

// render writes the per-endpoint section of /statusz.
func (m *metrics) render(b *strings.Builder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(b, "uptime: %s\n", time.Since(m.start).Round(time.Millisecond))
	fmt.Fprintf(b, "requests: total=%d in_flight=%d\n", m.requests, m.inFlight)
	routes := make([]string, 0, len(m.endpoints))
	for r := range m.endpoints {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		ep := m.endpoints[r]
		fmt.Fprintf(b, "endpoint %s: requests=%d errors=%d latency: ", r, ep.requests, ep.errors)
		ep.latency.render(b)
		b.WriteByte('\n')
	}
}
