package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"holistic/internal/server/api"
)

// ingestCSV renders n data rows of a g/d/v table with some NULLs.
func ingestCSV(n int) string {
	rng := rand.New(rand.NewSource(int64(n)))
	var b strings.Builder
	b.WriteString("g,d,v\n")
	for i := 0; i < n; i++ {
		v := ""
		if rng.Intn(10) != 0 {
			v = fmt.Sprintf("%d", rng.Intn(1000)-500)
		}
		fmt.Fprintf(&b, "%d,2024-%02d-%02d,%s\n", rng.Intn(4), 1+rng.Intn(12), 1+rng.Intn(28), v)
	}
	return b.String()
}

func TestUploadLimit(t *testing.T) {
	_, c := newTestServer(t, Config{MaxUploadBytes: 256})
	ctx := context.Background()
	if _, err := c.UploadCSV(ctx, "small", []byte(smallCSV)); err != nil {
		t.Fatalf("under-limit upload rejected: %v", err)
	}
	_, err := c.UploadCSV(ctx, "big", []byte(ingestCSV(100)))
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("oversized upload: got %v, want *api.Error", err)
	}
	if ae.Status != http.StatusRequestEntityTooLarge || ae.Code != api.CodePayloadTooLarge {
		t.Fatalf("oversized upload: status=%d code=%q, want 413 %q", ae.Status, ae.Code, api.CodePayloadTooLarge)
	}
	// The limit covers JSON register bodies too.
	big := api.RegisterRequest{Path: strings.Repeat("x", 512)}
	if _, err := c.RegisterPath(ctx, "big", big.Path); err == nil {
		t.Fatal("oversized JSON register body accepted")
	}
}

// TestIngestAndSegmentedQuery drives the full server-side out-of-core path:
// async ingest of a CSV into >= 4 segments with progress polling, then a
// query over the segmented dataset compared row-for-row against the same
// CSV uploaded in-RAM on the same server.
func TestIngestAndSegmentedQuery(t *testing.T) {
	_, c := newTestServer(t, Config{SpillRows: 48})
	ctx := context.Background()
	dir := t.TempDir()
	src := filepath.Join(dir, "src.csv")
	csvData := ingestCSV(600)
	if err := os.WriteFile(src, []byte(csvData), 0o644); err != nil {
		t.Fatal(err)
	}
	mustUpload(t, c, "ram", csvData)

	dest := filepath.Join(dir, "data")
	st, err := c.StartIngest(ctx, "seg", api.RegisterRequest{Path: src, Dir: dest, RowsPerSegment: 150})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.IngestRunning && st.State != api.IngestDone {
		t.Fatalf("initial ingest state %q", st.State)
	}
	deadline := time.Now().Add(20 * time.Second)
	for st.State != api.IngestDone {
		if st.State == api.IngestFailed {
			t.Fatalf("ingest failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest did not finish: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
		if st, err = c.IngestStatus(ctx, "seg"); err != nil {
			t.Fatal(err)
		}
	}
	if st.Dataset == nil || st.Dataset.Segments != 4 || st.Dataset.Rows != 600 {
		t.Fatalf("final ingest dataset %+v", st.Dataset)
	}
	if st.DoneIntervals != 4 || st.DoneRows != 600 {
		t.Fatalf("final ingest progress %+v", st)
	}

	const q = `select g, d, v,
		sum(v) over w as s,
		rank(order by v) over w as r,
		percentile_disc(0.5 order by v) over w as med
	from %s window w as (partition by g order by d, v rows between 20 preceding and 5 following)`
	want, err := c.Query(ctx, api.QueryRequest{SQL: fmt.Sprintf(q, "ram")})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(ctx, api.QueryRequest{SQL: fmt.Sprintf(q, "seg")})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) || !reflect.DeepEqual(got.Nulls, want.Nulls) {
		t.Fatal("segmented query result differs from the in-RAM dataset's")
	}

	// The segment directory also registers directly (e.g. after a restart).
	info, err := c.RegisterDir(ctx, "seg2", dest)
	if err != nil {
		t.Fatal(err)
	}
	if info.Segments != 4 || info.Rows != 600 {
		t.Fatalf("RegisterDir info %+v", info)
	}

	status, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "segments=4") || !strings.Contains(status, "ingest: started=") {
		t.Fatalf("statusz lacks segment/ingest lines:\n%s", status)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `windowd_ingest_runs_total{state="completed"} 1`) {
		t.Fatalf("metrics lack ingest families:\n%s", metrics)
	}
}

func TestIngestStatusUnknown(t *testing.T) {
	_, c := newTestServer(t, Config{})
	_, err := c.IngestStatus(context.Background(), "nope")
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("unknown ingest status: %v", err)
	}
}

func TestIngestRequestValidation(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.StartIngest(ctx, "x", api.RegisterRequest{Path: "only-path.csv"}); err == nil {
		t.Fatal("ingest without dir accepted")
	}
	var ae *api.Error
	if _, err := c.StartIngest(ctx, "x", api.RegisterRequest{Dir: "only-dir"}); !errors.As(err, &ae) || ae.Code != api.CodeInvalidArgument {
		t.Fatalf("ingest without path: %v", err)
	}
	if _, err := c.RegisterDir(ctx, "x", filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing segment directory registered")
	}
}
