package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"holistic/internal/server/api"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

const smallCSV = `d,g,v
2024-01-01,a,10
2024-01-02,a,20
2024-01-03,b,30
2024-01-04,b,40
2024-01-05,a,50
`

// newTestServer starts an httptest server around a fresh Server and returns
// the shared-encoding client pointed at it.
func newTestServer(t *testing.T, cfg Config) (*Server, *api.Client) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, &api.Client{BaseURL: ts.URL}
}

func mustUpload(t *testing.T, c *api.Client, name, csvData string) *api.DatasetInfo {
	t.Helper()
	info, err := c.UploadCSV(context.Background(), name, []byte(csvData))
	if err != nil {
		t.Fatalf("upload %s: %v", name, err)
	}
	return info
}

func TestQueryEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	info := mustUpload(t, c, "t", smallCSV)
	if info.Version != 1 || info.Rows != 5 {
		t.Fatalf("bad dataset info: %+v", info)
	}

	resp, err := c.Query(ctx, api.QueryRequest{SQL: `
		select d, percentile_disc(0.5 order by v)
		       over (order by d rows between 2 preceding and current row) as med
		from t`})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Columns) != 2 || resp.Columns[1] != "med" {
		t.Fatalf("bad columns: %v", resp.Columns)
	}
	// PERCENTILE_DISC(0.5) = first value with cumulative distribution >= 0.5
	// over [10] [10,20] [10,20,30] [20,30,40] [30,40,50].
	wantMed := []string{"10", "10", "20", "30", "40"}
	for i, want := range wantMed {
		if got := resp.Rows[i][1]; got != want {
			t.Fatalf("row %d: med=%q, want %q", i, got, want)
		}
		if got := resp.Rows[i][0]; got != fmt.Sprintf("2024-01-0%d", i+1) {
			t.Fatalf("row %d: date column rendered as %q", i, got)
		}
	}

	plan, err := c.Explain(ctx, `select rank(order by v) over (order by d) from t`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(plan), "rank") {
		t.Fatalf("plan does not mention the function: %q", plan)
	}

	list, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "t" {
		t.Fatalf("bad dataset list: %+v", list)
	}
}

func TestQueryErrors(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	mustUpload(t, c, "t", smallCSV)
	cases := []string{
		`select rank(order by v) over (order by d) from nosuch`,
		`select rank(order by nope) over (order by d) from t`,
		`this is not sql`,
	}
	for _, q := range cases {
		if _, err := c.Query(ctx, api.QueryRequest{SQL: q}); err == nil {
			t.Fatalf("query %q succeeded, want error", q)
		}
	}
}

// bigCSV generates n rows of (g, v) with a deterministic shuffle.
func bigCSV(n int) string {
	rng := rand.New(rand.NewSource(17))
	var b strings.Builder
	b.WriteString("g,v\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i%7, rng.Intn(n))
	}
	return b.String()
}

// TestConcurrentIdenticalQueriesSingleBuild fires N identical queries at
// once and checks the cache built each structure exactly once: the miss
// count equals that of a single cold run of the same query (measured
// against a second dataset with identical content).
func TestConcurrentIdenticalQueriesSingleBuild(t *testing.T) {
	s, c := newTestServer(t, Config{MaxConcurrent: 16, TaskSize: 512})
	ctx := context.Background()
	csvData := bigCSV(20_000)
	mustUpload(t, c, "a", csvData)
	mustUpload(t, c, "b", csvData)

	query := func(ds string) string {
		return fmt.Sprintf(`
			select count(distinct v) over (order by v rows between 1000 preceding and current row) as cd,
			       rank(order by v) over (order by v) as r
			from %s`, ds)
	}

	// Baseline: one cold query against dataset "b" builds every structure.
	before := s.CacheStats()
	if _, err := c.Query(ctx, api.QueryRequest{SQL: query("b")}); err != nil {
		t.Fatal(err)
	}
	coldBuilds := s.CacheStats().Misses - before.Misses
	if coldBuilds == 0 {
		t.Fatal("cold query built nothing")
	}

	// The batch: N identical queries against "a" concurrently.
	const N = 8
	before = s.CacheStats()
	var wg sync.WaitGroup
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Query(ctx, api.QueryRequest{SQL: query("a")})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent query %d: %v", i, err)
		}
	}
	after := s.CacheStats()
	batchBuilds := after.Misses - before.Misses
	if batchBuilds != coldBuilds {
		t.Fatalf("%d concurrent identical queries built %d structures, want %d (one build per structure)",
			N, batchBuilds, coldBuilds)
	}
	if reuse := (after.Hits - before.Hits) + (after.Joins - before.Joins); reuse == 0 {
		t.Fatal("concurrent batch shows no cache reuse at all")
	}
}

// TestReloadInvalidatesCache reloads a dataset and checks the new version
// is queried (fresh results) and the old version's entries are dropped.
func TestReloadInvalidatesCache(t *testing.T) {
	s, c := newTestServer(t, Config{})
	ctx := context.Background()
	mustUpload(t, c, "t", "v\n1\n2\n3\n")
	sql := `select max(v) over (order by v rows between unbounded preceding and unbounded following) as m from t`

	r1, err := c.Query(ctx, api.QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0][0] != "3" {
		t.Fatalf("got %q, want 3", r1.Rows[0][0])
	}

	info := mustUpload(t, c, "t", "v\n5\n6\n7\n8\n")
	if info.Version != 2 {
		t.Fatalf("reload kept version %d", info.Version)
	}
	r2, err := c.Query(ctx, api.QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Rows[0][0] != "8" {
		t.Fatalf("after reload got %q, want 8 (stale data served?)", r2.Rows[0][0])
	}
	if inv := s.CacheStats().Invalidations; inv == 0 {
		t.Fatal("reload invalidated no cache entries")
	}
}

// TestStatuszReflectsCache checks the text metrics page carries the cache
// counters and per-endpoint latency histograms.
func TestStatuszReflectsCache(t *testing.T) {
	s, c := newTestServer(t, Config{})
	ctx := context.Background()
	mustUpload(t, c, "t", smallCSV)
	sql := `select rank(order by v) over (order by d) as r from t`
	for i := 0; i < 2; i++ {
		if _, err := c.Query(ctx, api.QueryRequest{SQL: sql}); err != nil {
			t.Fatal(err)
		}
	}
	page, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.Hits == 0 {
		t.Fatal("second identical query produced no cache hits")
	}
	for _, want := range []string{
		fmt.Sprintf("hits=%d", st.Hits),
		fmt.Sprintf("misses=%d", st.Misses),
		"endpoint POST /v1/query:",
		"dataset t: version=1",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("statusz missing %q:\n%s", want, page)
		}
	}
}

// TestTimeoutFreesAdmissionSlot runs a deliberately slow query with a 1ms
// deadline on a single-slot server: the query must fail promptly with a
// deadline error, and the slot must be free for the next query.
func TestTimeoutFreesAdmissionSlot(t *testing.T) {
	_, c := newTestServer(t, Config{MaxConcurrent: 1, TaskSize: 64})
	ctx := context.Background()
	mustUpload(t, c, "big", bigCSV(150_000))

	slow := `select count(distinct v) over (order by v rows between 100000 preceding and current row) as cd from big`
	start := time.Now()
	_, err := c.Query(ctx, api.QueryRequest{SQL: slow, TimeoutMillis: 1})
	if err == nil {
		t.Fatal("1ms query succeeded; dataset too small to exercise the timeout")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("got %v, want a deadline error", err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("cancelled query took %v to return", took)
	}

	// The slot must be free: a small follow-up query succeeds quickly.
	mustUpload(t, c, "small", smallCSV)
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, api.QueryRequest{SQL: `select rank(order by v) over (order by d) as r from small`})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("follow-up query: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("follow-up query hung: admission slot not released")
	}
}

// TestHealthz checks the liveness endpoint.
func TestHealthz(t *testing.T) {
	_, c := newTestServer(t, Config{})
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}
