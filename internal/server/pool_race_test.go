package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"holistic/internal/arena"
	"holistic/internal/server/api"
)

// poolDeltas captures per-pool counter movement between two snapshots.
func poolDeltas(before, after []arena.PoolStat) map[string]arena.PoolStat {
	prev := make(map[string]arena.PoolStat, len(before))
	for _, s := range before {
		prev[s.Name] = s
	}
	out := make(map[string]arena.PoolStat, len(after))
	for _, s := range after {
		p := prev[s.Name]
		out[s.Name] = arena.PoolStat{
			Name:          s.Name,
			Gets:          s.Gets - p.Gets,
			Puts:          s.Puts - p.Puts,
			Misses:        s.Misses - p.Misses,
			BytesInFlight: s.BytesInFlight - p.BytesInFlight,
		}
	}
	return out
}

// TestPoolRaceStress hammers one server from many goroutines with a mix of
// identical and distinct queries against a cold cache, so concurrent tree
// builds recycle pooled scratch across requests while singleflight joins
// race on the same structures. Run under -race this is the pooling
// contract's torture test; independently of the race detector it checks
// that every response matches the canonical serial answer and that pooled
// buffers all come back (gets == puts, no bytes left in flight).
func TestPoolRaceStress(t *testing.T) {
	s, c := newTestServer(t, Config{MaxConcurrent: 8, TaskSize: 256})
	ctx := context.Background()
	csvData := bigCSV(5_000)
	mustUpload(t, c, "ref", csvData)
	mustUpload(t, c, "ds", csvData)

	queries := []string{
		`select count(distinct v) over (order by v rows between 500 preceding and current row) as x from %s`,
		`select rank(order by v) over (partition by g order by v) as x from %s`,
		`select percentile_disc(0.5 order by v) over (order by v rows between 200 preceding and 200 following) as x from %s`,
		`select max(v) over (order by v rows between unbounded preceding and current row) as x from %s`,
	}

	// Canonical answers come from a twin dataset so the stress below starts
	// against a completely cold cache for "ds".
	canonical := make([]*api.QueryResponse, len(queries))
	for i, q := range queries {
		resp, err := c.Query(ctx, api.QueryRequest{SQL: fmt.Sprintf(q, "ref")})
		if err != nil {
			t.Fatalf("canonical query %d: %v", i, err)
		}
		canonical[i] = resp
	}

	before := arena.Snapshot()

	const goroutines = 16
	const iters = 5
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (g + it) % len(queries)
				resp, err := c.Query(ctx, api.QueryRequest{SQL: fmt.Sprintf(queries[qi], "ds")})
				if err != nil {
					errs[g] = fmt.Errorf("iter %d query %d: %w", it, qi, err)
					return
				}
				want := canonical[qi]
				if len(resp.Rows) != len(want.Rows) {
					errs[g] = fmt.Errorf("iter %d query %d: %d rows, want %d", it, qi, len(resp.Rows), len(want.Rows))
					return
				}
				for r := range resp.Rows {
					for col := range resp.Rows[r] {
						if resp.Rows[r][col] != want.Rows[r][col] {
							errs[g] = fmt.Errorf("iter %d query %d row %d col %d: %q != canonical %q",
								it, qi, r, col, resp.Rows[r][col], want.Rows[r][col])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	// Every borrowed buffer must be back: the structures the builds retain
	// are make-allocated, so pooled gets and puts balance once quiesced.
	deltas := poolDeltas(before, arena.Snapshot())
	sawTraffic := false
	for name, d := range deltas {
		if d.Gets != d.Puts || d.BytesInFlight != 0 {
			t.Errorf("pool %s leaked: gets=%d puts=%d bytes_in_flight=%+d", name, d.Gets, d.Puts, d.BytesInFlight)
		}
		if d.Gets > 0 {
			sawTraffic = true
		}
	}
	if !sawTraffic {
		t.Fatal("stress run exercised no pooled scratch at all")
	}

	// The counters must surface on the status page.
	page, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"arena: arenas=", "pool int32:", "bytes_in_flight="} {
		if !strings.Contains(page, want) {
			t.Fatalf("statusz missing %q:\n%s", want, page)
		}
	}
	_ = s
}
