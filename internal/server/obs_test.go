package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"holistic/internal/obs"
	"holistic/internal/server/api"
)

// scrapeMetrics fetches and parses the /v1/metrics exposition.
func scrapeMetrics(t *testing.T, c *api.Client) *obs.ParsedMetrics {
	t.Helper()
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("scrape metrics: %v", err)
	}
	p, err := obs.ParseText(text)
	if err != nil {
		t.Fatalf("metrics do not parse as Prometheus text exposition: %v\n%s", err, text)
	}
	return p
}

// TestErrorEnvelope checks every failure shape carries the JSON envelope
// with the right machine code — handler errors and the mux's own 404/405.
func TestErrorEnvelope(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	mustUpload(t, c, "t", smallCSV)

	wantCode := func(err error, status int, code api.ErrorCode) {
		t.Helper()
		var ae *api.Error
		if !asAPIError(err, &ae) {
			t.Fatalf("got %T (%v), want *api.Error", err, err)
		}
		if ae.Status != status || ae.Code != code {
			t.Fatalf("got status=%d code=%q, want %d %q", ae.Status, ae.Code, status, code)
		}
	}

	_, err := c.Query(ctx, api.QueryRequest{SQL: `select rank(order by v) over (order by d) from nosuch`})
	wantCode(err, http.StatusNotFound, api.CodeNotFound)

	_, err = c.Query(ctx, api.QueryRequest{SQL: `this is not sql`})
	wantCode(err, http.StatusBadRequest, api.CodeInvalidArgument)

	// Unknown route: the mux's 404 must come back as the envelope too.
	for _, path := range []string{"/nosuch", "/v1/nosuch"} {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		env := decodeEnvelope(t, resp)
		if resp.StatusCode != http.StatusNotFound || env.Error.Code != api.CodeNotFound {
			t.Fatalf("GET %s: status=%d code=%q, want 404 %q", path, resp.StatusCode, env.Error.Code, api.CodeNotFound)
		}
	}

	// Wrong method on a known route: 405 envelope plus an Allow header.
	resp, err := http.Get(c.BaseURL + api.PathQuery)
	if err != nil {
		t.Fatal(err)
	}
	env := decodeEnvelope(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed || env.Error.Code != api.CodeMethodNotAllowed {
		t.Fatalf("GET /v1/query: status=%d code=%q, want 405 %q", resp.StatusCode, env.Error.Code, api.CodeMethodNotAllowed)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, http.MethodPost) {
		t.Fatalf("405 Allow header %q does not offer POST", allow)
	}
}

func asAPIError(err error, out **api.Error) bool {
	ae, ok := err.(*api.Error)
	if ok {
		*out = ae
	}
	return ok
}

func decodeEnvelope(t *testing.T, resp *http.Response) api.ErrorResponse {
	t.Helper()
	defer resp.Body.Close()
	var env api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("non-2xx body is not the error envelope: %v", err)
	}
	return env
}

// TestLegacyAliases checks the pre-versioning paths still answer — with a
// Deprecation header and a successor Link — while the /v1 routes stay clean.
func TestLegacyAliases(t *testing.T) {
	_, c := newTestServer(t, Config{})
	mustUpload(t, c, "t", smallCSV)

	body := `{"sql":"select rank(order by v) over (order by d) as r from t"}`
	resp, err := http.Post(c.BaseURL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /query: %d", resp.StatusCode)
	}
	if dep := resp.Header.Get("Deprecation"); dep != "true" {
		t.Fatalf("legacy /query Deprecation header = %q, want \"true\"", dep)
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "</v1/query>") || !strings.Contains(link, "successor-version") {
		t.Fatalf("legacy /query Link header = %q, want /v1/query successor", link)
	}
	var qr api.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 5 {
		t.Fatalf("legacy /query returned %d rows, want 5", len(qr.Rows))
	}

	for _, path := range []string{"/healthz", "/datasets"} {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("Deprecation") != "true" {
			t.Fatalf("legacy %s: status=%d Deprecation=%q", path, resp.StatusCode, resp.Header.Get("Deprecation"))
		}
	}

	// Canonical routes carry no deprecation marker.
	resp, err = http.Get(c.BaseURL + api.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Deprecation") != "" {
		t.Fatalf("/v1/healthz: status=%d Deprecation=%q, want 200 and no header", resp.StatusCode, resp.Header.Get("Deprecation"))
	}
}

// TestMetricsExposition runs queries and checks the scrape parses and
// carries the core series with sane values: request and eval histograms,
// cache events, pool counters, rows returned.
func TestMetricsExposition(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	mustUpload(t, c, "t", smallCSV)
	sql := `select rank(order by v) over (order by d) as r from t`
	for i := 0; i < 3; i++ {
		if _, err := c.Query(ctx, api.QueryRequest{SQL: sql}); err != nil {
			t.Fatal(err)
		}
	}

	p := scrapeMetrics(t, c)
	if v, ok := p.Value("windowd_requests_total", "route=POST /v1/query", "code=200"); !ok || v < 3 {
		t.Fatalf("requests_total{POST /v1/query,200} = %v (%v), want >= 3", v, ok)
	}
	if v, ok := p.Value("windowd_request_duration_seconds_count", "route=POST /v1/query"); !ok || v < 3 {
		t.Fatalf("request_duration_seconds_count = %v (%v), want >= 3", v, ok)
	}
	// Only the first run evaluates: repeats of an identical query scatter
	// the partition's cached result vector without probing at all.
	if v, ok := p.Value("windowd_eval_duration_seconds_count", "function=rank", "engine=mst"); !ok || v < 1 {
		t.Fatalf("eval_duration_seconds_count{rank,mst} = %v (%v), want >= 1", v, ok)
	}
	if v, ok := p.Value("windowd_cache_events_total", "event=hit"); !ok || v == 0 {
		t.Fatalf("cache_events_total{hit} = %v (%v), want > 0 after repeated query", v, ok)
	}
	if v, ok := p.Value("windowd_cache_events_total", "event=miss"); !ok || v == 0 {
		t.Fatalf("cache_events_total{miss} = %v (%v), want > 0 after cold query", v, ok)
	}
	if v, ok := p.Value("windowd_rows_returned_total"); !ok || v < 15 {
		t.Fatalf("rows_returned_total = %v (%v), want >= 15", v, ok)
	}
	if v, ok := p.Value("windowd_uptime_seconds"); !ok || v <= 0 {
		t.Fatalf("uptime_seconds = %v (%v), want > 0", v, ok)
	}
	if v, ok := p.Value("windowd_datasets"); !ok || v != 1 {
		t.Fatalf("datasets = %v (%v), want 1", v, ok)
	}
	// The query path draws scratch from the shared pools; at least one pool
	// must report gets.
	gets := 0.0
	for _, pool := range []string{"int32", "int64", "uint64", "float64"} {
		if v, ok := p.Value("windowd_pool_gets_total", "pool="+pool); ok {
			gets += v
		}
	}
	if gets == 0 {
		t.Fatal("no pool reported any gets after queries")
	}
}

// TestMetricsMonotonicUnderLoad interleaves concurrent queries with
// concurrent scrapes and checks the request counter never goes backwards
// and every scrape stays parseable.
func TestMetricsMonotonicUnderLoad(t *testing.T) {
	_, c := newTestServer(t, Config{MaxConcurrent: 8})
	ctx := context.Background()
	mustUpload(t, c, "t", smallCSV)
	sql := `select rank(order by v) over (order by d) as r from t`

	const rounds = 5
	last := -1.0
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := c.Query(ctx, api.QueryRequest{SQL: sql}); err != nil {
					t.Errorf("query: %v", err)
				}
			}()
		}
		// Scrape concurrently with the queries: parseability under load.
		wg.Add(1)
		go func() {
			defer wg.Done()
			scrapeMetrics(t, c)
		}()
		wg.Wait()

		p := scrapeMetrics(t, c)
		v, ok := p.Value("windowd_requests_total", "route=POST /v1/query", "code=200")
		if !ok {
			t.Fatalf("round %d: requests_total series missing", round)
		}
		if v <= last {
			t.Fatalf("round %d: requests_total went %v -> %v, counter not monotonic", round, last, v)
		}
		last = v
	}
	if want := float64(rounds * 4); last != want {
		t.Fatalf("requests_total{POST /v1/query,200} = %v, want %v", last, want)
	}
}

// TestQueryTrace asks for the span tree over the wire and checks the phases
// documented in DESIGN.md §9 show up.
func TestQueryTrace(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	mustUpload(t, c, "t", smallCSV)

	resp, err := c.Query(ctx, api.QueryRequest{
		SQL:          `select count(distinct v) over (order by d rows between 2 preceding and current row) as cd from t`,
		IncludeTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"partition+order sort", "partition boundaries", "build merge sort tree", "probe"} {
		if !strings.Contains(resp.Trace, phase) {
			t.Fatalf("trace missing phase %q:\n%s", phase, resp.Trace)
		}
	}
	if strings.Contains(resp.Trace, "(unfinished)") {
		t.Fatalf("trace has unfinished spans:\n%s", resp.Trace)
	}

	// Without IncludeTrace the field stays empty (and costs no bytes).
	resp, err = c.Query(ctx, api.QueryRequest{SQL: `select rank(order by v) over (order by d) as r from t`})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != "" {
		t.Fatalf("unrequested trace present: %q", resp.Trace)
	}
}

// TestSlowQueryLog drives a query over a zero-ish threshold and checks the
// WARN line carries the span tree, and the slow-query counter moves.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	_, c := newTestServer(t, Config{SlowQuery: time.Nanosecond, Logger: logger})
	ctx := context.Background()
	mustUpload(t, c, "t", smallCSV)
	if _, err := c.Query(ctx, api.QueryRequest{SQL: `select rank(order by v) over (order by d) as r from t`}); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "slow query") {
		t.Fatalf("no slow-query WARN with a %v threshold:\n%s", time.Nanosecond, logged)
	}
	if !strings.Contains(logged, "partition+order sort") {
		t.Fatalf("slow-query log misses the span tree:\n%s", logged)
	}

	p := scrapeMetrics(t, c)
	if v, ok := p.Value("windowd_slow_queries_total"); !ok || v == 0 {
		t.Fatalf("slow_queries_total = %v (%v), want > 0", v, ok)
	}
}

// lockedWriter serializes concurrent handler writes into one buffer.
type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(b []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(b)
}

// TestDeprecatedAliasMetricsRoute checks legacy traffic is labelled under
// its own route so the migration is observable.
func TestDeprecatedAliasMetricsRoute(t *testing.T) {
	_, c := newTestServer(t, Config{})
	mustUpload(t, c, "t", smallCSV)
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	p := scrapeMetrics(t, c)
	if v, ok := p.Value("windowd_requests_total", "route=GET /healthz", "code=200"); !ok || v != 1 {
		t.Fatalf("requests_total{GET /healthz,200} = %v (%v), want 1", v, ok)
	}
}
