package server

import (
	"context"
	"strings"
	"testing"

	"holistic/internal/server/api"
)

// TestExplainStructuredPlan checks /v1/explain's structured side: the DAG
// arrives alongside the legacy text, nodes come in execution order with
// shared-by annotations, and the summary counters match the plan shape.
func TestExplainStructuredPlan(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	mustUpload(t, c, "t", smallCSV)

	sql := `
		select count(distinct g) over w as cd,
		       rank(order by v) over w as r,
		       sum(v) over (partition by g) as s
		from t
		window w as (partition by g order by d)`
	resp, err := c.ExplainPlan(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Plan == "" {
		t.Fatal("legacy text plan missing")
	}
	if len(resp.PlanDAG) == 0 {
		t.Fatal("plan_dag missing")
	}
	if resp.Operators != len(resp.PlanDAG) {
		t.Fatalf("operators = %d, nodes = %d", resp.Operators, len(resp.PlanDAG))
	}
	// The unordered SUM window shares w's sort (its order is the empty
	// prefix and SUM over the INT64 column v is order-insensitive).
	if resp.SortsShared != 1 {
		t.Fatalf("sorts_shared = %d, want 1", resp.SortsShared)
	}
	// First node is the shared sort, serving all three functions.
	first := resp.PlanDAG[0]
	if first.Kind != "sort" || len(first.SharedBy) != 3 {
		t.Fatalf("first node = %+v, want sort shared by 3", first)
	}
	seen := map[string]bool{}
	for _, n := range resp.PlanDAG {
		for _, in := range n.Inputs {
			if !seen[in] {
				t.Fatalf("node %s consumes %s before it is defined", n.ID, in)
			}
		}
		seen[n.ID] = true
	}
	for _, want := range []string{"probe_cd", "probe_r", "probe_s"} {
		if !seen[want] {
			t.Fatalf("missing probe node %s", want)
		}
	}
}

// TestQueryStatsPlanFields checks that executed queries report the plan
// shape in their stats and that the sharing metrics families expose it.
func TestQueryStatsPlanFields(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	mustUpload(t, c, "t", smallCSV)

	resp, err := c.Query(ctx, api.QueryRequest{SQL: `
		select count(distinct g) over w as cd,
		       count(distinct g) over (partition by g order by d groups 1 preceding) as cd2,
		       rank(order by v) over w as r
		from t
		window w as (partition by g order by d)`})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Operators == 0 {
		t.Fatalf("stats.operators = 0: %+v", resp.Stats)
	}
	if resp.Stats.TreesShared < 1 {
		t.Fatalf("stats.trees_shared = %d, want >= 1: %+v", resp.Stats.TreesShared, resp.Stats)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"windowd_plan_shared_sorts",
		"windowd_plan_shared_trees",
		"windowd_plan_shared_preprocess",
	} {
		if !strings.Contains(metrics, family) {
			t.Fatalf("metrics exposition missing %s", family)
		}
	}
}
