package core

import (
	"math/rand"
	"testing"

	"holistic/internal/frame"
	"holistic/internal/mst"
	"holistic/internal/preprocess"
	"holistic/internal/rangetree"
	"holistic/internal/treecache"
)

// The EvalMST benchmarks measure the steady-state per-row probe cost of the
// merge-sort-tree engines with every cached structure already built — the
// regime a warm server operates in. The acceptance bar for the allocation
// work is that the count and select probes run at 0 allocs/op.

// benchPartition assembles one partition plus frame computer exactly the way
// Run does, for a table with no PARTITION BY.
func benchPartition(b *testing.B, n int, f *FuncSpec) (*partition, *frame.Computer) {
	b.Helper()
	rng := rand.New(rand.NewSource(1234))
	tab := randTable(rng, n)
	w := &WindowSpec{
		OrderBy: []SortKey{{Column: "d"}},
		Frame: frame.Spec{
			Mode:  frame.Rows,
			Start: frame.Bound{Type: frame.Preceding, Offset: 100},
			End:   frame.Bound{Type: frame.Following, Offset: 100},
		},
		FrameSet: true,
		Funcs:    []FuncSpec{*f},
	}
	if err := w.validate(tab); err != nil {
		b.Fatal(err)
	}
	sortIdx := preprocess.SortIndices(n, windowComparator(tab, w))
	parts := splitPartitions(tab, w, sortIdx)
	if len(parts) != 1 {
		b.Fatalf("expected 1 partition, got %d", len(parts))
	}
	p := parts[0]
	fc, err := p.frameComputer(p.w.effectiveFrame(&p.w.Funcs[0]))
	if err != nil {
		b.Fatal(err)
	}
	return p, fc
}

// BenchmarkEvalMSTCount probes COUNT(DISTINCT) per row against a pre-built
// tree: one frame computation plus one cascaded count query.
func BenchmarkEvalMSTCount(b *testing.B) {
	const n = 20_000
	f := &FuncSpec{Name: CountDistinct, Output: "x", Arg: "v"}
	p, fc := benchPartition(b, n, f)
	var opt Options
	fl := newFiltered(p, &p.w.Funcs[0], f.Arg, opt)
	prev, next := buildDistinctInputs(fl, &p.w.Funcs[0], opt)
	tree, err := mst.Build(prev, opt.Tree)
	if err != nil {
		b.Fatal(err)
	}
	var scratch, mapped [3][2]int
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := i % n
		ranges := fl.frameRanges(fc, row, scratch[:], mapped[:])
		sink += distinctCount(tree, prev, next, ranges)
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkEvalMSTSelect probes FIRST_VALUE per row against a pre-built
// permutation tree: one frame computation plus one cascaded selection.
func BenchmarkEvalMSTSelect(b *testing.B) {
	const n = 20_000
	f := &FuncSpec{Name: FirstValue, Output: "x", Arg: "v", OrderBy: []SortKey{{Column: "v"}}}
	p, fc := benchPartition(b, n, f)
	var opt Options
	fl := newFiltered(p, &p.w.Funcs[0], "", opt)
	sortedKept := keptOrder(fl, p.sortedByFuncOrder(&p.w.Funcs[0]), make([]int32, fl.k))
	perm := preprocess.Permutation(sortedKept)
	tree, err := mst.Build(perm, opt.Tree)
	if err != nil {
		b.Fatal(err)
	}
	var scratch, mapped [3][2]int
	var r64 [3][2]int64
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := i % n
		ranges := fl.frameRanges(fc, row, scratch[:], mapped[:])
		size := 0
		for ri, r := range ranges {
			size += r[1] - r[0]
			r64[ri] = [2]int64{int64(r[0]), int64(r[1])}
		}
		if size == 0 {
			continue
		}
		if pos, ok := tree.SelectKthRanges(r64[:len(ranges)], 0); ok {
			sink += fl.orig(int(tree.Value(pos)))
		}
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkEvalMSTCountBatch compares the batched level-synchronous count
// kernel against the scalar per-row descent on the same warm COUNT(DISTINCT)
// probe (sliding ±100 ROWS frame): ns/op is per row, both arms write through
// the same output builder. The bench-regress CI gate tracks both arms; the
// batched/scalar ratio is the tentpole's acceptance number (EXPERIMENTS.md).
func BenchmarkEvalMSTCountBatch(b *testing.B) {
	for _, size := range []struct {
		name string
		n    int
	}{{"20k", 20_000}, {"1M", 1_000_000}} {
		f := &FuncSpec{Name: CountDistinct, Output: "x", Arg: "v"}
		p, fc := benchPartition(b, size.n, f)
		var opt Options
		fl := newFiltered(p, &p.w.Funcs[0], f.Arg, opt)
		prev, next := buildDistinctInputs(fl, &p.w.Funcs[0], opt)
		tree, err := mst.Build(prev, opt.Tree)
		if err != nil {
			b.Fatal(err)
		}
		out := newOutBuilder(f.Output, Int64, size.n)
		for _, arm := range []string{"batched", "scalar"} {
			arm := arm
			b.Run(arm+"-"+size.name, func(b *testing.B) {
				agg := &batchAgg{}
				var scratch, mapped [3][2]int
				const chunkRows = 4096
				// Warm the kernel scratch pools so steady state is measured.
				distinctCountChunk(p, fl, fc, tree, prev, next, out, opt, agg, 0, min(chunkRows, size.n))
				b.ReportAllocs()
				b.ResetTimer()
				row := 0
				for done := 0; done < b.N; {
					c := chunkRows
					if row+c > size.n {
						c = size.n - row
					}
					if done+c > b.N {
						c = b.N - done
					}
					if arm == "batched" {
						distinctCountChunk(p, fl, fc, tree, prev, next, out, opt, agg, row, row+c)
					} else {
						for i := row; i < row+c; i++ {
							ranges := fl.frameRanges(fc, i, scratch[:], mapped[:])
							out.setInt(p.orig(i), int64(distinctCount(tree, prev, next, ranges)))
						}
					}
					done += c
					row += c
					if row == size.n {
						row = 0
					}
				}
			})
		}
	}
}

// BenchmarkEvalMSTSelectBatch compares the batched select kernel against the
// scalar per-row SelectKthRanges descent on a warm FIRST_VALUE probe.
func BenchmarkEvalMSTSelectBatch(b *testing.B) {
	const n = 20_000
	f := &FuncSpec{Name: FirstValue, Output: "x", Arg: "v", OrderBy: []SortKey{{Column: "v"}}}
	p, fc := benchPartition(b, n, f)
	var opt Options
	fl := newFiltered(p, &p.w.Funcs[0], "", opt)
	sortedKept := keptOrder(fl, p.sortedByFuncOrder(&p.w.Funcs[0]), make([]int32, fl.k))
	perm := preprocess.Permutation(sortedKept)
	tree, err := mst.Build(perm, opt.Tree)
	if err != nil {
		b.Fatal(err)
	}
	valueCol := p.t.Column(f.Arg)
	out := newOutBuilder(f.Output, valueCol.Kind(), n)
	for _, arm := range []string{"batched", "scalar"} {
		arm := arm
		b.Run(arm, func(b *testing.B) {
			agg := &batchAgg{}
			var scratch, mapped [3][2]int
			var r64 [3][2]int64
			const chunkRows = 4096
			selectChunk(p, &p.w.Funcs[0], fl, fc, tree, valueCol, out, opt, agg, 0, chunkRows)
			b.ReportAllocs()
			b.ResetTimer()
			row := 0
			for done := 0; done < b.N; {
				c := chunkRows
				if row+c > n {
					c = n - row
				}
				if done+c > b.N {
					c = b.N - done
				}
				if arm == "batched" {
					selectChunk(p, &p.w.Funcs[0], fl, fc, tree, valueCol, out, opt, agg, row, row+c)
				} else {
					for i := row; i < row+c; i++ {
						ranges := fl.frameRanges(fc, i, scratch[:], mapped[:])
						rw := p.orig(i)
						sz := 0
						for ri, r := range ranges {
							sz += r[1] - r[0]
							r64[ri] = [2]int64{int64(r[0]), int64(r[1])}
						}
						if sz == 0 {
							out.setNull(rw)
							continue
						}
						if pos, ok := tree.SelectKthRanges(r64[:len(ranges)], 0); ok {
							out.copyFrom(valueCol, fl.orig(int(tree.Value(pos))), rw)
						} else {
							out.setNull(rw)
						}
					}
				}
				done += c
				row += c
				if row == n {
					row = 0
				}
			}
		})
	}
}

// BenchmarkEvalMSTRunWarm measures a full Run with a warm structure cache —
// the per-request cost a caching server pays after the first query: output
// columns and per-partition bookkeeping, with all trees reused.
func BenchmarkEvalMSTRunWarm(b *testing.B) {
	const n = 20_000
	rng := rand.New(rand.NewSource(1234))
	tab := randTable(rng, n)
	w := &WindowSpec{
		OrderBy: []SortKey{{Column: "d"}},
		Frame: frame.Spec{
			Mode:  frame.Rows,
			Start: frame.Bound{Type: frame.Preceding, Offset: 100},
			End:   frame.Bound{Type: frame.Following, Offset: 100},
		},
		FrameSet: true,
		Funcs: []FuncSpec{
			{Name: CountDistinct, Output: "c", Arg: "v"},
			{Name: FirstValue, Output: "f", Arg: "v", OrderBy: []SortKey{{Column: "v"}}},
		},
	}
	opt := Options{Cache: treecache.New(64 << 20), CacheScope: "bench@v1"}
	if _, err := Run(tab, w, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tab, w, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalMSTAggBatch compares the batched aggregate kernel against the
// scalar annotated descent on a warm SUM(DISTINCT) probe (sliding ±100 ROWS
// frame): ns/op is per row. The batched/scalar ratio at 1M rows is the PR 10
// acceptance number (EXPERIMENTS.md).
func BenchmarkEvalMSTAggBatch(b *testing.B) {
	for _, size := range []struct {
		name string
		n    int
	}{{"20k", 20_000}, {"1M", 1_000_000}} {
		f := &FuncSpec{Name: SumDistinct, Output: "x", Arg: "v"}
		p, fc := benchPartition(b, size.n, f)
		var opt Options
		fl := newFiltered(p, &p.w.Funcs[0], f.Arg, opt)
		prev, next := buildDistinctInputs(fl, &p.w.Funcs[0], opt)
		values := make([]int64, fl.k)
		for j := range values {
			values[j] = p.t.Column(f.Arg).Int64(fl.orig(j))
		}
		add := func(a, b int64) int64 { return a + b }
		sub := func(a, b int64) int64 { return a - b }
		tree, err := mst.BuildAnnotated(prev, values, add, opt.Tree)
		if err != nil {
			b.Fatal(err)
		}
		out := newOutBuilder(f.Output, Int64, size.n)
		emit := func(row int, v int64) { out.setInt(row, v) }
		for _, arm := range []string{"batched", "scalar"} {
			arm := arm
			b.Run(arm+"-"+size.name, func(b *testing.B) {
				agg := &batchAgg{}
				var scratch, mapped [3][2]int
				const chunkRows = 4096
				distinctAggChunk(p, fl, fc, tree, prev, next, values, sub, emit, out, opt, agg, 0, min(chunkRows, size.n))
				b.ReportAllocs()
				b.ResetTimer()
				row := 0
				for done := 0; done < b.N; {
					c := chunkRows
					if row+c > size.n {
						c = size.n - row
					}
					if done+c > b.N {
						c = b.N - done
					}
					if arm == "batched" {
						distinctAggChunk(p, fl, fc, tree, prev, next, values, sub, emit, out, opt, agg, row, row+c)
					} else {
						for i := row; i < row+c; i++ {
							ranges := fl.frameRanges(fc, i, scratch[:], mapped[:])
							rw := p.orig(i)
							if len(ranges) == 0 {
								out.setNull(rw)
								continue
							}
							a := ranges[0][0]
							d := ranges[len(ranges)-1][1]
							v, ok := tree.AggBelow(a, d, int64(a)+1)
							removed := 0
							forEachFullyExcluded(prev, next, ranges, func(h int) {
								v = sub(v, values[h])
								removed++
							})
							total := 0
							for _, r := range ranges {
								total += r[1] - r[0]
							}
							if !ok || total == 0 || tree.CountBelow(a, d, int64(a)+1)-removed == 0 {
								out.setNull(rw)
								continue
							}
							emit(rw, v)
						}
					}
					done += c
					row += c
					if row == size.n {
						row = 0
					}
				}
			})
		}
	}
}

// BenchmarkEvalMSTDenseRankBatch compares the batched depth-synchronous
// range-tree probe against the scalar canonical-decomposition walk on a warm
// framed DENSE_RANK (sliding ±100 ROWS frame): ns/op is per row.
func BenchmarkEvalMSTDenseRankBatch(b *testing.B) {
	for _, size := range []struct {
		name string
		n    int
	}{{"20k", 20_000}, {"1M", 1_000_000}} {
		f := &FuncSpec{Name: DenseRank, Output: "x", OrderBy: []SortKey{{Column: "v"}}}
		p, fc := benchPartition(b, size.n, f)
		var opt Options
		fl := newFiltered(p, &p.w.Funcs[0], "", opt)
		sortedAll := p.sortedByFuncOrder(&p.w.Funcs[0])
		ranksAll, _ := preprocess.DenseRanks(sortedAll, p.funcEqual(&p.w.Funcs[0]))
		ranksKept := make([]int64, fl.k)
		for j := range ranksKept {
			ranksKept[j] = ranksAll[fl.local(j)]
		}
		sortedKept := preprocess.SortIndicesByKeyIn(make([]int32, fl.k), ranksKept)
		sameKept := func(a, b int) bool { return ranksKept[a] == ranksKept[b] }
		prevKept := preprocess.PrevIndices(sortedKept, sameKept)
		nextKept := make([]int64, fl.k)
		for j := range nextKept {
			nextKept[j] = int64(fl.k)
		}
		for i := 1; i < len(sortedKept); i++ {
			if sameKept(int(sortedKept[i-1]), int(sortedKept[i])) {
				nextKept[sortedKept[i-1]] = int64(sortedKept[i])
			}
		}
		rt, err := rangetree.New(ranksKept, prevKept, opt.Tree)
		if err != nil {
			b.Fatal(err)
		}
		out := newOutBuilder(f.Output, Int64, size.n)
		for _, arm := range []string{"batched", "scalar"} {
			arm := arm
			b.Run(arm+"-"+size.name, func(b *testing.B) {
				agg := &batchAgg{}
				var scratch, mapped [3][2]int
				const chunkRows = 4096
				denseRankChunk(p, fl, fc, rt, ranksAll, ranksKept, prevKept, nextKept, out, opt, agg, 0, min(chunkRows, size.n))
				b.ReportAllocs()
				b.ResetTimer()
				row := 0
				for done := 0; done < b.N; {
					c := chunkRows
					if row+c > size.n {
						c = size.n - row
					}
					if done+c > b.N {
						c = b.N - done
					}
					if arm == "batched" {
						denseRankChunk(p, fl, fc, rt, ranksAll, ranksKept, prevKept, nextKept, out, opt, agg, row, row+c)
					} else {
						for i := row; i < row+c; i++ {
							ranges := fl.frameRanges(fc, i, scratch[:], mapped[:])
							rw := p.orig(i)
							if len(ranges) == 0 {
								out.setInt(rw, 1)
								continue
							}
							a := ranges[0][0]
							d := ranges[len(ranges)-1][1]
							cnt := rt.CountDistinctBelow(a, d, ranksAll[i], int64(a)+1)
							forEachFullyExcluded(prevKept, nextKept, ranges, func(h int) {
								if ranksKept[h] < ranksAll[i] {
									cnt--
								}
							})
							out.setInt(rw, int64(cnt)+1)
						}
					}
					done += c
					row += c
					if row == size.n {
						row = 0
					}
				}
			})
		}
	}
}
