package core

import "holistic/internal/arena"

// Pooled scratch acquisition for the evaluation engines' preprocessing
// temporaries. Every helper honors Options.NoPool by falling back to make,
// and every put is a no-op for buffers that did not come from the pools
// (putX with NoPool set, or a nil slice), so call sites stay branch-free.
//
// Only true temporaries may come from these helpers: anything retained
// beyond the call — cached structures, Remap internals, output columns —
// must be allocated with make, because pooled buffers are recycled by other
// requests after put. The poollifecycle analyzer additionally forbids growing a
// pooled buffer with append.

func (o Options) getInt32s(n int) []int32 {
	if o.NoPool {
		return make([]int32, n)
	}
	return arena.Int32s.Get(n)
}

func (o Options) putInt32s(buf []int32) {
	if o.NoPool {
		return
	}
	arena.Int32s.Put(buf)
}

func (o Options) getInt64s(n int) []int64 {
	if o.NoPool {
		return make([]int64, n)
	}
	return arena.Int64s.Get(n)
}

func (o Options) putInt64s(buf []int64) {
	if o.NoPool {
		return
	}
	arena.Int64s.Put(buf)
}

func (o Options) getUint64s(n int) []uint64 {
	if o.NoPool {
		return make([]uint64, n)
	}
	return arena.Uint64s.Get(n)
}

func (o Options) putUint64s(buf []uint64) {
	if o.NoPool {
		return
	}
	arena.Uint64s.Put(buf)
}

func (o Options) getBools(n int) []bool {
	if o.NoPool {
		return make([]bool, n)
	}
	return arena.Bools.Get(n)
}

func (o Options) putBools(buf []bool) {
	if o.NoPool {
		return
	}
	arena.Bools.Put(buf)
}
