package core

// i32 is the audited narrowing funnel for row-bounded quantities: sorted
// positions, partition-local indices, batch query slots and range bounds.
// Run rejects tables with math.MaxInt32 or more rows before any evaluation
// starts, so every quantity derived from a row count fits int32 exactly.
// Narrowing conversions outside this funnel are flagged by the narrowconv
// analyzer; keep new ones routed through here (or prove a local bound).
//
//lint:narrowconv-entry every row index, batch slot and range bound is bounded by Run's math.MaxInt32 row cap
func i32(v int) int32 { return int32(v) }
