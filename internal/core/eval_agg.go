package core

import (
	"fmt"

	"holistic/internal/frame"
	"holistic/internal/preprocess"
	"holistic/internal/segtree"
)

// evalDistributive evaluates SUM, AVG, MIN and MAX with the segment tree of
// Leis et al. (§3.2): O(n) build, O(log n) per frame, no reliance on frame
// overlap. These aggregates are the ones SQL already allows framing for;
// they are part of the operator so that mixed queries run end-to-end and so
// the segment-tree machinery exists as a competitor substrate.
func evalDistributive(p *partition, f *FuncSpec, fc *frame.Computer, out *outBuilder, opt Options) error {
	fl := newFiltered(p, f, f.Arg, opt)
	col := p.t.Column(f.Arg)
	switch f.Name {
	case Sum:
		if col.Kind() == Int64 {
			return runSegAgg(p, fc, out, opt, fl,
				func(j int) int64 { return col.Int64(fl.orig(j)) },
				func(a, b int64) int64 { return a + b },
				func(row int, v int64) { out.setInt(row, v) })
		}
		return runSegAgg(p, fc, out, opt, fl,
			func(j int) float64 { return col.Float64(fl.orig(j)) },
			func(a, b float64) float64 { return a + b },
			func(row int, v float64) { out.setFloat(row, v) })
	case Avg:
		return runSegAgg(p, fc, out, opt, fl,
			func(j int) avgState { return avgState{sum: col.Numeric(fl.orig(j)), n: 1} },
			func(a, b avgState) avgState { return avgState{a.sum + b.sum, a.n + b.n} },
			func(row int, v avgState) { out.setFloat(row, v.sum/float64(v.n)) })
	case Min, Max:
		want := -1
		if f.Name == Max {
			want = 1
		}
		switch col.Kind() {
		case Int64:
			return runSegAgg(p, fc, out, opt, fl,
				func(j int) int64 { return col.Int64(fl.orig(j)) },
				pickBy(want, func(a, b int64) int { return compareOrdered(a, b) }),
				func(row int, v int64) { out.setInt(row, v) })
		case Float64:
			return runSegAgg(p, fc, out, opt, fl,
				func(j int) float64 { return col.Float64(fl.orig(j)) },
				pickBy(want, floatCompare),
				func(row int, v float64) { out.setFloat(row, v) })
		case String:
			return runSegAgg(p, fc, out, opt, fl,
				func(j int) string { return col.StringAt(fl.orig(j)) },
				pickBy(want, func(a, b string) int { return compareOrdered(a, b) }),
				func(row int, v string) { out.strs[row] = v })
		default:
			return fmt.Errorf("min/max over %v column not supported", col.Kind())
		}
	}
	return fmt.Errorf("unhandled distributive function %v", f.Name)
}

func compareOrdered[T int64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// pickBy builds a min/max merge from a comparator (want = -1 for min, 1 for
// max).
func pickBy[T any](want int, cmp func(a, b T) int) func(a, b T) T {
	return func(a, b T) T {
		if c := cmp(b, a); (want < 0 && c < 0) || (want > 0 && c > 0) {
			return b
		}
		return a
	}
}

// runSegAgg builds a segment tree over the filtered values and merges each
// frame's ranges. Empty frames yield SQL NULL.
func runSegAgg[S any](p *partition, fc *frame.Computer, out *outBuilder, opt Options,
	fl *filtered, valueOf func(j int) S, merge func(a, b S) S, emit func(row int, v S)) error {
	values := make([]S, fl.k)
	for j := range values {
		values[j] = valueOf(j)
	}
	tree := segtree.New(values, merge)
	return forEachRow(p, opt, func(lo, hi int) {
		var scratch, mapped [3][2]int
		for i := lo; i < hi; i++ {
			ranges := fl.frameRanges(fc, i, scratch[:], mapped[:])
			row := p.orig(i)
			var acc S
			have := false
			for _, r := range ranges {
				part, ok := tree.Query(r[0], r[1])
				if !ok {
					continue
				}
				if have {
					acc = merge(acc, part)
				} else {
					acc, have = part, true
				}
			}
			if !have {
				out.setNull(row)
				continue
			}
			emit(row, acc)
		}
	})
}

// evalSegTree is the EngineSegmentTree dispatcher: distributive aggregates
// use the plain segment tree; rank, percentile and value functions use the
// sorted-list segment tree (base intervals), the parallelizable
// O(n (log n)²) competitor of Table 1.
func evalSegTree(p *partition, f *FuncSpec, fc *frame.Computer, out *outBuilder, opt Options) error {
	switch f.Name {
	case CountStar, Count:
		return evalCounts(p, f, fc, out, opt)
	case Sum, Avg, Min, Max:
		return evalDistributive(p, f, fc, out, opt)
	}

	// Holistic functions on the sorted-list tree. The tree holds the kept
	// rows' function-order keys in window order: Kth(lo, hi, k) then selects
	// the k-th frame row in function order, CountBelow counts rank
	// thresholds — the same queries the merge sort tree answers, one
	// log-factor slower.
	st, fl, keysAll, sortedKept, err := buildSortedTreeState(p, f, opt)
	if err != nil {
		return err
	}
	valueCol := selectValueColumn(p, f)
	return forEachRow(p, opt, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			bLo, bHi := fc.Bounds(i)
			fLo, fHi := fl.toFiltered(bLo), fl.toFiltered(bHi)
			size := fHi - fLo
			row := p.orig(i)
			switch f.Name {
			case Rank, RowNumber:
				out.setInt(row, int64(st.CountBelow(fLo, fHi, keysAll[i]))+1)
			case PercentRank:
				if size <= 1 {
					out.setFloat(row, 0)
				} else {
					out.setFloat(row, float64(st.CountBelow(fLo, fHi, keysAll[i]))/float64(size-1))
				}
			case CumeDist:
				if size == 0 {
					out.setNull(row)
				} else {
					out.setFloat(row, float64(st.CountBelow(fLo, fHi, keysAll[i]+1))/float64(size))
				}
			case Ntile:
				fj := -1
				if fl.kept(i) {
					fj = fl.toFiltered(i)
				}
				if size == 0 || fj < fLo || fj >= fHi {
					out.setNull(row)
					continue
				}
				r := int64(st.CountBelow(fLo, fHi, keysAll[i]))
				out.setInt(row, ntileBucket(r, int64(size), f.N))
			case PercentileDisc, NthValue, FirstValue, LastValue:
				if size == 0 {
					out.setNull(row)
					continue
				}
				k := selectIndexFor(f, size)
				if k < 0 || k >= size {
					out.setNull(row)
					continue
				}
				r, ok := st.Kth(fLo, fHi, k)
				if !ok {
					out.setNull(row)
					continue
				}
				out.copyFrom(valueCol, fl.orig(int(sortedKept[r])), row)
			case PercentileCont:
				if size == 0 {
					out.setNull(row)
					continue
				}
				emitPercentileCont(f, size, row, out, valueCol, func(k int) (int, bool) {
					r, ok := st.Kth(fLo, fHi, k)
					if !ok {
						return 0, false
					}
					return fl.orig(int(sortedKept[r])), true
				})
			default:
				out.setNull(row)
			}
		}
	})
}

// buildSortedTreeState prepares the shared state for holistic functions on
// the sorted-list segment tree: the filter context, per-row function-order
// keys (dense ranks, or unique row numbers where ties must break), the kept
// rows' sorted order, and the tree itself.
func buildSortedTreeState(p *partition, f *FuncSpec, opt Options) (*segtree.SortedTree, *filtered, []int64, []int32, error) {
	fl := newFiltered(p, f, selectDropColumn(p, f), opt)
	m := p.len()
	sortedAll := p.sortedByFuncOrder(f)
	unique := f.Name != Rank && f.Name != PercentRank && f.Name != CumeDist
	var keysAll []int64
	if unique {
		keysAll = make([]int64, m)
		keptBefore := int64(0)
		for _, pos := range sortedAll {
			keysAll[pos] = keptBefore
			if fl.kept(int(pos)) {
				keptBefore++
			}
		}
	} else {
		keysAll, _ = preprocess.DenseRanks(sortedAll, p.funcEqual(f))
	}
	keysKept := make([]int64, fl.k)
	for j := range keysKept {
		keysKept[j] = keysAll[fl.local(j)]
	}
	sortedKept := preprocess.SortIndicesByKey(keysKept)
	return segtree.NewSorted(keysKept), fl, keysAll, sortedKept, nil
}

// selectDropColumn returns the column whose NULLs a selection-type function
// drops.
func selectDropColumn(p *partition, f *FuncSpec) string {
	switch f.Name {
	case PercentileDisc, PercentileCont:
		return percentileValueColumn(f)
	case NthValue, FirstValue, LastValue, Lead, Lag:
		if f.IgnoreNulls {
			return f.Arg
		}
	}
	return ""
}

// selectValueColumn returns the column a selection-type function copies its
// result from.
func selectValueColumn(p *partition, f *FuncSpec) *Column {
	switch f.Name {
	case PercentileDisc, PercentileCont:
		return p.t.Column(percentileValueColumn(f))
	case NthValue, FirstValue, LastValue, Lead, Lag:
		return p.t.Column(f.Arg)
	}
	return nil
}

// selectIndexFor maps a selection function to the 0-based index it asks for.
func selectIndexFor(f *FuncSpec, size int) int {
	switch f.Name {
	case PercentileDisc:
		return percentileDiscIndex(f.Fraction, size)
	case NthValue:
		return int(f.N) - 1
	case FirstValue:
		return 0
	case LastValue:
		return size - 1
	}
	return -1
}

// emitPercentileCont interpolates PERCENTILE_CONT from a row selector.
func emitPercentileCont(f *FuncSpec, size, row int, out *outBuilder, valueCol *Column, selectRow func(k int) (int, bool)) {
	rn := f.Fraction * float64(size-1)
	k0 := int(rn)
	frac := rn - float64(k0)
	src0, ok := selectRow(k0)
	if !ok {
		out.setNull(row)
		return
	}
	v := valueCol.Numeric(src0)
	if frac > 0 {
		if src1, ok1 := selectRow(k0 + 1); ok1 {
			v += frac * (valueCol.Numeric(src1) - v)
		}
	}
	out.setFloat(row, v)
}
