package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"holistic/internal/mst"
	"holistic/internal/obs"
	"holistic/internal/parallel"
	"holistic/internal/preprocess"
)

// Options tunes the window operator.
type Options struct {
	// Tree configures the merge sort trees (fanout, sampling, cascading).
	Tree mst.Options
	// TaskSize is the parallel task granularity in rows (default 20 000,
	// the Hyper task size the paper uses, §5.5).
	TaskSize int
	// Profile, when non-nil, receives per-phase timings (Figure 14): the
	// run's root span is attached to it and its accessors aggregate the
	// phase spans. New callers that want the full tree should prefer Trace
	// (or holistic.WithTrace), which exposes the same spans unaggregated.
	Profile *Profile
	// Trace, when non-nil, is the span the run records itself under: one
	// child span per phase, per (partition, function) evaluation and per
	// parallel worker, with cache keys and row counts as attributes. The
	// caller owns the span and ends it; Run only attaches children. A nil
	// Trace disables tracing at zero allocation cost on the probe path.
	Trace *obs.Span
	// DefaultEngine substitutes the evaluation engine for every function
	// whose Engine field was left at the zero value. The zero value *is*
	// the merge sort tree, so setting DefaultEngine to
	// EngineMergeSortTree (or leaving it zero) changes nothing, and
	// per-function competitor engine choices always win over the default.
	DefaultEngine Engine
	// Workers, when > 0, caps the number of parallel workers used by this
	// run's context-aware loops, below the process-wide limit
	// (parallel.SetMaxWorkers). The cap travels in the run's context, so
	// it applies to the sort, build and probe loops but never leaks into
	// concurrent runs.
	Workers int
	// Context, when non-nil, cancels the evaluation cooperatively: the
	// operator checks it between phases and between parallel task chunks,
	// so a cancelled caller stops burning cores after at most one chunk
	// per worker. Run returns the context's error when cut short.
	Context context.Context
	// Cache, when non-nil together with a non-empty CacheScope, is
	// consulted before building sort orders, merge sort trees and
	// preprocessed key arrays, enabling cross-query structure reuse (see
	// TreeCache).
	Cache TreeCache
	// CacheScope prefixes every cache key and must uniquely identify the
	// table's content version (e.g. "orders@v3"): callers bump it whenever
	// the table changes, which implicitly invalidates all structures built
	// against the previous version. With an empty scope the cache is
	// bypassed.
	CacheScope string
	// trace is the span the current piece of work records under: Run
	// points it at the root, evalFunc at the per-evaluation span. It is
	// threaded through the value-copied Options so concurrent evaluations
	// never share a current-span variable.
	trace *obs.Span
	// NoPool opts out of the pooled scratch buffers the evaluation engines
	// borrow for preprocessing temporaries (hash arrays, sorted index
	// buffers, permutations, inclusion masks); every temporary is then
	// allocated fresh with make. Results are byte-identical either way —
	// enforced by the pooling equivalence tests — so the flag exists for
	// allocation-behavior comparisons and as an escape hatch. The merge sort
	// tree's own substrate is controlled separately by Tree.NoArena.
	NoPool bool
	// Delta, when non-nil, describes the table as a frozen base plus a
	// mutation overlay (see DeltaView): phase 1 then merges the cached
	// frozen sort order with a sorted run over the overlay instead of
	// re-sorting, and per-partition cache keys switch to content+epoch form
	// so untouched partitions reuse their structures across epochs. Results
	// are byte-identical to evaluating the same table without a view.
	Delta *DeltaView
	// NoSharedPlan opts out of the shared-plan optimizer for multi-function
	// SQL statements: the planner then groups functions only by *identical*
	// (PARTITION BY, ORDER BY) windows — the pre-shared-plan behavior —
	// instead of sharing sorts, partition boundaries and structures across
	// merely compatible windows. Results are byte-identical either way
	// (enforced by the shared-plan equivalence suite); the flag exists for
	// performance comparisons and as an escape hatch. It is consulted by
	// internal/plan, not by Run itself.
	NoSharedPlan bool
	// NoBatch opts out of the batched level-synchronous MST query kernels:
	// the probe loop then evaluates every row with the scalar per-query
	// descents of PR 4 and earlier. Results are byte-identical either way —
	// enforced by the batch equivalence tests — so the flag exists for
	// performance comparisons and as an escape hatch. DESIGN.md §10
	// documents which functions the batched path covers.
	NoBatch bool
}

func (o Options) taskSize() int {
	if o.TaskSize > 0 {
		return o.TaskSize
	}
	return parallel.DefaultTaskSize
}

// Run evaluates a window specification over a table, returning one output
// column per window function, aligned with the input's original row order.
//
// The pipeline follows §5/§6.7: one parallel sort establishes partitioning
// and window order for all functions; each (partition, function) pair then
// runs its preprocessing, builds its index structure, and probes it for
// every row in parallel tasks.
func Run(t *Table, w *WindowSpec, opt Options) (*Result, error) {
	res, err := RunShared(t, w.PartitionBy, w.OrderBy, []*WindowSpec{w}, opt)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// RunShared evaluates several window specifications over one shared sort:
// the table is sorted once by (partitionBy, orderBy), partition boundaries
// are found once, and every window then evaluates its functions over views
// of the shared partitions. Each window's PARTITION BY must equal
// partitionBy as a set, and its ORDER BY must be a prefix of orderBy.
//
// Soundness is the caller's contract (internal/plan enforces it): a window
// whose ORDER BY is a strict prefix of orderBy sees its peer groups
// permuted by the refined sort, so it may only carry functions whose
// results are determined by frame row sets, not row positions — RANGE and
// GROUPS frames with order-insensitive functions. Windows whose ORDER BY
// equals orderBy are unrestricted. One result is returned per window, in
// input order.
func RunShared(t *Table, partitionBy []string, orderBy []SortKey, windows []*WindowSpec, opt Options) ([]*Result, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("core: shared run has no windows")
	}
	sortSpec := &WindowSpec{PartitionBy: partitionBy, OrderBy: orderBy}
	for _, w := range windows {
		if err := w.validate(t); err != nil {
			return nil, err
		}
		if err := checkSharable(w, sortSpec); err != nil {
			return nil, err
		}
	}
	// The root span: a caller-provided Options.Trace, or — when only the
	// aggregate Profile view was requested — a run-owned root that is
	// ended here. Both Trace and Profile observe the same tree.
	root := opt.Trace
	ownRoot := root == nil && opt.Profile != nil
	if ownRoot {
		root = obs.NewSpan("run")
		defer root.End()
	}
	opt.Profile.attach(root)
	opt.trace = root
	n := t.Rows()
	if n >= math.MaxInt32 {
		return nil, fmt.Errorf("core: table has %d rows; row indices are represented as int32, capping a run at %d rows", n, math.MaxInt32-1)
	}
	nFuncs := 0
	for _, w := range windows {
		nFuncs += len(w.Funcs)
	}
	root.SetInt("rows", int64(n))
	root.SetInt("functions", int64(nFuncs))
	if len(windows) > 1 {
		root.SetInt("windows", int64(len(windows)))
	}
	if opt.Workers > 0 {
		opt.Context = parallel.ContextWithLimit(opt.Context, opt.Workers)
	}
	if err := opt.ctxErr(); err != nil {
		return nil, err
	}

	// Phase 1: sort by (PARTITION BY, ORDER BY) — shared by every function,
	// and with a cache also across queries: any query whose window agrees
	// on partitioning and ordering reuses the order (the shared-sort
	// observation of Cao et al., lifted to the request level).
	sortSpan := root.Phase("partition+order sort")
	sortOpt := opt
	sortOpt.trace = sortSpan
	var cs cachedSort
	var sortErr error
	if opt.Delta != nil {
		// Delta path: merge the generation-stable frozen sort with a sorted
		// run over the overlay, cached per epoch.
		if err := opt.Delta.validate(t); err != nil {
			sortSpan.End()
			return nil, err
		}
		cs, sortErr = cacheGet(sortOpt, epochTag(opt.Delta.Epoch)+"|sortidx|"+windowSig(sortSpec), func() (cachedSort, int64, error) {
			idx, err := deltaSortIndices(t, sortSpec, sortOpt)
			if err != nil {
				return cachedSort{}, 0, err
			}
			return cachedSort{idx: idx}, int64(4 * len(idx)), nil
		})
	} else {
		cs, sortErr = cacheGet(sortOpt, "sortidx|"+windowSig(sortSpec), func() (cachedSort, int64, error) {
			idx := preprocess.SortIndices(n, windowComparator(t, sortSpec))
			return cachedSort{idx: idx}, int64(4 * len(idx)), nil
		})
	}
	sortSpan.End()
	sortIdx := cs.idx
	if sortErr != nil {
		return nil, sortErr
	}
	if err := opt.ctxErr(); err != nil {
		return nil, err
	}

	// Phase 2: find partition boundaries.
	var parts []*partition
	root.Timed("partition boundaries", func() {
		parts = splitPartitions(t, sortSpec, sortIdx)
	})
	if opt.Delta != nil && opt.cacheActive() {
		// Re-key partitions by content + last-change epoch: ordinal keys
		// would alias different contents across epochs under one scope.
		if err := stampPartitions(t, sortSpec, parts, opt); err != nil {
			return nil, err
		}
	}
	if err := opt.ctxErr(); err != nil {
		return nil, err
	}

	// Each window sees the shared partitions through its own views: same
	// sorted rows, stamps and function-order sort cache, but the window's
	// own peer groups and RANGE keys. Structure-cache keys carry the
	// executed sort's signature, so views of different windows share
	// entries (and stay key-compatible with unshared runs of the same
	// sort, where the signature coincides with the window's own).
	sig := windowSig(sortSpec)
	views := make([][]*partition, len(windows))
	for wi, w := range windows {
		views[wi] = make([]*partition, len(parts))
		for pi, p := range parts {
			views[wi][pi] = p.viewFor(w, sig)
		}
	}

	// Phase 3: evaluate every (partition, window, function) triple. Output
	// columns are written at original row positions directly.
	outs := make([][]*outBuilder, len(windows))
	for wi, w := range windows {
		outs[wi] = make([]*outBuilder, len(w.Funcs))
		for i := range w.Funcs {
			f := &w.Funcs[i]
			outs[wi][i] = newOutBuilder(f.Output, outputKind(t, f), n)
		}
	}
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	// Partitions run sequentially, functions within a partition too; the
	// heavy parallelism lives inside each evaluation (sorting, tree build,
	// probe tasks). For many small partitions the inner parallel calls
	// degenerate to serial loops, so we additionally parallelise across
	// partitions when there are many of them.
	evalPart := func(pi int) {
		for wi, w := range windows {
			p := views[wi][pi]
			for fi := range w.Funcs {
				f := &w.Funcs[fi]
				if err := evalFuncCached(p, f, outs[wi][fi], opt); err != nil {
					setErr(fmt.Errorf("%v (%s): %w", f.Name, f.Output, err))
					return
				}
			}
		}
	}
	if len(parts) >= 2*parallel.Workers() && parallel.Workers() > 1 {
		if err := parallel.ForEachContext(opt.Context, len(parts), evalPart); err != nil {
			setErr(err)
		}
	} else {
		for pi := range parts {
			if err := opt.ctxErr(); err != nil {
				setErr(err)
				break
			}
			evalPart(pi)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	results := make([]*Result, len(windows))
	for wi := range windows {
		cols := make([]*Column, len(outs[wi]))
		for i, b := range outs[wi] {
			cols[i] = b.column()
		}
		res, err := NewTable(cols...)
		if err != nil {
			return nil, err
		}
		results[wi] = &Result{table: res}
	}
	return results, nil
}

// checkSharable verifies a window fits under a shared sort: same PARTITION
// BY column set, window ORDER BY a prefix of the executed order. The
// semantic gate (which functions tolerate a refined sort) lives in the
// planner; this check only rejects structurally incompatible windows that
// would silently evaluate against the wrong order.
func checkSharable(w, sortSpec *WindowSpec) error {
	if !samePartitionSet(w.PartitionBy, sortSpec.PartitionBy) {
		return fmt.Errorf("core: window partitioning %v does not match shared sort partitioning %v", w.PartitionBy, sortSpec.PartitionBy)
	}
	if len(w.OrderBy) > len(sortSpec.OrderBy) {
		return fmt.Errorf("core: window ORDER BY longer than the shared sort order")
	}
	for i, k := range w.OrderBy {
		if sortSpec.OrderBy[i] != k {
			return fmt.Errorf("core: window ORDER BY is not a prefix of the shared sort order")
		}
	}
	return nil
}

// samePartitionSet reports whether two PARTITION BY lists name the same
// column set (listing order does not affect partitioning).
func samePartitionSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	seen := make(map[string]int, len(a))
	for _, c := range a {
		seen[c]++
	}
	for _, c := range b {
		seen[c]--
		if seen[c] < 0 {
			return false
		}
	}
	return true
}

// windowComparator orders rows by (PARTITION BY, ORDER BY).
func windowComparator(t *Table, w *WindowSpec) func(a, b int) int {
	partCols := make([]*Column, len(w.PartitionBy))
	for i, name := range w.PartitionBy {
		partCols[i] = t.Column(name)
	}
	orderCols := make([]*Column, len(w.OrderBy))
	for i, k := range w.OrderBy {
		orderCols[i] = t.Column(k.Column)
	}
	return func(a, b int) int {
		for _, c := range partCols {
			if r := c.Compare(a, b, false, true); r != 0 {
				return r
			}
		}
		for i, k := range w.OrderBy {
			if r := k.compare(orderCols[i], a, b); r != 0 {
				return r
			}
		}
		return 0
	}
}

// splitPartitions cuts the sorted index array at partition-key changes.
func splitPartitions(t *Table, w *WindowSpec, sortIdx []int32) []*partition {
	n := len(sortIdx)
	if n == 0 {
		return nil
	}
	partCols := make([]*Column, len(w.PartitionBy))
	for i, name := range w.PartitionBy {
		partCols[i] = t.Column(name)
	}
	samePart := func(a, b int32) bool {
		for _, c := range partCols {
			if !c.equalAt(int(a), int(b)) {
				return false
			}
		}
		return true
	}
	var parts []*partition
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || !samePart(sortIdx[i-1], sortIdx[i]) {
			parts = append(parts, &partition{t: t, w: w, ord: len(parts), rows: sortIdx[start:i], fsort: &funcSortCache{}})
			start = i
		}
	}
	return parts
}

// outputKind determines a function's result column type.
func outputKind(t *Table, f *FuncSpec) Kind {
	switch f.Name {
	case CountStar, Count, CountDistinct, Rank, DenseRank, RowNumber, Ntile:
		return Int64
	case PercentRank, CumeDist, Avg, AvgDistinct, PercentileCont:
		return Float64
	case Sum, SumDistinct:
		return t.Column(f.Arg).Kind()
	case Min, Max:
		return t.Column(f.Arg).Kind()
	case PercentileDisc:
		return t.Column(percentileValueColumn(f)).Kind()
	case NthValue, FirstValue, LastValue, Lead, Lag:
		return t.Column(f.Arg).Kind()
	}
	return Int64
}

// percentileValueColumn is the column a percentile returns values from: its
// first function-level ORDER BY key.
func percentileValueColumn(f *FuncSpec) string {
	return f.OrderBy[0].Column
}

// evalFunc evaluates one function over one partition with the selected
// engine, under a structural "eval" span carrying the function, engine,
// partition ordinal and row count.
func evalFunc(p *partition, f *FuncSpec, out *outBuilder, opt Options) error {
	eng := f.Engine
	if eng == EngineMergeSortTree {
		eng = opt.DefaultEngine // zero value: still the merge sort tree
	}
	if sp := opt.trace.Child("eval"); sp != nil {
		defer sp.End()
		sp.Set("function", f.Name.String())
		sp.Set("engine", eng.String())
		sp.SetInt("partition", int64(p.ord))
		sp.SetInt("rows", int64(p.len()))
		opt.trace = sp
	}
	spec := p.w.effectiveFrame(f)
	fc, err := p.frameComputer(spec)
	if err != nil {
		return err
	}
	switch eng {
	case EngineMergeSortTree:
		return evalMST(p, f, fc, out, opt)
	case EngineNaive, EngineIncremental, EngineOSTree:
		return evalCompetitor(p, f, fc, out, opt)
	case EngineSegmentTree:
		return evalSegTree(p, f, fc, out, opt)
	}
	return fmt.Errorf("unknown engine %v", eng)
}

// forEachRow runs body over all partition rows in parallel tasks; body is
// subject to the same disjointness contract as parallel.For bodies. The
// options context cancels the loop between chunks; the context's error is
// returned when the loop was cut short. The loop runs under a "probe"
// phase span carried in the context, so parallel workers attach their
// per-worker spans beneath it.
//
//lint:parallel-entry
func forEachRow(p *partition, opt Options, body func(lo, hi int)) error {
	ctx := opt.Context
	if sp := opt.trace.Phase("probe"); sp != nil {
		defer sp.End()
		ctx = obs.ContextWith(ctx, sp)
	}
	return parallel.ForContext(ctx, p.len(), opt.taskSize(), body)
}
